/**
 * @file
 * Domain-ownership layer tests (sim::OwnershipRegistry +
 * sim::OwnershipAuditor, DESIGN.md §16).
 *
 * Unit coverage: the registry vocabulary (queue-keyed domains,
 * component/channel declarations), the construction-time attach
 * Scope, the engine-published ExecScope thread-local, the armed
 * onCallback/onCrossing hooks with fail-fast disabled, and the
 * invariant-sweep re-reporting.
 *
 * System coverage: the acceptance gate of the exec-group-split
 * worklist — every golden config runs to completion with the
 * ownership auditor armed at host-jobs 1, 2, and 4, reports zero
 * violations over non-vacuous audited traffic, and stays
 * byte-identical to the committed golden stats (arming the auditor
 * must never perturb the stats tree).
 *
 * Separate binary (test_ownership_suite): arms the global checks
 * gate, so it must not share a process with timing suites.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "sim/invariant.hh"
#include "sim/ownership.hh"

#include "core/system.hh"

#include "golden_cases.hh"

using namespace astriflash;
using namespace astriflash::core;
using namespace astriflash::tools;

namespace {

/** Arm (or disarm) simulator checks for one test, restoring after. */
class ScopedChecks
{
  public:
    explicit ScopedChecks(bool on) : prev(sim::checksEnabled())
    {
        sim::setChecksEnabled(on);
    }
    ~ScopedChecks() { sim::setChecksEnabled(prev); }

    ScopedChecks(const ScopedChecks &) = delete;
    ScopedChecks &operator=(const ScopedChecks &) = delete;

  private:
    bool prev;
};

} // namespace

// --------------------------------------------------------------------
// OwnershipRegistry: the vocabulary.
// --------------------------------------------------------------------

TEST(OwnershipRegistry, DomainsAreKeyedByQueueIdentity)
{
    sim::OwnershipRegistry reg;
    int key_a = 0;
    int key_b = 0;

    const sim::DomainId a = reg.addDomain("fc", &key_a);
    const sim::DomainId b = reg.addDomain("bc0", &key_b);
    EXPECT_NE(a, b);
    EXPECT_EQ(reg.domainCount(), 2u);
    EXPECT_EQ(reg.domainName(a), "fc");
    EXPECT_EQ(reg.domainName(b), "bc0");

    // Re-registering the same key is idempotent: same id, and the
    // original name wins (the key identifies the queue, not the
    // caller's label).
    EXPECT_EQ(reg.addDomain("fc-again", &key_a), a);
    EXPECT_EQ(reg.domainCount(), 2u);
    EXPECT_EQ(reg.domainName(a), "fc");

    EXPECT_EQ(reg.domainOf(&key_a), a);
    EXPECT_EQ(reg.domainOf(&key_b), b);
    int unregistered = 0;
    EXPECT_EQ(reg.domainOf(&unregistered), sim::kNoDomain);
    EXPECT_EQ(reg.domainOf(nullptr), sim::kNoDomain);
}

TEST(OwnershipRegistry, ComponentAndChannelDeclarations)
{
    sim::OwnershipRegistry reg;
    int key_fc = 0;
    int key_bc = 0;
    const sim::DomainId fc = reg.addDomain("fc", &key_fc);
    const sim::DomainId bc = reg.addDomain("bc0", &key_bc);

    reg.declareComponent("dram_cache", fc);
    reg.declareComponent("bc0", bc);
    ASSERT_EQ(reg.components().size(), 2u);
    EXPECT_EQ(reg.components()[0].name, "dram_cache");
    EXPECT_EQ(reg.components()[0].owner, fc);
    EXPECT_EQ(reg.components()[1].owner, bc);

    reg.declareChannel("fc_to_bc0", fc, bc);
    ASSERT_EQ(reg.channels().size(), 1u);
    EXPECT_EQ(reg.channels()[0].name, "fc_to_bc0");
    EXPECT_EQ(reg.channels()[0].producer, fc);
    EXPECT_EQ(reg.channels()[0].consumer, bc);
}

// --------------------------------------------------------------------
// OwnershipAuditor: attach scope and executing-domain thread-local.
// --------------------------------------------------------------------

TEST(OwnershipAuditor, AttachScopeNestsAndRestores)
{
    sim::OwnershipRegistry r1;
    sim::OwnershipRegistry r2;
    sim::OwnershipAuditor a1(r1);
    sim::OwnershipAuditor a2(r2);

    EXPECT_EQ(sim::OwnershipAuditor::current(), nullptr);
    {
        sim::OwnershipAuditor::Scope outer(a1);
        EXPECT_EQ(sim::OwnershipAuditor::current(), &a1);
        {
            sim::OwnershipAuditor::Scope inner(a2);
            EXPECT_EQ(sim::OwnershipAuditor::current(), &a2);
        }
        EXPECT_EQ(sim::OwnershipAuditor::current(), &a1);
    }
    EXPECT_EQ(sim::OwnershipAuditor::current(), nullptr);
}

TEST(OwnershipAuditor, ExecScopeNestsAndRestores)
{
    EXPECT_EQ(sim::OwnershipAuditor::currentDomain(), sim::kNoDomain);
    {
        sim::OwnershipAuditor::ExecScope outer(3);
        EXPECT_EQ(sim::OwnershipAuditor::currentDomain(), 3u);
        {
            sim::OwnershipAuditor::ExecScope inner(7);
            EXPECT_EQ(sim::OwnershipAuditor::currentDomain(), 7u);
        }
        EXPECT_EQ(sim::OwnershipAuditor::currentDomain(), 3u);
    }
    EXPECT_EQ(sim::OwnershipAuditor::currentDomain(), sim::kNoDomain);
}

// --------------------------------------------------------------------
// OwnershipAuditor: the armed callback hook.
// --------------------------------------------------------------------

TEST(OwnershipAuditor, CallbackInOwningDomainIsClean)
{
    ScopedChecks armed(true);
    sim::OwnershipRegistry reg;
    sim::OwnershipAuditor aud(reg);
    aud.setFailFast(false);

    int key = 0;
    const sim::DomainId fc = reg.addDomain("fc", &key);
    sim::OwnershipAuditor::ExecScope exec(fc);
    aud.onCallback("sim_core", fc, 100);

    EXPECT_EQ(aud.callbacksAudited(), 1u);
    EXPECT_EQ(aud.violationCount(), 0u);
}

TEST(OwnershipAuditor, WrongDomainCallbackIsRecorded)
{
    ScopedChecks armed(true);
    sim::OwnershipRegistry reg;
    sim::OwnershipAuditor aud(reg);
    aud.setFailFast(false);

    int key_fc = 0;
    int key_bc = 0;
    const sim::DomainId fc = reg.addDomain("fc", &key_fc);
    const sim::DomainId bc = reg.addDomain("bc0", &key_bc);

    sim::OwnershipAuditor::ExecScope exec(bc);
    aud.onCallback("sim_core", fc, 250);

    ASSERT_EQ(aud.violationCount(), 1u);
    EXPECT_EQ(aud.violations()[0].component, "sim_core");
    EXPECT_EQ(aud.violations()[0].tick, 250u);
    // The detail names both domains so the report is debuggable.
    EXPECT_NE(aud.violations()[0].detail.find("fc"),
              std::string::npos);
    EXPECT_NE(aud.violations()[0].detail.find("bc0"),
              std::string::npos);

    // The invariant sweep re-reports every stored violation.
    sim::InvariantChecker chk;
    aud.checkInvariants(chk);
    EXPECT_GT(chk.failures(), 0u);
}

TEST(OwnershipAuditor, UnresolvedDomainsAreExempt)
{
    ScopedChecks armed(true);
    sim::OwnershipRegistry reg;
    sim::OwnershipAuditor aud(reg);
    aud.setFailFast(false);

    int key = 0;
    const sim::DomainId fc = reg.addDomain("fc", &key);

    // No ExecScope: tests driving queues directly run outside any
    // domain, which must never trip the audit.
    aud.onCallback("sim_core", fc, 10);
    EXPECT_EQ(aud.violationCount(), 0u);

    // Unresolved owner under a published domain: equally exempt.
    sim::OwnershipAuditor::ExecScope exec(fc);
    aud.onCallback("orphan", sim::kNoDomain, 20);
    EXPECT_EQ(aud.violationCount(), 0u);
    EXPECT_EQ(aud.callbacksAudited(), 2u);
}

TEST(OwnershipAuditor, DisarmedGateSkipsTheAudit)
{
    ScopedChecks disarmed(false);
    sim::OwnershipRegistry reg;
    sim::OwnershipAuditor aud(reg);
    aud.setFailFast(false);

    int key_fc = 0;
    int key_bc = 0;
    const sim::DomainId fc = reg.addDomain("fc", &key_fc);
    const sim::DomainId bc = reg.addDomain("bc0", &key_bc);

    // Even a would-be violation is invisible when disarmed: the hook
    // must early-return before touching any counter.
    sim::OwnershipAuditor::ExecScope exec(bc);
    aud.onCallback("sim_core", fc, 99);
    const std::uint32_t xid = aud.registerCrossing("edge", fc, bc);
    aud.onCrossing(xid, 99);

    EXPECT_EQ(aud.callbacksAudited(), 0u);
    EXPECT_EQ(aud.crossingsObserved(), 0u);
    EXPECT_EQ(aud.violationCount(), 0u);
}

TEST(OwnershipAuditor, CrossingsCountButNeverViolate)
{
    ScopedChecks armed(true);
    sim::OwnershipRegistry reg;
    sim::OwnershipAuditor aud(reg);
    aud.setFailFast(false);

    int key_fc = 0;
    int key_bc = 0;
    const sim::DomainId fc = reg.addDomain("fc", &key_fc);
    const sim::DomainId bc = reg.addDomain("bc0", &key_bc);

    const std::uint32_t svc = aud.registerCrossing("service", fc, bc);
    const std::uint32_t inst =
        aud.registerCrossing("deliver_installs", bc, fc);
    EXPECT_EQ(aud.crossingCount(), 2u);

    aud.onCrossing(svc, 10);
    aud.onCrossing(svc, 30);
    aud.onCrossing(inst, 40);

    EXPECT_EQ(aud.crossing(svc).count, 2u);
    EXPECT_EQ(aud.crossing(svc).lastTick, 30u);
    EXPECT_EQ(aud.crossing(inst).count, 1u);
    EXPECT_EQ(aud.crossingsObserved(), 3u);
    EXPECT_EQ(aud.violationCount(), 0u);

    // The sweep's crossing accounting cross-check holds.
    sim::InvariantChecker chk;
    aud.checkInvariants(chk);
    EXPECT_EQ(chk.failures(), 0u);
}

// --------------------------------------------------------------------
// System: golden configs certify clean under the armed auditor at
// every host-jobs value, byte-identical to the committed goldens.
// --------------------------------------------------------------------

namespace {

/** Whole-file slurp; fails the test if the golden file is missing. */
std::string
readGolden(const std::string &case_name)
{
    const std::string path =
        std::string(ASTRI_GOLDEN_DIR) + "/" + case_name + ".json";
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing golden file " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

} // namespace

class OwnershipGolden
    : public ::testing::TestWithParam<GoldenCase>
{};

TEST_P(OwnershipGolden, ArmedAuditorIsCleanAndByteIdentical)
{
    ScopedChecks armed(true);
    const GoldenCase &gc = GetParam();
    const std::string want = readGolden(gc.name);

    for (const unsigned hj : {1u, 2u, 4u}) {
        SystemConfig cfg = goldenCaseConfig(gc);
        cfg.hostJobs = hj;
        System sys(cfg);
        const RunResults r = sys.run();

        const sim::OwnershipAuditor &aud = sys.ownershipAuditor();
        EXPECT_EQ(aud.violationCount(), 0u)
            << gc.name << " at host-jobs " << hj << ": "
            << (aud.violations().empty()
                    ? std::string()
                    : aud.violations()[0].detail);
        // The certificate is vacuous unless real callbacks ran under
        // the audit.
        EXPECT_GT(aud.callbacksAudited(), 0u)
            << gc.name << " at host-jobs " << hj;
        // Fused partitioned runs exercise the facade's
        // pre-registered synchronous crossings; the legacy
        // single-domain run has none to register. The pipelined
        // split cases declare NONE at any host-jobs value — the
        // retirement certificate for the synchronous FC<->BC seam.
        if (gc.split) {
            EXPECT_EQ(aud.crossingCount(), 0u)
                << gc.name << " at host-jobs " << hj;
            EXPECT_EQ(aud.crossingsObserved(), 0u)
                << gc.name << " at host-jobs " << hj;
        } else if (hj > 1) {
            EXPECT_GT(aud.crossingCount(), 0u)
                << gc.name << " at host-jobs " << hj;
            EXPECT_GT(aud.crossingsObserved(), 0u)
                << gc.name << " at host-jobs " << hj;
        } else {
            EXPECT_EQ(aud.crossingCount(), 0u) << gc.name;
        }

        // Arming the auditor keeps the golden bytes: its counters
        // live outside the stats tree by design.
        std::ostringstream os;
        writeGoldenJson(os, gc, r, sys);
        EXPECT_EQ(os.str(), want)
            << gc.name << " diverged at host-jobs " << hj;
    }
}

INSTANTIATE_TEST_SUITE_P(AllCases, OwnershipGolden,
                         ::testing::ValuesIn(kGoldenCases),
                         [](const auto &info) {
                             return std::string(info.param.name);
                         });
