/**
 * @file
 * Tests for the DRAM cache with frontside/backside controllers.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/dram_cache.hh"
#include "flash/flash_device.hh"
#include "mem/address_map.hh"
#include "sim/event_queue.hh"

using namespace astriflash;
using namespace astriflash::core;
using namespace astriflash::sim;
using astriflash::mem::kPageSize;

namespace {

struct Rig {
    EventQueue eq;
    mem::AddressMap amap{64 << 20, 256 << 20};
    flash::FlashConfig fcfg;
    std::unique_ptr<flash::FlashDevice> flash;
    std::unique_ptr<DramCache> dc;
    std::vector<std::pair<mem::PageNum, std::vector<WaiterCookie>>>
        ready;

    explicit Rig(std::uint32_t msr_sets = 16, std::uint32_t msr_ways = 4)
    {
        fcfg = flash::FlashConfig::forCapacity(512 << 20);
        flash = std::make_unique<flash::FlashDevice>(
            "flash", fcfg, (256 << 20) / kPageSize);
        DramCacheConfig cfg;
        cfg.capacityBytes = 2 << 20; // 512 page frames
        cfg.bc.msrSets = msr_sets;
        cfg.bc.msrEntriesPerSet = msr_ways;
        dc = std::make_unique<DramCache>(eq, "dc", cfg, *flash, amap);
        dc->setPageReadyCallback(
            [this](mem::PageNum page, Ticks,
                   const std::vector<WaiterCookie> &w) {
                ready.emplace_back(page, w);
            });
    }

    mem::Addr pa(std::uint64_t page) const
    {
        return amap.flashRange().base + page * kPageSize;
    }
};

} // namespace

TEST(DramCache, PrewarmedPageHits)
{
    Rig rig;
    rig.dc->prewarmPage(rig.pa(7));
    EXPECT_TRUE(rig.dc->pageResident(rig.pa(7) + 128));
    const auto r = rig.dc->access(rig.pa(7), false, 1000, 1);
    EXPECT_TRUE(r.hit);
    // Tag probe + data CAS: tens of ns, far below flash latency.
    EXPECT_LT(r.ready - 1000, microseconds(1));
    EXPECT_EQ(rig.dc->fcStats().hits.value(), 1u);
}

TEST(DramCache, MissReturnsEarlyMissResponse)
{
    Rig rig;
    const auto r = rig.dc->access(rig.pa(3), false, 0, 42);
    EXPECT_FALSE(r.hit);
    // The miss response (MSHR reclaim) arrives ns-scale, not after
    // the flash access.
    EXPECT_LT(r.ready, microseconds(1));
    EXPECT_EQ(rig.dc->outstandingMisses(), 1u);
}

TEST(DramCache, FillDeliversWaitersAfterFlashLatency)
{
    Rig rig;
    rig.dc->access(rig.pa(3), false, 0, 42);
    rig.eq.run();
    ASSERT_EQ(rig.ready.size(), 1u);
    EXPECT_EQ(rig.ready[0].first, mem::pageNumber(rig.pa(3)));
    ASSERT_EQ(rig.ready[0].second.size(), 1u);
    EXPECT_EQ(rig.ready[0].second[0], 42u);
    // Page now resident; next access hits.
    EXPECT_TRUE(rig.dc->pageResident(rig.pa(3)));
    EXPECT_GT(rig.eq.curTick(), microseconds(40));
}

TEST(DramCache, ConcurrentMissesToSamePageMerge)
{
    Rig rig;
    rig.dc->access(rig.pa(5), false, 0, 1);
    rig.dc->access(rig.pa(5) + 64, false, 100, 2);
    rig.dc->access(rig.pa(5) + 128, true, 200, 3);
    EXPECT_EQ(rig.dc->fcStats().misses.value(), 1u);
    EXPECT_EQ(rig.dc->fcStats().missesMerged.value(), 2u);
    rig.eq.run();
    // One flash read, one arrival with all three waiters.
    EXPECT_EQ(rig.flash->stats().reads.value(), 1u);
    ASSERT_EQ(rig.ready.size(), 1u);
    EXPECT_EQ(rig.ready[0].second.size(), 3u);
}

TEST(DramCache, WriteAllocateInstallsDirtyAndWritesBack)
{
    Rig rig;
    rig.dc->access(rig.pa(9), true, 0, 1);
    rig.eq.run();
    ASSERT_TRUE(rig.dc->pageResident(rig.pa(9)));
    // Evict page 9 by filling its set with conflicting pages.
    // Sets = 512/8 = 64 -> conflict stride 64 pages.
    std::uint64_t installed = 0;
    for (std::uint64_t k = 1; rig.dc->pageResident(rig.pa(9)) &&
                              k <= 16; ++k) {
        rig.dc->access(rig.pa(9 + k * 64), false,
                       rig.eq.curTick(), 1);
        rig.eq.run();
        ++installed;
    }
    EXPECT_FALSE(rig.dc->pageResident(rig.pa(9)));
    EXPECT_GE(rig.dc->bcStats().dirtyWritebacks.value(), 1u);
    EXPECT_GE(rig.flash->stats().writes.value(), 1u);
}

TEST(DramCache, SyncAccessBlocksForMiss)
{
    Rig rig;
    const Ticks ready = rig.dc->accessSync(rig.pa(11), false, 0);
    EXPECT_GT(ready, microseconds(40)); // waited out the flash read
    rig.eq.run();
    EXPECT_TRUE(rig.dc->pageResident(rig.pa(11)));
    EXPECT_EQ(rig.dc->fcStats().syncAccesses.value(), 1u);
}

TEST(DramCache, SyncAccessHitIsFast)
{
    Rig rig;
    rig.dc->prewarmPage(rig.pa(12));
    const Ticks ready = rig.dc->accessSync(rig.pa(12), false, 1000);
    EXPECT_LT(ready - 1000, microseconds(1));
}

TEST(DramCache, MsrSetConflictDefersFlashRead)
{
    // Single-set, 1-entry MSR: the second distinct miss must wait for
    // the first fill to free the entry.
    Rig rig(1, 1);
    rig.dc->access(rig.pa(2), false, 0, 1);
    rig.dc->access(rig.pa(3), false, 0, 2);
    EXPECT_EQ(rig.dc->msr().stats().setFullStalls.value(), 1u);
    rig.eq.run();
    // Both fills eventually complete.
    EXPECT_TRUE(rig.dc->pageResident(rig.pa(2)));
    EXPECT_TRUE(rig.dc->pageResident(rig.pa(3)));
    EXPECT_EQ(rig.flash->stats().reads.value(), 2u);
    EXPECT_EQ(rig.ready.size(), 2u);
}

TEST(DramCache, MissPenaltyTracksFlashScale)
{
    Rig rig;
    rig.dc->access(rig.pa(30), false, 0, 1);
    rig.eq.run();
    const auto p50 = rig.dc->bcStats().missPenalty.percentile(0.5);
    // Penalty measured at arrival: install cost, sub-flash scale.
    EXPECT_LT(p50, microseconds(5));
    EXPECT_EQ(rig.dc->bcStats().fills.value(), 1u);
}

TEST(DramCache, ResetStatsZeroes)
{
    Rig rig;
    rig.dc->prewarmPage(rig.pa(1));
    rig.dc->access(rig.pa(1), false, 0, 1);
    rig.dc->resetStats();
    EXPECT_EQ(rig.dc->fcStats().hits.value(), 0u);
    EXPECT_EQ(rig.dc->fcStats().misses.value(), 0u);
}

// ---------------------------------------------------------------
// Footprint-cache mode (§II-A optimization)
// ---------------------------------------------------------------

namespace {

struct FootprintRig : Rig {
    FootprintRig()
    {
        DramCacheConfig cfg;
        cfg.capacityBytes = 2 << 20;
        cfg.footprintEnabled = true;
        dc = std::make_unique<DramCache>(eq, "dcfp", cfg, *flash,
                                         amap);
        dc->setPageReadyCallback(
            [this](mem::PageNum page, Ticks,
                   const std::vector<WaiterCookie> &w) {
                ready.emplace_back(page, w);
            });
    }
};

} // namespace

TEST(DramCacheFootprint, FirstMissFetchesWholePage)
{
    FootprintRig rig;
    rig.dc->access(rig.pa(3), false, 0, 1);
    rig.eq.run();
    // No history: full transfer; every block of the page hits.
    EXPECT_EQ(rig.dc->bcStats().flashBytesRead.value(), 4096u);
    for (int b = 0; b < 64; ++b) {
        const auto r = rig.dc->access(rig.pa(3) + b * 64, false,
                                      rig.eq.curTick(), 1);
        EXPECT_TRUE(r.hit) << b;
    }
    EXPECT_EQ(rig.dc->fcStats().subPageMisses.value(), 0u);
}

TEST(DramCacheFootprint, RefetchTransfersOnlyFootprint)
{
    FootprintRig rig;
    // Touch two blocks of page 5, then force it out (sets = 64).
    rig.dc->access(rig.pa(5), false, 0, 1);
    rig.eq.run();
    rig.dc->access(rig.pa(5) + 64, false, rig.eq.curTick(), 1);
    for (std::uint64_t k = 1; rig.dc->pageResident(rig.pa(5)) &&
                              k <= 16; ++k) {
        rig.dc->access(rig.pa(5 + k * 64), false, rig.eq.curTick(),
                       1);
        rig.eq.run();
    }
    ASSERT_FALSE(rig.dc->pageResident(rig.pa(5)));
    const std::uint64_t before =
        rig.dc->bcStats().flashBytesRead.value();

    // Refetch: only the recorded 2-block footprint (plus the
    // requested block, already in it) is transferred.
    rig.dc->access(rig.pa(5), false, rig.eq.curTick(), 1);
    rig.eq.run();
    EXPECT_EQ(rig.dc->bcStats().flashBytesRead.value() - before,
              2 * 64u);
}

TEST(DramCacheFootprint, UnfetchedBlockIsSubPageMiss)
{
    FootprintRig rig;
    // Build a 1-block footprint for page 7, evict, refetch.
    rig.dc->access(rig.pa(7), false, 0, 1);
    rig.eq.run();
    for (std::uint64_t k = 1; rig.dc->pageResident(rig.pa(7)) &&
                              k <= 16; ++k) {
        rig.dc->access(rig.pa(7 + k * 64), false, rig.eq.curTick(),
                       1);
        rig.eq.run();
    }
    rig.dc->access(rig.pa(7), false, rig.eq.curTick(), 1);
    rig.eq.run();
    ASSERT_TRUE(rig.dc->pageResident(rig.pa(7)));

    // A different block of the now-resident page: sub-page miss that
    // fetches the remainder and then hits.
    const auto r =
        rig.dc->access(rig.pa(7) + 512, false, rig.eq.curTick(), 9);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(rig.dc->fcStats().subPageMisses.value(), 1u);
    rig.eq.run();
    const auto again =
        rig.dc->access(rig.pa(7) + 512, false, rig.eq.curTick(), 9);
    EXPECT_TRUE(again.hit);
}

TEST(DramCacheFootprint, SyncPathHandlesSubPageMiss)
{
    FootprintRig rig;
    rig.dc->access(rig.pa(8), false, 0, 1);
    rig.eq.run();
    for (std::uint64_t k = 1; rig.dc->pageResident(rig.pa(8)) &&
                              k <= 16; ++k) {
        rig.dc->access(rig.pa(8 + k * 64), false, rig.eq.curTick(),
                       1);
        rig.eq.run();
    }
    rig.dc->access(rig.pa(8), false, rig.eq.curTick(), 1);
    rig.eq.run();
    const Ticks now = rig.eq.curTick();
    const Ticks ready = rig.dc->accessSync(rig.pa(8) + 1024, false,
                                           now);
    EXPECT_GT(ready - now, microseconds(30)); // waited out flash
}

TEST(DramCache, HitRatioComputed)
{
    Rig rig;
    rig.dc->prewarmPage(rig.pa(0));
    rig.dc->access(rig.pa(0), false, 0, 1);
    rig.dc->access(rig.pa(99), false, 0, 1);
    EXPECT_DOUBLE_EQ(rig.dc->fcStats().hitRatio(), 0.5);
}
