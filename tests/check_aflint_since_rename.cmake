# Regression test for `aflint --since <ref>` rename handling, run as
# a ctest.
#
#   cmake -DAFLINT=<aflint> -DOUT_DIR=<dir>
#         -P check_aflint_since_rename.cmake
#
# Builds a scratch git repository in which a file with a pre-existing
# lint violation is committed and then renamed without any content
# change. A diff-scoped scan over the rename-only range must NOT
# re-report the moved file's pre-existing findings (git reports it as
# R100 and aflint skips it), while a range that includes the commit
# that introduced the violation must still report it.

file(REMOVE_RECURSE "${OUT_DIR}")
file(MAKE_DIRECTORY "${OUT_DIR}/src")

function(run_git)
    execute_process(
        COMMAND git -C "${OUT_DIR}" ${ARGN}
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out_text
        ERROR_VARIABLE err_text)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "git ${ARGN} failed (rc=${rc}):\n${out_text}\n${err_text}")
    endif()
endfunction()

run_git(init --quiet --initial-branch=main)
run_git(config user.email aflint-test@localhost)
run_git(config user.name "aflint test")
run_git(config commit.gpgsign false)

# Commit 0: empty base, so a range exists that predates the
# violation's introduction.
run_git(commit --quiet --allow-empty -m "base")

# Commit 1: a src/ file whose only finding is a pre-existing AF001.
file(WRITE "${OUT_DIR}/src/legacy_timer.cc"
"int jitter() { return rand() % 7; }\n")
run_git(add src/legacy_timer.cc)
run_git(commit --quiet -m "add legacy timer")

# Commit 2: pure rename, byte-identical content (git sees R100).
run_git(mv src/legacy_timer.cc src/legacy_clock.cc)
run_git(commit --quiet -m "rename timer to clock")

# A rename-only diff must not re-report the moved file's findings.
execute_process(
    COMMAND "${AFLINT}" --root "${OUT_DIR}" --since HEAD~1
    RESULT_VARIABLE rc_rename
    OUTPUT_VARIABLE out_rename
    ERROR_VARIABLE err_rename)
if(NOT rc_rename EQUAL 0)
    message(FATAL_ERROR
        "aflint --since over a rename-only diff re-reported "
        "pre-existing findings (rc=${rc_rename}):\n"
        "${out_rename}\n${err_rename}")
endif()

# The range that introduced the violation must still report it.
execute_process(
    COMMAND "${AFLINT}" --root "${OUT_DIR}" --since
            "HEAD~2" --format=json
    RESULT_VARIABLE rc_intro
    OUTPUT_VARIABLE out_intro
    ERROR_VARIABLE err_intro)
if(NOT rc_intro EQUAL 1)
    message(FATAL_ERROR
        "aflint --since missed the violation introduced inside the "
        "range (rc=${rc_intro}):\n${out_intro}\n${err_intro}")
endif()
if(NOT out_intro MATCHES "\"rule\":\"AF001\"")
    message(FATAL_ERROR
        "expected an AF001 finding for the renamed file, got:\n"
        "${out_intro}")
endif()
