/**
 * @file
 * Tests for the real user-level threading library.
 */

#include <gtest/gtest.h>

#include <vector>

#include "uthread/uthread.hh"

using namespace astriflash::uthread;

TEST(UThread, RunsAllSpawnedThreads)
{
    UScheduler sched;
    int ran = 0;
    for (int i = 0; i < 10; ++i)
        sched.spawn([&ran] { ++ran; });
    sched.run();
    EXPECT_EQ(ran, 10);
    EXPECT_EQ(sched.stats().completed, 10u);
}

TEST(UThread, SpawnOrderPreservedWithoutYields)
{
    UScheduler sched;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        sched.spawn([&order, i] { order.push_back(i); });
    sched.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(UThread, YieldInterleaves)
{
    UScheduler sched;
    std::vector<int> order;
    sched.spawn([&] {
        order.push_back(1);
        sched.yield();
        order.push_back(3);
    });
    sched.spawn([&] {
        order.push_back(2);
        sched.yield();
        order.push_back(4);
    });
    sched.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(UThread, BlockOnNotifyRoundTrip)
{
    UScheduler sched;
    std::vector<int> order;
    sched.spawn([&] {
        order.push_back(1);
        sched.blockOn(0x42); // "DRAM-cache miss"
        order.push_back(4);
    });
    sched.spawn([&] {
        order.push_back(2);
        sched.notify(0x42); // "page arrived"
        order.push_back(3);
    });
    sched.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
    EXPECT_EQ(sched.stats().blocks, 1u);
    EXPECT_EQ(sched.stats().notifies, 1u);
}

TEST(UThread, NotifyWakesAllBlockedOnKey)
{
    UScheduler sched;
    int woken = 0;
    for (int i = 0; i < 3; ++i) {
        sched.spawn([&] {
            sched.blockOn(7);
            ++woken;
        });
    }
    sched.spawn([&] { sched.notify(7); });
    sched.run();
    EXPECT_EQ(woken, 3);
}

TEST(UThread, FifoPolicyRunsNewBeforePending)
{
    Config cfg;
    cfg.policy = Policy::Fifo;
    UScheduler sched(cfg);
    std::vector<int> order;
    sched.spawn([&] {
        sched.blockOn(1);
        order.push_back(99); // pending resume
    });
    sched.spawn([&] {
        sched.notify(1);
        order.push_back(1);
    });
    sched.spawn([&] { order.push_back(2); });
    sched.run();
    // Under FIFO the new thread (2) runs before the resumed one (99).
    EXPECT_EQ(order, (std::vector<int>{1, 2, 99}));
}

TEST(UThread, PriorityAgingPromotesAgedPending)
{
    Config cfg;
    cfg.policy = Policy::PriorityAging;
    cfg.agingThreshold = std::chrono::nanoseconds(0); // always aged
    UScheduler sched(cfg);
    std::vector<int> order;
    sched.spawn([&] {
        sched.blockOn(1);
        order.push_back(99);
    });
    sched.spawn([&] {
        sched.notify(1);
        order.push_back(1);
    });
    sched.spawn([&] { order.push_back(2); });
    sched.run();
    // The aged pending thread preempts the queued new thread.
    EXPECT_EQ(order, (std::vector<int>{1, 99, 2}));
    EXPECT_GE(sched.stats().agingPromotions, 1u);
}

TEST(UThread, DeepCallStacksSurviveSwitches)
{
    UScheduler sched;
    // Recursion exercises each thread's private stack across
    // switches.
    std::function<int(int)> fib = [&](int n) -> int {
        if (n < 2)
            return n;
        if (n == 10)
            sched.yield();
        return fib(n - 1) + fib(n - 2);
    };
    int a = 0, b = 0;
    sched.spawn([&] { a = fib(18); });
    sched.spawn([&] { b = fib(18); });
    sched.run();
    EXPECT_EQ(a, 2584);
    EXPECT_EQ(b, 2584);
}

TEST(UThread, ManyThreads)
{
    Config cfg;
    cfg.stackBytes = 32 * 1024;
    UScheduler sched(cfg);
    int sum = 0;
    for (int i = 0; i < 200; ++i) {
        sched.spawn([&sum, i, &sched] {
            sched.yield();
            sum += i;
        });
    }
    sched.run();
    EXPECT_EQ(sum, 199 * 200 / 2);
    EXPECT_GE(sched.stats().switches, 400u);
}

TEST(UThread, CurrentIdInsideWorker)
{
    UScheduler sched;
    std::uint64_t seen = 0;
    const std::uint64_t id = sched.spawn([&] {
        seen = sched.currentId();
        EXPECT_TRUE(sched.inWorker());
    });
    EXPECT_FALSE(sched.inWorker());
    sched.run();
    EXPECT_EQ(seen, id);
}

TEST(UThread, RunSliceBoundsDispatches)
{
    UScheduler sched;
    int ran = 0;
    for (int i = 0; i < 6; ++i)
        sched.spawn([&ran] { ++ran; });
    EXPECT_EQ(sched.runSlice(2), 2u);
    EXPECT_EQ(ran, 2);
    EXPECT_EQ(sched.runSlice(100), 4u);
    EXPECT_EQ(ran, 6);
    EXPECT_EQ(sched.runSlice(1), 0u); // nothing runnable
}

TEST(UThread, RunSliceInterleavesExternalNotify)
{
    // The §IV-D2 pattern: the host loop delivers notifications
    // between scheduling quanta.
    UScheduler sched;
    std::vector<int> order;
    sched.spawn([&] {
        order.push_back(1);
        sched.blockOn(9);
        order.push_back(3);
    });
    sched.spawn([&] { order.push_back(2); });
    EXPECT_EQ(sched.runSlice(1), 1u); // first worker blocks
    sched.notify(9);                  // page arrives "from hardware"
    sched.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(UThread, PendingOverflowCounted)
{
    Config cfg;
    cfg.pendingCap = 1;
    UScheduler sched(cfg);
    for (int i = 0; i < 3; ++i)
        sched.spawn([&] { sched.blockOn(5); });
    sched.spawn([&] { sched.notify(5); });
    sched.run();
    EXPECT_GE(sched.stats().pendingOverflows, 1u);
}
