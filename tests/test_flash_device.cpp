/**
 * @file
 * Tests for the SSD timing model: latency composition, plane/channel
 * queueing, read priority over programs, GC interference.
 */

#include <gtest/gtest.h>

#include "flash/flash_device.hh"
#include "sim/ticks.hh"

using namespace astriflash::flash;
using namespace astriflash::sim;

namespace {

FlashConfig
fastCfg()
{
    FlashConfig c;
    c.channels = 2;
    c.diesPerChannel = 1;
    c.planesPerDie = 2;
    c.blocksPerPlane = 16;
    c.pagesPerBlock = 4;
    c.tRead = microseconds(40);
    c.tProgram = microseconds(600);
    c.tErase = milliseconds(3);
    c.tChannelXfer = microseconds(3);
    c.tController = microseconds(5);
    c.gcFreeBlockLow = 2;
    return c;
}

} // namespace

TEST(FlashDevice, UnloadedReadLatency)
{
    FlashDevice dev("d", fastCfg());
    const auto r = dev.read(Lpn(0), 0);
    // controller + tR + transfer = 5 + 40 + 3 us.
    EXPECT_EQ(r.complete, microseconds(48));
    EXPECT_EQ(r.queueing, 0u);
    EXPECT_FALSE(r.blockedByGc);
}

TEST(FlashDevice, SamePlaneReadsSerialize)
{
    FlashDevice dev("d", fastCfg());
    const auto a = dev.read(Lpn(0), 0); // plane 0
    const auto b = dev.read(Lpn(4), 0); // lpn 4 -> plane 0 again
    EXPECT_GT(b.queueing, 0u);
    EXPECT_GE(b.complete, a.complete + microseconds(40));
}

TEST(FlashDevice, DifferentPlanesOverlap)
{
    FlashDevice dev("d", fastCfg());
    const auto a = dev.read(Lpn(0), 0); // plane 0, channel 0
    const auto b = dev.read(Lpn(1), 0); // plane 1, channel 1
    EXPECT_EQ(a.complete, b.complete);
    EXPECT_EQ(b.queueing, 0u);
}

TEST(FlashDevice, ChannelTransferSerializes)
{
    FlashDevice dev("d", fastCfg());
    // Planes 0 and 2 share channel 0.
    const auto a = dev.read(Lpn(0), 0);
    const auto b = dev.read(Lpn(2), 0);
    // Array reads overlap; the 3 us transfers share the channel.
    EXPECT_EQ(b.complete, a.complete + microseconds(3));
}

TEST(FlashDevice, ReadsPreemptQueuedPrograms)
{
    // Preload half the capacity so plain writes have spare blocks and
    // do not trigger GC (GC legitimately blocks reads; tested below).
    const FlashConfig cfg = fastCfg();
    FlashDevice dev("d", cfg, cfg.userPages() / 2);
    // Queue a program on plane 0, then read from it immediately.
    dev.write(Lpn(0), 0);
    const auto r = dev.read(Lpn(4), microseconds(1)); // plane 0
    // The read must NOT wait out the 600 us program.
    EXPECT_LT(r.complete, microseconds(100));
}

TEST(FlashDevice, WriteAckIsTransferOnly)
{
    const FlashConfig wcfg = fastCfg();
    FlashDevice dev("d", wcfg, wcfg.userPages() / 2);
    const Ticks acked = dev.write(Lpn(0), 0);
    // controller + channel transfer; the program is asynchronous.
    EXPECT_EQ(acked, microseconds(8));
}

TEST(FlashDevice, GcBlocksReadsOnItsPlane)
{
    FlashDevice dev("d", fastCfg());
    // Preload half capacity; hammer one plane's lpns to force GC.
    std::uint64_t gc_writes = 0;
    Ticks t = 0;
    while (dev.ftl().stats().gcInvocations.value() == 0 &&
           gc_writes < 10000) {
        dev.write(Lpn(0 + 4 * (gc_writes % 8)), t);
        t += microseconds(10);
        ++gc_writes;
    }
    ASSERT_GT(dev.ftl().stats().gcInvocations.value(), 0u);
    // A read right after the GC-triggering write sees the plane busy.
    const auto r = dev.read(Lpn(0), t);
    EXPECT_TRUE(r.blockedByGc);
    EXPECT_GT(r.queueing, microseconds(100));
    EXPECT_EQ(dev.stats().gcBlockedReads.value(), 1u);
}

TEST(FlashDevice, LatencyHistogramsPopulate)
{
    FlashDevice dev("d", fastCfg());
    for (std::uint64_t i = 0; i < 32; ++i)
        dev.read(Lpn(i % 16), i * microseconds(100));
    EXPECT_EQ(dev.stats().reads.value(), 32u);
    EXPECT_GE(dev.stats().readLatency.percentile(0.5),
              microseconds(47));
}

TEST(FlashDevice, ResetStatsKeepsFtlCounters)
{
    FlashDevice dev("d", fastCfg());
    dev.read(Lpn(0), 0);
    dev.write(Lpn(0), 0);
    dev.resetStats();
    EXPECT_EQ(dev.stats().reads.value(), 0u);
    EXPECT_EQ(dev.stats().writes.value(), 0u);
    EXPECT_EQ(dev.ftl().stats().hostWrites.value(), 1u); // cumulative
}
