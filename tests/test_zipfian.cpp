/**
 * @file
 * Tests for the Zipfian popularity generator.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "workload/zipfian.hh"

using namespace astriflash::workload;

TEST(Zipfian, DrawsInRange)
{
    ZipfianGenerator z(1000, 0.99, true, 1);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(z.next(), 1000u);
}

TEST(Zipfian, RankZeroIsMostPopular)
{
    ZipfianGenerator z(10000, 0.99, false, 2);
    std::vector<std::uint64_t> counts(10000, 0);
    for (int i = 0; i < 200000; ++i)
        ++counts[z.nextRank()];
    EXPECT_GT(counts[0], counts[10]);
    EXPECT_GT(counts[10], counts[1000]);
}

TEST(Zipfian, RankFrequenciesMatchAnalyticRatio)
{
    // P(rank r) proportional to 1/(r+1)^theta.
    const double theta = 0.8;
    ZipfianGenerator z(100000, theta, false, 3);
    std::uint64_t c0 = 0, c9 = 0;
    for (int i = 0; i < 2000000; ++i) {
        const std::uint64_t r = z.nextRank();
        c0 += r == 0;
        c9 += r == 9;
    }
    const double expected = std::pow(10.0, theta); // p0 / p9
    const double measured =
        static_cast<double>(c0) / static_cast<double>(c9);
    EXPECT_NEAR(measured, expected, expected * 0.1);
}

TEST(Zipfian, HotAccessFractionAnalytic)
{
    ZipfianGenerator z(100000, 0.99, false, 4);
    EXPECT_DOUBLE_EQ(z.hotAccessFraction(0), 0.0);
    EXPECT_DOUBLE_EQ(z.hotAccessFraction(100000), 1.0);
    const double f1 = z.hotAccessFraction(1000);
    const double f2 = z.hotAccessFraction(10000);
    EXPECT_GT(f1, 0.0);
    EXPECT_LT(f1, f2);
    EXPECT_LT(f2, 1.0);
}

TEST(Zipfian, HotAccessFractionMatchesMeasurement)
{
    const std::uint64_t n = 50000;
    ZipfianGenerator z(n, 0.99, false, 5);
    const std::uint64_t hot = n / 20; // top 5% of ranks
    const double analytic = z.hotAccessFraction(hot);
    std::uint64_t hits = 0;
    const int draws = 500000;
    for (int i = 0; i < draws; ++i)
        hits += z.nextRank() < hot;
    EXPECT_NEAR(static_cast<double>(hits) / draws, analytic, 0.01);
}

TEST(Zipfian, ScrambleSpreadsHotItems)
{
    ZipfianGenerator z(100000, 0.99, true, 6);
    // The top-16 ranks should not land in one small address region.
    std::uint64_t lo = ~0ull, hi = 0;
    for (std::uint64_t r = 0; r < 16; ++r) {
        const std::uint64_t item = z.itemForRank(r);
        lo = std::min(lo, item);
        hi = std::max(hi, item);
    }
    EXPECT_GT(hi - lo, 100000u / 4);
}

TEST(Zipfian, ScrambledDrawsMatchItemForRank)
{
    ZipfianGenerator a(5000, 0.99, true, 7);
    ZipfianGenerator b(5000, 0.99, false, 7);
    // Same seed: a.next() == itemForRank(b.nextRank()).
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), a.itemForRank(b.nextRank()));
}

TEST(Zipfian, LargeItemCountUsesApproximation)
{
    // > 2^22 items exercises the extrapolated zeta; draws must stay
    // in range and remain skewed.
    ZipfianGenerator z(std::uint64_t{1} << 26, 0.99, false, 8);
    std::uint64_t top = 0;
    for (int i = 0; i < 10000; ++i) {
        const std::uint64_t r = z.nextRank();
        ASSERT_LT(r, std::uint64_t{1} << 26);
        top += r < 1000;
    }
    EXPECT_GT(top, 1000u); // far more than the uniform 0.15 expected
}

TEST(Zipfian, Deterministic)
{
    ZipfianGenerator a(1234, 0.9, true, 42), b(1234, 0.9, true, 42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}
