/**
 * @file
 * Tests for the on-chip MSHR file.
 */

#include <gtest/gtest.h>

#include "mem/mshr.hh"

using namespace astriflash::mem;

TEST(Mshr, AllocateMergeRelease)
{
    MshrFile m("m", 4);
    EXPECT_EQ(m.allocate(0x100), MshrAlloc::New);
    EXPECT_EQ(m.allocate(0x108), MshrAlloc::Merged); // same 64 B line
    EXPECT_EQ(m.occupancy(), 1u);
    EXPECT_TRUE(m.contains(0x100));
    EXPECT_EQ(m.release(0x100), 2u);
    EXPECT_FALSE(m.contains(0x100));
    EXPECT_EQ(m.release(0x100), 0u);
}

TEST(Mshr, FullBlocks)
{
    MshrFile m("m", 2);
    EXPECT_EQ(m.allocate(0x000), MshrAlloc::New);
    EXPECT_EQ(m.allocate(0x040), MshrAlloc::New);
    EXPECT_EQ(m.allocate(0x080), MshrAlloc::Full);
    EXPECT_TRUE(m.full());
    EXPECT_EQ(m.stats().fullStalls.value(), 1u);
    m.release(0x000);
    EXPECT_EQ(m.allocate(0x080), MshrAlloc::New);
}

TEST(Mshr, PeakOccupancyTracked)
{
    MshrFile m("m", 8);
    for (int i = 0; i < 5; ++i)
        m.allocate(i * 64);
    for (int i = 0; i < 5; ++i)
        m.release(i * 64);
    EXPECT_EQ(m.stats().peakOccupancy, 5u);
    EXPECT_EQ(m.occupancy(), 0u);
}

TEST(Mshr, LineGranularityConfigurable)
{
    MshrFile m("m", 4, 4096);
    EXPECT_EQ(m.allocate(0x0), MshrAlloc::New);
    EXPECT_EQ(m.allocate(0xfff), MshrAlloc::Merged);
    EXPECT_EQ(m.allocate(0x1000), MshrAlloc::New);
}

TEST(Mshr, HoldTimeMeasuredFromAllocateToRelease)
{
    MshrFile m("m", 4);
    m.allocate(0x000, 100);
    m.allocate(0x040, 250);
    EXPECT_EQ(m.release(0x000, 160), 1u); // held 60 ticks
    EXPECT_EQ(m.release(0x040, 290), 1u); // held 40 ticks
    EXPECT_EQ(m.stats().heldTicks.value(), 100u);
    EXPECT_EQ(m.stats().holdTime.count(), 2u);
    EXPECT_EQ(m.stats().holdTime.min(), 40u);
    EXPECT_EQ(m.stats().holdTime.max(), 60u);
    EXPECT_DOUBLE_EQ(m.stats().holdTime.mean(), 50.0);
}

TEST(Mshr, HoldTimeKeepsAllocationTickAcrossMerges)
{
    // Merges ride the original entry: the hold time spans from the
    // FIRST allocation to the release, whatever the merge ticks were.
    MshrFile m("m", 4);
    m.allocate(0x000, 10);
    EXPECT_EQ(m.allocate(0x008, 500), MshrAlloc::Merged);
    EXPECT_EQ(m.release(0x000, 70), 2u);
    EXPECT_EQ(m.stats().heldTicks.value(), 60u);
    EXPECT_EQ(m.stats().holdTime.count(), 1u);
}

TEST(Mshr, HoldTimeClampsReleaseBeforeAllocate)
{
    // The miss-response release path can carry a timestamp from a
    // skewed core clock; an earlier release tick charges zero, never
    // an underflowed duration.
    MshrFile m("m", 4);
    m.allocate(0x000, 1000);
    m.release(0x000, 400);
    EXPECT_EQ(m.stats().heldTicks.value(), 0u);
    EXPECT_EQ(m.stats().holdTime.count(), 1u);
    EXPECT_EQ(m.stats().holdTime.max(), 0u);
}

TEST(MshrDeath, RejectsZeroEntries)
{
    EXPECT_EXIT(MshrFile("m", 0), ::testing::ExitedWithCode(1),
                "at least one entry");
}
