/**
 * @file
 * Tests for the on-chip MSHR file.
 */

#include <gtest/gtest.h>

#include "mem/mshr.hh"

using namespace astriflash::mem;

TEST(Mshr, AllocateMergeRelease)
{
    MshrFile m("m", 4);
    EXPECT_EQ(m.allocate(0x100), MshrAlloc::New);
    EXPECT_EQ(m.allocate(0x108), MshrAlloc::Merged); // same 64 B line
    EXPECT_EQ(m.occupancy(), 1u);
    EXPECT_TRUE(m.contains(0x100));
    EXPECT_EQ(m.release(0x100), 2u);
    EXPECT_FALSE(m.contains(0x100));
    EXPECT_EQ(m.release(0x100), 0u);
}

TEST(Mshr, FullBlocks)
{
    MshrFile m("m", 2);
    EXPECT_EQ(m.allocate(0x000), MshrAlloc::New);
    EXPECT_EQ(m.allocate(0x040), MshrAlloc::New);
    EXPECT_EQ(m.allocate(0x080), MshrAlloc::Full);
    EXPECT_TRUE(m.full());
    EXPECT_EQ(m.stats().fullStalls.value(), 1u);
    m.release(0x000);
    EXPECT_EQ(m.allocate(0x080), MshrAlloc::New);
}

TEST(Mshr, PeakOccupancyTracked)
{
    MshrFile m("m", 8);
    for (int i = 0; i < 5; ++i)
        m.allocate(i * 64);
    for (int i = 0; i < 5; ++i)
        m.release(i * 64);
    EXPECT_EQ(m.stats().peakOccupancy, 5u);
    EXPECT_EQ(m.occupancy(), 0u);
}

TEST(Mshr, LineGranularityConfigurable)
{
    MshrFile m("m", 4, 4096);
    EXPECT_EQ(m.allocate(0x0), MshrAlloc::New);
    EXPECT_EQ(m.allocate(0xfff), MshrAlloc::Merged);
    EXPECT_EQ(m.allocate(0x1000), MshrAlloc::New);
}

TEST(MshrDeath, RejectsZeroEntries)
{
    EXPECT_EXIT(MshrFile("m", 0), ::testing::ExitedWithCode(1),
                "at least one entry");
}
