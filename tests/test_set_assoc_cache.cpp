/**
 * @file
 * Unit + property tests for the generic set-associative tag array.
 */

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "mem/set_assoc_cache.hh"
#include "sim/rng.hh"

using namespace astriflash::mem;

namespace {

SetAssocCache
makeTiny(ReplacementPolicy p = ReplacementPolicy::Lru)
{
    // 4 sets x 2 ways x 64 B lines.
    return SetAssocCache("t", 4 * 2 * 64, 64, 2, p);
}

} // namespace

TEST(SetAssocCache, MissThenHit)
{
    auto c = makeTiny();
    EXPECT_FALSE(c.access(0x100));
    c.fill(0x100);
    EXPECT_TRUE(c.access(0x100));
    EXPECT_TRUE(c.access(0x13f)); // same 64 B line
    EXPECT_FALSE(c.access(0x140)); // next line
}

TEST(SetAssocCache, LruEvictsLeastRecent)
{
    auto c = makeTiny();
    // Two lines in set 0 (line addr multiples of 64*4 = 256).
    c.fill(0);
    c.fill(256);
    EXPECT_TRUE(c.access(0)); // make 0 the MRU
    const auto victim = c.fill(512);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->tag_addr, 256u);
    EXPECT_TRUE(c.contains(0));
    EXPECT_FALSE(c.contains(256));
}

TEST(SetAssocCache, FifoEvictsOldestFill)
{
    auto c = makeTiny(ReplacementPolicy::Fifo);
    c.fill(0);
    c.fill(256);
    EXPECT_TRUE(c.access(0)); // recency must NOT matter for FIFO
    const auto victim = c.fill(512);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->tag_addr, 0u);
}

TEST(SetAssocCache, RandomPolicyEvictsSomeValidWay)
{
    auto c = makeTiny(ReplacementPolicy::Random);
    c.fill(0);
    c.fill(256);
    const auto victim = c.fill(512);
    ASSERT_TRUE(victim.has_value());
    EXPECT_TRUE(victim->tag_addr == 0 || victim->tag_addr == 256);
}

TEST(SetAssocCache, DirtyTrackedThroughEviction)
{
    auto c = makeTiny();
    c.fill(0);
    EXPECT_TRUE(c.accessWrite(0));
    c.fill(256);
    const auto victim = c.fill(512); // evicts LRU = 0 (dirty)
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->tag_addr, 0u);
    EXPECT_TRUE(victim->dirty);
    EXPECT_EQ(c.stats().dirtyEvictions.value(), 1u);
}

TEST(SetAssocCache, FillWithDirtyFlag)
{
    auto c = makeTiny();
    c.fill(0, true);
    c.fill(256);
    c.access(256);
    const auto victim = c.fill(512);
    ASSERT_TRUE(victim);
    EXPECT_TRUE(victim->dirty);
}

TEST(SetAssocCache, InvalidateReturnsLine)
{
    auto c = makeTiny();
    c.fill(0x40);
    c.markDirty(0x40);
    const auto line = c.invalidate(0x40);
    ASSERT_TRUE(line);
    EXPECT_TRUE(line->dirty);
    EXPECT_FALSE(c.contains(0x40));
    EXPECT_FALSE(c.invalidate(0x40).has_value());
}

TEST(SetAssocCache, MarkDirtyOnlyWhenPresent)
{
    auto c = makeTiny();
    EXPECT_FALSE(c.markDirty(0x40));
    c.fill(0x40);
    EXPECT_TRUE(c.markDirty(0x40));
}

TEST(SetAssocCache, RefillOfResidentLineKeepsSingleCopy)
{
    auto c = makeTiny();
    c.fill(0);
    EXPECT_FALSE(c.fill(0).has_value());
    EXPECT_EQ(c.validLines(), 1u);
}

TEST(SetAssocCache, FlushAllEmpties)
{
    auto c = makeTiny();
    c.fill(0);
    c.fill(64);
    c.flushAll();
    EXPECT_EQ(c.validLines(), 0u);
    EXPECT_FALSE(c.contains(0));
}

TEST(SetAssocCache, StatsCount)
{
    auto c = makeTiny();
    c.access(0);     // miss
    c.fill(0);       // fill
    c.access(0);     // hit
    EXPECT_EQ(c.stats().hits.value(), 1u);
    EXPECT_EQ(c.stats().misses.value(), 1u);
    EXPECT_EQ(c.stats().fills.value(), 1u);
    EXPECT_DOUBLE_EQ(c.stats().missRatio(), 0.5);
}

TEST(SetAssocCacheDeath, RejectsBadGeometry)
{
    EXPECT_EXIT(SetAssocCache("x", 1000, 63, 2), ::testing::ExitedWithCode(1),
                "power of two");
    EXPECT_EXIT(SetAssocCache("x", 1000, 64, 0), ::testing::ExitedWithCode(1),
                "associativity");
    EXPECT_EXIT(SetAssocCache("x", 100, 64, 2), ::testing::ExitedWithCode(1),
                "");
}

/**
 * Property sweep: under random traffic, structural invariants hold
 * for every geometry/policy combination:
 *  - valid lines never exceed capacity/line;
 *  - a filled line is found until evicted;
 *  - per-set occupancy never exceeds associativity (checked via the
 *    global bound and targeted same-set streams).
 */
class CacheProperty
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint64_t, ReplacementPolicy>>
{
};

TEST_P(CacheProperty, InvariantsUnderRandomTraffic)
{
    const auto [ways, sets, policy] = GetParam();
    const std::uint64_t line = 64;
    SetAssocCache c("p", sets * ways * line, line, ways, policy, 77);
    astriflash::sim::Rng rng(123);

    const std::uint64_t frames = sets * ways;
    std::set<Addr> resident;
    for (int i = 0; i < 20000; ++i) {
        const Addr a = rng.uniformInt(frames * 8) * line;
        const bool hit = c.access(a);
        EXPECT_EQ(hit, resident.count(a) != 0) << "addr " << a;
        if (!hit) {
            const auto victim = c.fill(a);
            resident.insert(a);
            if (victim)
                resident.erase(victim->tag_addr);
        }
        ASSERT_LE(c.validLines(), frames);
        ASSERT_EQ(c.validLines(), resident.size());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheProperty,
    ::testing::Combine(::testing::Values(1u, 2u, 8u),
                       ::testing::Values(std::uint64_t{1},
                                         std::uint64_t{16},
                                         std::uint64_t{64}),
                       ::testing::Values(ReplacementPolicy::Lru,
                                         ReplacementPolicy::Fifo,
                                         ReplacementPolicy::Random)));

/** Page-granularity instantiation used by the DRAM cache. */
TEST(SetAssocCache, PageGranularity)
{
    SetAssocCache c("pages", 16 * 8 * 4096, 4096, 8);
    c.fill(0x3000);
    EXPECT_TRUE(c.access(0x3fff));
    EXPECT_FALSE(c.access(0x4000));
    EXPECT_EQ(c.numSets(), 16u);
}
