/**
 * @file
 * Invariant-layer tests: unit coverage for InvariantChecker /
 * InvariantRegistry / the SIM_* macro families, a fixed-seed torture
 * sweep that runs whole systems with every component audit armed, and
 * conservation-law checks that cross-validate the stats-registry JSON
 * against live structure occupancy at quiesce.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/system.hh"
#include "sim/invariant.hh"

#include "mini_json.hh"

using namespace astriflash;
using namespace astriflash::core;

namespace {

/** Arm (or disarm) simulator checks for one test, restoring after. */
class ScopedChecks
{
  public:
    explicit ScopedChecks(bool on) : prev(sim::checksEnabled())
    {
        sim::setChecksEnabled(on);
    }
    ~ScopedChecks() { sim::setChecksEnabled(prev); }

    ScopedChecks(const ScopedChecks &) = delete;
    ScopedChecks &operator=(const ScopedChecks &) = delete;

  private:
    bool prev;
};

/** Small, fast system config shared by the torture/conservation runs. */
SystemConfig
smallCfg(SystemKind kind, workload::Kind wl, std::uint64_t seed)
{
    SystemConfig cfg;
    cfg.kind = kind;
    cfg.cores = 2;
    cfg.workloadKind = wl;
    cfg.workload.datasetBytes = 64ull << 20;
    cfg.warmupJobs = 100;
    cfg.measureJobs = 400;
    // Sweep often so a short run still exercises many periodic audits.
    cfg.invariantInterval = sim::microseconds(50);
    cfg.seed = seed;
    return cfg;
}

/** Numeric leaf lookup in a parsed stats-JSON document. */
double
jsonNum(const minijson::Value &doc, const std::string &path)
{
    const minijson::Value *v = doc.find(path);
    EXPECT_NE(v, nullptr) << "missing stats path " << path;
    if (v == nullptr || !v->isNumber())
        return -1.0;
    return v->number;
}

} // namespace

// --------------------------------------------------------------------
// Unit: checker and registry bookkeeping.
// --------------------------------------------------------------------

TEST(InvariantRegistry, CountsPassesFailuresAndContext)
{
    sim::InvariantRegistry reg;
    reg.setFailFast(false);
    reg.add("widget", [](sim::InvariantChecker &chk) {
        SIM_INVARIANT(chk, 1 + 1 == 2);
        SIM_INVARIANT(chk, 2 + 2 == 5);
        SIM_INVARIANT_MSG(chk, true, "never recorded");
        SIM_INVARIANT_MSG(chk, false, "broken gauge %d/%d", 3, 4);
    });

    EXPECT_EQ(reg.size(), 1u);
    EXPECT_EQ(reg.checkAll(sim::microseconds(7)), 2u);

    EXPECT_EQ(reg.sweeps(), 1u);
    EXPECT_EQ(reg.conditionsEvaluated(), 4u);
    EXPECT_EQ(reg.violationCount(), 2u);
    ASSERT_EQ(reg.violations().size(), 2u);

    const sim::InvariantViolation &first = reg.violations()[0];
    EXPECT_EQ(first.component, "widget");
    EXPECT_EQ(first.tick, sim::microseconds(7));
    EXPECT_NE(first.detail.find("2 + 2 == 5"), std::string::npos);
    EXPECT_NE(first.file.find("test_invariants.cpp"),
              std::string::npos);
    EXPECT_GT(first.line, 0);

    EXPECT_EQ(reg.violations()[1].detail, "broken gauge 3/4");

    const std::string report = reg.report();
    EXPECT_NE(report.find("widget"), std::string::npos);
    EXPECT_NE(report.find("2 + 2 == 5"), std::string::npos);
    EXPECT_NE(report.find("broken gauge 3/4"), std::string::npos);
}

TEST(InvariantRegistry, AggregatesAcrossSweepsAndComponents)
{
    sim::InvariantRegistry reg;
    reg.setFailFast(false);
    int healthy_runs = 0;
    reg.add("healthy", [&healthy_runs](sim::InvariantChecker &chk) {
        ++healthy_runs;
        SIM_INVARIANT(chk, true);
        EXPECT_EQ(chk.component(), "healthy");
    });
    reg.add("flaky", [](sim::InvariantChecker &chk) {
        SIM_INVARIANT_MSG(chk, chk.tick() < sim::microseconds(2),
                          "late sweep");
    });

    EXPECT_EQ(reg.checkAll(sim::microseconds(1)), 0u);
    EXPECT_EQ(reg.checkAll(sim::microseconds(3)), 1u);
    EXPECT_EQ(reg.sweeps(), 2u);
    EXPECT_EQ(healthy_runs, 2);
    EXPECT_EQ(reg.conditionsEvaluated(), 4u);
    EXPECT_EQ(reg.violationCount(), 1u);
    EXPECT_EQ(reg.violations()[0].component, "flaky");
}

TEST(InvariantRegistry, StoredViolationsAreCappedButCountIsExact)
{
    sim::InvariantRegistry reg;
    reg.setFailFast(false);
    reg.add("stormy", [](sim::InvariantChecker &chk) {
        for (int i = 0; i < 50; ++i)
            SIM_INVARIANT_MSG(chk, false, "failure #%d", i);
    });

    EXPECT_EQ(reg.checkAll(0), 50u);
    EXPECT_EQ(reg.checkAll(1), 50u);

    EXPECT_EQ(reg.violationCount(), 100u);
    // The stored list is bounded (kMaxStored) to keep reports usable.
    EXPECT_LE(reg.violations().size(), 64u);
    EXPECT_GT(reg.violations().size(), 0u);
    // The report still accounts for the dropped tail.
    EXPECT_NE(reg.report().find("36 more"), std::string::npos);
}

TEST(InvariantRegistryDeathTest, FailFastPanicsWithReport)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    sim::InvariantRegistry reg;
    reg.add("doomed", [](sim::InvariantChecker &chk) {
        SIM_INVARIANT_MSG(chk, false, "conservation broke");
    });
    EXPECT_DEATH(reg.checkAll(0), "conservation broke");
}

// --------------------------------------------------------------------
// Unit: SIM_CHECK runtime gate.
// --------------------------------------------------------------------

TEST(SimCheck, DisarmedChecksDoNotEvaluateOrPanic)
{
    ScopedChecks off(false);
    int evaluations = 0;
    auto costly_false = [&evaluations]() {
        ++evaluations;
        return false;
    };
    SIM_CHECK(costly_false());
    SIM_CHECK_MSG(costly_false(), "never printed");
    // The gate short-circuits: the condition itself is skipped.
    EXPECT_EQ(evaluations, 0);
}

TEST(SimCheck, ArmedChecksPassSilently)
{
    ScopedChecks on(true);
    int evaluations = 0;
    auto costly_true = [&evaluations]() {
        ++evaluations;
        return true;
    };
    SIM_CHECK(costly_true());
    SIM_CHECK_MSG(costly_true(), "never printed");
    EXPECT_EQ(evaluations, 2);
}

TEST(SimCheckDeathTest, ArmedFailurePanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    ScopedChecks on(true);
    EXPECT_DEATH(SIM_CHECK(2 + 2 == 5), "SIM_CHECK failed");
    EXPECT_DEATH(SIM_CHECK_MSG(false, "queue depth %d underflow", -1),
                 "queue depth -1 underflow");
}

TEST(SimCheck, RuntimeGateRoundTrips)
{
    ScopedChecks scope(sim::checksEnabled());
    sim::setChecksEnabled(true);
    EXPECT_TRUE(sim::checksEnabled());
    sim::setChecksEnabled(false);
    EXPECT_FALSE(sim::checksEnabled());
}

// --------------------------------------------------------------------
// Torture: whole systems under fixed seeds with every audit armed.
// Each configuration stresses a different subsystem mix; any invariant
// violation anywhere in the component tree fails the run.
// --------------------------------------------------------------------

namespace {

struct TortureCase {
    const char *name;
    SystemKind kind;
    workload::Kind workload;
    std::uint64_t seed;
    bool footprint;   ///< Enable sub-page footprint management.
    bool openLoop;    ///< Poisson arrivals instead of closed loop.
};

constexpr TortureCase kTortureCases[] = {
    {"astriflash_tatp", SystemKind::AstriFlash, workload::Kind::Tatp, 1,
     false, false},
    {"astriflash_silo_footprint", SystemKind::AstriFlash,
     workload::Kind::Silo, 2, true, false},
    {"nops_tpcc", SystemKind::AstriFlashNoPS, workload::Kind::Tpcc, 3,
     false, false},
    {"nodp_hashtable", SystemKind::AstriFlashNoDP,
     workload::Kind::HashTable, 4, false, false},
    {"flashsync_arrayswap", SystemKind::FlashSync,
     workload::Kind::ArraySwap, 5, false, false},
    {"astriflash_tatp_openloop", SystemKind::AstriFlash,
     workload::Kind::Tatp, 6, false, true},
};

} // namespace

class InvariantTorture : public ::testing::TestWithParam<int>
{
};

TEST_P(InvariantTorture, RunsCleanUnderArmedChecks)
{
    const TortureCase &tc = kTortureCases[GetParam()];

    SystemConfig cfg = smallCfg(tc.kind, tc.workload, tc.seed);
    if (tc.footprint)
        cfg.dramCache.footprintEnabled = true;
    if (tc.openLoop)
        cfg.meanInterarrival = sim::microseconds(5);

    ScopedChecks armed(true);
    System sys(cfg);
    // Collect every violation rather than dying on the first so a
    // regression produces the full report below.
    sys.invariantRegistry().setFailFast(false);
    const RunResults r = sys.run();

    EXPECT_EQ(r.jobs, cfg.measureJobs) << tc.name;
    EXPECT_GT(r.invariantSweeps, 1u) << tc.name;
    EXPECT_GT(r.invariantChecks, 0u) << tc.name;
    EXPECT_EQ(r.invariantViolations, 0u)
        << tc.name << "\n" << sys.invariantRegistry().report();
}

INSTANTIATE_TEST_SUITE_P(FixedSeeds, InvariantTorture,
                         ::testing::Range(0, 6), [](const auto &info) {
                             return std::string(
                                 kTortureCases[info.param].name);
                         });

// --------------------------------------------------------------------
// Conservation laws at quiesce, cross-checked through the stats JSON.
// --------------------------------------------------------------------

namespace {

/**
 * Run @p cfg with checks armed and assert the MSR / evict-buffer
 * conservation laws from the dumped stats registry: every allocated
 * miss entry is freed or still live, and every parked victim page is
 * drained or still parked.
 */
void
expectConservation(SystemConfig cfg, const char *label)
{
    ScopedChecks armed(true);
    System sys(cfg);
    sys.invariantRegistry().setFailFast(false);
    const RunResults r = sys.run();
    ASSERT_EQ(r.jobs, cfg.measureJobs) << label;
    EXPECT_EQ(r.invariantViolations, 0u)
        << label << "\n" << sys.invariantRegistry().report();

    const auto doc = minijson::parse(sys.statsRegistry().dumpJson());
    ASSERT_NE(doc, nullptr) << label;

    const DramCache *dc = sys.dramCache();
    ASSERT_NE(dc, nullptr) << label;

    // MSR lifetime conservation: allocations == frees + live entries.
    const double msr_allocs =
        jsonNum(*doc, "dcache.bc.msr.allocations");
    const double msr_frees = jsonNum(*doc, "dcache.bc.msr.frees");
    EXPECT_GT(msr_allocs, 0.0) << label;
    EXPECT_EQ(msr_allocs, msr_frees + dc->msr().occupancy()) << label;

    // Evict-buffer conservation: inserts == drains + live entries.
    const double eb_inserts =
        jsonNum(*doc, "dcache.bc.evictbuf.inserts");
    const double eb_drains = jsonNum(*doc, "dcache.bc.evictbuf.drains");
    EXPECT_EQ(eb_inserts, eb_drains + dc->evictBuffer().occupancy())
        << label;

    // Miss conservation: every backside fill freed exactly one MSR
    // entry. Fills reset at measurement start while the MSR counters
    // are cumulative, so lifetime frees bound the windowed fills.
    const double fills = jsonNum(*doc, "dcache.bc.fills");
    EXPECT_GT(fills, 0.0) << label;
    EXPECT_LE(fills, msr_frees) << label;

    // The JSON values mirror the live counters they were dumped from.
    EXPECT_EQ(static_cast<std::uint64_t>(msr_allocs),
              dc->msr().stats().allocations.value())
        << label;
    EXPECT_EQ(static_cast<std::uint64_t>(eb_inserts),
              dc->evictBuffer().stats().inserts.value())
        << label;
}

} // namespace

TEST(InvariantConservation, TatpClosedLoopHoldsAtQuiesce)
{
    expectConservation(
        smallCfg(SystemKind::AstriFlash, workload::Kind::Tatp, 11),
        "tatp closed loop");
}

TEST(InvariantConservation, TatpOpenLoopHoldsAtQuiesce)
{
    // The Figure-10 methodology: open-loop Poisson arrivals, so jobs
    // queue and the MSR quiesces with misses potentially in flight.
    SystemConfig cfg =
        smallCfg(SystemKind::AstriFlash, workload::Kind::Tatp, 12);
    cfg.meanInterarrival = sim::microseconds(5);
    expectConservation(cfg, "tatp open loop (fig10)");
}
