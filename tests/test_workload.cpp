/**
 * @file
 * Tests for the workload generators.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "workload/workload.hh"

using namespace astriflash::workload;
using astriflash::mem::kPageSize;

namespace {

WorkloadConfig
smallCfg()
{
    WorkloadConfig c;
    c.datasetBytes = 64ull << 20; // 64 MB
    c.seed = 3;
    return c;
}

} // namespace

TEST(Workload, AllKindsProduceJobs)
{
    for (Kind k : kAllKinds) {
        Workload w(k, smallCfg());
        const Job j = w.nextJob();
        EXPECT_GT(j.ops.size(), 8u) << kindName(k);
        EXPECT_GT(j.id, 0u);
    }
}

TEST(Workload, AddressesWithinDataset)
{
    for (Kind k : kAllKinds) {
        Workload w(k, smallCfg());
        for (int i = 0; i < 50; ++i) {
            const Job j = w.nextJob();
            for (const Op &op : j.ops) {
                if (op.type == Op::Type::Compute)
                    continue;
                ASSERT_LT(op.addr, smallCfg().datasetBytes)
                    << kindName(k);
                ASSERT_EQ(op.addr % 64, 0u); // block aligned
            }
        }
    }
}

TEST(Workload, DeterministicGivenSeed)
{
    for (Kind k : {Kind::Tatp, Kind::Masstree}) {
        Workload a(k, smallCfg()), b(k, smallCfg());
        for (int i = 0; i < 10; ++i) {
            const Job ja = a.nextJob();
            const Job jb = b.nextJob();
            ASSERT_EQ(ja.ops.size(), jb.ops.size());
            for (std::size_t o = 0; o < ja.ops.size(); ++o) {
                ASSERT_EQ(ja.ops[o].addr, jb.ops[o].addr);
                ASSERT_EQ(static_cast<int>(ja.ops[o].type),
                          static_cast<int>(jb.ops[o].type));
            }
        }
    }
}

TEST(Workload, ComputePrecedesEveryAccess)
{
    Workload w(Kind::Tatp, smallCfg());
    const Job j = w.nextJob();
    for (std::size_t i = 0; i < j.ops.size(); ++i) {
        if (j.ops[i].type != Op::Type::Compute) {
            ASSERT_GT(i, 0u);
            EXPECT_EQ(static_cast<int>(j.ops[i - 1].type),
                      static_cast<int>(Op::Type::Compute));
        }
    }
}

TEST(Workload, StoreFractionRoughlyMatchesProfile)
{
    for (Kind k : kAllKinds) {
        Workload w(k, smallCfg());
        std::uint64_t loads = 0, stores = 0;
        for (int i = 0; i < 300; ++i) {
            const Job j = w.nextJob();
            for (const Op &op : j.ops) {
                loads += op.type == Op::Type::Load;
                stores += op.type == Op::Type::Store;
            }
        }
        const double frac =
            static_cast<double>(stores) /
            static_cast<double>(loads + stores);
        // Store fraction applies to record/leaf accesses; index reads
        // dilute it, so only check broad consistency.
        EXPECT_GT(frac, 0.0) << kindName(k);
        EXPECT_LT(frac, 0.6) << kindName(k);
        if (k == Kind::ArraySwap) {
            EXPECT_NEAR(frac, 0.5, 0.01);
        }
    }
}

TEST(Workload, MeanComputeMatchesGeneratedOps)
{
    for (Kind k : kAllKinds) {
        Workload w(k, smallCfg());
        double total = 0;
        const int jobs = 200;
        for (int i = 0; i < jobs; ++i) {
            const Job j = w.nextJob();
            for (const Op &op : j.ops) {
                if (op.type == Op::Type::Compute)
                    total += static_cast<double>(op.compute);
            }
        }
        const double measured = total / jobs;
        const double predicted =
            static_cast<double>(w.meanComputePerJob());
        EXPECT_NEAR(measured, predicted, predicted * 0.15)
            << kindName(k);
    }
}

TEST(Workload, TatpJobsAreShortTransactions)
{
    // §VI-C: TATP "takes ten us on average" — compute plus on-chip
    // time lands near 10 us.
    Workload w(Kind::Tatp, smallCfg());
    const double us =
        static_cast<double>(w.meanComputePerJob()) / 1e6;
    EXPECT_GT(us, 5.0);
    EXPECT_LT(us, 15.0);
}

TEST(Workload, TpccIsComputeHeaviest)
{
    WorkloadConfig c = smallCfg();
    std::uint64_t tpcc = Workload(Kind::Tpcc, c).meanComputePerJob();
    for (Kind k : kAllKinds) {
        if (k == Kind::Tpcc)
            continue;
        EXPECT_GT(tpcc, Workload(k, c).meanComputePerJob())
            << kindName(k);
    }
}

TEST(Workload, HotRegionPagesDistinctFromColdPages)
{
    Workload w(Kind::Tatp, smallCfg());
    const std::uint64_t dataset_pages =
        smallCfg().datasetBytes / kPageSize;
    const std::uint64_t hot = w.hotRegionPages();
    EXPECT_GT(hot, 0u);
    EXPECT_LT(hot, dataset_pages / 20);
    EXPECT_LE(w.workingSet(), dataset_pages);
}

TEST(Workload, ColdAccessSkewFollowsMixture)
{
    // ~97% of cold accesses land inside the working set.
    WorkloadConfig c = smallCfg();
    Workload w(Kind::ArraySwap, c); // pure cold accesses
    const std::uint64_t ws_bytes = w.workingSet() * kPageSize;
    std::uint64_t in_ws = 0, total = 0;
    for (int i = 0; i < 500; ++i) {
        const Job j = w.nextJob();
        for (const Op &op : j.ops) {
            if (op.type == Op::Type::Compute)
                continue;
            ++total;
            in_ws += op.addr < ws_bytes;
        }
    }
    const double frac =
        static_cast<double>(in_ws) / static_cast<double>(total);
    // uniformFraction=0.03 of accesses go uniform; nearly all others
    // stay inside the working set (a few uniform draws also land
    // there by chance).
    EXPECT_GT(frac, 0.95);
    EXPECT_LT(frac, 0.995);
}

TEST(Workload, ComputeScaleMultiplies)
{
    WorkloadConfig c = smallCfg();
    c.computeScale = 2.0;
    Workload scaled(Kind::Tatp, c);
    Workload base(Kind::Tatp, smallCfg());
    EXPECT_NEAR(static_cast<double>(scaled.meanComputePerJob()),
                2.0 * static_cast<double>(base.meanComputePerJob()),
                static_cast<double>(base.meanComputePerJob()) * 0.01);
}

TEST(Workload, PoissonArrivalsHaveConfiguredMean)
{
    PoissonArrivals p(astriflash::sim::microseconds(5), 9);
    astriflash::sim::Ticks t = 0;
    const int n = 100000;
    astriflash::sim::Ticks prev = 0;
    double sum = 0;
    for (int i = 0; i < n; ++i) {
        t = p.next(t);
        sum += static_cast<double>(t - prev);
        prev = t;
    }
    EXPECT_NEAR(sum / n,
                static_cast<double>(astriflash::sim::microseconds(5)),
                static_cast<double>(
                    astriflash::sim::microseconds(5)) * 0.02);
}

TEST(Workload, KindNamesUnique)
{
    std::set<std::string> names;
    for (Kind k : kAllKinds)
        names.insert(kindName(k));
    EXPECT_EQ(names.size(), 7u);
}
