/**
 * @file
 * Tests for trace record/replay and the System job-source hook.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/system.hh"
#include "workload/trace.hh"
#include "workload/workload.hh"

using namespace astriflash;
using namespace astriflash::workload;

namespace {

std::string
tempTracePath(const char *tag)
{
    return std::string(::testing::TempDir()) + "astri_trace_" + tag +
           ".bin";
}

} // namespace

TEST(Trace, RoundTripPreservesOps)
{
    const std::string path = tempTracePath("roundtrip");
    WorkloadConfig wc;
    wc.datasetBytes = 64ull << 20;
    Workload gen(Kind::Tatp, wc);

    std::vector<Job> originals;
    {
        TraceWriter writer(path);
        for (int i = 0; i < 20; ++i) {
            Job j = gen.nextJob();
            writer.append(j);
            originals.push_back(std::move(j));
        }
        EXPECT_EQ(writer.count(), 20u);
    }

    TraceReader reader(path);
    ASSERT_EQ(reader.size(), 20u);
    for (int i = 0; i < 20; ++i) {
        const Job replay = TraceReader(path).nextJob();
        (void)replay;
        const auto &ops = reader.jobOps(i);
        ASSERT_EQ(ops.size(), originals[i].ops.size()) << i;
        for (std::size_t o = 0; o < ops.size(); ++o) {
            EXPECT_EQ(static_cast<int>(ops[o].type),
                      static_cast<int>(originals[i].ops[o].type));
            if (ops[o].type == Op::Type::Compute)
                EXPECT_EQ(ops[o].compute,
                          originals[i].ops[o].compute);
            else
                EXPECT_EQ(ops[o].addr, originals[i].ops[o].addr);
        }
    }
    std::remove(path.c_str());
}

TEST(Trace, ReplayCyclesWithFreshIds)
{
    const std::string path = tempTracePath("cycle");
    WorkloadConfig wc;
    wc.datasetBytes = 64ull << 20;
    Workload gen(Kind::HashTable, wc);
    {
        TraceWriter writer(path);
        for (int i = 0; i < 3; ++i)
            writer.append(gen.nextJob());
    }
    TraceReader reader(path);
    const Job a = reader.nextJob();
    reader.nextJob();
    reader.nextJob();
    const Job wrapped = reader.nextJob(); // back to template 0
    EXPECT_NE(a.id, wrapped.id);
    ASSERT_EQ(a.ops.size(), wrapped.ops.size());
    for (std::size_t o = 0; o < a.ops.size(); ++o) {
        if (a.ops[o].type != Op::Type::Compute) {
            EXPECT_EQ(a.ops[o].addr, wrapped.ops[o].addr);
        }
    }
    std::remove(path.c_str());
}

TEST(TraceDeath, RejectsGarbageFile)
{
    const std::string path = tempTracePath("garbage");
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        std::fputs("not a trace", f);
        std::fclose(f);
    }
    EXPECT_EXIT(TraceReader reader(path), ::testing::ExitedWithCode(1),
                "not a trace file");
    std::remove(path.c_str());
}

TEST(Trace, SystemRunsFromTraceSource)
{
    // Record a short trace, then drive a full system from it.
    const std::string path = tempTracePath("system");
    core::SystemConfig cfg;
    cfg.kind = core::SystemKind::AstriFlash;
    cfg.cores = 2;
    cfg.workloadKind = Kind::Tatp;
    cfg.workload.datasetBytes = 256ull << 20;
    cfg.warmupJobs = 50;
    cfg.measureJobs = 400;

    {
        Workload gen(Kind::Tatp, cfg.workload);
        TraceWriter writer(path);
        for (int i = 0; i < 100; ++i)
            writer.append(gen.nextJob());
    }

    TraceReader reader(path);
    core::System sys(cfg);
    sys.setJobSource(
        [&reader](std::uint32_t) { return reader.nextJob(); });
    const auto r = sys.run();
    EXPECT_EQ(r.jobs, 400u);
    EXPECT_GT(r.throughputJobsPerSec, 0.0);
    EXPECT_GT(r.dramCacheHitRatio, 0.8);
    std::remove(path.c_str());
}
