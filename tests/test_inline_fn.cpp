/**
 * @file
 * InlineFunction tests: inline vs boxed storage, move semantics, and
 * destruction accounting for the kernel's callback type.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <utility>

#include "sim/inline_fn.hh"

using astriflash::sim::InlineFunction;

TEST(InlineFunction, EmptyByDefault)
{
    InlineFunction<48> fn;
    EXPECT_FALSE(fn);
}

TEST(InlineFunction, SmallCallableStoredInline)
{
    int hits = 0;
    InlineFunction<48> fn([&hits] { ++hits; });
    ASSERT_TRUE(fn);
    EXPECT_TRUE(fn.inlineStored());
    fn();
    fn();
    EXPECT_EQ(hits, 2);
}

TEST(InlineFunction, LargeCallableFallsBackToBox)
{
    std::array<std::uint64_t, 16> payload{};
    payload[0] = 7;
    payload[15] = 9;
    int sum = 0;
    InlineFunction<48> fn([payload, &sum] {
        sum += static_cast<int>(payload[0] + payload[15]);
    });
    ASSERT_TRUE(fn);
    EXPECT_FALSE(fn.inlineStored());
    fn();
    EXPECT_EQ(sum, 16);
}

TEST(InlineFunction, MoveTransfersOwnership)
{
    int hits = 0;
    InlineFunction<48> a([&hits] { ++hits; });
    InlineFunction<48> b(std::move(a));
    EXPECT_FALSE(a); // NOLINT(bugprone-use-after-move): documented state
    ASSERT_TRUE(b);
    b();
    EXPECT_EQ(hits, 1);

    InlineFunction<48> c;
    c = std::move(b);
    EXPECT_FALSE(b); // NOLINT(bugprone-use-after-move): documented state
    ASSERT_TRUE(c);
    c();
    EXPECT_EQ(hits, 2);
}

TEST(InlineFunction, ResetDestroysCapturedState)
{
    auto token = std::make_shared<int>(42);
    std::weak_ptr<int> watch = token;
    InlineFunction<48> fn([token] { (void)*token; });
    token.reset();
    EXPECT_FALSE(watch.expired()); // The capture keeps it alive.
    fn.reset();
    EXPECT_TRUE(watch.expired());
    EXPECT_FALSE(fn);
}

TEST(InlineFunction, ReassignmentReplacesCallable)
{
    int first = 0, second = 0;
    InlineFunction<48> fn([&first] { ++first; });
    fn();
    fn = InlineFunction<48>([&second] { ++second; });
    fn();
    EXPECT_EQ(first, 1);
    EXPECT_EQ(second, 1);
}

TEST(InlineFunction, MoveOnlyCaptureWorks)
{
    auto owned = std::make_unique<int>(5);
    int seen = 0;
    InlineFunction<48> fn(
        [p = std::move(owned), &seen] { seen = *p; });
    fn();
    EXPECT_EQ(seen, 5);
}
