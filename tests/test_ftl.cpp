/**
 * @file
 * Tests for the flash translation layer: static preload, out-of-place
 * writes, garbage collection, and wear leveling.
 */

#include <gtest/gtest.h>

#include <set>

#include "flash/ftl.hh"

using namespace astriflash::flash;

namespace {

FlashConfig
tinyCfg()
{
    FlashConfig c;
    c.channels = 2;
    c.diesPerChannel = 1;
    c.planesPerDie = 2; // 4 planes total
    c.blocksPerPlane = 8;
    c.pagesPerBlock = 4;
    c.overprovisionRatio = 0.25;
    c.gcFreeBlockLow = 2;
    return c;
}

} // namespace

TEST(Ftl, GeometryMath)
{
    const FlashConfig c = tinyCfg();
    EXPECT_EQ(c.totalPlanes(), 4u);
    EXPECT_EQ(c.rawBytes(), 4ull * 8 * 4 * 4096);
    EXPECT_EQ(c.userPages(), (4ull * 8 * 4 * 3) / 4); // 75%
}

TEST(Ftl, StaticTranslationIsStriped)
{
    Ftl ftl("f", tinyCfg());
    const PhysPage p0 = ftl.translate(Lpn(0));
    const PhysPage p1 = ftl.translate(Lpn(1));
    EXPECT_EQ(p0.plane, 0u);
    EXPECT_EQ(p1.plane, 1u);
    // Same within-plane slot for consecutive stripes.
    EXPECT_EQ(p0.block, p1.block);
    EXPECT_EQ(p0.page, p1.page);
    // Consistent across calls.
    const PhysPage again = ftl.translate(Lpn(0));
    EXPECT_EQ(again.block, p0.block);
    EXPECT_EQ(again.page, p0.page);
}

TEST(Ftl, WriteRemapsOutOfPlace)
{
    Ftl ftl("f", tinyCfg());
    const PhysPage before = ftl.translate(Lpn(5));
    GcWork gc;
    const PhysPage after = ftl.write(Lpn(5), &gc);
    EXPECT_EQ(after.plane, before.plane); // plane-affine writes
    EXPECT_TRUE(after.block != before.block ||
                after.page != before.page);
    const PhysPage now = ftl.translate(Lpn(5));
    EXPECT_EQ(now.block, after.block);
    EXPECT_EQ(now.page, after.page);
}

TEST(Ftl, RewritesInvalidateOldLocations)
{
    Ftl ftl("f", tinyCfg());
    GcWork gc;
    // Rewriting the same lpn repeatedly must not leak valid pages.
    for (int i = 0; i < 50; ++i)
        ftl.write(Lpn(4), &gc); // lpn 4 -> plane 0
    EXPECT_EQ(ftl.stats().hostWrites.value(), 50u);
    // All written copies except the live one are invalid; the FTL
    // must have GC'd rather than run out of space (plane 0 has
    // 8 blocks x 4 pages = 32 page slots).
    EXPECT_GE(ftl.stats().erases.value(), 1u);
}

TEST(Ftl, GcRelocatesOnlyValidPages)
{
    const FlashConfig gcfg = tinyCfg();
    const std::uint64_t preload = gcfg.userPages() / 2;
    Ftl ftl("f", gcfg, preload);
    GcWork gc;
    std::uint32_t total_reloc = 0;
    for (int i = 0; i < 200; ++i) {
        ftl.write(Lpn((i * 4) % preload), &gc);
        total_reloc += gc.relocatedPages;
    }
    // Write amplification stays sane when rewriting a small set.
    EXPECT_LT(ftl.stats().writeAmplification(), 3.0);
    EXPECT_EQ(ftl.stats().gcRelocations.value(), total_reloc);
}

TEST(Ftl, PreloadSmallerThanCapacityLeavesFreeBlocks)
{
    const FlashConfig c = tinyCfg();
    Ftl ftl("f", c, c.userPages() / 2);
    EXPECT_EQ(ftl.preloadedPages(), c.userPages() / 2);
    // Every plane keeps free pages for writes.
    for (std::uint32_t p = 0; p < c.totalPlanes(); ++p)
        EXPECT_GT(ftl.freePagesInPlane(p), 0u);
}

TEST(Ftl, WearLevelingBoundsEraseSpread)
{
    FlashConfig c = tinyCfg();
    c.blocksPerPlane = 16;
    Ftl ftl("f", c, c.userPages() / 4);
    GcWork gc;
    // Hammer a few lpns; tie-break by erase count should spread wear.
    for (int i = 0; i < 3000; ++i)
        ftl.write(Lpn(i % 8), &gc);
    EXPECT_GE(ftl.stats().erases.value(), 10u);
    // Spread stays well below the total erase count.
    EXPECT_LT(ftl.eraseCountSpread(),
              ftl.stats().erases.value() / 2 + 2);
}

TEST(Ftl, WriteAmplificationReported)
{
    const FlashConfig wcfg = tinyCfg();
    Ftl ftl("f", wcfg, wcfg.userPages() / 2);
    GcWork gc;
    ftl.write(Lpn(0), &gc);
    EXPECT_DOUBLE_EQ(ftl.stats().writeAmplification(), 1.0);
}

TEST(FtlDeath, ReadBeyondPreloadPanics)
{
    const FlashConfig c = tinyCfg();
    Ftl ftl("f", c, 8);
    EXPECT_DEATH(ftl.translate(Lpn(9)), "beyond the preloaded");
}

TEST(FtlDeath, PreloadBeyondCapacityIsFatal)
{
    const FlashConfig c = tinyCfg();
    EXPECT_EXIT(Ftl("f", c, c.userPages() + 1),
                ::testing::ExitedWithCode(1), "exceeds user capacity");
}

TEST(FlashConfig, ForCapacityMeetsTarget)
{
    for (std::uint64_t gb : {1ull, 8ull, 64ull, 1024ull}) {
        const auto cfg = FlashConfig::forCapacity(gb << 30);
        EXPECT_GE(cfg.userBytes(), gb << 30) << gb;
    }
    // Larger SSDs get more planes (the §VI-D scaling argument).
    const auto small = FlashConfig::forCapacity(256ull << 30);
    const auto big = FlashConfig::forCapacity(1ull << 40);
    EXPECT_GT(big.totalPlanes() * big.blocksPerPlane,
              small.totalPlanes() * small.blocksPerPlane);
}
