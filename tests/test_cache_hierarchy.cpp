/**
 * @file
 * Tests for the on-chip cache hierarchy.
 */

#include <gtest/gtest.h>

#include "mem/cache_hierarchy.hh"

using namespace astriflash::mem;
using astriflash::sim::nanoseconds;

namespace {

std::vector<CacheLevelConfig>
tinyLevels()
{
    return {
        {"l1", 4 * 64, 64, 2, nanoseconds(1)},
        {"l2", 16 * 64, 64, 4, nanoseconds(4)},
        {"llc", 64 * 64, 64, 8, nanoseconds(10)},
    };
}

} // namespace

TEST(CacheHierarchy, ColdAccessMissesEverywhere)
{
    CacheHierarchy h("h", tinyLevels());
    const auto r = h.access(0x1000, false);
    EXPECT_TRUE(r.llcMiss);
    EXPECT_EQ(r.hitLevel, -1);
    EXPECT_EQ(r.latency, nanoseconds(15));
    EXPECT_EQ(h.fullMissLatency(), nanoseconds(15));
}

TEST(CacheHierarchy, FillThenL1Hit)
{
    CacheHierarchy h("h", tinyLevels());
    h.access(0x1000, false);
    h.fillFromMemory(0x1000, false);
    const auto r = h.access(0x1000, false);
    EXPECT_FALSE(r.llcMiss);
    EXPECT_EQ(r.hitLevel, 0);
    EXPECT_EQ(r.latency, nanoseconds(1));
}

TEST(CacheHierarchy, LowerLevelHitRefillsUpper)
{
    CacheHierarchy h("h", tinyLevels());
    h.fillFromMemory(0x1000, false);
    // Push 0x1000 out of tiny L1 with conflicting lines (same set).
    // L1: 2 sets, line 64 -> set stride 128.
    h.fillFromMemory(0x1000 + 128, false);
    h.fillFromMemory(0x1000 + 256, false);
    EXPECT_FALSE(h.level(0).contains(0x1000));
    EXPECT_TRUE(h.level(2).contains(0x1000));
    const auto r = h.access(0x1000, false);
    EXPECT_FALSE(r.llcMiss);
    EXPECT_GT(r.hitLevel, 0);
    // Refilled into L1 on the way.
    EXPECT_TRUE(h.level(0).contains(0x1000));
}

TEST(CacheHierarchy, DirtyEvictionReachesWritebackList)
{
    CacheHierarchy h("h", tinyLevels());
    // Dirty a line, then stream enough same-set lines through all
    // levels to push it out of the LLC. The dirty copy can bounce
    // L1/L2 -> LLC -> memory more than once (each level holds its own
    // dirty copy after a write-fill), but it must reach memory at
    // least once and never while still resident dirty in the LLC.
    h.fillFromMemory(0x0, true);
    // LLC: 8 sets -> same-set stride 8*64 = 512.
    std::uint64_t wbs = 0;
    for (int i = 1; i <= 16; ++i) {
        h.fillFromMemory(i * 512, false);
        for (Addr a : h.writebacks()) {
            wbs += a == 0x0;
            EXPECT_FALSE(h.level(2).contains(a));
        }
    }
    EXPECT_GE(wbs, 1u);
    EXPECT_GE(h.stats().llcWritebacks.value(), wbs);
}

TEST(CacheHierarchy, WriteMarksDirtyThroughHit)
{
    CacheHierarchy h("h", tinyLevels());
    h.fillFromMemory(0x40, false);
    const auto r = h.access(0x40, true);
    EXPECT_EQ(r.hitLevel, 0);
    // Invalidate reports the dirtiness.
    EXPECT_TRUE(h.invalidateBlock(0x40));
}

TEST(CacheHierarchy, InvalidatePageDropsAllBlocks)
{
    CacheHierarchy h("h", tinyLevels());
    h.fillFromMemory(0x2000, false);
    h.fillFromMemory(0x2040, false);
    h.invalidatePage(0x2010);
    EXPECT_TRUE(h.access(0x2000, false).llcMiss);
    EXPECT_TRUE(h.access(0x2040, false).llcMiss);
}

TEST(CacheHierarchy, StatsAccumulate)
{
    CacheHierarchy h("h", tinyLevels());
    h.access(0x1000, false);
    h.fillFromMemory(0x1000, false);
    h.access(0x1000, false);
    EXPECT_EQ(h.stats().accesses.value(), 2u);
    EXPECT_EQ(h.stats().llcMisses.value(), 1u);
}

TEST(CacheHierarchy, DefaultConfigMatchesPaper)
{
    const auto cfg = defaultHierarchyConfig();
    ASSERT_EQ(cfg.size(), 3u);
    EXPECT_EQ(cfg[0].capacity, 64u * 1024);
    EXPECT_EQ(cfg[2].capacity, 1024u * 1024); // 1 MB LLC slice/core
    CacheHierarchy h("core0", cfg);
    EXPECT_EQ(h.numLevels(), 3u);
}
