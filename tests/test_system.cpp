/**
 * @file
 * Integration tests: full-system runs of every §V-B configuration on
 * a scaled-down dataset, checking the paper's qualitative orderings
 * and the methodology invariants.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/system.hh"

using namespace astriflash;
using namespace astriflash::core;

namespace {

SystemConfig
smallCfg(SystemKind kind,
         workload::Kind wl = workload::Kind::Tatp)
{
    SystemConfig cfg;
    cfg.kind = kind;
    cfg.cores = 2;
    cfg.workloadKind = wl;
    cfg.workload.datasetBytes = 256ull << 20; // 256 MB scaled
    cfg.warmupJobs = 200;
    cfg.measureJobs = 1500;
    return cfg;
}

RunResults
runKind(SystemKind kind, workload::Kind wl = workload::Kind::Tatp)
{
    System sys(smallCfg(kind, wl));
    return sys.run();
}

} // namespace

TEST(SystemIntegration, AllConfigsCompleteMeasurement)
{
    for (SystemKind kind :
         {SystemKind::DramOnly, SystemKind::AstriFlash,
          SystemKind::AstriFlashIdeal, SystemKind::AstriFlashNoPS,
          SystemKind::AstriFlashNoDP, SystemKind::OsSwap,
          SystemKind::FlashSync}) {
        const auto r = runKind(kind);
        EXPECT_EQ(r.jobs, 1500u) << systemKindName(kind);
        EXPECT_GT(r.throughputJobsPerSec, 0.0)
            << systemKindName(kind);
        EXPECT_GT(r.serviceUs(0.99), r.avgServiceUs() * 0.5)
            << systemKindName(kind);
    }
}

TEST(SystemIntegration, ThroughputOrderingMatchesFig9)
{
    const double dram =
        runKind(SystemKind::DramOnly).throughputJobsPerSec;
    const double astri =
        runKind(SystemKind::AstriFlash).throughputJobsPerSec;
    const double ideal =
        runKind(SystemKind::AstriFlashIdeal).throughputJobsPerSec;
    const double os_swap =
        runKind(SystemKind::OsSwap).throughputJobsPerSec;
    const double sync =
        runKind(SystemKind::FlashSync).throughputJobsPerSec;

    // Fig. 9 ordering: DRAM >= Ideal >= AstriFlash > OS-Swap > Sync.
    EXPECT_GE(dram * 1.005, ideal);
    EXPECT_GE(ideal * 1.005, astri);
    EXPECT_GT(astri, os_swap);
    EXPECT_GT(os_swap, sync);

    // Magnitudes: AstriFlash ~95%, OS-Swap ~58%, Flash-Sync ~27%.
    EXPECT_GT(astri / dram, 0.88);
    EXPECT_LT(os_swap / dram, 0.75);
    EXPECT_GT(os_swap / dram, 0.40);
    EXPECT_LT(sync / dram, 0.40);
}

TEST(SystemIntegration, ServiceLatencyOrderingMatchesTable2)
{
    const double sync = runKind(SystemKind::FlashSync).serviceUs(0.99);
    const double astri = runKind(SystemKind::AstriFlash).serviceUs(0.99);
    const double nops =
        runKind(SystemKind::AstriFlashNoPS).serviceUs(0.99);
    const double nodp =
        runKind(SystemKind::AstriFlashNoDP).serviceUs(0.99);

    // Table II: AstriFlash close to Flash-Sync; noPS and noDP worse.
    EXPECT_LT(astri / sync, 2.0);
    EXPECT_GT(nops / sync, 3.0);
    EXPECT_GT(nodp / astri, 1.1);
}

TEST(SystemIntegration, MissIntervalCalibrated)
{
    // §V-A: a DRAM-cache miss every 5-25 us of execution.
    const auto r = runKind(SystemKind::AstriFlash);
    EXPECT_GT(r.avgExecBetweenMissesUs, 3.0);
    EXPECT_LT(r.avgExecBetweenMissesUs, 40.0);
}

TEST(SystemIntegration, DramCacheHitRatioHigh)
{
    const auto r = runKind(SystemKind::AstriFlash);
    EXPECT_GT(r.dramCacheHitRatio, 0.90);
    EXPECT_LT(r.dramCacheHitRatio, 1.0);
}

TEST(SystemIntegration, OsSwapIssuesShootdowns)
{
    const auto r = runKind(SystemKind::OsSwap);
    EXPECT_GT(r.shootdowns, 100u);
    const auto astri = runKind(SystemKind::AstriFlash);
    EXPECT_EQ(astri.shootdowns, 0u); // hardware-managed: none
}

TEST(SystemIntegration, FlashTrafficOnlyOnFlashConfigs)
{
    EXPECT_EQ(runKind(SystemKind::DramOnly).flashReads, 0u);
    EXPECT_GT(runKind(SystemKind::AstriFlash).flashReads, 500u);
}

TEST(SystemIntegration, WritesReachFlashViaDirtyEvictions)
{
    // ArraySwap is write-heavy: dirty pages must eventually be
    // evicted and written back to flash. Needs a long enough run for
    // dirtied pages to age out of the LRU cache.
    SystemConfig cfg =
        smallCfg(SystemKind::AstriFlash, workload::Kind::ArraySwap);
    cfg.measureJobs = 6000;
    System sys(cfg);
    const auto r = sys.run();
    EXPECT_GT(r.flashWrites, 0u);
}

TEST(SystemIntegration, OpenLoopMeasuresResponseAboveService)
{
    SystemConfig cfg = smallCfg(SystemKind::AstriFlash);
    // Load the 2-core system at ~60%: service ~16 us/job/core.
    cfg.meanInterarrival = sim::microseconds(13);
    System sys(cfg);
    const auto r = sys.run();
    EXPECT_EQ(r.jobs, 1500u);
    EXPECT_GE(r.responseUs(0.99), r.serviceUs(0.99) * 0.99);
    EXPECT_GT(r.avgResponseUs(), 0.0);
}

TEST(SystemIntegration, DeterministicAcrossRuns)
{
    const auto a = runKind(SystemKind::AstriFlash);
    const auto b = runKind(SystemKind::AstriFlash);
    EXPECT_DOUBLE_EQ(a.throughputJobsPerSec, b.throughputJobsPerSec);
    EXPECT_DOUBLE_EQ(a.serviceUs(0.99), b.serviceUs(0.99));
    EXPECT_EQ(a.flashReads, b.flashReads);
}

TEST(SystemIntegration, AllWorkloadsRunOnAstriFlash)
{
    for (workload::Kind wl : workload::kAllKinds) {
        SystemConfig cfg = smallCfg(SystemKind::AstriFlash, wl);
        cfg.measureJobs = 400;
        cfg.warmupJobs = 100;
        System sys(cfg);
        const auto r = sys.run();
        EXPECT_EQ(r.jobs, 400u) << workload::kindName(wl);
        EXPECT_GT(r.dramCacheHitRatio, 0.85)
            << workload::kindName(wl);
    }
}

TEST(SystemIntegration, PeakOutstandingMissesBeyondMshrScale)
{
    // The motivation for the in-DRAM MSR: concurrent misses exceed
    // what an on-chip CAM could reasonably hold per-core.
    SystemConfig cfg = smallCfg(SystemKind::AstriFlash);
    cfg.cores = 4;
    System sys(cfg);
    const auto r = sys.run();
    EXPECT_GT(r.peakOutstandingMisses, 8u);
}

TEST(SystemIntegration, ForwardProgressPreventsLivelock)
{
    // A DRAM cache of minimal size thrashes violently; forward
    // progress must still guarantee completion.
    SystemConfig cfg = smallCfg(SystemKind::AstriFlash);
    cfg.dramCacheRatio = 0.002; // 0.2%: pathological
    cfg.warmupJobs = 50;
    cfg.measureJobs = 300;
    System sys(cfg);
    const auto r = sys.run();
    EXPECT_EQ(r.jobs, 300u);
    std::uint64_t forced_sync = 0;
    for (std::uint32_t c = 0; c < cfg.cores; ++c)
        forced_sync += sys.coreAt(c).stats().syncMissStalls.value();
    EXPECT_GT(forced_sync, 0u);
}
