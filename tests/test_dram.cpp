/**
 * @file
 * Tests for the DRAM timing model.
 */

#include <gtest/gtest.h>

#include "mem/dram.hh"

using namespace astriflash::mem;
using namespace astriflash::sim;

namespace {

DramConfig
simpleCfg()
{
    DramConfig c;
    c.tRcd = 10;
    c.tCas = 10;
    c.tRp = 10;
    c.tBurst = 4;
    c.rowBytes = 1024;
    c.banksPerChannel = 2;
    c.channels = 2;
    return c;
}

} // namespace

TEST(Dram, ClosedRowLatency)
{
    Dram d("d", simpleCfg());
    const auto r = d.access(0, 100, false);
    EXPECT_EQ(r.row, DramRowResult::Closed);
    EXPECT_EQ(r.start, 100u);
    EXPECT_EQ(r.complete, 100u + 10 + 10 + 4); // tRCD + tCAS + burst
}

TEST(Dram, RowHitSkipsActivate)
{
    Dram d("d", simpleCfg());
    const auto first = d.access(0, 0, false);
    const auto second = d.access(64, first.complete, false);
    EXPECT_EQ(second.row, DramRowResult::Hit);
    EXPECT_EQ(second.complete - second.start, 10u + 4); // tCAS + burst
}

TEST(Dram, RowConflictPaysPrecharge)
{
    Dram d("d", simpleCfg());
    const auto first = d.access(0, 0, false);
    // Same bank, different row: row stride = rowBytes * channels *
    // banks (with row-granularity interleave) = 1024 * 4.
    const auto conflict = d.access(4096, first.complete, false);
    EXPECT_EQ(conflict.row, DramRowResult::Conflict);
    EXPECT_EQ(conflict.complete - conflict.start, 10u + 10 + 10 + 4);
}

TEST(Dram, SameRowSharesBank)
{
    // The DRAM-cache FC depends on tag+data CAS hitting one open row.
    Dram d("d", simpleCfg());
    const auto tag = d.access(2048, 0, false);
    const auto data = d.access(2048 + 64, tag.complete, false);
    EXPECT_EQ(data.row, DramRowResult::Hit);
}

TEST(Dram, BankConflictQueues)
{
    Dram d("d", simpleCfg());
    const auto a = d.access(0, 0, false);
    // Same bank (same row even): arrives while busy -> waits.
    const auto b = d.access(0, 0, false);
    EXPECT_EQ(b.start, a.complete);
}

TEST(Dram, DifferentRowsDifferentChannelsOverlap)
{
    Dram d("d", simpleCfg());
    const auto a = d.access(0, 0, false);
    const auto b = d.access(1024, 0, false); // next row -> next channel
    EXPECT_EQ(b.start, 0u);
    EXPECT_EQ(a.start, 0u);
}

TEST(Dram, MultiBurstTransfer)
{
    Dram d("d", simpleCfg());
    const auto page = d.access(0, 0, true, 4096);
    // 4096/64 = 64 bursts.
    EXPECT_EQ(page.complete, 0u + 10 + 10 + 64 * 4);
}

TEST(Dram, OccupyBankDelaysNextAccess)
{
    Dram d("d", simpleCfg());
    const Ticks until = d.occupyBank(0, 50, 100);
    EXPECT_EQ(until, 150u);
    EXPECT_EQ(d.bankFreeAt(0), 150u);
    const auto r = d.access(0, 0, false);
    EXPECT_EQ(r.start, 150u);
}

TEST(Dram, StatsClassifyRowOutcomes)
{
    Dram d("d", simpleCfg());
    d.access(0, 0, false);
    d.access(64, 100, false);
    d.access(4096, 200, true);
    EXPECT_EQ(d.stats().rowClosed.value(), 1u);
    EXPECT_EQ(d.stats().rowHits.value(), 1u);
    EXPECT_EQ(d.stats().rowConflicts.value(), 1u);
    EXPECT_EQ(d.stats().reads.value(), 2u);
    EXPECT_EQ(d.stats().writes.value(), 1u);
}

TEST(DramDeath, RejectsBadConfig)
{
    DramConfig c = simpleCfg();
    c.channels = 0;
    EXPECT_EXIT(Dram("d", c), ::testing::ExitedWithCode(1), "channel");
}
