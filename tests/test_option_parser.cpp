/**
 * @file
 * Tests for the reusable long-flag command-line parser shared by
 * astriflash_sim and the bench binaries.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/option_parser.hh"

using namespace astriflash::sim;

namespace {

/** Build an argv-shaped view over string literals. */
class Argv
{
  public:
    explicit Argv(std::vector<std::string> args) : store(std::move(args))
    {
        ptrs.push_back("prog");
        for (const std::string &a : store)
            ptrs.push_back(a.c_str());
    }

    int argc() const { return static_cast<int>(ptrs.size()); }
    const char *const *argv() const { return ptrs.data(); }

  private:
    std::vector<std::string> store;
    std::vector<const char *> ptrs;
};

} // namespace

TEST(OptionParser, ParsesEveryType)
{
    std::string name = "default";
    std::uint64_t jobs = 0;
    std::uint32_t cores = 0;
    double load = 0.0;
    bool footprint = false;
    std::string custom;

    OptionParser opts("prog", "test");
    opts.addString("name", &name, "a string");
    opts.addUint("jobs", &jobs, "a count");
    opts.addUint32("cores", &cores, "a small count");
    opts.addDouble("load", &load, "a fraction");
    opts.addFlag("footprint", &footprint, "a flag");
    opts.addCustom("mode", "NAME", "a custom value",
                   [&](const std::string &v) {
                       custom = v;
                       return v != "bad";
                   });

    const Argv a({"--name=silo", "--jobs=20000", "--cores=8",
                  "--load=0.85", "--footprint", "--mode=fast"});
    EXPECT_EQ(opts.parse(a.argc(), a.argv()), OptionParser::Status::Ok);
    EXPECT_EQ(name, "silo");
    EXPECT_EQ(jobs, 20000u);
    EXPECT_EQ(cores, 8u);
    EXPECT_DOUBLE_EQ(load, 0.85);
    EXPECT_TRUE(footprint);
    EXPECT_EQ(custom, "fast");
}

TEST(OptionParser, DefaultsSurviveWhenFlagsAbsent)
{
    std::uint64_t jobs = 8000;
    bool footprint = false;
    OptionParser opts("prog", "test");
    opts.addUint("jobs", &jobs, "a count");
    opts.addFlag("footprint", &footprint, "a flag");
    const Argv a({});
    EXPECT_EQ(opts.parse(a.argc(), a.argv()), OptionParser::Status::Ok);
    EXPECT_EQ(jobs, 8000u);
    EXPECT_FALSE(footprint);
}

TEST(OptionParser, RejectsUnknownFlag)
{
    OptionParser opts("prog", "test");
    const Argv a({"--nope=1"});
    EXPECT_EQ(opts.parse(a.argc(), a.argv()),
              OptionParser::Status::Error);
    EXPECT_NE(opts.error().find("nope"), std::string::npos);
}

TEST(OptionParser, RejectsBadNumericValue)
{
    std::uint64_t jobs = 0;
    OptionParser opts("prog", "test");
    opts.addUint("jobs", &jobs, "a count");
    const Argv a({"--jobs=many"});
    EXPECT_EQ(opts.parse(a.argc(), a.argv()),
              OptionParser::Status::Error);
}

TEST(OptionParser, RejectsMissingValueForValuedOption)
{
    std::uint64_t jobs = 0;
    OptionParser opts("prog", "test");
    opts.addUint("jobs", &jobs, "a count");
    const Argv a({"--jobs"});
    EXPECT_EQ(opts.parse(a.argc(), a.argv()),
              OptionParser::Status::Error);
}

TEST(OptionParser, CustomHandlerCanReject)
{
    OptionParser opts("prog", "test");
    opts.addCustom("mode", "NAME", "a custom value",
                   [](const std::string &v) { return v != "bad"; });
    const Argv good({"--mode=ok"});
    EXPECT_EQ(opts.parse(good.argc(), good.argv()),
              OptionParser::Status::Ok);
    const Argv bad({"--mode=bad"});
    EXPECT_EQ(opts.parse(bad.argc(), bad.argv()),
              OptionParser::Status::Error);
}

TEST(OptionParser, HelpRequested)
{
    std::uint64_t jobs = 0;
    OptionParser opts("prog", "one-line summary");
    opts.addUint("jobs", &jobs, "measured jobs");
    const Argv a({"--help"});
    EXPECT_EQ(opts.parse(a.argc(), a.argv()),
              OptionParser::Status::Help);
    const std::string u = opts.usage();
    EXPECT_NE(u.find("prog"), std::string::npos);
    EXPECT_NE(u.find("one-line summary"), std::string::npos);
    EXPECT_NE(u.find("--jobs"), std::string::npos);
    EXPECT_NE(u.find("measured jobs"), std::string::npos);
    EXPECT_NE(u.find("--help"), std::string::npos);
}

TEST(OptionParser, RejectsPositionalArgument)
{
    OptionParser opts("prog", "test");
    const Argv a({"stray"});
    EXPECT_EQ(opts.parse(a.argc(), a.argv()),
              OptionParser::Status::Error);
}
