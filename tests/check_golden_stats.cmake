# Byte-identical golden stats check, run as a ctest.
#
#   cmake -DTOOL=<golden_stats> -DCASE=<name> -DGOLDEN=<file>
#         -DOUT_DIR=<dir> -P check_golden_stats.cmake
#
# Runs the fixed-seed case and requires the produced JSON to match the
# committed golden byte for byte. Regenerate a golden deliberately with:
#   ./build/tools/golden_stats --case=<name> --out=tests/golden/<name>.json

file(MAKE_DIRECTORY "${OUT_DIR}")
set(out "${OUT_DIR}/${CASE}.json")

execute_process(
    COMMAND "${TOOL}" --case=${CASE} --out=${out}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE stdout_text
    ERROR_VARIABLE stderr_text)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "golden_stats --case=${CASE} failed (rc=${rc}):\n"
        "${stdout_text}\n${stderr_text}")
endif()

if(NOT EXISTS "${GOLDEN}")
    message(FATAL_ERROR
        "missing golden file ${GOLDEN}; capture it with\n"
        "  ${TOOL} --case=${CASE} --out=${GOLDEN}")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files "${out}" "${GOLDEN}"
    RESULT_VARIABLE same)
if(NOT same EQUAL 0)
    execute_process(
        COMMAND diff -u "${GOLDEN}" "${out}"
        OUTPUT_VARIABLE diff_text
        ERROR_VARIABLE diff_text)
    string(SUBSTRING "${diff_text}" 0 4000 diff_head)
    message(FATAL_ERROR
        "stats JSON for '${CASE}' diverged from the committed golden "
        "(${GOLDEN}).\nIf the change is intentional, regenerate the "
        "golden and explain the divergence in the PR.\n${diff_head}")
endif()
