/**
 * @file
 * FC/BC split regression: the frontside/backside decomposition of the
 * DRAM cache must be timing-neutral at the default (effectively
 * unbounded) channel depths. Each of the six fixed-seed torture
 * configurations is re-run in process and its full golden JSON —
 * headline results plus every stats leaf — must stay byte-identical
 * to tests/golden/. On top of the byte comparison, the three
 * controller channels must report zero backpressure: any full stall
 * at depth 65536 means slot lifetimes leak.
 *
 * The case table and serialisation are shared with the golden_stats
 * tool (tools/golden_cases.hh), so this suite and the golden_stats_*
 * ctests can never drift apart.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "core/dram_cache.hh"
#include "core/system.hh"

#include "golden_cases.hh"

using namespace astriflash;
using namespace astriflash::core;
using namespace astriflash::tools;

namespace {

/** Whole-file slurp; fails the test if the golden file is missing. */
std::string
readGolden(const std::string &case_name)
{
    const std::string path =
        std::string(ASTRI_GOLDEN_DIR) + "/" + case_name + ".json";
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing golden file " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** First line where @p got diverges from @p want, for the report. */
std::string
firstDivergence(const std::string &want, const std::string &got)
{
    std::istringstream ws(want);
    std::istringstream gs(got);
    std::string wl;
    std::string gl;
    int line = 0;
    while (true) {
        const bool have_w = static_cast<bool>(std::getline(ws, wl));
        const bool have_g = static_cast<bool>(std::getline(gs, gl));
        ++line;
        if (!have_w && !have_g)
            return "identical";
        if (wl != gl || have_w != have_g) {
            std::ostringstream os;
            os << "line " << line << ":\n  golden: "
               << (have_w ? wl : "<eof>") << "\n  got:    "
               << (have_g ? gl : "<eof>");
            return os.str();
        }
    }
}

class FcBcSplit : public ::testing::TestWithParam<GoldenCase>
{
};

} // namespace

TEST_P(FcBcSplit, GoldenStatsStayByteIdentical)
{
    const GoldenCase &gc = GetParam();

    System sys(goldenCaseConfig(gc));
    const RunResults r = sys.run();

    std::ostringstream out;
    writeGoldenJson(out, gc, r, sys);

    const std::string want = readGolden(gc.name);
    ASSERT_FALSE(want.empty());
    EXPECT_EQ(out.str(), want)
        << "FC/BC split perturbed case " << gc.name
        << "; first divergence at " << firstDivergence(want, out.str());

    // At the default depths the channels are effectively unbounded:
    // real transaction-window occupancy, but never a full stall. A
    // stall here means a slot-release tick leaked into the far future.
    const DramCache *dc = sys.dramCache();
    ASSERT_NE(dc, nullptr);
    EXPECT_EQ(dc->missChannel().stats().fullStalls.value(), 0u);
    EXPECT_EQ(dc->missChannel().stats().stallTicks.value(), 0u);
    EXPECT_EQ(dc->flashChannel().stats().fullStalls.value(), 0u);
    EXPECT_EQ(dc->flashChannel().stats().stallTicks.value(), 0u);
    EXPECT_EQ(dc->installChannel().stats().fullStalls.value(), 0u);
    EXPECT_EQ(dc->installChannel().stats().stallTicks.value(), 0u);

    // Conservation across the split: every message pushed was drained.
    EXPECT_TRUE(dc->missChannel().empty());
    EXPECT_TRUE(dc->flashChannel().empty());
    EXPECT_TRUE(dc->installChannel().empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllTortureConfigs, FcBcSplit, ::testing::ValuesIn(kGoldenCases),
    [](const ::testing::TestParamInfo<GoldenCase> &info) {
        return std::string(info.param.name);
    });
