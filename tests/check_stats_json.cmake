# Golden-output check for `astriflash_sim --stats-json`.
#
# Runs the simulator twice with a fixed configuration and verifies that
#   1. the JSON parses (via CMake's built-in string(JSON ...)),
#   2. the expected headline keys and component subtrees are present,
#   3. the output is byte-for-byte deterministic across runs.
#
# Driven by: cmake -DSIM=<path-to-astriflash_sim> -DOUT_DIR=<scratch>
#            -P check_stats_json.cmake

if(NOT DEFINED SIM OR NOT DEFINED OUT_DIR)
    message(FATAL_ERROR "usage: cmake -DSIM=... -DOUT_DIR=... -P check_stats_json.cmake")
endif()

set(args --config=astriflash --workload=tatp --cores=4
    --dataset-gib=0.25 --jobs=200 --warmup=30)

file(MAKE_DIRECTORY "${OUT_DIR}")
set(json_a "${OUT_DIR}/stats_a.json")
set(json_b "${OUT_DIR}/stats_b.json")

foreach(out IN ITEMS "${json_a}" "${json_b}")
    execute_process(
        COMMAND "${SIM}" ${args} "--stats-json=${out}"
        RESULT_VARIABLE rc
        OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "astriflash_sim exited with ${rc}")
    endif()
endforeach()

file(READ "${json_a}" doc_a)
file(READ "${json_b}" doc_b)

if(NOT doc_a STREQUAL doc_b)
    message(FATAL_ERROR "stats JSON is not deterministic across runs")
endif()

# --- 1. parses, and headline result keys exist with sane values -------
string(JSON kind ERROR_VARIABLE err GET "${doc_a}" config kind)
if(err)
    message(FATAL_ERROR "config.kind missing: ${err}")
endif()
if(NOT kind STREQUAL "AstriFlash")
    message(FATAL_ERROR "config.kind = '${kind}', want AstriFlash")
endif()

foreach(key IN ITEMS jobs throughput_jobs_per_sec avg_service_us
        p50_service_us p99_service_us p999_service_us
        dram_cache_hit_ratio flash_reads peak_outstanding_misses)
    string(JSON val ERROR_VARIABLE err GET "${doc_a}" results ${key})
    if(err)
        message(FATAL_ERROR "results.${key} missing: ${err}")
    endif()
endforeach()

string(JSON jobs GET "${doc_a}" results jobs)
if(NOT jobs EQUAL 200)
    message(FATAL_ERROR "results.jobs = ${jobs}, want 200")
endif()

# --- 2. per-component stats subtrees ----------------------------------
set(n_components 0)
foreach(comp IN ITEMS core0 core1 core2 core3 dcache flash system)
    string(JSON sub ERROR_VARIABLE err GET "${doc_a}" stats ${comp})
    if(err)
        message(FATAL_ERROR "stats.${comp} missing: ${err}")
    endif()
    math(EXPR n_components "${n_components} + 1")
endforeach()

# Count every top-level component the tree actually exposes.
string(JSON n_top LENGTH "${doc_a}" stats)
if(n_top LESS 8)
    message(FATAL_ERROR "stats has ${n_top} components, want >= 8")
endif()

# Deep dotted namespaces from DESIGN.md.
string(JSON msr_mean ERROR_VARIABLE err
    GET "${doc_a}" stats dcache bc msr occupancy mean)
if(err)
    message(FATAL_ERROR "stats.dcache.bc.msr.occupancy.mean missing: ${err}")
endif()
string(JSON svc_p99 ERROR_VARIABLE err
    GET "${doc_a}" stats system service p99)
if(err)
    message(FATAL_ERROR "stats.system.service.p99 missing: ${err}")
endif()
string(JSON ftl_programs ERROR_VARIABLE err
    GET "${doc_a}" stats flash ftl flash_programs)
if(err)
    message(FATAL_ERROR "stats.flash.ftl.flash_programs missing: ${err}")
endif()

message(STATUS "stats JSON OK: ${n_top} components, deterministic")
