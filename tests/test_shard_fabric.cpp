/**
 * @file
 * Sharded backside controllers + pluggable flash fabric coverage.
 *
 *  - shardSlice() partitions any total exactly (no page of MSR or
 *    evict-buffer capacity gained or lost at any shard count).
 *  - A multi-shard DramCache conserves the miss stream: every miss
 *    lands on the shard pageInterleave() names, and the per-shard
 *    fill/channel counters sum to the facade totals.
 *  - FlashFabric stripes LPNs across devices by modulo and aggregates
 *    the per-device counters.
 *  - ZnsDevice reports write amplification > 1 under overwrite
 *    pressure and its log-conservation invariants hold.
 *  - With the knobs explicitly pinned to shards=1 / devices=1 / ftl,
 *    the six golden torture configs stay byte-identical to
 *    tests/golden/ — the sharding rework is a pure generalisation.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/dram_cache.hh"
#include "core/system.hh"
#include "flash/fabric.hh"
#include "flash/flash_device.hh"
#include "flash/zns_device.hh"
#include "mem/address_map.hh"
#include "sim/event_queue.hh"
#include "sim/invariant.hh"

#include "golden_cases.hh"

using namespace astriflash;
using namespace astriflash::core;
using namespace astriflash::sim;
using astriflash::mem::kPageSize;

namespace {

flash::FlashConfig
fastCfg()
{
    flash::FlashConfig c;
    c.channels = 2;
    c.diesPerChannel = 1;
    c.planesPerDie = 2;
    c.blocksPerPlane = 16;
    c.pagesPerBlock = 4;
    c.tRead = microseconds(40);
    c.tProgram = microseconds(600);
    c.tErase = milliseconds(3);
    c.tChannelXfer = microseconds(3);
    c.tController = microseconds(5);
    c.gcFreeBlockLow = 2;
    return c;
}

/** DramCache over an FTL device, with a configurable shard count. */
struct ShardRig {
    EventQueue eq;
    mem::AddressMap amap{64 << 20, 256 << 20};
    flash::FlashConfig fcfg;
    std::unique_ptr<flash::FlashDevice> flash;
    std::unique_ptr<DramCache> dc;
    std::vector<std::pair<mem::PageNum, std::vector<WaiterCookie>>>
        ready;

    explicit ShardRig(std::uint32_t shards)
    {
        fcfg = flash::FlashConfig::forCapacity(512 << 20);
        flash = std::make_unique<flash::FlashDevice>(
            "flash", fcfg, (256 << 20) / kPageSize);
        DramCacheConfig cfg;
        cfg.capacityBytes = 2 << 20; // 512 page frames
        cfg.bc.shards = shards;
        dc = std::make_unique<DramCache>(eq, "dc", cfg, *flash, amap);
        dc->setPageReadyCallback(
            [this](mem::PageNum page, Ticks,
                   const std::vector<WaiterCookie> &w) {
                ready.emplace_back(page, w);
            });
    }

    mem::Addr pa(std::uint64_t page) const
    {
        return amap.flashRange().base + page * kPageSize;
    }
};

} // namespace

// --------------------------------------------------------------------
// shardSlice: exact partition.
// --------------------------------------------------------------------

TEST(ShardSlice, PartitionsEveryTotalExactly)
{
    for (std::uint32_t shards : {1u, 2u, 3u, 4u, 7u, 8u}) {
        for (std::uint32_t total : {shards, 32u + shards, 128u, 257u}) {
            std::uint64_t sum = 0;
            for (std::uint32_t i = 0; i < shards; ++i) {
                const std::uint32_t slice =
                    shardSlice(total, shards, i);
                EXPECT_GE(slice, 1u)
                    << total << " over " << shards << " shard " << i;
                sum += slice;
            }
            EXPECT_EQ(sum, total) << total << " over " << shards;
        }
    }
}

// --------------------------------------------------------------------
// Sharded DramCache: routing + conservation.
// --------------------------------------------------------------------

TEST(ShardedDramCache, MissesRouteByPageInterleave)
{
    ShardRig rig(4);
    ASSERT_EQ(rig.dc->shardCount(), 4u);

    // 32 distinct single-waiter misses across consecutive pages.
    std::map<std::uint32_t, std::uint64_t> expected;
    for (std::uint64_t p = 0; p < 32; ++p) {
        const auto pn = mem::pageNumber(rig.pa(p));
        ++expected[rig.dc->shardOf(pn)];
        rig.dc->access(rig.pa(p), false, rig.eq.curTick(),
                       static_cast<WaiterCookie>(p));
        rig.eq.run();
    }
    EXPECT_EQ(rig.ready.size(), 32u);
    EXPECT_EQ(rig.dc->fcStats().misses.value(), 32u);

    // Consecutive pages interleave evenly over four shards.
    for (std::uint32_t s = 0; s < 4; ++s)
        EXPECT_EQ(expected[s], 8u) << "shard " << s;

    // Every shard's channel and fill counters match its page subset.
    std::uint64_t fills = 0;
    std::uint64_t pushes = 0;
    for (std::uint32_t s = 0; s < 4; ++s) {
        EXPECT_EQ(rig.dc->bcStats(s).fills.value(), expected[s])
            << "shard " << s;
        EXPECT_EQ(rig.dc->missChannel(s).stats().pushes.value(),
                  expected[s])
            << "shard " << s;
        fills += rig.dc->bcStats(s).fills.value();
        pushes += rig.dc->missChannel(s).stats().pushes.value();
    }
    EXPECT_EQ(fills, 32u);
    EXPECT_EQ(pushes, rig.dc->fcStats().misses.value());

    // Facade totals are exactly the per-shard sums.
    const auto totals = rig.dc->bcTotals();
    EXPECT_EQ(totals.fills, fills);
    EXPECT_EQ(rig.flash->stats().reads.value(), 32u);
}

TEST(ShardedDramCache, CapacitySlicesSumToConfiguredTotals)
{
    // An odd shard count forces uneven slices; the sums must still be
    // exact (the facade SIM_CHECKs this at construction, too).
    for (std::uint32_t shards : {1u, 3u, 4u}) {
        ShardRig rig(shards);
        const auto &bc = rig.dc->config().bc;
        EXPECT_EQ(rig.dc->msrCapacity(),
                  std::uint64_t{bc.msrSets} * bc.msrEntriesPerSet)
            << shards << " shards";
    }
}

// --------------------------------------------------------------------
// FlashFabric: striping + aggregation.
// --------------------------------------------------------------------

TEST(FlashFabric, StripesLpnsByModuloAndAggregates)
{
    flash::FlashFabricConfig fab;
    fab.devices = 2;
    fab.backend = flash::BackendKind::Ftl;
    flash::FlashFabric fabric("flash", fastCfg(), fab, 64);
    ASSERT_EQ(fabric.deviceCount(), 2u);

    // Per-device preload splits 64 pages evenly.
    EXPECT_EQ(fabric.userPages(), 2 * fastCfg().userPages());

    for (std::uint64_t l = 0; l < 8; ++l) {
        fabric.submit(
            flash::FlashCommand{flash::FlashCommand::Op::Read,
                                flash::Lpn(l), mem::Bytes{0}},
            0);
    }
    // Even LPNs land on device 0, odd on device 1.
    EXPECT_EQ(fabric.device(0).readsCompleted(), 4u);
    EXPECT_EQ(fabric.device(1).readsCompleted(), 4u);
    EXPECT_EQ(fabric.readsCompleted(), 8u);

    fabric.submit(
        flash::FlashCommand{flash::FlashCommand::Op::Write,
                            flash::Lpn(3), mem::Bytes{0}},
        microseconds(500));
    EXPECT_EQ(fabric.device(1).writesAccepted(), 1u);
    EXPECT_EQ(fabric.writesAccepted(), 1u);
    EXPECT_EQ(fabric.hostWrites(), 1u);
}

// --------------------------------------------------------------------
// ZnsDevice: write amplification + log conservation.
// --------------------------------------------------------------------

TEST(ZnsDevice, OverwritePressureAmplifiesWritesAndConserves)
{
    const flash::FlashConfig cfg = fastCfg();
    flash::ZnsDevice dev("zns", cfg); // preload = full user dataset

    // Overwrite the (full) dataset repeatedly: every host write
    // invalidates a live copy, so the planes run out of free zones
    // and GC must relocate + reset.
    Ticks now = 0;
    const std::uint64_t user = dev.userPages();
    ASSERT_GT(user, 0u);
    for (std::uint64_t i = 0; i < 6 * user; ++i) {
        const auto r = dev.submit(
            flash::FlashCommand{flash::FlashCommand::Op::Write,
                                flash::Lpn(i % user), mem::Bytes{0}},
            now);
        now = r.complete + microseconds(1);
    }

    const auto &log = dev.logStats();
    EXPECT_EQ(log.hostWrites.value(), 6 * user);
    EXPECT_GT(log.zoneResets.value(), 0u);
    EXPECT_GT(log.gcInvalidations.value(), 0u);
    EXPECT_GT(dev.mediaWrites(), dev.hostWrites());
    EXPECT_GT(dev.writeAmplification(), 1.0);

    // Append conservation: media programs = host writes + GC moves.
    EXPECT_EQ(log.zoneAppends.value(),
              log.hostWrites.value() + log.gcRelocations.value());
    // Reclaim conservation: every reset page was moved or stale.
    EXPECT_EQ(log.gcRelocations.value() + log.gcInvalidations.value(),
              log.zoneResets.value() * cfg.pagesPerBlock);

    // The device's own audit agrees.
    InvariantRegistry reg;
    reg.setFailFast(false);
    reg.add("zns", [&dev](InvariantChecker &chk) {
        dev.checkInvariants(chk);
    });
    EXPECT_EQ(reg.checkAll(now), 0u) << reg.report();
}

TEST(ZnsDevice, ReadsStayConsistentAcrossRelocation)
{
    flash::ZnsDevice dev("zns", fastCfg());
    const std::uint64_t user = dev.userPages();
    Ticks now = 0;
    // Churn half the dataset so GC relocates the untouched half too.
    for (std::uint64_t i = 0; i < 4 * user; ++i) {
        const auto r = dev.submit(
            flash::FlashCommand{flash::FlashCommand::Op::Write,
                                flash::Lpn(i % (user / 2)),
                                mem::Bytes{0}},
            now);
        now = r.complete + microseconds(1);
    }
    // Every logical page still reads back (mapped or static).
    for (std::uint64_t l = 0; l < user; ++l) {
        const auto r = dev.submit(
            flash::FlashCommand{flash::FlashCommand::Op::Read,
                                flash::Lpn(l), mem::Bytes{0}},
            now);
        EXPECT_GT(r.complete, now);
    }
    EXPECT_EQ(dev.readsCompleted(), user);
}

// --------------------------------------------------------------------
// Golden byte-identity with the knobs explicitly at their defaults.
// --------------------------------------------------------------------

namespace {

std::string
readGolden(const std::string &case_name)
{
    const std::string path =
        std::string(ASTRI_GOLDEN_DIR) + "/" + case_name + ".json";
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing golden file " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

class ShardFabricGolden
    : public ::testing::TestWithParam<tools::GoldenCase>
{
};

} // namespace

TEST_P(ShardFabricGolden, ExplicitSingleShardFtlIsByteIdentical)
{
    const tools::GoldenCase &gc = GetParam();
    if (gc.split) {
        // Split cases pin shards=4/devices=4 as part of their golden
        // identity; forcing the single-shard defaults would test a
        // different configuration than the committed file.
        GTEST_SKIP() << "split cases define their own shard/device "
                        "partition";
    }

    SystemConfig cfg = tools::goldenCaseConfig(gc);
    // Spell out what the defaults imply: one BC shard, one FTL device
    // behind the fabric. The run must reproduce the pre-sharding
    // golden files byte for byte.
    cfg.dramCache.bc.shards = 1;
    cfg.dramCache.fabric.devices = 1;
    cfg.dramCache.fabric.backend = flash::BackendKind::Ftl;

    System sys(cfg);
    const RunResults r = sys.run();

    std::ostringstream out;
    tools::writeGoldenJson(out, gc, r, sys);

    const std::string want = readGolden(gc.name);
    ASSERT_FALSE(want.empty());
    EXPECT_EQ(out.str(), want)
        << "sharded facade perturbed case " << gc.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllTortureConfigs, ShardFabricGolden,
    ::testing::ValuesIn(tools::kGoldenCases),
    [](const ::testing::TestParamInfo<tools::GoldenCase> &info) {
        return std::string(info.param.name);
    });
