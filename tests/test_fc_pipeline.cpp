/**
 * @file
 * Pipelined miss-path (--fc-pipeline) unit and integration tests:
 * same-tick probe/ack ordering on the bc_to_fc_rsp channel, the
 * bounded in-flight ack window (FcConfig::pendingDepth) and its
 * backpressure stats, depth-1 serialization of every FC<->BC channel,
 * and the split exec-group partition (1 + shards groups) that lets
 * --host-jobs N run the BC shards on separate workers.
 *
 * The depth-1 and split-mode tests are the TSan job's main targets:
 * they drive the narrowest channel windows and the partitioned
 * engine, where any unfenced FC<->BC access would race.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/dram_cache.hh"
#include "core/system.hh"
#include "flash/flash_device.hh"
#include "mem/address_map.hh"
#include "sim/event_queue.hh"

#include "golden_cases.hh"

using namespace astriflash;
using namespace astriflash::core;
using namespace astriflash::sim;
using namespace astriflash::tools;
using astriflash::mem::kPageSize;

namespace {

/** Single-queue pipelined DRAM cache rig (no engine: the BC pumps
 *  schedule on the shared queue through the default post path). */
struct PipelineRig {
    EventQueue eq;
    mem::AddressMap amap{64 << 20, 256 << 20};
    flash::FlashConfig fcfg;
    std::unique_ptr<flash::FlashDevice> flash;
    std::unique_ptr<DramCache> dc;
    std::vector<std::pair<mem::PageNum, std::vector<WaiterCookie>>>
        ready;

    explicit PipelineRig(DramCacheConfig cfg = pipelineCfg())
    {
        fcfg = flash::FlashConfig::forCapacity(512 << 20);
        flash = std::make_unique<flash::FlashDevice>(
            "flash", fcfg, (256 << 20) / kPageSize);
        dc = std::make_unique<DramCache>(eq, "dc", cfg, *flash, amap);
        dc->setPageReadyCallback(
            [this](mem::PageNum page, Ticks,
                   const std::vector<WaiterCookie> &w) {
                ready.emplace_back(page, w);
            });
    }

    static DramCacheConfig
    pipelineCfg()
    {
        DramCacheConfig cfg;
        cfg.capacityBytes = 2 << 20; // 512 page frames
        cfg.fc.pipeline = true;
        return cfg;
    }

    mem::Addr pa(std::uint64_t page) const
    {
        return amap.flashRange().base + page * kPageSize;
    }
};

} // namespace

// --------------------------------------------------------------------
// Same-tick ordering: probes issued at one tick keep FIFO ack order
// on the rsp channel (finishAck hard-asserts the oldest in-flight
// probe matches each ack, so any reorder aborts the run).
// --------------------------------------------------------------------

TEST(FcPipeline, SameTickProbesKeepFifoAckOrder)
{
    PipelineRig rig;
    constexpr unsigned kProbes = 4;
    for (unsigned i = 0; i < kProbes; ++i) {
        const auto r = rig.dc->access(rig.pa(3 + i), false, 0, i + 1);
        // Pipelined miss: the FC answers with the early miss
        // response; the ack settles the accounting later.
        EXPECT_FALSE(r.hit);
        EXPECT_LT(r.ready, microseconds(1));
    }
    // Nothing drained yet: the requests sit in the miss channel until
    // the scheduled pump runs — no nested synchronous service.
    EXPECT_EQ(rig.dc->outstandingMisses(), 0u);
    EXPECT_FALSE(rig.dc->missChannel().empty());

    rig.eq.run();

    // Each ack drained in probe order and retired its miss.
    EXPECT_EQ(rig.dc->fcStats().misses.value(), kProbes);
    EXPECT_EQ(rig.dc->fcStats().reqQueuePeak, kProbes);
    EXPECT_EQ(rig.dc->outstandingMisses(), 0u);
    EXPECT_EQ(rig.ready.size(), kProbes);
    EXPECT_TRUE(rig.dc->rspChannel().empty());
    EXPECT_TRUE(rig.dc->ctlChannel().empty());
}

TEST(FcPipeline, ProbeIssuedAtAckTickStaysOrdered)
{
    PipelineRig rig;
    rig.dc->access(rig.pa(3), false, 0, 1);

    // Issue a second probe at every rsp-channel activity tick the
    // first miss produces: eligibility boundaries are exactly where a
    // same-tick probe-issue could slip ahead of a probe-response.
    const Ticks lat = rig.dc->rspChannel().contract().minLatency;
    std::vector<Ticks> issue_at;
    for (Ticks t = lat; t <= 4 * lat; t += lat)
        issue_at.push_back(t);
    unsigned issued = 0;
    for (const Ticks t : issue_at) {
        rig.eq.schedule(t, [&rig, &issued, t]() {
            rig.dc->access(rig.pa(100 + issued), false, t,
                           50 + issued);
            ++issued;
        });
    }

    rig.eq.run();

    // All probes resolved in order (finishAck asserts FIFO) and
    // every miss was eventually installed and reported ready.
    EXPECT_EQ(issued, issue_at.size());
    EXPECT_EQ(rig.dc->fcStats().misses.value() +
                  rig.dc->fcStats().missesMerged.value(),
              1 + issue_at.size());
    EXPECT_EQ(rig.dc->outstandingMisses(), 0u);
    EXPECT_EQ(rig.ready.size(), 1 + issue_at.size());
}

// --------------------------------------------------------------------
// Bounded ack window: pendingDepth=1 charges the documented
// backpressure stats instead of stalling the probe pipeline.
// --------------------------------------------------------------------

TEST(FcPipeline, PendingDepthOneChargesBackpressureStats)
{
    DramCacheConfig cfg = PipelineRig::pipelineCfg();
    cfg.fc.pendingDepth = 1;
    PipelineRig rig(cfg);

    constexpr unsigned kProbes = 3;
    Ticks prev_ready = 0;
    for (unsigned i = 0; i < kProbes; ++i) {
        const auto r = rig.dc->access(rig.pa(3 + i), false, 0, i + 1);
        EXPECT_FALSE(r.hit);
        // The FSM works the over-bound backlog down first, so each
        // excess probe's response lands strictly later.
        EXPECT_GE(r.ready, prev_ready);
        prev_ready = r.ready;
    }
    // Probes 2 and 3 found the window over its bound of 1.
    EXPECT_EQ(rig.dc->fcStats().reqQueueStalls.value(), kProbes - 1);
    EXPECT_GT(rig.dc->fcStats().reqQueueStallTicks.value(), 0u);

    rig.eq.run();
    EXPECT_EQ(rig.dc->fcStats().misses.value(), kProbes);
    EXPECT_EQ(rig.dc->outstandingMisses(), 0u);
    EXPECT_EQ(rig.ready.size(), kProbes);
}

// --------------------------------------------------------------------
// Depth-1 channels: the narrowest legal window on every FC<->BC
// channel still conserves messages — each slot's lifetime ends before
// the next push needs it, so nothing deadlocks or drops.
// --------------------------------------------------------------------

TEST(FcPipeline, DepthOneChannelsSerializeWithoutLoss)
{
    DramCacheConfig cfg = PipelineRig::pipelineCfg();
    cfg.channels.fcToBcDepth = 1;
    cfg.channels.bcToFcDepth = 1;
    cfg.channels.bcToFcRspDepth = 1;
    cfg.channels.fcToBcCtlDepth = 1;
    PipelineRig rig(cfg);

    constexpr unsigned kProbes = 8;
    unsigned issued = 0;
    // One probe at a time, spaced a microsecond apart: each full
    // round trip (miss -> ack -> install-req -> grant -> complete)
    // must recycle every depth-1 slot before the next begins.
    for (unsigned i = 0; i < kProbes; ++i) {
        rig.eq.schedule(microseconds(200) * i, [&rig, &issued]() {
            rig.dc->access(rig.pa(3 + issued), false,
                           microseconds(200) * issued, issued + 1);
            ++issued;
        });
    }

    rig.eq.run();

    EXPECT_EQ(issued, kProbes);
    EXPECT_EQ(rig.dc->fcStats().misses.value(), kProbes);
    EXPECT_EQ(rig.dc->outstandingMisses(), 0u);
    EXPECT_EQ(rig.ready.size(), kProbes);
    EXPECT_TRUE(rig.dc->missChannel().empty());
    EXPECT_TRUE(rig.dc->rspChannel().empty());
    EXPECT_TRUE(rig.dc->ctlChannel().empty());
    EXPECT_TRUE(rig.dc->installChannel().empty());
    EXPECT_TRUE(rig.dc->flashChannel().empty());
}

// --------------------------------------------------------------------
// Split exec groups: pipelined runs partition into 1 + shards groups
// (the --host-jobs speedup seam); fused partitioned runs stay merged
// in one group (the byte-identity seam).
// --------------------------------------------------------------------

TEST(FcPipeline, SplitModePartitionsIntoOneGroupPerShard)
{
    for (const GoldenCase &gc : kGoldenCases) {
        if (!gc.split ||
            std::string(gc.name) != "split_astriflash_tatp")
            continue;
        SystemConfig cfg = goldenCaseConfig(gc);
        cfg.hostJobs = 2;
        System sys(cfg);
        (void)sys.run();

        const ParallelEngine::Stats &es = sys.engineStats();
        EXPECT_EQ(es.groups, 1u + cfg.dramCache.bc.shards);
        ASSERT_EQ(es.groupEvents.size(), es.groups);
        // Every group actually executed events: group 0 carries the
        // cores + FC, each of the others one BC shard's domain.
        for (std::uint32_t g = 0; g < es.groups; ++g)
            EXPECT_GT(es.groupEvents[g], 0u)
                << "exec group " << g << " ran nothing";
    }
}

TEST(FcPipeline, FusedModeStaysMergedInOneGroup)
{
    for (const GoldenCase &gc : kGoldenCases) {
        if (gc.split ||
            std::string(gc.name) != "astriflash_tatp")
            continue;
        SystemConfig cfg = goldenCaseConfig(gc);
        cfg.hostJobs = 2;
        System sys(cfg);
        (void)sys.run();

        const ParallelEngine::Stats &es = sys.engineStats();
        EXPECT_EQ(es.groups, 1u);
        ASSERT_EQ(es.groupEvents.size(), 1u);
        EXPECT_GT(es.groupEvents[0], 0u);
    }
}
