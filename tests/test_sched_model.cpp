/**
 * @file
 * Tests for the user-level scheduler model: priority + aging, the
 * FIFO ablation, notifications, and the pending-queue bound.
 */

#include <gtest/gtest.h>

#include "core/sched_model.hh"
#include "sim/ticks.hh"

using namespace astriflash::core;
using namespace astriflash::sim;
using astriflash::workload::Job;

namespace {

/** Park/wake key for a byte-address literal. */
astriflash::mem::PageNum
pg(astriflash::mem::Addr a)
{
    return astriflash::mem::pageNumber(a);
}

Job
job(std::uint64_t id)
{
    Job j;
    j.id = id;
    return j;
}

SchedulerModel::Config
cfgFor(SchedPolicy policy, bool notify = true)
{
    SchedulerModel::Config c;
    c.policy = policy;
    c.pendingCap = 4;
    c.notifyArrivals = notify;
    return c;
}

} // namespace

TEST(SchedModel, EmptyPicksNothing)
{
    SchedulerModel s(cfgFor(SchedPolicy::PriorityAging));
    EXPECT_FALSE(s.pickNext(0).has_value());
    EXPECT_FALSE(s.hasRunnable());
}

TEST(SchedModel, NewJobsFifoAmongThemselves)
{
    SchedulerModel s(cfgFor(SchedPolicy::PriorityAging));
    s.enqueueNew(job(1));
    s.enqueueNew(job(2));
    EXPECT_EQ(s.pickNext(0)->id, 1u);
    EXPECT_EQ(s.pickNext(0)->id, 2u);
}

TEST(SchedModel, ParkedJobNotRunnableUntilPageReady)
{
    SchedulerModel s(cfgFor(SchedPolicy::PriorityAging));
    s.parkOnMiss(job(1), pg(0x1000), 100);
    EXPECT_EQ(s.pendingCount(), 1u);
    EXPECT_FALSE(s.pickNext(200).has_value());
    EXPECT_EQ(s.pageReady(pg(0x1000), microseconds(50)), 1u);
    const auto j = s.pickNext(microseconds(50));
    ASSERT_TRUE(j.has_value());
    EXPECT_EQ(j->id, 1u);
}

TEST(SchedModel, PageReadyWakesAllWaitersOnPage)
{
    SchedulerModel s(cfgFor(SchedPolicy::PriorityAging));
    s.parkOnMiss(job(1), pg(0x1000), 0);
    s.parkOnMiss(job(2), pg(0x1000), 0);
    s.parkOnMiss(job(3), pg(0x2000), 0);
    EXPECT_EQ(s.pageReady(pg(0x1000), 100), 2u);
    EXPECT_EQ(s.pendingCount(), 3u); // 2 ready + 1 waiting
}

TEST(SchedModel, NotifiedReadyJobBeatsNewJob)
{
    // With queue-pair notifications, an arrived pending job resumes
    // at the next pick even when new work is queued (§VI-B).
    SchedulerModel s(cfgFor(SchedPolicy::PriorityAging, true));
    s.enqueueNew(job(10));
    s.parkOnMiss(job(1), pg(0x1000), 0);
    s.pageReady(pg(0x1000), microseconds(50));
    EXPECT_EQ(s.pickNext(microseconds(50))->id, 1u);
    EXPECT_EQ(s.stats().scheduledPending.value(), 1u);
}

TEST(SchedModel, ProxyModePromotesOnlyAgedJobs)
{
    SchedulerModel s(cfgFor(SchedPolicy::PriorityAging, false));
    // Establish an average flash response of ~50 us.
    for (int i = 0; i < 50; ++i)
        s.noteFlashResponse(microseconds(50));
    s.enqueueNew(job(10));
    s.parkOnMiss(job(1), pg(0x1000), 0);
    // The page arrives quickly; head age (12 us) is below the 50 us
    // average, so the proxy assumes it has not arrived: new job wins.
    s.pageReady(pg(0x1000), microseconds(10));
    EXPECT_EQ(s.pickNext(microseconds(12))->id, 10u);
    // Once aged beyond the average response, the pending job wins.
    s.enqueueNew(job(11));
    EXPECT_EQ(s.pickNext(microseconds(200))->id, 1u);
    EXPECT_EQ(s.stats().agingPromotions.value(), 1u);
}

TEST(SchedModel, FifoStarvesPendingWhileNewExists)
{
    SchedulerModel s(cfgFor(SchedPolicy::Fifo));
    s.parkOnMiss(job(1), pg(0x1000), 0);
    s.pageReady(pg(0x1000), 10);
    s.enqueueNew(job(10));
    s.enqueueNew(job(11));
    EXPECT_EQ(s.pickNext(milliseconds(10))->id, 10u);
    EXPECT_EQ(s.pickNext(milliseconds(20))->id, 11u);
    // Only with an empty new queue does the pending job run.
    EXPECT_EQ(s.pickNext(milliseconds(30))->id, 1u);
}

TEST(SchedModel, PendingFullDetection)
{
    SchedulerModel s(cfgFor(SchedPolicy::PriorityAging));
    for (std::uint64_t i = 0; i < 4; ++i)
        s.parkOnMiss(job(i), pg(0x1000 * (i + 1)), 0);
    EXPECT_TRUE(s.pendingFull());
    s.notePendingOverflow();
    EXPECT_EQ(s.stats().pendingOverflows.value(), 1u);
    s.pageReady(pg(0x1000), 10);
    const auto j = s.pickPendingReady();
    ASSERT_TRUE(j.has_value());
    EXPECT_EQ(j->id, 0u);
    EXPECT_FALSE(s.pendingFull());
}

TEST(SchedModel, PickPendingReadyIgnoresNewJobs)
{
    SchedulerModel s(cfgFor(SchedPolicy::Fifo));
    s.enqueueNew(job(10));
    EXPECT_FALSE(s.pickPendingReady().has_value());
    s.parkOnMiss(job(1), pg(0x1000), 0);
    s.pageReady(pg(0x1000), 10);
    EXPECT_EQ(s.pickPendingReady()->id, 1u);
}

TEST(SchedModel, FlashResponseEmaConverges)
{
    SchedulerModel s(cfgFor(SchedPolicy::PriorityAging));
    for (int i = 0; i < 200; ++i)
        s.noteFlashResponse(microseconds(80));
    EXPECT_NEAR(static_cast<double>(s.agingThreshold()),
                static_cast<double>(microseconds(80)),
                static_cast<double>(microseconds(2)));
}

TEST(SchedModel, PeakPendingTracked)
{
    SchedulerModel s(cfgFor(SchedPolicy::PriorityAging));
    s.parkOnMiss(job(1), pg(0x1000), 0);
    s.parkOnMiss(job(2), pg(0x2000), 0);
    s.pageReady(pg(0x1000), 1);
    (void)s.pickPendingReady();
    s.parkOnMiss(job(3), pg(0x3000), 2);
    EXPECT_EQ(s.stats().peakPending, 2u);
}
