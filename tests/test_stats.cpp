/**
 * @file
 * Unit + property tests for counters, averages, and the HDR-style
 * histogram (percentile accuracy is load-bearing: the paper's key
 * metric is p99 latency).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/rng.hh"
#include "sim/stats.hh"

using namespace astriflash::sim;

TEST(Counter, IncrementsAndResets)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Average, TracksMeanMinMax)
{
    Average a;
    a.sample(1.0);
    a.sample(2.0);
    a.sample(6.0);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 6.0);
    EXPECT_EQ(a.count(), 3u);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Histogram, EmptyIsZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(0.99), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, SmallValuesAreExact)
{
    Histogram h;
    for (std::uint64_t v = 0; v < 64; ++v)
        h.sample(v);
    // Unit buckets below 64: percentiles are exact.
    EXPECT_EQ(h.percentile(0.5), 31u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 63u);
    EXPECT_DOUBLE_EQ(h.mean(), 31.5);
}

TEST(Histogram, SingleValue)
{
    Histogram h;
    h.sample(1000000);
    EXPECT_EQ(h.count(), 1u);
    // Representative value bounded by the true max.
    EXPECT_EQ(h.percentile(0.5), 1000000u);
    EXPECT_EQ(h.percentile(0.999), 1000000u);
}

TEST(Histogram, WeightedSamples)
{
    Histogram h;
    h.sampleN(10, 99);
    h.sampleN(1000, 1);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.percentile(0.50), 10u);
    EXPECT_GE(h.percentile(0.995), 900u);
}

TEST(Histogram, MergeCombines)
{
    Histogram a, b;
    for (int i = 0; i < 100; ++i)
        a.sample(10);
    for (int i = 0; i < 100; ++i)
        b.sample(100000);
    a.merge(b);
    EXPECT_EQ(a.count(), 200u);
    EXPECT_EQ(a.percentile(0.25), 10u);
    EXPECT_GE(a.percentile(0.75), 90000u);
    EXPECT_EQ(a.max(), 100000u);
}

TEST(Histogram, ResetClears)
{
    Histogram h;
    h.sample(12345);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(0.99), 0u);
}

/**
 * Property: for random sample sets across many magnitudes, every
 * histogram percentile is within the structure's relative-error bound
 * (1/64) of the exact nearest-rank percentile.
 */
class HistogramAccuracy : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(HistogramAccuracy, PercentilesWithinBound)
{
    const std::uint64_t seed = GetParam();
    Rng rng(seed);
    Histogram h;
    std::vector<std::uint64_t> exact;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        // Log-uniform magnitudes: ns to seconds in picosecond ticks.
        const double mag = rng.uniform(0.0, 12.0);
        const auto v = static_cast<std::uint64_t>(std::pow(10.0, mag));
        h.sample(v);
        exact.push_back(v);
    }
    std::sort(exact.begin(), exact.end());
    for (double q : {0.10, 0.50, 0.90, 0.99, 0.999}) {
        std::size_t rank = static_cast<std::size_t>(
            std::ceil(q * n));
        if (rank == 0)
            rank = 1;
        const std::uint64_t truth = exact[rank - 1];
        const std::uint64_t est = h.percentile(q);
        const double rel =
            std::abs(static_cast<double>(est) -
                     static_cast<double>(truth)) /
            std::max<double>(1.0, static_cast<double>(truth));
        EXPECT_LE(rel, 1.0 / 64.0 + 1e-9)
            << "q=" << q << " truth=" << truth << " est=" << est;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramAccuracy,
                         ::testing::Values(1, 2, 3, 17, 1234, 99999));

TEST(StatRegistry, DumpsSortedNames)
{
    StatRegistry reg;
    Counter c;
    c.inc(7);
    double v = 2.5;
    reg.registerCounter("b.counter", &c);
    reg.registerScalar("a.scalar", &v);
    const std::string out = reg.dump();
    EXPECT_NE(out.find("b.counter = 7"), std::string::npos);
    EXPECT_NE(out.find("a.scalar = 2.5"), std::string::npos);
}
