/**
 * @file
 * Unit + property tests for counters, averages, and the HDR-style
 * histogram (percentile accuracy is load-bearing: the paper's key
 * metric is p99 latency).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "mini_json.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

using namespace astriflash::sim;

TEST(Counter, IncrementsAndResets)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Average, TracksMeanMinMax)
{
    Average a;
    a.sample(1.0);
    a.sample(2.0);
    a.sample(6.0);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 6.0);
    EXPECT_EQ(a.count(), 3u);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Histogram, EmptyIsZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(0.99), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, SmallValuesAreExact)
{
    Histogram h;
    for (std::uint64_t v = 0; v < 64; ++v)
        h.sample(v);
    // Unit buckets below 64: percentiles are exact.
    EXPECT_EQ(h.percentile(0.5), 31u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 63u);
    EXPECT_DOUBLE_EQ(h.mean(), 31.5);
}

TEST(Histogram, SingleValue)
{
    Histogram h;
    h.sample(1000000);
    EXPECT_EQ(h.count(), 1u);
    // Representative value bounded by the true max.
    EXPECT_EQ(h.percentile(0.5), 1000000u);
    EXPECT_EQ(h.percentile(0.999), 1000000u);
}

TEST(Histogram, WeightedSamples)
{
    Histogram h;
    h.sampleN(10, 99);
    h.sampleN(1000, 1);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.percentile(0.50), 10u);
    EXPECT_GE(h.percentile(0.995), 900u);
}

TEST(Histogram, MergeCombines)
{
    Histogram a, b;
    for (int i = 0; i < 100; ++i)
        a.sample(10);
    for (int i = 0; i < 100; ++i)
        b.sample(100000);
    a.merge(b);
    EXPECT_EQ(a.count(), 200u);
    EXPECT_EQ(a.percentile(0.25), 10u);
    EXPECT_GE(a.percentile(0.75), 90000u);
    EXPECT_EQ(a.max(), 100000u);
}

TEST(Histogram, ResetClears)
{
    Histogram h;
    h.sample(12345);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(0.99), 0u);
}

/**
 * Property: for random sample sets across many magnitudes, every
 * histogram percentile is within the structure's relative-error bound
 * (1/64) of the exact nearest-rank percentile.
 */
class HistogramAccuracy : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(HistogramAccuracy, PercentilesWithinBound)
{
    const std::uint64_t seed = GetParam();
    Rng rng(seed);
    Histogram h;
    std::vector<std::uint64_t> exact;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        // Log-uniform magnitudes: ns to seconds in picosecond ticks.
        const double mag = rng.uniform(0.0, 12.0);
        const auto v = static_cast<std::uint64_t>(std::pow(10.0, mag));
        h.sample(v);
        exact.push_back(v);
    }
    std::sort(exact.begin(), exact.end());
    for (double q : {0.10, 0.50, 0.90, 0.99, 0.999}) {
        std::size_t rank = static_cast<std::size_t>(
            std::ceil(q * n));
        if (rank == 0)
            rank = 1;
        const std::uint64_t truth = exact[rank - 1];
        const std::uint64_t est = h.percentile(q);
        const double rel =
            std::abs(static_cast<double>(est) -
                     static_cast<double>(truth)) /
            std::max<double>(1.0, static_cast<double>(truth));
        EXPECT_LE(rel, 1.0 / 64.0 + 1e-9)
            << "q=" << q << " truth=" << truth << " est=" << est;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramAccuracy,
                         ::testing::Values(1, 2, 3, 17, 1234, 99999));

TEST(StatRegistry, DumpsSortedNames)
{
    StatRegistry reg;
    Counter c;
    c.inc(7);
    double v = 2.5;
    reg.registerCounter("b.counter", &c, "test counter");
    reg.registerScalar("a.scalar", &v, "test scalar");
    const std::string out = reg.dump();
    EXPECT_NE(out.find("b.counter = 7"), std::string::npos);
    EXPECT_NE(out.find("a.scalar = 2.5"), std::string::npos);
}

TEST(StatRegistry, HierarchicalDumpUsesFullyQualifiedSortedNames)
{
    StatRegistry root;
    Counter hits, misses, fills;
    hits.inc(10);
    misses.inc(3);
    fills.inc(2);

    auto &fc = root.subRegistry("dcache.fc");
    fc.registerCounter("hits", &hits, "test hits");
    fc.registerCounter("misses", &misses, "test misses");
    root.subRegistry("dcache.bc").registerCounter("fills", &fills,
                                                   "test fills");
    Counter jobs;
    jobs.inc(99);
    root.subRegistry("core0").registerCounter("jobs", &jobs,
                                              "test jobs");

    const std::string out = root.dump();
    const auto core0 = out.find("core0.jobs = 99");
    const auto bc = out.find("dcache.bc.fills = 2");
    const auto hitsPos = out.find("dcache.fc.hits = 10");
    const auto missPos = out.find("dcache.fc.misses = 3");
    ASSERT_NE(core0, std::string::npos);
    ASSERT_NE(bc, std::string::npos);
    ASSERT_NE(hitsPos, std::string::npos);
    ASSERT_NE(missPos, std::string::npos);
    // Lines come out sorted by fully-qualified dotted name.
    EXPECT_LT(core0, bc);
    EXPECT_LT(bc, hitsPos);
    EXPECT_LT(hitsPos, missPos);
}

TEST(StatRegistry, SubRegistryReturnsSameNodeAndFindSub)
{
    StatRegistry root;
    StatRegistry &a = root.subRegistry("dcache.bc.msr");
    StatRegistry &b = root.subRegistry("dcache.bc.msr");
    EXPECT_EQ(&a, &b);
    // Stepwise traversal lands on the same node.
    StatRegistry &c = root.subRegistry("dcache").subRegistry("bc.msr");
    EXPECT_EQ(&a, &c);

    EXPECT_EQ(root.findSub("dcache.bc.msr"), &a);
    EXPECT_EQ(root.findSub("dcache.nope"), nullptr);
    EXPECT_EQ(root.findSub("totally.absent"), nullptr);

    const auto kids = root.subRegistry("dcache").childNames();
    ASSERT_EQ(kids.size(), 1u);
    EXPECT_EQ(kids[0], "bc");
}

TEST(StatRegistry, TypedLeavesRenderDerivedQuantities)
{
    StatRegistry reg;
    Average avg;
    avg.sample(2.0);
    avg.sample(4.0);
    Histogram hist;
    for (std::uint64_t i = 1; i <= 100; ++i)
        hist.sample(i);
    std::uint64_t peak = 17;
    reg.registerAverage("occupancy", &avg, "test occupancy");
    reg.registerHistogram("latency", &hist, "test latency");
    reg.registerUint("peak", &peak, "test peak");

    const std::string out = reg.dump();
    EXPECT_NE(out.find("occupancy.count = 2"), std::string::npos);
    EXPECT_NE(out.find("occupancy.mean = 3"), std::string::npos);
    EXPECT_NE(out.find("latency.count = 100"), std::string::npos);
    EXPECT_NE(out.find("latency.p50"), std::string::npos);
    EXPECT_NE(out.find("latency.p99"), std::string::npos);
    EXPECT_NE(out.find("peak = 17"), std::string::npos);
}

TEST(StatRegistry, ForEachStatVisitsSortedFullyQualifiedNames)
{
    StatRegistry root;
    Counter c1, c2;
    root.subRegistry("z").registerCounter("last", &c1, "test last");
    root.subRegistry("a.b").registerCounter("first", &c2,
                                            "test first");

    std::vector<std::string> names;
    root.forEachStat([&](const std::string &n) { names.push_back(n); });
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "a.b.first");
    EXPECT_EQ(names[1], "z.last");
}

TEST(StatRegistry, JsonRoundTripParses)
{
    StatRegistry root;
    Counter hits;
    hits.inc(42);
    Average occ;
    occ.sample(3.0);
    occ.sample(5.0);
    Histogram lat;
    for (std::uint64_t i = 0; i < 1000; ++i)
        lat.sample(i);
    std::uint64_t peak = 7;
    double ratio = 0.25;

    auto &fc = root.subRegistry("dcache.fc");
    fc.registerCounter("hits", &hits, "test hits");
    auto &msr = root.subRegistry("dcache.bc.msr");
    msr.registerAverage("occupancy", &occ, "test occupancy");
    msr.registerUint("peak", &peak, "test peak");
    root.subRegistry("flash").registerHistogram("read_latency", &lat,
                                                "test latency");
    root.registerScalar("ratio", &ratio, "test ratio");

    const std::string json = root.dumpJson();
    const auto doc = minijson::parse(json);
    ASSERT_NE(doc, nullptr) << json;
    ASSERT_TRUE(doc->isObject());

    const auto *hitsV = doc->find("dcache.fc.hits");
    ASSERT_NE(hitsV, nullptr);
    EXPECT_DOUBLE_EQ(hitsV->number, 42.0);

    const auto *occV = doc->find("dcache.bc.msr.occupancy");
    ASSERT_NE(occV, nullptr);
    ASSERT_TRUE(occV->isObject());
    EXPECT_DOUBLE_EQ(occV->find("count")->number, 2.0);
    EXPECT_DOUBLE_EQ(occV->find("mean")->number, 4.0);
    EXPECT_DOUBLE_EQ(occV->find("min")->number, 3.0);
    EXPECT_DOUBLE_EQ(occV->find("max")->number, 5.0);

    const auto *latV = doc->find("flash.read_latency");
    ASSERT_NE(latV, nullptr);
    EXPECT_DOUBLE_EQ(latV->find("count")->number, 1000.0);
    ASSERT_NE(latV->find("p50"), nullptr);
    ASSERT_NE(latV->find("p99"), nullptr);
    ASSERT_NE(latV->find("p999"), nullptr);
    // p50 of 0..999 is ~500, within the 1/64 bound.
    EXPECT_NEAR(latV->find("p50")->number, 500.0, 500.0 / 64 + 1);

    EXPECT_DOUBLE_EQ(doc->find("dcache.bc.msr.peak")->number, 7.0);
    EXPECT_DOUBLE_EQ(doc->find("ratio")->number, 0.25);
}

TEST(StatRegistry, DescriptionsAreStoredAndListed)
{
    StatRegistry root;
    Counter hits;
    std::uint64_t peak = 0;
    auto &fc = root.subRegistry("dcache.fc");
    fc.registerCounter("hits", &hits, "accesses served from the cache");
    fc.registerUint("peak", &peak, "maximum outstanding misses");

    EXPECT_EQ(fc.leafDescription("hits"),
              "accesses served from the cache");
    EXPECT_EQ(fc.leafDescription("peak"),
              "maximum outstanding misses");
    EXPECT_EQ(fc.leafDescription("absent"), "");

    const std::string listing = root.describe();
    EXPECT_NE(listing.find("dcache.fc.hits: accesses served from the "
                           "cache"),
              std::string::npos);
    EXPECT_NE(listing.find("dcache.fc.peak: maximum outstanding "
                           "misses"),
              std::string::npos);
}

TEST(StatRegistry, JsonEscapesAndLiveValues)
{
    StatRegistry root;
    Counter c;
    root.registerCounter("quoted\"name", &c, "test escaping");
    c.inc(1);
    auto doc = minijson::parse(root.dumpJson());
    ASSERT_NE(doc, nullptr);
    const auto it = doc->members.find("quoted\"name");
    ASSERT_NE(it, doc->members.end());
    EXPECT_DOUBLE_EQ(it->second->number, 1.0);

    // Registration is non-owning: later increments show up in dumps.
    c.inc(10);
    doc = minijson::parse(root.dumpJson());
    EXPECT_DOUBLE_EQ(doc->members.find("quoted\"name")->second->number,
                     11.0);
}
