# Regression test for `aflint --ownership-report=PREFIX`, run as a
# ctest.
#
#   cmake -DAFLINT=<aflint> -DROOT=<repo root> -DOUT_DIR=<dir>
#         -P check_aflint_ownership_report.cmake
#
# The report is the measured domain-coupling graph (DESIGN.md §16):
# generating it over the real tree must exit cleanly, the measured
# sync-call and shared-state worklists must be EMPTY (the exec-group
# split retired every facade sync edge and every cross-domain mutable
# reference), and the traffic section must enumerate the per-edge
# message classes each channel carries.

file(REMOVE_RECURSE "${OUT_DIR}")
file(MAKE_DIRECTORY "${OUT_DIR}")

execute_process(
    COMMAND "${AFLINT}" --root "${ROOT}"
            --ownership-report=${OUT_DIR}/ownership-report
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out_text
    ERROR_VARIABLE err_text)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "aflint --ownership-report failed (rc=${rc}):\n"
        "${out_text}\n${err_text}")
endif()

foreach(artifact ownership-report.json ownership-report.dot)
    if(NOT EXISTS "${OUT_DIR}/${artifact}")
        message(FATAL_ERROR "missing report artifact ${artifact}")
    endif()
endforeach()

file(READ "${OUT_DIR}/ownership-report.json" report)

# The split's acceptance bar: zero synchronous facade calls and zero
# cross-domain mutable references survive.
foreach(worklist sync_calls shared_state)
    if(NOT report MATCHES "\"${worklist}\": \\[\n  \\]")
        message(FATAL_ERROR
            "ownership report's ${worklist} worklist is not empty — "
            "a synchronous FC<->BC coupling came back:\n${report}")
    endif()
endforeach()

# Every message class the channel seam carries, with its edge.
foreach(edge
        "\"message\": \"MissRequest\", \"edge\": \"fc->bc\""
        "\"message\": \"FlashCmdMsg\", \"edge\": \"bc->bc\""
        "\"message\": \"InstallComplete\", \"edge\": \"bc->fc\""
        "\"message\": \"BcNotice\", \"edge\": \"bc->fc\""
        "\"message\": \"InstallGrant\", \"edge\": \"fc->bc\"")
    if(NOT report MATCHES "${edge}")
        message(FATAL_ERROR
            "ownership report traffic section lost '${edge}':"
            "\n${report}")
    endif()
endforeach()

# The response/control channels exist at every endpoint.
foreach(holder
        "DramCache::bcToFcRsp"
        "DramCache::fcToBcCtl"
        "BacksideController::toFcRsp"
        "BacksideController::fromFcCtl"
        "FrontsideController::fromBcRsp"
        "FrontsideController::toBcCtl")
    if(NOT report MATCHES "${holder}")
        message(FATAL_ERROR
            "ownership report lost channel endpoint '${holder}':"
            "\n${report}")
    endif()
endforeach()

file(READ "${OUT_DIR}/ownership-report.dot" graph)
if(NOT graph MATCHES "digraph ownership")
    message(FATAL_ERROR "DOT report is not a digraph:\n${graph}")
endif()
