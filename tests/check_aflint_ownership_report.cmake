# Regression test for `aflint --ownership-report=PREFIX`, run as a
# ctest.
#
#   cmake -DAFLINT=<aflint> -DROOT=<repo root> -DOUT_DIR=<dir>
#         -P check_aflint_ownership_report.cmake
#
# The report is the measured domain-coupling graph (DESIGN.md §16):
# generating it over the real tree must exit cleanly and the JSON must
# enumerate the facade's synchronous FC<->BC edges — the BC service
# call on the miss path, the FC install delivery under the channel
# drain, and the backside's mutable references into the fc-owned
# shared structures (the baselined AF022 worklist).

file(REMOVE_RECURSE "${OUT_DIR}")
file(MAKE_DIRECTORY "${OUT_DIR}")

execute_process(
    COMMAND "${AFLINT}" --root "${ROOT}"
            --ownership-report=${OUT_DIR}/ownership-report
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out_text
    ERROR_VARIABLE err_text)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "aflint --ownership-report failed (rc=${rc}):\n"
        "${out_text}\n${err_text}")
endif()

foreach(artifact ownership-report.json ownership-report.dot)
    if(NOT EXISTS "${OUT_DIR}/${artifact}")
        message(FATAL_ERROR "missing report artifact ${artifact}")
    endif()
endforeach()

file(READ "${OUT_DIR}/ownership-report.json" report)
foreach(edge
        "BacksideController::service"
        "BacksideController::flashReadIssued"
        "FrontsideController::deliverInstalls"
        "FrontsideController::finishMiss"
        "BacksideController::dramModel"
        "BacksideController::pageTags"
        "BacksideController::fp")
    if(NOT report MATCHES "${edge}")
        message(FATAL_ERROR
            "ownership report lost the measured coupling "
            "'${edge}':\n${report}")
    endif()
endforeach()

file(READ "${OUT_DIR}/ownership-report.dot" graph)
if(NOT graph MATCHES "digraph ownership")
    message(FATAL_ERROR "DOT report is not a digraph:\n${graph}")
endif()
