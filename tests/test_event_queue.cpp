/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/ticks.hh"

using namespace astriflash::sim;

TEST(EventQueue, StartsAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, SameTickOrderedByInsertion)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, PriorityBreaksTies)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(2); }, EventPriority::Stats);
    eq.schedule(5, [&] { order.push_back(1); }, EventPriority::Default);
    eq.schedule(5, [&] { order.push_back(0); },
                EventPriority::ClockEdge);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] {
        ++fired;
        eq.scheduleIn(5, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.curTick(), 15u);
}

TEST(EventQueue, RunUntilStopsAtLimitInclusive)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.schedule(21, [&] { ++fired; });
    EXPECT_EQ(eq.runUntil(20), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, RunStepsBoundsExecution)
{
    EventQueue eq;
    for (int i = 0; i < 5; ++i)
        eq.schedule(i + 1, [] {});
    EXPECT_EQ(eq.runSteps(3), 3u);
    EXPECT_EQ(eq.pending(), 2u);
}

TEST(EventQueue, DescheduleCancelsPending)
{
    EventQueue eq;
    int fired = 0;
    const EventId id = eq.schedule(10, [&] { ++fired; });
    EXPECT_TRUE(eq.deschedule(id));
    eq.run();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueue, DescheduleIsIdempotent)
{
    EventQueue eq;
    const EventId id = eq.schedule(10, [] {});
    EXPECT_TRUE(eq.deschedule(id));
    EXPECT_FALSE(eq.deschedule(id));
    EXPECT_FALSE(eq.deschedule(kInvalidEventId));
    EXPECT_FALSE(eq.deschedule(99999));
}

TEST(EventQueue, DescheduleAfterFireFails)
{
    EventQueue eq;
    const EventId id = eq.schedule(10, [] {});
    eq.run();
    EXPECT_FALSE(eq.deschedule(id));
}

TEST(EventQueue, PendingCountsOnlyLiveEvents)
{
    EventQueue eq;
    const EventId a = eq.schedule(10, [] {});
    eq.schedule(20, [] {});
    EXPECT_EQ(eq.pending(), 2u);
    eq.deschedule(a);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, ExecutedAccumulates)
{
    EventQueue eq;
    for (int i = 0; i < 4; ++i)
        eq.schedule(i + 1, [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 4u);
}

TEST(EventQueue, ZeroDelayEventRunsAtCurrentTick)
{
    EventQueue eq;
    Ticks seen = kTickNever;
    eq.schedule(7, [&] {
        eq.scheduleIn(0, [&] { seen = eq.curTick(); });
    });
    eq.run();
    EXPECT_EQ(seen, 7u);
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(50, [] {}), "scheduling into the past");
}

/** Determinism: interleaved schedules produce identical traces. */
TEST(EventQueue, DeterministicTrace)
{
    auto trace = [] {
        EventQueue eq;
        std::vector<std::uint64_t> t;
        for (int i = 0; i < 100; ++i) {
            eq.schedule((i * 37) % 50 + 1, [&t, &eq] {
                t.push_back(eq.curTick());
            });
        }
        eq.run();
        return t;
    };
    EXPECT_EQ(trace(), trace());
}

// ---- Generation-tagged slot reuse ----

TEST(EventQueue, StaleHandleCannotCancelReusedSlot)
{
    EventQueue eq;
    int fired = 0;
    const EventId a = eq.schedule(10, [&] { ++fired; });
    eq.run();
    // Slot 0 is free again; the next schedule reuses it under a new
    // generation, so the stale handle must not alias the new event.
    const EventId b = eq.schedule(20, [&] { fired += 100; });
    EXPECT_NE(a, b);
    EXPECT_FALSE(eq.deschedule(a));
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_TRUE(eq.deschedule(b));
    eq.run();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, StaleHandleAfterCancelCannotCancelReusedSlot)
{
    EventQueue eq;
    int fired = 0;
    const EventId a = eq.schedule(10, [&] { ++fired; });
    EXPECT_TRUE(eq.deschedule(a));
    eq.run(); // Reaps the tombstone and releases the slot.
    const EventId b = eq.schedule(20, [&] { ++fired; });
    EXPECT_FALSE(eq.deschedule(a));
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.deschedule(b) == false);
}

TEST(EventQueue, HandlesStayUniqueAcrossManyReuses)
{
    EventQueue eq;
    std::vector<EventId> seen;
    for (int round = 0; round < 50; ++round) {
        const EventId id = eq.schedule(eq.curTick() + 1, [] {});
        for (const EventId old : seen)
            EXPECT_NE(id, old);
        seen.push_back(id);
        eq.run();
    }
}

// ---- Cancellation from inside a firing callback ----

TEST(EventQueue, CallbackCancelsLaterEvent)
{
    EventQueue eq;
    int fired = 0;
    EventId victim = kInvalidEventId;
    victim = eq.schedule(20, [&] { fired += 100; });
    eq.schedule(10, [&] {
        ++fired;
        EXPECT_TRUE(eq.deschedule(victim));
    });
    eq.run();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CallbackCancelsSameTickEvent)
{
    EventQueue eq;
    int fired = 0;
    // Same tick: the first event (earlier seq) cancels the second
    // before it surfaces.
    EventId victim = kInvalidEventId;
    eq.schedule(10, [&] {
        ++fired;
        EXPECT_TRUE(eq.deschedule(victim));
    });
    victim = eq.schedule(10, [&] { fired += 100; });
    eq.run();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CallbackReschedulesDuringFire)
{
    // The firing slot is released before the callback runs, so the
    // callback's own schedule may land in the very slot that is firing
    // (and may reallocate the slot table). Both must be safe.
    EventQueue eq;
    std::vector<Ticks> at;
    eq.schedule(10, [&] {
        at.push_back(eq.curTick());
        for (int i = 0; i < 64; ++i)
            eq.scheduleIn(1 + i, [&] { at.push_back(eq.curTick()); });
    });
    eq.run();
    EXPECT_EQ(at.size(), 65u);
    EXPECT_EQ(at.front(), 10u);
    EXPECT_EQ(at.back(), 74u);
}

// ---- Tie-break ordering under the slot/heap split ----

TEST(EventQueue, TieBreakSurvivesCancellations)
{
    EventQueue eq;
    std::vector<int> order;
    std::vector<EventId> ids;
    for (int i = 0; i < 16; ++i)
        ids.push_back(eq.schedule(5, [&order, i] {
            order.push_back(i);
        }));
    for (int i = 0; i < 16; i += 2)
        EXPECT_TRUE(eq.deschedule(ids[static_cast<std::size_t>(i)]));
    eq.run();
    std::vector<int> expect;
    for (int i = 1; i < 16; i += 2)
        expect.push_back(i);
    EXPECT_EQ(order, expect);
}

TEST(EventQueue, PriorityThenInsertionOrderAfterReuse)
{
    EventQueue eq;
    // Burn and release some slots first so the tie-break test runs on
    // reused slots (seq, not slot index, must decide order).
    for (int i = 0; i < 8; ++i)
        eq.schedule(1, [] {});
    eq.run();
    std::vector<int> order;
    eq.schedule(10, [&] { order.push_back(2); }, EventPriority::Stats);
    eq.schedule(10, [&] { order.push_back(0); },
                EventPriority::ClockEdge);
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(10, [&] { order.push_back(3); },
                EventPriority::Teardown);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

// ---- Compaction policy ----

TEST(EventQueue, CompactionReclaimsTombstones)
{
    EventQueue eq;
    std::vector<EventId> ids;
    const std::size_t n = EventQueue::kCompactMinHeap * 4;
    for (std::size_t i = 0; i < n; ++i)
        ids.push_back(eq.schedule(1000 + i, [] {}));
    // Cancel well past the tombstone threshold; the queue must compact
    // eagerly rather than let cancelled nodes accumulate.
    for (std::size_t i = 0; i < n; ++i) {
        if (i % 3 != 0) {
            EXPECT_TRUE(eq.deschedule(ids[i]));
        }
    }
    EXPECT_GE(eq.compactions(), 1u);
    // Post-compaction bound: tombstones are at most 1/kCompactDenominator
    // of the heap (for heaps above the minimum size). Heap size is the
    // live events plus the tombstones still parked in it.
    const std::size_t heap_size = eq.pending() + eq.cancelledInHeap();
    EXPECT_TRUE(heap_size <= EventQueue::kCompactMinHeap ||
                eq.cancelledInHeap() * EventQueue::kCompactDenominator <=
                    heap_size);
    astriflash::sim::InvariantChecker chk;
    eq.checkInvariants(chk);
    EXPECT_EQ(chk.failures(), 0u);
    eq.run();
    EXPECT_EQ(eq.executed(), (n + 2) / 3); // The i % 3 == 0 survivors.
}

TEST(EventQueue, SmallHeapsNeverCompact)
{
    EventQueue eq;
    std::vector<EventId> ids;
    for (std::size_t i = 0; i < EventQueue::kCompactMinHeap; ++i)
        ids.push_back(eq.schedule(100 + i, [] {}));
    for (const EventId id : ids)
        EXPECT_TRUE(eq.deschedule(id));
    EXPECT_EQ(eq.compactions(), 0u);
    eq.run();
    EXPECT_EQ(eq.executed(), 0u);
}

// ---- Invariant audit & reserve ----

TEST(EventQueue, InvariantsHoldOnBusyQueue)
{
    EventQueue eq;
    std::vector<EventId> ids;
    for (int i = 0; i < 200; ++i)
        ids.push_back(eq.schedule((i * 17) % 97 + 1, [] {}));
    for (int i = 0; i < 200; i += 5)
        eq.deschedule(ids[static_cast<std::size_t>(i)]);
    eq.runSteps(50);
    astriflash::sim::InvariantChecker chk;
    eq.checkInvariants(chk);
    EXPECT_EQ(chk.failures(), 0u);
    EXPECT_GT(chk.conditionsEvaluated(), 0u);
}

TEST(EventQueue, ReserveDoesNotDisturbSemantics)
{
    EventQueue eq;
    eq.reserve(1024);
    std::vector<int> order;
    for (int i = 0; i < 500; ++i)
        eq.schedule((499 - i) + 1, [&order, i] { order.push_back(i); });
    eq.run();
    EXPECT_EQ(order.size(), 500u);
    EXPECT_EQ(order.front(), 499);
    EXPECT_EQ(order.back(), 0);
    EXPECT_EQ(eq.executed(), 500u);
}

// --------------------------------------------------------------------
// Same-tick tie-break perturbation (the detshake hook).
// --------------------------------------------------------------------

TEST(EventQueuePerturbation, SeedZeroIsExactlyProductionOrder)
{
    // Seed 0 must be bit-for-bit the unperturbed insertion order,
    // whether or not the hook is compiled in.
    EventQueue eq;
    eq.setTiePerturbation(0);
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueuePerturbation, NonzeroSeedPermutesSameTickTies)
{
    if (!EventQueue::tiePerturbationCompiledIn())
        GTEST_SKIP() << "perturbation hook compiled out (Release)";

    auto runWithSeed = [](std::uint64_t seed) {
        EventQueue eq;
        eq.setTiePerturbation(seed);
        std::vector<int> order;
        for (int i = 0; i < 16; ++i)
            eq.schedule(5, [&order, i] { order.push_back(i); });
        eq.run();
        return order;
    };

    std::vector<int> identity(16);
    for (int i = 0; i < 16; ++i)
        identity[i] = i;

    bool permuted = false;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        std::vector<int> order = runWithSeed(seed);
        // Always a permutation: every event fires exactly once.
        std::vector<int> sorted = order;
        std::sort(sorted.begin(), sorted.end());
        EXPECT_EQ(sorted, identity);
        if (order != identity)
            permuted = true;
        // The same seed replays the same permutation.
        EXPECT_EQ(runWithSeed(seed), order);
    }
    EXPECT_TRUE(permuted)
        << "no seed in 1..4 moved any same-tick tie";
}

TEST(EventQueuePerturbation, PerturbationRespectsTimeAndPriority)
{
    if (!EventQueue::tiePerturbationCompiledIn())
        GTEST_SKIP() << "perturbation hook compiled out (Release)";

    // Shaking ties must never reorder across ticks or priorities:
    // only the order WITHIN a (when, prio) group may move.
    EventQueue eq;
    eq.setTiePerturbation(12345);
    std::vector<int> order;
    eq.schedule(20, [&] { order.push_back(200); });
    for (int i = 0; i < 8; ++i)
        eq.schedule(10, [&order, i] { order.push_back(100 + i); });
    eq.schedule(10, [&] { order.push_back(99); },
                EventPriority::ClockEdge);
    eq.schedule(10, [&] { order.push_back(150); },
                EventPriority::Stats);
    eq.run();
    ASSERT_EQ(order.size(), 11u);
    EXPECT_EQ(order.front(), 99);   // tick 10, ClockEdge
    EXPECT_EQ(order[9], 150);       // tick 10, Stats
    EXPECT_EQ(order.back(), 200);   // tick 20
    for (std::size_t i = 1; i <= 8; ++i) {
        EXPECT_GE(order[i], 100);
        EXPECT_LT(order[i], 108);
    }
}

TEST(EventQueuePerturbationDeath, NonzeroSeedFatalWhenCompiledOut)
{
    if (EventQueue::tiePerturbationCompiledIn())
        GTEST_SKIP() << "hook compiled in; the seed is honored";
    EventQueue eq;
    EXPECT_EXIT(eq.setTiePerturbation(1),
                ::testing::ExitedWithCode(1), "compiled out");
}

// --------------------------------------------------------------------
// Exec-group support: shared clock/sequence state and the head-key
// probe the parallel engine's K-way merge is built on.
// --------------------------------------------------------------------

TEST(EventQueueGroupState, MembersShareClockAndSequenceSpace)
{
    EventQueueGroup group;
    EventQueue a;
    EventQueue b;
    a.joinGroup(group);
    b.joinGroup(group);
    EXPECT_EQ(a.groupKey(), b.groupKey());
    EXPECT_NE(a.groupKey(), EventQueue{}.groupKey());

    // Executing on one member advances every member's clock.
    a.schedule(40, [] {});
    a.runSteps(1);
    EXPECT_EQ(a.curTick(), 40u);
    EXPECT_EQ(b.curTick(), 40u);

    // scheduleIn() on the idle member is relative to the shared now.
    std::vector<int> order;
    b.scheduleIn(5, [&order] { order.push_back(1); });
    b.runSteps(1);
    EXPECT_EQ(b.curTick(), 45u);
    EXPECT_EQ(order, (std::vector<int>{1}));
}

TEST(EventQueueGroupState, SharedSequenceBreaksCrossQueueTies)
{
    // Two members schedule at the same (when, prio); the shared
    // counter makes global insertion order the tie break, exactly as
    // if one queue held both events.
    EventQueueGroup group;
    EventQueue a;
    EventQueue b;
    a.joinGroup(group);
    b.joinGroup(group);

    EventQueue::HeadKey ka;
    EventQueue::HeadKey kb;
    a.schedule(10, [] {});
    b.schedule(10, [] {});
    ASSERT_TRUE(a.headKey(ka));
    ASSERT_TRUE(b.headKey(kb));
    EXPECT_EQ(ka.when, kb.when);
    EXPECT_EQ(ka.prio, kb.prio);
    EXPECT_TRUE(ka < kb); // a scheduled first on the shared counter
    EXPECT_FALSE(kb < ka);
}

TEST(EventQueue, HeadKeyDescribesTheNextPoppedEvent)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(20, [&order] { order.push_back(20); });
    eq.schedule(10, [&order] { order.push_back(10); });
    eq.schedule(10, [&order] { order.push_back(11); },
                EventPriority::Stats);

    EventQueue::HeadKey k;
    ASSERT_TRUE(eq.headKey(k));
    EXPECT_EQ(k.when, 10u);
    EXPECT_EQ(k.prio,
              static_cast<std::int32_t>(EventPriority::Default));
    eq.runSteps(1);
    EXPECT_EQ(order, (std::vector<int>{10}));

    ASSERT_TRUE(eq.headKey(k));
    EXPECT_EQ(k.when, 10u);
    EXPECT_EQ(k.prio,
              static_cast<std::int32_t>(EventPriority::Stats));
    eq.run();
    EXPECT_FALSE(eq.headKey(k));
    EXPECT_EQ(order, (std::vector<int>{10, 11, 20}));
}

TEST(EventQueue, HeadKeyReapsCancelledRoots)
{
    EventQueue eq;
    const EventId e1 = eq.schedule(5, [] {});
    const EventId e2 = eq.schedule(6, [] {});
    eq.schedule(7, [] {});
    EXPECT_TRUE(eq.deschedule(e1));
    EXPECT_TRUE(eq.deschedule(e2));

    // The probe must skip both tombstones and describe the live head.
    EventQueue::HeadKey k;
    ASSERT_TRUE(eq.headKey(k));
    EXPECT_EQ(k.when, 7u);
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_EQ(eq.cancelledInHeap(), 0u); // reaped by the probe
}
