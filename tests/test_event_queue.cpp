/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/ticks.hh"

using namespace astriflash::sim;

TEST(EventQueue, StartsAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, SameTickOrderedByInsertion)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, PriorityBreaksTies)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(2); }, EventPriority::Stats);
    eq.schedule(5, [&] { order.push_back(1); }, EventPriority::Default);
    eq.schedule(5, [&] { order.push_back(0); },
                EventPriority::ClockEdge);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] {
        ++fired;
        eq.scheduleIn(5, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.curTick(), 15u);
}

TEST(EventQueue, RunUntilStopsAtLimitInclusive)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.schedule(21, [&] { ++fired; });
    EXPECT_EQ(eq.runUntil(20), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, RunStepsBoundsExecution)
{
    EventQueue eq;
    for (int i = 0; i < 5; ++i)
        eq.schedule(i + 1, [] {});
    EXPECT_EQ(eq.runSteps(3), 3u);
    EXPECT_EQ(eq.pending(), 2u);
}

TEST(EventQueue, DescheduleCancelsPending)
{
    EventQueue eq;
    int fired = 0;
    const EventId id = eq.schedule(10, [&] { ++fired; });
    EXPECT_TRUE(eq.deschedule(id));
    eq.run();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueue, DescheduleIsIdempotent)
{
    EventQueue eq;
    const EventId id = eq.schedule(10, [] {});
    EXPECT_TRUE(eq.deschedule(id));
    EXPECT_FALSE(eq.deschedule(id));
    EXPECT_FALSE(eq.deschedule(kInvalidEventId));
    EXPECT_FALSE(eq.deschedule(99999));
}

TEST(EventQueue, DescheduleAfterFireFails)
{
    EventQueue eq;
    const EventId id = eq.schedule(10, [] {});
    eq.run();
    EXPECT_FALSE(eq.deschedule(id));
}

TEST(EventQueue, PendingCountsOnlyLiveEvents)
{
    EventQueue eq;
    const EventId a = eq.schedule(10, [] {});
    eq.schedule(20, [] {});
    EXPECT_EQ(eq.pending(), 2u);
    eq.deschedule(a);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, ExecutedAccumulates)
{
    EventQueue eq;
    for (int i = 0; i < 4; ++i)
        eq.schedule(i + 1, [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 4u);
}

TEST(EventQueue, ZeroDelayEventRunsAtCurrentTick)
{
    EventQueue eq;
    Ticks seen = kTickNever;
    eq.schedule(7, [&] {
        eq.scheduleIn(0, [&] { seen = eq.curTick(); });
    });
    eq.run();
    EXPECT_EQ(seen, 7u);
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(50, [] {}), "scheduling into the past");
}

/** Determinism: interleaved schedules produce identical traces. */
TEST(EventQueue, DeterministicTrace)
{
    auto trace = [] {
        EventQueue eq;
        std::vector<std::uint64_t> t;
        for (int i = 0; i < 100; ++i) {
            eq.schedule((i * 37) % 50 + 1, [&t, &eq] {
                t.push_back(eq.curTick());
            });
        }
        eq.run();
        return t;
    };
    EXPECT_EQ(trace(), trace());
}
