/**
 * @file
 * Unit tests for sim::BoundedChannel: FIFO order with non-monotonic
 * producer clocks, time-based occupancy and backpressure (accept tick
 * pushed out to the k-th slot release), stall-cycle accounting, the
 * drain-hook discipline, and the channel's invariant audit.
 *
 * Separate binary (test_channel_suite): the misuse tests are death
 * tests and one arms the global checks gate, so they must not share a
 * process with timing suites.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "sim/bounded_channel.hh"
#include "sim/invariant.hh"

using namespace astriflash;

namespace {

/** Arm (or disarm) simulator checks for one test, restoring after. */
class ScopedChecks
{
  public:
    explicit ScopedChecks(bool on) : prev(sim::checksEnabled())
    {
        sim::setChecksEnabled(on);
    }
    ~ScopedChecks() { sim::setChecksEnabled(prev); }

    ScopedChecks(const ScopedChecks &) = delete;
    ScopedChecks &operator=(const ScopedChecks &) = delete;

  private:
    bool prev;
};

/** Audit @p ch through a throwaway checker; @return failure count. */
template <typename Msg>
std::uint64_t
auditFailures(const sim::BoundedChannel<Msg> &ch)
{
    sim::InvariantChecker chk;
    ch.checkInvariants(chk);
    return chk.failures();
}

} // namespace

// --------------------------------------------------------------------
// FIFO order and timestamping.
// --------------------------------------------------------------------

TEST(BoundedChannel, FifoOrderWithSkewedProducerClocks)
{
    sim::BoundedChannel<int> ch("ch", 64);

    // Producers on different cores push with skewed local clocks; the
    // channel stays FIFO in push order, not tick order.
    EXPECT_EQ(ch.push(1, 100), 100u);
    EXPECT_EQ(ch.push(2, 40), 40u);
    EXPECT_EQ(ch.push(3, 250), 250u);

    ASSERT_FALSE(ch.empty());
    EXPECT_EQ(ch.front().msg, 1);
    EXPECT_EQ(ch.front().pushedAt, 100u);
    EXPECT_EQ(ch.front().acceptedAt, 100u);

    EXPECT_EQ(ch.pop(110), 1);
    EXPECT_EQ(ch.pop(60), 2);
    EXPECT_EQ(ch.pop(260), 3);
    EXPECT_TRUE(ch.empty());

    EXPECT_EQ(ch.stats().pushes.value(), 3u);
    EXPECT_EQ(ch.stats().pops.value(), 3u);
    EXPECT_EQ(ch.stats().fullStalls.value(), 0u);
    EXPECT_EQ(ch.stats().stallTicks.value(), 0u);
}

TEST(BoundedChannel, AcceptEqualsPushAtUnboundedDepth)
{
    // The timing-neutrality contract the FC/BC split relies on: at
    // effectively-unbounded depth the accept tick always equals the
    // push tick, whatever the pop/release history looks like.
    sim::BoundedChannel<int> ch("ch", 65536);
    for (int i = 0; i < 100; ++i) {
        const sim::Ticks t = static_cast<sim::Ticks>(i * 37 % 1000);
        EXPECT_EQ(ch.push(i, t), t);
        ch.dropFront(t + 5000); // slot held far into the future
    }
    EXPECT_EQ(ch.stats().fullStalls.value(), 0u);
    EXPECT_EQ(ch.stats().stallTicks.value(), 0u);
    EXPECT_EQ(ch.stats().peakOccupancy, 100u);
}

// --------------------------------------------------------------------
// Capacity, backpressure, and stall accounting.
// --------------------------------------------------------------------

TEST(BoundedChannel, FullChannelDelaysAcceptToSlotRelease)
{
    sim::BoundedChannel<int> ch("ch", 2);

    // Two transactions occupy both slots until ticks 100 and 200.
    EXPECT_EQ(ch.push(1, 0), 0u);
    ch.dropFront(100);
    EXPECT_EQ(ch.push(2, 0), 0u);
    ch.dropFront(200);

    EXPECT_EQ(ch.inFlight(10), 2u);
    EXPECT_TRUE(ch.wouldStall(10));
    EXPECT_EQ(ch.inFlight(150), 1u);
    EXPECT_FALSE(ch.wouldStall(150));

    // A push at t=10 finds every slot in flight: the accept tick moves
    // out to the earliest release (100) and the 90-tick stall is
    // charged to the channel.
    EXPECT_EQ(ch.push(3, 10), 100u);
    EXPECT_EQ(ch.stats().fullStalls.value(), 1u);
    EXPECT_EQ(ch.stats().stallTicks.value(), 90u);
    EXPECT_EQ(ch.front().pushedAt, 10u);
    EXPECT_EQ(ch.front().acceptedAt, 100u);

    // After the slot-200 transaction also completes, pushes flow
    // freely again.
    EXPECT_EQ(ch.pop(120), 3);
    EXPECT_EQ(ch.push(4, 250), 250u);
    EXPECT_EQ(ch.stats().fullStalls.value(), 1u);
    EXPECT_EQ(ch.stats().peakOccupancy, 2u);
}

TEST(BoundedChannel, ConsecutiveStallsWalkSuccessiveReleases)
{
    sim::BoundedChannel<int> ch("ch", 3);

    // Three popped slots busy until ticks 100/200/300.
    ch.push(1, 0);
    ch.dropFront(100);
    ch.push(2, 0);
    ch.dropFront(200);
    ch.push(3, 0);
    ch.dropFront(300);

    // Full at t=0: the first extra push waits for the earliest release
    // (tick 100); that message stays un-popped, so the next push can
    // only reclaim the tick-200 slot. Each stall is charged in full
    // against the producer's own push tick.
    EXPECT_EQ(ch.push(4, 0), 100u);
    EXPECT_EQ(ch.push(5, 0), 200u);
    EXPECT_EQ(ch.stats().fullStalls.value(), 2u);
    EXPECT_EQ(ch.stats().stallTicks.value(), 300u);
}

TEST(BoundedChannel, DrainHookFiresOnEveryPush)
{
    sim::BoundedChannel<int> ch("ch", 8);
    std::vector<int> drained;
    ch.setDrainHook([&] {
        while (!ch.empty())
            drained.push_back(ch.pop(ch.front().acceptedAt + 10));
    });

    ch.push(7, 0);
    ch.push(8, 5);
    EXPECT_EQ(drained, (std::vector<int>{7, 8}));
    EXPECT_TRUE(ch.empty());
    EXPECT_EQ(ch.stats().pops.value(), 2u);
}

// --------------------------------------------------------------------
// Invariant audit.
// --------------------------------------------------------------------

TEST(BoundedChannel, InvariantAuditPassesThroughLifecycle)
{
    sim::BoundedChannel<int> ch("ch", 2);
    EXPECT_EQ(auditFailures(ch), 0u);

    ch.push(1, 0);
    EXPECT_EQ(auditFailures(ch), 0u); // one message queued

    ch.dropFront(100);
    ch.push(2, 0);
    ch.dropFront(200);
    ch.push(3, 10); // stalls to tick 100
    EXPECT_EQ(auditFailures(ch), 0u);

    ch.pop(150);
    EXPECT_EQ(auditFailures(ch), 0u);
}

TEST(BoundedChannel, InvariantAuditIsRegistryCompatible)
{
    // The System registers each channel as its own invariant
    // component; verify the hook composes with the registry driver.
    sim::BoundedChannel<int> ch("dcache.fc_to_bc", 4);
    ch.push(11, 3);

    sim::InvariantRegistry reg;
    reg.setFailFast(false);
    reg.add(ch.name(),
            [&ch](sim::InvariantChecker &chk) { ch.checkInvariants(chk); });
    EXPECT_EQ(reg.checkAll(sim::microseconds(1)), 0u);
    EXPECT_GE(reg.conditionsEvaluated(), 5u);
}

// --------------------------------------------------------------------
// Misuse (death tests).
// --------------------------------------------------------------------

TEST(BoundedChannelDeath, ZeroCapacityIsFatal)
{
    EXPECT_EXIT(sim::BoundedChannel<int>("bad", 0),
                ::testing::ExitedWithCode(1), "capacity >= 1");
}

TEST(BoundedChannelDeath, FrontOnEmptyPanics)
{
    sim::BoundedChannel<int> ch("ch", 2);
    EXPECT_DEATH(ch.front(), "front\\(\\) on empty");
}

TEST(BoundedChannelDeath, FullWithUndrainedMessagesPanics)
{
    // The synchronous pump discipline guarantees pushed messages are
    // drained before the next push; violating it on a full channel has
    // no defined accept tick and must panic (when checks are armed).
    ScopedChecks armed(true);
    sim::BoundedChannel<int> ch("ch", 1);
    ch.push(1, 0); // occupies the only slot, never popped
    EXPECT_DEATH(ch.push(2, 0), "un-drained");
}

// --------------------------------------------------------------------
// Edge cases: depth-1, same-tick turnaround, exact-full boundary,
// and mid-flight stats reset.
// --------------------------------------------------------------------

TEST(BoundedChannel, DepthOneSerializesEveryTransaction)
{
    sim::BoundedChannel<int> ch("ch", 1);

    // The single slot round-trips each message: with the slot held to
    // tick 50, the next push stalls to exactly that release.
    EXPECT_EQ(ch.push(1, 0), 0u);
    ch.dropFront(50);
    EXPECT_EQ(ch.push(2, 10), 50u);
    EXPECT_EQ(ch.stats().fullStalls.value(), 1u);
    EXPECT_EQ(ch.stats().stallTicks.value(), 40u);
    ch.dropFront(120);

    // A push after the release flows without a stall.
    EXPECT_EQ(ch.push(3, 130), 130u);
    ch.dropFront(130);
    EXPECT_EQ(ch.stats().fullStalls.value(), 1u);
    EXPECT_EQ(ch.stats().peakOccupancy, 1u);
    EXPECT_EQ(auditFailures(ch), 0u);
}

TEST(BoundedChannel, SameTickSendAndReceive)
{
    sim::BoundedChannel<int> ch("ch", 4);

    // Push and consume at the identical tick: legal (a zero-lookahead
    // channel), stamps all equal, nothing charged as a stall.
    EXPECT_EQ(ch.push(1, 42), 42u);
    EXPECT_EQ(ch.front().pushedAt, 42u);
    EXPECT_EQ(ch.front().acceptedAt, 42u);
    EXPECT_EQ(ch.pop(42), 1);
    EXPECT_TRUE(ch.empty());
    // A slot released at tick 42 is already free to a tick-42 push.
    EXPECT_EQ(ch.inFlight(42), 0u);
    EXPECT_EQ(ch.stats().fullStalls.value(), 0u);
    EXPECT_EQ(ch.stats().stallTicks.value(), 0u);
    EXPECT_EQ(auditFailures(ch), 0u);
}

TEST(BoundedChannel, BackpressureExactlyAtFullOccupancy)
{
    sim::BoundedChannel<int> ch("ch", 2);

    // One of two slots in flight: one below capacity, no backpressure.
    ch.push(1, 0);
    ch.dropFront(100);
    EXPECT_EQ(ch.inFlight(10), 1u);
    EXPECT_FALSE(ch.wouldStall(10));

    // Exactly at capacity: the boundary push must stall, and must be
    // accepted exactly at the earliest release tick, not one later.
    ch.push(2, 0);
    ch.dropFront(200);
    EXPECT_EQ(ch.inFlight(10), 2u);
    EXPECT_TRUE(ch.wouldStall(10));
    EXPECT_EQ(ch.push(3, 10), 100u);
    EXPECT_EQ(ch.stats().fullStalls.value(), 1u);
    EXPECT_EQ(ch.stats().stallTicks.value(), 90u);

    // At the release tick itself the freed slot is usable: occupancy
    // is back below capacity from the consumer's viewpoint.
    ch.dropFront(300);
    EXPECT_EQ(ch.inFlight(200), 1u);
    EXPECT_FALSE(ch.wouldStall(200));
    EXPECT_EQ(auditFailures(ch), 0u);
}

TEST(BoundedChannel, ResetStatsMidFlightRebasesConservation)
{
    sim::BoundedChannel<int> ch("ch", 4);
    ch.push(1, 0);
    ch.push(2, 5);
    ch.push(3, 9);
    ch.dropFront(500); // one slot in flight far into the future
    EXPECT_EQ(auditFailures(ch), 0u);

    // Reset mid-flight: conservation re-bases on the two queued
    // messages, the peak restarts at the current depth, and the
    // in-flight slot keeps its release tick.
    ch.resetStats();
    EXPECT_EQ(ch.stats().pushes.value(), 2u);
    EXPECT_EQ(ch.stats().pops.value(), 0u);
    EXPECT_EQ(ch.stats().fullStalls.value(), 0u);
    EXPECT_EQ(ch.stats().stallTicks.value(), 0u);
    EXPECT_EQ(ch.stats().peakOccupancy, 2u);
    EXPECT_EQ(auditFailures(ch), 0u);

    // The queue keeps draining consistently after the reset.
    EXPECT_EQ(ch.pop(20), 2);
    EXPECT_EQ(ch.pop(30), 3);
    EXPECT_EQ(ch.stats().pops.value(), 2u);
    EXPECT_EQ(auditFailures(ch), 0u);

    // The pre-reset in-flight slot (release tick 500) still occupies
    // capacity after the reset; the tick-20/30 slots have drained.
    ch.push(4, 40);
    ch.push(5, 40);
    EXPECT_EQ(ch.inFlight(40), 3u); // 2 queued + the tick-500 slot
    EXPECT_EQ(auditFailures(ch), 0u);
}

// --------------------------------------------------------------------
// Stamp watermark: the lock-free "earliest undelivered stamp" the
// parallel engine's horizon computation reads from another thread.
// --------------------------------------------------------------------

TEST(BoundedChannel, WatermarkTracksTheFrontAcceptStamp)
{
    sim::BoundedChannel<int> ch("ch", 4);
    EXPECT_EQ(ch.stampWatermark(), sim::kTickNever); // idle

    ch.push(1, 10);
    EXPECT_EQ(ch.stampWatermark(), 10u);

    // A later push does not move the watermark: it mirrors the OLDEST
    // undelivered message, which bounds the earliest consumer work.
    ch.push(2, 25);
    EXPECT_EQ(ch.stampWatermark(), 10u);

    ch.dropFront(30);
    EXPECT_EQ(ch.stampWatermark(), 25u);
    ch.dropFront(40);
    EXPECT_EQ(ch.stampWatermark(), sim::kTickNever); // idle again
    EXPECT_EQ(auditFailures(ch), 0u);
}

TEST(BoundedChannel, WatermarkCarriesTheStalledAcceptTick)
{
    sim::BoundedChannel<int> ch("ch", 1);
    ch.push(1, 0);
    ch.dropFront(50); // slot busy to tick 50

    // The stalled push is accepted at 50, and it is the accept stamp —
    // not the push tick — the watermark must publish: no consumer-side
    // work can precede the tick the message actually entered.
    EXPECT_EQ(ch.push(2, 10), 50u);
    EXPECT_EQ(ch.stampWatermark(), 50u);
    ch.dropFront(60);
    EXPECT_EQ(ch.stampWatermark(), sim::kTickNever);
    EXPECT_EQ(auditFailures(ch), 0u);
}

TEST(BoundedChannel, WatermarkSurvivesResetStatsMidFlight)
{
    sim::BoundedChannel<int> ch("ch", 4);
    ch.push(1, 10);
    ch.push(2, 20);
    ch.dropFront(25);
    EXPECT_EQ(ch.stampWatermark(), 20u);

    // The warmup-boundary reset rebases the counters, but the
    // watermark mirrors queue contents, not statistics: the horizon
    // computation on another thread must keep seeing the true oldest
    // undelivered stamp across the reset.
    ch.resetStats();
    EXPECT_EQ(ch.stats().pushes.value(), 1u);
    EXPECT_EQ(ch.stampWatermark(), 20u);
    EXPECT_EQ(auditFailures(ch), 0u);

    // Messages pushed after the reset keep following the front.
    ch.push(3, 35);
    EXPECT_EQ(ch.stampWatermark(), 20u);
    ch.dropFront(40);
    EXPECT_EQ(ch.stampWatermark(), 35u);
    ch.dropFront(50);
    EXPECT_EQ(ch.stampWatermark(), sim::kTickNever);
    EXPECT_EQ(auditFailures(ch), 0u);
}

TEST(BoundedChannel, WatermarkIsReadableFromAnotherThread)
{
    // The engine's horizon computation reads stampWatermark() from a
    // worker thread while the producer's thread mutates the queue —
    // the one cross-thread access the channel supports. Exercise that
    // pairing under load so the TSan job certifies the release-store /
    // acquire-load protocol: every value the reader observes must be a
    // stamp the producer actually published (or idle), never a torn or
    // stale-beyond-reuse value.
    sim::BoundedChannel<int> ch("ch", 8);
    constexpr sim::Ticks kRounds = 2000;

    std::atomic<bool> stop{false};
    std::vector<sim::Ticks> seen;
    std::thread reader([&ch, &stop, &seen] {
        while (!stop.load(std::memory_order_relaxed)) {
            const sim::Ticks w = ch.stampWatermark();
            if (seen.empty() || seen.back() != w)
                seen.push_back(w);
        }
    });

    // Owner thread: monotonic push/drain cycles; accept stamps are
    // exactly the push ticks (the channel never fills at depth 8 with
    // an immediate drop).
    for (sim::Ticks t = 1; t <= kRounds; ++t) {
        ch.push(static_cast<int>(t), 10 * t);
        ch.dropFront(10 * t);
    }
    stop.store(true, std::memory_order_relaxed);
    reader.join();

    EXPECT_EQ(ch.stampWatermark(), sim::kTickNever);
    sim::Ticks prev = 0;
    for (const sim::Ticks w : seen) {
        if (w == sim::kTickNever)
            continue;
        // Published stamps are multiples of 10 in-range, and the
        // front never moves backwards.
        EXPECT_EQ(w % 10, 0u);
        EXPECT_GE(w, prev);
        EXPECT_LE(w, 10 * kRounds);
        prev = w;
    }
    EXPECT_EQ(auditFailures(ch), 0u);
}
