/**
 * @file
 * Tests for the miss-lifecycle trace ring: disabled no-op behaviour,
 * ring wrap-around, and the JSONL drain format.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "mini_json.hh"
#include "sim/trace_events.hh"

using namespace astriflash::sim;

namespace {

/** RAII guard: whatever a test does, leave the global sink disabled. */
struct TracerGuard {
    TracerGuard() { Tracer::instance().disable(); }
    ~TracerGuard() { Tracer::instance().disable(); }
};

} // namespace

TEST(TraceEvents, DisabledEmitIsNoOp)
{
    TracerGuard guard;
    auto &t = Tracer::instance();
    EXPECT_FALSE(t.enabled());
    traceEvent(TracePoint::LlcMiss, 100, 0, 0x1000, 1);
    traceEvent(TracePoint::PageFill, 200, 1, 0x2000, 2);
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.emitted(), 0u);
    EXPECT_EQ(t.dropped(), 0u);
}

TEST(TraceEvents, RecordsInOrderWhileEnabled)
{
    TracerGuard guard;
    auto &t = Tracer::instance();
    t.enable(16);
    EXPECT_TRUE(t.enabled());
    traceEvent(TracePoint::LlcMiss, 100, 2, 0x1000, 7);
    traceEvent(TracePoint::MsrInsert, 150, 2, 0x1000, 1);
    traceEvent(TracePoint::FlashReadIssue, 160,
               TraceRecord::kNoCore, 0x1000, 4096);
    ASSERT_EQ(t.size(), 3u);
    EXPECT_EQ(t.emitted(), 3u);

    std::vector<TraceRecord> recs;
    t.forEach([&](const TraceRecord &r) { recs.push_back(r); });
    ASSERT_EQ(recs.size(), 3u);
    EXPECT_EQ(recs[0].point, TracePoint::LlcMiss);
    EXPECT_EQ(recs[0].tick, 100u);
    EXPECT_EQ(recs[0].core, 2u);
    EXPECT_EQ(recs[0].addr, 0x1000u);
    EXPECT_EQ(recs[0].detail, 7u);
    EXPECT_EQ(recs[1].point, TracePoint::MsrInsert);
    EXPECT_EQ(recs[2].core, TraceRecord::kNoCore);
}

TEST(TraceEvents, RingKeepsNewestAndCountsDrops)
{
    TracerGuard guard;
    auto &t = Tracer::instance();
    t.enable(4);
    for (std::uint64_t i = 0; i < 10; ++i)
        traceEvent(TracePoint::JobStart, 1000 + i, 0, 0, i);
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.emitted(), 10u);
    EXPECT_EQ(t.dropped(), 6u);

    // The survivors are the newest four, oldest first.
    std::vector<std::uint64_t> details;
    t.forEach([&](const TraceRecord &r) { details.push_back(r.detail); });
    ASSERT_EQ(details.size(), 4u);
    EXPECT_EQ(details[0], 6u);
    EXPECT_EQ(details[3], 9u);
}

TEST(TraceEvents, ClearKeepsRingEnabled)
{
    TracerGuard guard;
    auto &t = Tracer::instance();
    t.enable(8);
    traceEvent(TracePoint::GcBlocked, 5, 0, 0x40, 123);
    ASSERT_EQ(t.size(), 1u);
    t.clear();
    EXPECT_EQ(t.size(), 0u);
    EXPECT_TRUE(t.enabled());
    traceEvent(TracePoint::GcBlocked, 6, 0, 0x40, 124);
    EXPECT_EQ(t.size(), 1u);
}

TEST(TraceEvents, DisableReleasesState)
{
    TracerGuard guard;
    auto &t = Tracer::instance();
    t.enable(8);
    traceEvent(TracePoint::ThreadPark, 1, 0, 0, 0);
    t.disable();
    EXPECT_FALSE(t.enabled());
    EXPECT_EQ(t.size(), 0u);
    traceEvent(TracePoint::ThreadPark, 2, 0, 0, 0);
    EXPECT_EQ(t.size(), 0u);
}

TEST(TraceEvents, WriteJsonlEmitsOneParseableObjectPerLine)
{
    TracerGuard guard;
    auto &t = Tracer::instance();
    t.enable(8);
    traceEvent(TracePoint::LlcMiss, 100, 1, 0xdead0000, 42);
    traceEvent(TracePoint::FlashReadDone, 9999,
               TraceRecord::kNoCore, 0xbeef000, 0);

    std::ostringstream os;
    t.writeJsonl(os);
    std::istringstream in(os.str());
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(in, line)) {
        if (!line.empty())
            lines.push_back(line);
    }
    ASSERT_EQ(lines.size(), 2u);

    const auto first = minijson::parse(lines[0]);
    ASSERT_NE(first, nullptr) << lines[0];
    ASSERT_TRUE(first->isObject());
    EXPECT_EQ(first->find("event")->str, "llc_miss");
    EXPECT_DOUBLE_EQ(first->find("tick")->number, 100.0);
    EXPECT_DOUBLE_EQ(first->find("core")->number, 1.0);
    EXPECT_DOUBLE_EQ(first->find("detail")->number, 42.0);

    const auto second = minijson::parse(lines[1]);
    ASSERT_NE(second, nullptr) << lines[1];
    EXPECT_EQ(second->find("event")->str, "flash_read_done");
}

TEST(TraceEvents, PointNamesAreStable)
{
    EXPECT_STREQ(tracePointName(TracePoint::LlcMiss), "llc_miss");
    EXPECT_STREQ(tracePointName(TracePoint::MsrInsert), "msr_insert");
    EXPECT_STREQ(tracePointName(TracePoint::MsrDedup), "msr_dedup");
    EXPECT_STREQ(tracePointName(TracePoint::FlashReadIssue),
                 "flash_read_issue");
    EXPECT_STREQ(tracePointName(TracePoint::PageFill), "page_fill");
    EXPECT_STREQ(tracePointName(TracePoint::ThreadResume),
                 "thread_resume");
    EXPECT_STREQ(tracePointName(TracePoint::JobFinish), "job_finish");
}
