/**
 * @file
 * End-to-end observability tests: the full-system stats tree, its JSON
 * rendering, determinism under a fixed seed, and the guarantee that
 * tracing is inert when disabled.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/system.hh"
#include "mini_json.hh"
#include "sim/trace_events.hh"

using namespace astriflash;
using namespace astriflash::core;

namespace {

SystemConfig
smallCfg(SystemKind kind)
{
    SystemConfig cfg;
    cfg.kind = kind;
    cfg.cores = 4;
    cfg.workloadKind = workload::Kind::Tatp;
    cfg.workload.datasetBytes = 256ull << 20;
    cfg.warmupJobs = 30;
    cfg.measureJobs = 200;
    return cfg;
}

} // namespace

TEST(Observability, RegistryCoversAtLeastEightComponents)
{
    System sys(smallCfg(SystemKind::AstriFlash));
    sys.run();
    const auto kids = sys.statsRegistry().childNames();
    EXPECT_GE(kids.size(), 8u)
        << "components: " << ::testing::PrintToString(kids);
    for (const char *expected :
         {"core0", "core1", "core2", "core3", "dcache", "flash",
          "system"}) {
        EXPECT_NE(std::find(kids.begin(), kids.end(), expected),
                  kids.end())
            << "missing component " << expected;
    }
}

TEST(Observability, CanonicalNamespacesExist)
{
    System sys(smallCfg(SystemKind::AstriFlash));
    sys.run();
    const auto &reg = sys.statsRegistry();
    // The stable dotted paths DESIGN.md documents.
    EXPECT_NE(reg.findSub("dcache.bc.msr"), nullptr);
    EXPECT_NE(reg.findSub("dcache.bc.evictbuf"), nullptr);
    EXPECT_NE(reg.findSub("dcache.fc"), nullptr);
    EXPECT_NE(reg.findSub("flash.ftl"), nullptr);
    EXPECT_NE(reg.findSub("core0.sched"), nullptr);
    EXPECT_NE(reg.findSub("core0.hier"), nullptr);

    std::vector<std::string> names;
    reg.forEachStat([&](const std::string &n) { names.push_back(n); });
    for (const char *expected :
         {"dcache.bc.msr.occupancy", "dcache.fc.hits",
          "flash.ftl.gc_invocations", "flash.reads",
          "system.service", "core0.jobs_completed"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), expected),
                  names.end())
            << "missing stat " << expected;
    }
}

TEST(Observability, SystemJsonParsesAndMatchesResults)
{
    System sys(smallCfg(SystemKind::AstriFlash));
    const RunResults r = sys.run();

    const auto doc = minijson::parse(sys.statsRegistry().dumpJson());
    ASSERT_NE(doc, nullptr);
    const auto *service = doc->find("system.service");
    ASSERT_NE(service, nullptr);
    EXPECT_DOUBLE_EQ(service->find("count")->number,
                     static_cast<double>(r.jobs));
    // Results-API histograms mirror the registry's live ones.
    EXPECT_EQ(r.service.count(), r.jobs);
    EXPECT_DOUBLE_EQ(service->find("p99")->number,
                     static_cast<double>(r.service.percentile(0.99)));
    EXPECT_GE(r.serviceUs(0.99), r.serviceUs(0.50));
    EXPECT_GT(r.avgServiceUs(), 0.0);

    const auto *hits = doc->find("dcache.fc.hits");
    ASSERT_NE(hits, nullptr);
    EXPECT_GT(hits->number, 0.0);
}

TEST(Observability, IdenticalSeedsProduceIdenticalStats)
{
    const std::string a = [] {
        System sys(smallCfg(SystemKind::AstriFlash));
        sys.run();
        return sys.statsRegistry().dumpJson();
    }();
    const std::string b = [] {
        System sys(smallCfg(SystemKind::AstriFlash));
        sys.run();
        return sys.statsRegistry().dumpJson();
    }();
    EXPECT_EQ(a, b);

    SystemConfig other = smallCfg(SystemKind::AstriFlash);
    other.seed += 1;
    System sys(other);
    sys.run();
    EXPECT_NE(sys.statsRegistry().dumpJson(), a);
}

TEST(Observability, TracingDisabledRecordsNothingDuringRun)
{
    auto &tracer = sim::Tracer::instance();
    tracer.disable();
    System sys(smallCfg(SystemKind::AstriFlash));
    sys.run();
    EXPECT_FALSE(tracer.enabled());
    EXPECT_EQ(tracer.size(), 0u);
    EXPECT_EQ(tracer.emitted(), 0u);
}

TEST(Observability, TracingEnabledCapturesMissLifecycle)
{
    auto &tracer = sim::Tracer::instance();
    tracer.enable(1 << 16);
    {
        System sys(smallCfg(SystemKind::AstriFlash));
        sys.run();
    }
    EXPECT_GT(tracer.emitted(), 0u);
    bool saw_miss = false, saw_fill = false, saw_resume = false;
    tracer.forEach([&](const sim::TraceRecord &rec) {
        if (rec.point == sim::TracePoint::LlcMiss)
            saw_miss = true;
        if (rec.point == sim::TracePoint::PageFill)
            saw_fill = true;
        if (rec.point == sim::TracePoint::ThreadResume)
            saw_resume = true;
    });
    tracer.disable();
    EXPECT_TRUE(saw_miss);
    EXPECT_TRUE(saw_fill);
    EXPECT_TRUE(saw_resume);
}

TEST(Observability, DramOnlySystemHasFlatDramComponent)
{
    System sys(smallCfg(SystemKind::DramOnly));
    sys.run();
    const auto kids = sys.statsRegistry().childNames();
    EXPECT_NE(std::find(kids.begin(), kids.end(), "flatdram"),
              kids.end());
    EXPECT_EQ(std::find(kids.begin(), kids.end(), "dcache"),
              kids.end());
}
