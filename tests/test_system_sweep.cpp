/**
 * @file
 * Parameterized robustness sweep: every §V-B configuration must
 * complete its measurement and satisfy basic sanity invariants for
 * multiple RNG seeds — guarding against seed-dependent deadlocks or
 * accounting bugs that a single golden run would hide.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/system.hh"

using namespace astriflash;
using namespace astriflash::core;

namespace {

constexpr SystemKind kAllSystems[] = {
    SystemKind::DramOnly,        SystemKind::AstriFlash,
    SystemKind::AstriFlashIdeal, SystemKind::AstriFlashNoPS,
    SystemKind::AstriFlashNoDP,  SystemKind::OsSwap,
    SystemKind::FlashSync,
};

} // namespace

class SystemSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>>
{
};

TEST_P(SystemSweep, CompletesWithSaneInvariants)
{
    const auto [kind_idx, seed] = GetParam();
    const SystemKind kind = kAllSystems[kind_idx];

    SystemConfig cfg;
    cfg.kind = kind;
    cfg.cores = 2;
    cfg.workloadKind = workload::Kind::HashTable;
    cfg.workload.datasetBytes = 256ull << 20;
    cfg.warmupJobs = 100;
    cfg.measureJobs = 600;
    cfg.seed = seed;

    System sys(cfg);
    const RunResults r = sys.run();

    // The measurement must complete (no deadlock / livelock).
    ASSERT_EQ(r.jobs, 600u) << systemKindName(kind);
    EXPECT_GT(r.throughputJobsPerSec, 0.0);

    // Latency ordering invariants.
    EXPECT_LE(r.serviceUs(0.50), r.serviceUs(0.99));
    EXPECT_LE(r.serviceUs(0.99), r.serviceUs(0.999));
    EXPECT_GT(r.avgServiceUs(), 0.0);

    // Flash traffic only exists on flash-backed configurations.
    if (kind == SystemKind::DramOnly) {
        EXPECT_EQ(r.flashReads, 0u);
    } else {
        EXPECT_GT(r.flashReads, 0u);
        // Misses are bounded by accesses: hit ratio stays sane.
        if (kind != SystemKind::OsSwap) {
            EXPECT_GT(r.dramCacheHitRatio, 0.5);
            EXPECT_LE(r.dramCacheHitRatio, 1.0);
        }
    }

    // Shootdowns only exist under OS paging.
    if (kind == SystemKind::OsSwap)
        EXPECT_GT(r.shootdowns, 0u);
    else
        EXPECT_EQ(r.shootdowns, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    ConfigsBySeeds, SystemSweep,
    ::testing::Combine(::testing::Range(0, 7),
                       ::testing::Values(std::uint64_t{1},
                                         std::uint64_t{99},
                                         std::uint64_t{20260707})),
    [](const auto &info) {
        // No structured bindings here: commas in the binding list
        // break the INSTANTIATE macro's argument parsing.
        std::string name = systemKindName(
            kAllSystems[std::get<0>(info.param)]);
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name + "_seed" +
               std::to_string(std::get<1>(info.param));
    });
