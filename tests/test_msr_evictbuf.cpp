/**
 * @file
 * Tests for the in-DRAM Miss Status Row and the evict buffer.
 */

#include <gtest/gtest.h>

#include "core/evict_buffer.hh"
#include "core/miss_status_row.hh"

using namespace astriflash::core;
using astriflash::mem::kPageSize;
using astriflash::mem::PageNum;
using astriflash::mem::pageNumber;

namespace {
/** Page number of a byte address (tests use byte-address literals). */
PageNum pn(astriflash::mem::Addr a) { return pageNumber(a); }
} // namespace

TEST(MissStatusRow, AllocateDuplicateFree)
{
    MissStatusRow msr("m", 4, 2);
    EXPECT_EQ(msr.allocate(pn(0x1000)), MsrAlloc::New);
    EXPECT_EQ(msr.allocate(pn(0x1000)), MsrAlloc::Duplicate);
    EXPECT_EQ(msr.allocate(pn(0x1fff)), MsrAlloc::Duplicate); // same page
    EXPECT_TRUE(msr.contains(pn(0x1000)));
    EXPECT_EQ(msr.occupancy(), 1u);
    msr.free(pn(0x1000));
    EXPECT_FALSE(msr.contains(pn(0x1000)));
    EXPECT_EQ(msr.stats().duplicates.value(), 2u);
}

TEST(MissStatusRow, SetConflictStalls)
{
    MissStatusRow msr("m", 1, 2); // single set of 2 entries
    EXPECT_EQ(msr.allocate(pn(0 * kPageSize)), MsrAlloc::New);
    EXPECT_EQ(msr.allocate(pn(1 * kPageSize)), MsrAlloc::New);
    EXPECT_EQ(msr.allocate(pn(2 * kPageSize)), MsrAlloc::SetFull);
    EXPECT_EQ(msr.stats().setFullStalls.value(), 1u);
    msr.free(pn(0 * kPageSize));
    EXPECT_EQ(msr.allocate(pn(2 * kPageSize)), MsrAlloc::New);
}

TEST(MissStatusRow, CapacityAndPeakTracking)
{
    MissStatusRow msr("m", 8, 8);
    EXPECT_EQ(msr.capacity(), 64u);
    std::uint32_t placed = 0;
    for (std::uint64_t p = 0; p < 200 && placed < 40; ++p) {
        if (msr.allocate(pn(p * kPageSize)) == MsrAlloc::New)
            ++placed;
    }
    EXPECT_EQ(msr.occupancy(), placed);
    EXPECT_EQ(msr.stats().peakOccupancy, placed);
}

TEST(MissStatusRowDeath, FreeingAbsentEntryPanics)
{
    MissStatusRow msr("m", 4, 2);
    EXPECT_DEATH(msr.free(pn(0x5000)), "absent MSR entry");
}

TEST(EvictBuffer, FifoOrderAndDirtyTracking)
{
    EvictBuffer buf("e", 4);
    EXPECT_TRUE(buf.insert(pn(0x1000), true, 10));
    EXPECT_TRUE(buf.insert(pn(0x2000), false, 20));
    EXPECT_EQ(buf.occupancy(), 2u);
    const auto first = buf.pop();
    EXPECT_EQ(first.page, pn(0x1000));
    EXPECT_TRUE(first.dirty);
    const auto second = buf.pop();
    EXPECT_EQ(second.page, pn(0x2000));
    EXPECT_FALSE(second.dirty);
    EXPECT_EQ(buf.stats().dirtyInserts.value(), 1u);
}

TEST(EvictBuffer, FullRejectsAndCounts)
{
    EvictBuffer buf("e", 2);
    EXPECT_TRUE(buf.insert(pn(0x1000), false, 0));
    EXPECT_TRUE(buf.insert(pn(0x2000), false, 0));
    EXPECT_FALSE(buf.insert(pn(0x3000), false, 0));
    EXPECT_EQ(buf.stats().fullStalls.value(), 1u);
    buf.pop();
    EXPECT_TRUE(buf.insert(pn(0x3000), false, 0));
}

TEST(EvictBuffer, ContainsMatchesPageGranularity)
{
    EvictBuffer buf("e", 4);
    buf.insert(pn(0x3000), false, 0);
    EXPECT_TRUE(buf.contains(pn(0x3fff)));
    EXPECT_FALSE(buf.contains(pn(0x4000)));
}
