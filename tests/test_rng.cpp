/**
 * @file
 * Statistical sanity tests for the RNG and its distributions.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.hh"

using namespace astriflash::sim;

TEST(Rng, DeterministicGivenSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LE(same, 1);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0;
    for (int i = 0; i < 100000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(Rng, UniformIntRespectsBound)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(rng.uniformInt(17), 17u);
    EXPECT_EQ(rng.uniformInt(0), 0u);
    EXPECT_EQ(rng.uniformInt(1), 0u);
}

TEST(Rng, UniformIntRangeInclusive)
{
    Rng rng(11);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const std::uint64_t v = rng.uniformInt(5, 8);
        ASSERT_GE(v, 5u);
        ASSERT_LE(v, 8u);
        hit_lo |= v == 5;
        hit_hi |= v == 8;
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Rng, UniformIntIsUnbiased)
{
    // Lemire rejection: each residue of a non-power-of-two bound
    // appears with near-equal frequency.
    Rng rng(13);
    const std::uint64_t bound = 10;
    std::uint64_t counts[10] = {};
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.uniformInt(bound)];
    for (std::uint64_t c : counts)
        EXPECT_NEAR(static_cast<double>(c), n / 10.0, n * 0.005);
}

TEST(Rng, ChanceEdges)
{
    Rng rng(5);
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(21);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(50.0);
    EXPECT_NEAR(sum / n, 50.0, 0.5);
}

TEST(Rng, NormalMoments)
{
    Rng rng(23);
    double sum = 0, sq = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal(10.0, 3.0);
        sum += v;
        sq += v * v;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.05);
    EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, PoissonMeanSmallAndLarge)
{
    Rng rng(27);
    for (double mean : {0.5, 4.0, 200.0}) {
        double sum = 0;
        const int n = 50000;
        for (int i = 0; i < n; ++i)
            sum += static_cast<double>(rng.poisson(mean));
        EXPECT_NEAR(sum / n, mean, mean * 0.05 + 0.05) << mean;
    }
    EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(31);
    Rng b = a.fork();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LE(same, 1);
}
