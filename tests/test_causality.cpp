/**
 * @file
 * Tests for the causality auditor (DESIGN.md §14): channel contracts
 * are registered through the thread-local attach scope, clean traffic
 * is certified with zero violations, and deliberate contract breaches
 * — a time-travelling send consumed before its declared lookahead, a
 * backwards push on a monotone channel, an event fired behind the
 * queue clock — are caught, both recorded and fail-fast.
 *
 * Separate binary (test_causality_suite): arms the global checks gate
 * and runs death tests, so it must not share a process with timing
 * suites. The whole-system certification runs a committed golden
 * configuration under audit and requires zero violations with nonzero
 * audit traffic.
 */

#include <gtest/gtest.h>

#include <string>

#include "sim/bounded_channel.hh"
#include "sim/causality.hh"
#include "sim/event_queue.hh"
#include "sim/invariant.hh"

#include "golden_cases.hh"

using namespace astriflash;
using namespace astriflash::core;
using namespace astriflash::tools;

namespace {

/** Arm (or disarm) simulator checks for one test, restoring after. */
class ScopedChecks
{
  public:
    explicit ScopedChecks(bool on) : prev(sim::checksEnabled())
    {
        sim::setChecksEnabled(on);
    }
    ~ScopedChecks() { sim::setChecksEnabled(prev); }

    ScopedChecks(const ScopedChecks &) = delete;
    ScopedChecks &operator=(const ScopedChecks &) = delete;

  private:
    bool prev;
};

} // namespace

// --------------------------------------------------------------------
// Attach scope and registration.
// --------------------------------------------------------------------

TEST(CausalityAuditor, ScopeInstallsAndRestoresNested)
{
    EXPECT_EQ(sim::CausalityAuditor::current(), nullptr);
    sim::CausalityAuditor outer;
    {
        sim::CausalityAuditor::Scope s1(outer);
        EXPECT_EQ(sim::CausalityAuditor::current(), &outer);
        sim::CausalityAuditor inner;
        {
            sim::CausalityAuditor::Scope s2(inner);
            EXPECT_EQ(sim::CausalityAuditor::current(), &inner);
        }
        EXPECT_EQ(sim::CausalityAuditor::current(), &outer);
    }
    EXPECT_EQ(sim::CausalityAuditor::current(), nullptr);
}

TEST(CausalityAuditor, ChannelSelfRegistersInsideScope)
{
    ScopedChecks armed(true);
    sim::CausalityAuditor auditor;
    sim::CausalityAuditor::Scope scope(auditor);
    sim::BoundedChannel<int> ch(
        "audited.ch", 8, sim::ChannelContract{25, true});

    ASSERT_EQ(auditor.channelCount(), 1u);
    EXPECT_EQ(auditor.channel(0).name, "audited.ch");
    EXPECT_EQ(auditor.channel(0).contract.minLatency, 25u);
    EXPECT_TRUE(auditor.channel(0).contract.monotonePush);
    EXPECT_EQ(ch.contract().minLatency, 25u);
}

// --------------------------------------------------------------------
// Clean traffic certifies; contract breaches are recorded.
// --------------------------------------------------------------------

TEST(CausalityAuditor, CleanTrafficHasZeroViolations)
{
    ScopedChecks armed(true);
    sim::CausalityAuditor auditor;
    auditor.setFailFast(false);
    sim::CausalityAuditor::Scope scope(auditor);
    sim::BoundedChannel<int> ch(
        "ch", 8, sim::ChannelContract{100, true});

    ch.push(1, 0);
    ch.dropFront(100, 250); // consumed exactly at push + lookahead
    ch.push(2, 40);
    ch.dropFront(500, 600);
    EXPECT_EQ(auditor.violationCount(), 0u);
    EXPECT_EQ(auditor.sendsAudited(), 2u);
    EXPECT_EQ(auditor.deliveriesAudited(), 2u);
    EXPECT_EQ(auditor.channel(0).minObservedLatency, 100u);

    sim::InvariantChecker chk;
    auditor.checkInvariants(chk);
    EXPECT_EQ(chk.failures(), 0u);
}

TEST(CausalityAuditor, TimeTravellingSendIsCaught)
{
    // The seeded fault: a message consumed sooner after its push than
    // the channel's declared lookahead permits. A conservative
    // parallel engine lagging the producer by minLatency would have
    // delivered this message late — the certificate must refuse it.
    ScopedChecks armed(true);
    sim::CausalityAuditor auditor;
    auditor.setFailFast(false);
    sim::CausalityAuditor::Scope scope(auditor);
    sim::BoundedChannel<int> ch("ch", 8, sim::ChannelContract{100});

    ch.push(7, 50);
    ch.dropFront(90, 200); // consumed at 90 < 50 + 100
    ASSERT_EQ(auditor.violationCount(), 1u);
    EXPECT_EQ(auditor.violations()[0].channel, "ch");
    EXPECT_NE(auditor.violations()[0].detail.find("lookahead"),
              std::string::npos);

    // The invariant sweep re-reports the stored violation.
    sim::InvariantChecker chk;
    auditor.checkInvariants(chk);
    EXPECT_GT(chk.failures(), 0u);
}

TEST(CausalityAuditor, BackwardsPushOnMonotoneChannelIsCaught)
{
    ScopedChecks armed(true);
    sim::CausalityAuditor auditor;
    auditor.setFailFast(false);
    sim::CausalityAuditor::Scope scope(auditor);
    sim::BoundedChannel<int> ch(
        "ch", 8, sim::ChannelContract{0, true});

    ch.push(1, 100);
    ch.push(2, 60); // producer clock ran backwards on a monotone channel
    EXPECT_EQ(auditor.violationCount(), 1u);
    EXPECT_NE(auditor.violations()[0].detail.find("monotone"),
              std::string::npos);
}

TEST(CausalityAuditor, SkewIsTelemetryOnNonMonotoneChannels)
{
    // Channels fed by skewed core-local clocks declare no
    // monotonicity; backwards pushes are legal and only tracked.
    ScopedChecks armed(true);
    sim::CausalityAuditor auditor;
    auditor.setFailFast(false);
    sim::CausalityAuditor::Scope scope(auditor);
    sim::BoundedChannel<int> ch("ch", 8, sim::ChannelContract{});

    ch.push(1, 100);
    ch.push(2, 60);
    EXPECT_EQ(auditor.violationCount(), 0u);
    EXPECT_EQ(auditor.channel(0).maxObservedSkew, 40u);
}

TEST(CausalityAuditor, EventFiredBehindQueueClockIsCaught)
{
    ScopedChecks armed(true);
    sim::CausalityAuditor auditor;
    auditor.setFailFast(false);
    auditor.onEventFired(10, 12);
    EXPECT_EQ(auditor.violationCount(), 0u);
    auditor.onEventFired(10, 5);
    ASSERT_EQ(auditor.violationCount(), 1u);
    EXPECT_EQ(auditor.violations()[0].channel, "eq");
}

TEST(CausalityAuditor, HooksDisarmWithChecksGate)
{
    // Disarmed, the hooks are free: nothing audited, nothing reported
    // — arming checks must never be required for correctness, only
    // for certification.
    ScopedChecks disarmed(false);
    sim::CausalityAuditor auditor;
    sim::CausalityAuditor::Scope scope(auditor);
    sim::BoundedChannel<int> ch("ch", 8, sim::ChannelContract{100});
    ch.push(7, 50);
    ch.dropFront(90, 200); // would violate the lookahead if armed
    EXPECT_EQ(auditor.violationCount(), 0u);
    EXPECT_EQ(auditor.sendsAudited(), 0u);
    EXPECT_EQ(auditor.deliveriesAudited(), 0u);
}

// --------------------------------------------------------------------
// Fail-fast (death test).
// --------------------------------------------------------------------

TEST(CausalityAuditorDeath, TimeTravellingSendPanicsFailFast)
{
    ScopedChecks armed(true);
    sim::CausalityAuditor auditor; // fail-fast is the default
    sim::CausalityAuditor::Scope scope(auditor);
    sim::BoundedChannel<int> ch("ch", 8, sim::ChannelContract{100});
    ch.push(7, 50);
    EXPECT_DEATH(ch.dropFront(90, 200), "causality violation");
}

// --------------------------------------------------------------------
// Whole-system certification on a committed golden configuration.
// --------------------------------------------------------------------

TEST(CausalitySystem, GoldenConfigCertifiesCleanUnderAudit)
{
    ScopedChecks armed(true);
    const GoldenCase &gc = kGoldenCases[0];
    System sys(goldenCaseConfig(gc));
    sys.run();

    const sim::CausalityAuditor &auditor = sys.causalityAuditor();
    EXPECT_EQ(auditor.violationCount(), 0u)
        << (auditor.violations().empty()
                ? std::string()
                : auditor.violations()[0].detail);
    // The certificate is vacuous unless real traffic was audited.
    EXPECT_GE(auditor.channelCount(), 3u);
    EXPECT_GT(auditor.sendsAudited(), 0u);
    EXPECT_GT(auditor.deliveriesAudited(), 0u);
    EXPECT_GE(auditor.sendsAudited(), auditor.deliveriesAudited());
    EXPECT_GT(auditor.eventsAudited(), 0u);
}
