/**
 * @file
 * Queueing theory vs Monte Carlo cross-validation (Fig. 3 machinery).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "queueing/mc_queue.hh"
#include "queueing/queueing.hh"

using namespace astriflash::queueing;

TEST(MM1, KnownClosedForms)
{
    // rho = 0.5, mu = 1: mean sojourn = 1/(mu-lambda) = 2.
    MM1 q(0.5, 1.0);
    EXPECT_DOUBLE_EQ(q.utilization(), 0.5);
    EXPECT_DOUBLE_EQ(q.meanResponse(), 2.0);
    // p99 of Exp(0.5) = ln(100)/0.5.
    EXPECT_NEAR(q.responsePercentile(0.99), std::log(100.0) / 0.5,
                1e-9);
}

TEST(MM1, UnstableDetected)
{
    MM1 q(2.0, 1.0);
    EXPECT_FALSE(q.stable());
}

TEST(MMk, ReducesToMM1WhenKIs1)
{
    MM1 a(0.7, 1.0);
    MMk b(0.7, 1.0, 1);
    EXPECT_NEAR(a.meanResponse(), b.meanResponse(), 1e-9);
    EXPECT_NEAR(a.responsePercentile(0.99),
                b.responsePercentile(0.99), 1e-6);
}

TEST(MMk, ErlangCInUnitRange)
{
    for (double rho : {0.1, 0.5, 0.9, 0.99}) {
        MMk q(rho * 8, 1.0, 8);
        EXPECT_GT(q.probWait(), 0.0);
        EXPECT_LT(q.probWait(), 1.0);
        EXPECT_TRUE(q.stable());
    }
}

TEST(MMk, MoreServersReduceWaiting)
{
    MMk a(3.0, 1.0, 4);
    MMk b(3.0, 1.0, 8);
    EXPECT_GT(a.probWait(), b.probWait());
    EXPECT_GT(a.meanResponse(), b.meanResponse());
}

TEST(MMk, SurvivalMonotoneDecreasing)
{
    MMk q(5.0, 1.0, 6);
    double prev = 1.0;
    for (double t = 0.0; t < 20.0; t += 0.5) {
        const double s = q.responseSurvival(t);
        EXPECT_LE(s, prev + 1e-12);
        EXPECT_GE(s, 0.0);
        prev = s;
    }
}

TEST(MMk, PercentileInvertsSurvival)
{
    MMk q(5.0, 1.0, 6);
    for (double p : {0.5, 0.9, 0.99}) {
        const double t = q.responsePercentile(p);
        EXPECT_NEAR(q.responseSurvival(t), 1.0 - p, 1e-6);
    }
}

/** Closed form vs Monte Carlo across utilizations and server counts. */
class MMkVsMc : public ::testing::TestWithParam<
                    std::tuple<double, std::uint32_t>>
{
};

TEST_P(MMkVsMc, P99WithinMonteCarloNoise)
{
    const auto [rho, k] = GetParam();
    const double mu = 1.0;
    const double lambda = rho * mu * k;
    MMk model(lambda, mu, k);
    const auto mc = simulateQueue(lambda, mu, k, 400000,
                                  ServiceDist::Exponential, 7);
    EXPECT_NEAR(mc.meanResponse, model.meanResponse(),
                model.meanResponse() * 0.05);
    EXPECT_NEAR(mc.p99Response, model.responsePercentile(0.99),
                model.responsePercentile(0.99) * 0.08);
}

INSTANTIATE_TEST_SUITE_P(
    Operating, MMkVsMc,
    ::testing::Combine(::testing::Values(0.3, 0.6, 0.9),
                       ::testing::Values(1u, 4u, 16u)));

TEST(SystemModel, OccupancyAndThroughput)
{
    // The paper's Fig. 3 anchor: work 10 us, flash 50 us.
    SystemModel dram{10.0, 0.0, 0.0, false};
    SystemModel sync{10.0, 50.0, 0.0, false};
    SystemModel astri{10.0, 50.0, 0.2, true};
    SystemModel os_swap{10.0, 50.0, 10.0, true};

    EXPECT_DOUBLE_EQ(dram.maxThroughput(), 0.1);
    // Flash-Sync: >80% throughput degradation.
    EXPECT_LT(sync.maxThroughput() / dram.maxThroughput(), 0.2);
    // OS-Swap: ~50% degradation.
    EXPECT_NEAR(os_swap.maxThroughput() / dram.maxThroughput(), 0.5,
                0.02);
    // AstriFlash: approaches DRAM-only.
    EXPECT_GT(astri.maxThroughput() / dram.maxThroughput(), 0.95);
}

TEST(SystemModel, P99CurveShape)
{
    SystemModel astri{10.0, 50.0, 0.2, true};
    const double low = astri.p99ResponseUs(0.01);
    const double high = astri.p99ResponseUs(0.09);
    EXPECT_GT(low, 50.0); // always includes the flash access
    EXPECT_GT(high, low); // queueing grows with load
    EXPECT_LT(astri.p99ResponseUs(0.2), 0.0); // unstable flagged
}

TEST(McQueue, DeterministicServiceMatchesDG1Intuition)
{
    // At low load with deterministic service, responses cluster at
    // exactly the service time.
    const auto mc = simulateQueue(0.01, 1.0, 1, 50000,
                                  ServiceDist::Deterministic, 3);
    EXPECT_NEAR(mc.p50Response, 1.0, 1e-9);
    EXPECT_NEAR(mc.meanResponse, 1.0, 0.01);
}
