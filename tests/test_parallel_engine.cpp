/**
 * @file
 * Conservative parallel engine tests (sim::ParallelEngine).
 *
 * Engine-level coverage: single-domain execution, cross-group relay
 * determinism at every host-jobs value, quantum-edge eligibility (an
 * event exactly at the horizon runs in that round), idle-channel
 * progress (lookahead past a source's committed clock), deterministic
 * cross-group post delivery, and the misuse death tests (zero
 * cross-group lookahead, shared group without an EventQueueGroup,
 * conservative deadlock).
 *
 * System-level coverage: the six-case golden byte-identity gate at
 * host-jobs 2, depth-1 controller channels between domains, and the
 * warmup-boundary resetStats inside a partitioned run.
 *
 * Separate binary (test_parallel_suite): spawns worker threads and
 * runs death tests, so the TSan job can build and run it standalone.
 */

#include <gtest/gtest.h>

#include <array>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/parallel_engine.hh"

#include "core/system.hh"

#include "golden_cases.hh"

using namespace astriflash;
using namespace astriflash::core;
using namespace astriflash::tools;

namespace {

/** Three event queues in three distinct single-member exec groups. */
struct TriDomain {
    std::array<sim::EventQueue, 3> q;
    std::array<std::vector<sim::Ticks>, 3> log;
    sim::ParallelEngine engine;
    std::array<sim::ParallelEngine::DomainId, 3> dom{};

    explicit TriDomain(unsigned host_jobs,
                       sim::Ticks lookahead = 10)
        : engine(sim::ParallelEngine::Config{host_jobs, 20000})
    {
        for (unsigned i = 0; i < 3; ++i) {
            std::string name("d");
            name += std::to_string(i);
            dom[i] = engine.addDomain(name, q[i], i);
        }
        for (unsigned i = 0; i < 3; ++i)
            engine.addLink(dom[i], dom[(i + 1) % 3], lookahead);
    }
};

/**
 * Relay hop: log the delivery, then post the next hop one lookahead
 * downstream and schedule a local follow-up on the current domain.
 * Self-describing callback state (InlineFunction has no environment),
 * so it carries its own domain id and firing tick.
 */
struct Relay {
    TriDomain *t;
    unsigned dom;
    sim::Ticks when;
    int hopsLeft;

    void
    operator()() const
    {
        t->log[dom].push_back(when);
        if (hopsLeft <= 0)
            return;
        const unsigned nxt = (dom + 1) % 3;
        const sim::Ticks then = when + 10;
        t->engine.post(t->dom[dom], t->dom[nxt], then,
                       Relay{t, nxt, then, hopsLeft - 1});
        // Local work between barriers: fires on this domain only.
        t->q[dom].schedule(when + 3, [t = t, dom = dom,
                                      at = when + 3] {
            t->log[dom].push_back(at);
        });
    }
};

/** Run the 3-domain relay at @p host_jobs; returns the logs. */
std::array<std::vector<sim::Ticks>, 3>
relayRun(unsigned host_jobs, std::uint64_t *events = nullptr)
{
    TriDomain t(host_jobs);
    for (unsigned i = 0; i < 3; ++i)
        t.q[i].schedule(i + 1, Relay{&t, i, i + 1, 40});
    t.engine.run();
    if (events)
        *events = t.engine.stats().events;
    return t.log;
}

} // namespace

TEST(ParallelEngine, SingleDomainDrainsLikeAPlainQueue)
{
    sim::EventQueue q;
    std::vector<sim::Ticks> fired;
    for (sim::Ticks tk = 5; tk <= 50; tk += 5)
        q.schedule(tk, [&fired, tk] { fired.push_back(tk); });

    sim::ParallelEngine engine(sim::ParallelEngine::Config{1, 20000});
    engine.addDomain("only", q, 0);
    engine.run();

    EXPECT_EQ(fired.size(), 10u);
    EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
    EXPECT_EQ(engine.stats().events, 10u);
    EXPECT_EQ(engine.workersSpawned(), 0u);
    EXPECT_EQ(q.curTick(), 50u);
}

TEST(ParallelEngine, WorkerCountClampsToGroupCount)
{
    sim::EventQueue q;
    q.schedule(1, [] {});
    sim::ParallelEngine engine(sim::ParallelEngine::Config{8, 20000});
    engine.addDomain("only", q, 0);
    engine.run();
    // One group can never use more than one worker.
    EXPECT_EQ(engine.workersSpawned(), 1u);
    EXPECT_EQ(engine.stats().events, 1u);
}

TEST(ParallelEngine, RelayLogsAreIdenticalAtEveryHostJobs)
{
    std::uint64_t ev1 = 0;
    const auto inline_logs = relayRun(1, &ev1);
    // Three seeded chains, each 41 relay firings plus 40 local
    // follow-ups: 243 logged events across the domains.
    std::size_t total = 0;
    for (const auto &l : inline_logs)
        total += l.size();
    EXPECT_EQ(total, 3u * (41u + 40u));

    for (const unsigned hj : {2u, 4u}) {
        std::uint64_t evN = 0;
        const auto logs = relayRun(hj, &evN);
        EXPECT_EQ(evN, ev1) << "host-jobs " << hj;
        for (unsigned i = 0; i < 3; ++i)
            EXPECT_EQ(logs[i], inline_logs[i])
                << "domain " << i << " at host-jobs " << hj;
    }
}

TEST(ParallelEngine, RelayTelemetryIsDeterministicAcrossHostJobs)
{
    // The horizon-round and mailbox counters are part of the
    // deterministic contract: they describe the event structure, not
    // the host schedule, so the same relay must report the same
    // telemetry no matter how many workers execute it.
    const auto statsFor = [](unsigned hj) {
        TriDomain t(hj);
        for (unsigned i = 0; i < 3; ++i)
            t.q[i].schedule(i + 1, Relay{&t, i, i + 1, 40});
        t.engine.run();
        return t.engine.stats();
    };

    const sim::ParallelEngine::Stats s2 = statsFor(2);
    // Three chains of 41 relay hops plus 40 local follow-ups each.
    EXPECT_EQ(s2.events, 3u * (41u + 40u));
    // Every hop but the last of each chain crosses a group boundary
    // through a mailbox post.
    EXPECT_EQ(s2.postsDelivered, 3u * 40u);
    EXPECT_GT(s2.rounds, 0u);
    EXPECT_GT(s2.barriers, 0u);
    // Rounds aggregate per-group work items across barriers.
    EXPECT_GE(s2.rounds, s2.barriers);
    // Hops spaced exactly one lookahead apart drain each round before
    // the horizon bites (nonzero-stall coverage lives in
    // EventExactlyAtTheQuantumEdgeRuns); the stall count still must
    // be bounded and schedule-independent.
    EXPECT_LE(s2.horizonStalls, s2.rounds);

    const sim::ParallelEngine::Stats s4 = statsFor(4);
    EXPECT_EQ(s4.rounds, s2.rounds);
    EXPECT_EQ(s4.barriers, s2.barriers);
    EXPECT_EQ(s4.events, s2.events);
    EXPECT_EQ(s4.postsDelivered, s2.postsDelivered);
    EXPECT_EQ(s4.horizonStalls, s2.horizonStalls);
}

TEST(ParallelEngine, EventExactlyAtTheQuantumEdgeRuns)
{
    // Source group: empty queue, but its (modeled) channel holds an
    // undelivered message stamped 40; lookahead 10 puts the horizon
    // at exactly 50. The edge is inclusive: 50 runs, 51 must wait.
    sim::EventQueue src;
    sim::EventQueue dst;
    std::vector<sim::Ticks> fired;
    dst.schedule(50, [&fired] { fired.push_back(50); });
    dst.schedule(51, [&fired] { fired.push_back(51); });

    sim::ParallelEngine engine(sim::ParallelEngine::Config{2, 20000});
    const auto s = engine.addDomain("src", src, 0);
    const auto d = engine.addDomain("dst", dst, 1);
    engine.addLink(s, d, 10, [] { return sim::Ticks{40}; });

    sim::ParallelEngine::RunHooks hooks;
    hooks.stop = [&engine] { return engine.stats().barriers >= 1; };
    engine.run(hooks);

    EXPECT_EQ(fired, (std::vector<sim::Ticks>{50}));
    EXPECT_EQ(dst.curTick(), 50u);
    EXPECT_GE(engine.stats().horizonStalls, 1u);
}

TEST(ParallelEngine, IdleChannelProgressesOnSourceClockPlusLookahead)
{
    // The inbound channel is idle (watermark kTickNever), so the
    // horizon comes from the source's committed clock alone: with
    // src's next event at 1000 and lookahead 10, dst may run through
    // 1010 in the very first round — lookahead-only progress, no
    // message traffic needed.
    sim::EventQueue src;
    sim::EventQueue dst;
    std::vector<sim::Ticks> fired;
    src.schedule(1000, [] {});
    for (const sim::Ticks tk : {100u, 1005u, 1500u})
        dst.schedule(tk, [&fired, tk] { fired.push_back(tk); });

    sim::ParallelEngine engine(sim::ParallelEngine::Config{2, 20000});
    const auto s = engine.addDomain("src", src, 0);
    const auto d = engine.addDomain("dst", dst, 1);
    engine.addLink(s, d, 10, [] { return sim::kTickNever; });

    sim::ParallelEngine::RunHooks hooks;
    hooks.stop = [&engine] { return engine.stats().barriers >= 1; };
    engine.run(hooks);

    EXPECT_EQ(fired, (std::vector<sim::Ticks>{100, 1005}));
    EXPECT_EQ(dst.pending(), 1u);
}

TEST(ParallelEngine, PostsDeliverInWhenPrioSourceOrder)
{
    // Two producer groups post into one consumer at the same tick;
    // whatever order the workers append to the mailbox, delivery must
    // sort by (when, prio, src, srcSeq).
    sim::EventQueue a;
    sim::EventQueue b;
    sim::EventQueue c;
    std::vector<int> order;

    sim::ParallelEngine engine(sim::ParallelEngine::Config{4, 20000});
    const auto da = engine.addDomain("a", a, 0);
    const auto db = engine.addDomain("b", b, 1);
    const auto dc = engine.addDomain("c", c, 2);
    engine.addLink(da, dc, 10);
    engine.addLink(db, dc, 10);

    a.schedule(1, [&engine, &order, da, dc] {
        engine.post(da, dc, 20, [&order] { order.push_back(1); });
        engine.post(da, dc, 20, [&order] { order.push_back(2); });
        engine.post(da, dc, 20, [&order] { order.push_back(0); },
                    sim::EventPriority::ClockEdge);
    });
    b.schedule(1, [&engine, &order, db, dc] {
        engine.post(db, dc, 20, [&order] { order.push_back(3); });
        engine.post(db, dc, 15, [&order] { order.push_back(-1); });
    });
    engine.run();

    // when=15 first; then when=20: ClockEdge prio, then src a's two
    // posts in issue order, then src b's.
    EXPECT_EQ(order, (std::vector<int>{-1, 0, 1, 2, 3}));
    EXPECT_EQ(engine.stats().postsDelivered, 5u);
}

TEST(ParallelEngine, MergedGroupMatchesOneBigQueue)
{
    // Two queues joined in one exec group must execute exactly like a
    // single queue holding every event: same global order, same tie
    // breaks (shared sequence counter), same final clock.
    sim::EventQueueGroup group;
    sim::EventQueue qa;
    sim::EventQueue qb;
    qa.joinGroup(group);
    qb.joinGroup(group);

    sim::EventQueue ref;
    std::vector<int> merged;
    std::vector<int> single;
    int tag = 0;
    for (const sim::Ticks tk : {7u, 3u, 7u, 3u, 9u, 7u}) {
        sim::EventQueue &member = (tag % 2) != 0 ? qb : qa;
        member.schedule(tk, [&merged, tag] { merged.push_back(tag); });
        ref.schedule(tk, [&single, tag] { single.push_back(tag); });
        ++tag;
    }

    sim::ParallelEngine engine(sim::ParallelEngine::Config{1, 20000});
    engine.addDomain("a", qa, 0);
    engine.addDomain("b", qb, 0);
    engine.run();
    ref.run();

    EXPECT_EQ(merged, single);
    EXPECT_EQ(qa.curTick(), ref.curTick());
    EXPECT_EQ(qb.curTick(), ref.curTick());
}

TEST(ParallelEngineDeath, ZeroLookaheadCrossGroupIsFatal)
{
    sim::EventQueue a;
    sim::EventQueue b;
    a.schedule(1, [] {});
    sim::ParallelEngine engine(sim::ParallelEngine::Config{2, 20000});
    const auto da = engine.addDomain("a", a, 0);
    const auto db = engine.addDomain("b", b, 1);
    engine.addLink(da, db, 0);
    EXPECT_DEATH(engine.run(), "lookahead > 0");
}

TEST(ParallelEngineDeath, SharedGroupWithoutEventQueueGroupIsFatal)
{
    sim::EventQueue a;
    sim::EventQueue b; // Same exec group, but never joinGroup()ed.
    a.schedule(1, [] {});
    sim::ParallelEngine engine(sim::ParallelEngine::Config{1, 20000});
    engine.addDomain("a", a, 0);
    engine.addDomain("b", b, 0);
    EXPECT_DEATH(engine.run(), "EventQueueGroup");
}

TEST(ParallelEngineDeath, StuckHorizonIsDeadlockNotSilence)
{
    // The watermark never drains and the source never runs, so after
    // the first round nothing is eligible while events are pending —
    // the engine must die loudly, not spin or exit quietly.
    sim::EventQueue src;
    sim::EventQueue dst;
    dst.schedule(50, [] {});
    dst.schedule(51, [] {});
    sim::ParallelEngine engine(sim::ParallelEngine::Config{1, 20000});
    const auto s = engine.addDomain("src", src, 0);
    const auto d = engine.addDomain("dst", dst, 1);
    engine.addLink(s, d, 10, [] { return sim::Ticks{40}; });
    EXPECT_DEATH(engine.run(), "deadlock");
}

// --------------------------------------------------------------------
// System-level: the partitioned engine behind --host-jobs.
// --------------------------------------------------------------------

namespace {

/** Whole-file slurp; fails the test if the golden file is missing. */
std::string
readGolden(const std::string &case_name)
{
    const std::string path =
        std::string(ASTRI_GOLDEN_DIR) + "/" + case_name + ".json";
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing golden file " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** Render one golden case at @p host_jobs. */
std::string
renderCase(const GoldenCase &gc, unsigned host_jobs)
{
    SystemConfig cfg = goldenCaseConfig(gc);
    cfg.hostJobs = host_jobs;
    System sys(cfg);
    const RunResults r = sys.run();
    std::ostringstream os;
    writeGoldenJson(os, gc, r, sys);
    return os.str();
}

/** Small TATP config for the hj1-vs-hjN System comparisons. */
SystemConfig
smallCfg()
{
    SystemConfig cfg;
    cfg.kind = SystemKind::AstriFlash;
    cfg.cores = 2;
    cfg.workloadKind = workload::Kind::Tatp;
    cfg.workload.datasetBytes = 1ull << 26;
    cfg.warmupJobs = 50;
    cfg.measureJobs = 200;
    cfg.dramCache.bc.shards = 2;
    return cfg;
}

/** Full stats-tree JSON of one run of @p cfg. */
std::string
statsAt(SystemConfig cfg, unsigned host_jobs)
{
    cfg.hostJobs = host_jobs;
    System sys(cfg);
    sys.run();
    return sys.statsRegistry().dumpJson();
}

class ParallelGolden : public ::testing::TestWithParam<GoldenCase>
{
};

} // namespace

/** The non-negotiable gate: every committed golden, byte-identical
 *  when the partitioned engine runs the simulation. */
TEST_P(ParallelGolden, ByteIdenticalAtHostJobs2)
{
    const GoldenCase &gc = GetParam();
    const std::string want = readGolden(gc.name);
    ASSERT_FALSE(want.empty());
    EXPECT_EQ(renderCase(gc, 2), want) << gc.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllCases, ParallelGolden, ::testing::ValuesIn(kGoldenCases),
    [](const ::testing::TestParamInfo<GoldenCase> &info) {
        return std::string(info.param.name);
    });

TEST(ParallelSystem, DepthOneChannelsStayByteIdentical)
{
    // Depth-1 controller channels exercise maximum backpressure on
    // the cross-domain seam; the partition must not change a byte.
    SystemConfig cfg = smallCfg();
    cfg.dramCache.channels.fcToBcDepth = 1;
    cfg.dramCache.channels.bcToFlashDepth = 1;
    cfg.dramCache.channels.bcToFcDepth = 1;
    const std::string one = statsAt(cfg, 1);
    EXPECT_EQ(statsAt(cfg, 2), one);
}

TEST(ParallelSystem, ResetStatsMidRunStaysByteIdentical)
{
    // The warmup->measure transition calls resetStats() on every
    // component while the engine is mid-run (between two barriers);
    // the partitioned run must reset at the same event boundary.
    SystemConfig cfg = smallCfg();
    cfg.warmupJobs = 97; // Deliberately not on a round boundary.
    const std::string one = statsAt(cfg, 1);
    EXPECT_EQ(statsAt(cfg, 2), one);
    EXPECT_EQ(statsAt(cfg, 4), one);
}

TEST(ParallelSystem, PartitionedRunReportsDomainQueues)
{
    SystemConfig cfg = smallCfg();
    cfg.hostJobs = 2;
    System sys(cfg);
    EXPECT_EQ(sys.domainQueueCount(), 2u); // One per BC shard.
    sys.run();
    const sim::ParallelEngine::Stats &es = sys.engineStats();
    EXPECT_GT(es.events, 0u);
    EXPECT_GT(es.barriers, 0u);
    EXPECT_GE(es.rounds, es.barriers);
    EXPECT_EQ(es.events, sys.eventsExecuted());

    // Engine telemetry lives outside the stats tree, so it is free to
    // (and must) be identical across host-jobs: the round structure is
    // a property of the partition, not of the worker count.
    SystemConfig cfg4 = smallCfg();
    cfg4.hostJobs = 4;
    System sys4(cfg4);
    sys4.run();
    const sim::ParallelEngine::Stats &es4 = sys4.engineStats();
    EXPECT_EQ(es4.rounds, es.rounds);
    EXPECT_EQ(es4.barriers, es.barriers);
    EXPECT_EQ(es4.events, es.events);
    EXPECT_EQ(es4.postsDelivered, es.postsDelivered);
    EXPECT_EQ(es4.horizonStalls, es.horizonStalls);

    // The legacy path leaves the engine telemetry zeroed.
    SystemConfig legacy = smallCfg();
    System ref(legacy);
    ref.run();
    EXPECT_EQ(ref.domainQueueCount(), 0u);
    EXPECT_EQ(ref.engineStats().events, 0u);
}
