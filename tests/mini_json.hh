/**
 * @file
 * Minimal recursive-descent JSON reader for tests.
 *
 * Just enough to round-trip-check the simulator's JSON producers
 * (StatRegistry::dumpJson, JsonWriter, the trace JSONL lines) without
 * pulling a JSON library into the tree: parses a document into a
 * Value tree and exposes dotted-path lookup.
 */

#ifndef ASTRIFLASH_TESTS_MINI_JSON_HH
#define ASTRIFLASH_TESTS_MINI_JSON_HH

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace minijson {

struct Value {
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<std::unique_ptr<Value>> items;
    std::map<std::string, std::unique_ptr<Value>> members;

    bool isObject() const { return kind == Kind::Object; }
    bool isNumber() const { return kind == Kind::Number; }

    /** Member lookup by dotted path ("stats.dcache.bc"); nullptr if
     *  any segment is missing or non-object along the way. */
    const Value *
    find(const std::string &path) const
    {
        const Value *cur = this;
        std::size_t pos = 0;
        while (pos <= path.size()) {
            const std::size_t dot = path.find('.', pos);
            const std::string seg =
                path.substr(pos, dot == std::string::npos
                                     ? std::string::npos
                                     : dot - pos);
            if (cur->kind != Kind::Object)
                return nullptr;
            const auto it = cur->members.find(seg);
            if (it == cur->members.end())
                return nullptr;
            cur = it->second.get();
            if (dot == std::string::npos)
                return cur;
            pos = dot + 1;
        }
        return nullptr;
    }
};

class Parser
{
  public:
    /** Parse @p text; returns nullptr on any syntax error. */
    static std::unique_ptr<Value>
    parse(const std::string &text)
    {
        Parser p(text);
        auto v = p.parseValue();
        if (!v)
            return nullptr;
        p.skipWs();
        if (p.pos != text.size())
            return nullptr; // trailing garbage
        return v;
    }

  private:
    explicit Parser(const std::string &t) : text(t) {}

    const std::string &text;
    std::size_t pos = 0;

    void
    skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    std::unique_ptr<Value>
    parseValue()
    {
        skipWs();
        if (pos >= text.size())
            return nullptr;
        const char c = text[pos];
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"')
            return parseString();
        if (c == 't' || c == 'f')
            return parseBool();
        if (c == 'n')
            return parseNull();
        return parseNumber();
    }

    std::unique_ptr<Value>
    parseObject()
    {
        if (!consume('{'))
            return nullptr;
        auto v = std::make_unique<Value>();
        v->kind = Value::Kind::Object;
        skipWs();
        if (consume('}'))
            return v;
        while (true) {
            auto k = parseString();
            if (!k || !consume(':'))
                return nullptr;
            auto member = parseValue();
            if (!member)
                return nullptr;
            v->members[k->str] = std::move(member);
            if (consume(','))
                continue;
            if (consume('}'))
                return v;
            return nullptr;
        }
    }

    std::unique_ptr<Value>
    parseArray()
    {
        if (!consume('['))
            return nullptr;
        auto v = std::make_unique<Value>();
        v->kind = Value::Kind::Array;
        skipWs();
        if (consume(']'))
            return v;
        while (true) {
            auto item = parseValue();
            if (!item)
                return nullptr;
            v->items.push_back(std::move(item));
            if (consume(','))
                continue;
            if (consume(']'))
                return v;
            return nullptr;
        }
    }

    std::unique_ptr<Value>
    parseString()
    {
        skipWs();
        if (pos >= text.size() || text[pos] != '"')
            return nullptr;
        ++pos;
        auto v = std::make_unique<Value>();
        v->kind = Value::Kind::String;
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos++];
            if (c == '\\') {
                if (pos >= text.size())
                    return nullptr;
                const char esc = text[pos++];
                switch (esc) {
                  case 'n': c = '\n'; break;
                  case 't': c = '\t'; break;
                  case 'r': c = '\r'; break;
                  case 'b': c = '\b'; break;
                  case 'f': c = '\f'; break;
                  case '"': c = '"'; break;
                  case '\\': c = '\\'; break;
                  case '/': c = '/'; break;
                  case 'u':
                    // Tests never need non-ASCII; skip the 4 digits
                    // and substitute '?'.
                    if (pos + 4 > text.size())
                        return nullptr;
                    pos += 4;
                    c = '?';
                    break;
                  default:
                    return nullptr;
                }
            }
            v->str.push_back(c);
        }
        if (pos >= text.size())
            return nullptr;
        ++pos; // closing quote
        return v;
    }

    std::unique_ptr<Value>
    parseBool()
    {
        auto v = std::make_unique<Value>();
        v->kind = Value::Kind::Bool;
        if (text.compare(pos, 4, "true") == 0) {
            v->boolean = true;
            pos += 4;
            return v;
        }
        if (text.compare(pos, 5, "false") == 0) {
            v->boolean = false;
            pos += 5;
            return v;
        }
        return nullptr;
    }

    std::unique_ptr<Value>
    parseNull()
    {
        if (text.compare(pos, 4, "null") != 0)
            return nullptr;
        pos += 4;
        return std::make_unique<Value>();
    }

    std::unique_ptr<Value>
    parseNumber()
    {
        const char *begin = text.c_str() + pos;
        char *end = nullptr;
        const double d = std::strtod(begin, &end);
        if (end == begin)
            return nullptr;
        pos += static_cast<std::size_t>(end - begin);
        auto v = std::make_unique<Value>();
        v->kind = Value::Kind::Number;
        v->number = d;
        return v;
    }
};

inline std::unique_ptr<Value>
parse(const std::string &text)
{
    return Parser::parse(text);
}

} // namespace minijson

#endif // ASTRIFLASH_TESTS_MINI_JSON_HH
