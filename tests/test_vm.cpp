/**
 * @file
 * Tests for TLB, page-table model, and the physical address map.
 */

#include <gtest/gtest.h>

#include <set>

#include "mem/address_map.hh"
#include "mem/page_table.hh"
#include "mem/tlb.hh"

using namespace astriflash::mem;

namespace {

Tlb::Config
tinyTlb()
{
    Tlb::Config c;
    c.l1Entries = 4;
    c.l1Ways = 4;
    c.l2Entries = 16;
    c.l2Ways = 4;
    c.l2Latency = 3000;
    return c;
}

} // namespace

TEST(Tlb, MissThenFillThenL1Hit)
{
    Tlb tlb("t", tinyTlb());
    auto r = tlb.lookup(0x5000);
    EXPECT_TRUE(r.miss);
    tlb.fill(0x5000);
    r = tlb.lookup(0x5000);
    EXPECT_FALSE(r.miss);
    EXPECT_EQ(r.latency, 0u); // L1 hit folds into the load
    EXPECT_EQ(tlb.stats().l1Hits.value(), 1u);
}

TEST(Tlb, L2HitPaysLatencyAndRefillsL1)
{
    Tlb tlb("t", tinyTlb());
    // Fill 5 translations mapping to the same L1 set... L1 is fully
    // associative with 4 entries, so the 5th evicts one.
    for (Addr a = 0; a < 5 * kPageSize; a += kPageSize)
        tlb.fill(a);
    // Find one that left L1 but stays in L2.
    bool saw_l2_hit = false;
    for (Addr a = 0; a < 5 * kPageSize; a += kPageSize) {
        const auto r = tlb.lookup(a);
        ASSERT_FALSE(r.miss);
        if (r.latency > 0)
            saw_l2_hit = true;
    }
    EXPECT_TRUE(saw_l2_hit);
    EXPECT_GE(tlb.stats().l2Hits.value(), 1u);
}

TEST(Tlb, InvalidateForcesWalk)
{
    Tlb tlb("t", tinyTlb());
    tlb.fill(0x2000);
    tlb.invalidate(0x2000);
    EXPECT_TRUE(tlb.lookup(0x2000).miss);
    EXPECT_EQ(tlb.stats().shootdowns.value(), 1u);
}

TEST(Tlb, FlushAllEmpties)
{
    Tlb tlb("t", tinyTlb());
    tlb.fill(0x1000);
    tlb.fill(0x2000);
    tlb.flushAll();
    EXPECT_TRUE(tlb.lookup(0x1000).miss);
    EXPECT_TRUE(tlb.lookup(0x2000).miss);
}

TEST(PageTable, WalkTouchesFourDistinctLevels)
{
    PageTableModel pt(0x1000000, kPageSize, 1 << 22);
    const auto walk = pt.walkAddresses(0x12345678);
    std::set<Addr> uniq(walk.begin(), walk.end());
    EXPECT_EQ(uniq.size(), PageTableModel::kLevels);
}

TEST(PageTable, NeighbouringPagesShareLeafPtePage)
{
    PageTableModel pt(0, kPageSize, 1 << 22);
    // 512 consecutive virtual pages share one leaf PTE page.
    EXPECT_EQ(pt.leafPtePage(0), pt.leafPtePage(511 * kPageSize));
    EXPECT_NE(pt.leafPtePage(0), pt.leafPtePage(512 * kPageSize));
}

TEST(PageTable, LeafPtesAreDense)
{
    PageTableModel pt(0, kPageSize, 1 << 22);
    const auto a = pt.walkAddresses(0)[3];
    const auto b = pt.walkAddresses(kPageSize)[3];
    EXPECT_EQ(b - a, PageTableModel::kPteSize);
}

TEST(PageTable, FootprintScalesWithVaSize)
{
    const auto f1 = PageTableModel::tableFootprint(1ull << 30);
    const auto f2 = PageTableModel::tableFootprint(1ull << 34);
    EXPECT_GT(f2, f1);
    // ~8 B per 4 KB page plus upper levels: about 0.2% of VA.
    EXPECT_NEAR(static_cast<double>(f1),
                (1ull << 30) / 512.0, (1ull << 30) / 512.0);
}

TEST(AddressMap, RoutesRanges)
{
    AddressMap amap(1ull << 30, 4ull << 30);
    EXPECT_EQ(amap.route(0), AddressSpace::DramFlat);
    EXPECT_EQ(amap.route((1ull << 30) - 1), AddressSpace::DramFlat);
    const Addr fbase = amap.flashRange().base;
    EXPECT_EQ(amap.route(fbase), AddressSpace::FlashCached);
    EXPECT_EQ(amap.route(fbase + (4ull << 30) - 1),
              AddressSpace::FlashCached);
    EXPECT_EQ(amap.route(fbase + (4ull << 30)), AddressSpace::Invalid);
}

TEST(AddressMap, FlashBarIsGigabyteAligned)
{
    AddressMap amap((1ull << 30) + 5, 1ull << 30);
    EXPECT_EQ(amap.flashRange().base % (1ull << 30), 0u);
    EXPECT_GE(amap.flashRange().base, amap.flatRange().end());
}

TEST(AddressMap, FlashPageRoundTrip)
{
    AddressMap amap(1ull << 20, 1ull << 30);
    for (std::uint64_t raw : {0ull, 1ull, 255ull, 262143ull}) {
        const astriflash::flash::Lpn lpn{raw};
        const Addr pa = amap.flashPageAddr(lpn);
        EXPECT_EQ(amap.flashPage(pa), lpn);
        EXPECT_EQ(amap.flashPage(pa + 4095), lpn);
    }
}
