/**
 * @file
 * Tests for the core-side microarchitecture: rename map, ASO
 * post-retirement store speculation, ROB, and the switch-on-miss
 * architectural registers.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "cpu/aso_engine.hh"
#include "cpu/handler_regs.hh"
#include "cpu/register_map.hh"
#include "cpu/rob.hh"
#include "sim/rng.hh"

using namespace astriflash::cpu;

// ---------------------------------------------------------------
// RegisterMap
// ---------------------------------------------------------------

TEST(RegisterMap, IdentityAtReset)
{
    RegisterMap m(4, 8);
    for (std::uint32_t r = 0; r < 4; ++r)
        EXPECT_EQ(m.mapping(r), r);
    EXPECT_EQ(m.freeCount(), 4u);
}

TEST(RegisterMap, RenameAllocatesFreshAndReportsOld)
{
    RegisterMap m(4, 8);
    PhysReg old_reg = kNoReg;
    const PhysReg fresh = m.rename(2, &old_reg);
    EXPECT_NE(fresh, kNoReg);
    EXPECT_EQ(old_reg, 2u);
    EXPECT_EQ(m.mapping(2), fresh);
    EXPECT_EQ(m.freeCount(), 3u);
}

TEST(RegisterMap, ExhaustionReturnsNoReg)
{
    RegisterMap m(2, 3);
    PhysReg old_reg;
    EXPECT_NE(m.rename(0, &old_reg), kNoReg);
    EXPECT_EQ(m.rename(0, &old_reg), kNoReg);
}

TEST(RegisterMap, ReleaseRecycles)
{
    RegisterMap m(2, 3);
    PhysReg old_reg;
    const PhysReg p = m.rename(0, &old_reg);
    m.release(old_reg);
    const PhysReg q = m.rename(1, &old_reg);
    EXPECT_NE(q, kNoReg);
    EXPECT_NE(q, p);
}

TEST(RegisterMap, SnapshotRestoreFreesSpeculative)
{
    RegisterMap m(4, 12);
    const auto snap = m.snapshot();
    PhysReg old_reg;
    m.rename(0, &old_reg);
    m.rename(1, &old_reg);
    const auto free_before = m.freeCount();
    m.restore(snap);
    EXPECT_EQ(m.freeCount(), free_before + 2);
    for (std::uint32_t r = 0; r < 4; ++r)
        EXPECT_EQ(m.mapping(r), snap[r]);
}

TEST(RegisterMapDeath, DoubleReleasePanics)
{
    RegisterMap m(2, 4);
    PhysReg old_reg;
    m.rename(0, &old_reg);
    m.release(old_reg);
    EXPECT_DEATH(m.release(old_reg), "double release");
}

// ---------------------------------------------------------------
// AsoEngine
// ---------------------------------------------------------------

namespace {

OoOConfig
tinyOoO()
{
    OoOConfig c;
    c.archRegs = 4;
    c.physRegs = 8;
    c.asoExtraRegs = 8;
    c.sbEntries = 4;
    return c;
}

} // namespace

TEST(Aso, StoreCompleteFreesDeferredRegs)
{
    AsoEngine e(tinyOoO());
    const auto free0 = e.freeRegs();
    EXPECT_EQ(e.dispatchStore(0x100), AsoDispatch::Ok);
    EXPECT_EQ(e.writeReg(0), AsoDispatch::Ok);
    EXPECT_EQ(e.writeReg(1), AsoDispatch::Ok);
    // Two renames protected by the pending store.
    EXPECT_EQ(e.freeRegs(), free0 - 2);
    e.completeOldestStore();
    EXPECT_EQ(e.freeRegs(), free0);
    EXPECT_FALSE(e.hasPendingStores());
}

TEST(Aso, AbortRollsBackYoungerRenames)
{
    AsoEngine e(tinyOoO());
    const PhysReg before0 = e.mapping(0);
    const PhysReg before1 = e.mapping(1);
    e.dispatchStore(0x100);
    e.writeReg(0);
    e.writeReg(1);
    e.writeReg(0); // rename 0 twice
    EXPECT_NE(e.mapping(0), before0);
    e.abortOldestStore();
    EXPECT_EQ(e.mapping(0), before0);
    EXPECT_EQ(e.mapping(1), before1);
    EXPECT_EQ(e.stats().renamesRolledBack.value(), 3u);
}

TEST(Aso, AbortDropsYoungerStores)
{
    AsoEngine e(tinyOoO());
    e.dispatchStore(0x100);
    e.writeReg(0);
    e.dispatchStore(0x200);
    e.writeReg(1);
    EXPECT_EQ(e.sbOccupancy(), 2u);
    e.abortOldestStore();
    EXPECT_EQ(e.sbOccupancy(), 0u);
}

TEST(Aso, RenamesBeforeStoreSurviveAbort)
{
    AsoEngine e(tinyOoO());
    e.writeReg(2); // retired before any store: immediately final
    const PhysReg committed = e.mapping(2);
    e.dispatchStore(0x100);
    e.writeReg(2);
    e.abortOldestStore();
    EXPECT_EQ(e.mapping(2), committed);
}

TEST(Aso, InterleavedStoresFreeInOrder)
{
    AsoEngine e(tinyOoO());
    const auto free0 = e.freeRegs();
    e.dispatchStore(0x100);
    e.writeReg(0);
    e.dispatchStore(0x200);
    e.writeReg(1);
    e.completeOldestStore(); // frees rename of reg0's old mapping
    EXPECT_EQ(e.freeRegs(), free0 - 1);
    e.completeOldestStore();
    EXPECT_EQ(e.freeRegs(), free0);
}

TEST(Aso, SbFullStalls)
{
    AsoEngine e(tinyOoO());
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(e.dispatchStore(i), AsoDispatch::Ok);
    EXPECT_EQ(e.dispatchStore(99), AsoDispatch::SbFull);
    EXPECT_EQ(e.stats().sbFullStalls.value(), 1u);
}

TEST(Aso, PrfExhaustionStalls)
{
    OoOConfig c = tinyOoO();
    c.physRegs = 5;
    c.asoExtraRegs = 0; // 1 spare beyond the 4 arch regs
    AsoEngine e(c);
    e.dispatchStore(0x100);
    EXPECT_EQ(e.writeReg(0), AsoDispatch::Ok);
    EXPECT_EQ(e.writeReg(1), AsoDispatch::NoPhysRegs);
    // Draining the store releases pressure.
    e.completeOldestStore();
    EXPECT_EQ(e.writeReg(1), AsoDispatch::Ok);
}

/**
 * Property: against a reference interpreter that tracks architectural
 * values symbolically, random sequences of renames, stores, completes
 * and aborts always leave the map consistent and never leak physical
 * registers.
 */
class AsoRandomProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(AsoRandomProperty, MatchesReferenceInterpreter)
{
    astriflash::sim::Rng rng(GetParam());
    OoOConfig c;
    c.archRegs = 8;
    c.physRegs = 24;
    c.asoExtraRegs = 24;
    c.sbEntries = 6;
    AsoEngine e(c);

    // Reference: arch reg -> version number; snapshot stack per store.
    std::vector<std::uint64_t> ref(8, 0);
    std::uint64_t next_version = 1;
    // Engine phys reg -> version, to compare mappings.
    std::map<PhysReg, std::uint64_t> phys_version;
    for (std::uint32_t r = 0; r < 8; ++r)
        phys_version[e.mapping(r)] = 0;
    std::vector<std::vector<std::uint64_t>> store_snaps;

    const std::uint32_t total_regs = c.physRegs + c.asoExtraRegs;
    for (int step = 0; step < 5000; ++step) {
        const int op = static_cast<int>(rng.uniformInt(10));
        if (op < 5) { // rename
            const auto r =
                static_cast<std::uint32_t>(rng.uniformInt(8));
            if (e.writeReg(r) == AsoDispatch::Ok) {
                ref[r] = next_version;
                phys_version[e.mapping(r)] = next_version;
                ++next_version;
            }
        } else if (op < 7) { // store dispatch
            if (e.dispatchStore(step) == AsoDispatch::Ok)
                store_snaps.push_back(ref);
        } else if (op < 9) { // complete
            if (e.hasPendingStores()) {
                e.completeOldestStore();
                store_snaps.erase(store_snaps.begin());
            }
        } else { // abort
            if (e.hasPendingStores()) {
                e.abortOldestStore();
                ref = store_snaps.front();
                store_snaps.clear();
            }
        }
        // Invariants: mapping versions match the reference; free regs
        // never exceed the pool.
        for (std::uint32_t r = 0; r < 8; ++r) {
            ASSERT_EQ(phys_version[e.mapping(r)], ref[r])
                << "arch reg " << r << " at step " << step;
        }
        ASSERT_LE(e.freeRegs(), total_regs - 8);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AsoRandomProperty,
                         ::testing::Values(1, 7, 42, 1337, 31337));

// ---------------------------------------------------------------
// ROB
// ---------------------------------------------------------------

TEST(Rob, DispatchRetireFlush)
{
    Rob rob(4);
    const auto s1 = rob.dispatch(0x1000, false);
    const auto s2 = rob.dispatch(0x1004, true);
    const auto s3 = rob.dispatch(0x1008, false);
    EXPECT_EQ(rob.occupancy(), 3u);
    rob.retireUpTo(s1);
    EXPECT_EQ(rob.occupancy(), 2u);
    EXPECT_EQ(rob.head().seq, s2);
    const auto squashed = rob.flushFrom(s2);
    EXPECT_EQ(squashed, 2u);
    EXPECT_TRUE(rob.empty());
    (void)s3;
}

TEST(Rob, FullStalls)
{
    Rob rob(2);
    EXPECT_NE(rob.dispatch(0, false), 0u);
    EXPECT_NE(rob.dispatch(4, false), 0u);
    EXPECT_EQ(rob.dispatch(8, false), 0u);
    EXPECT_EQ(rob.stats().fullStalls.value(), 1u);
}

// ---------------------------------------------------------------
// Handler / resume registers
// ---------------------------------------------------------------

TEST(HandlerRegs, HandlerInstallRequiresPrivilege)
{
    HandlerRegs regs;
    EXPECT_FALSE(regs.setHandler(0x1000, false));
    EXPECT_FALSE(regs.handlerInstalled());
    EXPECT_TRUE(regs.setHandler(0x1000, true));
    EXPECT_TRUE(regs.handlerInstalled());
    EXPECT_EQ(regs.handler(), 0x1000u);
}

TEST(HandlerRegs, MissRecordingAndForwardProgress)
{
    HandlerRegs regs;
    regs.recordMiss(0x4242);
    EXPECT_EQ(regs.resumePc(), 0x4242u);
    EXPECT_FALSE(regs.forwardProgress());
    regs.armForwardProgress(0x4242);
    EXPECT_TRUE(regs.forwardProgress());
    regs.clearForwardProgress();
    EXPECT_FALSE(regs.forwardProgress());
}

TEST(HandlerRegs, SaveLoadRoundTrip)
{
    HandlerRegs regs;
    regs.setHandler(0x1000, true);
    regs.armForwardProgress(0x2000);
    const auto saved = regs.save();
    HandlerRegs other;
    other.load(saved);
    EXPECT_EQ(other.handler(), 0x1000u);
    EXPECT_EQ(other.resumePc(), 0x2000u);
    EXPECT_TRUE(other.forwardProgress());
}

TEST(OoOConfig, FlushCostScalesWithRob)
{
    OoOConfig small;
    small.robEntries = 64;
    OoOConfig large;
    large.robEntries = 256;
    EXPECT_LT(small.robFlushCost(), large.robFlushCost());
    EXPECT_GT(small.robFlushCost(), 0u);
}
