/**
 * @file
 * SweepRunner tests: submission-order results, exception propagation,
 * inline execution at jobs=1, and the determinism contract — a batch
 * of isolated System runs must produce byte-identical stats JSON no
 * matter how many host threads execute it.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sim/option_parser.hh"
#include "sim/sweep_runner.hh"

#include "core/fabric_options.hh"
#include "core/system.hh"

using namespace astriflash;
using namespace astriflash::core;

TEST(SweepRunner, ResultsComeBackInSubmissionOrder)
{
    // Skew per-task work so completion order differs from submission
    // order whenever more than one worker runs.
    std::vector<std::function<int()>> tasks;
    for (int i = 0; i < 32; ++i) {
        tasks.emplace_back([i] {
            volatile long spin = (31 - i) * 20000L;
            while (spin > 0)
                spin = spin - 1;
            return i;
        });
    }
    const sim::SweepRunner runner(
        4, sim::SweepRunner::HostClamp::Unbounded);
    const std::vector<int> out = runner.run(std::move(tasks));
    ASSERT_EQ(out.size(), 32u);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
}

TEST(SweepRunner, JobsZeroMeansHardwareConcurrency)
{
    const sim::SweepRunner runner(0);
    EXPECT_EQ(runner.jobs(), sim::SweepRunner::hardwareJobs());
    EXPECT_GE(runner.jobs(), 1u);
}

TEST(SweepRunner, OversubscribedJobsClampToHardwareByDefault)
{
    const unsigned hw = sim::SweepRunner::hardwareJobs();
    const sim::SweepRunner clamped(hw + 64);
    EXPECT_EQ(clamped.jobs(), hw);
    // A request within the host's budget is taken verbatim.
    const sim::SweepRunner inBudget(1);
    EXPECT_EQ(inBudget.jobs(), 1u);
}

TEST(SweepRunner, UnboundedClampTakesJobsVerbatim)
{
    const unsigned hw = sim::SweepRunner::hardwareJobs();
    const sim::SweepRunner runner(
        hw + 7, sim::SweepRunner::HostClamp::Unbounded);
    EXPECT_EQ(runner.jobs(), hw + 7);
}

TEST(SweepRunner, SingleJobRunsInline)
{
    const std::thread::id caller = std::this_thread::get_id();
    std::vector<std::function<std::thread::id()>> tasks;
    for (int i = 0; i < 4; ++i)
        tasks.emplace_back([] { return std::this_thread::get_id(); });
    const sim::SweepRunner runner(1);
    for (const std::thread::id tid : runner.run(std::move(tasks)))
        EXPECT_EQ(tid, caller);
}

TEST(SweepRunner, FirstSubmittedExceptionWins)
{
    std::vector<std::function<int()>> tasks;
    for (int i = 0; i < 16; ++i) {
        tasks.emplace_back([i]() -> int {
            if (i == 3 || i == 11)
                throw std::runtime_error("task " + std::to_string(i));
            return i;
        });
    }
    const sim::SweepRunner runner(
        4, sim::SweepRunner::HostClamp::Unbounded);
    try {
        runner.run(std::move(tasks));
        FAIL() << "expected the sweep to rethrow";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "task 3");
    }
}

TEST(SweepRunner, RunIndexedVisitsEveryIndexOnce)
{
    std::vector<std::atomic<int>> hits(64);
    const sim::SweepRunner runner(
        4, sim::SweepRunner::HostClamp::Unbounded);
    runner.runIndexed(hits.size(), [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (const std::atomic<int> &h : hits)
        EXPECT_EQ(h.load(), 1);
}

namespace {

/** Small mixed batch of isolated systems, stats dumped per cell. */
std::vector<std::string>
statsBatch(unsigned host_jobs)
{
    const SystemKind kinds[] = {SystemKind::DramOnly,
                                SystemKind::AstriFlash,
                                SystemKind::FlashSync};
    std::vector<std::function<std::string()>> tasks;
    for (SystemKind kind : kinds) {
        for (std::uint32_t cores = 1; cores <= 2; ++cores) {
            SystemConfig cfg;
            cfg.kind = kind;
            cfg.cores = cores;
            cfg.workloadKind = workload::Kind::Tatp;
            cfg.workload.datasetBytes = 1ull << 26;
            cfg.warmupJobs = 20;
            cfg.measureJobs = 200;
            tasks.emplace_back([cfg] {
                System sys(cfg);
                sys.run();
                return sys.statsRegistry().dumpJson();
            });
        }
    }
    // Unbounded: the point is exercising real worker threads even on
    // a single-core CI host.
    return sim::SweepRunner(host_jobs,
                            sim::SweepRunner::HostClamp::Unbounded)
        .run(std::move(tasks));
}

} // namespace

/**
 * The determinism contract of DESIGN.md §9: a sweep's stats output is a
 * pure function of each cell's config — byte-identical whether the
 * batch runs on one host thread or eight.
 */
/**
 * Smoke test for the shared CLI binding the figure benches (fig9,
 * fig10, table2, ablation) use: --host-jobs must parse and land in
 * SystemConfig::hostJobs, so every bench can drive the partitioned
 * engine without its own flag plumbing.
 */
TEST(SweepRunner, FabricOptionsPropagateHostJobs)
{
    FabricOptions fabric;
    sim::OptionParser opts("bench", "host-jobs smoke");
    fabric.addTo(opts);

    const char *argv[] = {"bench", "--host-jobs=4", "--bc-shards=2"};
    ASSERT_EQ(opts.parse(3, argv), sim::OptionParser::Status::Ok);

    SystemConfig cfg;
    fabric.apply(cfg);
    EXPECT_EQ(cfg.hostJobs, 4u);
    EXPECT_EQ(cfg.dramCache.bc.shards, 2u);
}

TEST(SweepRunner, FabricOptionsClampHostJobsZeroToLegacyLoop)
{
    FabricOptions fabric;
    sim::OptionParser opts("bench", "host-jobs smoke");
    fabric.addTo(opts);

    const char *argv[] = {"bench", "--host-jobs=0"};
    ASSERT_EQ(opts.parse(2, argv), sim::OptionParser::Status::Ok);

    SystemConfig cfg;
    fabric.apply(cfg);
    EXPECT_EQ(cfg.hostJobs, 1u); // 0 means "no partitioning".

    // Absent flag: the config default survives apply().
    FabricOptions untouched;
    SystemConfig dflt;
    untouched.apply(dflt);
    EXPECT_EQ(dflt.hostJobs, SystemConfig{}.hostJobs);
}

TEST(SweepRunner, StatsJsonIsByteIdenticalAcrossJobCounts)
{
    const std::vector<std::string> serial = statsBatch(1);
    const std::vector<std::string> parallel = statsBatch(8);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i]) << "cell " << i;
    // Sanity: the dumps are real stats trees, not empty strings.
    for (const std::string &s : serial)
        EXPECT_GT(s.size(), 100u);
}
