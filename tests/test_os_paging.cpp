/**
 * @file
 * Tests for the OS demand-paging baseline model.
 */

#include <gtest/gtest.h>

#include "flash/flash_device.hh"
#include "mem/address_map.hh"
#include "os/os_paging.hh"

using namespace astriflash;
using namespace astriflash::os;
using namespace astriflash::sim;
using astriflash::mem::kPageSize;

namespace {

struct OsRig {
    mem::AddressMap amap{64 << 20, 128 << 20};
    flash::FlashConfig fcfg = flash::FlashConfig::forCapacity(
        256 << 20);
    flash::FlashDevice flash{"flash", fcfg, (128 << 20) / kPageSize};
    OsCosts costs;
    OsPagingModel os{"os", 1 << 20, costs, 4, flash, amap};

    mem::Addr pa(std::uint64_t page) const
    {
        return amap.flashRange().base + page * kPageSize;
    }
};

} // namespace

TEST(TlbShootdownBus, SerializesBroadcasts)
{
    OsCosts costs;
    TlbShootdownBus bus(costs, 16);
    const Ticks first = bus.broadcast(0, 0);
    const Ticks expect_duration =
        costs.shootdownBase + costs.shootdownPerCore * 16;
    EXPECT_EQ(first, expect_duration);
    // A concurrent broadcast from another core queues behind.
    const Ticks second = bus.broadcast(0, 1);
    EXPECT_EQ(second, 2 * expect_duration);
    EXPECT_EQ(bus.stats().shootdowns.value(), 2u);
}

TEST(TlbShootdownBus, StealsTimeFromRemoteCores)
{
    OsCosts costs;
    TlbShootdownBus bus(costs, 4);
    bus.broadcast(0, 2);
    EXPECT_EQ(bus.takeStolen(0), costs.remoteInterrupt);
    EXPECT_EQ(bus.takeStolen(2), 0u); // initiator pays differently
    // Draining resets.
    EXPECT_EQ(bus.takeStolen(0), 0u);
}

TEST(TlbShootdownBus, LatencyGrowsWithCoreCount)
{
    OsCosts costs;
    TlbShootdownBus small(costs, 4);
    TlbShootdownBus big(costs, 64);
    EXPECT_LT(small.broadcast(0, 0), big.broadcast(0, 0));
}

TEST(OsPaging, FaultCostsComposeSoftwareAndFlash)
{
    OsRig rig;
    const auto fr = rig.os.pageFault(rig.pa(1), false, 0, 0);
    // Switch-out = fault path + context switch.
    EXPECT_EQ(fr.switchedOut,
              rig.costs.pageFault + rig.costs.contextSwitch);
    // Runnable only after the ~50 us flash read + install.
    EXPECT_GT(fr.runnable, microseconds(45));
    EXPECT_TRUE(rig.os.pageResident(rig.pa(1)));
    EXPECT_EQ(rig.os.stats().faults.value(), 1u);
}

TEST(OsPaging, EvictionTriggersShootdown)
{
    OsRig rig;
    const std::uint64_t frames = (1 << 20) / kPageSize; // 256 pages
    Ticks t = 0;
    for (std::uint64_t p = 0; p < frames; ++p) {
        rig.os.prewarmPage(rig.pa(p));
    }
    const auto fr = rig.os.pageFault(rig.pa(frames + 1), false, t, 0);
    EXPECT_EQ(rig.os.stats().evictions.value(), 1u);
    EXPECT_EQ(rig.os.bus().stats().shootdowns.value(), 1u);
    EXPECT_GT(fr.runnable, microseconds(50));
}

TEST(OsPaging, DirtyEvictionWritesBackToFlash)
{
    OsRig rig;
    const std::uint64_t frames = (1 << 20) / kPageSize;
    for (std::uint64_t p = 0; p < frames; ++p)
        rig.os.prewarmPage(rig.pa(p));
    rig.os.touch(rig.pa(0), true); // dirty it
    // Fault in new pages until page 0 is the LRU victim.
    Ticks t = 0;
    std::uint64_t before = rig.flash.stats().writes.value();
    for (std::uint64_t p = frames; p < 2 * frames; ++p) {
        rig.os.pageFault(rig.pa(p), false, t, 0);
        t += microseconds(100);
        if (!rig.os.pageResident(rig.pa(0)))
            break;
    }
    EXPECT_FALSE(rig.os.pageResident(rig.pa(0)));
    EXPECT_GT(rig.flash.stats().writes.value(), before);
    EXPECT_GE(rig.os.stats().dirtyWritebacks.value(), 1u);
}

TEST(OsPaging, ResetStatsZeroes)
{
    OsRig rig;
    rig.os.pageFault(rig.pa(1), false, 0, 0);
    rig.os.resetStats();
    EXPECT_EQ(rig.os.stats().faults.value(), 0u);
}
