/**
 * @file
 * Tests for the time base, clock domains, address arithmetic, and
 * logging helpers.
 */

#include <gtest/gtest.h>

#include "mem/address.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/sim_object.hh"
#include "sim/ticks.hh"

using namespace astriflash::sim;
using namespace astriflash::mem;

TEST(Ticks, UnitConversions)
{
    EXPECT_EQ(nanoseconds(1), 1000u);
    EXPECT_EQ(microseconds(1), 1000u * 1000);
    EXPECT_EQ(milliseconds(1), 1000u * 1000 * 1000);
    EXPECT_DOUBLE_EQ(toMicroseconds(microseconds(50)), 50.0);
    EXPECT_DOUBLE_EQ(toNanoseconds(nanoseconds(7)), 7.0);
    EXPECT_DOUBLE_EQ(toSeconds(kSecond), 1.0);
}

TEST(ClockDomain, PeriodAndCycles)
{
    const ClockDomain clk(2'500'000'000ull); // 2.5 GHz
    EXPECT_EQ(clk.period(), 400u);           // 0.4 ns in ps
    EXPECT_EQ(clk.cycles(10), 4000u);
    EXPECT_EQ(clk.ticksToCycles(4400), Cycles(11));
}

TEST(ClockDomain, NextEdgeRoundsUp)
{
    const ClockDomain clk(1'000'000'000ull); // 1 GHz, 1000 ps period
    EXPECT_EQ(clk.nextEdge(0), 0u);
    EXPECT_EQ(clk.nextEdge(1), 1000u);
    EXPECT_EQ(clk.nextEdge(1000), 1000u);
    EXPECT_EQ(clk.nextEdge(1001), 2000u);
}

TEST(Address, PowerOfTwoHelpers)
{
    EXPECT_TRUE(isPowerOfTwo(64));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(96));
    EXPECT_EQ(log2i(4096), 12u);
    EXPECT_EQ(alignDown(4097, 4096), 4096u);
    EXPECT_EQ(alignUp(4097, 4096), 8192u);
    EXPECT_EQ(alignUp(4096, 4096), 4096u);
}

TEST(Address, ConstantEvaluationAcceptsPowersOfTwo)
{
    // SIM_CHECK_CE admits valid inputs in constant expressions; a
    // non-power-of-two there is a compile error (the failing branch
    // calls the non-constexpr detail::constexprCheckFailed), so e.g.
    // `constexpr auto bad = log2i(12);` does not build.
    static_assert(log2i(4096) == 12);
    static_assert(alignDown(4097, 4096) == 4096);
    static_assert(alignUp(1, 64) == 64);
}

TEST(AddressDeath, Log2iRejectsNonPowerOfTwo)
{
    EXPECT_DEATH(
        {
            setChecksEnabled(true);
            // aflint-allow-next-line(AF012): the rejection under test.
            volatile unsigned sink = log2i(12);
            (void)sink;
        },
        "SIM_CHECK failed: isPowerOfTwo");
}

TEST(AddressDeath, AlignDownRejectsNonPowerOfTwoAlignment)
{
    EXPECT_DEATH(
        {
            setChecksEnabled(true);
            // aflint-allow-next-line(AF012): the rejection under test.
            volatile Addr sink = alignDown(100, 12);
            (void)sink;
        },
        "SIM_CHECK failed: isPowerOfTwo");
}

TEST(AddressDeath, AlignUpRejectsNonPowerOfTwoAlignment)
{
    EXPECT_DEATH(
        {
            setChecksEnabled(true);
            // aflint-allow-next-line(AF012): the rejection under test.
            volatile Addr sink = alignUp(100, 96);
            (void)sink;
        },
        "SIM_CHECK failed: isPowerOfTwo");
}

TEST(Address, PageAndBlockMath)
{
    EXPECT_EQ(pageNumber(0x3fff), PageNum(3));
    EXPECT_EQ(pageBase(0x3fff), 0x3000u);
    EXPECT_EQ(blockNumber(0x7f), BlockNum(1));
    EXPECT_EQ(blockBase(0x7f), 0x40u);
    EXPECT_EQ(pageNumber(0x5000, 8192), PageNum(2));
}

TEST(Logging, FormatProducesPrintfOutput)
{
    const std::string s =
        astriflash::sim::detail::format("x=%d s=%s", 42, "hi");
    EXPECT_EQ(s, "x=42 s=hi");
}

TEST(Logging, QuietSuppressesNothingFatal)
{
    setQuiet(true);
    EXPECT_TRUE(quiet());
    ASTRI_WARN("suppressed warning (should not print)");
    ASTRI_INFORM("suppressed info (should not print)");
    setQuiet(false);
    EXPECT_FALSE(quiet());
}

TEST(LoggingDeath, AssertMacros)
{
    EXPECT_DEATH(ASTRI_PANIC("boom %d", 7), "boom 7");
    const int v = 3;
    EXPECT_DEATH(ASTRI_ASSERT(v == 4), "assertion failed");
    EXPECT_DEATH(ASTRI_ASSERT_MSG(v == 4, "v was %d", v), "v was 3");
}

TEST(SimObject, NameAndClock)
{
    EventQueue eq;
    class Obj : public SimObject
    {
      public:
        using SimObject::SimObject;
        using SimObject::scheduleIn;
    };
    Obj obj(eq, "system.thing");
    EXPECT_EQ(obj.name(), "system.thing");
    EXPECT_EQ(obj.curTick(), 0u);
    int fired = 0;
    obj.scheduleIn(5, [&fired] { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(obj.curTick(), 5u);
}
