#include "mc_queue.hh"

#include <algorithm>
#include <queue>

#include "sim/logging.hh"

namespace astriflash::queueing {

McResult
simulateQueue(double lambda, double mu, std::uint32_t k,
              std::uint64_t jobs, ServiceDist dist, std::uint64_t seed)
{
    if (lambda <= 0 || mu <= 0 || k == 0)
        ASTRI_FATAL("simulateQueue: bad parameters");
    sim::Rng rng(seed);

    // Min-heap of server-free times.
    std::priority_queue<double, std::vector<double>,
                        std::greater<double>>
        servers;
    for (std::uint32_t i = 0; i < k; ++i)
        servers.push(0.0);

    std::vector<double> responses;
    responses.reserve(jobs);

    double t = 0.0;
    for (std::uint64_t j = 0; j < jobs; ++j) {
        t += rng.exponential(1.0 / lambda);
        const double service = dist == ServiceDist::Exponential
            ? rng.exponential(1.0 / mu) : 1.0 / mu;
        const double free_at = servers.top();
        servers.pop();
        const double start = std::max(t, free_at);
        const double done = start + service;
        servers.push(done);
        responses.push_back(done - t);
    }

    std::sort(responses.begin(), responses.end());
    McResult res;
    res.completed = jobs;
    double sum = 0;
    for (double r : responses)
        sum += r;
    res.meanResponse = sum / static_cast<double>(jobs);
    res.p50Response = responses[static_cast<std::size_t>(0.50 * jobs)];
    res.p99Response = responses[std::min<std::size_t>(
        static_cast<std::size_t>(0.99 * jobs), jobs - 1)];
    return res;
}

} // namespace astriflash::queueing
