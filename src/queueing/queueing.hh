/**
 * @file
 * Analytical queueing models behind Figure 3 (§III-A).
 *
 * The paper frames the four systems as queueing models: DRAM-only and
 * Flash-Sync are M/M/1 servers (requests always run to completion),
 * while AstriFlash and OS-Swap act as logical M/M/k servers — k
 * contexts overlap the flash accesses, so the server's occupancy per
 * request is only the execution + overhead portion, while a request's
 * own latency still includes the flash wait. These helpers provide
 * response-time percentiles for both models plus the system-level
 * curve builder used by bench/fig3_queueing.
 */

#ifndef ASTRIFLASH_QUEUEING_QUEUEING_HH
#define ASTRIFLASH_QUEUEING_QUEUEING_HH

#include <cstdint>

namespace astriflash::queueing {

/** M/M/1 queue with arrival rate lambda and service rate mu. */
class MM1
{
  public:
    MM1(double lambda, double mu);

    double utilization() const { return rho; }
    bool stable() const { return rho < 1.0; }

    /** Mean response (sojourn) time. */
    double meanResponse() const;

    /** Response-time quantile (q in (0,1)). */
    double responsePercentile(double q) const;

  private:
    double lambda;
    double mu;
    double rho;
};

/** M/M/k queue (k identical servers, shared queue). */
class MMk
{
  public:
    MMk(double lambda, double mu, std::uint32_t k);

    double utilization() const { return rho; }
    bool stable() const { return rho < 1.0; }

    /** Erlang-C probability that an arrival must wait. */
    double probWait() const { return erlangC; }

    /** Mean response time (wait + service). */
    double meanResponse() const;

    /** Survival function of the response time, P(T > t). */
    double responseSurvival(double t) const;

    /** Response-time quantile via bisection on the survival. */
    double responsePercentile(double q) const;

  private:
    double lambda;
    double mu;
    std::uint32_t k;
    double rho;
    double erlangC;
};

/**
 * Figure-3 system abstraction: a request does @p workUs of execution,
 * then (probabilistically every request here, per the paper's "every
 * 10 µs of execution triggers a flash access") waits @p flashUs on
 * flash, costing @p overheadUs of software/hardware overhead. Systems
 * with thread switching overlap the flash wait (M/M/k with
 * k = ceil(total / occupancy)); synchronous systems occupy the server
 * for the whole total (M/M/1).
 */
struct SystemModel {
    double workUs = 10.0;
    double flashUs = 50.0;
    double overheadUs = 0.0;
    bool overlapsFlash = false;

    /** Server occupancy per request (µs). */
    double
    occupancyUs() const
    {
        return overlapsFlash ? workUs + overheadUs
                             : workUs + overheadUs + flashUs;
    }

    /** End-to-end service time of one request in isolation (µs). */
    double
    totalUs() const
    {
        return workUs + overheadUs + flashUs;
    }

    /** Max sustainable throughput (requests/µs). */
    double maxThroughput() const { return 1.0 / occupancyUs(); }

    /**
     * p99 response time (µs) at arrival rate @p lambda requests/µs.
     * Returns a negative value when the system is unstable.
     */
    double p99ResponseUs(double lambda) const;
};

} // namespace astriflash::queueing

#endif // ASTRIFLASH_QUEUEING_QUEUEING_HH
