/**
 * @file
 * Monte Carlo M/M/k simulator.
 *
 * Validates the closed-form percentile math in queueing.hh (and, with
 * deterministic service, sanity-checks the full-system simulator's
 * queueing behaviour). Runs a simple arrival/departure event loop —
 * no dependence on the main discrete-event kernel, so tests can
 * cross-check independently implemented machinery.
 */

#ifndef ASTRIFLASH_QUEUEING_MC_QUEUE_HH
#define ASTRIFLASH_QUEUEING_MC_QUEUE_HH

#include <cstdint>
#include <vector>

#include "sim/rng.hh"

namespace astriflash::queueing {

/** Result of a Monte Carlo run. */
struct McResult {
    double meanResponse = 0;
    double p50Response = 0;
    double p99Response = 0;
    std::uint64_t completed = 0;
};

/** Service-time shape. */
enum class ServiceDist {
    Exponential,
    Deterministic,
};

/** Simulate an M/G/k FCFS queue for @p jobs completions. */
McResult simulateQueue(double lambda, double mu, std::uint32_t k,
                       std::uint64_t jobs, ServiceDist dist,
                       std::uint64_t seed = 1);

} // namespace astriflash::queueing

#endif // ASTRIFLASH_QUEUEING_MC_QUEUE_HH
