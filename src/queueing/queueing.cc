#include "queueing.hh"

#include <cmath>

#include "sim/logging.hh"

namespace astriflash::queueing {

MM1::MM1(double lambda, double mu) : lambda(lambda), mu(mu)
{
    if (lambda < 0 || mu <= 0)
        ASTRI_FATAL("MM1: need lambda >= 0 and mu > 0");
    rho = lambda / mu;
}

double
MM1::meanResponse() const
{
    ASTRI_ASSERT_MSG(stable(), "MM1 mean undefined at rho >= 1");
    return 1.0 / (mu - lambda);
}

double
MM1::responsePercentile(double q) const
{
    ASTRI_ASSERT_MSG(stable(), "MM1 percentile undefined at rho >= 1");
    // Sojourn time is exponential with rate mu - lambda.
    return -std::log(1.0 - q) / (mu - lambda);
}

namespace {

/** Erlang-C via the numerically stable iterative form. */
double
erlangCOf(double a, std::uint32_t k)
{
    // inv_b accumulates 1/B(k, a) using the Erlang-B recurrence.
    double inv_b = 1.0;
    for (std::uint32_t i = 1; i <= k; ++i)
        inv_b = 1.0 + inv_b * static_cast<double>(i) / a;
    const double b = 1.0 / inv_b;
    const double rho = a / static_cast<double>(k);
    return b / (1.0 - rho + rho * b);
}

} // namespace

MMk::MMk(double lambda, double mu, std::uint32_t k)
    : lambda(lambda), mu(mu), k(k)
{
    if (lambda < 0 || mu <= 0 || k == 0)
        ASTRI_FATAL("MMk: need lambda >= 0, mu > 0, k >= 1");
    rho = lambda / (mu * static_cast<double>(k));
    erlangC = rho < 1.0 ? erlangCOf(lambda / mu, k) : 1.0;
}

double
MMk::meanResponse() const
{
    ASTRI_ASSERT_MSG(stable(), "MMk mean undefined at rho >= 1");
    const double wait =
        erlangC / (static_cast<double>(k) * mu - lambda);
    return wait + 1.0 / mu;
}

double
MMk::responseSurvival(double t) const
{
    ASTRI_ASSERT_MSG(stable(), "MMk survival undefined at rho >= 1");
    if (t <= 0)
        return 1.0;
    // T = W + S with P(W=0) = 1-C and W|wait ~ Exp(a), a = k*mu -
    // lambda, independent of S ~ Exp(mu).
    const double a = static_cast<double>(k) * mu - lambda;
    const double es = std::exp(-mu * t);
    if (std::abs(a - mu) < 1e-12) {
        // Degenerate case: W+S is Erlang(2, mu).
        return (1.0 - erlangC) * es +
               erlangC * (1.0 + mu * t) * es;
    }
    const double conv =
        (a * es - mu * std::exp(-a * t)) / (a - mu);
    return (1.0 - erlangC) * es + erlangC * conv;
}

double
MMk::responsePercentile(double q) const
{
    ASTRI_ASSERT_MSG(stable(), "MMk percentile undefined at rho >= 1");
    const double target = 1.0 - q;
    // Bracket: survival decays at least as fast as the slower of the
    // two exponentials.
    double lo = 0.0;
    double hi = 1.0 / mu;
    while (responseSurvival(hi) > target)
        hi *= 2.0;
    for (int i = 0; i < 200; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (responseSurvival(mid) > target)
            lo = mid;
        else
            hi = mid;
        if (hi - lo < 1e-9 * hi)
            break;
    }
    return 0.5 * (lo + hi);
}

double
SystemModel::p99ResponseUs(double lambda) const
{
    const double occupancy = occupancyUs();
    if (lambda * occupancy >= 1.0)
        return -1.0; // unstable

    if (!overlapsFlash) {
        const MM1 q(lambda, 1.0 / occupancy);
        return q.responsePercentile(0.99);
    }
    // Logical multi-server: k contexts, each "server" holds a request
    // for its full total (work + overhead + flash) but k of them run
    // concurrently on one physical core because the flash portion
    // overlaps.
    const double total = totalUs();
    const auto k = static_cast<std::uint32_t>(
        std::ceil(total / occupancy));
    const MMk q(lambda, 1.0 / total, k);
    if (!q.stable())
        return -1.0;
    return q.responsePercentile(0.99);
}

} // namespace astriflash::queueing
