/**
 * @file
 * Host-parallel execution of independent simulations.
 *
 * Every paper figure sweeps many *independent* configurations through
 * the single-threaded event kernel, so the natural parallelism is one
 * whole simulation per host thread (Sniper-style config-level
 * parallelism, not intra-simulation parallelism). SweepRunner is a
 * small thread pool that runs a batch of tasks and returns their
 * results in deterministic submission order regardless of which worker
 * finished first or in what interleaving.
 *
 * Isolation contract: a task must build every piece of mutable state
 * it touches (System, EventQueue, Rng, stats, tracer) inside its own
 * body. The simulator's process-global knobs are safe to *read*
 * concurrently (the checks gate is atomic, the trace sink is
 * thread-local), so tasks never observe each other. Under this
 * contract a sweep's results — including every byte of its stats JSON
 * — are identical at any --jobs value.
 */

#ifndef ASTRIFLASH_SIM_SWEEP_RUNNER_HH
#define ASTRIFLASH_SIM_SWEEP_RUNNER_HH

#include <atomic>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

namespace astriflash::sim {

/** Runs batches of independent tasks across host threads. */
class SweepRunner
{
  public:
    /**
     * Whether a requested job count is clamped to the host's hardware
     * concurrency. Oversubscribing whole-simulation tasks only adds
     * context-switch overhead (the 0.81x "speedup" once recorded in
     * BENCH_sweep.json on a 1-CPU runner), so clamping is the default;
     * Unbounded exists for tests that deliberately exercise the
     * thread pool on hosts with fewer cores than workers.
     */
    enum class HostClamp { ToHardware, Unbounded };

    /**
     * @param jobs   Worker threads for each run() batch; 0 picks the
     *               host's hardware concurrency, 1 runs inline on the
     *               calling thread (no threads spawned).
     * @param clamp  ToHardware (default) caps @p jobs at
     *               hardwareJobs(); Unbounded takes it verbatim.
     */
    explicit SweepRunner(unsigned jobs = 1,
                         HostClamp clamp = HostClamp::ToHardware);

    /** Worker threads a batch will use. */
    unsigned jobs() const { return jobCount; }

    /** The host's hardware concurrency (>= 1). */
    static unsigned hardwareJobs();

    /**
     * Run every task and return their results indexed exactly like
     * @p tasks. Blocks until the whole batch finished. If any task
     * threw, the first exception in submission order is rethrown
     * (after all tasks completed).
     */
    template <typename R>
    std::vector<R>
    run(std::vector<std::function<R()>> tasks) const
    {
        std::vector<R> results(tasks.size());
        runIndexed(tasks.size(), [&](std::size_t i) {
            results[i] = tasks[i]();
        });
        return results;
    }

    /**
     * Run @p body for every index in [0, n) across the pool; the
     * body's own side effects (indexed writes) carry the results.
     */
    void runIndexed(std::size_t n,
                    const std::function<void(std::size_t)> &body) const;

  private:
    unsigned jobCount;
};

} // namespace astriflash::sim

#endif // ASTRIFLASH_SIM_SWEEP_RUNNER_HH
