/**
 * @file
 * Zero-overhead strong identifier and quantity types.
 *
 * The simulator's address arithmetic funnels page numbers, block
 * numbers, set/way indices, LPNs and cycle counts through what used to
 * be bare `uint64_t`, so a swapped pageNumber/pageBase argument or a
 * tick/cycle mix-up compiled clean and silently skewed results. The
 * two templates here make each unit a distinct type:
 *
 * - StrongId<Tag, Rep>: identity semantics. Explicit construction,
 *   full comparison and hashing, increment, id + offset and id - id
 *   (difference), but no cross-unit arithmetic: adding a PageNum to a
 *   BlockNum, or passing one where the other is expected, is a compile
 *   error.
 *
 * - StrongCount<Tag, Rep>: quantity semantics for counts such as
 *   Cycles. Counts of the same unit add, subtract, and scale by plain
 *   integers; mixing units still refuses to compile.
 *
 * Both are trivially copyable wrappers around Rep with every operation
 * constexpr, so optimized builds emit exactly the code the raw integer
 * would have ("zero overhead"). Escaping to the underlying integer is
 * explicit via raw(); aflint rule AF011 flags raw() calls outside the
 * allowlisted conversion headers so escapes stay few and reviewed (see
 * DESIGN.md §10 for the policy).
 */

#ifndef ASTRIFLASH_SIM_STRONG_TYPES_HH
#define ASTRIFLASH_SIM_STRONG_TYPES_HH

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>
#include <type_traits>

namespace astriflash::sim {

/**
 * An opaque identifier: names a thing, is not a quantity.
 *
 * @tparam TagT  Empty tag struct distinguishing the unit.
 * @tparam RepT  Underlying unsigned integer representation.
 */
template <typename TagT, typename RepT = std::uint64_t>
class StrongId
{
    static_assert(std::is_unsigned_v<RepT>,
                  "StrongId wraps unsigned integer representations");

  public:
    using Tag = TagT;
    using Rep = RepT;

    constexpr StrongId() = default;
    constexpr explicit StrongId(Rep value) : val(value) {}

    /** Explicit escape to the underlying integer (see AF011). */
    [[nodiscard]] constexpr Rep raw() const { return val; }

    constexpr auto operator<=>(const StrongId &) const = default;

    /** Step to the next identifier (iteration over a dense range). */
    constexpr StrongId &
    operator++()
    {
        ++val;
        return *this;
    }

    constexpr StrongId
    operator++(int)
    {
        StrongId old = *this;
        ++val;
        return old;
    }

    /** Identifier plus an element offset is an identifier. */
    friend constexpr StrongId
    operator+(StrongId id, Rep offset)
    {
        return StrongId(id.val + offset);
    }

    /** Identifier minus an element offset is an identifier. */
    friend constexpr StrongId
    operator-(StrongId id, Rep offset)
    {
        return StrongId(id.val - offset);
    }

    /** Distance between two identifiers of the same unit. */
    friend constexpr Rep
    operator-(StrongId a, StrongId b)
    {
        return a.val - b.val;
    }

    /** Diagnostics/serialization print as the raw value. */
    friend std::ostream &
    operator<<(std::ostream &os, StrongId id)
    {
        return os << id.val;
    }

  private:
    Rep val = 0;
};

/**
 * A counted quantity of one unit (e.g. Cycles): supports the closed
 * arithmetic a dimension allows — add/subtract same-unit counts, scale
 * by dimensionless integers — and nothing else.
 */
template <typename TagT, typename RepT = std::uint64_t>
class StrongCount
{
    static_assert(std::is_unsigned_v<RepT>,
                  "StrongCount wraps unsigned integer representations");

  public:
    using Tag = TagT;
    using Rep = RepT;

    constexpr StrongCount() = default;
    constexpr explicit StrongCount(Rep value) : val(value) {}

    /** Explicit escape to the underlying integer (see AF011). */
    [[nodiscard]] constexpr Rep raw() const { return val; }

    constexpr auto operator<=>(const StrongCount &) const = default;

    constexpr StrongCount &
    operator+=(StrongCount other)
    {
        val += other.val;
        return *this;
    }

    constexpr StrongCount &
    operator-=(StrongCount other)
    {
        val -= other.val;
        return *this;
    }

    friend constexpr StrongCount
    operator+(StrongCount a, StrongCount b)
    {
        return StrongCount(a.val + b.val);
    }

    friend constexpr StrongCount
    operator-(StrongCount a, StrongCount b)
    {
        return StrongCount(a.val - b.val);
    }

    /** Scaling by a dimensionless factor keeps the unit. */
    friend constexpr StrongCount
    operator*(StrongCount c, Rep factor)
    {
        return StrongCount(c.val * factor);
    }

    friend constexpr StrongCount
    operator*(Rep factor, StrongCount c)
    {
        return StrongCount(factor * c.val);
    }

    friend constexpr StrongCount
    operator/(StrongCount c, Rep divisor)
    {
        return StrongCount(c.val / divisor);
    }

    /** Ratio of two same-unit counts is dimensionless. */
    friend constexpr Rep
    operator/(StrongCount a, StrongCount b)
    {
        return a.val / b.val;
    }

    /** Diagnostics/serialization print as the raw value. */
    friend std::ostream &
    operator<<(std::ostream &os, StrongCount c)
    {
        return os << c.val;
    }

  private:
    Rep val = 0;
};

} // namespace astriflash::sim

// Hashing: strong ids key unordered containers exactly like their
// representation would, preserving bucket placement (and therefore any
// iteration-order-sensitive behaviour) across the raw->strong refactor.
template <typename Tag, typename Rep>
struct std::hash<astriflash::sim::StrongId<Tag, Rep>> {
    std::size_t
    operator()(astriflash::sim::StrongId<Tag, Rep> id) const noexcept
    {
        return std::hash<Rep>{}(id.raw());
    }
};

template <typename Tag, typename Rep>
struct std::hash<astriflash::sim::StrongCount<Tag, Rep>> {
    std::size_t
    operator()(astriflash::sim::StrongCount<Tag, Rep> c) const noexcept
    {
        return std::hash<Rep>{}(c.raw());
    }
};

#endif // ASTRIFLASH_SIM_STRONG_TYPES_HH
