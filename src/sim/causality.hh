/**
 * @file
 * Causality auditor: makes the determinism contract a checked
 * property (DESIGN.md §14).
 *
 * Every sim::BoundedChannel declares a ChannelContract — its
 * conservative lookahead (`minLatency`: no message may be consumed
 * sooner than its push tick plus the declared latency) and whether
 * its producers push with monotone timestamps. The auditor hooks the
 * channels and the event queue and certifies, on every message:
 *
 *  - FIFO delivery: messages are consumed in push order.
 *  - Stamp sanity: accept >= push, consume >= accept.
 *  - Lookahead: consume >= push + minLatency. This is the quantity a
 *    future conservative parallel engine (Chandy–Misra) would rely on
 *    to run the consumer ahead of the producer by up to minLatency.
 *  - Declared monotonicity: a channel whose producers are event
 *    handlers (never skewed core-local clocks) must see non-
 *    decreasing push ticks.
 *
 * Arming follows SIM_CHECK: the hooks early-return unless
 * checksEnabled() (Debug default, -DASTRIFLASH_CHECKS=ON Release
 * opt-in, runtime-armable). Violations name the channel and the
 * ticks involved; with fail-fast set (the default) the first one
 * panics, otherwise they are recorded for the invariant sweep.
 *
 * The auditor's counters are deliberately NOT part of the stats
 * tree: arming checks must never change the golden stats JSON.
 */

#ifndef ASTRIFLASH_SIM_CAUSALITY_HH
#define ASTRIFLASH_SIM_CAUSALITY_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "invariant.hh"
#include "ticks.hh"

namespace astriflash::sim {

/**
 * Per-channel determinism contract, declared at construction (the
 * lookahead manifest lives in core::ChannelConfig and is converted
 * to ticks by whoever builds the channels).
 */
struct ChannelContract {
    /** Conservative lookahead: consume tick >= push tick + this. */
    Ticks minLatency = 0;
    /** Producers push with non-decreasing ticks (event-driven side). */
    bool monotonePush = false;
};

/**
 * Records and enforces the causality contract across all channels of
 * one simulated system. One auditor per System; channels find it via
 * the thread-local attach scope during construction, so SweepRunner's
 * per-thread Systems never share one.
 */
class CausalityAuditor
{
  public:
    /** One contract violation, with enough context to debug it. */
    struct Violation {
        std::string channel;
        std::string detail;
        Ticks tick = 0;
    };

    /** Audit state for one registered channel. */
    struct ChannelState {
        std::string name;
        ChannelContract contract;
        std::uint64_t sends = 0;
        std::uint64_t deliveries = 0;
        std::uint64_t nextDeliverSeq = 1;
        Ticks lastPushTick = 0;
        /** Largest backwards push-tick jump seen (skew telemetry on
         *  channels that do not declare monotonePush). */
        Ticks maxObservedSkew = 0;
        /** Tightest push-to-consume latency actually observed. */
        Ticks minObservedLatency = kTickNever;
    };

    CausalityAuditor() = default;
    CausalityAuditor(const CausalityAuditor &) = delete;
    CausalityAuditor &operator=(const CausalityAuditor &) = delete;

    /**
     * Panic on the first violation (default, mirrors
     * InvariantRegistry); torture harnesses disable this to collect
     * a full report.
     */
    void setFailFast(bool on) { failFast = on; }

    /** Declare a channel. @return its audit handle. */
    std::uint32_t registerChannel(std::string name,
                                  ChannelContract contract);

    /** A message entered channel @p ch (gated on checksEnabled()). */
    void onPush(std::uint32_t ch, std::uint64_t seq, Ticks pushed_at,
                Ticks accepted_at);

    /** The front message of @p ch was consumed. */
    void onDeliver(std::uint32_t ch, std::uint64_t seq,
                   Ticks pushed_at, Ticks accepted_at,
                   Ticks consumed_at);

    /** The event queue fired an event at @p when (queue was at now). */
    void
    onEventFired(Ticks now, Ticks when)
    {
        if (!checksEnabled())
            return;
        std::lock_guard<std::mutex> lk(mu);
        ++eventsAuditedCount;
        if (when < now) {
            violation("eq",
                      detail::format(
                          "event fired at %llu behind the queue "
                          "clock %llu",
                          static_cast<unsigned long long>(when),
                          static_cast<unsigned long long>(now)),
                      when);
        }
    }

    std::size_t channelCount() const { return channels.size(); }
    const ChannelState &channel(std::uint32_t ch) const;

    std::uint64_t sendsAudited() const { return sendsAuditedCount; }
    std::uint64_t deliveriesAudited() const
    {
        return deliveriesAuditedCount;
    }
    std::uint64_t eventsAudited() const { return eventsAuditedCount; }

    std::uint64_t violationCount() const
    {
        return static_cast<std::uint64_t>(out.size());
    }
    const std::vector<Violation> &violations() const { return out; }

    /**
     * Invariant-sweep hook: re-reports every stored violation into
     * @p chk and cross-checks the per-channel audit accounting.
     */
    void checkInvariants(InvariantChecker &chk) const;

    /** Auditor channels attach to during construction (or null). */
    static CausalityAuditor *current();

    /**
     * Installs @p a as the construction-time attach point for the
     * current thread; restores the previous one on destruction.
     */
    class Scope
    {
      public:
        explicit Scope(CausalityAuditor &a);
        ~Scope();
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        CausalityAuditor *prev;
    };

  private:
    void violation(const std::string &channel, std::string detail,
                   Ticks tick);

    /**
     * Serializes the audit hooks: armed split runs call onPush from
     * the producer group's worker and onDeliver from the consumer
     * group's, concurrently. Auditor state is outside the stats tree,
     * so the lock cannot perturb goldens.
     */
    mutable std::mutex mu;
    std::vector<ChannelState> channels;
    std::vector<Violation> out;
    std::uint64_t sendsAuditedCount = 0;
    std::uint64_t deliveriesAuditedCount = 0;
    std::uint64_t eventsAuditedCount = 0;
    bool failFast = true;
};

} // namespace astriflash::sim

#endif // ASTRIFLASH_SIM_CAUSALITY_HH
