#include "stats.hh"

#include <algorithm>
#include <bit>
#include <iterator>
#include <sstream>

#include "json.hh"
#include "logging.hh"

namespace astriflash::sim {

namespace {

/** Number of buckets covering the full 64-bit value range. */
constexpr std::uint32_t kSubBucketBits = 6;
constexpr std::uint64_t kSubBuckets = 1ull << kSubBucketBits;
// One unit-resolution region + one region of kSubBuckets per octave
// above it. 64-bit values have at most 64 - kSubBucketBits octaves.
constexpr std::uint32_t kNumBuckets =
    static_cast<std::uint32_t>(kSubBuckets) +
    (64 - kSubBucketBits) * static_cast<std::uint32_t>(kSubBuckets);

/** Quantiles a histogram renders in dumps (paper-headline set). */
constexpr double kDumpQuantiles[] = {0.50, 0.99, 0.999};
constexpr const char *kDumpQuantileNames[] = {"p50", "p99", "p999"};

/** Split "a.b.c" into its leading segment and the remainder. */
std::pair<std::string, std::string>
splitPath(const std::string &path)
{
    const std::size_t dot = path.find('.');
    if (dot == std::string::npos)
        return {path, std::string()};
    return {path.substr(0, dot), path.substr(dot + 1)};
}

} // namespace

void
Histogram::growTo(std::uint32_t idx)
{
    // Amortize demand growth: jump straight to the end of the octave
    // so a warming-up latency distribution triggers at most one growth
    // per octave rather than one per new sub-bucket.
    std::uint32_t target = idx + 1;
    if (target < kNumBuckets)
        target = std::min<std::uint32_t>(
            kNumBuckets, (target + kSubBuckets - 1) &
                             ~(static_cast<std::uint32_t>(kSubBuckets) -
                               1));
    buckets.resize(target, 0);
}

void
Histogram::reserveFor(std::uint64_t max_value)
{
    const std::uint32_t idx = bucketIndex(max_value);
    if (idx >= buckets.size())
        growTo(idx);
}

std::uint32_t
Histogram::bucketIndex(std::uint64_t v)
{
    if (v < kSubBuckets)
        return static_cast<std::uint32_t>(v);
    // Octave = index of the highest set bit beyond the unit region.
    const int msb = 63 - std::countl_zero(v);
    const std::uint32_t octave =
        static_cast<std::uint32_t>(msb) - kSubBucketBits;
    // Linear sub-bucket within the octave.
    const std::uint64_t sub =
        (v >> (msb - static_cast<int>(kSubBucketBits))) - kSubBuckets;
    return static_cast<std::uint32_t>(kSubBuckets) +
           octave * static_cast<std::uint32_t>(kSubBuckets) +
           static_cast<std::uint32_t>(sub);
}

std::uint64_t
Histogram::bucketUpperBound(std::uint32_t idx)
{
    if (idx < kSubBuckets)
        return idx;
    const std::uint32_t rel = idx - static_cast<std::uint32_t>(kSubBuckets);
    const std::uint32_t octave = rel >> kSubBucketBits;
    const std::uint64_t sub = rel & (kSubBuckets - 1);
    // Values in this bucket satisfy (v >> octave) == kSubBuckets + sub,
    // so the inclusive upper edge is one below the next sub-bucket edge.
    return ((kSubBuckets + sub + 1) << octave) - 1;
}

void
Histogram::sample(std::uint64_t v)
{
    sampleN(v, 1);
}

void
Histogram::sampleN(std::uint64_t v, std::uint64_t weight)
{
    if (weight == 0)
        return;
    const std::uint32_t idx = bucketIndex(v);
    if (idx >= buckets.size())
        growTo(idx);
    buckets[idx] += weight;
    n += weight;
    sum += static_cast<double>(v) * static_cast<double>(weight);
    if (v < minV)
        minV = v;
    if (v > maxV)
        maxV = v;
}

std::uint64_t
Histogram::percentile(double q) const
{
    if (n == 0)
        return 0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // Rank of the target sample (1-based, ceil), standard nearest-rank.
    const double exact = q * static_cast<double>(n);
    std::uint64_t rank = static_cast<std::uint64_t>(exact);
    if (static_cast<double>(rank) < exact || rank == 0)
        ++rank;
    std::uint64_t seen = 0;
    for (std::uint32_t i = 0; i < buckets.size(); ++i) {
        seen += buckets[i];
        if (seen >= rank) {
            const std::uint64_t ub = bucketUpperBound(i);
            return ub > maxV ? maxV : ub;
        }
    }
    return maxV;
}

void
Histogram::reset()
{
    std::fill(buckets.begin(), buckets.end(), 0);
    n = 0;
    sum = 0.0;
    minV = std::numeric_limits<std::uint64_t>::max();
    maxV = 0;
}

void
Histogram::merge(const Histogram &other)
{
    if (other.buckets.size() > buckets.size())
        buckets.resize(other.buckets.size(), 0);
    for (std::size_t i = 0; i < other.buckets.size(); ++i)
        buckets[i] += other.buckets[i];
    n += other.n;
    sum += other.sum;
    if (other.n) {
        if (other.minV < minV)
            minV = other.minV;
        if (other.maxV > maxV)
            maxV = other.maxV;
    }
}

StatRegistry::Leaf
StatRegistry::makeLeaf(LeafKind kind, const void *ptr, const char *desc)
{
    ASTRI_ASSERT_MSG(desc != nullptr && desc[0] != '\0',
                     "stat registration requires a description");
    return Leaf{kind, ptr, desc};
}

void
StatRegistry::registerScalar(const std::string &name, const double *value,
                             const char *desc)
{
    leaves[name] = makeLeaf(LeafKind::Scalar, value, desc);
}

void
StatRegistry::registerUint(const std::string &name,
                           const std::uint64_t *value, const char *desc)
{
    leaves[name] = makeLeaf(LeafKind::Uint, value, desc);
}

void
StatRegistry::registerCounter(const std::string &name,
                              const Counter *counter, const char *desc)
{
    leaves[name] = makeLeaf(LeafKind::Counter, counter, desc);
}

void
StatRegistry::registerAverage(const std::string &name, const Average *avg,
                              const char *desc)
{
    leaves[name] = makeLeaf(LeafKind::Average, avg, desc);
}

void
StatRegistry::registerHistogram(const std::string &name,
                                const Histogram *hist, const char *desc)
{
    leaves[name] = makeLeaf(LeafKind::Hist, hist, desc);
}

const std::string &
StatRegistry::leafDescription(const std::string &name) const
{
    static const std::string kEmpty;
    const auto it = leaves.find(name);
    return it == leaves.end() ? kEmpty : it->second.desc;
}

void
StatRegistry::collectDescriptions(const std::string &prefix,
                                  std::vector<std::string> *lines) const
{
    for (const auto &[name, leaf] : leaves)
        lines->push_back(prefix + name + ": " + leaf.desc);
    for (const auto &[name, child] : children)
        child->collectDescriptions(prefix + name + ".", lines);
}

std::string
StatRegistry::describe() const
{
    std::vector<std::string> lines;
    collectDescriptions(std::string(), &lines);
    std::sort(lines.begin(), lines.end());
    std::string out;
    for (const std::string &line : lines) {
        out += line;
        out += '\n';
    }
    return out;
}

StatRegistry &
StatRegistry::subRegistry(const std::string &path)
{
    ASTRI_ASSERT(!path.empty());
    const auto [head, rest] = splitPath(path);
    auto it = children.find(head);
    if (it == children.end()) {
        it = children
                 .emplace(head, std::make_unique<StatRegistry>())
                 .first;
    }
    return rest.empty() ? *it->second : it->second->subRegistry(rest);
}

const StatRegistry *
StatRegistry::findSub(const std::string &path) const
{
    const auto [head, rest] = splitPath(path);
    const auto it = children.find(head);
    if (it == children.end())
        return nullptr;
    return rest.empty() ? it->second.get() : it->second->findSub(rest);
}

std::vector<std::string>
StatRegistry::childNames() const
{
    std::vector<std::string> names;
    names.reserve(children.size());
    for (const auto &[name, child] : children)
        names.push_back(name);
    return names;
}

void
StatRegistry::collectLines(const std::string &prefix,
                           std::vector<std::string> *lines) const
{
    for (const auto &[name, leaf] : leaves) {
        const std::string full = prefix + name;
        std::ostringstream os;
        switch (leaf.kind) {
          case LeafKind::Scalar:
            os << full << " = "
               << *static_cast<const double *>(leaf.ptr);
            lines->push_back(os.str());
            break;
          case LeafKind::Uint:
            os << full << " = "
               << *static_cast<const std::uint64_t *>(leaf.ptr);
            lines->push_back(os.str());
            break;
          case LeafKind::Counter:
            os << full << " = "
               << static_cast<const Counter *>(leaf.ptr)->value();
            lines->push_back(os.str());
            break;
          case LeafKind::Average: {
            const auto *a = static_cast<const Average *>(leaf.ptr);
            os << full << ".count = " << a->count();
            lines->push_back(os.str());
            if (a->count()) {
                std::ostringstream m;
                m << full << ".mean = " << a->mean();
                lines->push_back(m.str());
                std::ostringstream mn;
                mn << full << ".min = " << a->min();
                lines->push_back(mn.str());
                std::ostringstream mx;
                mx << full << ".max = " << a->max();
                lines->push_back(mx.str());
            }
            break;
          }
          case LeafKind::Hist: {
            const auto *h = static_cast<const Histogram *>(leaf.ptr);
            os << full << ".count = " << h->count();
            lines->push_back(os.str());
            if (h->count()) {
                std::ostringstream m;
                m << full << ".mean = " << h->mean();
                lines->push_back(m.str());
                std::ostringstream mn;
                mn << full << ".min = " << h->min();
                lines->push_back(mn.str());
                std::ostringstream mx;
                mx << full << ".max = " << h->max();
                lines->push_back(mx.str());
                for (std::size_t q = 0; q < std::size(kDumpQuantiles);
                     ++q) {
                    std::ostringstream p;
                    p << full << '.' << kDumpQuantileNames[q] << " = "
                      << h->percentile(kDumpQuantiles[q]);
                    lines->push_back(p.str());
                }
            }
            break;
          }
        }
    }
    for (const auto &[name, child] : children)
        child->collectLines(prefix + name + ".", lines);
}

std::string
StatRegistry::dump() const
{
    std::vector<std::string> lines;
    collectLines(std::string(), &lines);
    std::sort(lines.begin(), lines.end());
    std::string out;
    for (const std::string &line : lines) {
        out += line;
        out += '\n';
    }
    return out;
}

void
StatRegistry::collectNames(const std::string &prefix,
                           std::vector<std::string> *names) const
{
    for (const auto &[name, leaf] : leaves) {
        (void)leaf;
        names->push_back(prefix + name);
    }
    for (const auto &[name, child] : children)
        child->collectNames(prefix + name + ".", names);
}

void
StatRegistry::forEachStat(
    const std::function<void(const std::string &name)> &fn) const
{
    std::vector<std::string> names;
    collectNames(std::string(), &names);
    std::sort(names.begin(), names.end());
    for (const std::string &name : names)
        fn(name);
}

void
StatRegistry::writeJson(JsonWriter &w) const
{
    w.beginObject();
    for (const auto &[name, leaf] : leaves) {
        switch (leaf.kind) {
          case LeafKind::Scalar:
            w.field(name, *static_cast<const double *>(leaf.ptr));
            break;
          case LeafKind::Uint:
            w.field(name,
                    *static_cast<const std::uint64_t *>(leaf.ptr));
            break;
          case LeafKind::Counter:
            w.field(name,
                    static_cast<const Counter *>(leaf.ptr)->value());
            break;
          case LeafKind::Average: {
            const auto *a = static_cast<const Average *>(leaf.ptr);
            w.key(name);
            w.beginObject();
            w.field("count", a->count());
            w.field("mean", a->mean());
            w.field("min", a->count() ? a->min() : 0.0);
            w.field("max", a->count() ? a->max() : 0.0);
            w.endObject();
            break;
          }
          case LeafKind::Hist: {
            const auto *h = static_cast<const Histogram *>(leaf.ptr);
            w.key(name);
            w.beginObject();
            w.field("count", h->count());
            w.field("mean", h->mean());
            w.field("min", h->min());
            w.field("max", h->max());
            for (std::size_t q = 0; q < std::size(kDumpQuantiles); ++q)
                w.field(kDumpQuantileNames[q],
                        h->percentile(kDumpQuantiles[q]));
            w.endObject();
            break;
          }
        }
    }
    for (const auto &[name, child] : children) {
        w.key(name);
        child->writeJson(w);
    }
    w.endObject();
}

std::string
StatRegistry::dumpJson() const
{
    std::ostringstream os;
    JsonWriter w(os);
    writeJson(w);
    os << '\n';
    return os.str();
}

} // namespace astriflash::sim
