#include "stats.hh"

#include <bit>
#include <sstream>

#include "logging.hh"

namespace astriflash::sim {

namespace {

/** Number of buckets covering the full 64-bit value range. */
constexpr std::uint32_t kSubBucketBits = 6;
constexpr std::uint64_t kSubBuckets = 1ull << kSubBucketBits;
// One unit-resolution region + one region of kSubBuckets per octave
// above it. 64-bit values have at most 64 - kSubBucketBits octaves.
constexpr std::uint32_t kNumBuckets =
    static_cast<std::uint32_t>(kSubBuckets) +
    (64 - kSubBucketBits) * static_cast<std::uint32_t>(kSubBuckets);

} // namespace

Histogram::Histogram() : buckets(kNumBuckets, 0) {}

std::uint32_t
Histogram::bucketIndex(std::uint64_t v)
{
    if (v < kSubBuckets)
        return static_cast<std::uint32_t>(v);
    // Octave = index of the highest set bit beyond the unit region.
    const int msb = 63 - std::countl_zero(v);
    const std::uint32_t octave =
        static_cast<std::uint32_t>(msb) - kSubBucketBits;
    // Linear sub-bucket within the octave.
    const std::uint64_t sub =
        (v >> (msb - static_cast<int>(kSubBucketBits))) - kSubBuckets;
    return static_cast<std::uint32_t>(kSubBuckets) +
           octave * static_cast<std::uint32_t>(kSubBuckets) +
           static_cast<std::uint32_t>(sub);
}

std::uint64_t
Histogram::bucketUpperBound(std::uint32_t idx)
{
    if (idx < kSubBuckets)
        return idx;
    const std::uint32_t rel = idx - static_cast<std::uint32_t>(kSubBuckets);
    const std::uint32_t octave = rel >> kSubBucketBits;
    const std::uint64_t sub = rel & (kSubBuckets - 1);
    // Values in this bucket satisfy (v >> octave) == kSubBuckets + sub,
    // so the inclusive upper edge is one below the next sub-bucket edge.
    return ((kSubBuckets + sub + 1) << octave) - 1;
}

void
Histogram::sample(std::uint64_t v)
{
    sampleN(v, 1);
}

void
Histogram::sampleN(std::uint64_t v, std::uint64_t weight)
{
    if (weight == 0)
        return;
    buckets[bucketIndex(v)] += weight;
    n += weight;
    sum += static_cast<double>(v) * static_cast<double>(weight);
    if (v < minV)
        minV = v;
    if (v > maxV)
        maxV = v;
}

std::uint64_t
Histogram::percentile(double q) const
{
    if (n == 0)
        return 0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // Rank of the target sample (1-based, ceil), standard nearest-rank.
    const double exact = q * static_cast<double>(n);
    std::uint64_t rank = static_cast<std::uint64_t>(exact);
    if (static_cast<double>(rank) < exact || rank == 0)
        ++rank;
    std::uint64_t seen = 0;
    for (std::uint32_t i = 0; i < buckets.size(); ++i) {
        seen += buckets[i];
        if (seen >= rank) {
            const std::uint64_t ub = bucketUpperBound(i);
            return ub > maxV ? maxV : ub;
        }
    }
    return maxV;
}

void
Histogram::reset()
{
    std::fill(buckets.begin(), buckets.end(), 0);
    n = 0;
    sum = 0.0;
    minV = std::numeric_limits<std::uint64_t>::max();
    maxV = 0;
}

void
Histogram::merge(const Histogram &other)
{
    ASTRI_ASSERT(buckets.size() == other.buckets.size());
    for (std::size_t i = 0; i < buckets.size(); ++i)
        buckets[i] += other.buckets[i];
    n += other.n;
    sum += other.sum;
    if (other.n) {
        if (other.minV < minV)
            minV = other.minV;
        if (other.maxV > maxV)
            maxV = other.maxV;
    }
}

void
StatRegistry::registerScalar(const std::string &name, const double *value)
{
    scalars[name] = value;
}

void
StatRegistry::registerCounter(const std::string &name, const Counter *counter)
{
    counters[name] = counter;
}

std::string
StatRegistry::dump() const
{
    std::ostringstream os;
    for (const auto &[name, ptr] : counters)
        os << name << " = " << ptr->value() << "\n";
    for (const auto &[name, ptr] : scalars)
        os << name << " = " << *ptr << "\n";
    return os.str();
}

} // namespace astriflash::sim
