#include "json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "logging.hh"

namespace astriflash::sim {

JsonWriter::JsonWriter(std::ostream &stream, bool pretty_print)
    : os(stream), pretty(pretty_print)
{
}

std::string
JsonWriter::escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
JsonWriter::number(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[40];
    // %.17g round-trips any double; trim to %g first for readability
    // when it already round-trips.
    std::snprintf(buf, sizeof(buf), "%g", v);
    if (std::strtod(buf, nullptr) != v)
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
JsonWriter::indent()
{
    os << '\n';
    for (std::size_t i = 0; i < hasElement.size(); ++i)
        os << "  ";
}

void
JsonWriter::prefix(bool is_key)
{
    if (pendingKey) {
        // This emission is the value following a key.
        ASTRI_ASSERT(!is_key);
        pendingKey = false;
        return;
    }
    if (hasElement.empty())
        return; // Top-level value.
    if (hasElement.back())
        os << ',';
    hasElement.back() = true;
    if (pretty)
        indent();
}

void
JsonWriter::beginObject()
{
    prefix(false);
    os << '{';
    hasElement.push_back(false);
}

void
JsonWriter::endObject()
{
    ASTRI_ASSERT(!hasElement.empty());
    const bool had = hasElement.back();
    hasElement.pop_back();
    if (pretty && had)
        indent();
    os << '}';
}

void
JsonWriter::beginArray()
{
    prefix(false);
    os << '[';
    hasElement.push_back(false);
}

void
JsonWriter::endArray()
{
    ASTRI_ASSERT(!hasElement.empty());
    const bool had = hasElement.back();
    hasElement.pop_back();
    if (pretty && had)
        indent();
    os << ']';
}

void
JsonWriter::key(std::string_view name)
{
    prefix(true);
    os << '"' << escape(name) << "\":";
    if (pretty)
        os << ' ';
    pendingKey = true;
}

void
JsonWriter::value(std::string_view v)
{
    prefix(false);
    os << '"' << escape(v) << '"';
}

void
JsonWriter::value(double v)
{
    prefix(false);
    os << number(v);
}

void
JsonWriter::value(std::uint64_t v)
{
    prefix(false);
    os << v;
}

void
JsonWriter::value(std::int64_t v)
{
    prefix(false);
    os << v;
}

void
JsonWriter::value(bool v)
{
    prefix(false);
    os << (v ? "true" : "false");
}

void
JsonWriter::null()
{
    prefix(false);
    os << "null";
}

} // namespace astriflash::sim
