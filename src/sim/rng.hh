/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * A self-contained xoshiro256** implementation (no libc rand state, no
 * std::mt19937 size) so every model owns an independent, seedable,
 * reproducible stream. Distribution helpers cover the draws the paper's
 * methodology needs: uniform, exponential (Poisson arrivals), normal,
 * and bounded integers.
 */

#ifndef ASTRIFLASH_SIM_RNG_HH
#define ASTRIFLASH_SIM_RNG_HH

#include <cstdint>

namespace astriflash::sim {

/** xoshiro256** PRNG with distribution helpers. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit draw. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, bound) using Lemire rejection. */
    std::uint64_t uniformInt(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t uniformInt(std::uint64_t lo, std::uint64_t hi);

    /** Bernoulli trial with probability @p p. */
    bool chance(double p);

    /** Exponential variate with given mean (= 1/rate). */
    double exponential(double mean);

    /** Standard normal variate (Box-Muller, cached pair). */
    double normal();

    /** Normal variate with mean/stddev. */
    double normal(double mean, double stddev);

    /**
     * Poisson-distributed count with given mean (Knuth for small means,
     * normal approximation above 64).
     */
    std::uint64_t poisson(double mean);

    /** Fork an independent stream (seeded from this one). */
    Rng fork();

  private:
    std::uint64_t s[4];
    double cachedNormal = 0.0;
    bool hasCachedNormal = false;
};

} // namespace astriflash::sim

#endif // ASTRIFLASH_SIM_RNG_HH
