#include "invariant.hh"

#include <atomic>
#include <sstream>

namespace astriflash::sim {

namespace {
// Atomic (relaxed) so parallel sweeps reading the gate while a test
// harness arms/disarms it stay race-free under TSan.
std::atomic<bool> g_checks{ASTRIFLASH_CHECKS_ENABLED != 0};
} // namespace

namespace detail {

void
constexprCheckFailed(const char *expr, const char *file, int line)
{
    ASTRI_PANIC("SIM_CHECK failed: %s (%s:%d)", expr, file, line);
}

} // namespace detail

bool
checksEnabled()
{
    return g_checks.load(std::memory_order_relaxed);
}

void
setChecksEnabled(bool on)
{
    g_checks.store(on, std::memory_order_relaxed);
}

std::uint64_t
InvariantRegistry::checkAll(Ticks now)
{
    InvariantChecker chk;
    for (const Entry &e : entries) {
        chk.enterComponent(e.component, now);
        e.fn(chk);
    }
    ++sweepCount;
    evaluated += chk.conditionsEvaluated();
    violationTotal += chk.failures();
    for (const InvariantViolation &v : chk.violations()) {
        if (stored.size() >= kMaxStored)
            break;
        stored.push_back(v);
    }
    if (failFast && chk.failures() > 0) {
        ASTRI_PANIC("invariant sweep at tick %llu found %llu "
                    "violation(s):\n%s",
                    static_cast<unsigned long long>(now),
                    static_cast<unsigned long long>(chk.failures()),
                    report().c_str());
    }
    return chk.failures();
}

std::string
InvariantRegistry::report() const
{
    std::ostringstream os;
    for (const InvariantViolation &v : stored) {
        os << "  [" << v.component << "] " << v.detail << " ("
           << v.file << ":" << v.line << ", tick " << v.tick << ")\n";
    }
    if (violationTotal > stored.size()) {
        os << "  ... and "
           << violationTotal - static_cast<std::uint64_t>(stored.size())
           << " more\n";
    }
    return os.str();
}

} // namespace astriflash::sim
