/**
 * @file
 * Bounded, tick-stamped, FIFO message channel between components.
 *
 * The simulator is call-driven rather than port-driven: a producer
 * pushes a message and the consumer services it inside the same
 * synchronous call chain (directly, or through the channel's drain
 * hook). Instantaneous queue depth is therefore always ~0; what a
 * finite hardware queue actually bounds is the number of messages
 * whose *transactions* are still in flight. The channel models this
 * with time-based occupancy: pop() declares the tick at which the
 * message's slot is recycled (e.g. when the miss it carried finishes
 * installing), and push() counts every slot whose release tick is
 * still in the future. When the count reaches capacity the push
 * stalls — the accept tick moves out to the point where enough slots
 * have drained — and the stall is charged to the producer's timing
 * and to the channel's stall statistics. At effectively-unbounded
 * depth the accept tick always equals the push tick, so the channel
 * layer is timing-neutral by construction.
 *
 * Producers on different cores run with skewed local clocks, so push
 * ticks are NOT monotonic; the channel stays FIFO in push order and
 * prunes released slots against each push's own timestamp.
 */

#ifndef ASTRIFLASH_SIM_BOUNDED_CHANNEL_HH
#define ASTRIFLASH_SIM_BOUNDED_CHANNEL_HH

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "causality.hh"
#include "invariant.hh"
#include "logging.hh"
#include "ownership.hh"
#include "stats.hh"
#include "ticks.hh"

namespace astriflash::sim {

/** Fixed-capacity FIFO channel carrying messages of type @p Msg. */
template <typename Msg>
class BoundedChannel
{
  public:
    /** A queued message with its enqueue timestamps. */
    struct Stamped {
        Msg msg;
        Ticks pushedAt = 0;   ///< Producer's request tick.
        Ticks acceptedAt = 0; ///< After any full-queue stall.
        std::uint64_t seq = 0; ///< Push order, 1-based (audit key).
    };

    struct Stats {
        Counter pushes;
        Counter pops;
        Counter fullStalls; ///< Pushes that found the channel full.
        Counter stallTicks; ///< Total backpressure delay charged.
        Average occupancy;  ///< In-flight slots sampled at each push.
        std::uint64_t peakOccupancy = 0;
    };

    /** Invoked after every push; consumers drain synchronously. */
    using DrainHook = std::function<void()>;

    /**
     * Invoked after every push with the message's accept tick.
     * Pipelined consumers use it instead of a DrainHook: rather than
     * draining in the producer's call chain, the hook schedules the
     * consumer's pump at accept + the declared lookahead (through the
     * engine's cross-group post mailbox when the endpoints live in
     * different exec groups). The hook runs in the producer's
     * execution context and must not touch consumer-owned state.
     */
    using NotifyHook = std::function<void(Ticks accept)>;

    /**
     * @param name      Instance name (stats, audit reports).
     * @param capacity  Slot count; >= 1.
     * @param contract  Declared determinism contract (lookahead +
     *                  push monotonicity). Channels inside src/ must
     *                  declare it explicitly (aflint rule AF018); the
     *                  default is the vacuous contract for tests.
     */
    BoundedChannel(std::string name, std::uint32_t capacity,
                   ChannelContract contract = {})
        : chName(std::move(name)), cap(capacity),
          channelContract(contract)
    {
        if (capacity == 0)
            ASTRI_FATAL("%s: channel needs capacity >= 1",
                        chName.c_str());
        if ((auditor = CausalityAuditor::current()) != nullptr)
            auditId = auditor->registerChannel(chName,
                                              channelContract);
    }

    BoundedChannel(const BoundedChannel &) = delete;
    BoundedChannel &operator=(const BoundedChannel &) = delete;

    /** Instance name (stat/invariant registration). */
    const std::string &name() const { return chName; }

    /** Configured slot count. */
    std::uint32_t capacity() const { return cap; }

    /** Declared determinism contract. */
    const ChannelContract &contract() const { return channelContract; }

    /**
     * Declare the endpoint domains alongside the ChannelContract
     * (DESIGN.md §16): messages are pushed from @p producer and
     * consumed in @p consumer. Reported to the attached
     * OwnershipAuditor's registry so the channel seam is enumerable
     * in the domain-coupling report.
     */
    void
    declareEndpoints(DomainId producer, DomainId consumer)
    {
        producerDomain = producer;
        consumerDomain = consumer;
        if (OwnershipAuditor *a = OwnershipAuditor::current())
            a->registry().declareChannel(chName, producer, consumer);
    }

    /** Declared producer domain (kNoDomain if undeclared). */
    DomainId producerEndpoint() const { return producerDomain; }

    /** Declared consumer domain (kNoDomain if undeclared). */
    DomainId consumerEndpoint() const { return consumerDomain; }

    /** Messages pushed but not yet popped. */
    bool
    empty() const
    {
        std::lock_guard<std::mutex> lk(chMu);
        return waiting.empty();
    }

    /** Slots still owned by in-flight transactions at @p now. */
    std::uint32_t
    inFlight(Ticks now) const
    {
        std::lock_guard<std::mutex> lk(chMu);
        std::size_t busy = waiting.size() + pendingRelease.size();
        for (const Ticks t : busyUntil) {
            if (t > now)
                ++busy;
        }
        return static_cast<std::uint32_t>(busy);
    }

    /** Backpressure signal: would a push at @p now stall? */
    bool wouldStall(Ticks now) const { return inFlight(now) >= cap; }

    /**
     * Close the drainable window at the current push sequence: pump
     * loops refuse (frontHeldByFreeze()) entries pushed after this
     * call until the next freeze. System calls it at every engine
     * barrier in split mode so a consumer group's pumps drain exactly
     * the barrier-time queue no matter how the producer's and
     * consumer's workers interleave inside a round — the same set the
     * sequential host-jobs=1 round order drains (DESIGN.md §17).
     * Never called in fused or single-queue mode; the default window
     * is unbounded.
     */
    void
    freezeDrainWindow()
    {
        std::lock_guard<std::mutex> lk(chMu);
        drainLimitSeq = lastSeq;
        applyPendingReleases();
        deferReleases = true;
    }

    /** Reopen the drain window (post-run quiesce draining). */
    void
    thawDrainWindow()
    {
        std::lock_guard<std::mutex> lk(chMu);
        drainLimitSeq = ~std::uint64_t{0};
        applyPendingReleases();
        deferReleases = false;
    }

    /** Front entry exists but was pushed after the last freeze. */
    bool
    frontHeldByFreeze() const
    {
        std::lock_guard<std::mutex> lk(chMu);
        return !waiting.empty() &&
               waiting.front().seq > drainLimitSeq;
    }

    /**
     * Stamp watermark: accept tick of the oldest un-popped message,
     * or kTickNever when the channel is idle. Lock-free — a single
     * atomic load — so a domain scheduler (sim::ParallelEngine
     * horizon computation) on another host thread can read "earliest
     * undelivered stamp" without taking the channel's mutation path.
     * Combined with the declared lookahead it bounds the earliest
     * consumer-side work this channel can still cause.
     */
    Ticks
    stampWatermark() const
    {
        return watermark.load(std::memory_order_acquire);
    }

    /**
     * Enqueue @p msg at @p now.
     *
     * @return the accept tick: @p now if a slot is free, else the tick
     *         at which enough in-flight slots drain. The producer must
     *         treat the accept tick as when the message actually
     *         entered the channel.
     */
    Ticks
    push(Msg msg, Ticks now)
    {
        Ticks accept = now;
        {
        std::lock_guard<std::mutex> lk(chMu);
        prune(now);
        // Deferred releases still hold their slots: they free at the
        // next barrier (deterministically), never mid-round.
        const std::size_t occ = busyUntil.size() +
                                pendingRelease.size() +
                                waiting.size();
        if (occ >= cap) {
            // Need (occ - cap + 1) slots back. Only popped slots have
            // known release ticks; un-popped ones would deadlock the
            // producer, which the synchronous pump discipline (every
            // push is drained before the next) makes impossible.
            const std::size_t k = occ - cap + 1;
            SIM_CHECK_MSG(k <= busyUntil.size(),
                          "%s: full with %zu un-drained messages",
                          chName.c_str(), waiting.size());
            std::nth_element(busyUntil.begin(),
                             busyUntil.begin() +
                                 static_cast<std::ptrdiff_t>(k - 1),
                             busyUntil.end());
            const Ticks freed = busyUntil[k - 1];
            accept = freed > now ? freed : now;
            statsData.fullStalls.inc();
            statsData.stallTicks.inc(accept - now);
            prune(accept);
        }
        statsData.pushes.inc();
        const std::size_t live = busyUntil.size() +
                                 pendingRelease.size() +
                                 waiting.size() + 1;
        statsData.occupancy.sample(static_cast<double>(live));
        if (live > statsData.peakOccupancy)
            statsData.peakOccupancy = live;
        const std::uint64_t seq = ++lastSeq;
        waiting.push_back(Stamped{std::move(msg), now, accept, seq});
        publishWatermark();
        if (auditor)
            auditor->onPush(auditId, seq, now, accept);
        }
        // Hooks run unlocked: the fused drain hook re-enters this
        // channel, and the pipelined notify hook posts through the
        // engine mailbox (its own lock).
        if (drainHook)
            drainHook();
        if (notifyHook)
            notifyHook(accept);
        return accept;
    }

    /** Oldest un-popped message. Caller checks !empty(). */
    Stamped &
    front()
    {
        // The returned reference stays valid and unwritten under
        // concurrent pushes: deque push_back never moves elements and
        // only the (single) consumer pops.
        std::lock_guard<std::mutex> lk(chMu);
        ASTRI_ASSERT_MSG(!waiting.empty(), "%s: front() on empty",
                         chName.c_str());
        return waiting.front();
    }

    const Stamped &
    front() const
    {
        std::lock_guard<std::mutex> lk(chMu);
        ASTRI_ASSERT_MSG(!waiting.empty(), "%s: front() on empty",
                         chName.c_str());
        return waiting.front();
    }

    /**
     * Dequeue the front message. @p consumed_at is the tick the
     * consumer acts on the message (the delivery tick the causality
     * auditor certifies against the declared lookahead); the slot
     * stays occupied until @p release_at (the tick the carried
     * transaction completes and the hardware queue entry is
     * recycled).
     */
    void
    dropFront(Ticks consumed_at, Ticks release_at)
    {
        std::lock_guard<std::mutex> lk(chMu);
        ASTRI_ASSERT_MSG(!waiting.empty(), "%s: dropFront() on empty",
                         chName.c_str());
        if (auditor) {
            const Stamped &s = waiting.front();
            auditor->onDeliver(auditId, s.seq, s.pushedAt,
                               s.acceptedAt, consumed_at);
        }
        waiting.pop_front();
        publishWatermark();
        statsData.pops.inc();
        if (deferReleases) {
            // Frozen (split) mode: the slot's release becomes visible
            // to the producer at the next barrier, not mid-round —
            // otherwise push-side occupancy samples and stall
            // calculations would depend on whether the consumer
            // worker's drop raced ahead of the producer's push.
            pendingRelease.push_back(release_at);
        } else {
            busyUntil.push_back(release_at);
        }
    }

    /** dropFront() where consumption and slot release coincide. */
    void dropFront(Ticks release_at)
    {
        dropFront(release_at, release_at);
    }

    /** Convenience: move the front message out and drop it. */
    Msg
    pop(Ticks consumed_at, Ticks release_at)
    {
        Msg m = std::move(front().msg);
        dropFront(consumed_at, release_at);
        return m;
    }

    /** pop() where consumption and slot release coincide. */
    Msg pop(Ticks release_at) { return pop(release_at, release_at); }

    /** Install the consumer's synchronous drain hook. */
    void setDrainHook(DrainHook hook) { drainHook = std::move(hook); }

    /** Install the consumer's pipelined push notification. */
    void setNotifyHook(NotifyHook hook) { notifyHook = std::move(hook); }

    const Stats &stats() const { return statsData; }

    /**
     * Start a fresh measurement window mid-flight: counters restart
     * with the conservation law re-based on the currently queued
     * messages (pushes := queued, pops := 0) so the invariant audit
     * holds across the reset, and the peak restarts at the current
     * queue depth. In-flight slot release ticks are untouched.
     */
    void
    resetStats()
    {
        std::lock_guard<std::mutex> lk(chMu);
        statsData.pushes.reset();
        statsData.pushes.inc(waiting.size());
        statsData.pops.reset();
        statsData.fullStalls.reset();
        statsData.stallTicks.reset();
        statsData.occupancy.reset();
        statsData.peakOccupancy = waiting.size();
    }

    /** Register channel stats into @p reg. */
    void
    regStats(StatRegistry &reg) const
    {
        reg.registerCounter("pushes", &statsData.pushes,
                            "messages enqueued into the channel");
        reg.registerCounter("pops", &statsData.pops,
                            "messages dequeued by the consumer");
        reg.registerCounter("full_stalls", &statsData.fullStalls,
                            "pushes that found every slot in flight");
        reg.registerCounter("stall_ticks", &statsData.stallTicks,
                            "total backpressure delay in ticks");
        reg.registerAverage("occupancy", &statsData.occupancy,
                            "in-flight slots sampled at each push");
        reg.registerUint("peak_occupancy", &statsData.peakOccupancy,
                         "maximum in-flight slots over the run");
    }

    /**
     * Audit the channel: conservation (pushes == pops + un-popped),
     * stamp sanity (no message accepted before it was pushed), stall
     * accounting (stall ticks imply full stalls), and the peak bound.
     */
    void
    checkInvariants(InvariantChecker &chk) const
    {
        std::lock_guard<std::mutex> lk(chMu);
        SIM_INVARIANT_MSG(chk,
                          statsData.pushes.value() ==
                              statsData.pops.value() + waiting.size(),
                          "%s conservation: %llu pushes != %llu pops "
                          "+ %zu queued",
                          chName.c_str(),
                          static_cast<unsigned long long>(
                              statsData.pushes.value()),
                          static_cast<unsigned long long>(
                              statsData.pops.value()),
                          waiting.size());
        std::uint64_t prev_seq = 0;
        for (const Stamped &s : waiting) {
            SIM_INVARIANT_MSG(chk, s.acceptedAt >= s.pushedAt,
                              "%s: message accepted at %llu before "
                              "its push at %llu",
                              chName.c_str(),
                              static_cast<unsigned long long>(
                                  s.acceptedAt),
                              static_cast<unsigned long long>(
                                  s.pushedAt));
            SIM_INVARIANT_MSG(chk,
                              s.seq > prev_seq && s.seq <= lastSeq,
                              "%s: queue order breaks push order "
                              "(seq %llu after %llu)",
                              chName.c_str(),
                              static_cast<unsigned long long>(s.seq),
                              static_cast<unsigned long long>(
                                  prev_seq));
            prev_seq = s.seq;
        }
        SIM_INVARIANT(chk, waiting.size() <= cap);
        SIM_INVARIANT_MSG(chk,
                          statsData.stallTicks.value() == 0 ||
                              statsData.fullStalls.value() > 0,
                          "%s: stall ticks without a full stall",
                          chName.c_str());
        SIM_INVARIANT(chk,
                      statsData.peakOccupancy >= waiting.size());
        SIM_INVARIANT(chk,
                      statsData.peakOccupancy <=
                          statsData.pushes.value());
        SIM_INVARIANT_MSG(chk,
                          stampWatermark() ==
                              (waiting.empty()
                                   ? kTickNever
                                   : waiting.front().acceptedAt),
                          "%s: stamp watermark out of sync with the "
                          "queue front",
                          chName.c_str());
    }

  private:
    /** Forget slots whose transactions completed by @p now. */
    void
    prune(Ticks now)
    {
        std::erase_if(busyUntil,
                      [now](Ticks t) { return t <= now; });
    }

    /** Barrier sync: commit deferred slot releases (lock held). */
    void
    applyPendingReleases()
    {
        busyUntil.insert(busyUntil.end(), pendingRelease.begin(),
                         pendingRelease.end());
        pendingRelease.clear();
    }

    /** Mirror the front stamp after every queue mutation. */
    void
    publishWatermark()
    {
        watermark.store(waiting.empty() ? kTickNever
                                        : waiting.front().acceptedAt,
                        std::memory_order_release);
    }

    std::string chName;
    std::uint32_t cap;
    ChannelContract channelContract;
    CausalityAuditor *auditor = nullptr;
    std::uint32_t auditId = 0;
    DomainId producerDomain = kNoDomain;
    DomainId consumerDomain = kNoDomain;
    std::uint64_t lastSeq = 0;
    /** freezeDrainWindow() bound; unbounded until the first freeze. */
    std::uint64_t drainLimitSeq = ~std::uint64_t{0};
    std::deque<Stamped> waiting;    ///< Pushed, not yet popped.
    std::vector<Ticks> busyUntil;   ///< Popped slots' release ticks.
    /** Releases deferred to the next barrier while frozen. */
    std::vector<Ticks> pendingRelease;
    /** Set while the drain window is frozen (split mode). */
    bool deferReleases = false;
    /**
     * Guards every queue/stat mutation and read: in split mode the
     * producer's push and the consumer pump's front/dropFront run on
     * different engine workers. Hooks are invoked outside it.
     */
    mutable std::mutex chMu;
    std::atomic<Ticks> watermark{kTickNever};
    DrainHook drainHook;
    NotifyHook notifyHook;
    Stats statsData;
};

} // namespace astriflash::sim

#endif // ASTRIFLASH_SIM_BOUNDED_CHANNEL_HH
