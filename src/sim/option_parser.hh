/**
 * @file
 * Small reusable command-line option parser.
 *
 * Replaces the hand-rolled flagValue()/strcmp chains the front end and
 * bench binaries grew independently. Long flags only, in the repo's
 * existing `--name=value` convention (bool flags are bare `--name`),
 * with typed destinations and an auto-generated `--help`.
 *
 *   sim::OptionParser opts("astriflash_sim", "run one configuration");
 *   opts.addUint("cores", &cores, "number of simulated cores");
 *   opts.addDouble("load", &load, "open-loop load fraction");
 *   opts.addFlag("footprint", &footprint, "enable footprint caching");
 *   opts.parseOrExit(argc, argv);
 *
 * parse() never exits (tests drive it directly); parseOrExit() prints
 * usage and exits on error or --help, the behaviour binaries want.
 */

#ifndef ASTRIFLASH_SIM_OPTION_PARSER_HH
#define ASTRIFLASH_SIM_OPTION_PARSER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace astriflash::sim {

/** Typed long-flag command-line parser. */
class OptionParser
{
  public:
    /** Outcome of parse(). */
    enum class Status {
        Ok,       ///< All arguments consumed.
        Help,     ///< --help was requested; usage() has the text.
        Error,    ///< Bad flag or value; error() has the message.
    };

    /**
     * @param program      argv[0]-style name for the usage header.
     * @param description  One-line summary printed under the header.
     */
    OptionParser(std::string program, std::string description);

    /** String option `--name=value`. */
    void addString(const std::string &name, std::string *out,
                   const std::string &help);

    /** Unsigned integer option `--name=N`. */
    void addUint(const std::string &name, std::uint64_t *out,
                 const std::string &help);

    /** 32-bit unsigned option `--name=N`. */
    void addUint32(const std::string &name, std::uint32_t *out,
                   const std::string &help);

    /** Floating-point option `--name=F`. */
    void addDouble(const std::string &name, double *out,
                   const std::string &help);

    /** Presence flag `--name` (sets *out = true). */
    void addFlag(const std::string &name, bool *out,
                 const std::string &help);

    /**
     * Option with a custom value handler (enums, unit suffixes).
     * The handler returns false to reject the value.
     * @param value_name  Placeholder shown in --help (e.g. "NAME").
     */
    void addCustom(const std::string &name, const std::string &value_name,
                   const std::string &help,
                   std::function<bool(const std::string &value)> handler);

    /** Parse argv[1..); stops at the first error. */
    Status parse(int argc, const char *const *argv);

    /** parse(), printing usage/errors; exits unless Status::Ok. */
    void parseOrExit(int argc, const char *const *argv);

    /** Auto-generated usage text. */
    std::string usage() const;

    /** Message describing the last parse error. */
    const std::string &error() const { return errorMsg; }

  private:
    struct Option {
        std::string name;      ///< Without the leading "--".
        std::string valueName; ///< Empty for presence flags.
        std::string help;
        std::function<bool(const std::string &)> handler; ///< Valued.
        bool *flag = nullptr;  ///< Presence flag destination.
    };

    const Option *find(const std::string &name) const;

    std::string program;
    std::string description;
    std::vector<Option> options;
    std::string errorMsg;
};

} // namespace astriflash::sim

#endif // ASTRIFLASH_SIM_OPTION_PARSER_HH
