/**
 * @file
 * Small-buffer-optimized move-only callable.
 *
 * The event kernel schedules millions of short-lived lambdas per
 * simulated second; std::function heap-allocates any capture larger
 * than its tiny internal buffer (16 bytes on libstdc++, and only for
 * trivially-copyable captures), putting an allocator round trip on the
 * kernel's hottest path. InlineFunction stores captures up to
 * kInlineBytes directly inside the object and only falls back to the
 * heap beyond that; unlike std::function it is move-only, so it also
 * accepts callables with move-only captures (unique_ptr and friends).
 */

#ifndef ASTRIFLASH_SIM_INLINE_FN_HH
#define ASTRIFLASH_SIM_INLINE_FN_HH

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace astriflash::sim {

/**
 * Type-erased `void()` callable with inline storage.
 *
 * @tparam InlineBytes  Capture bytes stored without heap allocation.
 */
template <std::size_t InlineBytes = 48>
class InlineFunction
{
  public:
    static constexpr std::size_t kInlineBytes = InlineBytes;

    InlineFunction() = default;

    /** Wrap any `void()` callable. */
    template <typename F,
              typename = std::enable_if_t<!std::is_same_v<
                  std::decay_t<F>, InlineFunction>>>
    InlineFunction(F &&fn) // NOLINT: implicit like std::function
    {
        emplace(std::forward<F>(fn));
    }

    InlineFunction(InlineFunction &&other) noexcept { moveFrom(other); }

    InlineFunction &
    operator=(InlineFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    ~InlineFunction() { reset(); }

    /** True if a callable is held. */
    explicit operator bool() const { return ops != nullptr; }

    /** Invoke the held callable (must be non-empty). */
    void operator()() { ops->invoke(storagePtr()); }

    /** Destroy the held callable, leaving the function empty. */
    void
    reset()
    {
        if (ops) {
            ops->destroy(storagePtr());
            ops = nullptr;
        }
    }

    /** True if the held callable lives in the inline buffer. */
    bool
    inlineStored() const
    {
        return ops != nullptr && ops->inlineStored;
    }

  private:
    /** Per-erased-type operation table (shared, static storage). */
    struct OpsTable {
        void (*invoke)(void *);
        void (*moveTo)(void *src, void *dst) noexcept;
        void (*destroy)(void *) noexcept;
        bool inlineStored;
    };

    template <typename F>
    void
    emplace(F &&fn)
    {
        using Fn = std::decay_t<F>;
        static_assert(std::is_invocable_r_v<void, Fn &>,
                      "InlineFunction requires a void() callable");
        if constexpr (sizeof(Fn) <= InlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            // aflint-allow-next-line(AF002): placement new into the inline buffer
            ::new (storagePtr()) Fn(std::forward<F>(fn));
            static const OpsTable table = {
                [](void *p) { (*static_cast<Fn *>(p))(); },
                [](void *src, void *dst) noexcept {
                    Fn *f = static_cast<Fn *>(src);
                    // aflint-allow-next-line(AF002): relocation within the SBO
                    ::new (dst) Fn(std::move(*f));
                    f->~Fn();
                },
                [](void *p) noexcept { static_cast<Fn *>(p)->~Fn(); },
                /*inlineStored=*/true,
            };
            ops = &table;
        } else {
            // Too big for the buffer: store a unique_ptr to it inline
            // (always fits) and let its table forward through it.
            using Box = std::unique_ptr<Fn>;
            static_assert(sizeof(Box) <= InlineBytes);
            // aflint-allow-next-line(AF002): placement new of the owning box
            ::new (storagePtr())
                Box(std::make_unique<Fn>(std::forward<F>(fn)));
            static const OpsTable table = {
                [](void *p) { (**static_cast<Box *>(p))(); },
                [](void *src, void *dst) noexcept {
                    Box *b = static_cast<Box *>(src);
                    // aflint-allow-next-line(AF002): relocation of the owning box
                    ::new (dst) Box(std::move(*b));
                    b->~Box();
                },
                [](void *p) noexcept { static_cast<Box *>(p)->~Box(); },
                /*inlineStored=*/false,
            };
            ops = &table;
        }
    }

    void
    moveFrom(InlineFunction &other) noexcept
    {
        ops = other.ops;
        if (ops) {
            ops->moveTo(other.storagePtr(), storagePtr());
            other.ops = nullptr;
        }
    }

    void *storagePtr() { return static_cast<void *>(&storage); }
    const void *storagePtr() const { return &storage; }

    alignas(std::max_align_t) std::byte storage[InlineBytes];
    const OpsTable *ops = nullptr;
};

} // namespace astriflash::sim

#endif // ASTRIFLASH_SIM_INLINE_FN_HH
