#include "parallel_engine.hh"

#include <algorithm>

#include "logging.hh"

namespace astriflash::sim {

namespace {

/** Saturating tick addition: never wraps past kTickNever. */
Ticks
satAdd(Ticks a, Ticks b)
{
    return a > kTickNever - b ? kTickNever : a + b;
}

} // namespace

ParallelEngine::ParallelEngine(Config cfg_) : cfg(cfg_)
{
    if (cfg.roundEvents == 0)
        ASTRI_FATAL("parallel engine needs roundEvents >= 1");
}

ParallelEngine::DomainId
ParallelEngine::addDomain(std::string name, EventQueue &queue,
                          GroupId group)
{
    ASTRI_ASSERT_MSG(!prepared, "addDomain() after run()");
    const auto id = static_cast<DomainId>(domains.size());
    domains.push_back(Domain{std::move(name), &queue, group, {}, 0,
                             kTickNever, 0});
    return id;
}

void
ParallelEngine::addLink(DomainId src, DomainId dst, Ticks lookahead,
                        std::function<Ticks()> watermark)
{
    ASTRI_ASSERT_MSG(!prepared, "addLink() after run()");
    ASTRI_ASSERT(src < domains.size() && dst < domains.size());
    domains[dst].inbound.push_back(
        Link{src, lookahead, std::move(watermark), false});
}

void
ParallelEngine::post(DomainId src, DomainId dst, Ticks when,
                     EventQueue::Callback fn, EventPriority prio)
{
    ASTRI_ASSERT(src < domains.size() && dst < domains.size());
    // postSeq is only ever touched by the worker currently executing
    // src's group, so it needs no lock of its own.
    const std::uint64_t seq = ++domains[src].postSeq;
    std::lock_guard<std::mutex> lk(postMu);
    mailbox.push_back(Post{when, static_cast<std::int32_t>(prio), src,
                           dst, seq, std::move(fn)});
}

void
ParallelEngine::prepare()
{
    ASTRI_ASSERT_MSG(!domains.empty(),
                     "parallel engine has no domains");
    // Groups ordered by id so round dispatch is deterministic.
    std::vector<GroupId> ids;
    for (const Domain &d : domains)
        ids.push_back(d.group);
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    for (const GroupId gid : ids) {
        Group g;
        g.id = gid;
        for (DomainId d = 0; d < domains.size(); ++d) {
            if (domains[d].group == gid)
                g.members.push_back(d);
        }
        groups.push_back(std::move(g));
    }

    for (const Group &g : groups) {
        // A multi-member group is executed as one K-way merge over
        // its queues; that is only bit-identical to a single queue if
        // the members share clock and sequence state.
        for (const DomainId m : g.members) {
            if (domains[m].q->groupKey() !=
                domains[g.members[0]].q->groupKey()) {
                ASTRI_FATAL("domains '%s' and '%s' share exec group "
                            "%u but not an EventQueueGroup",
                            domains[g.members[0]].name.c_str(),
                            domains[m].name.c_str(), g.id);
            }
        }
    }

    // Resolve each domain's ownership-registry id from its queue so
    // runGroupRound can publish it while executing (DESIGN.md §16).
    if (ownershipAuditor) {
        for (Domain &d : domains)
            d.ownerTag = ownershipAuditor->registry().domainOf(d.q);
    }

    for (Domain &d : domains) {
        for (Link &l : d.inbound) {
            l.crossGroup = domains[l.src].group != d.group;
            // A zero-lookahead cross-group cycle would let two groups
            // execute the same tick concurrently while exchanging
            // messages at that tick; require strictly positive
            // lookahead so the horizon fixpoint always advances.
            if (l.crossGroup && l.lookahead == 0) {
                ASTRI_FATAL("cross-group link %s -> %s needs "
                            "lookahead > 0",
                            domains[l.src].name.c_str(),
                            d.name.c_str());
            }
        }
    }
    prepared = true;
}

void
ParallelEngine::computeHorizons()
{
    // Null-message fixpoint on committed clocks: c[d] starts at d's
    // next local event and is relaxed through every link until
    // stable. After k sweeps c[d] accounts for every path of k hops;
    // simple paths cap at |D| hops and any longer path repeats a node
    // (adding a full positive-lookahead cycle), so |D| sweeps reach
    // the exact fixpoint.
    for (Domain &d : domains) {
        EventQueue::HeadKey k;
        d.committed = d.q->headKey(k) ? k.when : kTickNever;
    }
    for (std::size_t sweep = 0; sweep < domains.size(); ++sweep) {
        bool changed = false;
        for (Domain &d : domains) {
            for (const Link &l : d.inbound) {
                Ticks src_clock = domains[l.src].committed;
                if (l.watermark)
                    src_clock = std::min(src_clock, l.watermark());
                const Ticks bound = satAdd(src_clock, l.lookahead);
                if (bound < d.committed) {
                    d.committed = bound;
                    changed = true;
                }
            }
        }
        if (!changed)
            break;
    }
    // Horizons bound execution only across groups; inside a group the
    // merged order is already exact.
    for (Domain &d : domains) {
        Ticks h = kTickNever;
        for (const Link &l : d.inbound) {
            if (!l.crossGroup)
                continue;
            Ticks src_clock = domains[l.src].committed;
            if (l.watermark)
                src_clock = std::min(src_clock, l.watermark());
            h = std::min(h, satAdd(src_clock, l.lookahead));
        }
        d.horizon = h;
    }
}

bool
ParallelEngine::allDrained() const
{
    for (const Domain &d : domains) {
        if (!d.q->empty())
            return false;
    }
    return mailbox.empty();
}

std::uint64_t
ParallelEngine::runGroupRound(Group &g)
{
    std::uint64_t executed = 0;
    while (executed < cfg.roundEvents) {
        EventQueue *best = nullptr;
        std::uint32_t best_owner = kNoDomain;
        EventQueue::HeadKey best_key{};
        for (const DomainId m : g.members) {
            Domain &d = domains[m];
            EventQueue::HeadKey k;
            if (!d.q->headKey(k) || k.when > d.horizon)
                continue;
            if (!best || k < best_key) {
                best = d.q;
                best_owner = d.ownerTag;
                best_key = k;
            }
        }
        if (!best)
            break;
        if (ownershipAuditor && checksEnabled()) {
            // Publish the executing domain for the ownership audit;
            // thread-local only, so goldens are unaffected.
            OwnershipAuditor::ExecScope scope(best_owner);
            best->runSteps(1);
        } else {
            best->runSteps(1);
        }
        ++executed;
    }
    g.ranThisRound = executed > 0;
    g.events += executed;
    return executed;
}

void
ParallelEngine::deliverPosts()
{
    std::lock_guard<std::mutex> lk(postMu);
    if (mailbox.empty())
        return;
    // Worker timing decides mailbox append order; the sort erases it.
    std::stable_sort(mailbox.begin(), mailbox.end(),
                     [](const Post &a, const Post &b) {
                         if (a.when != b.when)
                             return a.when < b.when;
                         if (a.prio != b.prio)
                             return a.prio < b.prio;
                         if (a.src != b.src)
                             return a.src < b.src;
                         return a.srcSeq < b.srcSeq;
                     });
    for (Post &p : mailbox) {
        domains[p.dst].q->schedule(
            p.when, std::move(p.fn),
            static_cast<EventPriority>(p.prio));
        ++statsData.postsDelivered;
    }
    mailbox.clear();
}

void
ParallelEngine::workerMain(const RunHooks &hooks)
{
    if (hooks.workerInit)
        hooks.workerInit();
    std::uint64_t my_epoch = 0;
    std::unique_lock<std::mutex> lk(poolMu);
    for (;;) {
        workCv.wait(lk, [&] {
            return quitWorkers || epoch != my_epoch;
        });
        if (quitWorkers)
            return;
        my_epoch = epoch;
        for (;;) {
            if (nextGroup >= roundWork.size())
                break;
            Group *g = roundWork[nextGroup++];
            lk.unlock();
            const std::uint64_t n = runGroupRound(*g);
            lk.lock();
            roundExecuted += n;
            if (n < cfg.roundEvents && !groupQueuesEmpty(*g))
                ++roundHorizonStalls;
        }
        --activeWorkers;
        if (activeWorkers == 0)
            doneCv.notify_one();
    }
}

bool
ParallelEngine::groupQueuesEmpty(const Group &g) const
{
    for (const DomainId m : g.members) {
        if (!domains[m].q->empty())
            return false;
    }
    return true;
}

void
ParallelEngine::run(const RunHooks &hooks)
{
    prepare();

    const unsigned want_workers =
        cfg.hostJobs > 1
            ? static_cast<unsigned>(std::min<std::size_t>(
                  cfg.hostJobs, groups.size()))
            : 0;
    spawnedWorkers = want_workers;
    for (unsigned w = 0; w < want_workers; ++w)
        workers.emplace_back([this, hooks] { workerMain(hooks); });

    for (;;) {
        if (hooks.stop && hooks.stop())
            break;
        deliverPosts();
        computeHorizons();

        roundWork.clear();
        for (Group &g : groups) {
            for (const DomainId m : g.members) {
                Domain &d = domains[m];
                EventQueue::HeadKey k;
                if (d.q->headKey(k) && k.when <= d.horizon) {
                    roundWork.push_back(&g);
                    break;
                }
            }
        }
        if (roundWork.empty()) {
            if (allDrained())
                break;
            // Conservative progress theorem: the domain holding the
            // globally earliest event always clears its horizon. No
            // eligible work with events pending means a declared
            // lookahead is wrong (or a watermark never drains).
            ASTRI_FATAL("parallel engine deadlock: events pending "
                        "but no domain may execute");
        }

        roundExecuted = 0;
        roundHorizonStalls = 0;
        if (want_workers == 0) {
            for (Group *g : roundWork) {
                const std::uint64_t n = runGroupRound(*g);
                roundExecuted += n;
                if (n < cfg.roundEvents && !groupQueuesEmpty(*g))
                    ++roundHorizonStalls;
            }
        } else {
            std::unique_lock<std::mutex> lk(poolMu);
            nextGroup = 0;
            activeWorkers = want_workers;
            ++epoch;
            workCv.notify_all();
            doneCv.wait(lk, [&] { return activeWorkers == 0; });
        }
        statsData.rounds += roundWork.size();
        statsData.events += roundExecuted;
        statsData.horizonStalls += roundHorizonStalls;
        ++statsData.barriers;

        if (hooks.atBarrier) {
            Ticks floor = kTickNever;
            for (const Domain &d : domains)
                floor = std::min(floor, d.q->curTick());
            hooks.atBarrier(floor);
        }
    }

    if (want_workers > 0) {
        {
            std::lock_guard<std::mutex> lk(poolMu);
            quitWorkers = true;
        }
        workCv.notify_all();
        for (std::thread &t : workers)
            t.join();
        workers.clear();
    }

    // Partition telemetry snapshot (groups are ordered by id, so the
    // per-group tallies index deterministically).
    statsData.groups = static_cast<std::uint32_t>(groups.size());
    statsData.groupEvents.clear();
    for (const Group &g : groups)
        statsData.groupEvents.push_back(g.events);
}

} // namespace astriflash::sim
