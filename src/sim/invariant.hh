/**
 * @file
 * Machine-checked simulator invariants.
 *
 * Two layers share one runtime gate (`checksEnabled()`):
 *
 * - SIM_CHECK / SIM_CHECK_MSG: inline hot-path assertions that panic
 *   when a condition fails. The condition is only evaluated while
 *   checks are enabled, so Release builds pay a single predictable
 *   branch per check. Debug builds and `-DASTRIFLASH_CHECKS=ON`
 *   Release builds enable the gate by default; tests can flip it at
 *   runtime with setChecksEnabled().
 *
 * - InvariantRegistry: whole-component audits. Every stateful
 *   component implements `checkInvariants(InvariantChecker &)` and is
 *   registered under its instance name; checkAll() sweeps the tree at
 *   configurable tick intervals and at quiesce, recording every
 *   violated condition (component, expression, file:line, tick) so a
 *   torture run can report all failures instead of dying on the first.
 *   With fail-fast set (the default inside System), the first sweep
 *   that finds a violation panics with the full report.
 */

#ifndef ASTRIFLASH_SIM_INVARIANT_HH
#define ASTRIFLASH_SIM_INVARIANT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "logging.hh"
#include "ticks.hh"

/**
 * Compile-time default for the runtime gate: on in Debug builds and in
 * Release builds configured with -DASTRIFLASH_CHECKS=ON.
 */
#if !defined(NDEBUG) || defined(ASTRIFLASH_CHECKS)
#define ASTRIFLASH_CHECKS_ENABLED 1
#else
#define ASTRIFLASH_CHECKS_ENABLED 0
#endif

namespace astriflash::sim {

namespace detail {

/**
 * Deliberately NOT constexpr: reaching this call inside a constant
 * expression makes the whole evaluation ill-formed, so a SIM_CHECK_CE
 * that fails at compile time is a compile error with this function's
 * name in the diagnostic. At runtime it panics like SIM_CHECK.
 */
[[noreturn]] void constexprCheckFailed(const char *expr,
                                       const char *file, int line);

} // namespace detail

/** True while simulator self-checks are armed. */
bool checksEnabled();

/** Arm or disarm simulator self-checks (tests, torture harnesses). */
void setChecksEnabled(bool on);

/** One violated invariant, with enough context to debug it. */
struct InvariantViolation {
    std::string component; ///< Registered instance name.
    std::string detail;    ///< Failed expression or message.
    std::string file;
    int line = 0;
    Ticks tick = 0; ///< Simulated time of the sweep.
};

/**
 * Collector handed to checkInvariants() implementations.
 *
 * Records failures instead of aborting so one sweep reports every
 * broken invariant; the registry decides whether to panic afterwards.
 */
class InvariantChecker
{
  public:
    /** Evaluate one invariant. @return @p ok, for chaining. */
    bool
    check(bool ok, const char *file, int line, const char *expr)
    {
        ++evaluated;
        if (!ok)
            record(file, line, expr);
        return ok;
    }

    /** Record a failure with a pre-formatted explanation. */
    bool
    fail(const char *file, int line, std::string msg)
    {
        ++evaluated;
        record(file, line, std::move(msg));
        return false;
    }

    /** Count a condition that held (SIM_INVARIANT_MSG success path). */
    bool
    pass()
    {
        ++evaluated;
        return true;
    }

    /** Component name the current sweep is inside. */
    const std::string &component() const { return componentName; }

    /** Simulated time of the current sweep. */
    Ticks tick() const { return now; }

    /** Conditions evaluated so far (across components). */
    std::uint64_t conditionsEvaluated() const { return evaluated; }

    /** Failures recorded so far (across components). */
    std::uint64_t failures() const
    {
        return static_cast<std::uint64_t>(out.size());
    }

    const std::vector<InvariantViolation> &violations() const
    {
        return out;
    }

  private:
    friend class InvariantRegistry;

    void
    enterComponent(std::string name, Ticks when)
    {
        componentName = std::move(name);
        now = when;
    }

    void
    record(const char *file, int line, std::string detail)
    {
        out.push_back(InvariantViolation{componentName,
                                         std::move(detail), file, line,
                                         now});
    }

    std::string componentName;
    Ticks now = 0;
    std::uint64_t evaluated = 0;
    std::vector<InvariantViolation> out;
};

/**
 * Named collection of component invariant hooks.
 *
 * Owners register a callback per component ("dcache.bc.msr" ->
 * lambda invoking that table's checkInvariants); checkAll() runs the
 * whole set and aggregates the results across sweeps.
 */
class InvariantRegistry
{
  public:
    using CheckFn = std::function<void(InvariantChecker &)>;

    InvariantRegistry() = default;
    InvariantRegistry(const InvariantRegistry &) = delete;
    InvariantRegistry &operator=(const InvariantRegistry &) = delete;

    /** Register @p component's invariant hook. */
    void
    add(std::string component, CheckFn fn)
    {
        entries.push_back(Entry{std::move(component), std::move(fn)});
    }

    /**
     * Panic at the end of any sweep that found violations (default).
     * Torture harnesses disable this to collect a full report.
     */
    void setFailFast(bool on) { failFast = on; }

    /**
     * Sweep every registered component at simulated time @p now.
     * @return violations found by this sweep.
     */
    std::uint64_t checkAll(Ticks now);

    /** Registered components. */
    std::size_t size() const { return entries.size(); }

    /** Completed sweeps. */
    std::uint64_t sweeps() const { return sweepCount; }

    /** Individual conditions evaluated across all sweeps. */
    std::uint64_t conditionsEvaluated() const { return evaluated; }

    /** Violations found across all sweeps. */
    std::uint64_t violationCount() const { return violationTotal; }

    /** Stored violations (capped at kMaxStored; the count is exact). */
    const std::vector<InvariantViolation> &violations() const
    {
        return stored;
    }

    /** Human-readable multi-line report of the stored violations. */
    std::string report() const;

  private:
    struct Entry {
        std::string component;
        CheckFn fn;
    };

    /** Keep the report bounded even if a bug fires every sweep. */
    static constexpr std::size_t kMaxStored = 64;

    std::vector<Entry> entries;
    std::vector<InvariantViolation> stored;
    std::uint64_t sweepCount = 0;
    std::uint64_t evaluated = 0;
    std::uint64_t violationTotal = 0;
    bool failFast = true;
};

} // namespace astriflash::sim

/**
 * Hot-path self-check: panics when @p cond fails and checks are armed.
 * Unlike a bare assert(), the gate is a runtime switch, so Release
 * builds with -DASTRIFLASH_CHECKS=ON (or setChecksEnabled(true)) do
 * not silently skip it.
 */
#define SIM_CHECK(cond)                                                       \
    do {                                                                      \
        if (::astriflash::sim::checksEnabled() && !(cond)) {                  \
            ASTRI_PANIC("SIM_CHECK failed: %s", #cond);                       \
        }                                                                     \
    } while (0)

/** SIM_CHECK with a formatted explanation. */
#define SIM_CHECK_MSG(cond, ...)                                              \
    do {                                                                      \
        if (::astriflash::sim::checksEnabled() && !(cond)) {                  \
            ASTRI_PANIC(__VA_ARGS__);                                         \
        }                                                                     \
    } while (0)

/**
 * SIM_CHECK usable inside constexpr functions. In a constant
 * evaluation a failing condition is a hard compile error (the branch
 * calls a non-constexpr function); at runtime it behaves exactly like
 * SIM_CHECK — gated, panicking with the failed expression.
 */
#define SIM_CHECK_CE(cond)                                                    \
    do {                                                                      \
        if (std::is_constant_evaluated()) {                                   \
            if (!(cond)) {                                                    \
                ::astriflash::sim::detail::constexprCheckFailed(              \
                    #cond, __FILE__, __LINE__);                               \
            }                                                                 \
        } else if (::astriflash::sim::checksEnabled() && !(cond)) {           \
            ::astriflash::sim::detail::constexprCheckFailed(                  \
                #cond, __FILE__, __LINE__);                                   \
        }                                                                     \
    } while (0)

/**
 * Record an invariant into the active checker inside a
 * checkInvariants() implementation. Evaluates to the condition.
 */
#define SIM_INVARIANT(chk, cond)                                              \
    (chk).check((cond), __FILE__, __LINE__, #cond)

/** SIM_INVARIANT with a formatted explanation on failure. */
#define SIM_INVARIANT_MSG(chk, cond, ...)                                     \
    ((cond) ? (chk).pass()                                                    \
            : (chk).fail(__FILE__, __LINE__,                                  \
                         ::astriflash::sim::detail::format(__VA_ARGS__)))

#endif // ASTRIFLASH_SIM_INVARIANT_HH
