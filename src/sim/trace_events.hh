/**
 * @file
 * Miss-lifecycle event tracing.
 *
 * A fixed-size ring buffer of typed events following one DRAM-cache
 * miss end to end: LLC miss -> MSR insert/dedup/stall -> flash read
 * issue/complete -> page fill -> thread resume (plus eviction, GC, and
 * scheduling edges). The sink is thread-global (one per host thread)
 * so components emit without plumbing a pointer through every
 * constructor, and parallel sweeps (sim::SweepRunner) each record into
 * an isolated ring; when disabled (the default) emit() is a single
 * branch on a bool — no heap allocation, no formatting, no lock — so
 * tracing costs nothing unless `--trace=FILE` turned it on.
 *
 * Events are drained as JSONL (one JSON object per line), which both
 * `jq` and Chrome's trace importers consume after a trivial transform;
 * see DESIGN.md for the schema.
 */

#ifndef ASTRIFLASH_SIM_TRACE_EVENTS_HH
#define ASTRIFLASH_SIM_TRACE_EVENTS_HH

#include <cstdint>
#include <ostream>
#include <vector>

#include "ticks.hh"

namespace astriflash::sim {

/** Typed miss-lifecycle trace points. */
enum class TracePoint : std::uint8_t {
    LlcMiss,          ///< Core's access missed the whole hierarchy.
    MsrInsert,        ///< BC allocated a Miss Status Row entry.
    MsrDedup,         ///< Miss merged onto an outstanding entry.
    MsrStall,         ///< MSR set full; miss queued behind it.
    FlashReadIssue,   ///< BC issued the 4 KB flash read.
    FlashReadDone,    ///< Flash data arrived at the BC.
    PageFill,         ///< Page installed into its DRAM-cache frame.
    PageEvict,        ///< Victim page moved to the evict buffer.
    EvictDrain,       ///< Evict-buffer entry written back to flash.
    GcBlocked,        ///< A read arrived while its plane GC'd.
    ThreadPark,       ///< Job halted on a miss (switch-on-miss).
    ThreadResume,     ///< Parked job rescheduled after its fill.
    JobStart,         ///< Job first scheduled on a core.
    JobFinish,        ///< Job retired its last op.
};

/** Stable wire name of a trace point ("llc_miss", "page_fill", ...). */
const char *tracePointName(TracePoint p);

/** One ring-buffer record (POD, 32 bytes). */
struct TraceRecord {
    Ticks tick = 0;
    std::uint64_t addr = 0;   ///< Page/block address (0 if n/a).
    std::uint64_t detail = 0; ///< Point-specific payload (latency,
                              ///< waiter count, job id...).
    std::uint32_t core = kNoCore;
    TracePoint point = TracePoint::LlcMiss;

    static constexpr std::uint32_t kNoCore = ~std::uint32_t{0};
};

/**
 * Per-host-thread trace sink.
 *
 * Disabled by default; enable(capacity) pre-allocates the ring so the
 * emit path never allocates. The ring keeps the newest records: once
 * full, new events overwrite the oldest (dropped() counts casualties).
 */
class Tracer
{
  public:
    /** The calling thread's sink (or the redirect target, if set). */
    static Tracer &instance();

    /**
     * Redirect this thread's instance() to @p sink (null restores the
     * thread-local default). sim::ParallelEngine workers execute a
     * system's events on behalf of the thread that owns the run, so
     * the owner's ring — the one --trace drains at exit — must be the
     * one they record into. Safe because at most one worker executes a
     * given exec group at a time and engine barriers order the
     * handoffs; there is still no synchronization on the emit path.
     */
    static void redirectThread(Tracer *sink);

    /** Pre-allocate @p capacity records and start recording. */
    void enable(std::size_t capacity);

    /** Stop recording and release the ring. */
    void disable();

    /** True while recording. */
    bool enabled() const { return active; }

    /** Records currently held (<= capacity). */
    std::size_t size() const;

    /** Events overwritten because the ring was full. */
    std::uint64_t dropped() const { return droppedCount; }

    /** Total events ever emitted while enabled. */
    std::uint64_t emitted() const { return emittedCount; }

    /** Forget buffered records (keeps the ring allocated). */
    void clear();

    /**
     * Record one event. Hot path: when disabled this is one predictable
     * branch; when enabled it is a store into the pre-allocated ring.
     */
    void
    emit(TracePoint point, Ticks tick, std::uint32_t core,
         std::uint64_t addr, std::uint64_t detail = 0)
    {
        if (!active)
            return;
        record(point, tick, core, addr, detail);
    }

    /** Write buffered records, oldest first, as JSONL. */
    void writeJsonl(std::ostream &os) const;

    /** Visit buffered records oldest first (tests). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        const std::size_t n = size();
        for (std::size_t i = 0; i < n; ++i)
            fn(ring[(start + i) % ring.size()]);
    }

  private:
    Tracer() = default;
    void record(TracePoint point, Ticks tick, std::uint32_t core,
                std::uint64_t addr, std::uint64_t detail);

    bool active = false;
    std::vector<TraceRecord> ring;
    std::size_t start = 0; ///< Oldest record when wrapped.
    std::size_t used = 0;  ///< Live records.
    std::uint64_t droppedCount = 0;
    std::uint64_t emittedCount = 0;
};

/** Convenience forwarder: Tracer::instance().emit(...). */
inline void
traceEvent(TracePoint point, Ticks tick, std::uint32_t core,
           std::uint64_t addr, std::uint64_t detail = 0)
{
    Tracer::instance().emit(point, tick, core, addr, detail);
}

} // namespace astriflash::sim

#endif // ASTRIFLASH_SIM_TRACE_EVENTS_HH
