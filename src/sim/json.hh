/**
 * @file
 * Minimal streaming JSON writer.
 *
 * Shared by the statistics registry (`--stats-json`), the trace sink
 * (`--trace`), and the bench binaries' machine-readable output, so
 * every producer escapes and formats values the same way. The writer
 * is deliberately tiny: objects, arrays, and scalar values, with
 * comma/indent bookkeeping handled internally. Output is deterministic
 * for identical call sequences (doubles use a fixed shortest-roundtrip
 * format), which the golden-stats tests rely on.
 */

#ifndef ASTRIFLASH_SIM_JSON_HH
#define ASTRIFLASH_SIM_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace astriflash::sim {

/** Streaming JSON emitter with automatic comma/indent handling. */
class JsonWriter
{
  public:
    /**
     * @param os      Destination stream.
     * @param pretty  Indent nested containers (2 spaces per level).
     */
    explicit JsonWriter(std::ostream &os, bool pretty = true);

    /** Escape @p s per RFC 8259 (quotes, backslash, control chars). */
    static std::string escape(std::string_view s);

    /** Render a double deterministically (non-finite becomes null). */
    static std::string number(double v);

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit an object key; the next emission is its value. */
    void key(std::string_view name);

    void value(std::string_view v);
    void value(const char *v) { value(std::string_view(v)); }
    void value(double v);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(int v) { value(static_cast<std::int64_t>(v)); }
    void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
    void value(bool v);
    void null();

    /** key() + value() in one call, any supported value type. */
    template <typename T>
    void
    field(std::string_view name, T v)
    {
        key(name);
        value(v);
    }

  private:
    /** Before a value/key: emit separator + newline/indent as needed. */
    void prefix(bool is_key);
    void indent();

    std::ostream &os;
    bool pretty;
    /** Per-open-container state: true once one element was emitted. */
    std::vector<bool> hasElement;
    bool pendingKey = false;
};

} // namespace astriflash::sim

#endif // ASTRIFLASH_SIM_JSON_HH
