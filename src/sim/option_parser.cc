#include "option_parser.hh"

#include <cstdio>
#include <cstdlib>

namespace astriflash::sim {

OptionParser::OptionParser(std::string program_name,
                           std::string description_text)
    : program(std::move(program_name)),
      description(std::move(description_text))
{
}

void
OptionParser::addString(const std::string &name, std::string *out,
                        const std::string &help)
{
    addCustom(name, "STR", help, [out](const std::string &v) {
        *out = v;
        return true;
    });
}

void
OptionParser::addUint(const std::string &name, std::uint64_t *out,
                      const std::string &help)
{
    addCustom(name, "N", help, [out](const std::string &v) {
        char *end = nullptr;
        const unsigned long long parsed = std::strtoull(v.c_str(), &end, 10);
        if (end == v.c_str() || *end != '\0')
            return false;
        *out = parsed;
        return true;
    });
}

void
OptionParser::addUint32(const std::string &name, std::uint32_t *out,
                        const std::string &help)
{
    addCustom(name, "N", help, [out](const std::string &v) {
        char *end = nullptr;
        const unsigned long long parsed = std::strtoull(v.c_str(), &end, 10);
        if (end == v.c_str() || *end != '\0' ||
            parsed > ~std::uint32_t{0}) {
            return false;
        }
        *out = static_cast<std::uint32_t>(parsed);
        return true;
    });
}

void
OptionParser::addDouble(const std::string &name, double *out,
                        const std::string &help)
{
    addCustom(name, "F", help, [out](const std::string &v) {
        char *end = nullptr;
        const double parsed = std::strtod(v.c_str(), &end);
        if (end == v.c_str() || *end != '\0')
            return false;
        *out = parsed;
        return true;
    });
}

void
OptionParser::addFlag(const std::string &name, bool *out,
                      const std::string &help)
{
    Option opt;
    opt.name = name;
    opt.help = help;
    opt.flag = out;
    options.push_back(std::move(opt));
}

void
OptionParser::addCustom(const std::string &name,
                        const std::string &value_name,
                        const std::string &help,
                        std::function<bool(const std::string &)> handler)
{
    Option opt;
    opt.name = name;
    opt.valueName = value_name;
    opt.help = help;
    opt.handler = std::move(handler);
    options.push_back(std::move(opt));
}

const OptionParser::Option *
OptionParser::find(const std::string &name) const
{
    for (const Option &opt : options) {
        if (opt.name == name)
            return &opt;
    }
    return nullptr;
}

OptionParser::Status
OptionParser::parse(int argc, const char *const *argv)
{
    errorMsg.clear();
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h")
            return Status::Help;
        if (arg.size() < 3 || arg.compare(0, 2, "--") != 0) {
            errorMsg = "unexpected argument '" + arg + "'";
            return Status::Error;
        }
        const std::size_t eq = arg.find('=');
        const std::string name =
            arg.substr(2, eq == std::string::npos ? std::string::npos
                                                  : eq - 2);
        const Option *opt = find(name);
        if (!opt) {
            errorMsg = "unknown flag '--" + name + "'";
            return Status::Error;
        }
        if (opt->flag) {
            if (eq != std::string::npos) {
                errorMsg = "flag '--" + name + "' takes no value";
                return Status::Error;
            }
            *opt->flag = true;
            continue;
        }
        if (eq == std::string::npos) {
            errorMsg = "flag '--" + name + "' needs =" + opt->valueName;
            return Status::Error;
        }
        const std::string value = arg.substr(eq + 1);
        if (!opt->handler(value)) {
            errorMsg = "bad value '" + value + "' for '--" + name + "'";
            return Status::Error;
        }
    }
    return Status::Ok;
}

void
OptionParser::parseOrExit(int argc, const char *const *argv)
{
    switch (parse(argc, argv)) {
      case Status::Ok:
        return;
      case Status::Help:
        std::fputs(usage().c_str(), stdout);
        std::exit(0);
      case Status::Error:
        std::fprintf(stderr, "%s: %s\n\n%s", program.c_str(),
                     errorMsg.c_str(), usage().c_str());
        std::exit(2);
    }
}

std::string
OptionParser::usage() const
{
    std::string out = "usage: " + program + " [flags]\n";
    if (!description.empty())
        out += "  " + description + "\n";
    out += "\nflags:\n";
    for (const Option &opt : options) {
        std::string lhs = "  --" + opt.name;
        if (!opt.valueName.empty())
            lhs += "=" + opt.valueName;
        if (lhs.size() < 26)
            lhs.resize(26, ' ');
        else
            lhs += ' ';
        out += lhs + opt.help + "\n";
    }
    out += "  --help                  show this message\n";
    return out;
}

} // namespace astriflash::sim
