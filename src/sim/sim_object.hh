/**
 * @file
 * Base class for named timing-model components.
 */

#ifndef ASTRIFLASH_SIM_SIM_OBJECT_HH
#define ASTRIFLASH_SIM_SIM_OBJECT_HH

#include <string>
#include <utility>

#include "event_queue.hh"
#include "ownership.hh"
#include "ticks.hh"

namespace astriflash::sim {

/**
 * A named component attached to an event queue.
 *
 * SimObjects own their statistics and expose them through name-prefixed
 * accessors; the queue is shared and owned by the enclosing system.
 *
 * Ownership (DESIGN.md §16): when an OwnershipAuditor is attached at
 * construction time, the object resolves its owning domain from the
 * queue it schedules on and declares itself in the registry. Event
 * callbacks that call auditDomain() then certify at runtime that they
 * execute only inside that domain.
 */
class SimObject
{
  public:
    /**
     * @param queue  Event queue this component schedules on.
     * @param name   Hierarchical instance name ("system.dramcache.fc").
     */
    SimObject(EventQueue &queue, std::string name)
        : eq(queue), objName(std::move(name))
    {
        if (OwnershipAuditor *a = OwnershipAuditor::current()) {
            ownAuditor = a;
            ownDomain = a->registry().domainOf(&queue);
            a->registry().declareComponent(objName, ownDomain);
        }
    }

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    /** Instance name. */
    const std::string &name() const { return objName; }

    /** Current simulated time. */
    Ticks curTick() const { return eq.curTick(); }

    /** The event queue this object schedules on. */
    EventQueue &eventQueue() { return eq; }

    /** Domain owning this object (kNoDomain when unaudited). */
    DomainId owningDomain() const { return ownDomain; }

  protected:
    /** Schedule a member callback @p delta ticks from now. */
    EventId
    scheduleIn(Ticks delta, EventQueue::Callback fn,
               EventPriority prio = EventPriority::Default)
    {
        return eq.scheduleIn(delta, std::move(fn), prio);
    }

    /**
     * Certify that the calling event callback is executing in this
     * object's owning domain. Place at the top of event-queue-invoked
     * entry points only — synchronous channel-drain paths legitimately
     * run in the peer's domain and must not be instrumented.
     */
    void
    auditDomain()
    {
        if (ownAuditor)
            ownAuditor->onCallback(objName.c_str(), ownDomain,
                                   eq.curTick());
    }

  private:
    EventQueue &eq;
    std::string objName;
    OwnershipAuditor *ownAuditor = nullptr;
    DomainId ownDomain = kNoDomain;
};

} // namespace astriflash::sim

#endif // ASTRIFLASH_SIM_SIM_OBJECT_HH
