/**
 * @file
 * Base class for named timing-model components.
 */

#ifndef ASTRIFLASH_SIM_SIM_OBJECT_HH
#define ASTRIFLASH_SIM_SIM_OBJECT_HH

#include <string>
#include <utility>

#include "event_queue.hh"
#include "ticks.hh"

namespace astriflash::sim {

/**
 * A named component attached to an event queue.
 *
 * SimObjects own their statistics and expose them through name-prefixed
 * accessors; the queue is shared and owned by the enclosing system.
 */
class SimObject
{
  public:
    /**
     * @param queue  Event queue this component schedules on.
     * @param name   Hierarchical instance name ("system.dramcache.fc").
     */
    SimObject(EventQueue &queue, std::string name)
        : eq(queue), objName(std::move(name))
    {
    }

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    /** Instance name. */
    const std::string &name() const { return objName; }

    /** Current simulated time. */
    Ticks curTick() const { return eq.curTick(); }

    /** The event queue this object schedules on. */
    EventQueue &eventQueue() { return eq; }

  protected:
    /** Schedule a member callback @p delta ticks from now. */
    EventId
    scheduleIn(Ticks delta, EventQueue::Callback fn,
               EventPriority prio = EventPriority::Default)
    {
        return eq.scheduleIn(delta, std::move(fn), prio);
    }

  private:
    EventQueue &eq;
    std::string objName;
};

} // namespace astriflash::sim

#endif // ASTRIFLASH_SIM_SIM_OBJECT_HH
