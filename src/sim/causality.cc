#include "causality.hh"

#include "logging.hh"

namespace astriflash::sim {

namespace {
// Construction-time attach point; SweepRunner builds one System per
// worker thread, so thread-local scoping keeps auditors disjoint.
// The attach scope is the sanctioned pattern for threading the
// per-system auditor through deep construction chains (baselined
// AF017).
thread_local CausalityAuditor *g_current = nullptr;
} // namespace

CausalityAuditor *
CausalityAuditor::current()
{
    return g_current;
}

CausalityAuditor::Scope::Scope(CausalityAuditor &a) : prev(g_current)
{
    g_current = &a;
}

CausalityAuditor::Scope::~Scope()
{
    g_current = prev;
}

std::uint32_t
CausalityAuditor::registerChannel(std::string name,
                                  ChannelContract contract)
{
    std::lock_guard<std::mutex> lk(mu);
    ChannelState st;
    st.name = std::move(name);
    st.contract = contract;
    channels.push_back(std::move(st));
    return static_cast<std::uint32_t>(channels.size() - 1);
}

const CausalityAuditor::ChannelState &
CausalityAuditor::channel(std::uint32_t ch) const
{
    ASTRI_ASSERT_MSG(ch < channels.size(),
                     "auditor channel handle %u out of range", ch);
    return channels[ch];
}

void
CausalityAuditor::violation(const std::string &channel,
                            std::string detail, Ticks tick)
{
    if (failFast) {
        ASTRI_PANIC("causality violation on %s at tick %llu: %s",
                    channel.c_str(),
                    static_cast<unsigned long long>(tick),
                    detail.c_str());
    }
    out.push_back(Violation{channel, std::move(detail), tick});
}

void
CausalityAuditor::onPush(std::uint32_t ch, std::uint64_t seq,
                         Ticks pushed_at, Ticks accepted_at)
{
    if (!checksEnabled())
        return;
    std::lock_guard<std::mutex> lk(mu);
    ChannelState &st = channels[ch];
    ++st.sends;
    ++sendsAuditedCount;
    if (accepted_at < pushed_at) {
        violation(st.name,
                  detail::format("message %llu accepted at %llu "
                                 "before its push at %llu",
                                 static_cast<unsigned long long>(seq),
                                 static_cast<unsigned long long>(
                                     accepted_at),
                                 static_cast<unsigned long long>(
                                     pushed_at)),
                  pushed_at);
    }
    if (st.sends > 1) {
        if (pushed_at < st.lastPushTick) {
            const Ticks skew = st.lastPushTick - pushed_at;
            if (st.contract.monotonePush) {
                violation(
                    st.name,
                    detail::format(
                        "declared-monotone channel pushed at %llu "
                        "after a push at %llu",
                        static_cast<unsigned long long>(pushed_at),
                        static_cast<unsigned long long>(
                            st.lastPushTick)),
                    pushed_at);
            } else if (skew > st.maxObservedSkew) {
                st.maxObservedSkew = skew;
            }
        }
    }
    if (pushed_at > st.lastPushTick)
        st.lastPushTick = pushed_at;
}

void
CausalityAuditor::onDeliver(std::uint32_t ch, std::uint64_t seq,
                            Ticks pushed_at, Ticks accepted_at,
                            Ticks consumed_at)
{
    if (!checksEnabled())
        return;
    std::lock_guard<std::mutex> lk(mu);
    ChannelState &st = channels[ch];
    ++st.deliveries;
    ++deliveriesAuditedCount;
    if (seq != st.nextDeliverSeq) {
        violation(st.name,
                  detail::format("message %llu consumed out of FIFO "
                                 "order (expected %llu)",
                                 static_cast<unsigned long long>(seq),
                                 static_cast<unsigned long long>(
                                     st.nextDeliverSeq)),
                  consumed_at);
    }
    st.nextDeliverSeq = seq + 1;
    if (consumed_at < accepted_at) {
        violation(st.name,
                  detail::format("message %llu consumed at %llu "
                                 "before its accept at %llu",
                                 static_cast<unsigned long long>(seq),
                                 static_cast<unsigned long long>(
                                     consumed_at),
                                 static_cast<unsigned long long>(
                                     accepted_at)),
                  consumed_at);
    }
    // The lookahead certificate: the consumer never observes a
    // message earlier than its push tick plus the declared channel
    // latency, so a conservative parallel engine could lag the
    // producer by minLatency without missing anything.
    const Ticks horizon = pushed_at + st.contract.minLatency;
    if (consumed_at < horizon) {
        violation(st.name,
                  detail::format(
                      "message %llu consumed at %llu inside the "
                      "declared lookahead (push %llu + minLatency "
                      "%llu = %llu)",
                      static_cast<unsigned long long>(seq),
                      static_cast<unsigned long long>(consumed_at),
                      static_cast<unsigned long long>(pushed_at),
                      static_cast<unsigned long long>(
                          st.contract.minLatency),
                      static_cast<unsigned long long>(horizon)),
                  consumed_at);
    }
    const Ticks lat =
        consumed_at >= pushed_at ? consumed_at - pushed_at : 0;
    if (lat < st.minObservedLatency)
        st.minObservedLatency = lat;
}

void
CausalityAuditor::checkInvariants(InvariantChecker &chk) const
{
    std::lock_guard<std::mutex> lk(mu);
    for (const Violation &v : out) {
        chk.fail(__FILE__, __LINE__,
                 detail::format("%s at tick %llu: %s",
                                v.channel.c_str(),
                                static_cast<unsigned long long>(v.tick),
                                v.detail.c_str()));
    }
    std::uint64_t sends = 0, deliveries = 0;
    for (const ChannelState &st : channels) {
        sends += st.sends;
        deliveries += st.deliveries;
        SIM_INVARIANT_MSG(chk, st.deliveries <= st.sends,
                          "%s: %llu deliveries outnumber %llu sends",
                          st.name.c_str(),
                          static_cast<unsigned long long>(
                              st.deliveries),
                          static_cast<unsigned long long>(st.sends));
        // The observed latency floor must respect the declared
        // lookahead (violations above would already have recorded
        // any breach; this pins the aggregate view).
        SIM_INVARIANT_MSG(chk,
                          st.minObservedLatency >=
                              st.contract.minLatency,
                          "%s: observed latency floor %llu under the "
                          "declared minLatency %llu",
                          st.name.c_str(),
                          static_cast<unsigned long long>(
                              st.minObservedLatency),
                          static_cast<unsigned long long>(
                              st.contract.minLatency));
    }
    SIM_INVARIANT(chk, sends == sendsAuditedCount);
    SIM_INVARIANT(chk, deliveries == deliveriesAuditedCount);
}

} // namespace astriflash::sim
