#include "sweep_runner.hh"

#include <algorithm>
#include <mutex>

#include "logging.hh"

namespace astriflash::sim {

SweepRunner::SweepRunner(unsigned jobs, HostClamp clamp)
    : jobCount(jobs == 0 ? hardwareJobs()
               : clamp == HostClamp::ToHardware
                   ? std::min(jobs, hardwareJobs())
                   : jobs)
{
}

unsigned
SweepRunner::hardwareJobs()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

void
SweepRunner::runIndexed(
    std::size_t n, const std::function<void(std::size_t)> &body) const
{
    if (n == 0)
        return;

    // Tasks are claimed through one atomic cursor, so workers stay
    // busy even when task runtimes are wildly uneven (a saturated
    // open-loop point can run 10x longer than a light-load one).
    std::atomic<std::size_t> next{0};
    std::mutex err_mu;
    std::size_t err_index = n;
    std::exception_ptr err;

    auto worker = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                body(i);
            } catch (...) {
                // Keep only the submission-order-first exception so
                // rethrow order does not depend on thread timing.
                std::lock_guard<std::mutex> lock(err_mu);
                if (i < err_index) {
                    err_index = i;
                    err = std::current_exception();
                }
            }
        }
    };

    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(jobCount, n));
    if (workers <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned w = 0; w < workers; ++w)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }

    if (err)
        std::rethrow_exception(err);
}

} // namespace astriflash::sim
