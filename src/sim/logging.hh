/**
 * @file
 * Error and status reporting, following the gem5 panic/fatal convention.
 *
 * - panic():  an internal invariant was violated (a simulator bug).
 *             Aborts so a debugger or core dump can capture state.
 * - fatal():  the user asked for something impossible (bad config).
 *             Exits with status 1.
 * - warn()/inform(): non-fatal status channels.
 */

#ifndef ASTRIFLASH_SIM_LOGGING_HH
#define ASTRIFLASH_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

namespace astriflash::sim {

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Minimal printf-style formatter returning a std::string. */
std::string format(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace detail

/** Suppress or enable warn()/inform() output (tests use this). */
void setQuiet(bool quiet);

/** @return true if status output is suppressed. */
bool quiet();

} // namespace astriflash::sim

/** Report an internal simulator bug and abort. */
#define ASTRI_PANIC(...)                                                      \
    ::astriflash::sim::detail::panicImpl(                                     \
        __FILE__, __LINE__, ::astriflash::sim::detail::format(__VA_ARGS__))

/** Report an unusable user configuration and exit(1). */
#define ASTRI_FATAL(...)                                                      \
    ::astriflash::sim::detail::fatalImpl(                                     \
        __FILE__, __LINE__, ::astriflash::sim::detail::format(__VA_ARGS__))

/** Report a suspicious-but-survivable condition. */
#define ASTRI_WARN(...)                                                       \
    ::astriflash::sim::detail::warnImpl(                                      \
        ::astriflash::sim::detail::format(__VA_ARGS__))

/** Report normal operating status. */
#define ASTRI_INFORM(...)                                                     \
    ::astriflash::sim::detail::informImpl(                                    \
        ::astriflash::sim::detail::format(__VA_ARGS__))

/** Panic unless a simulator invariant holds. */
#define ASTRI_ASSERT(cond)                                                    \
    do {                                                                      \
        if (!(cond)) {                                                        \
            ASTRI_PANIC("assertion failed: %s", #cond);                       \
        }                                                                     \
    } while (0)

/** Panic with a formatted explanation unless an invariant holds. */
#define ASTRI_ASSERT_MSG(cond, ...)                                           \
    do {                                                                      \
        if (!(cond)) {                                                        \
            ASTRI_PANIC(__VA_ARGS__);                                         \
        }                                                                     \
    } while (0)

#endif // ASTRIFLASH_SIM_LOGGING_HH
