#include "rng.hh"

#include <cmath>

namespace astriflash::sim {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    std::uint64_t z = (x += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    // Expand the seed so that nearby seeds give uncorrelated streams.
    std::uint64_t x = seed;
    for (auto &word : s)
        word = splitmix64(x);
    // All-zero state would be a fixed point; splitmix64 cannot produce
    // four zero outputs from any input, so no check is needed.
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0,1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t bound)
{
    if (bound == 0)
        return 0;
    // Debiased modulo via rejection of the uneven tail.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::uint64_t
Rng::uniformInt(std::uint64_t lo, std::uint64_t hi)
{
    return lo + uniformInt(hi - lo + 1);
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::exponential(double mean)
{
    // Inverse-CDF; guard against log(0).
    double u = uniform();
    if (u <= 0.0)
        u = 0x1.0p-53;
    return -mean * std::log(u);
}

double
Rng::normal()
{
    if (hasCachedNormal) {
        hasCachedNormal = false;
        return cachedNormal;
    }
    double u1 = uniform();
    if (u1 <= 0.0)
        u1 = 0x1.0p-53;
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedNormal = r * std::sin(theta);
    hasCachedNormal = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

std::uint64_t
Rng::poisson(double mean)
{
    if (mean <= 0.0)
        return 0;
    if (mean < 64.0) {
        // Knuth's product-of-uniforms method.
        const double limit = std::exp(-mean);
        double prod = uniform();
        std::uint64_t k = 0;
        while (prod > limit) {
            prod *= uniform();
            ++k;
        }
        return k;
    }
    // Normal approximation for large means.
    const double v = normal(mean, std::sqrt(mean));
    return v < 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
}

Rng
Rng::fork()
{
    return Rng(next());
}

} // namespace astriflash::sim
