#include "logging.hh"

#include <cstdarg>
#include <cstdio>
#include <stdexcept>

namespace astriflash::sim {

namespace {
// Log verbosity only; never read by a timing model, so it cannot
// leak state between simulated systems (baselined AF017).
bool g_quiet = false;
} // namespace

void
setQuiet(bool quiet)
{
    g_quiet = quiet;
}

bool
quiet()
{
    return g_quiet;
}

namespace detail {

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    const int len = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (len < 0) {
        va_end(args_copy);
        return std::string(fmt);
    }
    std::string out(static_cast<size_t>(len), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    va_end(args_copy);
    return out;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (!g_quiet)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (!g_quiet)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace astriflash::sim
