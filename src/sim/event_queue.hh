/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single global-ordered event queue drives every timing model in the
 * simulator. Events are arbitrary callables scheduled at an absolute
 * tick; ties are broken by an explicit priority and then by insertion
 * order, so simulations are fully deterministic.
 */

#ifndef ASTRIFLASH_SIM_EVENT_QUEUE_HH
#define ASTRIFLASH_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "invariant.hh"
#include "ticks.hh"

namespace astriflash::sim {

/** Opaque handle identifying a scheduled event (for cancellation). */
using EventId = std::uint64_t;

/** Sentinel returned for an event that could not be scheduled. */
inline constexpr EventId kInvalidEventId = 0;

/**
 * Tie-break priorities for events scheduled at the same tick.
 * Lower values run first.
 */
enum class EventPriority : int {
    ClockEdge = -10,   ///< Clock-like maintenance events.
    Default = 0,       ///< Ordinary model events.
    Stats = 10,        ///< End-of-quantum statistics sampling.
    Teardown = 100,    ///< Simulation exit bookkeeping.
};

/**
 * Deterministic discrete-event queue.
 *
 * Not thread-safe; the whole simulator is single-threaded by design
 * (determinism and debuggability outweigh host parallelism here).
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Ticks curTick() const { return now; }

    /**
     * Schedule @p fn to run at absolute time @p when.
     *
     * @param when  Absolute tick; must be >= curTick().
     * @param fn    Callable invoked when the event fires.
     * @param prio  Tie-break priority at equal ticks.
     * @return Handle usable with deschedule().
     */
    EventId schedule(Ticks when, Callback fn,
                     EventPriority prio = EventPriority::Default);

    /** Schedule @p fn to run @p delta ticks from now. */
    EventId
    scheduleIn(Ticks delta, Callback fn,
               EventPriority prio = EventPriority::Default)
    {
        return schedule(now + delta, std::move(fn), prio);
    }

    /**
     * Cancel a pending event.
     * @return true if the event was pending and is now cancelled.
     */
    bool deschedule(EventId id);

    /** Number of pending (non-cancelled) events. */
    std::size_t pending() const { return alive.size(); }

    /** True if no runnable events remain. */
    bool empty() const { return pending() == 0; }

    /**
     * Run events until the queue drains or @p limit is reached.
     * Events scheduled exactly at @p limit still run.
     * @return number of events executed.
     */
    std::uint64_t runUntil(Ticks limit);

    /** Run all events until the queue drains. */
    std::uint64_t run() { return runUntil(kTickNever); }

    /** Execute at most @p max_events events. @return events executed. */
    std::uint64_t runSteps(std::uint64_t max_events);

    /** Total events executed over the queue's lifetime. */
    std::uint64_t executed() const { return executedCount; }

    /**
     * Audit the kernel: every heap node is accounted alive or
     * cancelled, ids stay below the sequence counter, and no pending
     * event lies in the past.
     */
    void checkInvariants(InvariantChecker &chk) const;

  private:
    struct Entry {
        Ticks when;
        int prio;
        std::uint64_t seq;
        EventId id;
        Callback fn;
    };

    struct Later {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.seq > b.seq;
        }
    };

    /** Pop and run the single earliest event. Assumes non-empty heap. */
    void runOne();

    /** Drop the top heap node if it was cancelled. @return true if so. */
    bool skipCancelledTop();

    Ticks now = 0;
    std::uint64_t nextSeq = 1;
    std::uint64_t executedCount = 0;
    std::priority_queue<Entry, std::vector<Entry>, Later> heap;
    std::unordered_set<EventId> alive;
    std::unordered_set<EventId> cancelled;
};

} // namespace astriflash::sim

#endif // ASTRIFLASH_SIM_EVENT_QUEUE_HH
