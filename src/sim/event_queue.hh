/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single global-ordered event queue drives every timing model in the
 * simulator. Events are arbitrary callables scheduled at an absolute
 * tick; ties are broken by an explicit priority and then by insertion
 * order, so simulations are fully deterministic.
 *
 * Hot-path design (see DESIGN.md §9):
 *
 * - Callbacks are InlineFunction (small-buffer optimized), so a
 *   schedule() with a capture up to 48 bytes never touches the heap.
 * - The binary heap holds small POD nodes only; each node points into
 *   a slot table that owns the callback, so sift operations move
 *   24-byte PODs instead of type-erased callables.
 * - Cancellation is generation-tagged lazy deletion: deschedule()
 *   flips a bit in the slot (O(1), no hashing) and the node is
 *   discarded when it surfaces. When cancelled nodes exceed a fixed
 *   fraction of the heap, the heap is compacted in one O(n) pass, so
 *   tombstones cannot grow without bound.
 */

#ifndef ASTRIFLASH_SIM_EVENT_QUEUE_HH
#define ASTRIFLASH_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <vector>

#include "inline_fn.hh"
#include "invariant.hh"
#include "ticks.hh"

namespace astriflash::sim {

class CausalityAuditor;

/**
 * Opaque handle identifying a scheduled event (for cancellation).
 * Packs a slot index and a generation tag; a handle goes stale the
 * moment its event fires or is cancelled, and a stale handle can never
 * cancel the slot's next occupant.
 */
using EventId = std::uint64_t;

/**
 * Shared clock and sequence state for a group of queues executed in
 * one merged global order (sim::ParallelEngine exec groups).
 *
 * Queues that join a group read and advance the *same* current tick
 * and draw insertion sequence numbers from the *same* counter, so a
 * merged execution of N member queues assigns exactly the clock values
 * and tie-break keys a single queue holding every event would have —
 * the property the host-jobs byte-identity gate rests on
 * (DESIGN.md §15).
 */
struct EventQueueGroup {
    Ticks now = 0;
    std::uint64_t nextSeq = 1;
};

/** Sentinel returned for an event that could not be scheduled. */
inline constexpr EventId kInvalidEventId = 0;

/**
 * Tie-break priorities for events scheduled at the same tick.
 * Lower values run first.
 */
enum class EventPriority : int {
    ClockEdge = -10,   ///< Clock-like maintenance events.
    Default = 0,       ///< Ordinary model events.
    Stats = 10,        ///< End-of-quantum statistics sampling.
    Teardown = 100,    ///< Simulation exit bookkeeping.
};

/**
 * Deterministic discrete-event queue.
 *
 * Not thread-safe: each queue belongs to exactly one simulated system,
 * and one system runs on one host thread. Host parallelism comes from
 * running many isolated systems side by side (sim::SweepRunner), never
 * from sharing a queue.
 */
class EventQueue
{
  public:
    using Callback = InlineFunction<48>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Ticks curTick() const { return *clk; }

    /**
     * Share clock and sequence state with @p group (see
     * EventQueueGroup). Must be called before anything is scheduled:
     * a queue that already issued sequence numbers from its own
     * counter cannot merge tie-break spaces retroactively.
     */
    void joinGroup(EventQueueGroup &group);

    /** Sort key of the live head event, matching the internal
     *  comparator: ascending (when, prio, tie, seq). */
    struct HeadKey {
        Ticks when;
        std::int32_t prio;
        std::uint64_t tie;
        std::uint64_t seq;

        bool
        operator<(const HeadKey &o) const
        {
            if (when != o.when)
                return when < o.when;
            if (prio != o.prio)
                return prio < o.prio;
            if (tie != o.tie)
                return tie < o.tie;
            return seq < o.seq;
        }
    };

    /**
     * Key of the earliest runnable event, reaping any cancelled nodes
     * that surface on the way. @return false if the queue is empty.
     * The engine's merge loop pairs this with runSteps(1): the node
     * headKey() described is exactly the node runSteps pops next.
     */
    bool headKey(HeadKey &out);

    /** Identity of the clock/sequence state this queue uses; equal
     *  for queues joined to the same EventQueueGroup. */
    const void *groupKey() const { return clk; }

    /**
     * Schedule @p fn to run at absolute time @p when.
     *
     * @param when  Absolute tick; must be >= curTick().
     * @param fn    Callable invoked when the event fires.
     * @param prio  Tie-break priority at equal ticks.
     * @return Handle usable with deschedule().
     */
    EventId schedule(Ticks when, Callback fn,
                     EventPriority prio = EventPriority::Default);

    /** Schedule @p fn to run @p delta ticks from now. */
    EventId
    scheduleIn(Ticks delta, Callback fn,
               EventPriority prio = EventPriority::Default)
    {
        return schedule(*clk + delta, std::move(fn), prio);
    }

    /**
     * Cancel a pending event.
     * @return true if the event was pending and is now cancelled.
     */
    bool deschedule(EventId id);

    /** Number of pending (non-cancelled) events. */
    std::size_t
    pending() const
    {
        return heap.size() - cancelledCount;
    }

    /** True if no runnable events remain. */
    bool empty() const { return pending() == 0; }

    /**
     * Pre-size the heap and slot table for @p expected_events
     * simultaneously pending events, so steady-state scheduling never
     * reallocates. Callers derive the hint from their configuration
     * (cores, queue depths, MSHR/MSR capacities).
     */
    void reserve(std::size_t expected_events);

    /**
     * Run events until the queue drains or @p limit is reached.
     * Events scheduled exactly at @p limit still run.
     * @return number of events executed.
     */
    std::uint64_t runUntil(Ticks limit);

    /** Run all events until the queue drains. */
    std::uint64_t run() { return runUntil(kTickNever); }

    /** Execute at most @p max_events events. @return events executed. */
    std::uint64_t runSteps(std::uint64_t max_events);

    /** Total events executed over the queue's lifetime. */
    std::uint64_t executed() const { return executedCount; }

    /** Cancelled nodes still parked in the heap (tests, stats). */
    std::size_t cancelledInHeap() const { return cancelledCount; }

    /** Heap compactions performed over the queue's lifetime. */
    std::uint64_t compactions() const { return compactionCount; }

    /**
     * Audit the kernel: heap/slot cross-accounting, generation-tag
     * sanity, the compaction policy's tombstone bound, and no pending
     * event in the past.
     */
    void checkInvariants(InvariantChecker &chk) const;

    /**
     * True when the same-tick perturbation hook is compiled in
     * (checks builds only; plain Release compiles it out so the hot
     * comparator stays two branches).
     */
    static constexpr bool
    tiePerturbationCompiledIn()
    {
        return ASTRIFLASH_CHECKS_ENABLED != 0;
    }

    /**
     * Perturb same-tick tie-breaking (tools/detshake): events at
     * equal (when, prio) are ordered by a seeded permutation of
     * their insertion sequence instead of the sequence itself. Seed
     * 0 restores the exact unperturbed order. A correct simulation
     * produces byte-identical stats under every seed; any divergence
     * is an order-dependence bug.
     *
     * Fatal if @p seed is nonzero and the hook is compiled out.
     */
    void setTiePerturbation(std::uint64_t seed);

    /** Attach the causality auditor (null detaches). */
    void setAuditor(CausalityAuditor *a) { auditor = a; }

    /**
     * Compaction policy: compact when more than kCompactDenominator-th
     * of a heap larger than kCompactMinHeap nodes is tombstones.
     * Exposed for tests and the invariant audit.
     */
    static constexpr std::size_t kCompactMinHeap = 64;
    static constexpr std::size_t kCompactDenominator = 2;

  private:
    /** POD heap node; the callback lives in slots[slot]. */
    struct Node {
        Ticks when;
        std::int32_t prio;
        std::uint32_t slot;
        std::uint64_t seq; ///< Insertion order, tie-break of last resort.
#if ASTRIFLASH_CHECKS_ENABLED
        /** Perturbed tie key: equals seq at seed 0, a seeded
         *  permutation of it otherwise (see setTiePerturbation). */
        std::uint64_t tie;
#endif
    };

    /** Callback owner + liveness state for one in-flight event. */
    struct Slot {
        Callback fn;
        std::uint32_t gen = 1; ///< Bumped on release; 0 is never used.
        bool busy = false;      ///< Scheduled and not yet fired/reaped.
        bool cancelled = false; ///< deschedule() seen; reap on surface.
    };

    /** Max-heap comparator on "later runs first popped last". */
    static bool
    later(const Node &a, const Node &b)
    {
        if (a.when != b.when)
            return a.when > b.when;
        if (a.prio != b.prio)
            return a.prio > b.prio;
#if ASTRIFLASH_CHECKS_ENABLED
        if (a.tie != b.tie)
            return a.tie > b.tie;
#endif
        return a.seq > b.seq;
    }

    static EventId
    packId(std::uint32_t slot, std::uint32_t gen)
    {
        return (static_cast<EventId>(slot) << 32) | gen;
    }

    /** Push a node and restore the heap property (sift-up). */
    void heapPush(const Node &n);

    /** Pop the root node and restore the heap property (sift-down). */
    Node heapPop();

    /** Return @p slot to the free list and invalidate its handles. */
    void releaseSlot(std::uint32_t slot);

    /** Drop every cancelled node in one pass and re-heapify. */
    void compact();

    /** True when the tombstone fraction calls for compaction. */
    bool
    wantCompaction() const
    {
        return heap.size() > kCompactMinHeap &&
               cancelledCount * kCompactDenominator > heap.size();
    }

    /**
     * Clock and sequence counter. Standalone queues (the default) use
     * their own storage; queues merged into an exec group point both
     * at the shared EventQueueGroup so every member sees one global
     * clock and one tie-break sequence space. One extra indirection on
     * the schedule/run paths; kernel_bench showed it in the noise.
     */
    EventQueueGroup ownState;
    Ticks *clk = &ownState.now;
    std::uint64_t *seqCtr = &ownState.nextSeq;

    std::uint64_t tieSeed = 0;
    CausalityAuditor *auditor = nullptr;
    std::uint64_t executedCount = 0;
    std::uint64_t compactionCount = 0;
    std::size_t cancelledCount = 0;
    std::vector<Node> heap; ///< Binary heap, root at index 0.
    std::vector<Slot> slots;
    std::vector<std::uint32_t> freeSlots;
};

} // namespace astriflash::sim

#endif // ASTRIFLASH_SIM_EVENT_QUEUE_HH
