#include "event_queue.hh"

#include <algorithm>

#include "causality.hh"
#include "logging.hh"

namespace astriflash::sim {

#if ASTRIFLASH_CHECKS_ENABLED
namespace {
/** splitmix64: uniform, invertible 64-bit mix for the tie keys. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}
} // namespace
#endif

void
EventQueue::setTiePerturbation(std::uint64_t seed)
{
    if (seed != 0 && !tiePerturbationCompiledIn()) {
        ASTRI_FATAL("tie-break perturbation requested (seed %llu) but "
                    "the hook is compiled out; rebuild with "
                    "-DASTRIFLASH_CHECKS=ON",
                    static_cast<unsigned long long>(seed));
    }
    tieSeed = seed;
}

void
EventQueue::joinGroup(EventQueueGroup &group)
{
    ASTRI_ASSERT_MSG(heap.empty() && executedCount == 0,
                     "joinGroup() on a queue that already ran");
    clk = &group.now;
    seqCtr = &group.nextSeq;
}

bool
EventQueue::headKey(HeadKey &out)
{
    while (!heap.empty()) {
        const Node &top = heap.front();
        if (slots[top.slot].cancelled) {
            const Node dead = heapPop();
            releaseSlot(dead.slot);
            --cancelledCount;
            continue;
        }
        out.when = top.when;
        out.prio = top.prio;
#if ASTRIFLASH_CHECKS_ENABLED
        out.tie = top.tie;
#else
        out.tie = top.seq;
#endif
        out.seq = top.seq;
        return true;
    }
    return false;
}

EventId
EventQueue::schedule(Ticks when, Callback fn, EventPriority prio)
{
    ASTRI_ASSERT_MSG(when >= *clk,
                     "scheduling into the past: when=%llu now=%llu",
                     static_cast<unsigned long long>(when),
                     static_cast<unsigned long long>(*clk));
    std::uint32_t slot;
    if (!freeSlots.empty()) {
        slot = freeSlots.back();
        freeSlots.pop_back();
    } else {
        ASTRI_ASSERT_MSG(slots.size() < (1ull << 32),
                         "event slot table overflow");
        slot = static_cast<std::uint32_t>(slots.size());
        slots.emplace_back();
    }
    Slot &s = slots[slot];
    s.fn = std::move(fn);
    s.busy = true;
    s.cancelled = false;
    const std::uint64_t seq = (*seqCtr)++;
#if ASTRIFLASH_CHECKS_ENABLED
    // Seed 0 keeps tie == seq, bit-for-bit the unperturbed order.
    const std::uint64_t tie = tieSeed ? mix64(seq ^ tieSeed) : seq;
    heapPush(Node{when, static_cast<std::int32_t>(prio), slot, seq,
                  tie});
#else
    heapPush(Node{when, static_cast<std::int32_t>(prio), slot, seq});
#endif
    return packId(slot, s.gen);
}

bool
EventQueue::deschedule(EventId id)
{
    // Only events that are still pending can be cancelled;
    // descheduling an already-fired or bogus id is a harmless no-op
    // (the generation tag catches handles whose slot was reused).
    const auto slot = static_cast<std::uint32_t>(id >> 32);
    const auto gen = static_cast<std::uint32_t>(id);
    if (slot >= slots.size())
        return false;
    Slot &s = slots[slot];
    if (!s.busy || s.cancelled || s.gen != gen)
        return false;
    s.cancelled = true;
    s.fn.reset(); // release captured resources eagerly
    ++cancelledCount;
    if (wantCompaction())
        compact();
    return true;
}

void
EventQueue::reserve(std::size_t expected_events)
{
    heap.reserve(expected_events);
    slots.reserve(expected_events);
    freeSlots.reserve(expected_events);
}

void
EventQueue::heapPush(const Node &n)
{
    heap.push_back(n);
    std::push_heap(heap.begin(), heap.end(), later);
}

EventQueue::Node
EventQueue::heapPop()
{
    std::pop_heap(heap.begin(), heap.end(), later);
    const Node n = heap.back();
    heap.pop_back();
    return n;
}

void
EventQueue::releaseSlot(std::uint32_t slot)
{
    Slot &s = slots[slot];
    s.fn.reset();
    s.busy = false;
    s.cancelled = false;
    if (++s.gen == 0) // generation 0 is reserved for kInvalidEventId
        s.gen = 1;
    freeSlots.push_back(slot);
}

void
EventQueue::compact()
{
    // One O(n) pass: drop every tombstone, then rebuild the heap.
    auto keep = heap.begin();
    for (Node &n : heap) {
        if (slots[n.slot].cancelled)
            releaseSlot(n.slot);
        else
            *keep++ = n;
    }
    heap.erase(keep, heap.end());
    std::make_heap(heap.begin(), heap.end(), later);
    cancelledCount = 0;
    ++compactionCount;
}

std::uint64_t
EventQueue::runUntil(Ticks limit)
{
    std::uint64_t n = 0;
    while (!heap.empty()) {
        const Node &top = heap.front();
        if (slots[top.slot].cancelled) {
            // Tombstone surfaced: reap it without running anything.
            const Node dead = heapPop();
            releaseSlot(dead.slot);
            --cancelledCount;
            continue;
        }
        if (top.when > limit)
            break;
        const Node node = heapPop();
        ASTRI_ASSERT(node.when >= *clk);
        if (auditor)
            auditor->onEventFired(*clk, node.when);
        *clk = node.when;
        // Move the callback out and release the slot *before* running:
        // the callback may schedule (reusing this slot) or grow the
        // slot table, either of which would invalidate an in-place
        // reference.
        Callback fn = std::move(slots[node.slot].fn);
        releaseSlot(node.slot);
        ++executedCount;
        fn();
        ++n;
    }
    return n;
}

std::uint64_t
EventQueue::runSteps(std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (n < max_events && !heap.empty()) {
        const Node &top = heap.front();
        if (slots[top.slot].cancelled) {
            const Node dead = heapPop();
            releaseSlot(dead.slot);
            --cancelledCount;
            continue;
        }
        const Node node = heapPop();
        ASTRI_ASSERT(node.when >= *clk);
        if (auditor)
            auditor->onEventFired(*clk, node.when);
        *clk = node.when;
        Callback fn = std::move(slots[node.slot].fn);
        releaseSlot(node.slot);
        ++executedCount;
        fn();
        ++n;
    }
    return n;
}

void
EventQueue::checkInvariants(InvariantChecker &chk) const
{
    // Slot-table / heap cross-accounting.
    std::size_t busy = 0, cancelled = 0;
    for (const Slot &s : slots) {
        if (s.busy)
            ++busy;
        if (s.cancelled) {
            ++cancelled;
            SIM_INVARIANT_MSG(chk, s.busy,
                              "cancelled slot not busy");
        }
        SIM_INVARIANT_MSG(chk, s.gen != 0,
                          "slot holds the reserved generation 0");
    }
    SIM_INVARIANT_MSG(chk, busy == heap.size(),
                      "%zu busy slots != %zu heap nodes", busy,
                      heap.size());
    SIM_INVARIANT_MSG(chk, cancelled == cancelledCount,
                      "%zu cancelled slots != tracked count %zu",
                      cancelled, cancelledCount);
    SIM_INVARIANT_MSG(chk, busy + freeSlots.size() == slots.size(),
                      "%zu busy + %zu free != %zu slots", busy,
                      freeSlots.size(), slots.size());

    // Compaction policy bounds the tombstone fraction: deschedule()
    // compacts eagerly, so a sweep can never observe an over-threshold
    // heap.
    SIM_INVARIANT_MSG(chk,
                      heap.size() <= kCompactMinHeap ||
                          cancelledCount * kCompactDenominator <=
                              heap.size(),
                      "%zu tombstones in a %zu-node heap exceed the "
                      "compaction threshold",
                      cancelledCount, heap.size());

    for (std::size_t i = 0; i < heap.size(); ++i) {
        const Node &n = heap[i];
        SIM_INVARIANT_MSG(chk,
                          n.slot < slots.size() && slots[n.slot].busy,
                          "heap node %zu references dead slot %u", i,
                          n.slot);
        SIM_INVARIANT_MSG(chk, n.seq < *seqCtr,
                          "heap node seq %llu outside issued range",
                          static_cast<unsigned long long>(n.seq));
        // Time only advances to the earliest pending node, so nothing
        // in the heap (tombstones included) may lie in the past.
        SIM_INVARIANT_MSG(chk, n.when >= *clk,
                          "heap node at %llu lies before now %llu",
                          static_cast<unsigned long long>(n.when),
                          static_cast<unsigned long long>(*clk));
        if (i > 0) {
            const Node &parent = heap[(i - 1) / 2];
            SIM_INVARIANT_MSG(chk, !later(parent, n),
                              "heap property violated at node %zu", i);
        }
    }
}

} // namespace astriflash::sim
