#include "event_queue.hh"

#include "logging.hh"

namespace astriflash::sim {

EventId
EventQueue::schedule(Ticks when, Callback fn, EventPriority prio)
{
    ASTRI_ASSERT_MSG(when >= now,
                     "scheduling into the past: when=%llu now=%llu",
                     static_cast<unsigned long long>(when),
                     static_cast<unsigned long long>(now));
    const EventId id = nextSeq;
    heap.push(Entry{when, static_cast<int>(prio), nextSeq, id,
                    std::move(fn)});
    alive.insert(id);
    ++nextSeq;
    return id;
}

bool
EventQueue::deschedule(EventId id)
{
    // Only events that are still pending can be cancelled; descheduling
    // an already-fired or bogus id is a harmless no-op.
    if (alive.erase(id) == 0)
        return false;
    cancelled.insert(id);
    return true;
}

void
EventQueue::runOne()
{
    Entry e = heap.top();
    heap.pop();
    ASTRI_ASSERT(e.when >= now);
    alive.erase(e.id);
    now = e.when;
    ++executedCount;
    e.fn();
}

bool
EventQueue::skipCancelledTop()
{
    if (auto it = cancelled.find(heap.top().id); it != cancelled.end()) {
        cancelled.erase(it);
        heap.pop();
        return true;
    }
    return false;
}

std::uint64_t
EventQueue::runUntil(Ticks limit)
{
    std::uint64_t n = 0;
    while (!heap.empty()) {
        if (skipCancelledTop())
            continue;
        if (heap.top().when > limit)
            break;
        runOne();
        ++n;
    }
    return n;
}

void
EventQueue::checkInvariants(InvariantChecker &chk) const
{
    SIM_INVARIANT_MSG(chk,
                      heap.size() == alive.size() + cancelled.size(),
                      "%zu heap nodes != %zu alive + %zu cancelled",
                      heap.size(), alive.size(), cancelled.size());
    for (const EventId id : alive) {
        SIM_INVARIANT_MSG(chk, id != kInvalidEventId && id < nextSeq,
                          "alive id %llu outside the issued range",
                          static_cast<unsigned long long>(id));
        SIM_INVARIANT_MSG(chk, cancelled.count(id) == 0,
                          "event %llu is both alive and cancelled",
                          static_cast<unsigned long long>(id));
    }
    for (const EventId id : cancelled) {
        SIM_INVARIANT_MSG(chk, id != kInvalidEventId && id < nextSeq,
                          "cancelled id %llu outside the issued range",
                          static_cast<unsigned long long>(id));
    }
    if (!heap.empty()) {
        SIM_INVARIANT_MSG(chk, heap.top().when >= now,
                          "earliest event at %llu lies before now %llu",
                          static_cast<unsigned long long>(
                              heap.top().when),
                          static_cast<unsigned long long>(now));
    }
}

std::uint64_t
EventQueue::runSteps(std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (n < max_events && !heap.empty()) {
        if (skipCancelledTop())
            continue;
        runOne();
        ++n;
    }
    return n;
}

} // namespace astriflash::sim
