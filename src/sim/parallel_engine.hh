/**
 * @file
 * Conservative parallel discrete-event engine (Chandy–Misra style,
 * quantum barriers).
 *
 * A simulation is partitioned into *domains*, each owning one
 * sim::EventQueue. Directed *links* between domains declare the
 * conservative lookahead of the communication path they model — for
 * the AstriFlash system these come straight from the per-channel
 * sim::ChannelContract minLatency manifest (DESIGN.md §14). Between
 * quantum barriers a domain may execute every event up to its
 * *horizon*, min over inbound cross-group links of
 * (source committed clock, channel stamp watermark) + lookahead: no
 * message that could still arrive can be earlier, so conservative
 * execution never violates causality.
 *
 * Domains that share simulator state outside the channel seam (the
 * frontside controller, the BC shards, and the flash fabric still
 * share page tags, the DRAM model, and synchronous reply paths) are
 * placed in one *exec group*. A group executes as a unit: one worker
 * thread at a time runs a K-way merge over the member queues in exact
 * global (when, prio, tie, seq) order, with all members sharing one
 * clock and one sequence counter (EventQueueGroup). That makes a
 * group's execution bit-identical to the same events in a single
 * queue — the host-jobs byte-identity guarantee (DESIGN.md §15) —
 * while distinct groups run concurrently on the worker pool.
 *
 * Cross-group communication uses post(): thread-safe mailboxes whose
 * contents are delivered at the next barrier in deterministic
 * (when, prio, source domain, source order) order, so the delivery
 * schedule is independent of worker timing.
 */

#ifndef ASTRIFLASH_SIM_PARALLEL_ENGINE_HH
#define ASTRIFLASH_SIM_PARALLEL_ENGINE_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "event_queue.hh"
#include "ownership.hh"
#include "ticks.hh"

namespace astriflash::sim {

class ParallelEngine
{
  public:
    using DomainId = std::uint32_t;
    using GroupId = std::uint32_t;

    struct Config {
        /** Worker threads; <= 1 executes every round inline. */
        unsigned hostJobs = 1;
        /**
         * Per-group event budget between barriers. The legacy
         * System::run() loop checks its stop condition every 20000
         * events; a single-group engine run with the same budget
         * stops at the same executed-event boundary, which the
         * byte-identity gate requires.
         */
        std::uint64_t roundEvents = 20000;
    };

    /** Per-round hooks, all invoked on the coordinating thread. */
    struct RunHooks {
        /** Checked before every round; true ends the run. */
        std::function<bool()> stop;
        /** After each barrier, with the global committed-clock floor. */
        std::function<void(Ticks)> atBarrier;
        /** Run once in each spawned worker before any event executes
         *  (thread-local setup: tracer redirect and the like). */
        std::function<void()> workerInit;
    };

    struct Stats {
        std::uint64_t rounds = 0;      ///< Group rounds executed.
        std::uint64_t barriers = 0;    ///< Quantum barriers crossed.
        std::uint64_t events = 0;      ///< Events run by the engine.
        std::uint64_t postsDelivered = 0;
        /** Rounds cut short by a horizon (not budget/drain): how often
         *  conservative synchronization actually bit. */
        std::uint64_t horizonStalls = 0;
        /** Exec groups the run partitioned into (1 merged group when
         *  the pipeline is off; 1 + BC shards when it is on). */
        std::uint32_t groups = 0;
        /** Events executed per exec group, indexed in group-id order —
         *  the partition's load-balance evidence (bench/parallel_bench
         *  publishes it next to the speedup numbers). */
        std::vector<std::uint64_t> groupEvents;
    };

    explicit ParallelEngine(Config cfg);
    ParallelEngine(const ParallelEngine &) = delete;
    ParallelEngine &operator=(const ParallelEngine &) = delete;

    /**
     * Register a domain executing @p queue. Domains with the same
     * @p group id form one exec group and must already share an
     * EventQueueGroup (EventQueue::joinGroup) when the group has more
     * than one member; run() verifies this.
     */
    DomainId addDomain(std::string name, EventQueue &queue,
                       GroupId group);

    /**
     * Declare a communication path @p src -> @p dst with conservative
     * @p lookahead ticks: an event executing in src at tick T only
     * ever causes dst work at >= T + lookahead. Cross-group links
     * need lookahead > 0 (verified at run()); intra-group links are
     * recorded for telemetry but impose no bound — the merged group
     * order is already exact.
     *
     * @p watermark, when provided, returns the earliest stamp sitting
     * undelivered in the modeled channel (kTickNever when idle) — the
     * BoundedChannel stamp watermark — tightening the horizon input
     * from "source clock" to "source clock or oldest in-flight
     * stamp, whichever is earlier".
     */
    void addLink(DomainId src, DomainId dst, Ticks lookahead,
                 std::function<Ticks()> watermark = {});

    /**
     * Schedule @p fn at absolute tick @p when on @p dst's queue from
     * an event executing in @p src. Thread-safe; the event is
     * delivered at the next barrier. @p when must respect every
     * declared src->dst lookahead (the destination queue's
     * monotonicity check catches violations).
     */
    void post(DomainId src, DomainId dst, Ticks when,
              EventQueue::Callback fn,
              EventPriority prio = EventPriority::Default);

    /**
     * Attach the system's ownership auditor (DESIGN.md §16): each
     * engine domain resolves its registry domain id from its queue,
     * and runGroupRound publishes it through
     * OwnershipAuditor::ExecScope while executing that domain's
     * events. Thread-local publication only — never touches stats.
     */
    void setOwnership(OwnershipAuditor *a) { ownershipAuditor = a; }

    /**
     * Run rounds until every queue and mailbox drains or hooks.stop
     * returns true. May be called once per engine instance.
     */
    void run(const RunHooks &hooks = {});

    const Stats &stats() const { return statsData; }

    /** Worker threads the last run() actually spawned. */
    unsigned workersSpawned() const { return spawnedWorkers; }

  private:
    struct Link {
        DomainId src;
        Ticks lookahead;
        std::function<Ticks()> watermark;
        bool crossGroup = false; // resolved in prepare()
    };

    struct Domain {
        std::string name;
        EventQueue *q;
        GroupId group;
        std::vector<Link> inbound;
        Ticks committed = 0; ///< Null-message fixpoint clock.
        Ticks horizon = kTickNever;
        std::uint64_t postSeq = 0; ///< Orders this domain's posts.
        /** Ownership-registry domain id (resolved in prepare()). */
        std::uint32_t ownerTag = kNoDomain;
    };

    struct Group {
        GroupId id;
        std::vector<DomainId> members;
        bool ranThisRound = false;
        /** Lifetime event tally; only the worker holding the group
         *  touches it, and the poolMu handshake publishes it. */
        std::uint64_t events = 0;
    };

    /** A cross-group event parked until the next barrier. */
    struct Post {
        Ticks when;
        std::int32_t prio;
        DomainId src;
        DomainId dst;
        std::uint64_t srcSeq;
        EventQueue::Callback fn;
    };

    void prepare();
    void computeHorizons();
    bool allDrained() const;
    bool groupQueuesEmpty(const Group &g) const;
    std::uint64_t runGroupRound(Group &g);
    void deliverPosts();
    void workerMain(const RunHooks &hooks);

    Config cfg;
    std::vector<Domain> domains;
    std::vector<Group> groups;
    Stats statsData;
    OwnershipAuditor *ownershipAuditor = nullptr;
    bool prepared = false;
    unsigned spawnedWorkers = 0;

    // Per-round state. roundWork is built by the coordinator while
    // workers are parked; workers update the tallies under poolMu.
    std::vector<Group *> roundWork;
    std::uint64_t roundExecuted = 0;
    std::uint64_t roundHorizonStalls = 0;

    // Cross-group mailbox; append under postMu, drained by the
    // coordinator between rounds.
    std::mutex postMu;
    std::vector<Post> mailbox;

    // Worker pool handshake: the coordinator publishes a round under
    // poolMu and bumps the epoch; workers claim groups through
    // nextGroup and report completion through activeWorkers. The
    // mutex chain is also what hands each group's simulator state
    // from round to round with proper happens-before edges.
    std::mutex poolMu;
    std::condition_variable workCv;
    std::condition_variable doneCv;
    std::uint64_t epoch = 0;
    bool quitWorkers = false;
    unsigned activeWorkers = 0;
    std::size_t nextGroup = 0;
    std::vector<std::thread> workers;
};

} // namespace astriflash::sim

#endif // ASTRIFLASH_SIM_PARALLEL_ENGINE_HH
