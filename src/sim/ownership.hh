/**
 * @file
 * Domain-ownership model: makes "which domain owns which state" a
 * declared, runtime-checked property (DESIGN.md §16).
 *
 * The conservative parallel engine (DESIGN.md §15) partitions the
 * System into domains (FC+cores, one per BC shard), but today all of
 * them are fused into a single exec group because the DramCache facade
 * still pumps synchronous state across the FC↔BC boundary. This layer
 * names the ownership structure so that coupling becomes visible and
 * enforceable:
 *
 *  - OwnershipRegistry: the vocabulary. Domains are registered by
 *    (name, EventQueue*) — the queue pointer is the domain key, since
 *    every component schedules on exactly one queue. Components and
 *    channel endpoints declare their owners against it.
 *
 *  - OwnershipAuditor: the runtime teeth. ParallelEngine (and the
 *    legacy single-queue loop) publish a thread-local current-domain
 *    id while executing events; instrumented SimObject callbacks
 *    verify they run only in their owning domain. Cross-domain
 *    touches are permitted only at quantum barriers and through
 *    channels; the facade's deliberate synchronous crossings are
 *    pre-registered and counted (never violations) so the measured
 *    coupling graph (`aflint --ownership-report`, DESIGN.md §16) can
 *    be certified against what actually runs.
 *
 * Arming follows SIM_CHECK: hooks early-return unless checksEnabled().
 * Counters are deliberately NOT part of the stats tree: arming checks
 * must never change the golden stats JSON.
 */

#ifndef ASTRIFLASH_SIM_OWNERSHIP_HH
#define ASTRIFLASH_SIM_OWNERSHIP_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "invariant.hh"
#include "ticks.hh"

namespace astriflash::sim {

/** Dense id of an execution domain (an EventQueue's partition). */
using DomainId = std::uint32_t;

/** "No domain": unresolved owner, or execution outside any domain. */
inline constexpr DomainId kNoDomain = static_cast<DomainId>(-1);

/**
 * The ownership vocabulary of one simulated system: its domains
 * (keyed by event-queue identity), the components each domain owns,
 * and the declared producer/consumer endpoints of every channel.
 */
class OwnershipRegistry
{
  public:
    struct Component {
        std::string name;
        DomainId owner = kNoDomain;
    };

    struct Channel {
        std::string name;
        DomainId producer = kNoDomain;
        DomainId consumer = kNoDomain;
    };

    OwnershipRegistry() = default;
    OwnershipRegistry(const OwnershipRegistry &) = delete;
    OwnershipRegistry &operator=(const OwnershipRegistry &) = delete;

    /**
     * Register a domain keyed by its event queue's identity.
     * Re-registering the same key returns the existing id.
     */
    DomainId addDomain(std::string name, const void *queue_key);

    /** Domain owning @p queue_key, or kNoDomain if unregistered. */
    DomainId domainOf(const void *queue_key) const;

    const std::string &domainName(DomainId d) const;
    std::size_t domainCount() const { return domains.size(); }

    /** A component declared itself owned by @p owner. */
    void declareComponent(std::string component, DomainId owner);
    const std::vector<Component> &components() const { return comps; }

    /** A channel declared its endpoint domains. */
    void declareChannel(std::string channel, DomainId producer,
                        DomainId consumer);
    const std::vector<Channel> &channels() const { return chans; }

  private:
    struct Domain {
        std::string name;
        const void *key = nullptr;
    };

    std::vector<Domain> domains;
    std::vector<Component> comps;
    std::vector<Channel> chans;
};

/**
 * Runtime enforcement of the ownership declarations. One auditor per
 * System; components find it via the thread-local attach scope during
 * construction (mirroring CausalityAuditor), and the engines publish
 * the executing domain through ExecScope while running events.
 */
class OwnershipAuditor
{
  public:
    /** One ownership violation, with enough context to debug it. */
    struct Violation {
        std::string component;
        std::string detail;
        Ticks tick = 0;
    };

    /**
     * One pre-registered, deliberately-synchronous cross-domain edge
     * (the facade allowlist). Observed counts feed certification of
     * the static coupling report; they are never violations.
     */
    struct CrossingState {
        std::string name;
        DomainId from = kNoDomain;
        DomainId to = kNoDomain;
        std::uint64_t count = 0;
        Ticks lastTick = 0;
    };

    explicit OwnershipAuditor(OwnershipRegistry &r) : reg(r) {}
    OwnershipAuditor(const OwnershipAuditor &) = delete;
    OwnershipAuditor &operator=(const OwnershipAuditor &) = delete;

    OwnershipRegistry &registry() { return reg; }
    const OwnershipRegistry &registry() const { return reg; }

    /**
     * Panic on the first violation (default, mirrors
     * CausalityAuditor); tests disable this to collect a report.
     */
    void setFailFast(bool on) { failFast = on; }

    /** Declare an allowlisted crossing. @return its handle. */
    std::uint32_t registerCrossing(std::string name, DomainId from,
                                   DomainId to);

    /** The crossing @p id was exercised at @p now. */
    void
    onCrossing(std::uint32_t id, Ticks now)
    {
        if (!checksEnabled())
            return;
        CrossingState &st = crossings[id];
        ++st.count;
        ++crossingsObservedCount;
        st.lastTick = now;
    }

    /**
     * An instrumented component callback is executing. Verifies the
     * thread's current domain matches @p owner; execution outside any
     * domain (tests driving queues directly) and unresolved owners
     * are exempt.
     */
    void
    onCallback(const char *component, DomainId owner, Ticks now)
    {
        if (!checksEnabled())
            return;
        // Armed split runs audit callbacks from every engine worker;
        // crossings, by contrast, exist only in fused (single-worker)
        // partitions, so onCrossing stays unsynchronized.
        callbacksAuditedCount.fetch_add(1, std::memory_order_relaxed);
        const DomainId cur = currentDomain();
        if (cur == kNoDomain || owner == kNoDomain || cur == owner)
            return;
        callbackViolation(component, owner, cur, now);
    }

    std::size_t crossingCount() const { return crossings.size(); }
    const CrossingState &crossing(std::uint32_t id) const;

    std::uint64_t callbacksAudited() const
    {
        return callbacksAuditedCount.load(std::memory_order_relaxed);
    }
    std::uint64_t crossingsObserved() const
    {
        return crossingsObservedCount;
    }

    std::uint64_t violationCount() const
    {
        return static_cast<std::uint64_t>(out.size());
    }
    const std::vector<Violation> &violations() const { return out; }

    /**
     * Invariant-sweep hook: re-reports every stored violation into
     * @p chk and cross-checks the crossing accounting.
     */
    void checkInvariants(InvariantChecker &chk) const;

    /** Auditor components attach to during construction (or null). */
    static OwnershipAuditor *current();

    /**
     * Installs @p a as the construction-time attach point for the
     * current thread; restores the previous one on destruction.
     */
    class Scope
    {
      public:
        explicit Scope(OwnershipAuditor &a);
        ~Scope();
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        OwnershipAuditor *prev;
    };

    /** Domain the current thread is executing events for. */
    static DomainId currentDomain();

    /**
     * Publishes @p d as the current thread's executing domain for the
     * enclosed event execution; restores the previous domain on
     * destruction. ParallelEngine wraps each runSteps(1) of a group
     * member in one; System's legacy loop wraps the whole run.
     */
    class ExecScope
    {
      public:
        explicit ExecScope(DomainId d);
        ~ExecScope();
        ExecScope(const ExecScope &) = delete;
        ExecScope &operator=(const ExecScope &) = delete;

      private:
        DomainId prev;
    };

  private:
    void callbackViolation(const char *component, DomainId owner,
                           DomainId cur, Ticks now);

    OwnershipRegistry &reg;
    std::vector<CrossingState> crossings;
    /** Guards the violation log; onCallback's counter is atomic so
     *  the clean path stays lock-free across engine workers. */
    mutable std::mutex vioMu;
    std::vector<Violation> out;
    std::atomic<std::uint64_t> callbacksAuditedCount{0};
    std::uint64_t crossingsObservedCount = 0;
    bool failFast = true;
};

} // namespace astriflash::sim

#endif // ASTRIFLASH_SIM_OWNERSHIP_HH
