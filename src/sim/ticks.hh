/**
 * @file
 * Simulation time base.
 *
 * All simulated time is kept in integer picoseconds ("ticks") so that
 * mixed-frequency components (2.5 GHz cores, DRAM at tCK ~0.75 ns, flash
 * at tens of microseconds) can interoperate without rounding drift.
 */

#ifndef ASTRIFLASH_SIM_TICKS_HH
#define ASTRIFLASH_SIM_TICKS_HH

#include <cstdint>

#include "strong_types.hh"

namespace astriflash::sim {

/** Simulated time in picoseconds. */
using Ticks = std::uint64_t;

/**
 * A count of clock cycles in some ClockDomain. Distinct from Ticks so
 * a cycle count can never be passed where picoseconds are expected (or
 * vice versa) without going through a ClockDomain conversion; aflint
 * rule AF009 additionally flags suspicious mixing sites.
 */
using Cycles = StrongCount<struct CyclesTag, std::uint64_t>;

/** Build a cycle count from a plain integer. */
constexpr Cycles
cycles(std::uint64_t n)
{
    return Cycles(n);
}

/** Signed tick difference (for latency arithmetic that may underflow). */
using TickDelta = std::int64_t;

/** An invalid / "never" timestamp. */
inline constexpr Ticks kTickNever = ~Ticks{0};

/** One picosecond, the base unit. */
inline constexpr Ticks kPicosecond = 1;
/** One nanosecond in ticks. */
inline constexpr Ticks kNanosecond = 1000;
/** One microsecond in ticks. */
inline constexpr Ticks kMicrosecond = 1000 * kNanosecond;
/** One millisecond in ticks. */
inline constexpr Ticks kMillisecond = 1000 * kMicrosecond;
/** One second in ticks. */
inline constexpr Ticks kSecond = 1000 * kMillisecond;

/** Convert picoseconds to ticks (identity; for readability). */
constexpr Ticks
picoseconds(std::uint64_t ps)
{
    return ps;
}

/** Convert nanoseconds to ticks. */
constexpr Ticks
nanoseconds(std::uint64_t ns)
{
    return ns * kNanosecond;
}

/** Convert microseconds to ticks. */
constexpr Ticks
microseconds(std::uint64_t us)
{
    return us * kMicrosecond;
}

/** Convert milliseconds to ticks. */
constexpr Ticks
milliseconds(std::uint64_t ms)
{
    return ms * kMillisecond;
}

/** Convert ticks to (fractional) nanoseconds. */
constexpr double
toNanoseconds(Ticks t)
{
    return static_cast<double>(t) / static_cast<double>(kNanosecond);
}

/** Convert ticks to (fractional) microseconds. */
constexpr double
toMicroseconds(Ticks t)
{
    return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}

/** Convert ticks to (fractional) seconds. */
constexpr double
toSeconds(Ticks t)
{
    return static_cast<double>(t) / static_cast<double>(kSecond);
}

/**
 * Fixed-frequency clock domain that converts between cycles and ticks.
 *
 * The period is stored in integer picoseconds; frequencies that do not
 * divide 1e12 evenly (e.g. 3 GHz) are rounded to the nearest picosecond,
 * which introduces <0.2% error — negligible for the µs-scale phenomena
 * studied here.
 */
class ClockDomain
{
  public:
    /** Construct from a frequency in Hz. */
    explicit constexpr ClockDomain(std::uint64_t freq_hz)
        : periodTicks(kSecond / freq_hz), freqHz(freq_hz)
    {
    }

    /** Clock period in ticks. */
    constexpr Ticks period() const { return periodTicks; }

    /** Frequency in Hz as configured. */
    constexpr std::uint64_t frequency() const { return freqHz; }

    /** Convert a cycle count to ticks. */
    constexpr Ticks
    cycles(Cycles n) const
    {
        // aflint-allow(AF011): the ClockDomain is the sanctioned
        // Cycles<->Ticks conversion point.
        return n.raw() * periodTicks;
    }

    /** Convert a plain integer cycle count to ticks. */
    constexpr Ticks
    cycles(std::uint64_t n) const
    {
        return n * periodTicks;
    }

    /** Convert ticks to whole elapsed cycles (floor). */
    constexpr Cycles
    ticksToCycles(Ticks t) const
    {
        return Cycles(t / periodTicks);
    }

    /** Round a timestamp up to the next clock edge (inclusive). */
    constexpr Ticks
    nextEdge(Ticks now) const
    {
        const Ticks rem = now % periodTicks;
        return rem == 0 ? now : now + (periodTicks - rem);
    }

  private:
    Ticks periodTicks;
    std::uint64_t freqHz;
};

} // namespace astriflash::sim

#endif // ASTRIFLASH_SIM_TICKS_HH
