#include "trace_events.hh"

#include "json.hh"
#include "logging.hh"

namespace astriflash::sim {

const char *
tracePointName(TracePoint p)
{
    switch (p) {
      case TracePoint::LlcMiss:
        return "llc_miss";
      case TracePoint::MsrInsert:
        return "msr_insert";
      case TracePoint::MsrDedup:
        return "msr_dedup";
      case TracePoint::MsrStall:
        return "msr_stall";
      case TracePoint::FlashReadIssue:
        return "flash_read_issue";
      case TracePoint::FlashReadDone:
        return "flash_read_done";
      case TracePoint::PageFill:
        return "page_fill";
      case TracePoint::PageEvict:
        return "page_evict";
      case TracePoint::EvictDrain:
        return "evict_drain";
      case TracePoint::GcBlocked:
        return "gc_blocked";
      case TracePoint::ThreadPark:
        return "thread_park";
      case TracePoint::ThreadResume:
        return "thread_resume";
      case TracePoint::JobStart:
        return "job_start";
      case TracePoint::JobFinish:
        return "job_finish";
    }
    return "unknown";
}

namespace {
// Per-thread redirect target (see Tracer::redirectThread).
thread_local Tracer *g_redirect = nullptr;
} // namespace

Tracer &
Tracer::instance()
{
    // One sink per host thread: a simulation owns its thread for the
    // duration of a run (SweepRunner runs whole systems per thread),
    // so per-thread sinks give each parallel simulation an isolated
    // tracer with zero synchronization on the emit path. Engine
    // workers redirect to the run owner's sink instead.
    if (g_redirect)
        return *g_redirect;
    thread_local Tracer tracer;
    return tracer;
}

void
Tracer::redirectThread(Tracer *sink)
{
    g_redirect = sink;
}

void
Tracer::enable(std::size_t capacity)
{
    ASTRI_ASSERT(capacity > 0);
    ring.assign(capacity, TraceRecord{});
    start = 0;
    used = 0;
    droppedCount = 0;
    emittedCount = 0;
    active = true;
}

void
Tracer::disable()
{
    active = false;
    ring.clear();
    ring.shrink_to_fit();
    start = 0;
    used = 0;
}

std::size_t
Tracer::size() const
{
    return used;
}

void
Tracer::clear()
{
    start = 0;
    used = 0;
    droppedCount = 0;
    emittedCount = 0;
}

void
Tracer::record(TracePoint point, Ticks tick, std::uint32_t core,
               std::uint64_t addr, std::uint64_t detail)
{
    TraceRecord &slot = ring[(start + used) % ring.size()];
    if (used == ring.size()) {
        // Ring full: the slot being written is the oldest record.
        start = (start + 1) % ring.size();
        ++droppedCount;
    } else {
        ++used;
    }
    slot.tick = tick;
    slot.addr = addr;
    slot.detail = detail;
    slot.core = core;
    slot.point = point;
    ++emittedCount;
}

void
Tracer::writeJsonl(std::ostream &os) const
{
    forEach([&os](const TraceRecord &r) {
        // One compact JSON object per line (JSONL).
        JsonWriter w(os, /*pretty=*/false);
        w.beginObject();
        w.field("tick", r.tick);
        w.field("event", tracePointName(r.point));
        if (r.core != TraceRecord::kNoCore)
            w.field("core", static_cast<std::uint64_t>(r.core));
        w.field("addr", r.addr);
        w.field("detail", r.detail);
        w.endObject();
        os << '\n';
    });
}

} // namespace astriflash::sim
