/**
 * @file
 * Statistics collection.
 *
 * Tail latency is the paper's headline metric, so the histogram is an
 * HDR-style log-linear structure: values are bucketed into octaves with
 * 64 linear sub-buckets each, giving <=1.6% relative error at any
 * percentile while using O(kB) memory regardless of sample count.
 *
 * The registry is a component tree: every simulated component registers
 * its typed stats (Counter, Average, Histogram) under a stable dotted
 * namespace ("dcache.bc.msr.occupancy"), and the full tree renders as
 * either human-readable "name = value" lines or nested JSON
 * (`--stats-json`). Registration is non-owning — the stats live in the
 * components and the registry holds pointers — so dumping always
 * reflects live values.
 */

#ifndef ASTRIFLASH_SIM_STATS_HH
#define ASTRIFLASH_SIM_STATS_HH

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace astriflash::sim {

class JsonWriter;

/** Simple monotonically increasing event counter. */
class Counter
{
  public:
    /** Increment by @p n (default 1). */
    void inc(std::uint64_t n = 1) { count += n; }

    /** Current value. */
    std::uint64_t value() const { return count; }

    /** Reset to zero (between measurement phases). */
    void reset() { count = 0; }

  private:
    std::uint64_t count = 0;
};

/** Running mean/min/max accumulator for a scalar sample stream. */
class Average
{
  public:
    /** Record one sample. */
    void
    sample(double v)
    {
        sum += v;
        ++n;
        if (v < minV)
            minV = v;
        if (v > maxV)
            maxV = v;
    }

    /** Number of samples recorded. */
    std::uint64_t count() const { return n; }

    /** Sum of samples. */
    double total() const { return sum; }

    /** Arithmetic mean (0 if empty). */
    double mean() const { return n ? sum / static_cast<double>(n) : 0.0; }

    /** Smallest sample (+inf if empty). */
    double min() const { return minV; }

    /** Largest sample (-inf if empty). */
    double max() const { return maxV; }

    /** Forget all samples. */
    void
    reset()
    {
        sum = 0.0;
        n = 0;
        minV = std::numeric_limits<double>::infinity();
        maxV = -std::numeric_limits<double>::infinity();
    }

  private:
    double sum = 0.0;
    std::uint64_t n = 0;
    double minV = std::numeric_limits<double>::infinity();
    double maxV = -std::numeric_limits<double>::infinity();
};

/**
 * Log-linear (HDR-style) histogram over non-negative integer values.
 *
 * Bucket layout: values < kSubBuckets land in exact unit buckets;
 * above that, each power-of-two octave is split into kSubBuckets
 * linear sub-buckets, bounding relative error by 1/kSubBuckets.
 */
class Histogram
{
  public:
    Histogram() = default;

    /** Record one sample. */
    void sample(std::uint64_t v);

    /** Record @p weight occurrences of @p v. */
    void sampleN(std::uint64_t v, std::uint64_t weight);

    /**
     * Pre-size the bucket array to cover values up to @p max_value, so
     * sampling in that range never reallocates. Buckets otherwise grow
     * on demand (O(log max) growths over a histogram's lifetime);
     * components with a configured ceiling (e.g. maxSimTicks bounds
     * every latency) call this once at construction.
     */
    void reserveFor(std::uint64_t max_value);

    /** Number of samples. */
    std::uint64_t count() const { return n; }

    /** Sum of all samples. */
    double total() const { return sum; }

    /** Arithmetic mean (0 if empty). */
    double mean() const { return n ? sum / static_cast<double>(n) : 0.0; }

    /** Smallest recorded sample (0 if empty). */
    std::uint64_t min() const { return n ? minV : 0; }

    /** Largest recorded sample (0 if empty). */
    std::uint64_t max() const { return n ? maxV : 0; }

    /**
     * Value at quantile @p q in [0,1] (e.g. 0.99 for p99).
     * Returns the representative (upper-bound) value of the bucket
     * containing the q-th sample; 0 if empty.
     */
    std::uint64_t percentile(double q) const;

    /** Forget all samples. */
    void reset();

    /** Merge another histogram's samples into this one. */
    void merge(const Histogram &other);

  private:
    static constexpr std::uint32_t kSubBucketBits = 6;
    static constexpr std::uint64_t kSubBuckets = 1ull << kSubBucketBits;

    static std::uint32_t bucketIndex(std::uint64_t v);
    static std::uint64_t bucketUpperBound(std::uint32_t idx);

    /** Grow the bucket array to make @p idx addressable. */
    void growTo(std::uint32_t idx);

    /** Demand-grown (see reserveFor); index via bucketIndex. */
    std::vector<std::uint64_t> buckets;
    std::uint64_t n = 0;
    double sum = 0.0;
    std::uint64_t minV = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t maxV = 0;
};

/**
 * Hierarchical registry of named statistics.
 *
 * A registry node holds typed leaf stats plus child registries; the
 * root of the tree belongs to the enclosing system. Components obtain
 * their node with subRegistry("dcache.bc") (dotted paths create
 * intermediate nodes) and register their stats by leaf name, yielding
 * stable fully-qualified names like "dcache.bc.msr.occupancy".
 */
class StatRegistry
{
  public:
    StatRegistry() = default;
    StatRegistry(const StatRegistry &) = delete;
    StatRegistry &operator=(const StatRegistry &) = delete;

    /**
     * Register a live scalar value under @p name.
     *
     * Every registration carries a short human-readable description
     * (enforced by `tools/aflint`); `describe()` renders the
     * resulting data dictionary.
     *
     * @deprecated Prefer the typed registrations below where a typed
     *             stat exists; bare scalar pointers dump a single
     *             number and cannot render distributions.
     */
    void registerScalar(const std::string &name, const double *value,
                        const char *desc);

    /** Register a live integer value (peaks, occupancies) under
     *  @p name. */
    void registerUint(const std::string &name,
                      const std::uint64_t *value, const char *desc);

    /** Register a counter under @p name. */
    void registerCounter(const std::string &name, const Counter *counter,
                         const char *desc);

    /** Register a mean/min/max accumulator under @p name. */
    void registerAverage(const std::string &name, const Average *avg,
                         const char *desc);

    /** Register a latency/occupancy histogram under @p name. */
    void registerHistogram(const std::string &name,
                           const Histogram *hist, const char *desc);

    /**
     * Description of direct leaf @p name in this node ("" if the leaf
     * does not exist).
     */
    const std::string &leafDescription(const std::string &name) const;

    /**
     * Render the subtree's data dictionary: one sorted
     * "full.name: description" line per leaf stat.
     */
    std::string describe() const;

    /**
     * Child registry at dotted @p path relative to this node, created
     * on first use. Returned reference stays valid for the lifetime of
     * this registry.
     */
    StatRegistry &subRegistry(const std::string &path);

    /** Child node, or nullptr if @p path was never registered. */
    const StatRegistry *findSub(const std::string &path) const;

    /**
     * Render "name = value" lines for the whole subtree, sorted by
     * fully-qualified dotted name. Histograms and averages render as
     * one line per derived quantity (count/mean/min/max and p50, p99,
     * p999 for histograms).
     */
    std::string dump() const;

    /** Render the subtree as nested JSON (one object per component). */
    std::string dumpJson() const;

    /** Emit the subtree into an in-flight JSON document. */
    void writeJson(JsonWriter &w) const;

    /**
     * Visit every leaf stat in the subtree with its fully-qualified
     * dotted name, in sorted order (dump() order).
     */
    void forEachStat(
        const std::function<void(const std::string &name)> &fn) const;

    /** Direct child names (one path segment), sorted. */
    std::vector<std::string> childNames() const;

  private:
    enum class LeafKind { Scalar, Uint, Counter, Average, Hist };

    struct Leaf {
        LeafKind kind;
        const void *ptr;
        std::string desc;
    };

    /** Validate and build a leaf entry. */
    static Leaf makeLeaf(LeafKind kind, const void *ptr,
                         const char *desc);

    /** Accumulate "full.name = value" lines for sorting. */
    void collectLines(const std::string &prefix,
                      std::vector<std::string> *lines) const;
    void collectNames(const std::string &prefix,
                      std::vector<std::string> *names) const;
    void collectDescriptions(const std::string &prefix,
                             std::vector<std::string> *lines) const;

    std::map<std::string, Leaf> leaves;
    std::map<std::string, std::unique_ptr<StatRegistry>> children;
};

} // namespace astriflash::sim

#endif // ASTRIFLASH_SIM_STATS_HH
