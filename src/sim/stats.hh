/**
 * @file
 * Statistics collection.
 *
 * Tail latency is the paper's headline metric, so the histogram is an
 * HDR-style log-linear structure: values are bucketed into octaves with
 * 64 linear sub-buckets each, giving <=1.6% relative error at any
 * percentile while using O(kB) memory regardless of sample count.
 */

#ifndef ASTRIFLASH_SIM_STATS_HH
#define ASTRIFLASH_SIM_STATS_HH

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace astriflash::sim {

/** Simple monotonically increasing event counter. */
class Counter
{
  public:
    /** Increment by @p n (default 1). */
    void inc(std::uint64_t n = 1) { count += n; }

    /** Current value. */
    std::uint64_t value() const { return count; }

    /** Reset to zero (between measurement phases). */
    void reset() { count = 0; }

  private:
    std::uint64_t count = 0;
};

/** Running mean/min/max accumulator for a scalar sample stream. */
class Average
{
  public:
    /** Record one sample. */
    void
    sample(double v)
    {
        sum += v;
        ++n;
        if (v < minV)
            minV = v;
        if (v > maxV)
            maxV = v;
    }

    /** Number of samples recorded. */
    std::uint64_t count() const { return n; }

    /** Sum of samples. */
    double total() const { return sum; }

    /** Arithmetic mean (0 if empty). */
    double mean() const { return n ? sum / static_cast<double>(n) : 0.0; }

    /** Smallest sample (+inf if empty). */
    double min() const { return minV; }

    /** Largest sample (-inf if empty). */
    double max() const { return maxV; }

    /** Forget all samples. */
    void
    reset()
    {
        sum = 0.0;
        n = 0;
        minV = std::numeric_limits<double>::infinity();
        maxV = -std::numeric_limits<double>::infinity();
    }

  private:
    double sum = 0.0;
    std::uint64_t n = 0;
    double minV = std::numeric_limits<double>::infinity();
    double maxV = -std::numeric_limits<double>::infinity();
};

/**
 * Log-linear (HDR-style) histogram over non-negative integer values.
 *
 * Bucket layout: values < kSubBuckets land in exact unit buckets;
 * above that, each power-of-two octave is split into kSubBuckets
 * linear sub-buckets, bounding relative error by 1/kSubBuckets.
 */
class Histogram
{
  public:
    Histogram();

    /** Record one sample. */
    void sample(std::uint64_t v);

    /** Record @p weight occurrences of @p v. */
    void sampleN(std::uint64_t v, std::uint64_t weight);

    /** Number of samples. */
    std::uint64_t count() const { return n; }

    /** Sum of all samples. */
    double total() const { return sum; }

    /** Arithmetic mean (0 if empty). */
    double mean() const { return n ? sum / static_cast<double>(n) : 0.0; }

    /** Smallest recorded sample (0 if empty). */
    std::uint64_t min() const { return n ? minV : 0; }

    /** Largest recorded sample (0 if empty). */
    std::uint64_t max() const { return n ? maxV : 0; }

    /**
     * Value at quantile @p q in [0,1] (e.g. 0.99 for p99).
     * Returns the representative (upper-bound) value of the bucket
     * containing the q-th sample; 0 if empty.
     */
    std::uint64_t percentile(double q) const;

    /** Forget all samples. */
    void reset();

    /** Merge another histogram's samples into this one. */
    void merge(const Histogram &other);

  private:
    static constexpr std::uint32_t kSubBucketBits = 6;
    static constexpr std::uint64_t kSubBuckets = 1ull << kSubBucketBits;

    static std::uint32_t bucketIndex(std::uint64_t v);
    static std::uint64_t bucketUpperBound(std::uint32_t idx);

    std::vector<std::uint64_t> buckets;
    std::uint64_t n = 0;
    double sum = 0.0;
    std::uint64_t minV = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t maxV = 0;
};

/**
 * Named collection of statistics for one component, used for uniform
 * end-of-run reporting.
 */
class StatRegistry
{
  public:
    /** Register a live scalar value under @p name. */
    void registerScalar(const std::string &name, const double *value);

    /** Register a counter under @p name. */
    void registerCounter(const std::string &name, const Counter *counter);

    /** Render "name = value" lines sorted by name. */
    std::string dump() const;

  private:
    std::map<std::string, const double *> scalars;
    std::map<std::string, const Counter *> counters;
};

} // namespace astriflash::sim

#endif // ASTRIFLASH_SIM_STATS_HH
