#include "ownership.hh"

#include "logging.hh"

namespace astriflash::sim {

namespace {
// Construction-time attach point; SweepRunner builds one System per
// worker thread, so thread-local scoping keeps auditors disjoint
// (same sanctioned pattern as CausalityAuditor's attach scope).
thread_local OwnershipAuditor *g_current = nullptr;

// Domain the thread is currently executing events for. Published by
// ParallelEngine::runGroupRound / System's legacy loop via ExecScope;
// kNoDomain outside event execution (construction, tests driving
// queues directly).
thread_local DomainId g_execDomain = kNoDomain;
} // namespace

DomainId
OwnershipRegistry::addDomain(std::string name, const void *queue_key)
{
    for (std::size_t i = 0; i < domains.size(); ++i) {
        if (domains[i].key == queue_key)
            return static_cast<DomainId>(i);
    }
    domains.push_back(Domain{std::move(name), queue_key});
    return static_cast<DomainId>(domains.size() - 1);
}

DomainId
OwnershipRegistry::domainOf(const void *queue_key) const
{
    for (std::size_t i = 0; i < domains.size(); ++i) {
        if (domains[i].key == queue_key)
            return static_cast<DomainId>(i);
    }
    return kNoDomain;
}

const std::string &
OwnershipRegistry::domainName(DomainId d) const
{
    ASTRI_ASSERT_MSG(d < domains.size(),
                     "domain id %u out of range", d);
    return domains[d].name;
}

void
OwnershipRegistry::declareComponent(std::string component,
                                    DomainId owner)
{
    comps.push_back(Component{std::move(component), owner});
}

void
OwnershipRegistry::declareChannel(std::string channel,
                                  DomainId producer, DomainId consumer)
{
    chans.push_back(Channel{std::move(channel), producer, consumer});
}

OwnershipAuditor *
OwnershipAuditor::current()
{
    return g_current;
}

OwnershipAuditor::Scope::Scope(OwnershipAuditor &a) : prev(g_current)
{
    g_current = &a;
}

OwnershipAuditor::Scope::~Scope()
{
    g_current = prev;
}

DomainId
OwnershipAuditor::currentDomain()
{
    return g_execDomain;
}

OwnershipAuditor::ExecScope::ExecScope(DomainId d) : prev(g_execDomain)
{
    g_execDomain = d;
}

OwnershipAuditor::ExecScope::~ExecScope()
{
    g_execDomain = prev;
}

std::uint32_t
OwnershipAuditor::registerCrossing(std::string name, DomainId from,
                                   DomainId to)
{
    CrossingState st;
    st.name = std::move(name);
    st.from = from;
    st.to = to;
    crossings.push_back(std::move(st));
    return static_cast<std::uint32_t>(crossings.size() - 1);
}

const OwnershipAuditor::CrossingState &
OwnershipAuditor::crossing(std::uint32_t id) const
{
    ASTRI_ASSERT_MSG(id < crossings.size(),
                     "crossing handle %u out of range", id);
    return crossings[id];
}

void
OwnershipAuditor::callbackViolation(const char *component,
                                    DomainId owner, DomainId cur,
                                    Ticks now)
{
    const std::string owner_name = owner < reg.domainCount()
                                       ? reg.domainName(owner)
                                       : "?";
    const std::string cur_name =
        cur < reg.domainCount() ? reg.domainName(cur) : "?";
    std::string detail = detail::format(
        "callback ran in domain %s but the component is owned by %s",
        cur_name.c_str(), owner_name.c_str());
    if (failFast) {
        ASTRI_PANIC("ownership violation on %s at tick %llu: %s",
                    component, static_cast<unsigned long long>(now),
                    detail.c_str());
    }
    std::lock_guard<std::mutex> lk(vioMu);
    out.push_back(Violation{component, std::move(detail), now});
}

void
OwnershipAuditor::checkInvariants(InvariantChecker &chk) const
{
    std::lock_guard<std::mutex> lk(vioMu);
    for (const Violation &v : out) {
        chk.fail(__FILE__, __LINE__,
                 detail::format("%s at tick %llu: %s",
                                v.component.c_str(),
                                static_cast<unsigned long long>(v.tick),
                                v.detail.c_str()));
    }
    std::uint64_t observed = 0;
    for (const CrossingState &st : crossings) {
        observed += st.count;
        // A crossing registered between two resolved domains must
        // actually cross (same-domain "crossings" would mean the
        // allowlist no longer matches the partition table).
        SIM_INVARIANT_MSG(chk,
                          st.from == kNoDomain || st.to == kNoDomain ||
                              st.from != st.to || st.count == 0,
                          "%s: %llu observed crossings between a "
                          "domain and itself",
                          st.name.c_str(),
                          static_cast<unsigned long long>(st.count));
    }
    SIM_INVARIANT(chk, observed == crossingsObservedCount);
}

} // namespace astriflash::sim
