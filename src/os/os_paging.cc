#include "os_paging.hh"

#include "sim/logging.hh"

namespace astriflash::os {

sim::Ticks
TlbShootdownBus::broadcast(sim::Ticks now, std::uint32_t initiator)
{
    statsData.shootdowns.inc();
    const sim::Ticks start = now > busBusyUntil ? now : busBusyUntil;
    const sim::Ticks duration =
        costs.shootdownBase + costs.shootdownPerCore * nCores;
    busBusyUntil = start + duration;
    // Every remote core services the IPI.
    for (std::uint32_t c = 0; c < nCores; ++c) {
        if (c != initiator)
            stolen[c] += costs.remoteInterrupt;
    }
    statsData.initiatorLatency.sample(busBusyUntil - now);
    return busBusyUntil;
}

sim::Ticks
TlbShootdownBus::takeStolen(std::uint32_t core)
{
    ASTRI_ASSERT(core < stolen.size());
    const sim::Ticks t = stolen[core];
    stolen[core] = 0;
    return t;
}

OsPagingModel::OsPagingModel(std::string name, std::uint64_t capacity,
                             const OsCosts &costs, std::uint32_t cores,
                             flash::Backend &flash,
                             const mem::AddressMap &amap)
    : modelName(std::move(name)), costsData(costs), flashDev(flash),
      addrMap(amap),
      pageCache(modelName + ".pagecache", capacity, mem::kPageSize, 16),
      shootdownBus(costs, cores)
{
}

bool
OsPagingModel::pageResident(mem::Addr pa) const
{
    return pageCache.contains(pa);
}

void
OsPagingModel::touch(mem::Addr pa, bool write)
{
    if (write)
        pageCache.accessWrite(pa);
    else
        pageCache.access(pa);
}

FaultResult
OsPagingModel::pageFault(mem::Addr pa, bool write, sim::Ticks now,
                         std::uint32_t core)
{
    statsData.faults.inc();
    FaultResult res;

    // Fault entry, page-cache check, storage stack, NVMe submit.
    const sim::Ticks submitted = now + costsData.pageFault;
    // The OS switches the faulting thread out to overlap the I/O.
    res.switchedOut = submitted + costsData.contextSwitch;

    // The flash read proceeds concurrently with the switch.
    const auto read = flashDev.submit(
        flash::FlashCommand{flash::FlashCommand::Op::Read,
                            addrMap.flashPage(mem::pageBase(pa)),
                            mem::Bytes{0}},
        submitted);

    // Install on arrival; evicting a mapped victim forces a global
    // TLB shootdown before the new mapping is visible.
    sim::Ticks installed = read.complete + costsData.install;
    auto victim = pageCache.fill(pa, write);
    if (victim) {
        statsData.evictions.inc();
        if (victim->dirty) {
            statsData.dirtyWritebacks.inc();
            flashDev.submit(
                flash::FlashCommand{
                    flash::FlashCommand::Op::Write,
                    addrMap.flashPage(victim->tag_addr),
                    mem::Bytes{0}},
                installed);
        }
        installed = shootdownBus.broadcast(installed, core);
    }
    res.runnable = installed;
    statsData.faultToRunnable.sample(res.runnable - now);
    return res;
}

void
OsPagingModel::prewarmPage(mem::Addr pa)
{
    pageCache.fill(mem::pageBase(pa), false);
}

} // namespace astriflash::os
