/**
 * @file
 * OS demand-paging baseline (OS-Swap, §II-C / §III-A).
 *
 * Models the traditional path the paper argues against: every DRAM
 * miss takes a page fault (OS entry, storage stack, NVMe submit), an
 * OS context switch to overlap the flash access, a page install on
 * arrival, and — when the install evicts a mapped victim — a broadcast
 * TLB shootdown. Shootdowns serialize on a global "bus" (IPI
 * broadcast + kernel lock), which is exactly why OS-Swap stops scaling
 * with core count (Fig. 2): the shootdown rate grows with cores while
 * the serialization point does not.
 */

#ifndef ASTRIFLASH_OS_OS_PAGING_HH
#define ASTRIFLASH_OS_OS_PAGING_HH

#include <cstdint>
#include <string>
#include <vector>

#include "flash/backend.hh"
#include "mem/address_map.hh"
#include "mem/set_assoc_cache.hh"
#include "sim/stats.hh"
#include "sim/ticks.hh"

namespace astriflash::os {

/** Software-path cost parameters (literature-derived defaults). */
struct OsCosts {
    /** Fault entry + page-cache check + storage stack + NVMe submit
     *  (~3-10 µs in [9,49,50,65]; we charge the lean end). */
    sim::Ticks pageFault = sim::microseconds(3);
    /** OS context switch (~5 µs with scheduling [39,65,72]). */
    sim::Ticks contextSwitch = sim::microseconds(5);
    /** Shootdown initiator latency: base + per-core broadcast term
     *  (>10 µs at high core counts [4,46]). */
    sim::Ticks shootdownBase = sim::microseconds(2);
    sim::Ticks shootdownPerCore = sim::nanoseconds(250);
    /** IPI handling time stolen from every remote core. */
    sim::Ticks remoteInterrupt = sim::microseconds(1);
    /** Kernel page install + page-table update. */
    sim::Ticks install = sim::microseconds(1);
};

/**
 * Global TLB-shootdown serialization point.
 *
 * Broadcasts from all cores funnel through one logical resource
 * (kernel mmu lock + IPI fabric); each broadcast also steals
 * remoteInterrupt ticks from every other core.
 */
class TlbShootdownBus
{
  public:
    struct Stats {
        sim::Counter shootdowns;
        sim::Histogram initiatorLatency; ///< Ticks, incl. bus queueing.
    };

    TlbShootdownBus(const OsCosts &costs, std::uint32_t cores)
        : costs(costs), nCores(cores), stolen(cores, 0)
    {
    }

    /**
     * Issue a shootdown from @p initiator at @p now.
     * @return the tick the initiator may proceed.
     */
    sim::Ticks broadcast(sim::Ticks now, std::uint32_t initiator);

    /**
     * Drain the interruption time stolen from @p core by remote
     * shootdowns since the last call (the core adds it to its clock).
     */
    sim::Ticks takeStolen(std::uint32_t core);

    const Stats &stats() const { return statsData; }

    /** Register this bus's stats into @p reg. */
    void
    regStats(sim::StatRegistry &reg) const
    {
        reg.registerCounter("shootdowns", &statsData.shootdowns,
                            "TLB shootdown broadcasts issued");
        reg.registerHistogram("initiator_latency",
                              &statsData.initiatorLatency,
                              "initiator-side shootdown cost in ticks");
    }

  private:
    OsCosts costs;
    std::uint32_t nCores;
    sim::Ticks busBusyUntil = 0;
    std::vector<sim::Ticks> stolen;
    Stats statsData;
};

/** Result of an OS page fault. */
struct FaultResult {
    /** Tick the faulting thread's core may switch away (fault entry +
     *  I/O submit + context-switch-out complete). */
    sim::Ticks switchedOut = 0;
    /** Tick the faulting thread becomes runnable again (page
     *  installed, mappings fixed, shootdown done). */
    sim::Ticks runnable = 0;
};

/** OS-managed DRAM page cache over flash (the swap path). */
class OsPagingModel
{
  public:
    struct Stats {
        sim::Counter faults;
        sim::Counter evictions;
        sim::Counter dirtyWritebacks;
        sim::Histogram faultToRunnable; ///< Ticks.
    };

    /**
     * @param capacity  Bytes of DRAM used as the OS page cache.
     */
    OsPagingModel(std::string name, std::uint64_t capacity,
                  const OsCosts &costs, std::uint32_t cores,
                  flash::Backend &flash,
                  const mem::AddressMap &amap);

    /** True if @p pa 's page is resident. */
    bool pageResident(mem::Addr pa) const;

    /** Touch a resident page (recency + dirtiness). */
    void touch(mem::Addr pa, bool write);

    /**
     * Handle a page fault for @p pa raised by @p core at @p now.
     * The caller parks the thread until FaultResult::runnable.
     */
    FaultResult pageFault(mem::Addr pa, bool write, sim::Ticks now,
                          std::uint32_t core);

    /** Warmup: install a page with no timing. */
    void prewarmPage(mem::Addr pa);

    /** Mark @p pa's page dirty if resident (LLC writeback landed). */
    void markDirty(mem::Addr pa) { pageCache.markDirty(pa); }

    /** Zero all statistics (end of warmup). */
    void
    resetStats()
    {
        statsData = Stats{};
    }

    TlbShootdownBus &bus() { return shootdownBus; }
    const Stats &stats() const { return statsData; }
    const OsCosts &costs() const { return costsData; }

    /**
     * Register paging stats into @p reg, with "bus" and "page_cache"
     * children.
     */
    void
    regStats(sim::StatRegistry &reg) const
    {
        reg.registerCounter("faults", &statsData.faults,
                            "page faults taken through the OS path");
        reg.registerCounter("evictions", &statsData.evictions,
                            "resident pages evicted by reclaim");
        reg.registerCounter("dirty_writebacks",
                            &statsData.dirtyWritebacks,
                            "evicted pages written back to flash");
        reg.registerHistogram("fault_to_runnable",
                              &statsData.faultToRunnable,
                              "fault entry to thread-runnable ticks");
        shootdownBus.regStats(reg.subRegistry("bus"));
        pageCache.regStats(reg.subRegistry("page_cache"));
    }

    /**
     * Audit the page cache's tag state and the fault/evict ledger.
     */
    void
    checkInvariants(sim::InvariantChecker &chk) const
    {
        pageCache.checkInvariants(chk);
        SIM_INVARIANT(chk,
                      statsData.dirtyWritebacks.value() <=
                          statsData.evictions.value());
        SIM_INVARIANT(chk,
                      statsData.faultToRunnable.count() ==
                          statsData.faults.value());
    }

  private:
    std::string modelName;
    OsCosts costsData;
    flash::Backend &flashDev;
    const mem::AddressMap &addrMap;
    mem::SetAssocCache pageCache;
    TlbShootdownBus shootdownBus;
    Stats statsData;
};

} // namespace astriflash::os

#endif // ASTRIFLASH_OS_OS_PAGING_HH
