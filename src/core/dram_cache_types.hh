/**
 * @file
 * Shared configuration and result types for the DRAM-cache controller
 * pair (frontside_controller.hh / backside_controller.hh) and the
 * DramCache facade that wires them together.
 */

#ifndef ASTRIFLASH_CORE_DRAM_CACHE_TYPES_HH
#define ASTRIFLASH_CORE_DRAM_CACHE_TYPES_HH

#include <cstdint>
#include <unordered_map>

#include "flash/backend.hh"
#include "mem/address.hh"
#include "mem/dram.hh"
#include "sim/ticks.hh"

namespace astriflash::core {

/** Opaque identifier for whoever is waiting on a missing page. */
using WaiterCookie = std::uint64_t;

/** Frontside-controller parameters (the 1-cycle-per-op FSM, §V-A). */
struct FcConfig {
    sim::Cycles cyclesPerOp{1};
};

/**
 * Backside-controller parameters. `shards` page-interleaved BC
 * instances share the miss-handling load; the MSR and evict-buffer
 * capacities below are cache-wide totals that the facade slices
 * evenly across shards (shardSlice()), so changing the shard count
 * never changes aggregate buffering.
 */
struct BcConfig {
    std::uint32_t shards = 1;
    /** BC is programmable at 3 cycles/op (§V-A). */
    sim::Cycles cyclesPerOp{3};
    std::uint32_t msrSets = 128;
    std::uint32_t msrEntriesPerSet = 8;
    std::uint32_t evictBufferEntries = 32;
};

/**
 * Depths of the three controller channels (FC→BC miss requests,
 * BC→flash commands, BC→FC install completions), per BC shard. A slot
 * is held for the lifetime of the transaction the message carries, so
 * the miss-channel depth is effectively the BC's transaction window.
 * The defaults are effectively unbounded — the decomposition is
 * timing-neutral — while small depths turn backpressure into
 * measured stall ticks (bench/ablation_astriflash sweeps this).
 */
struct ChannelConfig {
    std::uint32_t fcToBcDepth = 65536;
    std::uint32_t bcToFlashDepth = 65536;
    std::uint32_t bcToFcDepth = 65536;

    /**
     * Lookahead manifest (DESIGN.md §14): each channel's declared
     * minimum push-to-consume latency, in BC operations
     * (BcConfig::cyclesPerOp at the controller clock), certified at
     * runtime by sim::CausalityAuditor and inherited as conservative
     * lookahead by the future parallel engine.
     *
     * - fc_to_bc: the BC spends at least one op dequeuing a request
     *   before acting on it.
     * - bc_to_flash: commands issue the moment the channel accepts
     *   them (the facade's pump runs in the same call chain), so the
     *   seam honestly declares zero lookahead.
     * - bc_to_fc: an install completion is consumed no earlier than
     *   the install's trailing BC op after the arrival event that
     *   pushed it.
     */
    std::uint32_t fcToBcMinLatencyOps = 1;
    std::uint32_t bcToFlashMinLatencyOps = 0;
    std::uint32_t bcToFcMinLatencyOps = 1;
};

/** DRAM cache parameters. */
struct DramCacheConfig {
    std::uint64_t capacityBytes = std::uint64_t{64} << 20;
    std::uint64_t pageBytes = mem::kPageSize;
    std::uint32_t ways = 8; ///< One 64 B tag column maps 8 ways (§IV-B).
    mem::DramConfig dram;
    /** Both controllers run at the memory-controller clock. */
    std::uint64_t controllerFreqHz = 2'500'000'000ull;

    FcConfig fc;
    BcConfig bc;
    ChannelConfig channels;
    /** Flash fan-out behind the BC shards (device count + model). */
    flash::FlashFabricConfig fabric;

    /**
     * Footprint-cache mode (§II-A's bandwidth optimization, after
     * Jevdjic et al. [36]): on a refill of a previously-seen page,
     * transfer only the blocks the page's last residency actually
     * touched. Accesses to unfetched blocks of a resident page are
     * sub-page misses that fetch the remainder via the normal
     * switch-on-miss path. Trades a small extra miss rate for flash
     * / PCIe bandwidth.
     */
    bool footprintEnabled = false;
};

/**
 * Shard @p i's slice of a @p total-entry resource divided across
 * @p shards shards: total/shards, with the remainder spread over the
 * first (total % shards) shards so the slices always sum to total —
 * the conservation the facade's construction-time SIM_CHECK pins.
 */
constexpr std::uint32_t
shardSlice(std::uint32_t total, std::uint32_t shards, std::uint32_t i)
{
    return total / shards + (i < total % shards ? 1 : 0);
}

/** Result of a frontside access. */
struct DcAccess {
    bool hit = false;
    /** Hit: data-ready tick. Miss: miss-response tick (the miss signal
     *  travels back to the core and MSHRs are reclaimed). */
    sim::Ticks ready = 0;
};

/** Bit for the 64 B block of @p pa within its 4 KB page. */
inline std::uint64_t
dcBlockBit(mem::Addr pa)
{
    return 1ull << ((pa / mem::kBlockSize) %
                    (mem::kPageSize / mem::kBlockSize));
}

/**
 * Address of a set's row in the cached DRAM partition. Each cache set
 * occupies one DRAM row region: tags first, then the page frames.
 * Mapping sets onto distinct rows gives the tag probe natural
 * row-buffer locality for same-set access bursts. Both controllers
 * address the same shared DRAM device through this layout.
 */
inline mem::Addr
dcSetRowAddr(const DramCacheConfig &cfg, std::uint64_t num_sets,
             mem::Addr pa)
{
    const std::uint64_t set = (pa / cfg.pageBytes) % num_sets;
    return set * cfg.dram.rowBytes *
           ((cfg.ways * cfg.pageBytes) / cfg.dram.rowBytes + 1);
}

/**
 * Footprint-mode residency masks, shared between the controllers: the
 * FC records touched blocks and detects sub-page misses; the BC seeds
 * fetch masks from history and maintains the masks across
 * install/evict. Owned by the facade (it also prewarms into it).
 */
struct FootprintState {
    /** Blocks actually transferred for each resident page. */
    std::unordered_map<mem::PageNum, std::uint64_t> fetched;
    /** Blocks touched during the current residency. */
    std::unordered_map<mem::PageNum, std::uint64_t> touched;
    /** Footprint recorded at the page's last eviction. */
    std::unordered_map<mem::PageNum, std::uint64_t> history;
};

} // namespace astriflash::core

#endif // ASTRIFLASH_CORE_DRAM_CACHE_TYPES_HH
