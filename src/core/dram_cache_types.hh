/**
 * @file
 * Shared configuration and result types for the DRAM-cache controller
 * pair (frontside_controller.hh / backside_controller.hh) and the
 * DramCache facade that wires them together.
 */

#ifndef ASTRIFLASH_CORE_DRAM_CACHE_TYPES_HH
#define ASTRIFLASH_CORE_DRAM_CACHE_TYPES_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "flash/backend.hh"
#include "mem/address.hh"
#include "mem/dram.hh"
#include "sim/ticks.hh"

namespace astriflash::core {

/** Opaque identifier for whoever is waiting on a missing page. */
using WaiterCookie = std::uint64_t;

/**
 * Pipeline-mode pump scheduler: run @p fn at absolute tick @p when in
 * the destination controller's domain. Each instance is pre-bound to
 * one (producer domain, consumer domain) channel direction, because
 * the parallel engine's post() keys its deterministic delivery order
 * on the posting domain. The facade installs a fallback that schedules
 * on its own event queue; System replaces it with the engine's
 * cross-group mailbox for partitioned runs.
 */
using CrossPostFn =
    std::function<void(sim::Ticks when, std::function<void()> fn)>;

/** Telemetry callback counting one exercise of a pre-registered
 *  deliberate domain crossing (sim::OwnershipAuditor::onCrossing). */
using CrossingNoteFn = std::function<void(sim::Ticks now)>;

/** Frontside-controller parameters (the 1-cycle-per-op FSM, §V-A). */
struct FcConfig {
    sim::Cycles cyclesPerOp{1};
    /**
     * Pipeline the miss path (--fc-pipeline): miss requests complete
     * asynchronously through the bc_to_fc_rsp channel instead of the
     * fused synchronous drain chain, and System places each BC
     * shard's domain in its own exec group so --host-jobs N runs the
     * shards on separate workers. Off by default: the fused mode is
     * byte-identical to the legacy goldens; split mode has its own
     * golden set (DESIGN.md §17).
     */
    bool pipeline = false;
    /**
     * Pipeline mode only: bound on the per-shard window of probes
     * whose acks are still in flight. A probe past the bound is
     * delayed to the pending queue's drain estimate and counted in
     * the FC backpressure stats. Effectively unbounded by default.
     */
    std::uint32_t pendingDepth = 65536;
};

/**
 * Backside-controller parameters. `shards` page-interleaved BC
 * instances share the miss-handling load; the MSR and evict-buffer
 * capacities below are cache-wide totals that the facade slices
 * evenly across shards (shardSlice()), so changing the shard count
 * never changes aggregate buffering.
 */
struct BcConfig {
    std::uint32_t shards = 1;
    /** BC is programmable at 3 cycles/op (§V-A). */
    sim::Cycles cyclesPerOp{3};
    std::uint32_t msrSets = 128;
    std::uint32_t msrEntriesPerSet = 8;
    std::uint32_t evictBufferEntries = 32;
};

/**
 * Depths of the three controller channels (FC→BC miss requests,
 * BC→flash commands, BC→FC install completions), per BC shard. A slot
 * is held for the lifetime of the transaction the message carries, so
 * the miss-channel depth is effectively the BC's transaction window.
 * The defaults are effectively unbounded — the decomposition is
 * timing-neutral — while small depths turn backpressure into
 * measured stall ticks (bench/ablation_astriflash sweeps this).
 */
struct ChannelConfig {
    std::uint32_t fcToBcDepth = 65536;
    std::uint32_t bcToFlashDepth = 65536;
    std::uint32_t bcToFcDepth = 65536;
    /** BC→FC response channel (miss acks + install requests). */
    std::uint32_t bcToFcRspDepth = 65536;
    /** FC→BC install-grant channel. */
    std::uint32_t fcToBcCtlDepth = 65536;

    /**
     * Lookahead manifest (DESIGN.md §14): each channel's declared
     * minimum push-to-consume latency, in BC operations
     * (BcConfig::cyclesPerOp at the controller clock), certified at
     * runtime by sim::CausalityAuditor and inherited as conservative
     * lookahead by the future parallel engine.
     *
     * - fc_to_bc: the BC spends at least one op dequeuing a request
     *   before acting on it.
     * - bc_to_flash: commands issue the moment the channel accepts
     *   them (the facade's pump runs in the same call chain), so the
     *   seam honestly declares zero lookahead.
     * - bc_to_fc: an install completion is consumed no earlier than
     *   the install's trailing BC op after the arrival event that
     *   pushed it.
     * - bc_to_fc_rsp / fc_to_bc_ctl: acks, install requests, and
     *   install grants each cost the consumer at least one op before
     *   it acts — the lookahead the split exec groups run ahead on.
     */
    std::uint32_t fcToBcMinLatencyOps = 1;
    std::uint32_t bcToFlashMinLatencyOps = 0;
    std::uint32_t bcToFcMinLatencyOps = 1;
    std::uint32_t bcToFcRspMinLatencyOps = 1;
    std::uint32_t fcToBcCtlMinLatencyOps = 1;
};

/** DRAM cache parameters. */
struct DramCacheConfig {
    std::uint64_t capacityBytes = std::uint64_t{64} << 20;
    std::uint64_t pageBytes = mem::kPageSize;
    std::uint32_t ways = 8; ///< One 64 B tag column maps 8 ways (§IV-B).
    mem::DramConfig dram;
    /** Both controllers run at the memory-controller clock. */
    std::uint64_t controllerFreqHz = 2'500'000'000ull;

    FcConfig fc;
    BcConfig bc;
    ChannelConfig channels;
    /** Flash fan-out behind the BC shards (device count + model). */
    flash::FlashFabricConfig fabric;

    /**
     * Footprint-cache mode (§II-A's bandwidth optimization, after
     * Jevdjic et al. [36]): on a refill of a previously-seen page,
     * transfer only the blocks the page's last residency actually
     * touched. Accesses to unfetched blocks of a resident page are
     * sub-page misses that fetch the remainder via the normal
     * switch-on-miss path. Trades a small extra miss rate for flash
     * / PCIe bandwidth.
     */
    bool footprintEnabled = false;
};

/**
 * Shard @p i's slice of a @p total-entry resource divided across
 * @p shards shards: total/shards, with the remainder spread over the
 * first (total % shards) shards so the slices always sum to total —
 * the conservation the facade's construction-time SIM_CHECK pins.
 */
constexpr std::uint32_t
shardSlice(std::uint32_t total, std::uint32_t shards, std::uint32_t i)
{
    return total / shards + (i < total % shards ? 1 : 0);
}

/** Result of a frontside access. */
struct DcAccess {
    bool hit = false;
    /** Hit: data-ready tick. Miss: miss-response tick (the miss signal
     *  travels back to the core and MSHRs are reclaimed). */
    sim::Ticks ready = 0;
};

/** Bit for the 64 B block of @p pa within its 4 KB page. */
inline std::uint64_t
dcBlockBit(mem::Addr pa)
{
    return 1ull << ((pa / mem::kBlockSize) %
                    (mem::kPageSize / mem::kBlockSize));
}

/**
 * Address of a set's row in the cached DRAM partition. Each cache set
 * occupies one DRAM row region: tags first, then the page frames.
 * Mapping sets onto distinct rows gives the tag probe natural
 * row-buffer locality for same-set access bursts. Both controllers
 * address the same shared DRAM device through this layout.
 */
inline mem::Addr
dcSetRowAddr(const DramCacheConfig &cfg, std::uint64_t num_sets,
             mem::Addr pa)
{
    const std::uint64_t set = (pa / cfg.pageBytes) % num_sets;
    return set * cfg.dram.rowBytes *
           ((cfg.ways * cfg.pageBytes) / cfg.dram.rowBytes + 1);
}

/**
 * Footprint-mode residency masks, owned by the FC's domain: the FC
 * records touched blocks, detects sub-page misses, snapshots history
 * into MissRequest::histMask, and maintains the masks across
 * install/evict when it services the BC's install requests. The BC
 * never touches this structure — it sees only message fields. Held by
 * the facade (it also prewarms into it).
 */
struct FootprintState {
    /** Blocks actually transferred for each resident page. */
    std::unordered_map<mem::PageNum, std::uint64_t> fetched;
    /** Blocks touched during the current residency. */
    std::unordered_map<mem::PageNum, std::uint64_t> touched;
    /** Footprint recorded at the page's last eviction. */
    std::unordered_map<mem::PageNum, std::uint64_t> history;
    /**
     * Audit-only: pages displaced by set conflicts while prewarm was
     * filling the tags. Prewarm predates the miss path, so these
     * evictions carry no InstallGrant victim bookkeeping and the
     * page's full-page fetched mask is left behind (erasing it here
     * would change the committed goldens: a later reinstall ORs into
     * the leftover mask). The residency audit exempts exactly this
     * set instead of blessing the leak wholesale.
     */
    std::unordered_set<mem::PageNum> prewarmEvicted;
};

} // namespace astriflash::core

#endif // ASTRIFLASH_CORE_DRAM_CACHE_TYPES_HH
