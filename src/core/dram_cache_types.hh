/**
 * @file
 * Shared configuration and result types for the DRAM-cache controller
 * pair (frontside_controller.hh / backside_controller.hh) and the
 * DramCache facade that wires them together.
 */

#ifndef ASTRIFLASH_CORE_DRAM_CACHE_TYPES_HH
#define ASTRIFLASH_CORE_DRAM_CACHE_TYPES_HH

#include <cstdint>
#include <unordered_map>

#include "mem/address.hh"
#include "mem/dram.hh"
#include "sim/ticks.hh"

namespace astriflash::core {

/** Opaque identifier for whoever is waiting on a missing page. */
using WaiterCookie = std::uint64_t;

/** DRAM cache parameters. */
struct DramCacheConfig {
    std::uint64_t capacityBytes = std::uint64_t{64} << 20;
    std::uint64_t pageBytes = mem::kPageSize;
    std::uint32_t ways = 8; ///< One 64 B tag column maps 8 ways (§IV-B).
    mem::DramConfig dram;
    std::uint32_t msrSets = 128;
    std::uint32_t msrEntriesPerSet = 8;
    std::uint32_t evictBufferEntries = 32;
    /** FC is a 1-cycle-per-op FSM; BC is programmable at 3 cycles/op
     *  (§V-A), both at the memory-controller clock. */
    std::uint64_t controllerFreqHz = 2'500'000'000ull;
    sim::Cycles fcCyclesPerOp{1};
    sim::Cycles bcCyclesPerOp{3};

    /**
     * Depths of the three controller channels (FC→BC miss requests,
     * BC→flash commands, BC→FC install completions). A slot is held
     * for the lifetime of the transaction the message carries, so the
     * miss-channel depth is effectively the BC's transaction window.
     * The defaults are effectively unbounded — the decomposition is
     * timing-neutral — while small depths turn backpressure into
     * measured stall ticks (bench/ablation_astriflash sweeps this).
     */
    std::uint32_t fcToBcDepth = 65536;
    std::uint32_t bcToFlashDepth = 65536;
    std::uint32_t bcToFcDepth = 65536;

    /**
     * Footprint-cache mode (§II-A's bandwidth optimization, after
     * Jevdjic et al. [36]): on a refill of a previously-seen page,
     * transfer only the blocks the page's last residency actually
     * touched. Accesses to unfetched blocks of a resident page are
     * sub-page misses that fetch the remainder via the normal
     * switch-on-miss path. Trades a small extra miss rate for flash
     * / PCIe bandwidth.
     */
    bool footprintEnabled = false;
};

/** Result of a frontside access. */
struct DcAccess {
    bool hit = false;
    /** Hit: data-ready tick. Miss: miss-response tick (the miss signal
     *  travels back to the core and MSHRs are reclaimed). */
    sim::Ticks ready = 0;
};

/** Bit for the 64 B block of @p pa within its 4 KB page. */
inline std::uint64_t
dcBlockBit(mem::Addr pa)
{
    return 1ull << ((pa / mem::kBlockSize) %
                    (mem::kPageSize / mem::kBlockSize));
}

/**
 * Address of a set's row in the cached DRAM partition. Each cache set
 * occupies one DRAM row region: tags first, then the page frames.
 * Mapping sets onto distinct rows gives the tag probe natural
 * row-buffer locality for same-set access bursts. Both controllers
 * address the same shared DRAM device through this layout.
 */
inline mem::Addr
dcSetRowAddr(const DramCacheConfig &cfg, std::uint64_t num_sets,
             mem::Addr pa)
{
    const std::uint64_t set = (pa / cfg.pageBytes) % num_sets;
    return set * cfg.dram.rowBytes *
           ((cfg.ways * cfg.pageBytes) / cfg.dram.rowBytes + 1);
}

/**
 * Footprint-mode residency masks, shared between the controllers: the
 * FC records touched blocks and detects sub-page misses; the BC seeds
 * fetch masks from history and maintains the masks across
 * install/evict. Owned by the facade (it also prewarms into it).
 */
struct FootprintState {
    /** Blocks actually transferred for each resident page. */
    std::unordered_map<mem::PageNum, std::uint64_t> fetched;
    /** Blocks touched during the current residency. */
    std::unordered_map<mem::PageNum, std::uint64_t> touched;
    /** Footprint recorded at the page's last eviction. */
    std::unordered_map<mem::PageNum, std::uint64_t> history;
};

} // namespace astriflash::core

#endif // ASTRIFLASH_CORE_DRAM_CACHE_TYPES_HH
