#include "sim_core.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/trace_events.hh"

#include "system.hh"

namespace astriflash::core {

SimCore::SimCore(sim::EventQueue &eq, std::string name, std::uint32_t id,
                 System &system)
    : sim::SimObject(eq, std::move(name)), coreId(id), sys(system),
      sched(system.config().sched),
      tlbModel(SimObject::name() + ".tlb", system.config().tlb),
      hier(SimObject::name(), mem::defaultHierarchyConfig()),
      asoEngine(system.config().core)
{
    // The runtime installs the scheduler handler through the verified
    // privileged path at process start (§IV-C2).
    handlerRegs.setHandler(0x1000, /*privileged=*/true);
}

void
SimCore::start()
{
    idle = false;
    scheduleIn(0, [this] { run(); }, eventPrio(false));
}

void
SimCore::kick()
{
    if (idle) {
        idle = false;
        scheduleIn(0, [this] { run(); }, eventPrio(false));
    }
}

void
SimCore::pageReady(mem::PageNum page, sim::Ticks when)
{
    const sim::Ticks now = curTick();
    const sim::Ticks delta = when > now ? when - now : 0;
    scheduleIn(
        delta,
        [this, page] {
            auditDomain(); // event-queue entry point
            sched.pageReady(page, curTick());
            kick();
        },
        eventPrio(true));
}

bool
SimCore::pickJob(sim::Ticks now)
{
    for (;;) {
        std::optional<workload::Job> next;
        if (blockedOnPendingFull) {
            // Overflow rule (§IV-D1): the core only resumes once the
            // oldest halted work becomes runnable.
            next = sched.pickPendingReady();
            if (!next)
                return false;
            blockedOnPendingFull = false;
        } else {
            // Keep the new-job queue primed so the policy genuinely
            // chooses between new and pending work (closed loop).
            if (sched.newCount() == 0) {
                workload::Job fresh;
                if (sys.supplyJob(coreId, now, fresh))
                    sched.enqueueNew(std::move(fresh));
            }
            next = sched.pickNext(now);
            if (!next)
                return false;
        }
        current = std::move(*next);
        break;
    }
    workload::Job &job = *current;
    if (job.started == 0) {
        job.started = now;
        sim::traceEvent(sim::TracePoint::JobStart, now, coreId, 0,
                        job.id);
    }
    if (job.pendingSince != 0) {
        sim::traceEvent(sim::TracePoint::ThreadResume, now, coreId, 0,
                        job.id);
    }
    // A job with pendingSince set is resuming after a miss: arm the
    // forward-progress bit so its faulting access retires (§IV-C3).
    if (job.pendingSince != 0 && sys.config().forwardProgressBit) {
        forceProgress = true;
        handlerRegs.armForwardProgress(job.id);
    } else {
        forceProgress = false;
    }
    return true;
}

sim::Ticks
SimCore::pageWalk(mem::Addr va, sim::Ticks t)
{
    const SystemConfig &cfg = sys.config();
    // Upper levels hit the on-chip caches / flat DRAM partition.
    sim::Ticks done = t + cfg.walkCached;
    if (cfg.kind == SystemKind::AstriFlashNoDP) {
        // Without DRAM partitioning the leaf PTE lives in the cached
        // flash address space. The walker fetches PTEs through the
        // data-cache hierarchy (hot PTE blocks stay on chip); a cold
        // walk blocks on flash because walks are serialized (§IV-A).
        const mem::Addr pte_pa = sys.leafPtePa(va);
        const auto h = hier.access(pte_pa, false);
        done += h.latency;
        if (h.llcMiss) {
            const bool resident =
                sys.dramCache()->pageResident(pte_pa);
            done = sys.dramCache()->accessSync(pte_pa, false, done);
            hier.fillFromMemory(pte_pa, false);
            if (!resident)
                statsData.walkFlashStalls.inc();
        }
    }
    tlbModel.fill(va);
    return done;
}

void
SimCore::storeHit(mem::Addr pa)
{
    // The store retires into the SB and its DRAM-cache (or on-chip)
    // access completes: the ASO engine frees its snapshot.
    if (asoEngine.dispatchStore(pa) == cpu::AsoDispatch::Ok)
        asoEngine.completeOldestStore();
}

void
SimCore::storeAborted(mem::Addr pa)
{
    // The committed store missed the DRAM cache: roll back (§IV-C4).
    if (asoEngine.dispatchStore(pa) == cpu::AsoDispatch::Ok)
        asoEngine.abortOldestStore();
}

SimCore::MemOutcome
SimCore::memAccess(mem::Addr pa, bool write, sim::Ticks t)
{
    const SystemConfig &cfg = sys.config();
    MemOutcome mo;

    switch (cfg.kind) {
      case SystemKind::DramOnly:
        mo.doneAt = sys.flatDramAccess(pa, write, t);
        mo.respondedAt = mo.doneAt;
        return mo;

      case SystemKind::FlashSync: {
        // The core synchronously waits out the flash access — and the
        // MSHR entry is pinned for the whole flash latency.
        const bool resident = sys.dramCache()->pageResident(pa);
        mo.doneAt = sys.dramCache()->accessSync(pa, write, t);
        mo.respondedAt = mo.doneAt;
        if (!resident)
            statsData.syncMissStalls.inc();
        return mo;
      }

      case SystemKind::AstriFlash:
      case SystemKind::AstriFlashIdeal:
      case SystemKind::AstriFlashNoPS:
      case SystemKind::AstriFlashNoDP: {
        if (forceProgress) {
            // Forward-progress bit set: FC completes the access
            // synchronously even on a miss.
            const bool resident = sys.dramCache()->pageResident(pa);
            mo.doneAt = sys.dramCache()->accessSync(pa, write, t);
            mo.respondedAt = mo.doneAt;
            if (!resident)
                statsData.syncMissStalls.inc();
            forceProgress = false;
            handlerRegs.clearForwardProgress();
            return mo;
        }
        const DcAccess res =
            sys.dramCache()->access(pa, write, t, coreId);
        if (res.hit) {
            mo.doneAt = res.ready;
            mo.respondedAt = mo.doneAt;
            return mo;
        }
        // Switch-on-miss: the miss signal reaches the core, the ROB
        // is flushed, the PC vectors to the handler, and the user-
        // level scheduler switches threads.
        if (write)
            storeAborted(pa);
        handlerRegs.recordMiss(current->id);
        mo.kind = MemOutcome::Kind::Parked;
        mo.respondedAt = res.ready; // miss response frees the MSHR
        mo.freeAt = res.ready + cfg.core.robFlushCost() +
                    cfg.core.handlerEntryCost() + cfg.threadSwitch;
        mo.page = mem::pageNumber(pa);
        statsData.switchOnMiss.inc();
        return mo;
      }

      case SystemKind::OsSwap: {
        os::OsPagingModel *os_model = sys.osPaging();
        if (os_model->pageResident(pa)) {
            os_model->touch(pa, write);
            mo.doneAt = sys.flatDramAccess(pa, write, t);
            mo.respondedAt = mo.doneAt;
            return mo;
        }
        statsData.osFaults.inc();
        const os::FaultResult fr =
            os_model->pageFault(pa, write, t, coreId);
        pageReady(mem::pageNumber(pa), fr.runnable);
        mo.kind = MemOutcome::Kind::Parked;
        mo.respondedAt = fr.switchedOut; // fault handler owns it now
        mo.freeAt = fr.switchedOut;
        mo.page = mem::pageNumber(pa);
        return mo;
      }
    }
    ASTRI_PANIC("unhandled system kind");
}

void
SimCore::completeJob(sim::Ticks t)
{
    workload::Job &job = *current;
    job.finished = t;
    job.service = t - job.started;
    statsData.jobsCompleted.inc();
    sim::traceEvent(sim::TracePoint::JobFinish, t, coreId, 0, job.id);
    sys.jobFinished(job, t);
    current.reset();
}

void
SimCore::run()
{
    // Event-queue entry point: cores execute in the frontside domain.
    auditDomain();
    idle = false;
    const SystemConfig &cfg = sys.config();
    // Never restart behind the local cursor: the core was busy
    // (switching out, completing) until then, even if the waking
    // event fired at an earlier global tick.
    sim::Ticks t = std::max(curTick(), localCursor);

    // Absorb interruption time stolen by remote TLB shootdowns.
    if (cfg.kind == SystemKind::OsSwap)
        t += sys.osPaging()->bus().takeStolen(coreId);

    if (!current) {
        if (!pickJob(t)) {
            localCursor = t;
            idle = true;
            return;
        }
        if (cfg.kind == SystemKind::OsSwap &&
            current->pendingSince != 0) {
            t += cfg.osCosts.contextSwitch; // switch back in
        }
    }

    const sim::Ticks burst_start = t;
    while (true) {
        if (t - burst_start >= cfg.quantum) {
            // Yield to keep cross-core timing skew bounded.
            statsData.busyTicks += t - burst_start;
            localCursor = t;
            const sim::Ticks now = curTick();
            scheduleIn(t > now ? t - now : 0, [this] { run(); },
                       eventPrio(false));
            return;
        }

        workload::Job &job = *current;
        if (job.done()) {
            completeJob(t);
            if (!pickJob(t)) {
                statsData.busyTicks += t - burst_start;
                localCursor = t;
                idle = true;
                return;
            }
            if (cfg.kind == SystemKind::OsSwap &&
                current->pendingSince != 0) {
                t += cfg.osCosts.contextSwitch;
            }
            continue;
        }

        const workload::Op &op = job.ops[job.nextOp];
        if (op.type == workload::Op::Type::Compute) {
            t += op.compute;
            ++job.nextOp;
            continue;
        }

        const bool write = op.type == workload::Op::Type::Store;
        // Register pressure model: roughly one renamed destination
        // per access interval (§IV-C4 sizes four per store).
        asoEngine.writeReg(
            static_cast<std::uint32_t>(renameCursor++ %
                                       cfg.core.archRegs));

        const auto tr = tlbModel.lookup(op.addr);
        t += tr.latency;
        if (tr.miss)
            t = pageWalk(op.addr, t);

        const mem::Addr pa = sys.dataPa(op.addr);
        const auto h = hier.access(pa, write);
        t += h.latency;
        if (!h.llcMiss) {
            if (write)
                storeHit(pa);
            ++job.nextOp;
            continue;
        }
        sim::traceEvent(sim::TracePoint::LlcMiss, t, coreId, pa,
                        job.id);
        for (mem::Addr wb : hier.writebacks())
            sys.noteLlcWriteback(wb);

        // MSHR occupancy accounting around the memory access: the
        // entry is logically held from the LLC miss until the memory
        // system answers (data, or the AstriFlash miss response). The
        // release declares that future tick immediately — the file
        // never stalls the timing model, it measures hold times.
        hier.mshrs().allocate(pa, t);
        const MemOutcome mo = memAccess(pa, write, t);
        hier.mshrs().release(pa, mo.respondedAt);
        if (mo.kind == MemOutcome::Kind::Done) {
            hier.fillFromMemory(pa, write);
            for (mem::Addr wb : hier.writebacks())
                sys.noteLlcWriteback(wb);
            if (write)
                storeHit(pa);
            t = mo.doneAt;
            ++job.nextOp;
            continue;
        }

        // Parked on a miss: the job resumes at this op later.
        workload::Job halted = std::move(*current);
        current.reset();
        ++halted.misses;
        sim::traceEvent(sim::TracePoint::ThreadPark, t, coreId,
                        mem::pageAddr(mo.page), halted.id);
        sched.parkOnMiss(std::move(halted), mo.page, t);
        if (sched.pendingFull()) {
            sched.notePendingOverflow();
            blockedOnPendingFull = true;
        }
        t = mo.freeAt;
        if (!pickJob(t)) {
            statsData.busyTicks += t - burst_start;
            localCursor = t;
            idle = true;
            return;
        }
        if (cfg.kind == SystemKind::OsSwap &&
            current->pendingSince != 0) {
            t += cfg.osCosts.contextSwitch;
        }
    }
}

void
SimCore::regStats(sim::StatRegistry &reg) const
{
    reg.registerCounter("jobs_completed", &statsData.jobsCompleted,
                        "jobs run to completion on this core");
    reg.registerCounter("switch_on_miss", &statsData.switchOnMiss,
                        "DRAM-cache misses that switched threads");
    reg.registerCounter("sync_miss_stalls", &statsData.syncMissStalls,
                        "misses served synchronously (core stalled)");
    reg.registerCounter("os_faults", &statsData.osFaults,
                        "page faults taken through the OS path");
    reg.registerCounter("walk_flash_stalls",
                        &statsData.walkFlashStalls,
                        "page-table walks that touched flash");
    reg.registerUint("busy_ticks", &statsData.busyTicks,
                     "ticks spent executing jobs");
    sched.regStats(reg.subRegistry("sched"));
    tlbModel.regStats(reg.subRegistry("tlb"));
    hier.regStats(reg.subRegistry("hier"));
    asoEngine.regStats(reg.subRegistry("aso"));
}

} // namespace astriflash::core
