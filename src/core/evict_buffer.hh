/**
 * @file
 * Backside-controller evict buffer (§IV-B2).
 *
 * When a fill needs a victim's frame, the BC copies the victim page
 * into the evict buffer; dirty victims drain to flash off the critical
 * path (writes are deprioritized against reads). The buffer's finite
 * size backpressures installs when flash programs fall behind.
 */

#ifndef ASTRIFLASH_CORE_EVICT_BUFFER_HH
#define ASTRIFLASH_CORE_EVICT_BUFFER_HH

#include <cstdint>
#include <deque>
#include <string>

#include "mem/address.hh"
#include "sim/invariant.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "sim/ticks.hh"

namespace astriflash::core {

/** FIFO of victim pages awaiting flash writeback. */
class EvictBuffer
{
  public:
    struct Entry {
        mem::PageNum page;
        bool dirty = false;
        sim::Ticks inserted = 0;
    };

    struct Stats {
        sim::Counter inserts;
        sim::Counter dirtyInserts;
        sim::Counter drains;
        sim::Counter fullStalls;
        sim::Average occupancy; ///< Sampled at each insert.
        std::uint64_t peakOccupancy = 0;
    };

    EvictBuffer(std::string name, std::uint32_t entries)
        : bufName(std::move(name)), capacity(entries)
    {
    }

    bool full() const { return fifo.size() >= capacity; }
    bool empty() const { return fifo.empty(); }

    std::uint32_t occupancy() const
    {
        return static_cast<std::uint32_t>(fifo.size());
    }

    /**
     * Insert a victim page.
     * @return false if the buffer is full (caller must stall).
     */
    bool
    insert(mem::PageNum page, bool dirty, sim::Ticks now)
    {
        if (full()) {
            statsData.fullStalls.inc();
            return false;
        }
        fifo.push_back(Entry{page, dirty, now});
        statsData.inserts.inc();
        if (dirty)
            statsData.dirtyInserts.inc();
        statsData.occupancy.sample(static_cast<double>(fifo.size()));
        if (fifo.size() > statsData.peakOccupancy)
            statsData.peakOccupancy = fifo.size();
        return true;
    }

    /** Pop the oldest entry for draining. Caller checks !empty(). */
    Entry
    pop()
    {
        ASTRI_ASSERT_MSG(!fifo.empty(),
                         "%s: draining an empty evict buffer",
                         bufName.c_str());
        Entry e = fifo.front();
        fifo.pop_front();
        statsData.drains.inc();
        return e;
    }

    /** True if the buffer currently holds @p page (read-own-evict). */
    bool
    contains(mem::PageNum page) const
    {
        for (const Entry &e : fifo) {
            if (e.page == page)
                return true;
        }
        return false;
    }

    const Stats &stats() const { return statsData; }

    /** Register this buffer's stats into @p reg. */
    void
    regStats(sim::StatRegistry &reg) const
    {
        reg.registerCounter("inserts", &statsData.inserts,
                            "victim pages parked for writeback");
        reg.registerCounter("dirty_inserts", &statsData.dirtyInserts,
                            "parked victims needing a flash program");
        reg.registerCounter("drains", &statsData.drains,
                            "entries drained to flash");
        reg.registerCounter("full_stalls", &statsData.fullStalls,
                            "inserts rejected by a full buffer");
        reg.registerAverage("occupancy", &statsData.occupancy,
                            "live entries sampled at each insert");
        reg.registerUint("peak_occupancy", &statsData.peakOccupancy,
                         "maximum live entries over the run");
    }

    /**
     * Audit the buffer: bounded occupancy, FIFO insertion order, page
     * alignment, and the conservation law inserts == drains + live.
     */
    void
    checkInvariants(sim::InvariantChecker &chk) const
    {
        SIM_INVARIANT_MSG(chk, fifo.size() <= capacity,
                          "%zu entries exceed the %u-entry bound",
                          fifo.size(), capacity);
        sim::Ticks prev = 0;
        for (const Entry &e : fifo) {
            // A PageNum cannot be misaligned by construction.
            SIM_INVARIANT_MSG(chk, e.inserted >= prev,
                              "FIFO order broken at page %llx",
                              static_cast<unsigned long long>(
                                  mem::pageAddr(e.page)));
            prev = e.inserted;
        }
        SIM_INVARIANT_MSG(
            chk,
            statsData.inserts.value() ==
                statsData.drains.value() + fifo.size(),
            "evict conservation: %llu inserts != %llu drains + %zu live",
            static_cast<unsigned long long>(statsData.inserts.value()),
            static_cast<unsigned long long>(statsData.drains.value()),
            fifo.size());
        SIM_INVARIANT(chk,
                      statsData.dirtyInserts.value() <=
                          statsData.inserts.value());
        SIM_INVARIANT(chk, statsData.peakOccupancy >= fifo.size());
    }

  private:
    std::string bufName;
    std::uint32_t capacity;
    std::deque<Entry> fifo;
    Stats statsData;
};

} // namespace astriflash::core

#endif // ASTRIFLASH_CORE_EVICT_BUFFER_HH
