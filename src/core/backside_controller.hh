/**
 * @file
 * Backside controller (BC) of the DRAM cache (§IV-B, Fig. 5).
 *
 * The BC is the programmable (slower per operation) half of the
 * controller pair: it drains MissRequests off the FC→BC channel,
 * deduplicates them through the in-DRAM Miss Status Row, issues 4 KB
 * flash reads through its own flash::Backend submit path, parks
 * victims in the evict buffer, and writes dirty victims back to flash
 * off the critical path.
 *
 * Single-owner seam (DESIGN.md §17): the BC owns the MSR, the evict
 * buffer, the pending-miss table, and the flash submit path — and
 * nothing else. The page tags, the DRAM model, and the footprint
 * state are fc-owned; whenever the BC needs them (seeding a fetch
 * mask from footprint history, installing an arrived page) the data
 * crosses the seam as message fields: MissRequest::histMask inbound,
 * a BcNotice::InstallReq outbound answered by an InstallGrant. The BC
 * never names the frontside controller or a concrete flash device
 * (aflint AF013/AF014); all its inputs and outputs are channels plus
 * the abstract flash::Backend.
 *
 * The BC drains its own inbound channels: in fused mode (default)
 * through synchronous drain hooks, which keeps the whole miss chain
 * nested inside the producer's push exactly like the pre-split
 * facade pump; in pipeline mode through notify hooks that schedule a
 * pump at accept + the declared channel lookahead via the cross-post
 * function (the parallel engine's mailbox when exec groups are
 * split).
 */

#ifndef ASTRIFLASH_CORE_BACKSIDE_CONTROLLER_HH
#define ASTRIFLASH_CORE_BACKSIDE_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "flash/backend.hh"
#include "mem/address_map.hh"
#include "mem/set_assoc_cache.hh"
#include "sim/bounded_channel.hh"
#include "sim/invariant.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

#include "dc_messages.hh"
#include "dram_cache_types.hh"
#include "evict_buffer.hh"
#include "miss_status_row.hh"

namespace astriflash::core {

/** The DRAM cache's programmable miss engine. */
class BacksideController : public sim::SimObject
{
  public:
    struct Stats {
        sim::Counter fills;
        sim::Counter dirtyWritebacks;
        sim::Counter flashBytesRead; ///< Refill traffic (footprint
                                     ///< mode transfers fewer bytes).
        sim::Histogram missPenalty;  ///< Miss to page-ready, ticks.
        std::uint64_t peakOutstanding = 0;
    };

    /**
     * @param msr_sets / @p msr_entries_per_set / @p evict_entries
     *        this shard's slice of the cache-wide MSR and evict-buffer
     *        capacities (the facade slices BcConfig's totals with
     *        shardSlice()).
     * @param flash_dev the shard's submit path. The BC derives its
     *        conservative read estimate from it; in pipeline mode the
     *        facade guarantees shards hit disjoint devices
     *        (deviceCount % shards == 0 with page-residue routing).
     */
    BacksideController(sim::EventQueue &eq, std::string name,
                       const DramCacheConfig &config,
                       const mem::AddressMap &amap,
                       flash::Backend &flash_dev,
                       sim::BoundedChannel<MissRequest> &inbox,
                       sim::BoundedChannel<FlashCmdMsg> &to_flash,
                       sim::BoundedChannel<InstallComplete> &to_fc,
                       sim::BoundedChannel<BcNotice> &to_fc_rsp,
                       sim::BoundedChannel<InstallGrant> &from_fc_ctl,
                       std::uint32_t msr_sets,
                       std::uint32_t msr_entries_per_set,
                       std::uint32_t evict_entries);

    /**
     * Install this controller's channel hooks. Both controllers
     * declare bindChannels(); the facade calls it after channel
     * construction, once per controller. Fused mode installs
     * synchronous drain hooks on the inbox and the ctl channel;
     * pipeline mode installs notify hooks that schedule pumps through
     * the cross-post function. The BC→flash channel always drains
     * synchronously — the submit path is bc-owned, so that seam never
     * leaves the domain.
     */
    void bindChannels();

    /**
     * Cross-domain pump scheduler (pipeline mode): posts @p fn at an
     * absolute tick into this controller's domain. Unset, the BC
     * schedules on its own queue (single-queue unit tests); System
     * installs the parallel engine's mailbox for split runs.
     */
    void setPostFn(CrossPostFn fn) { postFn = std::move(fn); }

    /**
     * Telemetry callback fired when the fused-mode drain services a
     * request in the producer's call chain (the facade's registered
     * "service" ownership crossing).
     */
    void setCrossingNotes(CrossingNoteFn service_note)
    {
        serviceNote = std::move(service_note);
    }

    /** Outstanding (in-flight) misses right now. */
    std::uint32_t
    outstandingMisses() const
    {
        return static_cast<std::uint32_t>(pending.size());
    }

    /** Zero all statistics (end of warmup). */
    void resetStats();

    void regStats(sim::StatRegistry &reg) const;

    /**
     * Audit the miss-tracking machinery: every issued pending miss
     * holds an MSR entry (and nothing else does), and the stall queue
     * mirrors the un-issued pending misses exactly.
     */
    void checkInvariants(sim::InvariantChecker &chk) const;

    /**
     * Cross-domain audit run at quiesce points (both controllers
     * declare auditShared; the facade invokes them with the fc-owned
     * structures passed by const ref): no page may be both resident
     * in @p tags and pending here.
     */
    void auditShared(sim::InvariantChecker &chk,
                     const mem::SetAssocCache &tags) const;

    const Stats &stats() const { return statsData; }
    const MissStatusRow &msr() const { return msrTable; }
    const EvictBuffer &evictBuffer() const { return evictBuf; }

  private:
    struct PendingMiss {
        sim::Ticks dataReady = 0; ///< Install-complete estimate.
        std::vector<WaiterCookie> waiters;
        bool issued = false;   ///< Flash read issued (vs MSR-stalled).
        /** Install requested across the seam; the grant is in flight.
         *  In pipelined mode a sweep can observe the page already
         *  resident (the grant filled the tags) while finishInstall
         *  has not yet retired this entry. */
        bool installing = false;
        bool anyWrite = false; ///< Install dirty (write-allocate).
        std::uint64_t fetchMask = ~0ull; ///< Blocks to transfer.
    };

    /** Page number of @p pa at this cache's page granularity. */
    mem::PageNum
    pageNum(mem::Addr pa) const
    {
        return mem::pageNumber(pa, cfg.pageBytes);
    }

    /** Byte base address of page @p pn (trace payloads, flash LPN). */
    mem::Addr
    pageByteAddr(mem::PageNum pn) const
    {
        return mem::pageAddr(pn, cfg.pageBytes);
    }

    /**
     * Service the MissRequest at the head of the FC→BC channel:
     * evict-buffer short-circuit, MSR dedup/alloc, flash issue. The
     * slot is released at the transaction's completion tick, so the
     * channel depth bounds the BC's outstanding-transaction window.
     * The reply leaves through the BC→FC response channel; its push
     * stamp is floored at @p at_least (the draining pump's bound —
     * 0 in fused mode, where the drain is nested in the push).
     */
    void serviceHead(sim::Ticks at_least = 0);

    /** Drain every serviceable inbox entry (stamp-eligible at @p now;
     *  fused mode passes kTickNever to drain unconditionally). */
    void pumpInbox(sim::Ticks eligible_until);

    /** Submit queued flash commands; reads schedule their arrival. */
    void pumpFlash();

    /** Drain eligible InstallGrants off the FC→BC ctl channel. */
    void pumpCtl(sim::Ticks eligible_until);

    /** Schedule a pump at @p when in this domain (post or self). */
    void requestPump(sim::Ticks when, std::function<void()> fn);

    /**
     * Miss handling: MSR dedup/alloc, flash read, arrival event.
     * @return the tick the requester's data will be ready.
     */
    sim::Ticks startMiss(const MissRequest &req, sim::Ticks now);

    /** Expected cost of installing one page into its frame. */
    sim::Ticks installEstimate() const;

    /** A read completed: stamp the miss, schedule the arrival. */
    void flashReadIssued(mem::PageNum page, sim::Ticks issued_at,
                         sim::Ticks complete_at);

    /** A fetched page arrived: request the fc-side install. */
    void pageArrived(mem::PageNum page);

    /** The FC installed the page: evict path, MSR free, waiters. */
    void finishInstall(const InstallGrant &grant, sim::Ticks now);

    /** Issue queued misses that were blocked on a full MSR set. */
    void retryMsrStalled(sim::Ticks now);

    /** Drain one evict-buffer entry to flash. */
    void drainEvictBuffer(sim::Ticks now);

    sim::Ticks bcOp() const { return bcOpTicks; }

    const DramCacheConfig &cfg;
    const mem::AddressMap &addrMap;
    flash::Backend &flashDev;
    sim::BoundedChannel<MissRequest> &inbox;
    sim::BoundedChannel<FlashCmdMsg> &toFlash;
    sim::BoundedChannel<InstallComplete> &toFc;
    sim::BoundedChannel<BcNotice> &toFcRsp;
    sim::BoundedChannel<InstallGrant> &fromFcCtl;
    MissStatusRow msrTable;
    EvictBuffer evictBuf;
    std::unordered_map<mem::PageNum, PendingMiss> pending;
    std::deque<mem::PageNum> msrStalled; ///< Waiting for MSR space.
    CrossPostFn postFn;
    CrossingNoteFn serviceNote;
    sim::Ticks bcOpTicks;
    sim::Ticks flashReadEstimate;
    Stats statsData;
};

} // namespace astriflash::core

#endif // ASTRIFLASH_CORE_BACKSIDE_CONTROLLER_HH
