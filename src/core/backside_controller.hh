/**
 * @file
 * Backside controller (BC) of the DRAM cache (§IV-B, Fig. 5).
 *
 * The BC is the programmable (slower per operation) half of the
 * controller pair: it pops MissRequests off the FC→BC channel,
 * deduplicates them through the in-DRAM Miss Status Row, issues 4 KB
 * flash reads, selects victims into the evict buffer, writes dirty
 * victims back to flash off the critical path, and installs arriving
 * pages.
 *
 * The BC never names the frontside controller or the flash device
 * (aflint AF013): flash commands leave through the BC→flash channel
 * as plain flash::FlashCommand messages (the facade submits them and
 * reports read completions back via flashReadIssued()), and install
 * completions leave through the BC→FC channel.
 */

#ifndef ASTRIFLASH_CORE_BACKSIDE_CONTROLLER_HH
#define ASTRIFLASH_CORE_BACKSIDE_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/address_map.hh"
#include "mem/dram.hh"
#include "mem/set_assoc_cache.hh"
#include "sim/bounded_channel.hh"
#include "sim/invariant.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

#include "dc_messages.hh"
#include "dram_cache_types.hh"
#include "evict_buffer.hh"
#include "miss_status_row.hh"

namespace astriflash::core {

/** The DRAM cache's programmable miss engine. */
class BacksideController : public sim::SimObject
{
  public:
    struct Stats {
        sim::Counter fills;
        sim::Counter dirtyWritebacks;
        sim::Counter flashBytesRead; ///< Refill traffic (footprint
                                     ///< mode transfers fewer bytes).
        sim::Histogram missPenalty;  ///< Miss to page-ready, ticks.
        std::uint64_t peakOutstanding = 0;
    };

    /**
     * @param msr_sets / @p msr_entries_per_set / @p evict_entries
     *        this shard's slice of the cache-wide MSR and evict-buffer
     *        capacities (the facade slices BcConfig's totals with
     *        shardSlice()).
     * @param flash_read_estimate conservative whole-read latency used
     *        for MSR-stalled misses' dataReady estimate; the facade
     *        derives it from the flash back-end so the BC itself never
     *        sees the device.
     */
    BacksideController(sim::EventQueue &eq, std::string name,
                       const DramCacheConfig &config,
                       const mem::AddressMap &amap, mem::Dram &dram,
                       mem::SetAssocCache &tags,
                       FootprintState &footprint,
                       sim::BoundedChannel<MissRequest> &inbox,
                       sim::BoundedChannel<FlashCmdMsg> &to_flash,
                       sim::BoundedChannel<InstallComplete> &to_fc,
                       std::uint32_t msr_sets,
                       std::uint32_t msr_entries_per_set,
                       std::uint32_t evict_entries,
                       sim::Ticks flash_read_estimate);

    /**
     * Service the MissRequest at the head of the FC→BC channel:
     * evict-buffer short-circuit, MSR dedup/alloc, flash issue. The
     * slot is released at the transaction's completion tick, so the
     * channel depth bounds the BC's outstanding-transaction window.
     */
    BcReply service();

    /**
     * Completion report for a read command the facade submitted from
     * the BC→flash channel: stamps the pending miss and schedules the
     * page-arrival install.
     */
    void flashReadIssued(mem::PageNum page, sim::Ticks issued_at,
                         sim::Ticks complete_at);

    /** Outstanding (in-flight) misses right now. */
    std::uint32_t
    outstandingMisses() const
    {
        return static_cast<std::uint32_t>(pending.size());
    }

    /** Zero all statistics (end of warmup). */
    void resetStats();

    void regStats(sim::StatRegistry &reg) const;

    /**
     * Audit the miss-tracking machinery: every issued pending miss
     * holds an MSR entry (and nothing else does), the stall queue
     * mirrors the un-issued pending misses exactly, and footprint
     * masks only exist for resident pages.
     */
    void checkInvariants(sim::InvariantChecker &chk) const;

    const Stats &stats() const { return statsData; }
    const MissStatusRow &msr() const { return msrTable; }
    const EvictBuffer &evictBuffer() const { return evictBuf; }

  private:
    struct PendingMiss {
        sim::Ticks dataReady = 0; ///< Install-complete estimate.
        std::vector<WaiterCookie> waiters;
        bool issued = false;   ///< Flash read issued (vs MSR-stalled).
        bool anyWrite = false; ///< Install dirty (write-allocate).
        std::uint64_t fetchMask = ~0ull; ///< Blocks to transfer.
    };

    /** Page number of @p pa at this cache's page granularity. */
    mem::PageNum
    pageNum(mem::Addr pa) const
    {
        return mem::pageNumber(pa, cfg.pageBytes);
    }

    /** Byte base address of page @p pn (trace payloads, flash LPN). */
    mem::Addr
    pageByteAddr(mem::PageNum pn) const
    {
        return mem::pageAddr(pn, cfg.pageBytes);
    }

    /**
     * Miss handling: MSR dedup/alloc, flash read, arrival event.
     * @return the tick the requester's data will be ready.
     */
    sim::Ticks startMiss(mem::PageNum page, sim::Ticks now, bool write,
                         std::uint64_t want_mask);

    /** Expected cost of installing one page into its frame. */
    sim::Ticks installEstimate() const;

    /** Install an arrived page, drain victims, notify the FC. */
    void pageArrived(mem::PageNum page);

    /** Issue queued misses that were blocked on a full MSR set. */
    void retryMsrStalled(sim::Ticks now);

    /** Drain one evict-buffer entry to flash. */
    void drainEvictBuffer(sim::Ticks now);

    sim::Ticks bcOp() const { return bcOpTicks; }

    const DramCacheConfig &cfg;
    const mem::AddressMap &addrMap;
    mem::Dram &dramModel;
    mem::SetAssocCache &pageTags;
    FootprintState &fp;
    sim::BoundedChannel<MissRequest> &inbox;
    sim::BoundedChannel<FlashCmdMsg> &toFlash;
    sim::BoundedChannel<InstallComplete> &toFc;
    MissStatusRow msrTable;
    EvictBuffer evictBuf;
    std::unordered_map<mem::PageNum, PendingMiss> pending;
    std::deque<mem::PageNum> msrStalled; ///< Waiting for MSR space.
    sim::Ticks bcOpTicks;
    sim::Ticks flashReadEstimate;
    Stats statsData;
};

} // namespace astriflash::core

#endif // ASTRIFLASH_CORE_BACKSIDE_CONTROLLER_HH
