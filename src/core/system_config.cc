#include "system_config.hh"

namespace astriflash::core {

const char *
systemKindName(SystemKind kind)
{
    switch (kind) {
      case SystemKind::DramOnly:
        return "DRAM-only";
      case SystemKind::AstriFlash:
        return "AstriFlash";
      case SystemKind::AstriFlashIdeal:
        return "AstriFlash-Ideal";
      case SystemKind::AstriFlashNoPS:
        return "AstriFlash-noPS";
      case SystemKind::AstriFlashNoDP:
        return "AstriFlash-noDP";
      case SystemKind::OsSwap:
        return "OS-Swap";
      case SystemKind::FlashSync:
        return "Flash-Sync";
    }
    return "unknown";
}

void
SystemConfig::applyKindDefaults()
{
    switch (kind) {
      case SystemKind::AstriFlashIdeal:
        threadSwitch = 0;
        sched.policy = SchedPolicy::PriorityAging;
        break;
      case SystemKind::AstriFlashNoPS:
        sched.policy = SchedPolicy::Fifo;
        break;
      case SystemKind::AstriFlash:
      case SystemKind::AstriFlashNoDP:
        sched.policy = SchedPolicy::PriorityAging;
        break;
      case SystemKind::OsSwap:
        // OS threads are heavier; a realistic swap setup runs fewer
        // blocked threads per core, but the same bound keeps the
        // comparison about per-switch cost, not thread supply.
        break;
      case SystemKind::DramOnly:
      case SystemKind::FlashSync:
        break;
    }
}

} // namespace astriflash::core
