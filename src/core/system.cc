#include "system.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/trace_events.hh"

namespace astriflash::core {

System::System(const SystemConfig &config) : cfg(config)
{
    cfg.applyKindDefaults();
    if (cfg.hostJobs > 1 && !cfg.dramCache.fc.pipeline) {
        // Merged partitioned run: every domain queue (main + BC
        // shards, created in buildMemorySystem) shares one clock and
        // one sequence space, the precondition for byte-identical
        // merged execution (DESIGN.md §15). Pipelined runs keep the
        // queues in separate exec groups with independent sequence
        // spaces (DESIGN.md §17) and must NOT share a group.
        eq.joinGroup(eqGroup);
    }
    eq.setAuditor(&auditor);
    // Perturbed same-tick ordering (tools/detshake); seed 0 is the
    // exact production order, and nonzero seeds are fatal unless the
    // hook is compiled in.
    eq.setTiePerturbation(cfg.tieBreakSeed);
    // The frontside domain owns the main queue: FC, cores, arrivals
    // and the (passive) flash fabric all execute on it. BC shard
    // domains are added as their queues are built (hostJobs > 1).
    ownership.addDomain("fc", &eq);
    // SimObjects constructed anywhere below resolve their owning
    // domain from the queue they schedule on and declare themselves.
    sim::OwnershipAuditor::Scope own_scope(ownAuditor);
    {
        // Channels built anywhere below self-register with this
        // system's auditor.
        sim::CausalityAuditor::Scope audit_scope(auditor);
        buildMemorySystem();
    }

    for (std::uint32_t c = 0; c < cfg.cores; ++c) {
        workload::WorkloadConfig wc = cfg.workload;
        wc.seed = cfg.seed * 1000003 + c; // independent streams
        gens.push_back(
            workload::makeWorkload(cfg.workloadKind, wc));
        cores.push_back(std::make_unique<SimCore>(
            eq, "core" + std::to_string(c), c, *this));
    }

    if (dcache) {
        dcache->setPageReadyCallback(
            [this](mem::PageNum page, sim::Ticks when,
                   const std::vector<WaiterCookie> &waiters) {
                // Route the arrival to each waiting core once.
                // (A bitmask over core&63 would alias cores >= 64
                // and silently drop wakeups.)
                std::vector<bool> seen(cores.size(), false);
                for (WaiterCookie cookie : waiters) {
                    const auto core =
                        static_cast<std::uint32_t>(cookie);
                    if (core < cores.size() && !seen[core]) {
                        seen[core] = true;
                        cores[core]->pageReady(page, when);
                    }
                }
            });
    }

    if (cfg.meanInterarrival > 0) {
        arrivals = std::make_unique<workload::PoissonArrivals>(
            cfg.meanInterarrival, cfg.seed * 31 + 7);
    }

    // Pre-size the event heap and the measurement histograms from
    // configuration hints so the warm-up phase reaches steady state
    // without a single reallocation on the kernel's hot path. The
    // event population is bounded by per-core machinery (run quantum,
    // pending queue, hierarchy misses) plus one in-flight event per
    // MSR entry and a slice of arrival bookkeeping.
    std::size_t expected_events =
        64 + static_cast<std::size_t>(cfg.cores) *
                 (cfg.sched.pendingCap + 32);
    if (dcache)
        expected_events += dcache->msrCapacity();
    if (arrivals)
        expected_events += 64;
    eq.reserve(expected_events);

    // Every recorded latency is bounded by the simulated-time wall.
    serviceHist.reserveFor(cfg.maxSimTicks);
    responseHist.reserveFor(cfg.maxSimTicks);

    registerStats();
    registerInvariants();
}

void
System::registerStats()
{
    auto &sys_reg = statsTree.subRegistry("system");
    sys_reg.registerHistogram("service", &serviceHist,
                              "per-job service time in ticks");
    sys_reg.registerHistogram("response", &responseHist,
                              "arrival-to-completion time in ticks");
    sys_reg.registerUint("measured_jobs", &measuredJobs,
                         "jobs completed inside the measurement window");
    sys_reg.registerUint("completed_jobs", &completedJobs,
                         "jobs completed since the run began");
    sys_reg.registerUint("measured_misses", &measuredMisses,
                         "DRAM-cache misses inside the window");

    for (std::size_t c = 0; c < cores.size(); ++c)
        cores[c]->regStats(
            statsTree.subRegistry("core" + std::to_string(c)));
    if (dcache)
        dcache->regStats(statsTree.subRegistry("dcache"));
    if (flashDev)
        flashDev->regStats(statsTree.subRegistry("flash"));
    if (flatDram)
        flatDram->regStats(statsTree.subRegistry("flatdram"));
    if (osModel)
        osModel->regStats(statsTree.subRegistry("os"));
}

void
System::registerInvariants()
{
    invariants.add("eq", [this](sim::InvariantChecker &chk) {
        eq.checkInvariants(chk);
    });
    for (std::size_t i = 0; i < bcQueues.size(); ++i) {
        invariants.add("eq.bc" + std::to_string(i),
                       [this, i](sim::InvariantChecker &chk) {
                           bcQueues[i]->checkInvariants(chk);
                       });
    }
    invariants.add("causality", [this](sim::InvariantChecker &chk) {
        auditor.checkInvariants(chk);
    });
    invariants.add("ownership", [this](sim::InvariantChecker &chk) {
        ownAuditor.checkInvariants(chk);
    });
    for (std::size_t c = 0; c < cores.size(); ++c) {
        SimCore *core = cores[c].get();
        const std::string prefix = "core" + std::to_string(c);
        invariants.add(prefix + ".sched",
                       [core](sim::InvariantChecker &chk) {
                           core->scheduler().checkInvariants(chk);
                       });
        invariants.add(prefix + ".tlb",
                       [core](sim::InvariantChecker &chk) {
                           core->tlb().checkInvariants(chk);
                       });
        invariants.add(prefix + ".hier",
                       [core](sim::InvariantChecker &chk) {
                           core->hierarchy().checkInvariants(chk);
                       });
        invariants.add(prefix + ".aso",
                       [core](sim::InvariantChecker &chk) {
                           core->aso().checkInvariants(chk);
                       });
    }
    if (dcache) {
        invariants.add("dcache", [this](sim::InvariantChecker &chk) {
            dcache->checkInvariants(chk);
        });
        // Shard-scoped hook names collapse to the pre-sharding
        // spellings ("dcache.bc.msr", "dcache.fc_to_bc", ...) when
        // there is a single BC shard.
        const std::uint32_t shards = dcache->shardCount();
        for (std::uint32_t i = 0; i < shards; ++i) {
            const std::string tag =
                shards == 1 ? std::string{} : std::to_string(i);
            invariants.add("dcache.bc" + tag + ".msr",
                           [this, i](sim::InvariantChecker &chk) {
                               dcache->msr(i).checkInvariants(chk);
                           });
            invariants.add(
                "dcache.bc" + tag + ".evictbuf",
                [this, i](sim::InvariantChecker &chk) {
                    dcache->evictBuffer(i).checkInvariants(chk);
                });
        }
        invariants.add("dcache.tags",
                       [this](sim::InvariantChecker &chk) {
                           dcache->pageArray().checkInvariants(chk);
                       });
        for (std::uint32_t i = 0; i < shards; ++i) {
            const std::string tag =
                shards == 1 ? std::string{} : std::to_string(i);
            invariants.add(
                "dcache.fc_to_bc" + tag,
                [this, i](sim::InvariantChecker &chk) {
                    dcache->missChannel(i).checkInvariants(chk);
                });
            invariants.add(
                "dcache.bc_to_flash" + tag,
                [this, i](sim::InvariantChecker &chk) {
                    dcache->flashChannel(i).checkInvariants(chk);
                });
            invariants.add(
                "dcache.bc_to_fc" + tag,
                [this, i](sim::InvariantChecker &chk) {
                    dcache->installChannel(i).checkInvariants(chk);
                });
            // The rsp/ctl pair carries traffic in both modes, but
            // registering it only for pipelined runs keeps the
            // default config's invariant-condition count (part of the
            // golden fingerprint) identical to the pre-split seed.
            if (dcache->config().fc.pipeline) {
                invariants.add(
                    "dcache.bc_to_fc_rsp" + tag,
                    [this, i](sim::InvariantChecker &chk) {
                        dcache->rspChannel(i).checkInvariants(chk);
                    });
                invariants.add(
                    "dcache.fc_to_bc_ctl" + tag,
                    [this, i](sim::InvariantChecker &chk) {
                        dcache->ctlChannel(i).checkInvariants(chk);
                    });
            }
        }
    }
    if (flashDev) {
        if (flashDev->deviceCount() == 1) {
            invariants.add("flash",
                           [this](sim::InvariantChecker &chk) {
                               flashDev->checkInvariants(chk);
                           });
        } else {
            for (std::uint32_t j = 0; j < flashDev->deviceCount();
                 ++j) {
                invariants.add(
                    "flash.dev" + std::to_string(j),
                    [this, j](sim::InvariantChecker &chk) {
                        flashDev->device(j).checkInvariants(chk);
                    });
            }
        }
    }
    if (osModel) {
        invariants.add("os", [this](sim::InvariantChecker &chk) {
            osModel->checkInvariants(chk);
        });
    }
}

System::~System() = default;

void
System::buildMemorySystem()
{
    const std::uint64_t dataset = cfg.workload.datasetBytes;
    const std::uint64_t dataset_pages = dataset / mem::kPageSize;

    // Page-table region sits above the dataset inside the flash BAR
    // (only used by the noDP configuration's leaf walks).
    const std::uint64_t pt_stride =
        ((dataset_pages >> mem::PageTableModel::kIndexBits) + 1) *
        mem::kPageSize;
    const std::uint64_t pt_region =
        pt_stride * mem::PageTableModel::kLevels;
    const std::uint64_t flash_bytes = dataset + pt_region;

    // Flat DRAM partition: covers the dataset in DRAM-only (the
    // "1 TB of DRAM" machine); elsewhere it holds OS state + PTEs.
    const std::uint64_t flat_bytes =
        cfg.kind == SystemKind::DramOnly
            ? dataset
            : std::max<std::uint64_t>(dataset / 16,
                                      std::uint64_t{64} << 20);
    amap = std::make_unique<mem::AddressMap>(flat_bytes, flash_bytes);

    ptModel = std::make_unique<mem::PageTableModel>(
        mem::alignUp(dataset, mem::kPageSize), mem::kPageSize,
        pt_stride);

    // Size each SSD with headroom above its slice of the dataset
    // (spare blocks for out-of-place writes) and pre-load only the
    // dataset + PT region, striped across the fabric's devices. With
    // one device this reduces exactly to sizing the whole SSD for the
    // whole dataset.
    const std::uint32_t fabric_devices = cfg.dramCache.fabric.devices;
    if (fabric_devices == 0)
        ASTRI_FATAL("flash fabric needs at least one device");
    cfg.flash = flash::FlashConfig::forCapacity(
        (flash_bytes + fabric_devices - 1) / fabric_devices);
    flashDev = std::make_unique<flash::FlashFabric>(
        "flash", cfg.flash, cfg.dramCache.fabric,
        flash_bytes / mem::kPageSize);

    flatDram = std::make_unique<mem::Dram>("flatdram",
                                           cfg.dramCache.dram);

    if (cfg.kind == SystemKind::DramOnly)
        return;

    if (cfg.kind == SystemKind::OsSwap) {
        const std::uint64_t cache_bytes = static_cast<std::uint64_t>(
            static_cast<double>(dataset) * cfg.dramCacheRatio);
        osModel = std::make_unique<os::OsPagingModel>(
            "os", mem::alignUp(cache_bytes, 16 * mem::kPageSize),
            cfg.osCosts, cfg.cores, *flashDev, *amap);
        return;
    }

    DramCacheConfig dc = cfg.dramCache;
    dc.capacityBytes = mem::alignUp(
        static_cast<std::uint64_t>(static_cast<double>(dataset) *
                                   cfg.dramCacheRatio),
        dc.ways * dc.pageBytes);
    cfg.dramCache = dc;
    std::vector<sim::EventQueue *> bc_queues;
    if (cfg.hostJobs > 1 || dc.fc.pipeline) {
        for (std::uint32_t i = 0; i < dc.bc.shards; ++i) {
            auto q = std::make_unique<sim::EventQueue>();
            // Merged mode shares one clock + sequence space for the
            // byte-identity guarantee; pipelined shards run in their
            // own exec groups and keep private sequence counters.
            if (!dc.fc.pipeline)
                q->joinGroup(eqGroup);
            q->setAuditor(&auditor);
            q->setTiePerturbation(cfg.tieBreakSeed);
            ownership.addDomain("bc" + std::to_string(i), q.get());
            bc_queues.push_back(q.get());
            bcQueues.push_back(std::move(q));
        }
    }
    dcache = std::make_unique<DramCache>(eq, "dramcache", dc, *flashDev,
                                         *amap, bc_queues);
}

mem::Addr
System::dataPa(mem::Addr va) const
{
    // DRAM-only serves the dataset from the flat partition; flash-
    // backed configurations map it through the flash BAR (§IV-A).
    if (cfg.kind == SystemKind::DramOnly)
        return va;
    return amap->flashRange().base + va;
}

mem::Addr
System::leafPtePa(mem::Addr va) const
{
    return amap->flashRange().base +
           ptModel->walkAddresses(va)[mem::PageTableModel::kLevels - 1];
}

sim::Ticks
System::flatDramAccess(mem::Addr pa, bool write, sim::Ticks t)
{
    return flatDram->access(pa, t, write).complete;
}

void
System::noteLlcWriteback(mem::Addr pa)
{
    if (dcache)
        dcache->markPageDirty(pa);
    else if (osModel)
        osModel->markDirty(pa);
}

bool
System::supplyJob(std::uint32_t core, sim::Ticks now,
                  workload::Job &job)
{
    if (phase == Phase::Done)
        return false;
    if (arrivals)
        return false; // open loop: jobs come from arrival events only
    job = jobSource ? jobSource(core) : gens[core]->nextJob();
    job.arrival = now;
    job.enqueued = now;
    return true;
}

void
System::scheduleNextArrival()
{
    // Generate enough arrivals to cover warmup + measurement with
    // slack for jobs that never finish inside the window.
    const std::uint64_t target =
        (cfg.warmupJobs + cfg.measureJobs) * 2 + 64;
    if (arrivalsIssued >= target || phase == Phase::Done)
        return;
    const sim::Ticks when = arrivals->next(eq.curTick());
    eq.schedule(when, [this] {
        const std::uint32_t core = nextArrivalCore;
        nextArrivalCore = (nextArrivalCore + 1) % cfg.cores;
        workload::Job job =
            jobSource ? jobSource(core) : gens[core]->nextJob();
        job.arrival = eq.curTick();
        job.enqueued = job.arrival;
        cores[core]->scheduler().enqueueNew(std::move(job));
        cores[core]->kick();
        ++arrivalsIssued;
        scheduleNextArrival();
    });
}

void
System::beginMeasurement(sim::Ticks now)
{
    phase = Phase::Measure;
    measureStart = now;
    serviceHist.reset();
    responseHist.reset();
    measuredMisses = 0;
    if (dcache)
        dcache->resetStats();
    if (osModel)
        osModel->resetStats();
    flashDev->resetStats();
    for (auto &core : cores)
        core->resetStats();
}

void
System::jobFinished(const workload::Job &job, sim::Ticks now)
{
    ++completedJobs;
    if (phase == Phase::Warmup) {
        if (completedJobs >= cfg.warmupJobs)
            beginMeasurement(now);
        return;
    }
    if (phase != Phase::Measure)
        return;
    ++measuredJobs;
    serviceHist.sample(job.service);
    responseHist.sample(job.finished - job.arrival);
    measuredMisses += job.misses;
    if (measuredJobs >= cfg.measureJobs) {
        phase = Phase::Done;
        measureEnd = now;
    }
}

void
System::prewarm()
{
    // Steady-state approximation: the DRAM cache (or OS page cache)
    // holds the hot region plus the most popular Zipfian pages; the
    // TLBs hold the hottest translations.
    const std::uint64_t dataset_pages =
        cfg.workload.datasetBytes / mem::kPageSize;
    const std::uint64_t hot_pages = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               static_cast<double>(dataset_pages) *
               cfg.workload.hotRegionFraction));
    const std::uint64_t frames =
        dcache ? dcache->pageFrames()
               : static_cast<std::uint64_t>(
                     static_cast<double>(dataset_pages) *
                     cfg.dramCacheRatio);

    auto install = [&](mem::Addr page_va) {
        const mem::Addr pa = dataPa(page_va * mem::kPageSize);
        if (dcache)
            dcache->prewarmPage(pa);
        else if (osModel)
            osModel->prewarmPage(pa);
    };

    if (cfg.kind == SystemKind::DramOnly)
        return;

    // Hot region first (always resident in steady state).
    std::uint64_t installed = 0;
    for (std::uint64_t p = 0; p < hot_pages && installed < frames;
         ++p, ++installed) {
        install(dataset_pages - hot_pages + p);
    }
    // Then the Zipfian working set in decreasing popularity (it maps
    // onto the low cold pages; see Workload::coldAddr).
    const std::uint64_t ws = gens.empty()
        ? 0 : gens[0]->workingSet();
    for (std::uint64_t r = 0; installed < frames && r < ws;
         ++r, ++installed) {
        install(gens[0]->rankToPage(r));
    }
    // Any remaining frames pick up uniform-tail pages.
    for (std::uint64_t p = ws;
         installed < frames && p < dataset_pages - hot_pages;
         ++p, ++installed) {
        install(p);
    }
}

void
System::runParallel(sim::Ticks next_check)
{
    // Conservative engine over the channel-lookahead seam. The main
    // queue (frontside + cores + arrivals) and each BC shard queue
    // are distinct domains. In merged mode (pipeline off) all of them
    // share one exec group: the fused-mode controllers complete each
    // access in one synchronous call chain, and the merged-order
    // execution is what keeps stats byte-identical to hostJobs=1
    // (DESIGN.md §15). In pipelined mode every FC<->BC interaction is
    // channel traffic drained by scheduled pumps, so each BC shard's
    // domain gets its own exec group (1 + shards groups total) and
    // the worker pool runs them concurrently (DESIGN.md §17).
    const bool split = dcache && dcache->config().fc.pipeline;
    sim::ParallelEngine::Config ec;
    ec.hostJobs = cfg.hostJobs;
    // Must match the legacy loop's runSteps(20000) burst: the stop
    // condition is only evaluated at these boundaries, and stats keep
    // accumulating until the boundary is reached.
    ec.roundEvents = 20000;
    sim::ParallelEngine engine(ec);
    // Publish the executing domain thread-locally while the engine
    // runs so instrumented callbacks can certify their ownership.
    engine.setOwnership(&ownAuditor);

    const auto fc_dom = engine.addDomain("fc", eq, 0);
    // Facade message-domain index (0 = fc, 1+i = bc shard i) to
    // engine DomainId. post() keys deterministic delivery on the
    // posting domain, so the facade pre-binds one function per
    // channel direction against this table.
    std::vector<sim::ParallelEngine::DomainId> engine_dom{fc_dom};
    if (dcache) {
        const DramCacheConfig &dc = dcache->config();
        const sim::ClockDomain clk(dc.controllerFreqHz);
        const sim::Ticks op = clk.cycles(dc.bc.cyclesPerOp);
        for (std::size_t i = 0; i < bcQueues.size(); ++i) {
            const auto shard = static_cast<std::uint32_t>(i);
            const auto bc_dom = engine.addDomain(
                "bc" + std::to_string(i), *bcQueues[i],
                split ? shard + 1 : 0);
            engine_dom.push_back(bc_dom);
            // Lookahead links mirror the channel contract manifest;
            // the stamp watermarks tighten each horizon with the
            // oldest in-flight message. The flash fabric is passive
            // (submit() completes in the owning BC's chain), so
            // bc_to_flash adds no domain of its own.
            engine.addLink(fc_dom, bc_dom,
                           op * dc.channels.fcToBcMinLatencyOps,
                           [this, shard] {
                               return dcache->missChannel(shard)
                                   .stampWatermark();
                           });
            engine.addLink(bc_dom, fc_dom,
                           op * dc.channels.bcToFcMinLatencyOps,
                           [this, shard] {
                               return dcache->installChannel(shard)
                                   .stampWatermark();
                           });
            engine.addLink(bc_dom, fc_dom,
                           op * dc.channels.bcToFcRspMinLatencyOps,
                           [this, shard] {
                               return dcache->rspChannel(shard)
                                   .stampWatermark();
                           });
            engine.addLink(fc_dom, bc_dom,
                           op * dc.channels.fcToBcCtlMinLatencyOps,
                           [this, shard] {
                               return dcache->ctlChannel(shard)
                                   .stampWatermark();
                           });
        }
    }
    if (split) {
        // Route the controllers' pump posts through the engine's
        // cross-group mailboxes (delivered in deterministic order at
        // the next barrier) instead of the facade's single-queue
        // fallback.
        dcache->setCrossPost(
            [&engine, engine_dom](std::uint32_t src, std::uint32_t dst,
                                  sim::Ticks when,
                                  std::function<void()> fn) {
                engine.post(engine_dom[src], engine_dom[dst], when,
                            std::move(fn));
            });
    }

    sim::ParallelEngine::RunHooks hooks;
    hooks.stop = [this] {
        return phase == Phase::Done ||
               eq.curTick() >= cfg.maxSimTicks;
    };
    hooks.atBarrier = [this, next_check, split](sim::Ticks) mutable {
        if (split) {
            // Re-freeze the seam channels' drain windows: the next
            // round's pumps drain exactly this barrier's queues, so
            // the drained sets cannot depend on how producer and
            // consumer workers interleave inside a round.
            dcache->freezeSeamWindows();
        }
        if (sim::checksEnabled() && cfg.invariantInterval > 0 &&
            eq.curTick() >= next_check) {
            invariants.checkAll(eq.curTick());
            next_check = eq.curTick() + cfg.invariantInterval;
        }
    };
    // Workers execute this system's events on the run owner's behalf;
    // route their trace emissions into the owner's ring (--trace
    // drains it after run()).
    sim::Tracer *trace_sink = &sim::Tracer::instance();
    hooks.workerInit = [trace_sink] {
        sim::Tracer::redirectThread(trace_sink);
    };

    if (split) {
        // Arm the first round's drain windows (atBarrier covers the
        // rest).
        dcache->freezeSeamWindows();
    }
    engine.run(hooks);
    engineStatsData = engine.stats();
    if (split) {
        // The engine dies with this frame; put the self-scheduling
        // fallback back so post-run draining (tests, quiesce sweeps)
        // cannot call through a dangling reference.
        dcache->setCrossPost(nullptr);
        dcache->thawSeamWindows();
    }
}

RunResults
System::run()
{
    prewarm();
    for (auto &core : cores)
        core->start();
    if (arrivals)
        scheduleNextArrival();

    // Invariant sweeps run between event bursts, never from scheduled
    // events: a recurring event would keep the queue non-empty and
    // defeat quiesce-by-drain termination.
    sim::Ticks next_check = eq.curTick() + cfg.invariantInterval;
    if (cfg.hostJobs > 1 || !bcQueues.empty()) {
        // Partitioned (hostJobs > 1) and/or pipelined (--fc-pipeline
        // builds per-shard queues even at hostJobs=1, run inline by a
        // single-worker engine) execution.
        runParallel(next_check);
    } else {
        // The legacy loop runs everything in the frontside domain
        // (the only one that exists when the system is unpartitioned).
        sim::OwnershipAuditor::ExecScope exec_scope(
            ownership.domainOf(&eq));
        while (phase != Phase::Done && !eq.empty() &&
               eq.curTick() < cfg.maxSimTicks) {
            eq.runSteps(20000);
            if (sim::checksEnabled() && cfg.invariantInterval > 0 &&
                eq.curTick() >= next_check) {
                invariants.checkAll(eq.curTick());
                next_check = eq.curTick() + cfg.invariantInterval;
            }
        }
    }
    if (sim::checksEnabled())
        invariants.checkAll(eq.curTick()); // quiesce sweep
    if (phase != Phase::Done) {
        ASTRI_WARN("%s/%s: run ended early (phase=%d, %llu measured)",
                   systemKindName(cfg.kind),
                   workload::kindName(cfg.workloadKind),
                   static_cast<int>(phase),
                   static_cast<unsigned long long>(measuredJobs));
        measureEnd = eq.curTick();
    }

    RunResults res;
    res.jobs = measuredJobs;
    res.measureTicks =
        measureEnd > measureStart ? measureEnd - measureStart : 0;
    if (res.measureTicks > 0) {
        res.throughputJobsPerSec =
            static_cast<double>(measuredJobs) /
            sim::toSeconds(res.measureTicks);
    }
    res.service = serviceHist;
    res.response = responseHist;

    if (dcache) {
        res.dramCacheHitRatio = dcache->hitRatio();
        res.peakOutstandingMisses = dcache->bcTotals().peakOutstanding;
    }
    res.flashReads = flashDev->readsCompleted();
    res.flashWrites = flashDev->writesAccepted();
    res.gcBlockedReads = flashDev->gcBlockedReadCount();
    if (osModel)
        res.shootdowns = osModel->bus().stats().shootdowns.value();
    res.invariantSweeps = invariants.sweeps();
    res.invariantChecks = invariants.conditionsEvaluated();
    res.invariantViolations = invariants.violationCount();

    // Calibration: execution time between misses (§V-A's 5-25 µs).
    if (measuredMisses > 0 && measuredJobs > 0) {
        const double exec_per_job = static_cast<double>(
            gens[0]->meanComputePerJob());
        res.avgExecBetweenMissesUs =
            exec_per_job * static_cast<double>(measuredJobs) /
            static_cast<double>(measuredMisses) / sim::kMicrosecond;
    }
    return res;
}

} // namespace astriflash::core
