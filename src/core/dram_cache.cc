#include "dram_cache.hh"

#include "sim/logging.hh"

namespace astriflash::core {

DramCache::DramCache(sim::EventQueue &eq, std::string name,
                     const DramCacheConfig &config,
                     flash::Backend &flash,
                     const mem::AddressMap &amap,
                     const std::vector<sim::EventQueue *> &bc_queues)
    : sim::SimObject(eq, std::move(name)), cfg(config), flashDev(flash),
      dramModel(SimObject::name() + ".dram", config.dram),
      pageTags(SimObject::name() + ".tags", config.capacityBytes,
               config.pageBytes, config.ways),
      fcCtl(SimObject::name() + ".fc", cfg, dramModel, pageTags,
            footprint, fcToBc, bcToFc)
{
    // Bad user configuration, not an invariant: SIM_CHECK compiles
    // out in plain Release, and shards=0 would SIGFPE in the slice
    // division below before any armed check could fire.
    const std::uint32_t shards = cfg.bc.shards;
    if (shards == 0)
        ASTRI_FATAL("%s: at least one BC shard required",
                    SimObject::name().c_str());

    // Capacity conservation: the per-shard slices of the cache-wide
    // MSR and evict-buffer capacities must sum exactly to the
    // configured totals under any shard count — sharding repartitions
    // buffering, it never creates or destroys it.
    std::uint64_t msr_set_sum = 0;
    std::uint64_t evict_sum = 0;
    for (std::uint32_t i = 0; i < shards; ++i) {
        const std::uint32_t msr_sets =
            shardSlice(cfg.bc.msrSets, shards, i);
        const std::uint32_t evict_entries =
            shardSlice(cfg.bc.evictBufferEntries, shards, i);
        SIM_CHECK_MSG(msr_sets >= 1 && evict_entries >= 1,
                      "%s: shard %u's slice is empty (%u MSR sets, %u "
                      "evict entries) — fewer shards or more capacity",
                      SimObject::name().c_str(), i, msr_sets,
                      evict_entries);
        msr_set_sum += msr_sets;
        evict_sum += evict_entries;
    }
    SIM_CHECK_MSG(msr_set_sum == cfg.bc.msrSets &&
                      evict_sum == cfg.bc.evictBufferEntries,
                  "%s: shard slices sum to %llu MSR sets / %llu evict "
                  "entries, configured %u / %u",
                  SimObject::name().c_str(),
                  static_cast<unsigned long long>(msr_set_sum),
                  static_cast<unsigned long long>(evict_sum),
                  cfg.bc.msrSets, cfg.bc.evictBufferEntries);

    fcToBc.reserve(shards);
    bcToFlash.reserve(shards);
    bcToFc.reserve(shards);
    bcCtls.reserve(shards);
    // The lookahead manifest, converted from BC-op multiples to
    // ticks. fc_to_bc and bc_to_flash are fed at skewed core-local
    // clocks through the FC's synchronous probe, so only bc_to_fc —
    // pushed exclusively by the arrival event handler — declares
    // monotone push ticks.
    const sim::ClockDomain clk(cfg.controllerFreqHz);
    const sim::Ticks op = clk.cycles(cfg.bc.cyclesPerOp);
    const sim::ChannelContract miss_contract{
        op * cfg.channels.fcToBcMinLatencyOps, false};
    const sim::ChannelContract flash_contract{
        op * cfg.channels.bcToFlashMinLatencyOps, false};
    const sim::ChannelContract install_contract{
        op * cfg.channels.bcToFcMinLatencyOps, true};
    for (std::uint32_t i = 0; i < shards; ++i) {
        const std::string tag = shardTag(i);
        fcToBc.push_back(
            std::make_unique<sim::BoundedChannel<MissRequest>>(
                SimObject::name() + ".fc_to_bc" + tag,
                cfg.channels.fcToBcDepth, miss_contract));
        bcToFlash.push_back(
            std::make_unique<sim::BoundedChannel<FlashCmdMsg>>(
                SimObject::name() + ".bc_to_flash" + tag,
                cfg.channels.bcToFlashDepth, flash_contract));
        bcToFc.push_back(
            std::make_unique<sim::BoundedChannel<InstallComplete>>(
                SimObject::name() + ".bc_to_fc" + tag,
                cfg.channels.bcToFcDepth, install_contract));
    }
    if (!bc_queues.empty() && bc_queues.size() != shards) {
        ASTRI_FATAL("%s: %zu domain queues for %u BC shards",
                    SimObject::name().c_str(), bc_queues.size(),
                    shards);
    }
    for (std::uint32_t i = 0; i < shards; ++i) {
        bcCtls.push_back(std::make_unique<BacksideController>(
            bc_queues.empty() ? eq : *bc_queues[i],
            SimObject::name() + ".bc" + shardTag(i), cfg, amap,
            dramModel, pageTags, footprint, *fcToBc[i], *bcToFlash[i],
            *bcToFc[i], shardSlice(cfg.bc.msrSets, shards, i),
            cfg.bc.msrEntriesPerSet,
            shardSlice(cfg.bc.evictBufferEntries, shards, i),
            // Conservative whole-read estimate for MSR-stalled misses,
            // derived here so the BC never sees the device.
            flashDev.readEstimate()));
        bcToFlash[i]->setDrainHook(
            [this, i] { pumpFlashCommands(i); });
        bcToFc[i]->setDrainHook([this, i] {
            // BC-side push synchronously re-enters the FC here.
            noteCrossing(installCrossings[i], curTick());
            fcCtl.deliverInstalls();
        });
    }

    // Ownership declarations (DESIGN.md §16). The facade's value-owned
    // shared structures execute on the frontside queue; each shard's
    // channel triple declares its endpoint domains; and the facade's
    // deliberate synchronous crossings — the exact worklist of the
    // exec-group split — are pre-registered so the runtime audit
    // counts them instead of flagging them.
    serviceCrossings.assign(shards, kNoCrossing);
    submitCrossings.assign(shards, kNoCrossing);
    installCrossings.assign(shards, kNoCrossing);
    if ((ownAudit = sim::OwnershipAuditor::current()) != nullptr) {
        sim::OwnershipRegistry &own = ownAudit->registry();
        const sim::DomainId fc_dom = own.domainOf(&eq);
        own.declareComponent(SimObject::name() + ".fc", fc_dom);
        own.declareComponent(SimObject::name() + ".dram", fc_dom);
        own.declareComponent(SimObject::name() + ".tags", fc_dom);
        own.declareComponent(SimObject::name() + ".footprint", fc_dom);
        for (std::uint32_t i = 0; i < shards; ++i) {
            const std::string tag = shardTag(i);
            const sim::DomainId bc_dom = own.domainOf(
                bc_queues.empty() ? static_cast<const void *>(&eq)
                                  : bc_queues[i]);
            fcToBc[i]->declareEndpoints(fc_dom, bc_dom);
            bcToFlash[i]->declareEndpoints(bc_dom, fc_dom);
            bcToFc[i]->declareEndpoints(bc_dom, fc_dom);
            if (fc_dom == bc_dom || fc_dom == sim::kNoDomain ||
                bc_dom == sim::kNoDomain) {
                continue; // unpartitioned: nothing crosses
            }
            serviceCrossings[i] = ownAudit->registerCrossing(
                SimObject::name() + ".bc" + tag + ".service", fc_dom,
                bc_dom);
            submitCrossings[i] = ownAudit->registerCrossing(
                SimObject::name() + ".bc" + tag + ".flash_submit",
                bc_dom, fc_dom);
            installCrossings[i] = ownAudit->registerCrossing(
                SimObject::name() + ".bc" + tag + ".deliver_installs",
                bc_dom, fc_dom);
        }
    }
}

std::string
DramCache::shardTag(std::uint32_t shard) const
{
    // Unsharded names collapse to the pre-sharding spellings so the
    // golden stat namespaces stay byte-identical.
    return cfg.bc.shards == 1 ? std::string{}
                              : std::to_string(shard);
}

void
DramCache::pumpFlashCommands(std::uint32_t shard)
{
    auto &channel = *bcToFlash[shard];
    while (!channel.empty()) {
        auto &st = channel.front();
        const FlashCmdMsg msg = st.msg;
        // Backpressure from a full command channel delays the issue
        // tick to the accept tick.
        const sim::Ticks issued = st.acceptedAt;
        // BC-side push synchronously drives the fc-owned fabric.
        noteCrossing(submitCrossings[shard], issued);
        const auto res = flashDev.submit(msg.cmd, issued);
        // Consumed at the issue tick; the slot models a device-queue
        // entry, held until the read completes or the write is
        // accepted into the device buffer.
        channel.dropFront(issued, res.complete);
        if (msg.cmd.op == flash::FlashCommand::Op::Read)
            bcCtls[shard]->flashReadIssued(msg.page, issued,
                                           res.complete);
    }
}

DcAccess
DramCache::access(mem::Addr pa, bool write, sim::Ticks now,
                  WaiterCookie waiter)
{
    FrontsideController::Probe probe =
        fcCtl.access(pa, write, now, waiter);
    if (probe.complete)
        return probe.out;
    // FC-side miss synchronously services the BC shard (BcReply).
    noteCrossing(serviceCrossings[probe.shard], now);
    const BcReply rep = bcCtls[probe.shard]->service();
    return fcCtl.finishMiss(probe, rep);
}

sim::Ticks
DramCache::accessSync(mem::Addr pa, bool write, sim::Ticks now)
{
    FrontsideController::Probe probe = fcCtl.accessSync(pa, write, now);
    if (probe.complete)
        return probe.out.ready;
    noteCrossing(serviceCrossings[probe.shard], now);
    const BcReply rep = bcCtls[probe.shard]->service();
    return fcCtl.finishSyncMiss(probe, rep);
}

bool
DramCache::pageResident(mem::Addr pa) const
{
    return pageTags.contains(pa);
}

void
DramCache::prewarmPage(mem::Addr pa)
{
    pageTags.fill(mem::pageBase(pa, cfg.pageBytes), false);
    if (cfg.footprintEnabled)
        footprint.fetched[mem::pageNumber(pa, cfg.pageBytes)] = ~0ull;
}

void
DramCache::resetStats()
{
    fcCtl.resetStats();
    for (auto &bc : bcCtls)
        bc->resetStats();
}

DramCache::BcTotals
DramCache::bcTotals() const
{
    BcTotals totals;
    for (const auto &bc : bcCtls) {
        totals.fills += bc->stats().fills.value();
        totals.dirtyWritebacks += bc->stats().dirtyWritebacks.value();
        totals.flashBytesRead += bc->stats().flashBytesRead.value();
        totals.peakOutstanding += bc->stats().peakOutstanding;
    }
    return totals;
}

void
DramCache::regStats(sim::StatRegistry &reg) const
{
    fcCtl.regStats(reg.subRegistry("fc"));
    for (std::uint32_t i = 0; i < shardCount(); ++i)
        bcCtls[i]->regStats(reg.subRegistry("bc" + shardTag(i)));
    dramModel.regStats(reg.subRegistry("dram"));
    pageTags.regStats(reg.subRegistry("tags"));
    for (std::uint32_t i = 0; i < shardCount(); ++i) {
        const std::string tag = shardTag(i);
        fcToBc[i]->regStats(reg.subRegistry("fc_to_bc" + tag));
        bcToFlash[i]->regStats(reg.subRegistry("bc_to_flash" + tag));
        bcToFc[i]->regStats(reg.subRegistry("bc_to_fc" + tag));
    }
}

void
DramCache::checkInvariants(sim::InvariantChecker &chk) const
{
    fcCtl.checkInvariants(chk);
    for (const auto &bc : bcCtls)
        bc->checkInvariants(chk);
}

} // namespace astriflash::core
