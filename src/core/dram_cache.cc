#include "dram_cache.hh"

#include "sim/logging.hh"

namespace astriflash::core {

DramCache::DramCache(sim::EventQueue &eq, std::string name,
                     const DramCacheConfig &config,
                     flash::Backend &flash,
                     const mem::AddressMap &amap,
                     const std::vector<sim::EventQueue *> &bc_queues)
    : sim::SimObject(eq, std::move(name)), cfg(config),
      dramModel(SimObject::name() + ".dram", config.dram),
      pageTags(SimObject::name() + ".tags", config.capacityBytes,
               config.pageBytes, config.ways),
      fcCtl(SimObject::name() + ".fc", cfg, dramModel, pageTags,
            footprint, fcToBc, bcToFc, bcToFcRsp, fcToBcCtl,
            // Conservative whole-read estimate for pipelined sync
            // misses, derived here so the FC never sees the device.
            flash.readEstimate())
{
    // Bad user configuration, not an invariant: SIM_CHECK compiles
    // out in plain Release, and shards=0 would SIGFPE in the slice
    // division below before any armed check could fire.
    const std::uint32_t shards = cfg.bc.shards;
    if (shards == 0)
        ASTRI_FATAL("%s: at least one BC shard required",
                    SimObject::name().c_str());
    if (cfg.fc.pipeline && cfg.fabric.devices % shards != 0) {
        // Split exec groups submit flash commands concurrently; the
        // page-interleaved shards only hit disjoint devices when the
        // device count is a shard multiple (lpn % devices then fixes
        // the device's shard residue).
        ASTRI_FATAL("%s: pipeline mode needs the flash device count "
                    "(%u) to be a multiple of the BC shard count (%u)",
                    SimObject::name().c_str(), cfg.fabric.devices,
                    shards);
    }

    // Capacity conservation: the per-shard slices of the cache-wide
    // MSR and evict-buffer capacities must sum exactly to the
    // configured totals under any shard count — sharding repartitions
    // buffering, it never creates or destroys it.
    std::uint64_t msr_set_sum = 0;
    std::uint64_t evict_sum = 0;
    for (std::uint32_t i = 0; i < shards; ++i) {
        const std::uint32_t msr_sets =
            shardSlice(cfg.bc.msrSets, shards, i);
        const std::uint32_t evict_entries =
            shardSlice(cfg.bc.evictBufferEntries, shards, i);
        SIM_CHECK_MSG(msr_sets >= 1 && evict_entries >= 1,
                      "%s: shard %u's slice is empty (%u MSR sets, %u "
                      "evict entries) — fewer shards or more capacity",
                      SimObject::name().c_str(), i, msr_sets,
                      evict_entries);
        msr_set_sum += msr_sets;
        evict_sum += evict_entries;
    }
    SIM_CHECK_MSG(msr_set_sum == cfg.bc.msrSets &&
                      evict_sum == cfg.bc.evictBufferEntries,
                  "%s: shard slices sum to %llu MSR sets / %llu evict "
                  "entries, configured %u / %u",
                  SimObject::name().c_str(),
                  static_cast<unsigned long long>(msr_set_sum),
                  static_cast<unsigned long long>(evict_sum),
                  cfg.bc.msrSets, cfg.bc.evictBufferEntries);

    fcToBc.reserve(shards);
    bcToFlash.reserve(shards);
    bcToFc.reserve(shards);
    bcToFcRsp.reserve(shards);
    fcToBcCtl.reserve(shards);
    bcCtls.reserve(shards);
    // The lookahead manifest, converted from BC-op multiples to
    // ticks. fc_to_bc and bc_to_flash are fed at skewed core-local
    // clocks through the FC's synchronous probe, so only bc_to_fc —
    // pushed exclusively by the arrival event handler — declares
    // monotone push ticks. The rsp channel mixes probe-clocked acks
    // with event-clocked install requests and the ctl channel answers
    // them, so neither declares monotonicity.
    const sim::ClockDomain clk(cfg.controllerFreqHz);
    const sim::Ticks op = clk.cycles(cfg.bc.cyclesPerOp);
    const sim::ChannelContract miss_contract{
        op * cfg.channels.fcToBcMinLatencyOps, false};
    const sim::ChannelContract flash_contract{
        op * cfg.channels.bcToFlashMinLatencyOps, false};
    const sim::ChannelContract install_contract{
        op * cfg.channels.bcToFcMinLatencyOps, true};
    const sim::ChannelContract rsp_contract{
        op * cfg.channels.bcToFcRspMinLatencyOps, false};
    const sim::ChannelContract ctl_contract{
        op * cfg.channels.fcToBcCtlMinLatencyOps, false};
    for (std::uint32_t i = 0; i < shards; ++i) {
        const std::string tag = shardTag(i);
        fcToBc.push_back(
            std::make_unique<sim::BoundedChannel<MissRequest>>(
                SimObject::name() + ".fc_to_bc" + tag,
                cfg.channels.fcToBcDepth, miss_contract));
        bcToFlash.push_back(
            std::make_unique<sim::BoundedChannel<FlashCmdMsg>>(
                SimObject::name() + ".bc_to_flash" + tag,
                cfg.channels.bcToFlashDepth, flash_contract));
        bcToFc.push_back(
            std::make_unique<sim::BoundedChannel<InstallComplete>>(
                SimObject::name() + ".bc_to_fc" + tag,
                cfg.channels.bcToFcDepth, install_contract));
        bcToFcRsp.push_back(
            std::make_unique<sim::BoundedChannel<BcNotice>>(
                SimObject::name() + ".bc_to_fc_rsp" + tag,
                cfg.channels.bcToFcRspDepth, rsp_contract));
        fcToBcCtl.push_back(
            std::make_unique<sim::BoundedChannel<InstallGrant>>(
                SimObject::name() + ".fc_to_bc_ctl" + tag,
                cfg.channels.fcToBcCtlDepth, ctl_contract));
    }
    if (!bc_queues.empty() && bc_queues.size() != shards) {
        ASTRI_FATAL("%s: %zu domain queues for %u BC shards",
                    SimObject::name().c_str(), bc_queues.size(),
                    shards);
    }
    for (std::uint32_t i = 0; i < shards; ++i) {
        bcCtls.push_back(std::make_unique<BacksideController>(
            bc_queues.empty() ? eq : *bc_queues[i],
            SimObject::name() + ".bc" + shardTag(i), cfg, amap, flash,
            *fcToBc[i], *bcToFlash[i], *bcToFc[i], *bcToFcRsp[i],
            *fcToBcCtl[i], shardSlice(cfg.bc.msrSets, shards, i),
            cfg.bc.msrEntriesPerSet,
            shardSlice(cfg.bc.evictBufferEntries, shards, i)));
    }

    // Ownership declarations (DESIGN.md §16). The facade's value-owned
    // shared structures execute on the frontside queue; each shard's
    // channels declare their endpoint domains; and the fused mode's
    // two deliberate drain-chain crossings per shard are
    // pre-registered so the runtime audit counts them instead of
    // flagging them.
    serviceCrossings.assign(shards, kNoCrossing);
    installCrossings.assign(shards, kNoCrossing);
    if ((ownAudit = sim::OwnershipAuditor::current()) != nullptr) {
        sim::OwnershipRegistry &own = ownAudit->registry();
        const sim::DomainId fc_dom = own.domainOf(&eq);
        own.declareComponent(SimObject::name() + ".fc", fc_dom);
        own.declareComponent(SimObject::name() + ".dram", fc_dom);
        own.declareComponent(SimObject::name() + ".tags", fc_dom);
        own.declareComponent(SimObject::name() + ".footprint", fc_dom);
        for (std::uint32_t i = 0; i < shards; ++i) {
            const std::string tag = shardTag(i);
            const sim::DomainId bc_dom = own.domainOf(
                bc_queues.empty() ? static_cast<const void *>(&eq)
                                  : bc_queues[i]);
            fcToBc[i]->declareEndpoints(fc_dom, bc_dom);
            bcToFlash[i]->declareEndpoints(bc_dom, bc_dom);
            bcToFc[i]->declareEndpoints(bc_dom, fc_dom);
            bcToFcRsp[i]->declareEndpoints(bc_dom, fc_dom);
            fcToBcCtl[i]->declareEndpoints(fc_dom, bc_dom);
            if (fc_dom == bc_dom || fc_dom == sim::kNoDomain ||
                bc_dom == sim::kNoDomain) {
                continue; // unpartitioned: nothing crosses
            }
            if (cfg.fc.pipeline) {
                // Pipelined mode has no synchronous drain chains to
                // pre-register: every FC<->BC interaction is channel
                // traffic pumped inside its owning domain. Zero
                // declared crossings IS the retirement certificate
                // (the ownership tests assert it).
                continue;
            }
            serviceCrossings[i] = ownAudit->registerCrossing(
                SimObject::name() + ".bc" + tag + ".service", fc_dom,
                bc_dom);
            installCrossings[i] = ownAudit->registerCrossing(
                SimObject::name() + ".bc" + tag + ".deliver_installs",
                bc_dom, fc_dom);
        }
    }

    // Each controller drains its own inbound channels; the crossing
    // notes report the fused-mode drain chains that still cross
    // domains (no-ops when unpartitioned or pipelined).
    for (std::uint32_t i = 0; i < shards; ++i) {
        bcCtls[i]->setCrossingNotes([this, i](sim::Ticks t) {
            noteCrossing(serviceCrossings[i], t);
        });
        bcCtls[i]->bindChannels();
    }
    std::vector<CrossingNoteFn> install_notes;
    install_notes.reserve(shards);
    for (std::uint32_t i = 0; i < shards; ++i) {
        install_notes.push_back([this, i](sim::Ticks t) {
            noteCrossing(installCrossings[i], t);
        });
    }
    fcCtl.setCrossingNotes(std::move(install_notes));
    fcCtl.bindChannels();
    setCrossPost(nullptr);
}

std::string
DramCache::shardTag(std::uint32_t shard) const
{
    // Unsharded names collapse to the pre-sharding spellings so the
    // golden stat namespaces stay byte-identical.
    return cfg.bc.shards == 1 ? std::string{}
                              : std::to_string(shard);
}

void
DramCache::setCrossPost(EnginePostFn fn)
{
    if (!fn) {
        // Single-queue fallback: every posted pump schedules on the
        // facade's own queue (the frontside domain), which fused and
        // unpartitioned runs share with every shard.
        fn = [this](std::uint32_t, std::uint32_t, sim::Ticks when,
                    std::function<void()> cb) {
            scheduleIn(when > curTick() ? when - curTick() : 0,
                       std::move(cb));
        };
    }
    // Pre-bind one function per channel direction: the engine keys
    // deterministic delivery on the posting domain, so the producer
    // side must be fixed at bind time. Domain 0 is the frontside,
    // 1+i is backside shard i.
    std::vector<CrossPostFn> fc_posts;
    fc_posts.reserve(bcCtls.size());
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(bcCtls.size()); ++i) {
        fc_posts.push_back(
            [fn, i](sim::Ticks when, std::function<void()> cb) {
                fn(1 + i, 0, when, std::move(cb));
            });
        bcCtls[i]->setPostFn(
            [fn, i](sim::Ticks when, std::function<void()> cb) {
                fn(0, 1 + i, when, std::move(cb));
            });
    }
    fcCtl.setPostFn(std::move(fc_posts));
}

void
DramCache::freezeSeamWindows()
{
    for (std::size_t i = 0; i < bcCtls.size(); ++i) {
        fcToBc[i]->freezeDrainWindow();
        bcToFc[i]->freezeDrainWindow();
        bcToFcRsp[i]->freezeDrainWindow();
        fcToBcCtl[i]->freezeDrainWindow();
    }
}

void
DramCache::thawSeamWindows()
{
    for (std::size_t i = 0; i < bcCtls.size(); ++i) {
        fcToBc[i]->thawDrainWindow();
        bcToFc[i]->thawDrainWindow();
        bcToFcRsp[i]->thawDrainWindow();
        fcToBcCtl[i]->thawDrainWindow();
    }
}

DcAccess
DramCache::access(mem::Addr pa, bool write, sim::Ticks now,
                  WaiterCookie waiter)
{
    return fcCtl.access(pa, write, now, waiter);
}

sim::Ticks
DramCache::accessSync(mem::Addr pa, bool write, sim::Ticks now)
{
    return fcCtl.accessSync(pa, write, now);
}

bool
DramCache::pageResident(mem::Addr pa) const
{
    return pageTags.contains(pa);
}

void
DramCache::prewarmPage(mem::Addr pa)
{
    auto victim = pageTags.fill(mem::pageBase(pa, cfg.pageBytes),
                                false);
    if (cfg.footprintEnabled) {
        footprint.fetched[mem::pageNumber(pa, cfg.pageBytes)] = ~0ull;
        if (victim) {
            // Set-conflict displacement during prewarm leaks the
            // victim's just-seeded mask (see FootprintState).
            footprint.prewarmEvicted.insert(
                mem::pageNumber(victim->tag_addr, cfg.pageBytes));
        }
    }
}

void
DramCache::resetStats()
{
    fcCtl.resetStats();
    for (auto &bc : bcCtls)
        bc->resetStats();
}

DramCache::BcTotals
DramCache::bcTotals() const
{
    BcTotals totals;
    for (const auto &bc : bcCtls) {
        totals.fills += bc->stats().fills.value();
        totals.dirtyWritebacks += bc->stats().dirtyWritebacks.value();
        totals.flashBytesRead += bc->stats().flashBytesRead.value();
        totals.peakOutstanding += bc->stats().peakOutstanding;
    }
    return totals;
}

void
DramCache::regStats(sim::StatRegistry &reg) const
{
    fcCtl.regStats(reg.subRegistry("fc"));
    for (std::uint32_t i = 0; i < shardCount(); ++i)
        bcCtls[i]->regStats(reg.subRegistry("bc" + shardTag(i)));
    dramModel.regStats(reg.subRegistry("dram"));
    pageTags.regStats(reg.subRegistry("tags"));
    for (std::uint32_t i = 0; i < shardCount(); ++i) {
        const std::string tag = shardTag(i);
        fcToBc[i]->regStats(reg.subRegistry("fc_to_bc" + tag));
        bcToFlash[i]->regStats(reg.subRegistry("bc_to_flash" + tag));
        bcToFc[i]->regStats(reg.subRegistry("bc_to_fc" + tag));
        if (cfg.fc.pipeline) {
            // Pipeline-only channels stay out of the default stat
            // tree so the pre-split goldens remain byte-identical.
            bcToFcRsp[i]->regStats(
                reg.subRegistry("bc_to_fc_rsp" + tag));
            fcToBcCtl[i]->regStats(
                reg.subRegistry("fc_to_bc_ctl" + tag));
        }
    }
}

void
DramCache::checkInvariants(sim::InvariantChecker &chk) const
{
    fcCtl.checkInvariants(chk);
    fcCtl.auditShared(chk, pageTags);
    for (const auto &bc : bcCtls) {
        bc->checkInvariants(chk);
        bc->auditShared(chk, pageTags);
    }
}

} // namespace astriflash::core
