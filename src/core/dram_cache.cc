#include "dram_cache.hh"

namespace astriflash::core {

DramCache::DramCache(sim::EventQueue &eq, std::string name,
                     const DramCacheConfig &config,
                     flash::FlashDevice &flash,
                     const mem::AddressMap &amap)
    : sim::SimObject(eq, std::move(name)), cfg(config), flashDev(flash),
      dramModel(SimObject::name() + ".dram", config.dram),
      pageTags(SimObject::name() + ".tags", config.capacityBytes,
               config.pageBytes, config.ways),
      fcToBc(SimObject::name() + ".fc_to_bc", config.fcToBcDepth),
      bcToFlash(SimObject::name() + ".bc_to_flash",
                config.bcToFlashDepth),
      bcToFc(SimObject::name() + ".bc_to_fc", config.bcToFcDepth),
      fcCtl(SimObject::name() + ".fc", cfg, dramModel, pageTags,
            footprint, fcToBc, bcToFc),
      bcCtl(eq, SimObject::name() + ".bc", cfg, amap, dramModel,
            pageTags, footprint, fcToBc, bcToFlash, bcToFc,
            // Conservative whole-read estimate for MSR-stalled misses,
            // derived here so the BC never sees the device.
            2 * (flash.config().tRead + flash.config().tController))
{
    bcToFlash.setDrainHook([this] { pumpFlashCommands(); });
    bcToFc.setDrainHook([this] { fcCtl.deliverInstalls(); });
}

void
DramCache::pumpFlashCommands()
{
    while (!bcToFlash.empty()) {
        auto &st = bcToFlash.front();
        const FlashCmdMsg msg = st.msg;
        // Backpressure from a full command channel delays the issue
        // tick to the accept tick.
        const sim::Ticks issued = st.acceptedAt;
        const auto res = flashDev.submit(msg.cmd, issued);
        // The slot models a device-queue entry: held until the read
        // completes or the write is accepted into the device buffer.
        bcToFlash.dropFront(res.complete);
        if (msg.cmd.op == flash::FlashCommand::Op::Read)
            bcCtl.flashReadIssued(msg.page, issued, res.complete);
    }
}

DcAccess
DramCache::access(mem::Addr pa, bool write, sim::Ticks now,
                  WaiterCookie waiter)
{
    FrontsideController::Probe probe =
        fcCtl.access(pa, write, now, waiter);
    if (probe.complete)
        return probe.out;
    const BcReply rep = bcCtl.service();
    return fcCtl.finishMiss(probe, rep);
}

sim::Ticks
DramCache::accessSync(mem::Addr pa, bool write, sim::Ticks now)
{
    FrontsideController::Probe probe = fcCtl.accessSync(pa, write, now);
    if (probe.complete)
        return probe.out.ready;
    const BcReply rep = bcCtl.service();
    return fcCtl.finishSyncMiss(probe, rep);
}

bool
DramCache::pageResident(mem::Addr pa) const
{
    return pageTags.contains(pa);
}

void
DramCache::prewarmPage(mem::Addr pa)
{
    pageTags.fill(mem::pageBase(pa, cfg.pageBytes), false);
    if (cfg.footprintEnabled)
        footprint.fetched[mem::pageNumber(pa, cfg.pageBytes)] = ~0ull;
}

void
DramCache::resetStats()
{
    fcCtl.resetStats();
    bcCtl.resetStats();
}

void
DramCache::regStats(sim::StatRegistry &reg) const
{
    fcCtl.regStats(reg.subRegistry("fc"));
    bcCtl.regStats(reg.subRegistry("bc"));
    dramModel.regStats(reg.subRegistry("dram"));
    pageTags.regStats(reg.subRegistry("tags"));
    fcToBc.regStats(reg.subRegistry("fc_to_bc"));
    bcToFlash.regStats(reg.subRegistry("bc_to_flash"));
    bcToFc.regStats(reg.subRegistry("bc_to_fc"));
}

void
DramCache::checkInvariants(sim::InvariantChecker &chk) const
{
    fcCtl.checkInvariants(chk);
    bcCtl.checkInvariants(chk);
}

} // namespace astriflash::core
