#include "dram_cache.hh"

#include <bit>

#include "sim/logging.hh"
#include "sim/trace_events.hh"

namespace {
constexpr std::uint32_t kNoCore =
    astriflash::sim::TraceRecord::kNoCore;
} // namespace

namespace astriflash::core {

DramCache::DramCache(sim::EventQueue &eq, std::string name,
                     const DramCacheConfig &config,
                     flash::FlashDevice &flash,
                     const mem::AddressMap &amap)
    : sim::SimObject(eq, std::move(name)), cfg(config), flashDev(flash),
      addrMap(amap), dramModel(SimObject::name() + ".dram", config.dram),
      pageTags(SimObject::name() + ".tags", config.capacityBytes,
               config.pageBytes, config.ways),
      msrTable(SimObject::name() + ".msr", config.msrSets,
               config.msrEntriesPerSet),
      evictBuf(SimObject::name() + ".evictbuf",
               config.evictBufferEntries)
{
    const sim::ClockDomain clk(cfg.controllerFreqHz);
    fcOpTicks = clk.cycles(cfg.fcCyclesPerOp);
    bcOpTicks = clk.cycles(cfg.bcCyclesPerOp);
}

mem::Addr
DramCache::setRowAddr(mem::Addr pa) const
{
    // Each cache set occupies one DRAM row region: tags first, then
    // the page frames. Mapping sets onto distinct rows gives the tag
    // probe natural row-buffer locality for same-set access bursts.
    const std::uint64_t set =
        (pa / cfg.pageBytes) % pageTags.numSets();
    return set * cfg.dram.rowBytes *
           ((cfg.ways * cfg.pageBytes) / cfg.dram.rowBytes + 1);
}

sim::Ticks
DramCache::tagProbe(mem::Addr pa, sim::Ticks now)
{
    // RAS to open the set's row + CAS for the 64 B tag column + one
    // FC cycle for the compare.
    const auto res =
        dramModel.access(setRowAddr(pa), now, false, mem::kBlockSize);
    return res.complete + fcOp();
}

DcAccess
DramCache::access(mem::Addr pa, bool write, sim::Ticks now,
                  WaiterCookie waiter)
{
    const mem::PageNum page = pageNum(pa);
    const sim::Ticks probe_done = tagProbe(pa, now);
    const bool hit =
        write ? pageTags.accessWrite(pa) : pageTags.access(pa);

    DcAccess out;
    if (hit) {
        if (cfg.footprintEnabled) {
            const std::uint64_t bit = blockBit(pa);
            touchedMask[page] |= bit;
            if (!(fetchedMask[page] & bit)) {
                // Sub-page miss: the resident page was only partially
                // transferred and this block is absent; fetch the
                // remainder through the normal switch-on-miss path.
                statsData.subPageMisses.inc();
                out.hit = false;
                out.ready = probe_done + fcOp();
                if (pending.count(page))
                    statsData.missesMerged.inc();
                else
                    statsData.misses.inc();
                startMiss(page, probe_done, write,
                          ~fetchedMask[page]);
                pending[page].waiters.push_back(waiter);
                return out;
            }
        }
        // Data CAS in the (now open) row.
        const auto data = dramModel.access(
            setRowAddr(pa) + mem::kBlockSize, probe_done, write,
            mem::kBlockSize);
        out.hit = true;
        out.ready = data.complete;
        statsData.hits.inc();
        statsData.hitLatency.sample(out.ready - now);
        return out;
    }

    if (evictBuf.contains(page)) {
        // The page is parked in the evict buffer awaiting writeback;
        // the BC services the request from there.
        out.hit = true;
        out.ready = probe_done + bcOp();
        statsData.hits.inc();
        statsData.hitLatency.sample(out.ready - now);
        return out;
    }

    // Miss: the FC replies with a miss response so on-chip MSHRs can
    // be reclaimed, and hands the page request to the BC.
    out.hit = false;
    out.ready = probe_done + fcOp();
    if (pending.count(page))
        statsData.missesMerged.inc();
    else
        statsData.misses.inc();
    if (cfg.footprintEnabled)
        touchedMask[page] |= blockBit(pa); // the block will be used
    const sim::Ticks data_ready =
        startMiss(page, probe_done, write, blockBit(pa));
    (void)data_ready;
    pending[page].waiters.push_back(waiter);
    return out;
}

sim::Ticks
DramCache::accessSync(mem::Addr pa, bool write, sim::Ticks now)
{
    const mem::PageNum page = pageNum(pa);
    const sim::Ticks probe_done = tagProbe(pa, now);
    const bool hit =
        write ? pageTags.accessWrite(pa) : pageTags.access(pa);
    statsData.syncAccesses.inc();

    if (hit) {
        bool sub_page_miss = false;
        if (cfg.footprintEnabled) {
            const std::uint64_t bit = blockBit(pa);
            touchedMask[page] |= bit;
            sub_page_miss = !(fetchedMask[page] & bit);
        }
        if (!sub_page_miss) {
            const auto data = dramModel.access(
                setRowAddr(pa) + mem::kBlockSize, probe_done, write,
                mem::kBlockSize);
            statsData.hits.inc();
            statsData.hitLatency.sample(data.complete - now);
            return data.complete;
        }
        statsData.subPageMisses.inc();
        if (pending.count(page))
            statsData.missesMerged.inc();
        else
            statsData.misses.inc();
        const sim::Ticks ready =
            startMiss(page, probe_done, write, ~fetchedMask[page]);
        return ready + cfg.dram.tCas + cfg.dram.tBurst;
    }
    if (evictBuf.contains(page)) {
        statsData.hits.inc();
        return probe_done + bcOp();
    }
    if (pending.count(page))
        statsData.missesMerged.inc();
    else
        statsData.misses.inc();
    if (cfg.footprintEnabled)
        touchedMask[page] |= blockBit(pa); // the block will be used
    const sim::Ticks data_ready =
        startMiss(page, probe_done, write, blockBit(pa));
    // The requester spins until the page is installed, then reads it.
    return data_ready + cfg.dram.tCas + cfg.dram.tBurst;
}

sim::Ticks
DramCache::startMiss(mem::PageNum page, sim::Ticks now, bool write,
                     std::uint64_t want_mask)
{
    auto it = pending.find(page);
    if (it != pending.end()) {
        it->second.anyWrite = it->second.anyWrite || write;
        // Widen a not-yet-issued fetch to cover this request; an
        // in-flight transfer cannot grow, in which case an uncovered
        // block sub-page-misses again after the install.
        if (!it->second.issued)
            it->second.fetchMask |= want_mask;
        sim::traceEvent(sim::TracePoint::MsrDedup, now, kNoCore,
                        pageByteAddr(page), it->second.waiters.size());
        return it->second.dataReady;
    }

    PendingMiss miss;
    miss.anyWrite = write;
    if (cfg.footprintEnabled) {
        const auto hist = footprintHistory.find(page);
        miss.fetchMask = hist != footprintHistory.end()
            ? (hist->second | want_mask) : ~0ull;
    } else {
        miss.fetchMask = ~0ull;
    }

    // BC: one op to dequeue the request, one CAS-equivalent op to
    // search the MSR.
    const sim::Ticks bc_start = now + 2 * bcOp();
    const MsrAlloc alloc = msrTable.allocate(page);
    switch (alloc) {
      case MsrAlloc::Duplicate:
        // pending and the MSR mirror each other; a duplicate here is
        // an invariant violation.
        ASTRI_PANIC("MSR holds %llx but pending table does not",
                    static_cast<unsigned long long>(
                        pageByteAddr(page)));
      case MsrAlloc::SetFull: {
        // BC waits for an entry in this set to free; the request sits
        // in the BC queue. dataReady is a conservative estimate used
        // only by forced-synchronous requesters.
        miss.issued = false;
        miss.dataReady =
            bc_start + 2 * (flashDev.config().tRead +
                            flashDev.config().tController);
        pending.emplace(page, std::move(miss));
        msrStalled.push_back(page);
        sim::traceEvent(sim::TracePoint::MsrStall, bc_start, kNoCore,
                        pageByteAddr(page),
                        msrTable.setOccupancy(page));
        break;
      }
      case MsrAlloc::New: {
        sim::traceEvent(sim::TracePoint::MsrInsert, bc_start, kNoCore,
                        pageByteAddr(page), msrTable.occupancy());
        const std::uint64_t fetch_bytes =
            static_cast<std::uint64_t>(
                std::popcount(miss.fetchMask)) * mem::kBlockSize;
        const auto read = flashDev.read(
            addrMap.flashPage(pageByteAddr(page)), bc_start,
            mem::Bytes(fetch_bytes));
        sim::traceEvent(sim::TracePoint::FlashReadIssue, bc_start,
                        kNoCore, pageByteAddr(page), fetch_bytes);
        miss.issued = true;
        miss.dataReady = read.complete + bcOp() + installEstimate();
        pending.emplace(page, std::move(miss));
        scheduleIn(read.complete - curTick(),
                   [this, page] { pageArrived(page); });
        break;
      }
    }
    if (pending.size() > statsData.peakOutstanding)
        statsData.peakOutstanding = pending.size();
    return pending[page].dataReady;
}

sim::Ticks
DramCache::installEstimate() const
{
    // Closed-row activate plus streaming the 4 KB page.
    return cfg.dram.closedRowLatency() +
           cfg.dram.tBurst * (cfg.pageBytes / mem::kBlockSize - 1) +
           bcOp();
}

void
DramCache::pageArrived(mem::PageNum page)
{
    const sim::Ticks now = curTick();
    sim::traceEvent(sim::TracePoint::FlashReadDone, now, kNoCore,
                    pageByteAddr(page));

    // Secure a frame: fill the tag array; a displaced victim parks in
    // the evict buffer and drains to flash off the critical path.
    auto pit = pending.find(page);
    ASTRI_ASSERT_MSG(pit != pending.end(),
                     "arrival for page %llx with no pending miss",
                     static_cast<unsigned long long>(
                         pageByteAddr(page)));
    const bool dirty_install = pit->second.anyWrite;
    const std::uint64_t fetch_mask = pit->second.fetchMask;
    const std::uint64_t fetch_bytes =
        static_cast<std::uint64_t>(std::popcount(fetch_mask)) *
        mem::kBlockSize;
    statsData.flashBytesRead.inc(
        fetch_bytes > cfg.pageBytes ? cfg.pageBytes : fetch_bytes);
    if (cfg.footprintEnabled)
        fetchedMask[page] |= fetch_mask;
    auto victim = pageTags.fill(pageByteAddr(page), dirty_install);
    statsData.fills.inc();
    if (victim) {
        const mem::PageNum vpage = pageNum(victim->tag_addr);
        if (cfg.footprintEnabled) {
            // Record the victim's footprint for its next residency
            // and drop its residency masks.
            const auto t = touchedMask.find(vpage);
            if (t != touchedMask.end() && t->second != 0)
                footprintHistory[vpage] = t->second;
            touchedMask.erase(vpage);
            fetchedMask.erase(vpage);
        }
        if (evictBuf.full()) {
            // Backpressure: force-drain the oldest entry now (the
            // install stalls behind the BC's emergency writeback).
            drainEvictBuffer(now);
        }
        const bool ok = evictBuf.insert(vpage, victim->dirty, now);
        ASTRI_ASSERT(ok);
        sim::traceEvent(sim::TracePoint::PageEvict, now, kNoCore,
                        victim->tag_addr, victim->dirty ? 1 : 0);
        // Lazy drain keeps writes off the read path.
        scheduleIn(bcOp() * 4, [this] {
            drainEvictBuffer(curTick());
        });
    }

    // Install: stream the fetched blocks into the frame.
    const auto install = dramModel.access(
        setRowAddr(pageByteAddr(page)), now, true,
        fetch_bytes > cfg.pageBytes ? cfg.pageBytes : fetch_bytes);
    const sim::Ticks ready = install.complete + bcOp();
    statsData.missPenalty.sample(ready > now ? ready - now : 0);
    sim::traceEvent(sim::TracePoint::PageFill, ready, kNoCore,
                    pageByteAddr(page), ready > now ? ready - now : 0);

    // Free the MSR entry and unblock any set-conflicted misses.
    msrTable.free(page);
    retryMsrStalled(now);

    auto waiters = std::move(pit->second.waiters);
    pending.erase(pit);
    if (onReady)
        onReady(page, ready, waiters);
}

void
DramCache::retryMsrStalled(sim::Ticks now)
{
    for (auto it = msrStalled.begin(); it != msrStalled.end();) {
        const mem::PageNum page = *it;
        auto pit = pending.find(page);
        if (pit == pending.end() || pit->second.issued) {
            it = msrStalled.erase(it);
            continue;
        }
        const MsrAlloc alloc = msrTable.allocate(page);
        if (alloc == MsrAlloc::SetFull) {
            ++it;
            continue;
        }
        ASTRI_ASSERT(alloc == MsrAlloc::New);
        sim::traceEvent(sim::TracePoint::MsrInsert, now + bcOp(),
                        kNoCore, pageByteAddr(page),
                        msrTable.occupancy());
        const std::uint64_t fetch_bytes =
            static_cast<std::uint64_t>(
                std::popcount(pit->second.fetchMask)) * mem::kBlockSize;
        const auto read = flashDev.read(
            addrMap.flashPage(pageByteAddr(page)), now + bcOp(),
            mem::Bytes(fetch_bytes));
        sim::traceEvent(sim::TracePoint::FlashReadIssue, now + bcOp(),
                        kNoCore, pageByteAddr(page), fetch_bytes);
        pit->second.issued = true;
        pit->second.dataReady =
            read.complete + bcOp() + installEstimate();
        scheduleIn(read.complete - curTick(),
                   [this, page] { pageArrived(page); });
        it = msrStalled.erase(it);
    }
}

void
DramCache::drainEvictBuffer(sim::Ticks now)
{
    if (evictBuf.empty())
        return;
    const EvictBuffer::Entry e = evictBuf.pop();
    sim::traceEvent(sim::TracePoint::EvictDrain, now, kNoCore,
                    pageByteAddr(e.page), e.dirty ? 1 : 0);
    if (e.dirty) {
        flashDev.write(addrMap.flashPage(pageByteAddr(e.page)), now);
        statsData.dirtyWritebacks.inc();
    }
}

bool
DramCache::pageResident(mem::Addr pa) const
{
    return pageTags.contains(pa);
}

void
DramCache::prewarmPage(mem::Addr pa)
{
    pageTags.fill(mem::pageBase(pa, cfg.pageBytes), false);
    if (cfg.footprintEnabled)
        fetchedMask[pageNum(pa)] = ~0ull;
}

void
DramCache::resetStats()
{
    statsData = Stats{};
    // Misses in flight across the reset still count toward the
    // measurement window's peak.
    statsData.peakOutstanding = pending.size();
}

void
DramCache::regStats(sim::StatRegistry &reg) const
{
    auto &fc = reg.subRegistry("fc");
    fc.registerCounter("hits", &statsData.hits,
                       "frontside accesses served from the cache");
    fc.registerCounter("misses", &statsData.misses,
                       "accesses starting a new outstanding miss");
    fc.registerCounter("misses_merged", &statsData.missesMerged,
                       "accesses merged onto an in-flight miss");
    fc.registerCounter("sync_accesses", &statsData.syncAccesses,
                       "forced-synchronous (forward-progress) accesses");
    fc.registerCounter("sub_page_misses", &statsData.subPageMisses,
                       "footprint mispredictions on resident pages");
    fc.registerHistogram("hit_latency", &statsData.hitLatency,
                         "FC hit path latency in ticks");

    auto &bc = reg.subRegistry("bc");
    bc.registerCounter("fills", &statsData.fills,
                       "pages installed into the cache");
    bc.registerCounter("dirty_writebacks", &statsData.dirtyWritebacks,
                       "dirty victims programmed to flash");
    bc.registerCounter("flash_bytes_read", &statsData.flashBytesRead,
                       "refill bytes transferred from flash");
    bc.registerHistogram("miss_penalty", &statsData.missPenalty,
                         "miss-to-page-ready latency in ticks");
    bc.registerUint("peak_outstanding", &statsData.peakOutstanding,
                    "maximum concurrent outstanding misses");
    msrTable.regStats(bc.subRegistry("msr"));
    evictBuf.regStats(bc.subRegistry("evictbuf"));

    dramModel.regStats(reg.subRegistry("dram"));
    pageTags.regStats(reg.subRegistry("tags"));
}

void
DramCache::checkInvariants(sim::InvariantChecker &chk) const
{
    // The MSR and the pending table mirror each other: exactly the
    // issued misses hold entries.
    std::uint32_t issued = 0;
    for (const auto &[page, miss] : pending) {
        SIM_INVARIANT_MSG(chk, !miss.waiters.empty() || miss.issued,
                          "un-issued miss %llx has no waiters",
                          static_cast<unsigned long long>(
                              pageByteAddr(page)));
        if (miss.issued) {
            ++issued;
            SIM_INVARIANT_MSG(chk, msrTable.contains(page),
                              "issued miss %llx lost its MSR entry",
                              static_cast<unsigned long long>(
                                  pageByteAddr(page)));
        }
        if (!cfg.footprintEnabled) {
            // A full-page miss cannot coexist with a resident copy
            // (footprint mode legitimately refetches absent blocks
            // of resident pages).
            SIM_INVARIANT_MSG(chk,
                              !pageTags.contains(pageByteAddr(page)),
                              "page %llx is both resident and pending",
                              static_cast<unsigned long long>(
                                  pageByteAddr(page)));
        }
    }
    SIM_INVARIANT_MSG(chk, msrTable.occupancy() == issued,
                      "MSR holds %u entries but %u misses are issued",
                      msrTable.occupancy(), issued);

    // The stall queue holds exactly the un-issued pending pages.
    std::unordered_map<mem::PageNum, int> stalled;
    for (const mem::PageNum page : msrStalled) {
        SIM_INVARIANT_MSG(chk, ++stalled[page] == 1,
                          "page %llx queued twice behind a full MSR set",
                          static_cast<unsigned long long>(
                              pageByteAddr(page)));
        const auto it = pending.find(page);
        SIM_INVARIANT_MSG(chk,
                          it != pending.end() && !it->second.issued,
                          "stall queue holds %llx which is not an "
                          "un-issued pending miss",
                          static_cast<unsigned long long>(
                              pageByteAddr(page)));
    }
    SIM_INVARIANT_MSG(chk,
                      stalled.size() == pending.size() - issued,
                      "%zu stalled pages but %zu un-issued misses",
                      stalled.size(), pending.size() - issued);

    SIM_INVARIANT(chk, statsData.peakOutstanding >= pending.size());
    // Every install freed exactly one MSR entry in the same event.
    // The MSR counter is cumulative while fills resets at measurement
    // start, so lifetime frees bound the windowed fill count.
    SIM_INVARIANT_MSG(chk,
                      msrTable.stats().frees.value() >=
                          statsData.fills.value(),
                      "%llu fills outnumber %llu MSR frees",
                      static_cast<unsigned long long>(
                          statsData.fills.value()),
                      static_cast<unsigned long long>(
                          msrTable.stats().frees.value()));

    // Footprint residency masks exist only for resident pages.
    if (cfg.footprintEnabled) {
        for (const auto &[page, mask] : fetchedMask) {
            (void)mask;
            SIM_INVARIANT_MSG(chk,
                              pageTags.contains(pageByteAddr(page)),
                              "fetched mask for non-resident %llx",
                              static_cast<unsigned long long>(
                                  pageByteAddr(page)));
        }
    } else {
        SIM_INVARIANT(chk, fetchedMask.empty());
        SIM_INVARIANT(chk, touchedMask.empty());
        SIM_INVARIANT(chk, footprintHistory.empty());
    }
}

} // namespace astriflash::core
