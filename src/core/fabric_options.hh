/**
 * @file
 * Shared CLI binding for the shard/fabric knobs.
 *
 * Every binary that builds a System (astriflash_sim, the figure
 * benches, the ablation) exposes the same five flags:
 *
 *   --bc-shards=N       backside-controller shards
 *   --flash-devices=M   flash devices behind the fabric
 *   --flash-backend=K   concrete device model ("ftl" or "zns")
 *   --host-jobs=N       host worker threads per run (conservative
 *                       parallel engine; stats byte-identical at any N)
 *   --fc-pipeline       pipeline the FC miss path: async channel acks,
 *                       one exec group per BC shard (own golden set;
 *                       stats byte-identical across --host-jobs, not
 *                       to the default fused mode)
 *
 * This helper holds the parsed values (defaulted from the config
 * structs so the flags are optional), registers the flags on a
 * sim::OptionParser, and applies them onto a SystemConfig. The
 * backend is kept as flash::BackendKind throughout — core code never
 * names a concrete device type (aflint AF014).
 */

#ifndef ASTRIFLASH_CORE_FABRIC_OPTIONS_HH
#define ASTRIFLASH_CORE_FABRIC_OPTIONS_HH

#include <cstdint>
#include <string>

#include "flash/backend.hh"
#include "sim/option_parser.hh"

#include "system_config.hh"

namespace astriflash::core {

/** Parsed --bc-shards / --flash-devices / --flash-backend /
 *  --host-jobs / --fc-pipeline values. */
struct FabricOptions {
    std::uint32_t bcShards = BcConfig{}.shards;
    std::uint32_t flashDevices = flash::FlashFabricConfig{}.devices;
    flash::BackendKind flashBackend =
        flash::FlashFabricConfig{}.backend;
    std::uint32_t hostJobs = SystemConfig{}.hostJobs;
    bool fcPipeline = FcConfig{}.pipeline;

    /** Register the five flags on @p opts. */
    void
    addTo(sim::OptionParser &opts)
    {
        opts.addUint32("bc-shards", &bcShards,
                       "backside-controller shards (page-interleaved)");
        opts.addUint32("flash-devices", &flashDevices,
                       "flash devices striped behind the fabric");
        opts.addCustom(
            "flash-backend", "KIND",
            "flash device model: ftl | zns",
            [this](const std::string &value) {
                return flash::parseBackendKind(value, &flashBackend);
            });
        opts.addUint32("host-jobs", &hostJobs,
                       "host worker threads per run (1 = legacy "
                       "single-queue loop; stats identical at any N)");
        opts.addFlag("fc-pipeline", &fcPipeline,
                     "pipeline the frontside miss path (split exec "
                     "groups; separate golden set)");
    }

    /** Copy the parsed values into @p cfg. */
    void
    apply(SystemConfig &cfg) const
    {
        cfg.dramCache.bc.shards = bcShards;
        cfg.dramCache.fabric.devices = flashDevices;
        cfg.dramCache.fabric.backend = flashBackend;
        cfg.hostJobs = hostJobs == 0 ? 1 : hostJobs;
        cfg.dramCache.fc.pipeline = fcPipeline;
    }
};

} // namespace astriflash::core

#endif // ASTRIFLASH_CORE_FABRIC_OPTIONS_HH
