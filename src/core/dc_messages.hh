/**
 * @file
 * Message schemas for the DRAM-cache controller channels (§IV-B).
 *
 * The frontside and backside controllers exchange state ONLY through
 * sim::BoundedChannel instances carrying these messages (enforced by
 * aflint rule AF013); the DramCache facade owns the channels and the
 * flash command dispatch. Three channels exist:
 *
 *   FC --MissRequest-->      BC   (the BC's transaction queue)
 *   BC --flash::FlashCommand--> device (via FlashCmdMsg + facade)
 *   BC --InstallComplete-->  FC   (wake the merged waiters)
 *
 * See DESIGN.md §11 for slot-lifetime rules and the timing contract.
 */

#ifndef ASTRIFLASH_CORE_DC_MESSAGES_HH
#define ASTRIFLASH_CORE_DC_MESSAGES_HH

#include <cstdint>
#include <vector>

#include "flash/flash_command.hh"
#include "mem/address.hh"
#include "sim/ticks.hh"

#include "dram_cache_types.hh"

namespace astriflash::core {

/**
 * FC→BC: one LLC-missing access handed across the controller split.
 * The channel slot is held for the whole miss transaction (until the
 * install completes), so the miss-channel depth is the BC's
 * outstanding-transaction window.
 */
struct MissRequest {
    mem::PageNum page{0};
    bool write = false;
    /** Footprint refetch of a resident page: skips the evict-buffer
     *  short-circuit (the page cannot be parked there). */
    bool subPage = false;
    /** Async requests record a waiter for the page-ready callback;
     *  forced-synchronous ones block in place instead. */
    bool hasWaiter = false;
    WaiterCookie waiter = 0;
    /** Blocks the requester needs transferred (footprint mode). */
    std::uint64_t wantMask = ~std::uint64_t{0};
};

/** BC's synchronous reply to one serviced MissRequest. */
struct BcReply {
    enum class Kind {
        EvictBufferHit, ///< Served from a parked victim page.
        MissStarted,    ///< New, merged, or MSR-stalled miss.
    };
    Kind kind = Kind::MissStarted;
    bool merged = false; ///< Deduplicated onto an in-flight miss.
    /** EvictBufferHit: data-ready tick. MissStarted: the (possibly
     *  conservative) tick the page's data will be installed. */
    sim::Ticks ready = 0;
};

/**
 * BC→flash: one device command. The facade pops, submits through
 * flash::Backend::submit(), and reports read completions back to the
 * BC;
 * the slot drains when the device finishes (reads) or accepts the
 * page (writes), so the depth models the device command queue.
 */
struct FlashCmdMsg {
    flash::FlashCommand cmd;
    /** Read fills: key into the BC's pending-miss table. */
    mem::PageNum page{0};
};

/**
 * BC→FC: a page finished installing; the FC fires the page-ready
 * callback so switch-on-miss cores wake every merged waiter.
 */
struct InstallComplete {
    mem::PageNum page{0};
    sim::Ticks ready = 0;
    std::vector<WaiterCookie> waiters;
};

} // namespace astriflash::core

#endif // ASTRIFLASH_CORE_DC_MESSAGES_HH
