/**
 * @file
 * Message schemas for the DRAM-cache controller channels (§IV-B).
 *
 * The frontside and backside controllers exchange state ONLY through
 * sim::BoundedChannel instances carrying these messages (enforced by
 * aflint rule AF013); the DramCache facade owns the channels but no
 * longer pumps them — each controller drains its own inbound
 * channels. Five channels exist per BC shard:
 *
 *   FC --MissRequest-->   BC   (the BC's transaction queue)
 *   BC --FlashCmdMsg-->   BC   (device command queue; the BC submits
 *                               through flash::Backend in its own
 *                               drain, so the seam is intra-domain)
 *   BC --BcNotice-->      FC   (miss acks + install requests: every
 *                               BC-side decision the FC acts on)
 *   FC --InstallGrant-->  BC   (tag/DRAM install results going back:
 *                               the FC owns pageTags/dramModel/fp,
 *                               the BC owns the evict path)
 *   BC --InstallComplete--> FC (wake the merged waiters)
 *
 * See DESIGN.md §11 for slot-lifetime rules and §17 for the split
 * partition table and per-channel lookahead manifest.
 */

#ifndef ASTRIFLASH_CORE_DC_MESSAGES_HH
#define ASTRIFLASH_CORE_DC_MESSAGES_HH

#include <cstdint>
#include <vector>

#include "flash/flash_command.hh"
#include "mem/address.hh"
#include "sim/ticks.hh"

#include "dram_cache_types.hh"

namespace astriflash::core {

/**
 * FC→BC: one LLC-missing access handed across the controller split.
 * The channel slot is held for the whole miss transaction (until the
 * install completes), so the miss-channel depth is the BC's
 * outstanding-transaction window.
 */
struct MissRequest {
    mem::PageNum page{0};
    bool write = false;
    /** Footprint refetch of a resident page: skips the evict-buffer
     *  short-circuit (the page cannot be parked there). */
    bool subPage = false;
    /** Async requests record a waiter for the page-ready callback;
     *  forced-synchronous ones block in place instead. */
    bool hasWaiter = false;
    WaiterCookie waiter = 0;
    /** Blocks the requester needs transferred (footprint mode). */
    std::uint64_t wantMask = ~std::uint64_t{0};
    /** Footprint history snapshot for this page, taken by the FC at
     *  push time (the FC owns FootprintState; the BC seeds its fetch
     *  mask from these fields instead of reading fp.history). */
    bool histValid = false;
    std::uint64_t histMask = 0;
};

/** BC's reply to one serviced MissRequest (carried in a BcNotice). */
struct BcReply {
    enum class Kind {
        EvictBufferHit, ///< Served from a parked victim page.
        MissStarted,    ///< New, merged, or MSR-stalled miss.
    };
    Kind kind = Kind::MissStarted;
    bool merged = false; ///< Deduplicated onto an in-flight miss.
    /** EvictBufferHit: data-ready tick. MissStarted: the (possibly
     *  conservative) tick the page's data will be installed. */
    sim::Ticks ready = 0;
};

/**
 * BC→flash: one device command. The BC's own drain pops and submits
 * through flash::Backend::submit() (the submit path is bc-owned);
 * the slot drains when the device finishes (reads) or accepts the
 * page (writes), so the depth models the device command queue.
 */
struct FlashCmdMsg {
    flash::FlashCommand cmd;
    /** Read fills: key into the BC's pending-miss table. */
    mem::PageNum page{0};
};

/**
 * BC→FC: a page finished installing; the FC fires the page-ready
 * callback so switch-on-miss cores wake every merged waiter.
 */
struct InstallComplete {
    mem::PageNum page{0};
    sim::Ticks ready = 0;
    std::vector<WaiterCookie> waiters;
};

/**
 * BC→FC response traffic (the `bc_to_fc_rsp` channel): one message
 * per BC-side decision the FC must act on. Two traffic classes share
 * the channel so per-shard FIFO order between acks and install
 * requests is preserved.
 */
struct BcNotice {
    enum class Kind {
        /** Reply to one MissRequest, in per-shard request order. */
        MissAck,
        /** A fetched page is ready to install: the FC (owner of
         *  pageTags/dramModel/fp) runs the fill and answers with an
         *  InstallGrant. */
        InstallReq,
    };
    Kind kind = Kind::MissAck;
    mem::PageNum page{0};
    /** MissAck payload. */
    BcReply reply;
    /** MissAck: waiter echo, so a pipelined FC can wake an
     *  evict-buffer hit without a pending-table lookup. */
    bool hasWaiter = false;
    WaiterCookie waiter = 0;
    /** InstallReq payload: blocks fetched from flash, and whether the
     *  install marks the frame dirty (write-triggered miss). */
    std::uint64_t fetchMask = 0;
    bool dirty = false;
};

/**
 * FC→BC install result (the `fc_to_bc_ctl` channel): the FC performed
 * the tag fill and the DRAM install access for an InstallReq; the BC
 * finishes the miss (evict path, MSR free, waiter release) from these
 * fields without touching any fc-owned structure.
 */
struct InstallGrant {
    mem::PageNum page{0};
    /** Completion tick of the install's DRAM access. */
    sim::Ticks installComplete = 0;
    /** Victim evicted by the tag fill, bound for the evict buffer. */
    bool hasVictim = false;
    bool victimDirty = false;
    mem::PageNum victim{0};
};

} // namespace astriflash::core

#endif // ASTRIFLASH_CORE_DC_MESSAGES_HH
