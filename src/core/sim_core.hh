/**
 * @file
 * Timing model of one core executing user-level threads.
 *
 * Each core runs jobs pulled from its scheduler, consuming op streams:
 * compute intervals advance the local clock; memory accesses traverse
 * the TLB, the private cache hierarchy, and the configuration's memory
 * backend. The switch-on-miss control path (§IV-C) is charged
 * explicitly: miss response, ROB flush, handler entry, user-level
 * thread switch. The OS-Swap and Flash-Sync baselines reuse the same
 * execution engine with their respective miss paths.
 *
 * Execution is burst-based: a core processes ops synchronously until a
 * switch point or the configured quantum, then re-schedules itself,
 * bounding cross-core timing skew to the quantum.
 */

#ifndef ASTRIFLASH_CORE_SIM_CORE_HH
#define ASTRIFLASH_CORE_SIM_CORE_HH

#include <memory>
#include <optional>

#include "cpu/aso_engine.hh"
#include "cpu/handler_regs.hh"
#include "mem/address_map.hh"
#include "mem/cache_hierarchy.hh"
#include "mem/dram.hh"
#include "mem/page_table.hh"
#include "mem/tlb.hh"
#include "os/os_paging.hh"
#include "sim/sim_object.hh"
#include "workload/workload.hh"

#include "dram_cache.hh"
#include "sched_model.hh"
#include "system_config.hh"

namespace astriflash::core {

class System;

/** One simulated core plus its private memory-side state. */
class SimCore : public sim::SimObject
{
  public:
    struct Stats {
        sim::Counter jobsCompleted;
        sim::Counter switchOnMiss;   ///< Thread switches taken.
        sim::Counter syncMissStalls; ///< Forward-progress sync waits.
        sim::Counter osFaults;
        sim::Counter walkFlashStalls; ///< noDP PTE-from-flash walks.
        sim::Ticks busyTicks = 0;     ///< Executing (not idle).
    };

    SimCore(sim::EventQueue &eq, std::string name, std::uint32_t id,
            System &system);

    /** Begin executing (schedules the first run event). */
    void start();

    /** Wake the core if idle (new arrival or page ready). */
    void kick();

    /**
     * Notification that @p page will be ready at @p when (from the
     * DRAM cache fill path or the OS install path).
     */
    void pageReady(mem::PageNum page, sim::Ticks when);

    SchedulerModel &scheduler() { return sched; }
    const SchedulerModel &scheduler() const { return sched; }
    mem::Tlb &tlb() { return tlbModel; }
    mem::CacheHierarchy &hierarchy() { return hier; }
    cpu::AsoEngine &aso() { return asoEngine; }
    const Stats &stats() const { return statsData; }
    std::uint32_t id() const { return coreId; }

    /** Zero per-core statistics (end of warmup). */
    void resetStats() { statsData = Stats{}; }

    /**
     * Register this core's stats into @p reg, with "sched", "tlb",
     * "hier", and "aso" children for the owned structures.
     */
    void regStats(sim::StatRegistry &reg) const;

  private:
    /** Outcome of one memory access at the system level. */
    struct MemOutcome {
        enum class Kind {
            Done,   ///< Data ready at doneAt; continue the job.
            Parked, ///< Job halted on a miss; core free at freeAt.
        } kind = Kind::Done;
        sim::Ticks doneAt = 0;
        sim::Ticks freeAt = 0;
        /** Tick the memory system answered the core — data for Done,
         *  the miss *response* for Parked. The LLC MSHR entry is held
         *  exactly this long (§IV-B: the miss response exists to
         *  reclaim it ns after the probe instead of pinning it for
         *  the full flash access). */
        sim::Ticks respondedAt = 0;
        mem::PageNum page{0}; ///< Parked: page the job waits on.
    };

    /**
     * Fixed same-tick arbitration slot for this core's events
     * (DESIGN.md §14). Cores arbitrate by id, and a core's page-ready
     * delivery precedes its execution resume, so same-tick core events
     * never share a (tick, priority) pair and their order can never
     * depend on scheduling luck. The band sits above Default: memory-
     * system and arrival events at the same tick complete before any
     * core resumes.
     */
    sim::EventPriority
    eventPrio(bool delivery) const
    {
        return static_cast<sim::EventPriority>(
            static_cast<int>(sim::EventPriority::Default) + 1 +
            static_cast<int>(coreId) * 2 + (delivery ? 0 : 1));
    }

    /** Main execution event: run the current job for up to a quantum. */
    void run();

    /** Pick the next runnable job; returns false if the core idles. */
    bool pickJob(sim::Ticks now);

    /**
     * Execute one memory access of the current job at local time @p t.
     * May park the job (switch-on-miss / page fault).
     */
    MemOutcome memAccess(mem::Addr va, bool write, sim::Ticks t);

    /** TLB miss service; may stall on flash in the noDP config. */
    sim::Ticks pageWalk(mem::Addr va, sim::Ticks t);

    /** Store-buffer bookkeeping for a store that hit / missed. */
    void storeHit(mem::Addr pa);
    void storeAborted(mem::Addr pa);

    /** Finish the current job at @p t. */
    void completeJob(sim::Ticks t);

    std::uint32_t coreId;
    System &sys;
    SchedulerModel sched;
    mem::Tlb tlbModel;
    mem::CacheHierarchy hier;
    cpu::AsoEngine asoEngine;
    cpu::HandlerRegs handlerRegs;

    std::optional<workload::Job> current;
    /**
     * Monotone local time cursor: the last local tick this core
     * simulated through. A core bursts ahead of the global clock, so
     * a wake (page ready, new arrival) can fire at a global tick the
     * core has already lived past — it was busy switching out until
     * the cursor. run() clamps its start time here; resuming earlier
     * would be local time travel and breaks the scheduler's
     * park-order invariant (DESIGN.md §14).
     */
    sim::Ticks localCursor = 0;
    bool idle = true;
    bool blockedOnPendingFull = false;
    /** Set when resuming a previously-missed job: the next access
     *  completes synchronously (forward-progress bit, §IV-C3). */
    bool forceProgress = false;
    std::uint64_t renameCursor = 0;
    Stats statsData;
};

} // namespace astriflash::core

#endif // ASTRIFLASH_CORE_SIM_CORE_HH
