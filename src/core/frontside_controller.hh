/**
 * @file
 * Frontside controller (FC) of the DRAM cache (§IV-B, Fig. 5).
 *
 * The FC extends a conventional DRAM controller: it RASes the set's
 * row, CASes the tag column, compares tags, and either CASes the data
 * (hit) or emits a MissRequest into the FC→BC channel and returns a
 * miss response so the on-chip MSHRs can be reclaimed. It is a
 * 1-cycle-per-op FSM; everything slower (MSR dedup, flash issue) lives
 * behind the channels in the backside controller.
 *
 * Single-owner seam (DESIGN.md §17): the FC owns the tag array, the
 * DRAM device model, and the footprint masks — the three structures
 * the pre-split backside mutated by reference (the retired AF022
 * baseline entries). Backside reads of them became message fields:
 * footprint history is snapshotted into MissRequest::histMask at push
 * time, and a page install is a BcNotice::InstallReq the FC answers
 * with an InstallGrant after running the tag fill and the DRAM install
 * access itself. The FC never names the backside controller, the MSR,
 * the evict buffer, or the flash device (aflint AF013): its inputs
 * are the bc_to_fc_rsp / bc_to_fc channels and its outputs are the
 * fc_to_bc / fc_to_bc_ctl channels.
 *
 * Two completion disciplines, selected by FcConfig::pipeline:
 *
 *  - Fused (default): the miss-channel push synchronously runs the
 *    backside's drain, whose MissAck lands back here — through the
 *    response channel's own drain hook — before the push returns. The
 *    access completes in one call chain, byte-identical to the
 *    pre-split controller.
 *  - Pipelined (--fc-pipeline): the push only schedules the consumer's
 *    pump at accept + the declared channel lookahead; the access
 *    returns a miss response immediately (bounded by
 *    FcConfig::pendingDepth, with backpressure stats) and the MissAck
 *    completes the probe asynchronously when the response pump drains
 *    it. This is the seam that lets System place each backside
 *    shard's domain in its own exec group.
 *
 * With backside sharding (BcConfig::shards > 1) the FC holds one
 * channel quadruple per shard and routes each miss by
 * mem::pageInterleave(page, shards); acks return in per-shard FIFO
 * order, so each shard's in-flight probes form a queue.
 */

#ifndef ASTRIFLASH_CORE_FRONTSIDE_CONTROLLER_HH
#define ASTRIFLASH_CORE_FRONTSIDE_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "mem/dram.hh"
#include "mem/set_assoc_cache.hh"
#include "sim/bounded_channel.hh"
#include "sim/invariant.hh"
#include "sim/stats.hh"

#include "dc_messages.hh"
#include "dram_cache_types.hh"

namespace astriflash::core {

/** The DRAM cache's fast tag-compare FSM. */
class FrontsideController
{
  public:
    using PageReadyFn = std::function<void(
        mem::PageNum page, sim::Ticks when,
        const std::vector<WaiterCookie> &waiters)>;

    struct Stats {
        sim::Counter hits;
        sim::Counter misses;
        sim::Counter missesMerged;  ///< Deduplicated by the BC's MSR.
        sim::Counter syncAccesses;  ///< Forward-progress forced-sync.
        sim::Counter subPageMisses; ///< Footprint mispredictions.
        sim::Histogram hitLatency;  ///< FC path, ticks.
        /** Pipeline mode only: probes delayed because the per-shard
         *  in-flight ack window exceeded FcConfig::pendingDepth. */
        sim::Counter reqQueueStalls;
        sim::Counter reqQueueStallTicks;
        std::uint64_t reqQueuePeak = 0;

        double
        hitRatio() const
        {
            const double t = static_cast<double>(hits.value() +
                                                 misses.value() +
                                                 missesMerged.value());
            return t > 0 ? static_cast<double>(hits.value()) / t : 0.0;
        }
    };

    /**
     * One frontside access in flight across the controller split:
     * either completed entirely inside the FC (hit), or parked with a
     * MissRequest accepted into the channel, awaiting the MissAck on
     * the shard's response channel.
     */
    struct Probe {
        bool complete = false; ///< Hit path finished; @c out is valid.
        DcAccess out;
        mem::PageNum page{0};
        sim::Ticks start = 0;    ///< Requester's tick.
        sim::Ticks accepted = 0; ///< Miss-channel accept tick.
        std::uint64_t bit = 0;   ///< Requested block's footprint bit.
        bool subPage = false;    ///< Footprint refetch of a resident page.
        std::uint32_t shard = 0; ///< BC shard the miss routed to.
    };

    /**
     * @param flash_read_estimate conservative whole-page read latency,
     *        derived by the facade so pipelined forced-synchronous
     *        misses can return a completion estimate without waiting
     *        for the ack.
     */
    FrontsideController(
        std::string name, const DramCacheConfig &config,
        mem::Dram &dram, mem::SetAssocCache &tags,
        FootprintState &footprint,
        std::vector<std::unique_ptr<sim::BoundedChannel<MissRequest>>>
            &to_bc,
        std::vector<
            std::unique_ptr<sim::BoundedChannel<InstallComplete>>>
            &from_bc,
        std::vector<std::unique_ptr<sim::BoundedChannel<BcNotice>>>
            &from_bc_rsp,
        std::vector<std::unique_ptr<sim::BoundedChannel<InstallGrant>>>
            &to_bc_ctl,
        sim::Ticks flash_read_estimate);

    /** Register the page-arrival notification hook. */
    void setPageReadyCallback(PageReadyFn fn) { onReady = std::move(fn); }

    /**
     * Install this controller's channel hooks. Both controllers
     * declare bindChannels(); the facade calls it after channel
     * construction, once per controller. Fused mode installs
     * synchronous drain hooks on the response and install channels;
     * pipeline mode installs notify hooks that schedule pumps through
     * the per-shard cross-post functions.
     */
    void bindChannels();

    /**
     * Cross-domain pump schedulers, one per backside shard (pipeline
     * mode): posts run in this controller's domain, and the engine
     * keys deterministic delivery on the posting (shard) domain, so
     * each producer direction needs its own pre-bound function. The
     * facade installs self-scheduling fallbacks; System replaces them
     * with the parallel engine's mailbox for split runs.
     */
    void setPostFn(std::vector<CrossPostFn> fns)
    {
        postFns = std::move(fns);
    }

    /**
     * Telemetry callbacks (one per shard) fired when the fused-mode
     * install drain runs in the backside's call chain (the facade's
     * registered "deliver_installs" ownership crossings).
     */
    void setCrossingNotes(std::vector<CrossingNoteFn> install_notes)
    {
        installNotes = std::move(install_notes);
    }

    /**
     * Frontside access from the LLC miss path. Hits complete here; a
     * miss pushes the MissRequest and either completes from the
     * synchronously latched ack (fused) or returns the miss response
     * immediately and finishes when the ack pump drains it
     * (pipelined).
     */
    DcAccess access(mem::Addr pa, bool write, sim::Ticks now,
                    WaiterCookie waiter);

    /**
     * Forced-synchronous access (forward-progress / Flash-Sync):
     * @return the tick the blocked requester's data is readable. In
     * pipeline mode a miss returns the conservative completion
     * estimate instead of waiting for the ack.
     */
    sim::Ticks accessSync(mem::Addr pa, bool write, sim::Ticks now);

    /** Zero all statistics (end of warmup). */
    void resetStats() { statsData = Stats{}; }

    void regStats(sim::StatRegistry &reg) const;

    /** Audit the FC's accounting self-consistency. */
    void checkInvariants(sim::InvariantChecker &chk) const;

    /**
     * Cross-domain audit run at quiesce points (both controllers
     * declare auditShared; the facade invokes them with the fc-owned
     * structures): footprint residency masks exist exactly for
     * resident pages.
     */
    void auditShared(sim::InvariantChecker &chk,
                     const mem::SetAssocCache &tags) const;

    const Stats &stats() const { return statsData; }
    const std::string &name() const { return fcName; }

  private:
    /** A miss probe whose ack is still in flight (pipeline mode). */
    struct PendingProbe {
        Probe probe;
        bool sync = false; ///< Came from accessSync().
    };

    /** FC tag probe: RAS + tag CAS at the set's row. */
    sim::Ticks tagProbe(mem::Addr pa, sim::Ticks now);

    /** MissRequest with the footprint-history snapshot attached. */
    MissRequest makeMiss(mem::PageNum page, bool write, bool sub_page,
                         bool has_waiter, WaiterCookie waiter,
                         std::uint64_t want_mask) const;

    /** Complete a missing probe from the backside's ack. */
    DcAccess finishMiss(const Probe &probe, const BcReply &rep);

    /** @return the tick the blocked requester's data is readable. */
    sim::Ticks finishSyncMiss(const Probe &probe, const BcReply &rep);

    /** Pipeline mode: queue the probe against its shard's ack. */
    void recordPending(const Probe &probe, bool sync);

    /** Pipeline-mode miss response: accept + one FC op, plus the
     *  backpressure delay once the shard's window exceeds
     *  FcConfig::pendingDepth. */
    DcAccess missResponse(const Probe &probe);

    /** Conservative completion estimate for a pipelined sync miss. */
    sim::Ticks syncMissEstimate(sim::Ticks accepted) const;

    /** Drain eligible notices off shard @p shard's rsp channel. */
    void pumpRsp(std::uint32_t shard, sim::Ticks eligible_until);

    /** Drain eligible completions off shard @p shard's channel. */
    void pumpInstalls(std::uint32_t shard, sim::Ticks eligible_until);

    /** Complete the shard's oldest in-flight probe (pipeline mode). */
    void finishAck(std::uint32_t shard, const BcNotice &notice);

    /** Run the tag fill + DRAM install for an install request and
     *  send the grant back on the shard's ctl channel. */
    void handleInstallReq(std::uint32_t shard, const BcNotice &notice,
                          sim::Ticks at);

    /** Schedule a pump at @p when in this domain. */
    void requestPump(std::uint32_t shard, sim::Ticks when,
                     std::function<void()> fn);

    /** Fused mode: the ack latched by the response-channel drain. */
    BcReply takeAck();

    sim::Ticks fcOp() const { return fcOpTicks; }

    /** BC shard serving @p page (round-robin page interleave). */
    std::uint32_t
    shardOf(mem::PageNum page) const
    {
        return mem::pageInterleave(
            page, static_cast<std::uint32_t>(toBc.size()));
    }

    std::string fcName;
    const DramCacheConfig &cfg;
    mem::Dram &dramModel;
    mem::SetAssocCache &pageTags;
    FootprintState &fp;
    std::vector<std::unique_ptr<sim::BoundedChannel<MissRequest>>>
        &toBc;
    std::vector<std::unique_ptr<sim::BoundedChannel<InstallComplete>>>
        &fromBc;
    std::vector<std::unique_ptr<sim::BoundedChannel<BcNotice>>>
        &fromBcRsp;
    std::vector<std::unique_ptr<sim::BoundedChannel<InstallGrant>>>
        &toBcCtl;
    PageReadyFn onReady;
    std::vector<CrossPostFn> postFns;
    std::vector<CrossingNoteFn> installNotes;
    /** Per-shard probes awaiting acks, in channel FIFO order. */
    std::vector<std::deque<PendingProbe>> pendingAcks;
    BcReply ackReply;      ///< Fused mode: last latched MissAck.
    bool ackValid = false; ///< takeAck() consumes the latch.
    sim::Ticks fcOpTicks;
    sim::Ticks bcOpTicks; ///< For the sync-miss estimate only.
    sim::Ticks flashReadEstimate;
    Stats statsData;
};

} // namespace astriflash::core

#endif // ASTRIFLASH_CORE_FRONTSIDE_CONTROLLER_HH
