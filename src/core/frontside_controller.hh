/**
 * @file
 * Frontside controller (FC) of the DRAM cache (§IV-B, Fig. 5).
 *
 * The FC extends a conventional DRAM controller: it RASes the set's
 * row, CASes the tag column, compares tags, and either CASes the data
 * (hit) or emits a MissRequest into the FC→BC channel and returns a
 * miss response so the on-chip MSHRs can be reclaimed. It is a
 * 1-cycle-per-op FSM; everything slower (MSR dedup, flash issue,
 * installs) lives behind the channel in the BacksideController.
 *
 * The FC never names the backside controller, the MSR, the evict
 * buffer, or the flash device (aflint AF013 enforces this): its only
 * outputs are channel messages, and its only input from the backside
 * is the BcReply returned by the facade's service call plus the
 * InstallComplete messages it drains from the BC→FC channels.
 *
 * With backside sharding (BcConfig::shards > 1) the FC holds one
 * miss/install channel pair per shard and routes each miss by
 * mem::pageInterleave(page, shards); the Probe records which shard
 * accepted it so the facade can ask the right BC for the reply.
 */

#ifndef ASTRIFLASH_CORE_FRONTSIDE_CONTROLLER_HH
#define ASTRIFLASH_CORE_FRONTSIDE_CONTROLLER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "mem/dram.hh"
#include "mem/set_assoc_cache.hh"
#include "sim/bounded_channel.hh"
#include "sim/invariant.hh"
#include "sim/stats.hh"

#include "dc_messages.hh"
#include "dram_cache_types.hh"

namespace astriflash::core {

/** The DRAM cache's fast tag-compare FSM. */
class FrontsideController
{
  public:
    using PageReadyFn = std::function<void(
        mem::PageNum page, sim::Ticks when,
        const std::vector<WaiterCookie> &waiters)>;

    struct Stats {
        sim::Counter hits;
        sim::Counter misses;
        sim::Counter missesMerged;  ///< Deduplicated by the BC's MSR.
        sim::Counter syncAccesses;  ///< Forward-progress forced-sync.
        sim::Counter subPageMisses; ///< Footprint mispredictions.
        sim::Histogram hitLatency;  ///< FC path, ticks.

        double
        hitRatio() const
        {
            const double t = static_cast<double>(hits.value() +
                                                 misses.value() +
                                                 missesMerged.value());
            return t > 0 ? static_cast<double>(hits.value()) / t : 0.0;
        }
    };

    /**
     * One frontside access in flight across the controller split:
     * either completed entirely inside the FC (hit), or parked with a
     * MissRequest accepted into the channel, awaiting the BcReply.
     */
    struct Probe {
        bool complete = false; ///< Hit path finished; @c out is valid.
        DcAccess out;
        mem::PageNum page{0};
        sim::Ticks start = 0;    ///< Requester's tick.
        sim::Ticks accepted = 0; ///< Miss-channel accept tick.
        std::uint64_t bit = 0;   ///< Requested block's footprint bit.
        bool subPage = false;    ///< Footprint refetch of a resident page.
        std::uint32_t shard = 0; ///< BC shard the miss routed to.
    };

    FrontsideController(
        std::string name, const DramCacheConfig &config,
        mem::Dram &dram, mem::SetAssocCache &tags,
        FootprintState &footprint,
        std::vector<std::unique_ptr<sim::BoundedChannel<MissRequest>>>
            &to_bc,
        std::vector<
            std::unique_ptr<sim::BoundedChannel<InstallComplete>>>
            &from_bc);

    /** Register the page-arrival notification hook. */
    void setPageReadyCallback(PageReadyFn fn) { onReady = std::move(fn); }

    /**
     * Frontside access from the LLC miss path. If the probe misses,
     * the MissRequest is already in the channel; the caller routes the
     * consumer's BcReply back through finishMiss().
     */
    Probe access(mem::Addr pa, bool write, sim::Ticks now,
                 WaiterCookie waiter);

    /** Complete a missing access() probe from the backside's reply. */
    DcAccess finishMiss(const Probe &probe, const BcReply &rep);

    /** Forced-synchronous probe (forward-progress / Flash-Sync). */
    Probe accessSync(mem::Addr pa, bool write, sim::Ticks now);

    /** @return the tick the blocked requester's data is readable. */
    sim::Ticks finishSyncMiss(const Probe &probe, const BcReply &rep);

    /** Drain every BC→FC channel: fire page-ready callbacks. */
    void deliverInstalls();

    /** Zero all statistics (end of warmup). */
    void resetStats() { statsData = Stats{}; }

    void regStats(sim::StatRegistry &reg) const;

    /** Audit the FC's accounting self-consistency. */
    void checkInvariants(sim::InvariantChecker &chk) const;

    const Stats &stats() const { return statsData; }
    const std::string &name() const { return fcName; }

  private:
    /** FC tag probe: RAS + tag CAS at the set's row. */
    sim::Ticks tagProbe(mem::Addr pa, sim::Ticks now);

    sim::Ticks fcOp() const { return fcOpTicks; }

    /** BC shard serving @p page (round-robin page interleave). */
    std::uint32_t
    shardOf(mem::PageNum page) const
    {
        return mem::pageInterleave(
            page, static_cast<std::uint32_t>(toBc.size()));
    }

    std::string fcName;
    const DramCacheConfig &cfg;
    mem::Dram &dramModel;
    mem::SetAssocCache &pageTags;
    FootprintState &fp;
    std::vector<std::unique_ptr<sim::BoundedChannel<MissRequest>>>
        &toBc;
    std::vector<std::unique_ptr<sim::BoundedChannel<InstallComplete>>>
        &fromBc;
    PageReadyFn onReady;
    sim::Ticks fcOpTicks;
    Stats statsData;
};

} // namespace astriflash::core

#endif // ASTRIFLASH_CORE_FRONTSIDE_CONTROLLER_HH
