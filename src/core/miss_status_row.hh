/**
 * @file
 * In-DRAM Miss Status Row (§IV-B2).
 *
 * On-chip MSHRs are CAM-based and top out at tens of entries, but a
 * DRAM cache refilled from 50 µs flash can have hundreds of concurrent
 * misses. AstriFlash therefore tracks outstanding misses in a
 * specialized DRAM row: a set-associative table of 8 B entries that the
 * backside controller searches with CAS operations. This model captures
 * the structure's capacity behaviour (set conflicts force the BC to
 * wait for an entry to free) and its occupancy statistics; the CAS
 * timing is charged by the DRAM-cache controller that owns it.
 */

#ifndef ASTRIFLASH_CORE_MISS_STATUS_ROW_HH
#define ASTRIFLASH_CORE_MISS_STATUS_ROW_HH

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "mem/address.hh"
#include "sim/invariant.hh"
#include "sim/stats.hh"

namespace astriflash::core {

/** Outcome of an MSR allocation attempt. */
enum class MsrAlloc {
    New,       ///< Entry allocated; issue the flash read.
    Duplicate, ///< A miss to this page is already pending; merge.
    SetFull,   ///< Target set has no free entry; BC must wait.
};

/** Set-associative in-DRAM miss-status table. */
class MissStatusRow
{
  public:
    struct Stats {
        sim::Counter allocations;
        sim::Counter duplicates;
        sim::Counter setFullStalls;
        sim::Counter frees;
        sim::Average occupancy; ///< Sampled at each allocation.
        std::uint64_t peakOccupancy = 0;
    };

    /**
     * @param name           Instance name.
     * @param sets           Number of sets (rows used).
     * @param entries_per_set Ways per set (8 B entries per CAS column).
     */
    MissStatusRow(std::string name, std::uint32_t sets,
                  std::uint32_t entries_per_set);

    /** Try to record a miss for page @p page. */
    MsrAlloc allocate(mem::PageNum page);

    /** True if a miss for @p page is outstanding. */
    bool contains(mem::PageNum page) const;

    /** Remove the entry for @p page (fill completed). */
    void free(mem::PageNum page);

    /** Live entries. */
    std::uint32_t occupancy() const { return total; }

    /** Live entries in the set that @p page maps to. */
    std::uint32_t setOccupancy(mem::PageNum page) const;

    std::uint32_t sets() const
    {
        return static_cast<std::uint32_t>(table.size());
    }
    std::uint32_t entriesPerSet() const { return ways; }
    std::uint32_t capacity() const { return sets() * ways; }

    const Stats &stats() const { return statsData; }

    /** Register this table's stats into @p reg. */
    void
    regStats(sim::StatRegistry &reg) const
    {
        reg.registerCounter("allocations", &statsData.allocations,
                            "MSR entries allocated (flash reads issued)");
        reg.registerCounter("duplicates", &statsData.duplicates,
                            "misses merged onto an existing MSR entry");
        reg.registerCounter("set_full_stalls", &statsData.setFullStalls,
                            "allocation attempts stalled on a full set");
        reg.registerCounter("frees", &statsData.frees,
                            "MSR entries released at fill completion");
        reg.registerAverage("occupancy", &statsData.occupancy,
                            "live entries sampled at each allocation");
        reg.registerUint("peak_occupancy", &statsData.peakOccupancy,
                         "maximum live entries over the run");
    }

    /**
     * Audit structural state and lifetime conservation: set sizes sum
     * to the live total, no set exceeds its ways, and
     * allocations == frees + occupancy.
     */
    void checkInvariants(sim::InvariantChecker &chk) const;

  private:
    std::uint32_t setIndex(mem::PageNum page) const;

    std::string msrName;
    std::uint32_t ways;
    std::vector<std::unordered_set<mem::PageNum>> table;
    std::uint32_t total = 0;
    Stats statsData;
};

} // namespace astriflash::core

#endif // ASTRIFLASH_CORE_MISS_STATUS_ROW_HH
