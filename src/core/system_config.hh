/**
 * @file
 * Evaluated system configurations (§V-B).
 */

#ifndef ASTRIFLASH_CORE_SYSTEM_CONFIG_HH
#define ASTRIFLASH_CORE_SYSTEM_CONFIG_HH

#include <cstdint>

#include "cpu/ooo_config.hh"
#include "flash/flash_config.hh"
#include "mem/tlb.hh"
#include "os/os_paging.hh"
#include "sim/ticks.hh"
#include "workload/workload.hh"

#include "dram_cache.hh"
#include "sched_model.hh"

namespace astriflash::core {

/** The seven configurations from §V-B. */
enum class SystemKind {
    DramOnly,        ///< Ideal: all data served from DRAM.
    AstriFlash,      ///< Full proposal, 100 ns thread switches.
    AstriFlashIdeal, ///< Free thread switches.
    AstriFlashNoPS,  ///< FIFO scheduling instead of priority+aging.
    AstriFlashNoDP,  ///< No DRAM partitioning: PTEs can live in flash.
    OsSwap,          ///< Traditional OS demand paging.
    FlashSync,       ///< FlatFlash-style synchronous flash access.
};

/** Printable configuration name. */
const char *systemKindName(SystemKind kind);

/** True for any of the four AstriFlash variants. */
constexpr bool
isAstriFlash(SystemKind kind)
{
    return kind == SystemKind::AstriFlash ||
           kind == SystemKind::AstriFlashIdeal ||
           kind == SystemKind::AstriFlashNoPS ||
           kind == SystemKind::AstriFlashNoDP;
}

/** Full system parameterization. */
struct SystemConfig {
    SystemKind kind = SystemKind::AstriFlash;
    std::uint32_t cores = 4;

    workload::Kind workloadKind = workload::Kind::Tatp;
    workload::WorkloadConfig workload;

    /** DRAM-cache capacity as a fraction of the dataset (§II-A). */
    double dramCacheRatio = 0.03;

    DramCacheConfig dramCache; ///< capacityBytes derived at build.
    flash::FlashConfig flash;  ///< geometry derived at build.
    cpu::OoOConfig core;
    SchedulerModel::Config sched;
    os::OsCosts osCosts;
    mem::Tlb::Config tlb;

    /** User-level thread switch cost (100 ns; 0 in -Ideal). */
    sim::Ticks threadSwitch = sim::nanoseconds(100);
    /**
     * Forward-progress bit (§IV-C3): a rescheduled thread's faulting
     * access completes synchronously so it retires at least one
     * instruction. Disabling this exposes the livelock the mechanism
     * exists to prevent (a rescheduled thread can find its page
     * evicted again and bounce forever under cache thrash).
     */
    bool forwardProgressBit = true;
    /** Page-walk cost when page tables are DRAM-resident. */
    sim::Ticks walkCached = sim::nanoseconds(40);

    /** Open-loop arrivals (tail-latency methodology). 0 = closed loop
     *  (max-throughput methodology). System-wide mean gap. */
    sim::Ticks meanInterarrival = 0;

    /** Jobs completed across all cores before stats reset. */
    std::uint64_t warmupJobs = 2000;
    /** Jobs measured after warmup. */
    std::uint64_t measureJobs = 20000;

    /** Core burst quantum: bounds cross-core timing skew. */
    sim::Ticks quantum = sim::microseconds(2);

    /** Hard wall on simulated time (runaway protection). */
    sim::Ticks maxSimTicks = sim::milliseconds(10000);

    /**
     * Gap between whole-system invariant sweeps while checks are
     * armed (see sim/invariant.hh); 0 disables periodic sweeps. A
     * final sweep always runs at quiesce. Sweeps happen between run
     * events, never from a scheduled event, so an otherwise-drained
     * queue still terminates the simulation.
     */
    sim::Ticks invariantInterval = sim::microseconds(200);

    std::uint64_t seed = 1;

    /**
     * Nonzero: permute same-tick event tie-breaking with this seed
     * (determinism shake-out, tools/detshake). Requires a checks
     * build — the perturbation hook is compiled out of plain Release.
     * 0 (the default) is the exact production ordering.
     */
    std::uint64_t tieBreakSeed = 0;

    /**
     * Host worker threads for one run (--host-jobs). 1 (the default)
     * is the legacy single-queue loop; > 1 partitions the system into
     * per-BC-shard event-queue domains executed by the conservative
     * sim::ParallelEngine over the channel-lookahead seam. Stats are
     * byte-identical at every value (DESIGN.md §15) — the knob trades
     * host threads, never simulated timing.
     */
    unsigned hostJobs = 1;

    /** Apply the per-kind knob settings (switch cost, policy, DP). */
    void applyKindDefaults();
};

} // namespace astriflash::core

#endif // ASTRIFLASH_CORE_SYSTEM_CONFIG_HH
