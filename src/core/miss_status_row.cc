#include "miss_status_row.hh"

#include "sim/logging.hh"

namespace astriflash::core {

MissStatusRow::MissStatusRow(std::string name, std::uint32_t sets,
                             std::uint32_t entries_per_set)
    : msrName(std::move(name)), ways(entries_per_set)
{
    if (sets == 0 || entries_per_set == 0)
        ASTRI_FATAL("%s: MSR needs >=1 set and entry", msrName.c_str());
    table.resize(sets);
}

std::uint32_t
MissStatusRow::setIndex(mem::Addr page) const
{
    // Page-number hash spreads consecutive pages across sets.
    const std::uint64_t pn = page / mem::kPageSize;
    return static_cast<std::uint32_t>(
        (pn * 0x9e3779b97f4a7c15ull >> 32) % table.size());
}

MsrAlloc
MissStatusRow::allocate(mem::Addr page)
{
    const mem::Addr aligned = mem::pageBase(page);
    auto &set = table[setIndex(aligned)];
    if (set.count(aligned)) {
        statsData.duplicates.inc();
        return MsrAlloc::Duplicate;
    }
    if (set.size() >= ways) {
        statsData.setFullStalls.inc();
        return MsrAlloc::SetFull;
    }
    set.insert(aligned);
    ++total;
    statsData.allocations.inc();
    statsData.occupancy.sample(total);
    if (total > statsData.peakOccupancy)
        statsData.peakOccupancy = total;
    return MsrAlloc::New;
}

std::uint32_t
MissStatusRow::setOccupancy(mem::Addr page) const
{
    const mem::Addr aligned = mem::pageBase(page);
    return static_cast<std::uint32_t>(
        table[setIndex(aligned)].size());
}

bool
MissStatusRow::contains(mem::Addr page) const
{
    const mem::Addr aligned = mem::pageBase(page);
    return table[setIndex(aligned)].count(aligned) != 0;
}

void
MissStatusRow::free(mem::Addr page)
{
    const mem::Addr aligned = mem::pageBase(page);
    auto &set = table[setIndex(aligned)];
    const auto erased = set.erase(aligned);
    ASTRI_ASSERT_MSG(erased == 1, "%s: freeing absent MSR entry",
                     msrName.c_str());
    --total;
    statsData.frees.inc();
}

} // namespace astriflash::core
