#include "miss_status_row.hh"

#include "sim/logging.hh"

namespace astriflash::core {

MissStatusRow::MissStatusRow(std::string name, std::uint32_t sets,
                             std::uint32_t entries_per_set)
    : msrName(std::move(name)), ways(entries_per_set)
{
    if (sets == 0 || entries_per_set == 0)
        ASTRI_FATAL("%s: MSR needs >=1 set and entry", msrName.c_str());
    table.resize(sets);
}

std::uint32_t
MissStatusRow::setIndex(mem::PageNum page) const
{
    // Page-number hash spreads consecutive pages across sets.
    // aflint-allow-next-line(AF011)
    const std::uint64_t pn = page.raw();
    return static_cast<std::uint32_t>(
        (pn * 0x9e3779b97f4a7c15ull >> 32) % table.size());
}

MsrAlloc
MissStatusRow::allocate(mem::PageNum page)
{
    auto &set = table[setIndex(page)];
    if (set.count(page)) {
        statsData.duplicates.inc();
        return MsrAlloc::Duplicate;
    }
    if (set.size() >= ways) {
        statsData.setFullStalls.inc();
        return MsrAlloc::SetFull;
    }
    set.insert(page);
    ++total;
    statsData.allocations.inc();
    statsData.occupancy.sample(total);
    if (total > statsData.peakOccupancy)
        statsData.peakOccupancy = total;
    return MsrAlloc::New;
}

std::uint32_t
MissStatusRow::setOccupancy(mem::PageNum page) const
{
    return static_cast<std::uint32_t>(table[setIndex(page)].size());
}

bool
MissStatusRow::contains(mem::PageNum page) const
{
    return table[setIndex(page)].count(page) != 0;
}

void
MissStatusRow::checkInvariants(sim::InvariantChecker &chk) const
{
    std::uint64_t live = 0;
    for (std::size_t s = 0; s < table.size(); ++s) {
        live += table[s].size();
        SIM_INVARIANT_MSG(chk, table[s].size() <= ways,
                          "set %zu holds %zu entries but has %u ways",
                          s, table[s].size(), ways);
        for (const mem::PageNum page : table[s]) {
            // A PageNum key cannot be misaligned by construction.
            SIM_INVARIANT_MSG(chk, setIndex(page) == s,
                              "entry %llx resides in the wrong set %zu",
                              static_cast<unsigned long long>(
                                  mem::pageAddr(page)),
                              s);
        }
    }
    SIM_INVARIANT_MSG(chk, live == total,
                      "set sizes sum to %llu but total says %u",
                      static_cast<unsigned long long>(live), total);
    SIM_INVARIANT(chk, total <= capacity());
    SIM_INVARIANT_MSG(
        chk,
        statsData.allocations.value() ==
            statsData.frees.value() + total,
        "miss conservation: %llu allocations != %llu frees + %u live",
        static_cast<unsigned long long>(statsData.allocations.value()),
        static_cast<unsigned long long>(statsData.frees.value()),
        total);
    SIM_INVARIANT(chk, statsData.peakOccupancy >= total);
}

void
MissStatusRow::free(mem::PageNum page)
{
    auto &set = table[setIndex(page)];
    const auto erased = set.erase(page);
    ASTRI_ASSERT_MSG(erased == 1, "%s: freeing absent MSR entry",
                     msrName.c_str());
    --total;
    statsData.frees.inc();
}

} // namespace astriflash::core
