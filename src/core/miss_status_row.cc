#include "miss_status_row.hh"

#include "sim/logging.hh"

namespace astriflash::core {

MissStatusRow::MissStatusRow(std::string name, std::uint32_t sets,
                             std::uint32_t entries_per_set)
    : msrName(std::move(name)), ways(entries_per_set)
{
    if (sets == 0 || entries_per_set == 0)
        ASTRI_FATAL("%s: MSR needs >=1 set and entry", msrName.c_str());
    table.resize(sets);
}

std::uint32_t
MissStatusRow::setIndex(mem::Addr page) const
{
    // Page-number hash spreads consecutive pages across sets.
    const std::uint64_t pn = page / mem::kPageSize;
    return static_cast<std::uint32_t>(
        (pn * 0x9e3779b97f4a7c15ull >> 32) % table.size());
}

MsrAlloc
MissStatusRow::allocate(mem::Addr page)
{
    const mem::Addr aligned = mem::pageBase(page);
    auto &set = table[setIndex(aligned)];
    if (set.count(aligned)) {
        statsData.duplicates.inc();
        return MsrAlloc::Duplicate;
    }
    if (set.size() >= ways) {
        statsData.setFullStalls.inc();
        return MsrAlloc::SetFull;
    }
    set.insert(aligned);
    ++total;
    statsData.allocations.inc();
    statsData.occupancy.sample(total);
    if (total > statsData.peakOccupancy)
        statsData.peakOccupancy = total;
    return MsrAlloc::New;
}

std::uint32_t
MissStatusRow::setOccupancy(mem::Addr page) const
{
    const mem::Addr aligned = mem::pageBase(page);
    return static_cast<std::uint32_t>(
        table[setIndex(aligned)].size());
}

bool
MissStatusRow::contains(mem::Addr page) const
{
    const mem::Addr aligned = mem::pageBase(page);
    return table[setIndex(aligned)].count(aligned) != 0;
}

void
MissStatusRow::checkInvariants(sim::InvariantChecker &chk) const
{
    std::uint64_t live = 0;
    for (std::size_t s = 0; s < table.size(); ++s) {
        live += table[s].size();
        SIM_INVARIANT_MSG(chk, table[s].size() <= ways,
                          "set %zu holds %zu entries but has %u ways",
                          s, table[s].size(), ways);
        for (const mem::Addr page : table[s]) {
            SIM_INVARIANT_MSG(chk, mem::pageBase(page) == page,
                              "unaligned MSR entry %llx",
                              static_cast<unsigned long long>(page));
            SIM_INVARIANT_MSG(chk, setIndex(page) == s,
                              "entry %llx resides in the wrong set %zu",
                              static_cast<unsigned long long>(page), s);
        }
    }
    SIM_INVARIANT_MSG(chk, live == total,
                      "set sizes sum to %llu but total says %u",
                      static_cast<unsigned long long>(live), total);
    SIM_INVARIANT(chk, total <= capacity());
    SIM_INVARIANT_MSG(
        chk,
        statsData.allocations.value() ==
            statsData.frees.value() + total,
        "miss conservation: %llu allocations != %llu frees + %u live",
        static_cast<unsigned long long>(statsData.allocations.value()),
        static_cast<unsigned long long>(statsData.frees.value()),
        total);
    SIM_INVARIANT(chk, statsData.peakOccupancy >= total);
}

void
MissStatusRow::free(mem::Addr page)
{
    const mem::Addr aligned = mem::pageBase(page);
    auto &set = table[setIndex(aligned)];
    const auto erased = set.erase(aligned);
    ASTRI_ASSERT_MSG(erased == 1, "%s: freeing absent MSR entry",
                     msrName.c_str());
    --total;
    statsData.frees.inc();
}

} // namespace astriflash::core
