#include "backside_controller.hh"

#include <bit>

#include "sim/logging.hh"
#include "sim/trace_events.hh"

namespace {
constexpr std::uint32_t kNoCore =
    astriflash::sim::TraceRecord::kNoCore;
} // namespace

namespace astriflash::core {

BacksideController::BacksideController(
    sim::EventQueue &eq, std::string name,
    const DramCacheConfig &config, const mem::AddressMap &amap,
    flash::Backend &flash_dev,
    sim::BoundedChannel<MissRequest> &in_channel,
    sim::BoundedChannel<FlashCmdMsg> &to_flash,
    sim::BoundedChannel<InstallComplete> &to_fc,
    sim::BoundedChannel<BcNotice> &to_fc_rsp,
    sim::BoundedChannel<InstallGrant> &from_fc_ctl,
    std::uint32_t msr_sets, std::uint32_t msr_entries_per_set,
    std::uint32_t evict_entries)
    : sim::SimObject(eq, std::move(name)), cfg(config), addrMap(amap),
      flashDev(flash_dev), inbox(in_channel), toFlash(to_flash),
      toFc(to_fc), toFcRsp(to_fc_rsp), fromFcCtl(from_fc_ctl),
      msrTable(SimObject::name() + ".msr", msr_sets,
               msr_entries_per_set),
      evictBuf(SimObject::name() + ".evictbuf", evict_entries),
      flashReadEstimate(flash_dev.readEstimate())
{
    const sim::ClockDomain clk(cfg.controllerFreqHz);
    bcOpTicks = clk.cycles(cfg.bc.cyclesPerOp);
}

void
BacksideController::bindChannels()
{
    // The submit path is bc-owned, so the command channel always
    // drains inside the push that filled it, both modes: startMiss's
    // issued-assertions depend on it and the seam honestly declares
    // zero lookahead.
    toFlash.setDrainHook([this] { pumpFlash(); });

    if (!cfg.fc.pipeline) {
        // Fused mode: service the whole miss chain nested inside the
        // producer's push, exactly like the pre-split facade pump.
        inbox.setDrainHook([this] {
            if (serviceNote)
                serviceNote(curTick());
            pumpInbox(sim::kTickNever);
        });
        fromFcCtl.setDrainHook([this] { pumpCtl(sim::kTickNever); });
        return;
    }

    // Pipeline mode: the producer's push only schedules this
    // controller's pump at accept + the declared channel lookahead.
    // The notify hook runs in the producer's context and touches no
    // bc-owned state; the pump event re-enters this domain.
    inbox.setNotifyHook([this](sim::Ticks accept) {
        requestPump(accept + inbox.contract().minLatency, [this] {
            auditDomain(); // event-queue entry point
            pumpInbox(curTick());
        });
    });
    fromFcCtl.setNotifyHook([this](sim::Ticks accept) {
        requestPump(accept + fromFcCtl.contract().minLatency, [this] {
            auditDomain(); // event-queue entry point
            pumpCtl(curTick());
        });
    });
}

void
BacksideController::requestPump(sim::Ticks when,
                                std::function<void()> fn)
{
    if (postFn) {
        postFn(when, std::move(fn));
        return;
    }
    // Single-queue fallback: the producer shares this queue, so a
    // relative schedule from its current tick lands at `when`.
    scheduleIn(when > curTick() ? when - curTick() : 0,
               std::move(fn));
}

void
BacksideController::pumpInbox(sim::Ticks eligible_until)
{
    const sim::Ticks lat = inbox.contract().minLatency;
    while (!inbox.empty()) {
        // Entries pushed after the round's barrier wait for their own
        // pump: the frozen window keeps the drain set independent of
        // worker interleaving.
        if (inbox.frontHeldByFreeze())
            break;
        if (eligible_until != sim::kTickNever &&
            inbox.front().acceptedAt + lat > eligible_until) {
            // Not yet past the declared lookahead; the push's own
            // notify pump revisits it.
            break;
        }
        // Pipeline mode floors the reply stamps at this pump's bound
        // (the miss channel's core-skewed pushes are not monotone, so
        // a late-drained request must not ack into the past).
        serviceHead(eligible_until == sim::kTickNever
                        ? 0 : eligible_until);
    }
}

void
BacksideController::serviceHead(sim::Ticks at_least)
{
    ASTRI_ASSERT_MSG(!inbox.empty(),
                     "%s: serviceHead() with an empty miss channel",
                     name().c_str());
    auto &st = inbox.front();
    const MissRequest req = st.msg;
    const sim::Ticks accept = st.acceptedAt;

    BcNotice ack;
    ack.kind = BcNotice::Kind::MissAck;
    ack.page = req.page;
    ack.hasWaiter = req.hasWaiter;
    ack.waiter = req.waiter;

    if (!req.subPage && evictBuf.contains(req.page)) {
        // The page is parked in the evict buffer awaiting writeback;
        // serve the request from there. (Footprint sub-page refetches
        // target a resident page, which cannot be parked here.)
        ack.reply.kind = BcReply::Kind::EvictBufferHit;
        ack.reply.ready = accept + bcOp();
        inbox.dropFront(ack.reply.ready);
        toFcRsp.push(ack, ack.reply.ready > at_least
                              ? ack.reply.ready : at_least);
        return;
    }

    ack.reply.kind = BcReply::Kind::MissStarted;
    ack.reply.merged = pending.count(req.page) != 0;
    ack.reply.ready = startMiss(req, accept);
    if (req.hasWaiter)
        pending[req.page].waiters.push_back(req.waiter);
    // Merged requests ride the original transaction's slot and only
    // pay the BC's dequeue + MSR search; a new miss holds its slot
    // until the page's install completes, making the channel depth
    // the BC's outstanding-transaction window. Either way the BC
    // consumes the request after its dequeue + MSR-search ops.
    const sim::Ticks consumed = accept + 2 * bcOp();
    inbox.dropFront(consumed, ack.reply.merged
                                  ? consumed
                                  : pending[req.page].dataReady);
    toFcRsp.push(ack, consumed > at_least ? consumed : at_least);
}

sim::Ticks
BacksideController::startMiss(const MissRequest &req, sim::Ticks now)
{
    const mem::PageNum page = req.page;
    auto it = pending.find(page);
    if (it != pending.end()) {
        it->second.anyWrite = it->second.anyWrite || req.write;
        // Widen a not-yet-issued fetch to cover this request; an
        // in-flight transfer cannot grow, in which case an uncovered
        // block sub-page-misses again after the install.
        if (!it->second.issued)
            it->second.fetchMask |= req.wantMask;
        sim::traceEvent(sim::TracePoint::MsrDedup, now, kNoCore,
                        pageByteAddr(page), it->second.waiters.size());
        return it->second.dataReady;
    }

    PendingMiss miss;
    miss.anyWrite = req.write;
    if (cfg.footprintEnabled) {
        // Footprint history is fc-owned; the producer snapshotted the
        // page's recorded footprint into the request at push time.
        miss.fetchMask = req.histValid
            ? (req.histMask | req.wantMask) : ~0ull;
    } else {
        miss.fetchMask = ~0ull;
    }

    // BC: one op to dequeue the request, one CAS-equivalent op to
    // search the MSR.
    const sim::Ticks bc_start = now + 2 * bcOp();
    const MsrAlloc alloc = msrTable.allocate(page);
    switch (alloc) {
      case MsrAlloc::Duplicate:
        // pending and the MSR mirror each other; a duplicate here is
        // an invariant violation.
        ASTRI_PANIC("MSR holds %llx but pending table does not",
                    static_cast<unsigned long long>(
                        pageByteAddr(page)));
      case MsrAlloc::SetFull: {
        // BC waits for an entry in this set to free; the request sits
        // in the BC queue. dataReady is a conservative estimate used
        // only by forced-synchronous requesters.
        miss.issued = false;
        miss.dataReady = bc_start + flashReadEstimate;
        pending.emplace(page, std::move(miss));
        msrStalled.push_back(page);
        sim::traceEvent(sim::TracePoint::MsrStall, bc_start, kNoCore,
                        pageByteAddr(page),
                        msrTable.setOccupancy(page));
        break;
      }
      case MsrAlloc::New: {
        sim::traceEvent(sim::TracePoint::MsrInsert, bc_start, kNoCore,
                        pageByteAddr(page), msrTable.occupancy());
        const std::uint64_t fetch_bytes =
            static_cast<std::uint64_t>(
                std::popcount(miss.fetchMask)) * mem::kBlockSize;
        pending.emplace(page, std::move(miss));
        // The command channel's drain submits the read and reports
        // back through flashReadIssued(), which stamps dataReady and
        // schedules the arrival.
        toFlash.push(
            FlashCmdMsg{
                flash::FlashCommand{flash::FlashCommand::Op::Read,
                                    addrMap.flashPage(
                                        pageByteAddr(page)),
                                    mem::Bytes(fetch_bytes)},
                page},
            bc_start);
        ASTRI_ASSERT_MSG(pending[page].issued,
                         "flash read for %llx was not issued by the "
                         "command channel drain",
                         static_cast<unsigned long long>(
                             pageByteAddr(page)));
        break;
      }
    }
    if (pending.size() > statsData.peakOutstanding)
        statsData.peakOutstanding = pending.size();
    return pending[page].dataReady;
}

void
BacksideController::pumpFlash()
{
    while (!toFlash.empty()) {
        auto &st = toFlash.front();
        const FlashCmdMsg msg = st.msg;
        const sim::Ticks issued = st.acceptedAt;
        const flash::FlashCommandResult res =
            flashDev.submit(msg.cmd, issued);
        // The slot drains when the device finishes the read or
        // accepts the write, so the depth models the device command
        // queue; the declared zero lookahead matches the synchronous
        // submit (the seam never leaves this domain).
        toFlash.dropFront(issued, res.complete);
        if (msg.cmd.op == flash::FlashCommand::Op::Read)
            flashReadIssued(msg.page, issued, res.complete);
    }
}

void
BacksideController::flashReadIssued(mem::PageNum page,
                                    sim::Ticks issued_at,
                                    sim::Ticks complete_at)
{
    auto it = pending.find(page);
    ASTRI_ASSERT_MSG(it != pending.end() && !it->second.issued,
                     "read completion for %llx without an un-issued "
                     "pending miss",
                     static_cast<unsigned long long>(
                         pageByteAddr(page)));
    const std::uint64_t fetch_bytes =
        static_cast<std::uint64_t>(
            std::popcount(it->second.fetchMask)) * mem::kBlockSize;
    sim::traceEvent(sim::TracePoint::FlashReadIssue, issued_at,
                    kNoCore, pageByteAddr(page), fetch_bytes);
    it->second.issued = true;
    it->second.dataReady = complete_at + bcOp() + installEstimate();
    scheduleIn(complete_at > curTick() ? complete_at - curTick() : 0,
               [this, page] { pageArrived(page); });
}

sim::Ticks
BacksideController::installEstimate() const
{
    // Closed-row activate plus streaming the 4 KB page.
    return cfg.dram.closedRowLatency() +
           cfg.dram.tBurst * (cfg.pageBytes / mem::kBlockSize - 1) +
           bcOp();
}

void
BacksideController::pageArrived(mem::PageNum page)
{
    // Event-queue entry point: must execute in this shard's domain.
    auditDomain();
    const sim::Ticks now = curTick();
    sim::traceEvent(sim::TracePoint::FlashReadDone, now, kNoCore,
                    pageByteAddr(page));

    auto pit = pending.find(page);
    ASTRI_ASSERT_MSG(pit != pending.end(),
                     "arrival for page %llx with no pending miss",
                     static_cast<unsigned long long>(
                         pageByteAddr(page)));
    const std::uint64_t fetch_mask = pit->second.fetchMask;
    const std::uint64_t fetch_bytes =
        static_cast<std::uint64_t>(std::popcount(fetch_mask)) *
        mem::kBlockSize;
    statsData.flashBytesRead.inc(
        fetch_bytes > cfg.pageBytes ? cfg.pageBytes : fetch_bytes);

    // Securing a frame needs the tag array, the DRAM model, and the
    // footprint masks — all fc-owned. Request the install across the
    // seam; the grant comes back on the ctl channel and finishes the
    // miss in finishInstall().
    BcNotice n;
    n.kind = BcNotice::Kind::InstallReq;
    n.page = page;
    n.fetchMask = fetch_mask;
    n.dirty = pit->second.anyWrite;
    pit->second.installing = true;
    toFcRsp.push(n, now);
}

void
BacksideController::pumpCtl(sim::Ticks eligible_until)
{
    const sim::Ticks lat = fromFcCtl.contract().minLatency;
    while (!fromFcCtl.empty()) {
        if (fromFcCtl.frontHeldByFreeze())
            break;
        const auto &st = fromFcCtl.front();
        if (eligible_until != sim::kTickNever &&
            st.acceptedAt + lat > eligible_until)
            break;
        const InstallGrant grant = st.msg;
        // Fused mode finishes the miss at the grant's accept tick —
        // the whole install chain is one nested call at the arrival
        // tick, byte-identical to the pre-split controller. Pipeline
        // mode acts at the entry's eligibility, clamped to this
        // pump's bound: the ctl channel is not monotone, so a
        // late-drained entry's stale act tick would otherwise stamp
        // the install-complete push (and the bc_to_fc cross-post)
        // into the past. The clamp is deterministic — each entry's
        // draining pump is fixed by channel content and pump order.
        sim::Ticks act = st.acceptedAt;
        if (cfg.fc.pipeline) {
            act = st.acceptedAt + lat > eligible_until
                      ? st.acceptedAt + lat : eligible_until;
        }
        fromFcCtl.dropFront(st.acceptedAt + lat);
        finishInstall(grant, act);
    }
}

void
BacksideController::finishInstall(const InstallGrant &grant,
                                  sim::Ticks now)
{
    auto pit = pending.find(grant.page);
    ASTRI_ASSERT_MSG(pit != pending.end(),
                     "install grant for page %llx with no pending miss",
                     static_cast<unsigned long long>(
                         pageByteAddr(grant.page)));
    statsData.fills.inc();

    // A displaced victim parks in the evict buffer and drains to
    // flash off the critical path.
    if (grant.hasVictim) {
        if (evictBuf.full()) {
            // Backpressure: force-drain the oldest entry now (the
            // install stalls behind the BC's emergency writeback).
            drainEvictBuffer(now);
        }
        const bool ok =
            evictBuf.insert(grant.victim, grant.victimDirty, now);
        ASTRI_ASSERT(ok);
        sim::traceEvent(sim::TracePoint::PageEvict, now, kNoCore,
                        pageByteAddr(grant.victim),
                        grant.victimDirty ? 1 : 0);
        // Lazy drain keeps writes off the read path.
        const sim::Ticks drain_at = now + bcOp() * 4;
        scheduleIn(drain_at > curTick() ? drain_at - curTick() : 0,
                   [this] {
                       auditDomain(); // event-queue entry point
                       drainEvictBuffer(curTick());
                   });
    }

    const sim::Ticks ready = grant.installComplete + bcOp();
    statsData.missPenalty.sample(ready > now ? ready - now : 0);
    sim::traceEvent(sim::TracePoint::PageFill, ready, kNoCore,
                    pageByteAddr(grant.page),
                    ready > now ? ready - now : 0);

    // Free the MSR entry and unblock any set-conflicted misses.
    msrTable.free(grant.page);
    retryMsrStalled(now);

    auto waiters = std::move(pit->second.waiters);
    pending.erase(pit);
    toFc.push(InstallComplete{grant.page, ready, std::move(waiters)},
              now);
}

void
BacksideController::retryMsrStalled(sim::Ticks now)
{
    for (auto it = msrStalled.begin(); it != msrStalled.end();) {
        const mem::PageNum page = *it;
        auto pit = pending.find(page);
        if (pit == pending.end() || pit->second.issued) {
            it = msrStalled.erase(it);
            continue;
        }
        const MsrAlloc alloc = msrTable.allocate(page);
        if (alloc == MsrAlloc::SetFull) {
            ++it;
            continue;
        }
        ASTRI_ASSERT(alloc == MsrAlloc::New);
        sim::traceEvent(sim::TracePoint::MsrInsert, now + bcOp(),
                        kNoCore, pageByteAddr(page),
                        msrTable.occupancy());
        const std::uint64_t fetch_bytes =
            static_cast<std::uint64_t>(
                std::popcount(pit->second.fetchMask)) * mem::kBlockSize;
        toFlash.push(
            FlashCmdMsg{
                flash::FlashCommand{flash::FlashCommand::Op::Read,
                                    addrMap.flashPage(
                                        pageByteAddr(page)),
                                    mem::Bytes(fetch_bytes)},
                page},
            now + bcOp());
        ASTRI_ASSERT(pit->second.issued);
        it = msrStalled.erase(it);
    }
}

void
BacksideController::drainEvictBuffer(sim::Ticks now)
{
    if (evictBuf.empty())
        return;
    const EvictBuffer::Entry e = evictBuf.pop();
    sim::traceEvent(sim::TracePoint::EvictDrain, now, kNoCore,
                    pageByteAddr(e.page), e.dirty ? 1 : 0);
    if (e.dirty) {
        toFlash.push(
            FlashCmdMsg{
                flash::FlashCommand{flash::FlashCommand::Op::Write,
                                    addrMap.flashPage(
                                        pageByteAddr(e.page)),
                                    mem::Bytes{0}},
                e.page},
            now);
        statsData.dirtyWritebacks.inc();
    }
}

void
BacksideController::resetStats()
{
    statsData = Stats{};
    // Misses in flight across the reset still count toward the
    // measurement window's peak.
    statsData.peakOutstanding = pending.size();
}

void
BacksideController::regStats(sim::StatRegistry &reg) const
{
    reg.registerCounter("fills", &statsData.fills,
                        "pages installed into the cache");
    reg.registerCounter("dirty_writebacks", &statsData.dirtyWritebacks,
                        "dirty victims programmed to flash");
    reg.registerCounter("flash_bytes_read", &statsData.flashBytesRead,
                        "refill bytes transferred from flash");
    reg.registerHistogram("miss_penalty", &statsData.missPenalty,
                          "miss-to-page-ready latency in ticks");
    reg.registerUint("peak_outstanding", &statsData.peakOutstanding,
                     "maximum concurrent outstanding misses");
    msrTable.regStats(reg.subRegistry("msr"));
    evictBuf.regStats(reg.subRegistry("evictbuf"));
}

void
BacksideController::checkInvariants(sim::InvariantChecker &chk) const
{
    // The MSR and the pending table mirror each other: exactly the
    // issued misses hold entries.
    std::uint32_t issued = 0;
    // Audit-only walk; every element is checked independently, so
    // iteration order cannot matter (baselined AF015).
    for (const auto &[page, miss] : pending) {
        SIM_INVARIANT_MSG(chk, !miss.waiters.empty() || miss.issued,
                          "un-issued miss %llx has no waiters",
                          static_cast<unsigned long long>(
                              pageByteAddr(page)));
        if (miss.issued) {
            ++issued;
            SIM_INVARIANT_MSG(chk, msrTable.contains(page),
                              "issued miss %llx lost its MSR entry",
                              static_cast<unsigned long long>(
                                  pageByteAddr(page)));
        }
    }
    SIM_INVARIANT_MSG(chk, msrTable.occupancy() == issued,
                      "MSR holds %u entries but %u misses are issued",
                      msrTable.occupancy(), issued);

    // The stall queue holds exactly the un-issued pending pages.
    std::unordered_map<mem::PageNum, int> stalled;
    for (const mem::PageNum page : msrStalled) {
        SIM_INVARIANT_MSG(chk, ++stalled[page] == 1,
                          "page %llx queued twice behind a full MSR set",
                          static_cast<unsigned long long>(
                              pageByteAddr(page)));
        const auto it = pending.find(page);
        SIM_INVARIANT_MSG(chk,
                          it != pending.end() && !it->second.issued,
                          "stall queue holds %llx which is not an "
                          "un-issued pending miss",
                          static_cast<unsigned long long>(
                              pageByteAddr(page)));
    }
    SIM_INVARIANT_MSG(chk,
                      stalled.size() == pending.size() - issued,
                      "%zu stalled pages but %zu un-issued misses",
                      stalled.size(), pending.size() - issued);

    SIM_INVARIANT(chk, statsData.peakOutstanding >= pending.size());
    // Every install freed exactly one MSR entry in the same event.
    // The MSR counter is cumulative while fills resets at measurement
    // start, so lifetime frees bound the windowed fill count.
    SIM_INVARIANT_MSG(chk,
                      msrTable.stats().frees.value() >=
                          statsData.fills.value(),
                      "%llu fills outnumber %llu MSR frees",
                      static_cast<unsigned long long>(
                          statsData.fills.value()),
                      static_cast<unsigned long long>(
                          msrTable.stats().frees.value()));
}

void
BacksideController::auditShared(sim::InvariantChecker &chk,
                                const mem::SetAssocCache &tags) const
{
    if (cfg.footprintEnabled) {
        // Footprint mode legitimately refetches absent blocks of
        // resident pages, so residency and pending can coexist.
        return;
    }
    // Cross-domain audit at a quiesce point: a full-page miss cannot
    // coexist with a resident copy. The tag array is fc-owned and
    // passed by const reference — the BC never holds it.
    // Audit-only, order-insensitive walk (baselined AF015). Entries
    // whose install grant is in flight are exempt: the frontside has
    // already filled the tags but the completion that retires the
    // entry is still crossing the ctl channel.
    for (const auto &[page, miss] : pending) {
        if (miss.installing)
            continue;
        SIM_INVARIANT_MSG(chk,
                          !tags.contains(pageByteAddr(page)),
                          "page %llx is both resident and pending",
                          static_cast<unsigned long long>(
                              pageByteAddr(page)));
    }
}

} // namespace astriflash::core
