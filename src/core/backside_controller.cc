#include "backside_controller.hh"

#include <bit>

#include "sim/logging.hh"
#include "sim/trace_events.hh"

namespace {
constexpr std::uint32_t kNoCore =
    astriflash::sim::TraceRecord::kNoCore;
} // namespace

namespace astriflash::core {

BacksideController::BacksideController(
    sim::EventQueue &eq, std::string name,
    const DramCacheConfig &config, const mem::AddressMap &amap,
    mem::Dram &dram, mem::SetAssocCache &tags,
    FootprintState &footprint,
    sim::BoundedChannel<MissRequest> &in_channel,
    sim::BoundedChannel<FlashCmdMsg> &to_flash,
    sim::BoundedChannel<InstallComplete> &to_fc,
    std::uint32_t msr_sets, std::uint32_t msr_entries_per_set,
    std::uint32_t evict_entries, sim::Ticks flash_read_estimate)
    : sim::SimObject(eq, std::move(name)), cfg(config), addrMap(amap),
      dramModel(dram), pageTags(tags), fp(footprint),
      inbox(in_channel), toFlash(to_flash), toFc(to_fc),
      msrTable(SimObject::name() + ".msr", msr_sets,
               msr_entries_per_set),
      evictBuf(SimObject::name() + ".evictbuf", evict_entries),
      flashReadEstimate(flash_read_estimate)
{
    const sim::ClockDomain clk(cfg.controllerFreqHz);
    bcOpTicks = clk.cycles(cfg.bc.cyclesPerOp);
}

BcReply
BacksideController::service()
{
    ASTRI_ASSERT_MSG(!inbox.empty(),
                     "%s: service() with an empty miss channel",
                     name().c_str());
    auto &st = inbox.front();
    const MissRequest req = st.msg;
    const sim::Ticks accept = st.acceptedAt;

    BcReply rep;
    if (!req.subPage && evictBuf.contains(req.page)) {
        // The page is parked in the evict buffer awaiting writeback;
        // serve the request from there. (Footprint sub-page refetches
        // target a resident page, which cannot be parked here.)
        rep.kind = BcReply::Kind::EvictBufferHit;
        rep.ready = accept + bcOp();
        inbox.dropFront(rep.ready);
        return rep;
    }

    rep.kind = BcReply::Kind::MissStarted;
    rep.merged = pending.count(req.page) != 0;
    rep.ready = startMiss(req.page, accept, req.write, req.wantMask);
    if (req.hasWaiter)
        pending[req.page].waiters.push_back(req.waiter);
    // Merged requests ride the original transaction's slot and only
    // pay the BC's dequeue + MSR search; a new miss holds its slot
    // until the page's install completes, making the channel depth
    // the BC's outstanding-transaction window. Either way the BC
    // consumes the request after its dequeue + MSR-search ops.
    inbox.dropFront(accept + 2 * bcOp(),
                    rep.merged ? accept + 2 * bcOp()
                               : pending[req.page].dataReady);
    return rep;
}

sim::Ticks
BacksideController::startMiss(mem::PageNum page, sim::Ticks now,
                              bool write, std::uint64_t want_mask)
{
    auto it = pending.find(page);
    if (it != pending.end()) {
        it->second.anyWrite = it->second.anyWrite || write;
        // Widen a not-yet-issued fetch to cover this request; an
        // in-flight transfer cannot grow, in which case an uncovered
        // block sub-page-misses again after the install.
        if (!it->second.issued)
            it->second.fetchMask |= want_mask;
        sim::traceEvent(sim::TracePoint::MsrDedup, now, kNoCore,
                        pageByteAddr(page), it->second.waiters.size());
        return it->second.dataReady;
    }

    PendingMiss miss;
    miss.anyWrite = write;
    if (cfg.footprintEnabled) {
        const auto hist = fp.history.find(page);
        miss.fetchMask = hist != fp.history.end()
            ? (hist->second | want_mask) : ~0ull;
    } else {
        miss.fetchMask = ~0ull;
    }

    // BC: one op to dequeue the request, one CAS-equivalent op to
    // search the MSR.
    const sim::Ticks bc_start = now + 2 * bcOp();
    const MsrAlloc alloc = msrTable.allocate(page);
    switch (alloc) {
      case MsrAlloc::Duplicate:
        // pending and the MSR mirror each other; a duplicate here is
        // an invariant violation.
        ASTRI_PANIC("MSR holds %llx but pending table does not",
                    static_cast<unsigned long long>(
                        pageByteAddr(page)));
      case MsrAlloc::SetFull: {
        // BC waits for an entry in this set to free; the request sits
        // in the BC queue. dataReady is a conservative estimate used
        // only by forced-synchronous requesters.
        miss.issued = false;
        miss.dataReady = bc_start + flashReadEstimate;
        pending.emplace(page, std::move(miss));
        msrStalled.push_back(page);
        sim::traceEvent(sim::TracePoint::MsrStall, bc_start, kNoCore,
                        pageByteAddr(page),
                        msrTable.setOccupancy(page));
        break;
      }
      case MsrAlloc::New: {
        sim::traceEvent(sim::TracePoint::MsrInsert, bc_start, kNoCore,
                        pageByteAddr(page), msrTable.occupancy());
        const std::uint64_t fetch_bytes =
            static_cast<std::uint64_t>(
                std::popcount(miss.fetchMask)) * mem::kBlockSize;
        pending.emplace(page, std::move(miss));
        // The facade submits the command and reports back through
        // flashReadIssued(), which stamps dataReady and schedules the
        // arrival.
        toFlash.push(
            FlashCmdMsg{
                flash::FlashCommand{flash::FlashCommand::Op::Read,
                                    addrMap.flashPage(
                                        pageByteAddr(page)),
                                    mem::Bytes(fetch_bytes)},
                page},
            bc_start);
        ASTRI_ASSERT_MSG(pending[page].issued,
                         "flash read for %llx was not issued by the "
                         "command channel drain",
                         static_cast<unsigned long long>(
                             pageByteAddr(page)));
        break;
      }
    }
    if (pending.size() > statsData.peakOutstanding)
        statsData.peakOutstanding = pending.size();
    return pending[page].dataReady;
}

void
BacksideController::flashReadIssued(mem::PageNum page,
                                    sim::Ticks issued_at,
                                    sim::Ticks complete_at)
{
    auto it = pending.find(page);
    ASTRI_ASSERT_MSG(it != pending.end() && !it->second.issued,
                     "read completion for %llx without an un-issued "
                     "pending miss",
                     static_cast<unsigned long long>(
                         pageByteAddr(page)));
    const std::uint64_t fetch_bytes =
        static_cast<std::uint64_t>(
            std::popcount(it->second.fetchMask)) * mem::kBlockSize;
    sim::traceEvent(sim::TracePoint::FlashReadIssue, issued_at,
                    kNoCore, pageByteAddr(page), fetch_bytes);
    it->second.issued = true;
    it->second.dataReady = complete_at + bcOp() + installEstimate();
    scheduleIn(complete_at - curTick(),
               [this, page] { pageArrived(page); });
}

sim::Ticks
BacksideController::installEstimate() const
{
    // Closed-row activate plus streaming the 4 KB page.
    return cfg.dram.closedRowLatency() +
           cfg.dram.tBurst * (cfg.pageBytes / mem::kBlockSize - 1) +
           bcOp();
}

void
BacksideController::pageArrived(mem::PageNum page)
{
    // Event-queue entry point: must execute in this shard's domain.
    auditDomain();
    const sim::Ticks now = curTick();
    sim::traceEvent(sim::TracePoint::FlashReadDone, now, kNoCore,
                    pageByteAddr(page));

    // Secure a frame: fill the tag array; a displaced victim parks in
    // the evict buffer and drains to flash off the critical path.
    auto pit = pending.find(page);
    ASTRI_ASSERT_MSG(pit != pending.end(),
                     "arrival for page %llx with no pending miss",
                     static_cast<unsigned long long>(
                         pageByteAddr(page)));
    const bool dirty_install = pit->second.anyWrite;
    const std::uint64_t fetch_mask = pit->second.fetchMask;
    const std::uint64_t fetch_bytes =
        static_cast<std::uint64_t>(std::popcount(fetch_mask)) *
        mem::kBlockSize;
    statsData.flashBytesRead.inc(
        fetch_bytes > cfg.pageBytes ? cfg.pageBytes : fetch_bytes);
    if (cfg.footprintEnabled)
        fp.fetched[page] |= fetch_mask;
    auto victim = pageTags.fill(pageByteAddr(page), dirty_install);
    statsData.fills.inc();
    if (victim) {
        const mem::PageNum vpage = pageNum(victim->tag_addr);
        if (cfg.footprintEnabled) {
            // Record the victim's footprint for its next residency
            // and drop its residency masks.
            const auto t = fp.touched.find(vpage);
            if (t != fp.touched.end() && t->second != 0)
                fp.history[vpage] = t->second;
            fp.touched.erase(vpage);
            fp.fetched.erase(vpage);
        }
        if (evictBuf.full()) {
            // Backpressure: force-drain the oldest entry now (the
            // install stalls behind the BC's emergency writeback).
            drainEvictBuffer(now);
        }
        const bool ok = evictBuf.insert(vpage, victim->dirty, now);
        ASTRI_ASSERT(ok);
        sim::traceEvent(sim::TracePoint::PageEvict, now, kNoCore,
                        victim->tag_addr, victim->dirty ? 1 : 0);
        // Lazy drain keeps writes off the read path.
        scheduleIn(bcOp() * 4, [this] {
            auditDomain(); // event-queue entry point
            drainEvictBuffer(curTick());
        });
    }

    // Install: stream the fetched blocks into the frame.
    const auto install = dramModel.access(
        dcSetRowAddr(cfg, pageTags.numSets(), pageByteAddr(page)), now,
        true, fetch_bytes > cfg.pageBytes ? cfg.pageBytes : fetch_bytes);
    const sim::Ticks ready = install.complete + bcOp();
    statsData.missPenalty.sample(ready > now ? ready - now : 0);
    sim::traceEvent(sim::TracePoint::PageFill, ready, kNoCore,
                    pageByteAddr(page), ready > now ? ready - now : 0);

    // Free the MSR entry and unblock any set-conflicted misses.
    msrTable.free(page);
    retryMsrStalled(now);

    auto waiters = std::move(pit->second.waiters);
    pending.erase(pit);
    toFc.push(InstallComplete{page, ready, std::move(waiters)}, now);
}

void
BacksideController::retryMsrStalled(sim::Ticks now)
{
    for (auto it = msrStalled.begin(); it != msrStalled.end();) {
        const mem::PageNum page = *it;
        auto pit = pending.find(page);
        if (pit == pending.end() || pit->second.issued) {
            it = msrStalled.erase(it);
            continue;
        }
        const MsrAlloc alloc = msrTable.allocate(page);
        if (alloc == MsrAlloc::SetFull) {
            ++it;
            continue;
        }
        ASTRI_ASSERT(alloc == MsrAlloc::New);
        sim::traceEvent(sim::TracePoint::MsrInsert, now + bcOp(),
                        kNoCore, pageByteAddr(page),
                        msrTable.occupancy());
        const std::uint64_t fetch_bytes =
            static_cast<std::uint64_t>(
                std::popcount(pit->second.fetchMask)) * mem::kBlockSize;
        toFlash.push(
            FlashCmdMsg{
                flash::FlashCommand{flash::FlashCommand::Op::Read,
                                    addrMap.flashPage(
                                        pageByteAddr(page)),
                                    mem::Bytes(fetch_bytes)},
                page},
            now + bcOp());
        ASTRI_ASSERT(pit->second.issued);
        it = msrStalled.erase(it);
    }
}

void
BacksideController::drainEvictBuffer(sim::Ticks now)
{
    if (evictBuf.empty())
        return;
    const EvictBuffer::Entry e = evictBuf.pop();
    sim::traceEvent(sim::TracePoint::EvictDrain, now, kNoCore,
                    pageByteAddr(e.page), e.dirty ? 1 : 0);
    if (e.dirty) {
        toFlash.push(
            FlashCmdMsg{
                flash::FlashCommand{flash::FlashCommand::Op::Write,
                                    addrMap.flashPage(
                                        pageByteAddr(e.page)),
                                    mem::Bytes{0}},
                e.page},
            now);
        statsData.dirtyWritebacks.inc();
    }
}

void
BacksideController::resetStats()
{
    statsData = Stats{};
    // Misses in flight across the reset still count toward the
    // measurement window's peak.
    statsData.peakOutstanding = pending.size();
}

void
BacksideController::regStats(sim::StatRegistry &reg) const
{
    reg.registerCounter("fills", &statsData.fills,
                        "pages installed into the cache");
    reg.registerCounter("dirty_writebacks", &statsData.dirtyWritebacks,
                        "dirty victims programmed to flash");
    reg.registerCounter("flash_bytes_read", &statsData.flashBytesRead,
                        "refill bytes transferred from flash");
    reg.registerHistogram("miss_penalty", &statsData.missPenalty,
                          "miss-to-page-ready latency in ticks");
    reg.registerUint("peak_outstanding", &statsData.peakOutstanding,
                     "maximum concurrent outstanding misses");
    msrTable.regStats(reg.subRegistry("msr"));
    evictBuf.regStats(reg.subRegistry("evictbuf"));
}

void
BacksideController::checkInvariants(sim::InvariantChecker &chk) const
{
    // The MSR and the pending table mirror each other: exactly the
    // issued misses hold entries.
    std::uint32_t issued = 0;
    // Audit-only walk; every element is checked independently, so
    // iteration order cannot matter (baselined AF015).
    for (const auto &[page, miss] : pending) {
        SIM_INVARIANT_MSG(chk, !miss.waiters.empty() || miss.issued,
                          "un-issued miss %llx has no waiters",
                          static_cast<unsigned long long>(
                              pageByteAddr(page)));
        if (miss.issued) {
            ++issued;
            SIM_INVARIANT_MSG(chk, msrTable.contains(page),
                              "issued miss %llx lost its MSR entry",
                              static_cast<unsigned long long>(
                                  pageByteAddr(page)));
        }
        if (!cfg.footprintEnabled) {
            // A full-page miss cannot coexist with a resident copy
            // (footprint mode legitimately refetches absent blocks
            // of resident pages).
            SIM_INVARIANT_MSG(chk,
                              !pageTags.contains(pageByteAddr(page)),
                              "page %llx is both resident and pending",
                              static_cast<unsigned long long>(
                                  pageByteAddr(page)));
        }
    }
    SIM_INVARIANT_MSG(chk, msrTable.occupancy() == issued,
                      "MSR holds %u entries but %u misses are issued",
                      msrTable.occupancy(), issued);

    // The stall queue holds exactly the un-issued pending pages.
    std::unordered_map<mem::PageNum, int> stalled;
    for (const mem::PageNum page : msrStalled) {
        SIM_INVARIANT_MSG(chk, ++stalled[page] == 1,
                          "page %llx queued twice behind a full MSR set",
                          static_cast<unsigned long long>(
                              pageByteAddr(page)));
        const auto it = pending.find(page);
        SIM_INVARIANT_MSG(chk,
                          it != pending.end() && !it->second.issued,
                          "stall queue holds %llx which is not an "
                          "un-issued pending miss",
                          static_cast<unsigned long long>(
                              pageByteAddr(page)));
    }
    SIM_INVARIANT_MSG(chk,
                      stalled.size() == pending.size() - issued,
                      "%zu stalled pages but %zu un-issued misses",
                      stalled.size(), pending.size() - issued);

    SIM_INVARIANT(chk, statsData.peakOutstanding >= pending.size());
    // Every install freed exactly one MSR entry in the same event.
    // The MSR counter is cumulative while fills resets at measurement
    // start, so lifetime frees bound the windowed fill count.
    SIM_INVARIANT_MSG(chk,
                      msrTable.stats().frees.value() >=
                          statsData.fills.value(),
                      "%llu fills outnumber %llu MSR frees",
                      static_cast<unsigned long long>(
                          statsData.fills.value()),
                      static_cast<unsigned long long>(
                          msrTable.stats().frees.value()));

    // Footprint residency masks exist only for resident pages.
    if (cfg.footprintEnabled) {
        // Audit-only, order-insensitive walk (baselined AF015).
        for (const auto &[page, mask] : fp.fetched) {
            (void)mask;
            SIM_INVARIANT_MSG(chk,
                              pageTags.contains(pageByteAddr(page)),
                              "fetched mask for non-resident %llx",
                              static_cast<unsigned long long>(
                                  pageByteAddr(page)));
        }
    } else {
        SIM_INVARIANT(chk, fp.fetched.empty());
        SIM_INVARIANT(chk, fp.touched.empty());
        SIM_INVARIANT(chk, fp.history.empty());
    }
}

} // namespace astriflash::core
