/**
 * @file
 * User-level thread scheduler model (§IV-D, Fig. 8).
 *
 * One scheduler per core manages a global queue of new jobs and a
 * bounded pending queue of jobs halted on DRAM-cache misses. The
 * priority policy gives new jobs priority two and pending jobs
 * priority one, with aging: when the head of the pending queue has
 * waited longer than the (EMA-tracked) average flash response time it
 * is scheduled first, preventing starvation. The FIFO variant
 * (AstriFlash-noPS) always prefers new jobs and only drains the
 * pending queue when no new work exists — the policy Table II shows
 * degrading p99 by ~7x.
 */

#ifndef ASTRIFLASH_CORE_SCHED_MODEL_HH
#define ASTRIFLASH_CORE_SCHED_MODEL_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "mem/address.hh"
#include "sim/invariant.hh"
#include "sim/stats.hh"
#include "sim/ticks.hh"
#include "workload/job.hh"

namespace astriflash::core {

/** Scheduling policy selector. */
enum class SchedPolicy {
    PriorityAging, ///< The AstriFlash scheduler.
    Fifo,          ///< AstriFlash-noPS ablation.
};

/** Per-core cooperative scheduler. */
class SchedulerModel
{
  public:
    struct Config {
        SchedPolicy policy = SchedPolicy::PriorityAging;
        /** Pending-queue bound: misses beyond this block the core on
         *  the oldest pending job (§IV-D1). Sized so pending jobs do
         *  not exceed the tail-latency requirements. */
        std::uint32_t pendingCap = 16;
        /**
         * BC queue-pair notifications (§IV-D2): the scheduler knows
         * which pages arrived and resumes those jobs at the next
         * scheduling point. When false, the scheduler falls back to
         * the age-vs-average-flash-response proxy alone.
         */
        bool notifyArrivals = true;
        /** EMA weight for the average-flash-response estimate. */
        double emaAlpha = 0.1;
        /** Initial flash-response estimate before any sample. */
        sim::Ticks initialFlashEstimate = sim::microseconds(50);
    };

    struct Stats {
        sim::Counter scheduledNew;
        sim::Counter scheduledPending;
        sim::Counter agingPromotions; ///< Pending picked due to age.
        sim::Counter pendingOverflows; ///< Core blocked, queue full.
        std::uint64_t peakPending = 0;
    };

    explicit SchedulerModel(const Config &config) : cfg(config) {}

    /** Push a brand-new job into the job queue. */
    void
    enqueueNew(workload::Job &&job)
    {
        newJobs.push_back(std::move(job));
    }

    /** Number of new jobs waiting. */
    std::size_t newCount() const { return newJobs.size(); }

    /** Number of halted jobs (waiting + ready). */
    std::size_t
    pendingCount() const
    {
        return pendingWaiting.size() + pendingReady.size();
    }

    /** True if a further miss must block the core (queue full). */
    bool
    pendingFull() const
    {
        return pendingCount() >= cfg.pendingCap;
    }

    /**
     * Park a job that missed; it becomes ready when its page arrives.
     * @param page  The missing page (wake key).
     */
    void parkOnMiss(workload::Job &&job, mem::PageNum page,
                    sim::Ticks now);

    /**
     * A page arrived: move every job waiting on it to the ready list.
     * @return number of jobs woken.
     */
    std::uint32_t pageReady(mem::PageNum page, sim::Ticks when);

    /**
     * Record a measured flash-response time (miss-to-wake), updating
     * the aging threshold.
     */
    void noteFlashResponse(sim::Ticks response);

    /** Current aging threshold (average flash response estimate). */
    sim::Ticks
    agingThreshold() const
    {
        return static_cast<sim::Ticks>(flashEma);
    }

    /**
     * Pick the next job to run (the policy's core).
     * @return nullopt when nothing is runnable right now.
     */
    std::optional<workload::Job> pickNext(sim::Ticks now);

    /**
     * Take the pending-ready head regardless of policy. Used when the
     * core was blocked on a full pending queue: the overflow rule
     * services the oldest halted job first (§IV-D1).
     */
    std::optional<workload::Job> pickPendingReady();

    /** Record that a miss found the pending queue full. */
    void notePendingOverflow() { statsData.pendingOverflows.inc(); }

    /** True if any job (new or ready-pending) is runnable. */
    bool hasRunnable() const
    {
        return !newJobs.empty() || !pendingReady.empty();
    }

    const Stats &stats() const { return statsData; }
    const Config &config() const { return cfg; }

    /** Register this scheduler's stats into @p reg. */
    void
    regStats(sim::StatRegistry &reg) const
    {
        reg.registerCounter("scheduled_new", &statsData.scheduledNew,
                            "new jobs dispatched to the core");
        reg.registerCounter("scheduled_pending",
                            &statsData.scheduledPending,
                            "halted jobs resumed after their fill");
        reg.registerCounter("aging_promotions",
                            &statsData.agingPromotions,
                            "pending jobs promoted past new work by age");
        reg.registerCounter("pending_overflows",
                            &statsData.pendingOverflows,
                            "misses that found the pending queue full");
        reg.registerUint("peak_pending", &statsData.peakPending,
                         "maximum halted jobs over the run");
    }

    /**
     * Audit the queues: halted jobs stay within the recorded peak,
     * waiting entries are parked in halt order, promotions are a
     * subset of pending dispatches, and the EMA estimate stays sane.
     * Halt stamps are NOT compared against the sweep tick: the core
     * owning this scheduler simulates ahead of the global queue by up
     * to its burst quantum, so stamps may legitimately sit in the
     * sweep's future.
     */
    void
    checkInvariants(sim::InvariantChecker &chk) const
    {
        SIM_INVARIANT_MSG(chk, statsData.peakPending >= pendingCount(),
                          "peak %llu below the %zu live halted jobs",
                          static_cast<unsigned long long>(
                              statsData.peakPending),
                          pendingCount());
        // The core's local time cursor is monotone, so parks append
        // in non-decreasing halt order.
        sim::Ticks prev_halt = 0;
        for (const Waiting &w : pendingWaiting) {
            SIM_INVARIANT_MSG(chk,
                              w.job.pendingSince >= prev_halt,
                              "park order broken (page %llx)",
                              static_cast<unsigned long long>(
                                  mem::pageAddr(w.page)));
            prev_halt = w.job.pendingSince;
        }
        SIM_INVARIANT(chk,
                      statsData.agingPromotions.value() <=
                          statsData.scheduledPending.value());
        SIM_INVARIANT(chk, flashEma >= 0.0);
        SIM_INVARIANT(chk, emaSeeded || flashEma == 0.0 ||
                               flashEma == static_cast<double>(
                                   cfg.initialFlashEstimate));
    }

  private:
    struct Waiting {
        workload::Job job;
        mem::PageNum page{0};
        sim::Ticks wake = sim::kTickNever; ///< Set by pageReady.
    };

    Config cfg;
    std::deque<workload::Job> newJobs;
    std::deque<Waiting> pendingWaiting;  ///< Halted, page in flight.
    std::deque<workload::Job> pendingReady; ///< Page arrived.
    double flashEma = 0.0;
    bool emaSeeded = false;
    Stats statsData;
};

} // namespace astriflash::core

#endif // ASTRIFLASH_CORE_SCHED_MODEL_HH
