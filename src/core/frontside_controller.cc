#include "frontside_controller.hh"

namespace astriflash::core {

FrontsideController::FrontsideController(
    std::string name, const DramCacheConfig &config, mem::Dram &dram,
    mem::SetAssocCache &tags, FootprintState &footprint,
    std::vector<std::unique_ptr<sim::BoundedChannel<MissRequest>>>
        &to_bc,
    std::vector<std::unique_ptr<sim::BoundedChannel<InstallComplete>>>
        &from_bc)
    : fcName(std::move(name)), cfg(config), dramModel(dram),
      pageTags(tags), fp(footprint), toBc(to_bc), fromBc(from_bc)
{
    const sim::ClockDomain clk(cfg.controllerFreqHz);
    fcOpTicks = clk.cycles(cfg.fc.cyclesPerOp);
}

sim::Ticks
FrontsideController::tagProbe(mem::Addr pa, sim::Ticks now)
{
    // RAS to open the set's row + CAS for the 64 B tag column + one
    // FC cycle for the compare.
    const auto res = dramModel.access(
        dcSetRowAddr(cfg, pageTags.numSets(), pa), now, false,
        mem::kBlockSize);
    return res.complete + fcOp();
}

FrontsideController::Probe
FrontsideController::access(mem::Addr pa, bool write, sim::Ticks now,
                            WaiterCookie waiter)
{
    Probe p;
    p.page = mem::pageNumber(pa, cfg.pageBytes);
    p.start = now;
    p.bit = dcBlockBit(pa);
    p.shard = shardOf(p.page);
    const sim::Ticks probe_done = tagProbe(pa, now);
    const bool hit =
        write ? pageTags.accessWrite(pa) : pageTags.access(pa);

    if (hit) {
        if (cfg.footprintEnabled) {
            fp.touched[p.page] |= p.bit;
            if (!(fp.fetched[p.page] & p.bit)) {
                // Sub-page miss: the resident page was only partially
                // transferred and this block is absent; fetch the
                // remainder through the normal switch-on-miss path.
                statsData.subPageMisses.inc();
                p.subPage = true;
                p.accepted = toBc[p.shard]->push(
                    MissRequest{p.page, write, true, true, waiter,
                                ~fp.fetched[p.page]},
                    probe_done);
                return p;
            }
        }
        // Data CAS in the (now open) row.
        const auto data = dramModel.access(
            dcSetRowAddr(cfg, pageTags.numSets(), pa) + mem::kBlockSize,
            probe_done, write, mem::kBlockSize);
        p.complete = true;
        p.out.hit = true;
        p.out.ready = data.complete;
        statsData.hits.inc();
        statsData.hitLatency.sample(p.out.ready - now);
        return p;
    }

    // Tag miss: hand the page request to the backside through the
    // shard's miss channel; the BcReply decides evict-buffer hit vs
    // miss.
    p.accepted = toBc[p.shard]->push(
        MissRequest{p.page, write, false, true, waiter, p.bit},
        probe_done);
    return p;
}

DcAccess
FrontsideController::finishMiss(const Probe &probe, const BcReply &rep)
{
    if (rep.kind == BcReply::Kind::EvictBufferHit) {
        // The page was parked awaiting writeback; the backside served
        // the request from there at BC speed.
        statsData.hits.inc();
        statsData.hitLatency.sample(rep.ready - probe.start);
        return DcAccess{true, rep.ready};
    }
    if (rep.merged)
        statsData.missesMerged.inc();
    else
        statsData.misses.inc();
    if (cfg.footprintEnabled && !probe.subPage)
        fp.touched[probe.page] |= probe.bit; // the block will be used
    // Miss response: the FC replies as soon as the channel accepted
    // the request so on-chip MSHRs can be reclaimed.
    return DcAccess{false, probe.accepted + fcOp()};
}

FrontsideController::Probe
FrontsideController::accessSync(mem::Addr pa, bool write,
                                sim::Ticks now)
{
    Probe p;
    p.page = mem::pageNumber(pa, cfg.pageBytes);
    p.start = now;
    p.bit = dcBlockBit(pa);
    p.shard = shardOf(p.page);
    const sim::Ticks probe_done = tagProbe(pa, now);
    const bool hit =
        write ? pageTags.accessWrite(pa) : pageTags.access(pa);
    statsData.syncAccesses.inc();

    if (hit) {
        bool sub_page_miss = false;
        if (cfg.footprintEnabled) {
            fp.touched[p.page] |= p.bit;
            sub_page_miss = !(fp.fetched[p.page] & p.bit);
        }
        if (!sub_page_miss) {
            const auto data = dramModel.access(
                dcSetRowAddr(cfg, pageTags.numSets(), pa) +
                    mem::kBlockSize,
                probe_done, write, mem::kBlockSize);
            statsData.hits.inc();
            statsData.hitLatency.sample(data.complete - now);
            p.complete = true;
            p.out.hit = true;
            p.out.ready = data.complete;
            return p;
        }
        statsData.subPageMisses.inc();
        p.subPage = true;
        p.accepted = toBc[p.shard]->push(
            MissRequest{p.page, write, true, false, 0,
                        ~fp.fetched[p.page]},
            probe_done);
        return p;
    }
    p.accepted = toBc[p.shard]->push(
        MissRequest{p.page, write, false, false, 0, p.bit},
        probe_done);
    return p;
}

sim::Ticks
FrontsideController::finishSyncMiss(const Probe &probe,
                                    const BcReply &rep)
{
    if (rep.kind == BcReply::Kind::EvictBufferHit) {
        statsData.hits.inc();
        return rep.ready;
    }
    if (rep.merged)
        statsData.missesMerged.inc();
    else
        statsData.misses.inc();
    if (cfg.footprintEnabled && !probe.subPage)
        fp.touched[probe.page] |= probe.bit; // the block will be used
    // The requester spins until the page is installed, then reads it.
    return rep.ready + cfg.dram.tCas + cfg.dram.tBurst;
}

void
FrontsideController::deliverInstalls()
{
    for (auto &channel : fromBc) {
        while (!channel->empty()) {
            auto &st = channel->front();
            const mem::PageNum page = st.msg.page;
            const sim::Ticks ready = st.msg.ready;
            std::vector<WaiterCookie> waiters =
                std::move(st.msg.waiters);
            // The slot recycles once the notification lands.
            channel->dropFront(ready > st.acceptedAt ? ready
                                                     : st.acceptedAt);
            if (onReady)
                onReady(page, ready, waiters);
        }
    }
}

void
FrontsideController::regStats(sim::StatRegistry &reg) const
{
    reg.registerCounter("hits", &statsData.hits,
                        "frontside accesses served from the cache");
    reg.registerCounter("misses", &statsData.misses,
                        "accesses starting a new outstanding miss");
    reg.registerCounter("misses_merged", &statsData.missesMerged,
                        "accesses merged onto an in-flight miss");
    reg.registerCounter("sync_accesses", &statsData.syncAccesses,
                        "forced-synchronous (forward-progress) accesses");
    reg.registerCounter("sub_page_misses", &statsData.subPageMisses,
                        "footprint mispredictions on resident pages");
    reg.registerHistogram("hit_latency", &statsData.hitLatency,
                          "FC hit path latency in ticks");
}

void
FrontsideController::checkInvariants(sim::InvariantChecker &chk) const
{
    // Sync evict-buffer hits count a hit without a latency sample, so
    // samples can only undershoot the hit counter.
    SIM_INVARIANT_MSG(chk,
                      statsData.hitLatency.count() <=
                          statsData.hits.value(),
                      "%llu hit-latency samples for %llu hits",
                      static_cast<unsigned long long>(
                          statsData.hitLatency.count()),
                      static_cast<unsigned long long>(
                          statsData.hits.value()));
    // Every sub-page miss also counted as a (new or merged) miss.
    SIM_INVARIANT_MSG(chk,
                      statsData.subPageMisses.value() <=
                          statsData.misses.value() +
                              statsData.missesMerged.value(),
                      "%llu sub-page misses exceed the %llu total "
                      "misses",
                      static_cast<unsigned long long>(
                          statsData.subPageMisses.value()),
                      static_cast<unsigned long long>(
                          statsData.misses.value() +
                          statsData.missesMerged.value()));
}

} // namespace astriflash::core
