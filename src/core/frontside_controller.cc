#include "frontside_controller.hh"

#include <bit>

#include "sim/logging.hh"

namespace astriflash::core {

FrontsideController::FrontsideController(
    std::string name, const DramCacheConfig &config, mem::Dram &dram,
    mem::SetAssocCache &tags, FootprintState &footprint,
    std::vector<std::unique_ptr<sim::BoundedChannel<MissRequest>>>
        &to_bc,
    std::vector<std::unique_ptr<sim::BoundedChannel<InstallComplete>>>
        &from_bc,
    std::vector<std::unique_ptr<sim::BoundedChannel<BcNotice>>>
        &from_bc_rsp,
    std::vector<std::unique_ptr<sim::BoundedChannel<InstallGrant>>>
        &to_bc_ctl,
    sim::Ticks flash_read_estimate)
    : fcName(std::move(name)), cfg(config), dramModel(dram),
      pageTags(tags), fp(footprint), toBc(to_bc), fromBc(from_bc),
      fromBcRsp(from_bc_rsp), toBcCtl(to_bc_ctl),
      flashReadEstimate(flash_read_estimate)
{
    const sim::ClockDomain clk(cfg.controllerFreqHz);
    fcOpTicks = clk.cycles(cfg.fc.cyclesPerOp);
    bcOpTicks = clk.cycles(cfg.bc.cyclesPerOp);
}

void
FrontsideController::bindChannels()
{
    pendingAcks.assign(toBc.size(), {});
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(toBc.size()); ++i) {
        if (!cfg.fc.pipeline) {
            // Fused mode: the backside's ack lands here inside its own
            // push, latching the reply for the access() call that
            // triggered the whole chain; install completions wake
            // waiters in the same nested call.
            fromBcRsp[i]->setDrainHook(
                [this, i] { pumpRsp(i, sim::kTickNever); });
            fromBc[i]->setDrainHook([this, i] {
                if (installNotes.size() > i && installNotes[i])
                    installNotes[i](fromBc[i]->front().acceptedAt);
                pumpInstalls(i, sim::kTickNever);
            });
            continue;
        }
        // Pipeline mode: the producer's push schedules this
        // controller's pump at accept + the declared lookahead. The
        // FC has no clock of its own, so the closure carries the
        // computed pump tick as the eligibility bound.
        fromBcRsp[i]->setNotifyHook([this, i](sim::Ticks accept) {
            const sim::Ticks when =
                accept + fromBcRsp[i]->contract().minLatency;
            requestPump(i, when,
                        [this, i, when] { pumpRsp(i, when); });
        });
        fromBc[i]->setNotifyHook([this, i](sim::Ticks accept) {
            const sim::Ticks when =
                accept + fromBc[i]->contract().minLatency;
            requestPump(i, when,
                        [this, i, when] { pumpInstalls(i, when); });
        });
    }
}

void
FrontsideController::requestPump(std::uint32_t shard, sim::Ticks when,
                                 std::function<void()> fn)
{
    ASTRI_ASSERT_MSG(shard < postFns.size() && postFns[shard],
                     "%s: no cross-post function for shard %u",
                     fcName.c_str(), shard);
    postFns[shard](when, std::move(fn));
}

sim::Ticks
FrontsideController::tagProbe(mem::Addr pa, sim::Ticks now)
{
    // RAS to open the set's row + CAS for the 64 B tag column + one
    // FC cycle for the compare.
    const auto res = dramModel.access(
        dcSetRowAddr(cfg, pageTags.numSets(), pa), now, false,
        mem::kBlockSize);
    return res.complete + fcOp();
}

MissRequest
FrontsideController::makeMiss(mem::PageNum page, bool write,
                              bool sub_page, bool has_waiter,
                              WaiterCookie waiter,
                              std::uint64_t want_mask) const
{
    MissRequest req{page, write, sub_page, has_waiter, waiter,
                    want_mask};
    if (cfg.footprintEnabled) {
        // Snapshot the page's recorded footprint at push time: the
        // history map is fc-owned, so the backside seeds its fetch
        // mask from these fields instead of reading it.
        const auto hist = fp.history.find(page);
        if (hist != fp.history.end()) {
            req.histValid = true;
            req.histMask = hist->second;
        }
    }
    return req;
}

DcAccess
FrontsideController::access(mem::Addr pa, bool write, sim::Ticks now,
                            WaiterCookie waiter)
{
    Probe p;
    p.page = mem::pageNumber(pa, cfg.pageBytes);
    p.start = now;
    p.bit = dcBlockBit(pa);
    p.shard = shardOf(p.page);
    const sim::Ticks probe_done = tagProbe(pa, now);
    const bool hit =
        write ? pageTags.accessWrite(pa) : pageTags.access(pa);

    if (hit) {
        bool sub_page_miss = false;
        if (cfg.footprintEnabled) {
            fp.touched[p.page] |= p.bit;
            sub_page_miss = !(fp.fetched[p.page] & p.bit);
        }
        if (!sub_page_miss) {
            // Data CAS in the (now open) row.
            const auto data = dramModel.access(
                dcSetRowAddr(cfg, pageTags.numSets(), pa) +
                    mem::kBlockSize,
                probe_done, write, mem::kBlockSize);
            statsData.hits.inc();
            statsData.hitLatency.sample(data.complete - now);
            return DcAccess{true, data.complete};
        }
        // Sub-page miss: the resident page was only partially
        // transferred and this block is absent; fetch the remainder
        // through the normal switch-on-miss path.
        statsData.subPageMisses.inc();
        p.subPage = true;
        p.accepted = toBc[p.shard]->push(
            makeMiss(p.page, write, true, true, waiter,
                     ~fp.fetched[p.page]),
            probe_done);
    } else {
        // Tag miss: hand the page request to the backside through the
        // shard's miss channel; the MissAck decides evict-buffer hit
        // vs miss.
        p.accepted = toBc[p.shard]->push(
            makeMiss(p.page, write, false, true, waiter, p.bit),
            probe_done);
    }

    if (!cfg.fc.pipeline) {
        // The push synchronously ran the backside's drain; its ack
        // came back through the response channel and is latched.
        return finishMiss(p, takeAck());
    }
    recordPending(p, false);
    return missResponse(p);
}

sim::Ticks
FrontsideController::accessSync(mem::Addr pa, bool write,
                                sim::Ticks now)
{
    Probe p;
    p.page = mem::pageNumber(pa, cfg.pageBytes);
    p.start = now;
    p.bit = dcBlockBit(pa);
    p.shard = shardOf(p.page);
    const sim::Ticks probe_done = tagProbe(pa, now);
    const bool hit =
        write ? pageTags.accessWrite(pa) : pageTags.access(pa);
    statsData.syncAccesses.inc();

    if (hit) {
        bool sub_page_miss = false;
        if (cfg.footprintEnabled) {
            fp.touched[p.page] |= p.bit;
            sub_page_miss = !(fp.fetched[p.page] & p.bit);
        }
        if (!sub_page_miss) {
            const auto data = dramModel.access(
                dcSetRowAddr(cfg, pageTags.numSets(), pa) +
                    mem::kBlockSize,
                probe_done, write, mem::kBlockSize);
            statsData.hits.inc();
            statsData.hitLatency.sample(data.complete - now);
            return data.complete;
        }
        statsData.subPageMisses.inc();
        p.subPage = true;
        p.accepted = toBc[p.shard]->push(
            makeMiss(p.page, write, true, false, 0,
                     ~fp.fetched[p.page]),
            probe_done);
    } else {
        p.accepted = toBc[p.shard]->push(
            makeMiss(p.page, write, false, false, 0, p.bit),
            probe_done);
    }

    if (!cfg.fc.pipeline)
        return finishSyncMiss(p, takeAck());
    // The requester blocks on the conservative estimate; the ack only
    // settles the hit/miss accounting when it drains.
    recordPending(p, true);
    const DcAccess resp = missResponse(p);
    const sim::Ticks est = syncMissEstimate(p.accepted);
    return est > resp.ready ? est : resp.ready;
}

DcAccess
FrontsideController::finishMiss(const Probe &probe, const BcReply &rep)
{
    if (rep.kind == BcReply::Kind::EvictBufferHit) {
        // The page was parked awaiting writeback; the backside served
        // the request from there at BC speed.
        statsData.hits.inc();
        statsData.hitLatency.sample(rep.ready - probe.start);
        return DcAccess{true, rep.ready};
    }
    if (rep.merged)
        statsData.missesMerged.inc();
    else
        statsData.misses.inc();
    if (cfg.footprintEnabled && !probe.subPage)
        fp.touched[probe.page] |= probe.bit; // the block will be used
    // Miss response: the FC replies as soon as the channel accepted
    // the request so on-chip MSHRs can be reclaimed.
    return DcAccess{false, probe.accepted + fcOp()};
}

sim::Ticks
FrontsideController::finishSyncMiss(const Probe &probe,
                                    const BcReply &rep)
{
    if (rep.kind == BcReply::Kind::EvictBufferHit) {
        statsData.hits.inc();
        return rep.ready;
    }
    if (rep.merged)
        statsData.missesMerged.inc();
    else
        statsData.misses.inc();
    if (cfg.footprintEnabled && !probe.subPage)
        fp.touched[probe.page] |= probe.bit; // the block will be used
    // The requester spins until the page is installed, then reads it.
    return rep.ready + cfg.dram.tCas + cfg.dram.tBurst;
}

void
FrontsideController::recordPending(const Probe &probe, bool sync)
{
    auto &q = pendingAcks[probe.shard];
    q.push_back(PendingProbe{probe, sync});
    if (q.size() > statsData.reqQueuePeak)
        statsData.reqQueuePeak = q.size();
}

DcAccess
FrontsideController::missResponse(const Probe &probe)
{
    sim::Ticks resp = probe.accepted + fcOp();
    const auto &q = pendingAcks[probe.shard];
    if (q.size() > cfg.fc.pendingDepth) {
        // The shard's ack window is over its bound: charge one FC op
        // per excess probe, modeling the FSM working the backlog down
        // before it can answer this one.
        const sim::Ticks delay =
            (q.size() - cfg.fc.pendingDepth) * fcOp();
        statsData.reqQueueStalls.inc();
        statsData.reqQueueStallTicks.inc(delay);
        resp += delay;
    }
    return DcAccess{false, resp};
}

sim::Ticks
FrontsideController::syncMissEstimate(sim::Ticks accepted) const
{
    // Mirror of the backside's conservative dataReady estimate:
    // dequeue + MSR search, the whole-page flash read, the trailing
    // op, the install stream, and the requester's final data read.
    const sim::Ticks install = cfg.dram.closedRowLatency() +
                               cfg.dram.tBurst *
                                   (cfg.pageBytes / mem::kBlockSize -
                                    1) +
                               bcOpTicks;
    return accepted + 2 * bcOpTicks + flashReadEstimate + bcOpTicks +
           install + cfg.dram.tCas + cfg.dram.tBurst;
}

BcReply
FrontsideController::takeAck()
{
    ASTRI_ASSERT_MSG(ackValid,
                     "%s: miss-channel push completed without an ack "
                     "on the response channel",
                     fcName.c_str());
    ackValid = false;
    return ackReply;
}

void
FrontsideController::pumpRsp(std::uint32_t shard,
                             sim::Ticks eligible_until)
{
    auto &channel = *fromBcRsp[shard];
    const sim::Ticks lat = channel.contract().minLatency;
    while (!channel.empty()) {
        // Entries pushed after the round's barrier wait for their own
        // pump: the frozen window keeps the drain set independent of
        // worker interleaving.
        if (channel.frontHeldByFreeze())
            break;
        const auto &st = channel.front();
        if (eligible_until != sim::kTickNever &&
            st.acceptedAt + lat > eligible_until)
            break;
        const BcNotice n = st.msg;
        const sim::Ticks at = st.acceptedAt;
        channel.dropFront(at + lat);
        if (n.kind == BcNotice::Kind::InstallReq) {
            // Fused mode installs at the accept tick — the request is
            // one nested call from the arrival event, byte-identical
            // to the pre-split controller; pipeline mode acts one
            // declared-lookahead op later. The rsp channel's pushes
            // are not monotone (probe-clocked acks interleave with
            // event-clocked install requests), so an entry can sit
            // behind a later-stamped head until that head's pump
            // drains both: clamp the act tick to this pump's bound —
            // the entry-to-pump assignment is deterministic, and an
            // unclamped stale tick would cross-post the grant into
            // the backside domain's past.
            sim::Ticks act = at;
            if (cfg.fc.pipeline) {
                act = at + lat > eligible_until ? at + lat
                                                : eligible_until;
            }
            handleInstallReq(shard, n, act);
        } else if (!cfg.fc.pipeline) {
            // The ack for the access() that pushed the miss — the
            // call chain below this drain returns straight to it.
            ackReply = n.reply;
            ackValid = true;
        } else {
            finishAck(shard, n);
        }
    }
}

void
FrontsideController::finishAck(std::uint32_t shard,
                               const BcNotice &notice)
{
    auto &q = pendingAcks[shard];
    ASTRI_ASSERT_MSG(!q.empty(),
                     "%s: ack from shard %u with no probe in flight",
                     fcName.c_str(), shard);
    const PendingProbe pp = q.front();
    q.pop_front();
    ASTRI_ASSERT_MSG(
        pp.probe.page == notice.page,
        "%s: ack for page %llx but the oldest in-flight probe is %llx",
        fcName.c_str(),
        static_cast<unsigned long long>(
            mem::pageAddr(notice.page, cfg.pageBytes)),
        static_cast<unsigned long long>(
            mem::pageAddr(pp.probe.page, cfg.pageBytes)));
    if (pp.sync) {
        // The blocked requester already took the conservative
        // estimate; the ack settles the hit/miss accounting.
        (void)finishSyncMiss(pp.probe, notice.reply);
        return;
    }
    const DcAccess out = finishMiss(pp.probe, notice.reply);
    if (out.hit && notice.hasWaiter && onReady) {
        // Evict-buffer hit: the requester parked a waiter on a miss
        // response that turned out to be a hit — wake it at the hit's
        // ready tick (the core clamps stale wakes to its own tick).
        onReady(notice.page, out.ready,
                std::vector<WaiterCookie>{notice.waiter});
    }
}

void
FrontsideController::handleInstallReq(std::uint32_t shard,
                                      const BcNotice &notice,
                                      sim::Ticks at)
{
    const mem::PageNum page = notice.page;
    const mem::Addr page_addr = mem::pageAddr(page, cfg.pageBytes);
    std::uint64_t fetch_bytes =
        static_cast<std::uint64_t>(std::popcount(notice.fetchMask)) *
        mem::kBlockSize;
    if (fetch_bytes > cfg.pageBytes)
        fetch_bytes = cfg.pageBytes;
    if (cfg.footprintEnabled)
        fp.fetched[page] |= notice.fetchMask;

    // Secure a frame: fill the tag array; a displaced victim goes
    // back in the grant for the backside's evict buffer.
    auto victim = pageTags.fill(page_addr, notice.dirty);
    InstallGrant grant;
    grant.page = page;
    if (victim) {
        const mem::PageNum vpage =
            mem::pageNumber(victim->tag_addr, cfg.pageBytes);
        if (cfg.footprintEnabled) {
            // Record the victim's footprint for its next residency
            // and drop its residency masks.
            const auto t = fp.touched.find(vpage);
            if (t != fp.touched.end() && t->second != 0)
                fp.history[vpage] = t->second;
            fp.touched.erase(vpage);
            fp.fetched.erase(vpage);
        }
        grant.hasVictim = true;
        grant.victimDirty = victim->dirty;
        grant.victim = vpage;
    }

    // Install: stream the fetched blocks into the frame.
    const auto install = dramModel.access(
        dcSetRowAddr(cfg, pageTags.numSets(), page_addr), at, true,
        fetch_bytes);
    grant.installComplete = install.complete;
    toBcCtl[shard]->push(grant, at);
}

void
FrontsideController::pumpInstalls(std::uint32_t shard,
                                  sim::Ticks eligible_until)
{
    auto &channel = *fromBc[shard];
    const sim::Ticks lat = channel.contract().minLatency;
    while (!channel.empty()) {
        if (channel.frontHeldByFreeze())
            break;
        auto &st = channel.front();
        if (eligible_until != sim::kTickNever &&
            st.acceptedAt + lat > eligible_until)
            break;
        const mem::PageNum page = st.msg.page;
        const sim::Ticks ready = st.msg.ready;
        std::vector<WaiterCookie> waiters = std::move(st.msg.waiters);
        // The slot recycles once the notification lands.
        channel.dropFront(ready > st.acceptedAt ? ready
                                                : st.acceptedAt);
        if (onReady)
            onReady(page, ready, waiters);
    }
}

void
FrontsideController::regStats(sim::StatRegistry &reg) const
{
    reg.registerCounter("hits", &statsData.hits,
                        "frontside accesses served from the cache");
    reg.registerCounter("misses", &statsData.misses,
                        "accesses starting a new outstanding miss");
    reg.registerCounter("misses_merged", &statsData.missesMerged,
                        "accesses merged onto an in-flight miss");
    reg.registerCounter("sync_accesses", &statsData.syncAccesses,
                        "forced-synchronous (forward-progress) accesses");
    reg.registerCounter("sub_page_misses", &statsData.subPageMisses,
                        "footprint mispredictions on resident pages");
    reg.registerHistogram("hit_latency", &statsData.hitLatency,
                          "FC hit path latency in ticks");
    if (cfg.fc.pipeline) {
        // Pipeline-only backpressure stats: registering them only in
        // that mode keeps the default stat tree byte-identical to the
        // pre-split goldens.
        reg.registerCounter("req_queue_stalls",
                            &statsData.reqQueueStalls,
                            "probes delayed by a full ack window");
        reg.registerCounter("req_queue_stall_ticks",
                            &statsData.reqQueueStallTicks,
                            "total ack-window backpressure in ticks");
        reg.registerUint("req_queue_peak", &statsData.reqQueuePeak,
                         "maximum in-flight acks on one shard");
    }
}

void
FrontsideController::checkInvariants(sim::InvariantChecker &chk) const
{
    // Sync evict-buffer hits count a hit without a latency sample, so
    // samples can only undershoot the hit counter.
    SIM_INVARIANT_MSG(chk,
                      statsData.hitLatency.count() <=
                          statsData.hits.value(),
                      "%llu hit-latency samples for %llu hits",
                      static_cast<unsigned long long>(
                          statsData.hitLatency.count()),
                      static_cast<unsigned long long>(
                          statsData.hits.value()));
    // Every sub-page miss also counted as a (new or merged) miss.
    SIM_INVARIANT_MSG(chk,
                      statsData.subPageMisses.value() <=
                          statsData.misses.value() +
                              statsData.missesMerged.value(),
                      "%llu sub-page misses exceed the %llu total "
                      "misses",
                      static_cast<unsigned long long>(
                          statsData.subPageMisses.value()),
                      static_cast<unsigned long long>(
                          statsData.misses.value() +
                          statsData.missesMerged.value()));
    if (cfg.fc.pipeline) {
        // New pipeline-mode invariants are gated so the fused mode's
        // invariant-condition count stays exactly the legacy one.
        // reqQueuePeak records the deepest single shard queue (the
        // stat models one FC FSM's backlog), so compare per shard.
        std::size_t deepest = 0;
        for (const auto &q : pendingAcks)
            deepest = q.size() > deepest ? q.size() : deepest;
        SIM_INVARIANT_MSG(chk,
                          statsData.reqQueuePeak >= deepest,
                          "%zu in-flight acks on one shard exceed "
                          "the recorded peak %llu",
                          deepest,
                          static_cast<unsigned long long>(
                              statsData.reqQueuePeak));
        SIM_INVARIANT(chk, !ackValid);
    }
}

void
FrontsideController::auditShared(sim::InvariantChecker &chk,
                                 const mem::SetAssocCache &tags) const
{
    // Footprint residency masks exist only for resident pages. The
    // masks are fc-owned; the audit runs at quiesce points alongside
    // the backside's pending-vs-resident exclusivity check.
    if (cfg.footprintEnabled) {
        // Audit-only, order-insensitive walk (baselined AF015).
        // Pages displaced during prewarm keep their seeded mask by
        // design (FootprintState::prewarmEvicted) — exempt exactly
        // those, nothing else.
        for (const auto &[page, mask] : fp.fetched) {
            (void)mask;
            SIM_INVARIANT_MSG(chk,
                              tags.contains(
                                  mem::pageAddr(page, cfg.pageBytes)) ||
                                  fp.prewarmEvicted.count(page) != 0,
                              "fetched mask for non-resident %llx",
                              static_cast<unsigned long long>(
                                  mem::pageAddr(page, cfg.pageBytes)));
        }
    } else {
        SIM_INVARIANT(chk, fp.fetched.empty());
        SIM_INVARIANT(chk, fp.touched.empty());
        SIM_INVARIANT(chk, fp.history.empty());
    }
}

} // namespace astriflash::core
