#include "sched_model.hh"

#include "sim/logging.hh"

namespace astriflash::core {

void
SchedulerModel::parkOnMiss(workload::Job &&job, mem::PageNum page,
                           sim::Ticks now)
{
    job.pendingSince = now;
    pendingWaiting.push_back(Waiting{std::move(job), page});
    const std::uint64_t live = pendingCount();
    if (live > statsData.peakPending)
        statsData.peakPending = live;
}

std::uint32_t
SchedulerModel::pageReady(mem::PageNum page, sim::Ticks when)
{
    std::uint32_t woken = 0;
    for (auto it = pendingWaiting.begin(); it != pendingWaiting.end();) {
        if (it->page == page) {
            // Response time sample: halt to data-ready.
            const sim::Ticks resp =
                when > it->job.pendingSince
                    ? when - it->job.pendingSince : 0;
            noteFlashResponse(resp);
            pendingReady.push_back(std::move(it->job));
            it = pendingWaiting.erase(it);
            ++woken;
        } else {
            ++it;
        }
    }
    return woken;
}

void
SchedulerModel::noteFlashResponse(sim::Ticks response)
{
    const double sample = static_cast<double>(response);
    if (!emaSeeded) {
        flashEma = sample > 0
            ? sample : static_cast<double>(cfg.initialFlashEstimate);
        emaSeeded = true;
        return;
    }
    flashEma = cfg.emaAlpha * sample + (1.0 - cfg.emaAlpha) * flashEma;
}

std::optional<workload::Job>
SchedulerModel::pickNext(sim::Ticks now)
{
    if (!emaSeeded)
        flashEma = static_cast<double>(cfg.initialFlashEstimate);

    auto take_pending = [&]() {
        workload::Job job = std::move(pendingReady.front());
        pendingReady.pop_front();
        statsData.scheduledPending.inc();
        return job;
    };
    auto take_new = [&]() {
        workload::Job job = std::move(newJobs.front());
        newJobs.pop_front();
        statsData.scheduledNew.inc();
        return job;
    };

    switch (cfg.policy) {
      case SchedPolicy::PriorityAging: {
        if (!pendingReady.empty()) {
            // With queue-pair notifications the ready list is exact:
            // its head's data has arrived, so it resumes now to keep
            // the service distribution near Flash-Sync (§VI-B).
            if (cfg.notifyArrivals)
                return take_pending();
            // Proxy mode: promote when the head has aged past the
            // average flash response (its data has likely arrived).
            const sim::Ticks age =
                now > pendingReady.front().pendingSince
                    ? now - pendingReady.front().pendingSince : 0;
            if (age > agingThreshold()) {
                statsData.agingPromotions.inc();
                return take_pending();
            }
        }
        if (!newJobs.empty())
            return take_new();
        if (!pendingReady.empty())
            return take_pending();
        return std::nullopt;
      }
      case SchedPolicy::Fifo: {
        // noPS: new jobs always win; the pending queue is only
        // drained when no new work exists.
        if (!newJobs.empty())
            return take_new();
        if (!pendingReady.empty())
            return take_pending();
        return std::nullopt;
      }
    }
    return std::nullopt;
}

std::optional<workload::Job>
SchedulerModel::pickPendingReady()
{
    if (pendingReady.empty())
        return std::nullopt;
    workload::Job job = std::move(pendingReady.front());
    pendingReady.pop_front();
    statsData.scheduledPending.inc();
    return job;
}

} // namespace astriflash::core
