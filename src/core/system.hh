/**
 * @file
 * Full-system assembly and measurement harness.
 *
 * Builds one of the seven §V-B configurations: cores (with TLBs,
 * cache hierarchies, ASO engines and schedulers), the DRAM cache with
 * its controllers, the flash device, the flat-DRAM partition, and the
 * OS paging model for the baseline. Drives closed-loop (maximum
 * throughput) or open-loop Poisson (tail latency) job streams and
 * collects the paper's metrics: throughput, service-time and
 * response-time distributions.
 */

#ifndef ASTRIFLASH_CORE_SYSTEM_HH
#define ASTRIFLASH_CORE_SYSTEM_HH

#include <memory>
#include <string>
#include <vector>

#include "flash/fabric.hh"
#include "mem/address_map.hh"
#include "mem/dram.hh"
#include "mem/page_table.hh"
#include "sim/causality.hh"
#include "sim/event_queue.hh"
#include "sim/invariant.hh"
#include "sim/ownership.hh"
#include "sim/parallel_engine.hh"
#include "sim/stats.hh"
#include "workload/workload.hh"

#include "dram_cache.hh"
#include "sim_core.hh"
#include "system_config.hh"

namespace astriflash::core {

/**
 * End-of-run measurement summary.
 *
 * The latency metrics are carried as full distributions rather than a
 * fixed menu of pre-derived scalars: callers query any quantile via
 * serviceUs()/responseUs() (or work on the Histograms directly), so
 * bench code no longer re-implements percentile math.
 */
struct RunResults {
    std::uint64_t jobs = 0;          ///< Jobs measured.
    sim::Ticks measureTicks = 0;     ///< Measurement window length.
    double throughputJobsPerSec = 0; ///< Aggregate.

    /** Service time = started -> finished (includes flash waits,
     *  excludes job-queue time), in ticks. */
    sim::Histogram service;
    /** Response time = arrival -> finished, in ticks. */
    sim::Histogram response;

    /** Service-time quantile @p q (e.g. 0.99) in microseconds. */
    double
    serviceUs(double q) const
    {
        return static_cast<double>(service.percentile(q)) /
               sim::kMicrosecond;
    }

    /** Response-time quantile @p q in microseconds. */
    double
    responseUs(double q) const
    {
        return static_cast<double>(response.percentile(q)) /
               sim::kMicrosecond;
    }

    double avgServiceUs() const { return service.mean() / sim::kMicrosecond; }
    double avgResponseUs() const { return response.mean() / sim::kMicrosecond; }

    double dramCacheHitRatio = 0;
    double avgExecBetweenMissesUs = 0; ///< Calibration check (5-25 µs).
    std::uint64_t flashReads = 0;
    std::uint64_t flashWrites = 0;
    std::uint64_t gcBlockedReads = 0;
    std::uint64_t shootdowns = 0;
    std::uint64_t peakOutstandingMisses = 0;

    /** Whole-system invariant sweeps completed (0 if checks off). */
    std::uint64_t invariantSweeps = 0;
    /** Individual invariant conditions evaluated across sweeps. */
    std::uint64_t invariantChecks = 0;
    /** Invariant violations found (always 0 unless fail-fast is off). */
    std::uint64_t invariantViolations = 0;
};

/** One simulated machine. */
class System
{
  public:
    explicit System(const SystemConfig &config);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** Run warmup + measurement; returns the measured summary. */
    RunResults run();

    /**
     * Component-tree statistics registry. Every simulated component
     * registers under a stable dotted namespace (e.g.
     * "dcache.bc.msr.occupancy", "core0.sched.scheduled_new"); dump
     * it as text or JSON via sim::StatRegistry after run().
     */
    sim::StatRegistry &statsRegistry() { return statsTree; }
    const sim::StatRegistry &statsRegistry() const { return statsTree; }

    /**
     * Component invariant hooks, registered at construction under the
     * same dotted names as the stats tree. Sweeps run between event
     * bursts every SystemConfig::invariantInterval ticks while checks
     * are armed, and once at quiesce. Tests can setFailFast(false) to
     * collect violations instead of panicking.
     */
    sim::InvariantRegistry &invariantRegistry() { return invariants; }

    /**
     * Causality auditor certifying the channel lookahead manifest
     * and FIFO/monotonicity contracts (DESIGN.md §14). Armed with
     * the checks gate; registered as the "causality" invariant
     * component.
     */
    sim::CausalityAuditor &causalityAuditor() { return auditor; }
    const sim::CausalityAuditor &causalityAuditor() const
    {
        return auditor;
    }

    /**
     * Domain-ownership vocabulary (DESIGN.md §16): the partition
     * table ("fc" = frontside + cores; "bc<i>" = one BC shard — and
     * its fabric slice — when hostJobs > 1 or FcConfig::pipeline
     * builds per-shard queues) plus every
     * component and channel-endpoint declaration made against it.
     */
    sim::OwnershipRegistry &ownershipRegistry() { return ownership; }
    const sim::OwnershipRegistry &ownershipRegistry() const
    {
        return ownership;
    }

    /**
     * Ownership auditor certifying that instrumented callbacks run
     * only in their owning domain, with cross-domain touches
     * permitted only at barriers, through channels, or via the
     * facade's pre-registered crossings. Armed with the checks gate;
     * registered as the "ownership" invariant component. Counters are
     * NOT in the stats tree (same rule as the causality auditor).
     */
    sim::OwnershipAuditor &ownershipAuditor() { return ownAuditor; }
    const sim::OwnershipAuditor &ownershipAuditor() const
    {
        return ownAuditor;
    }

    /**
     * Replace the built-in generators with an external job source
     * (e.g. a workload::TraceReader). Must be set before run(); the
     * source is shared across cores and called in a deterministic
     * order.
     */
    using JobSource = std::function<workload::Job(std::uint32_t core)>;
    void setJobSource(JobSource source) { jobSource = std::move(source); }

    const SystemConfig &config() const { return cfg; }
    sim::EventQueue &eventQueue() { return eq; }

    /** Per-BC-shard domain queues (empty unless hostJobs > 1 or
     *  --fc-pipeline built a partitioned system). */
    std::size_t domainQueueCount() const { return bcQueues.size(); }

    /** Events executed across every domain queue (== the single
     *  queue's count when unpartitioned). */
    std::uint64_t
    eventsExecuted() const
    {
        std::uint64_t total = eq.executed();
        for (const auto &q : bcQueues)
            total += q->executed();
        return total;
    }

    /**
     * Engine telemetry from the last run() (zeroes when the legacy
     * hostJobs=1 loop ran). Deliberately NOT in the stats tree:
     * host-parallelism bookkeeping must never move golden bytes, the
     * same rule the causality auditor follows.
     */
    const sim::ParallelEngine::Stats &
    engineStats() const
    {
        return engineStatsData;
    }
    DramCache *dramCache() { return dcache.get(); }
    flash::FlashFabric &flash() { return *flashDev; }
    const mem::AddressMap &addressMap() const { return *amap; }
    os::OsPagingModel *osPaging() { return osModel.get(); }
    SimCore &coreAt(std::uint32_t i) { return *cores[i]; }

    // --- Interface used by SimCore -------------------------------

    /** Physical (flash BAR) address of a dataset-relative address. */
    mem::Addr dataPa(mem::Addr va) const;

    /** Leaf-PTE physical address for a data virtual address (noDP). */
    mem::Addr leafPtePa(mem::Addr va) const;

    /** Flat-partition DRAM access (DRAM-only backend, PTE traffic). */
    sim::Ticks flatDramAccess(mem::Addr pa, bool write, sim::Ticks t);

    /** A dirty block left the LLC: mark its page dirty in the backing
     *  page store so evictions write back to flash. */
    void noteLlcWriteback(mem::Addr pa);

    /**
     * Pull a new job for @p core (closed loop) or from its arrival
     * queue. Returns false when the measurement target is reached.
     */
    bool supplyJob(std::uint32_t core, sim::Ticks now,
                   workload::Job &job);

    /** A job finished: record metrics, advance the phase machine. */
    void jobFinished(const workload::Job &job, sim::Ticks now);

    /** True once the measured-job target has been reached. */
    bool measurementDone() const { return phase == Phase::Done; }

    /** True while jobs count toward statistics. */
    bool measuring() const { return phase == Phase::Measure; }

  private:
    enum class Phase { Warmup, Measure, Done };

    void buildMemorySystem();
    void prewarm();
    void scheduleNextArrival();
    void beginMeasurement(sim::Ticks now);

    /** Engine-driven event loop for hostJobs > 1 (see run()). */
    void runParallel(sim::Ticks next_check);

    /** Build the component stat tree (end of construction). */
    void registerStats();

    /** Register every component's invariant hook (construction). */
    void registerInvariants();

    SystemConfig cfg;
    /** Declared before the event queue and every channel owner so it
     *  outlives all components that hold hooks into it. */
    sim::CausalityAuditor auditor;
    /** Ownership vocabulary + runtime auditor, declared before the
     *  queues and components for the same lifetime reason. */
    sim::OwnershipRegistry ownership;
    sim::OwnershipAuditor ownAuditor{ownership};
    /** Shared clock/sequence state for the merged partitioned run:
     *  the main queue and every BC shard queue join it when
     *  hostJobs > 1 with the pipeline off, so the merged execution is
     *  bit-identical to one queue. Pipelined shards stay out of it —
     *  their exec groups keep independent sequence spaces. */
    sim::EventQueueGroup eqGroup;
    sim::EventQueue eq;
    /** Per-BC-shard domain queues (hostJobs > 1 or pipeline mode).
     *  Built before the DramCache so the shards schedule onto them. */
    std::vector<std::unique_ptr<sim::EventQueue>> bcQueues;
    sim::ParallelEngine::Stats engineStatsData;

    std::unique_ptr<mem::AddressMap> amap;
    std::unique_ptr<mem::PageTableModel> ptModel;
    std::unique_ptr<flash::FlashFabric> flashDev;
    std::unique_ptr<DramCache> dcache;
    std::unique_ptr<mem::Dram> flatDram;
    std::unique_ptr<os::OsPagingModel> osModel;
    std::vector<std::unique_ptr<workload::Workload>> gens; // per core
    std::vector<std::unique_ptr<SimCore>> cores;
    JobSource jobSource; ///< Optional external generator override.

    // Open-loop arrival machinery.
    std::unique_ptr<workload::PoissonArrivals> arrivals;
    std::uint32_t nextArrivalCore = 0;
    std::uint64_t arrivalsIssued = 0;

    Phase phase = Phase::Warmup;
    std::uint64_t completedJobs = 0;
    std::uint64_t measuredJobs = 0;
    sim::Ticks measureStart = 0;
    sim::Ticks measureEnd = 0;

    sim::Histogram serviceHist;  ///< Ticks.
    sim::Histogram responseHist; ///< Ticks.
    std::uint64_t measuredMisses = 0;

    sim::StatRegistry statsTree;
    sim::InvariantRegistry invariants;
};

} // namespace astriflash::core

#endif // ASTRIFLASH_CORE_SYSTEM_HH
