/**
 * @file
 * Hardware-managed DRAM cache: frontside + backside controllers
 * (§IV-B, Fig. 5).
 *
 * The frontside controller (FC) extends a conventional DRAM controller:
 * it RASes the set's row, CASes the tag column, compares tags, and
 * either CASes the data (hit) or hands the miss to the backside
 * controller (BC) and returns a miss response so the on-chip MSHRs can
 * be reclaimed. The BC is programmable (slower per operation): it
 * deduplicates misses through the in-DRAM Miss Status Row, issues 4 KB
 * flash reads, selects victims into the evict buffer, writes dirty
 * victims back to flash off the critical path, and installs arriving
 * pages.
 *
 * Page arrivals are delivered through a callback carrying every waiter
 * cookie that merged onto the miss — the hook the switch-on-miss cores
 * use to wake pending user-level threads.
 */

#ifndef ASTRIFLASH_CORE_DRAM_CACHE_HH
#define ASTRIFLASH_CORE_DRAM_CACHE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "flash/flash_device.hh"
#include "mem/address_map.hh"
#include "mem/dram.hh"
#include "mem/set_assoc_cache.hh"
#include "sim/invariant.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

#include "evict_buffer.hh"
#include "miss_status_row.hh"

namespace astriflash::core {

/** Opaque identifier for whoever is waiting on a missing page. */
using WaiterCookie = std::uint64_t;

/** DRAM cache parameters. */
struct DramCacheConfig {
    std::uint64_t capacityBytes = std::uint64_t{64} << 20;
    std::uint64_t pageBytes = mem::kPageSize;
    std::uint32_t ways = 8; ///< One 64 B tag column maps 8 ways (§IV-B).
    mem::DramConfig dram;
    std::uint32_t msrSets = 128;
    std::uint32_t msrEntriesPerSet = 8;
    std::uint32_t evictBufferEntries = 32;
    /** FC is a 1-cycle-per-op FSM; BC is programmable at 3 cycles/op
     *  (§V-A), both at the memory-controller clock. */
    std::uint64_t controllerFreqHz = 2'500'000'000ull;
    sim::Cycles fcCyclesPerOp{1};
    sim::Cycles bcCyclesPerOp{3};

    /**
     * Footprint-cache mode (§II-A's bandwidth optimization, after
     * Jevdjic et al. [36]): on a refill of a previously-seen page,
     * transfer only the blocks the page's last residency actually
     * touched. Accesses to unfetched blocks of a resident page are
     * sub-page misses that fetch the remainder via the normal
     * switch-on-miss path. Trades a small extra miss rate for flash
     * / PCIe bandwidth.
     */
    bool footprintEnabled = false;
};

/** Result of a frontside access. */
struct DcAccess {
    bool hit = false;
    /** Hit: data-ready tick. Miss: miss-response tick (the miss signal
     *  travels back to the core and MSHRs are reclaimed). */
    sim::Ticks ready = 0;
};

/** The AstriFlash DRAM cache. */
class DramCache : public sim::SimObject
{
  public:
    using PageReadyFn = std::function<void(
        mem::PageNum page, sim::Ticks when,
        const std::vector<WaiterCookie> &waiters)>;

    struct Stats {
        sim::Counter hits;
        sim::Counter misses;
        sim::Counter missesMerged;   ///< Deduplicated by the MSR.
        sim::Counter fills;
        sim::Counter dirtyWritebacks;
        sim::Counter syncAccesses;   ///< Forward-progress forced-sync.
        sim::Counter subPageMisses;  ///< Footprint mispredictions.
        sim::Counter flashBytesRead; ///< Refill traffic (footprint
                                     ///< mode transfers fewer bytes).
        sim::Histogram hitLatency;   ///< FC path, ticks.
        sim::Histogram missPenalty;  ///< Miss to page-ready, ticks.
        std::uint64_t peakOutstanding = 0;

        double
        hitRatio() const
        {
            const double t = static_cast<double>(hits.value() +
                                                 misses.value() +
                                                 missesMerged.value());
            return t > 0 ? static_cast<double>(hits.value()) / t : 0.0;
        }
    };

    DramCache(sim::EventQueue &eq, std::string name,
              const DramCacheConfig &config, flash::FlashDevice &flash,
              const mem::AddressMap &amap);

    /** Register the page-arrival notification hook. */
    void setPageReadyCallback(PageReadyFn fn) { onReady = std::move(fn); }

    /**
     * Frontside access from the LLC miss path.
     *
     * On a miss the waiter cookie is recorded against the page; the
     * PageReadyFn fires when the fill completes.
     */
    DcAccess access(mem::Addr pa, bool write, sim::Ticks now,
                    WaiterCookie waiter);

    /**
     * Forced-synchronous access (forward-progress bit set, or the
     * Flash-Sync configuration): even on a miss, returns the tick when
     * the data is available, blocking the caller.
     */
    sim::Ticks accessSync(mem::Addr pa, bool write, sim::Ticks now);

    /** True if the page holding @p pa is resident (no timing). */
    bool pageResident(mem::Addr pa) const;

    /** Install @p pa's page without timing (simulation warmup). */
    void prewarmPage(mem::Addr pa);

    /** Mark @p pa's page dirty if resident (LLC writeback landed). */
    void
    markPageDirty(mem::Addr pa)
    {
        pageTags.markDirty(pa);
    }

    /** Number of page frames. */
    std::uint64_t
    pageFrames() const
    {
        return cfg.capacityBytes / cfg.pageBytes;
    }

    /** Outstanding (in-flight) misses right now. */
    std::uint32_t outstandingMisses() const
    {
        return static_cast<std::uint32_t>(pending.size());
    }

    /** Zero all statistics (end of warmup). */
    void resetStats();

    /**
     * Register stats into @p reg following the controller split:
     * "fc" (frontside: hit/miss accounting), "bc" (backside: fills,
     * writebacks, miss penalty) with "msr"/"evictbuf" children, plus
     * the "dram" device and the "tags" array.
     */
    void regStats(sim::StatRegistry &reg) const;

    /**
     * Audit the miss-tracking machinery: every issued pending miss
     * holds an MSR entry (and nothing else does), the stall queue
     * mirrors the un-issued pending misses exactly, tag metadata stays
     * coherent with the fill/evict traffic, and footprint masks only
     * exist for resident pages.
     */
    void checkInvariants(sim::InvariantChecker &chk) const;

    const Stats &stats() const { return statsData; }
    const MissStatusRow &msr() const { return msrTable; }
    const EvictBuffer &evictBuffer() const { return evictBuf; }
    const mem::SetAssocCache &pageArray() const { return pageTags; }
    const mem::Dram &dram() const { return dramModel; }
    const DramCacheConfig &config() const { return cfg; }

  private:
    struct PendingMiss {
        sim::Ticks dataReady = 0; ///< Install-complete estimate.
        std::vector<WaiterCookie> waiters;
        bool issued = false;  ///< Flash read issued (vs MSR-stalled).
        bool anyWrite = false; ///< Install dirty (write-allocate).
        std::uint64_t fetchMask = ~0ull; ///< Blocks to transfer.
    };

    /** Bit for the 64 B block of @p pa within its page. */
    static std::uint64_t
    blockBit(mem::Addr pa)
    {
        return 1ull << ((pa / mem::kBlockSize) %
                        (mem::kPageSize / mem::kBlockSize));
    }

    /** Page number of @p pa at this cache's page granularity. */
    mem::PageNum
    pageNum(mem::Addr pa) const
    {
        return mem::pageNumber(pa, cfg.pageBytes);
    }

    /** Byte base address of page @p pn (trace payloads, flash LPN). */
    mem::Addr
    pageByteAddr(mem::PageNum pn) const
    {
        return mem::pageAddr(pn, cfg.pageBytes);
    }

    /** FC tag probe: RAS + tag CAS at the set's row. */
    sim::Ticks tagProbe(mem::Addr pa, sim::Ticks now);

    /** Address of the set's row in the cached DRAM partition. */
    mem::Addr setRowAddr(mem::Addr pa) const;

    /**
     * BC miss handling: MSR dedup/alloc, flash read, arrival event.
     * @return the tick the requester's data will be ready.
     */
    sim::Ticks startMiss(mem::PageNum page, sim::Ticks now, bool write,
                         std::uint64_t want_mask = ~std::uint64_t{0});

    /** Expected cost of installing one page into its frame. */
    sim::Ticks installEstimate() const;

    /** Install an arrived page, drain victims, notify waiters. */
    void pageArrived(mem::PageNum page);

    /** Issue queued misses that were blocked on a full MSR set. */
    void retryMsrStalled(sim::Ticks now);

    /** Drain one evict-buffer entry to flash. */
    void drainEvictBuffer(sim::Ticks now);

    sim::Ticks fcOp() const { return fcOpTicks; }
    sim::Ticks bcOp() const { return bcOpTicks; }

    DramCacheConfig cfg;
    flash::FlashDevice &flashDev;
    const mem::AddressMap &addrMap;
    mem::Dram dramModel;
    mem::SetAssocCache pageTags;
    MissStatusRow msrTable;
    EvictBuffer evictBuf;
    PageReadyFn onReady;
    std::unordered_map<mem::PageNum, PendingMiss> pending;
    std::deque<mem::PageNum> msrStalled; ///< Waiting for MSR space.
    // Footprint mode: per-resident-page fetched/touched block masks
    // and the per-page footprint history recorded at eviction.
    std::unordered_map<mem::PageNum, std::uint64_t> fetchedMask;
    std::unordered_map<mem::PageNum, std::uint64_t> touchedMask;
    std::unordered_map<mem::PageNum, std::uint64_t> footprintHistory;
    sim::Ticks fcOpTicks;
    sim::Ticks bcOpTicks;
    Stats statsData;
};

} // namespace astriflash::core

#endif // ASTRIFLASH_CORE_DRAM_CACHE_HH
