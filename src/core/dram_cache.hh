/**
 * @file
 * Hardware-managed DRAM cache facade (§IV-B, Fig. 5).
 *
 * The cache is a fast FSM frontside controller
 * (frontside_controller.hh) and N page-interleaved backside-controller
 * shards (backside_controller.hh) that exchange state ONLY through
 * bounded, tick-stamped channels — one channel triple per shard:
 *
 *   FC --MissRequest-->     BC<i>   (fc_to_bc<i>, the shard's queue)
 *   BC<i> --FlashCmdMsg-->  fabric  (bc_to_flash<i>, command queue)
 *   BC<i> --InstallComplete--> FC   (bc_to_fc<i>, waiter wakeups)
 *
 * A page's shard is mem::pageInterleave(page, shards); each shard owns
 * an equal slice of the cache-wide MSR and evict-buffer capacity
 * (shardSlice(), checked at construction to sum exactly to the
 * configured totals). The facade owns the shared structures (DRAM
 * device, tag array, footprint masks), the channels, and the
 * controllers; it drives one access through FC→channel→BC→FC and pumps
 * each shard's flash command channel into flash::Backend::submit().
 * It is the single allowlisted place (aflint AF013) where the
 * controllers and the flash back-end are visible at once — and the
 * back-end is only ever the abstract flash::Backend (aflint AF014
 * keeps the concrete device types out of src/core entirely).
 *
 * With one shard the channel, controller, and stat names collapse to
 * the pre-sharding spellings ("bc", "fc_to_bc", ...) and the facade is
 * cycle-for-cycle identical to the unsharded cache — the property the
 * golden-stats byte-identity tests pin. With several, shard-scoped
 * names ("bc<i>", "fc_to_bc<i>", ...) keep every stat addressable.
 *
 * Page arrivals are delivered through a callback carrying every waiter
 * cookie that merged onto the miss — the hook the switch-on-miss cores
 * use to wake pending user-level threads.
 */

#ifndef ASTRIFLASH_CORE_DRAM_CACHE_HH
#define ASTRIFLASH_CORE_DRAM_CACHE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "flash/backend.hh"
#include "mem/address_map.hh"
#include "mem/dram.hh"
#include "mem/set_assoc_cache.hh"
#include "sim/bounded_channel.hh"
#include "sim/invariant.hh"
#include "sim/ownership.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

#include "backside_controller.hh"
#include "dc_messages.hh"
#include "dram_cache_types.hh"
#include "evict_buffer.hh"
#include "frontside_controller.hh"
#include "miss_status_row.hh"

namespace astriflash::core {

/** The AstriFlash DRAM cache: FC + sharded BCs over bounded channels. */
class DramCache : public sim::SimObject
{
  public:
    using PageReadyFn = FrontsideController::PageReadyFn;

    /** Cache-wide backside totals summed across shards. */
    struct BcTotals {
        std::uint64_t fills = 0;
        std::uint64_t dirtyWritebacks = 0;
        std::uint64_t flashBytesRead = 0;
        /** Sum of per-shard peaks (an upper bound on the true
         *  simultaneous peak). */
        std::uint64_t peakOutstanding = 0;
    };

    /**
     * @param bc_queues  Optional per-shard event queues (one per BC
     *                   shard) for sim::ParallelEngine domain
     *                   partitioning; empty keeps every controller on
     *                   @p eq. The queues must share @p eq's
     *                   EventQueueGroup — the controllers exchange
     *                   synchronous state through the facade, so their
     *                   domains form one exec group (DESIGN.md §15).
     */
    DramCache(sim::EventQueue &eq, std::string name,
              const DramCacheConfig &config, flash::Backend &flash,
              const mem::AddressMap &amap,
              const std::vector<sim::EventQueue *> &bc_queues = {});

    /** Register the page-arrival notification hook. */
    void
    setPageReadyCallback(PageReadyFn fn)
    {
        fcCtl.setPageReadyCallback(std::move(fn));
    }

    /**
     * Frontside access from the LLC miss path.
     *
     * On a miss the waiter cookie is recorded against the page; the
     * PageReadyFn fires when the fill completes.
     */
    DcAccess access(mem::Addr pa, bool write, sim::Ticks now,
                    WaiterCookie waiter);

    /**
     * Forced-synchronous access (forward-progress bit set, or the
     * Flash-Sync configuration): even on a miss, returns the tick when
     * the data is available, blocking the caller.
     */
    sim::Ticks accessSync(mem::Addr pa, bool write, sim::Ticks now);

    /** True if the page holding @p pa is resident (no timing). */
    bool pageResident(mem::Addr pa) const;

    /** Install @p pa's page without timing (simulation warmup). */
    void prewarmPage(mem::Addr pa);

    /** Mark @p pa's page dirty if resident (LLC writeback landed). */
    void
    markPageDirty(mem::Addr pa)
    {
        pageTags.markDirty(pa);
    }

    /** Number of page frames. */
    std::uint64_t
    pageFrames() const
    {
        return cfg.capacityBytes / cfg.pageBytes;
    }

    /** Backside-controller shards. */
    std::uint32_t
    shardCount() const
    {
        return static_cast<std::uint32_t>(bcCtls.size());
    }

    /** Shard serving @p page. */
    std::uint32_t
    shardOf(mem::PageNum page) const
    {
        return mem::pageInterleave(page, shardCount());
    }

    /** Outstanding (in-flight) misses right now, across shards. */
    std::uint32_t
    outstandingMisses() const
    {
        std::uint32_t total = 0;
        for (const auto &bc : bcCtls)
            total += bc->outstandingMisses();
        return total;
    }

    /** Cache-wide MSR capacity (sum of the shard slices). */
    std::uint64_t
    msrCapacity() const
    {
        std::uint64_t total = 0;
        for (const auto &bc : bcCtls)
            total += bc->msr().capacity();
        return total;
    }

    /** Sum of per-shard MSR peak occupancies. */
    std::uint64_t
    msrPeakOccupancy() const
    {
        std::uint64_t total = 0;
        for (const auto &bc : bcCtls)
            total += bc->msr().stats().peakOccupancy;
        return total;
    }

    /** Zero all statistics (end of warmup). Channel counters are
     *  lifetime (conservation laws must survive the reset). */
    void resetStats();

    /**
     * Register stats into @p reg following the controller split:
     * "fc" (frontside: hit/miss accounting), one backside registry per
     * shard ("bc" unsharded, "bc<i>" sharded) with "msr"/"evictbuf"
     * children, the "dram" device and the "tags" array, plus each
     * shard's channel triple ("fc_to_bc[<i>]", "bc_to_flash[<i>]",
     * "bc_to_fc[<i>]").
     */
    void regStats(sim::StatRegistry &reg) const;

    /** Audit the FC and every BC shard. The MSRs, evict buffers, tag
     *  array, and channels register their own invariant entries (see
     *  System::registerInvariants). */
    void checkInvariants(sim::InvariantChecker &chk) const;

    /** Frontside accounting (hits, misses, hit latency). */
    const FrontsideController::Stats &
    fcStats() const
    {
        return fcCtl.stats();
    }

    /** One shard's backside accounting (fills, writebacks, penalty). */
    const BacksideController::Stats &
    bcStats(std::uint32_t shard = 0) const
    {
        return bcCtls[shard]->stats();
    }

    /** Cache-wide backside totals (sums across shards). */
    BcTotals bcTotals() const;

    double hitRatio() const { return fcCtl.stats().hitRatio(); }

    const FrontsideController &frontside() const { return fcCtl; }

    const BacksideController &
    backside(std::uint32_t shard = 0) const
    {
        return *bcCtls[shard];
    }

    const MissStatusRow &
    msr(std::uint32_t shard = 0) const
    {
        return bcCtls[shard]->msr();
    }

    const EvictBuffer &
    evictBuffer(std::uint32_t shard = 0) const
    {
        return bcCtls[shard]->evictBuffer();
    }

    const mem::SetAssocCache &pageArray() const { return pageTags; }
    const mem::Dram &dram() const { return dramModel; }
    const DramCacheConfig &config() const { return cfg; }

    const sim::BoundedChannel<MissRequest> &
    missChannel(std::uint32_t shard = 0) const
    {
        return *fcToBc[shard];
    }

    const sim::BoundedChannel<FlashCmdMsg> &
    flashChannel(std::uint32_t shard = 0) const
    {
        return *bcToFlash[shard];
    }

    const sim::BoundedChannel<InstallComplete> &
    installChannel(std::uint32_t shard = 0) const
    {
        return *bcToFc[shard];
    }

  private:
    /** Drain shard @p shard's bc_to_flash into Backend::submit(). */
    void pumpFlashCommands(std::uint32_t shard);

    /** Shard-scoped suffix: "" unsharded, "<i>" sharded. */
    std::string shardTag(std::uint32_t shard) const;

    /** "Not a registered crossing" sentinel (same-domain facade). */
    static constexpr std::uint32_t kNoCrossing =
        static_cast<std::uint32_t>(-1);

    /** Count one exercise of a pre-registered facade crossing. */
    void
    noteCrossing(std::uint32_t id, sim::Ticks now)
    {
        if (ownAudit && id != kNoCrossing)
            ownAudit->onCrossing(id, now);
    }

    DramCacheConfig cfg;
    flash::Backend &flashDev;
    mem::Dram dramModel;
    mem::SetAssocCache pageTags;
    FootprintState footprint;
    std::vector<std::unique_ptr<sim::BoundedChannel<MissRequest>>>
        fcToBc;
    std::vector<std::unique_ptr<sim::BoundedChannel<FlashCmdMsg>>>
        bcToFlash;
    std::vector<std::unique_ptr<sim::BoundedChannel<InstallComplete>>>
        bcToFc;
    FrontsideController fcCtl;
    std::vector<std::unique_ptr<BacksideController>> bcCtls;

    /** Ownership auditor attached at construction (or null). The
     *  facade is THE allowlisted place where FC↔BC state crosses
     *  synchronously; each deliberate crossing is pre-registered per
     *  shard and counted (never a violation) so the static coupling
     *  report (aflint --ownership-report) can be certified against
     *  what actually runs. */
    sim::OwnershipAuditor *ownAudit = nullptr;
    std::vector<std::uint32_t> serviceCrossings; ///< FC -> BC<i>.
    std::vector<std::uint32_t> submitCrossings;  ///< BC<i> -> fabric.
    std::vector<std::uint32_t> installCrossings; ///< BC<i> -> FC.
};

} // namespace astriflash::core

#endif // ASTRIFLASH_CORE_DRAM_CACHE_HH
