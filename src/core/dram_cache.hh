/**
 * @file
 * Hardware-managed DRAM cache facade (§IV-B, Fig. 5).
 *
 * The cache is a fast FSM frontside controller
 * (frontside_controller.hh) and N page-interleaved backside-controller
 * shards (backside_controller.hh) that exchange state ONLY through
 * bounded, tick-stamped channels — five per shard:
 *
 *   FC --MissRequest-->     BC<i>   (fc_to_bc<i>, the shard's queue)
 *   BC<i> --FlashCmdMsg-->  BC<i>   (bc_to_flash<i>, command queue;
 *                                    the shard submits through its
 *                                    abstract flash::Backend)
 *   BC<i> --BcNotice-->     FC      (bc_to_fc_rsp<i>: miss acks +
 *                                    install requests)
 *   FC --InstallGrant-->    BC<i>   (fc_to_bc_ctl<i>: tag fill +
 *                                    DRAM install results)
 *   BC<i> --InstallComplete--> FC   (bc_to_fc<i>, waiter wakeups)
 *
 * A page's shard is mem::pageInterleave(page, shards); each shard owns
 * an equal slice of the cache-wide MSR and evict-buffer capacity
 * (shardSlice(), checked at construction to sum exactly to the
 * configured totals). The facade owns the fc-side shared structures
 * (DRAM device, tag array, footprint masks) on the frontside domain,
 * constructs the channels and the controllers, and wires each
 * controller to drain its OWN inbound channels — the facade itself
 * pumps nothing and makes no synchronous controller-to-controller
 * calls (the ownership report's sync-facade-call count is zero). It
 * is the single allowlisted place (aflint AF013) where both
 * controllers are visible at once, and the flash back-end it hands
 * each shard is only ever the abstract flash::Backend (aflint AF014
 * keeps the concrete device types out of src/core entirely).
 *
 * With one shard the channel, controller, and stat names collapse to
 * the pre-sharding spellings ("bc", "fc_to_bc", ...) and the facade is
 * cycle-for-cycle identical to the unsharded cache — the property the
 * golden-stats byte-identity tests pin. With several, shard-scoped
 * names ("bc<i>", "fc_to_bc<i>", ...) keep every stat addressable.
 *
 * Page arrivals are delivered through a callback carrying every waiter
 * cookie that merged onto the miss — the hook the switch-on-miss cores
 * use to wake pending user-level threads.
 */

#ifndef ASTRIFLASH_CORE_DRAM_CACHE_HH
#define ASTRIFLASH_CORE_DRAM_CACHE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "flash/backend.hh"
#include "mem/address_map.hh"
#include "mem/dram.hh"
#include "mem/set_assoc_cache.hh"
#include "sim/bounded_channel.hh"
#include "sim/invariant.hh"
#include "sim/ownership.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

#include "backside_controller.hh"
#include "dc_messages.hh"
#include "dram_cache_types.hh"
#include "evict_buffer.hh"
#include "frontside_controller.hh"
#include "miss_status_row.hh"

namespace astriflash::core {

/** The AstriFlash DRAM cache: FC + sharded BCs over bounded channels. */
class DramCache : public sim::SimObject
{
  public:
    using PageReadyFn = FrontsideController::PageReadyFn;

    /**
     * Cross-domain pump scheduler: run @p fn at tick @p when in domain
     * @p dst, where the post originates in domain @p src. Domain 0 is
     * the frontside; domain 1+i is backside shard i. The facade
     * installs a single-queue fallback at construction
     * (setCrossPost(nullptr)); System swaps in the parallel engine's
     * mailbox around a partitioned run.
     */
    using EnginePostFn = std::function<void(
        std::uint32_t src, std::uint32_t dst, sim::Ticks when,
        std::function<void()> fn)>;

    /** Cache-wide backside totals summed across shards. */
    struct BcTotals {
        std::uint64_t fills = 0;
        std::uint64_t dirtyWritebacks = 0;
        std::uint64_t flashBytesRead = 0;
        /** Sum of per-shard peaks (an upper bound on the true
         *  simultaneous peak). */
        std::uint64_t peakOutstanding = 0;
    };

    /**
     * @param bc_queues  Optional per-shard event queues (one per BC
     *                   shard) for sim::ParallelEngine domain
     *                   partitioning; empty keeps every controller on
     *                   @p eq. In fused mode (FcConfig::pipeline off)
     *                   the queues must share @p eq's EventQueueGroup —
     *                   the drain chains still cross synchronously, so
     *                   the domains form one exec group. In pipeline
     *                   mode each shard's domain may live in its own
     *                   exec group: every seam is channel traffic with
     *                   declared lookahead (DESIGN.md §17).
     */
    DramCache(sim::EventQueue &eq, std::string name,
              const DramCacheConfig &config, flash::Backend &flash,
              const mem::AddressMap &amap,
              const std::vector<sim::EventQueue *> &bc_queues = {});

    /** Register the page-arrival notification hook. */
    void
    setPageReadyCallback(PageReadyFn fn)
    {
        fcCtl.setPageReadyCallback(std::move(fn));
    }

    /**
     * Install the cross-domain pump scheduler (pipeline mode).
     * Passing nullptr restores the single-queue fallback, which
     * schedules every posted pump on the facade's own event queue.
     */
    void setCrossPost(EnginePostFn fn);

    /**
     * Close every FC<->BC seam channel's drain window at its current
     * push sequence (sim::BoundedChannel::freezeDrainWindow). System
     * calls it before the split engine run and at every barrier so
     * each round's pumps drain exactly the barrier-time queues. The
     * intra-domain bc_to_flash channels are exempt: their pumps run
     * in the pushing call chain.
     */
    void freezeSeamWindows();

    /** Reopen the seam drain windows (after the split engine run, so
     *  post-run quiesce pumps on the facade's own queue can drain). */
    void thawSeamWindows();

    /**
     * Frontside access from the LLC miss path.
     *
     * On a miss the waiter cookie is recorded against the page; the
     * PageReadyFn fires when the fill completes.
     */
    DcAccess access(mem::Addr pa, bool write, sim::Ticks now,
                    WaiterCookie waiter);

    /**
     * Forced-synchronous access (forward-progress bit set, or the
     * Flash-Sync configuration): even on a miss, returns the tick when
     * the data is available, blocking the caller.
     */
    sim::Ticks accessSync(mem::Addr pa, bool write, sim::Ticks now);

    /** True if the page holding @p pa is resident (no timing). */
    bool pageResident(mem::Addr pa) const;

    /** Install @p pa's page without timing (simulation warmup). */
    void prewarmPage(mem::Addr pa);

    /** Mark @p pa's page dirty if resident (LLC writeback landed). */
    void
    markPageDirty(mem::Addr pa)
    {
        pageTags.markDirty(pa);
    }

    /** Number of page frames. */
    std::uint64_t
    pageFrames() const
    {
        return cfg.capacityBytes / cfg.pageBytes;
    }

    /** Backside-controller shards. */
    std::uint32_t
    shardCount() const
    {
        return static_cast<std::uint32_t>(bcCtls.size());
    }

    /** Shard serving @p page. */
    std::uint32_t
    shardOf(mem::PageNum page) const
    {
        return mem::pageInterleave(page, shardCount());
    }

    /** Outstanding (in-flight) misses right now, across shards. */
    std::uint32_t
    outstandingMisses() const
    {
        std::uint32_t total = 0;
        for (const auto &bc : bcCtls)
            total += bc->outstandingMisses();
        return total;
    }

    /** Cache-wide MSR capacity (sum of the shard slices). */
    std::uint64_t
    msrCapacity() const
    {
        std::uint64_t total = 0;
        for (const auto &bc : bcCtls)
            total += bc->msr().capacity();
        return total;
    }

    /** Sum of per-shard MSR peak occupancies. */
    std::uint64_t
    msrPeakOccupancy() const
    {
        std::uint64_t total = 0;
        for (const auto &bc : bcCtls)
            total += bc->msr().stats().peakOccupancy;
        return total;
    }

    /** Zero all statistics (end of warmup). Channel counters are
     *  lifetime (conservation laws must survive the reset). */
    void resetStats();

    /**
     * Register stats into @p reg following the controller split:
     * "fc" (frontside: hit/miss accounting), one backside registry per
     * shard ("bc" unsharded, "bc<i>" sharded) with "msr"/"evictbuf"
     * children, the "dram" device and the "tags" array, plus each
     * shard's channels ("fc_to_bc[<i>]", "bc_to_flash[<i>]",
     * "bc_to_fc[<i>]"; the pipeline-mode rsp/ctl channels register
     * only when that mode is on, keeping the default tree
     * byte-identical).
     */
    void regStats(sim::StatRegistry &reg) const;

    /** Audit the FC and every BC shard, including the cross-domain
     *  auditShared sweeps over the fc-owned structures. The MSRs,
     *  evict buffers, tag array, and channels register their own
     *  invariant entries (see System::registerInvariants). */
    void checkInvariants(sim::InvariantChecker &chk) const;

    /** Frontside accounting (hits, misses, hit latency). */
    const FrontsideController::Stats &
    fcStats() const
    {
        return fcCtl.stats();
    }

    /** One shard's backside accounting (fills, writebacks, penalty). */
    const BacksideController::Stats &
    bcStats(std::uint32_t shard = 0) const
    {
        return bcCtls[shard]->stats();
    }

    /** Cache-wide backside totals (sums across shards). */
    BcTotals bcTotals() const;

    double hitRatio() const { return fcCtl.stats().hitRatio(); }

    const FrontsideController &frontside() const { return fcCtl; }

    const BacksideController &
    backside(std::uint32_t shard = 0) const
    {
        return *bcCtls[shard];
    }

    const MissStatusRow &
    msr(std::uint32_t shard = 0) const
    {
        return bcCtls[shard]->msr();
    }

    const EvictBuffer &
    evictBuffer(std::uint32_t shard = 0) const
    {
        return bcCtls[shard]->evictBuffer();
    }

    const mem::SetAssocCache &pageArray() const { return pageTags; }
    const mem::Dram &dram() const { return dramModel; }
    const DramCacheConfig &config() const { return cfg; }

    const sim::BoundedChannel<MissRequest> &
    missChannel(std::uint32_t shard = 0) const
    {
        return *fcToBc[shard];
    }

    const sim::BoundedChannel<FlashCmdMsg> &
    flashChannel(std::uint32_t shard = 0) const
    {
        return *bcToFlash[shard];
    }

    const sim::BoundedChannel<InstallComplete> &
    installChannel(std::uint32_t shard = 0) const
    {
        return *bcToFc[shard];
    }

    const sim::BoundedChannel<BcNotice> &
    rspChannel(std::uint32_t shard = 0) const
    {
        return *bcToFcRsp[shard];
    }

    const sim::BoundedChannel<InstallGrant> &
    ctlChannel(std::uint32_t shard = 0) const
    {
        return *fcToBcCtl[shard];
    }

  private:
    /** Shard-scoped suffix: "" unsharded, "<i>" sharded. */
    std::string shardTag(std::uint32_t shard) const;

    /** "Not a registered crossing" sentinel (same-domain facade). */
    static constexpr std::uint32_t kNoCrossing =
        static_cast<std::uint32_t>(-1);

    /** Count one exercise of a pre-registered facade crossing. */
    void
    noteCrossing(std::uint32_t id, sim::Ticks now)
    {
        if (ownAudit && id != kNoCrossing)
            ownAudit->onCrossing(id, now);
    }

    DramCacheConfig cfg;
    mem::Dram dramModel;
    mem::SetAssocCache pageTags;
    FootprintState footprint;
    std::vector<std::unique_ptr<sim::BoundedChannel<MissRequest>>>
        fcToBc;
    std::vector<std::unique_ptr<sim::BoundedChannel<FlashCmdMsg>>>
        bcToFlash;
    std::vector<std::unique_ptr<sim::BoundedChannel<InstallComplete>>>
        bcToFc;
    std::vector<std::unique_ptr<sim::BoundedChannel<BcNotice>>>
        bcToFcRsp;
    std::vector<std::unique_ptr<sim::BoundedChannel<InstallGrant>>>
        fcToBcCtl;
    FrontsideController fcCtl;
    std::vector<std::unique_ptr<BacksideController>> bcCtls;

    /** Ownership auditor attached at construction (or null). In fused
     *  mode the controllers' drain chains still exercise the two
     *  pre-registered deliberate crossings per shard ("service" and
     *  "deliver_installs"); the controllers report them through their
     *  crossing-note callbacks so the static coupling report (aflint
     *  --ownership-report) can be certified against what actually
     *  runs. Pipeline mode crosses only through posted pumps, so the
     *  counts go to zero along with the sync facade calls. */
    sim::OwnershipAuditor *ownAudit = nullptr;
    std::vector<std::uint32_t> serviceCrossings; ///< FC -> BC<i>.
    std::vector<std::uint32_t> installCrossings; ///< BC<i> -> FC.
};

} // namespace astriflash::core

#endif // ASTRIFLASH_CORE_DRAM_CACHE_HH
