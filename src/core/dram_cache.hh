/**
 * @file
 * Hardware-managed DRAM cache facade (§IV-B, Fig. 5).
 *
 * The cache is two separate components: a fast FSM frontside
 * controller (frontside_controller.hh) and a programmable backside
 * controller (backside_controller.hh) that exchange state ONLY
 * through bounded, tick-stamped channels:
 *
 *   FC --MissRequest-->     BC      (fc_to_bc, the BC's work queue)
 *   BC --FlashCmdMsg-->     device  (bc_to_flash, command queue)
 *   BC --InstallComplete--> FC      (bc_to_fc, waiter wakeups)
 *
 * This facade owns the shared structures (DRAM device, tag array,
 * footprint masks), the three channels, and the two controllers; it
 * drives one access through FC→channel→BC→FC and pumps the flash
 * command channel into FlashDevice::submit(). It is the single
 * allowlisted place (aflint AF013) where both controllers and the
 * device are visible at once. Public API and stat namespaces are
 * unchanged from the pre-split monolith — at the default
 * (effectively-unbounded) channel depths the decomposition is
 * timing-neutral, which tests/test_fc_bc_split.cpp proves against
 * the golden stats.
 *
 * Page arrivals are delivered through a callback carrying every waiter
 * cookie that merged onto the miss — the hook the switch-on-miss cores
 * use to wake pending user-level threads.
 */

#ifndef ASTRIFLASH_CORE_DRAM_CACHE_HH
#define ASTRIFLASH_CORE_DRAM_CACHE_HH

#include <cstdint>
#include <string>
#include <utility>

#include "flash/flash_device.hh"
#include "mem/address_map.hh"
#include "mem/dram.hh"
#include "mem/set_assoc_cache.hh"
#include "sim/bounded_channel.hh"
#include "sim/invariant.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

#include "backside_controller.hh"
#include "dc_messages.hh"
#include "dram_cache_types.hh"
#include "evict_buffer.hh"
#include "frontside_controller.hh"
#include "miss_status_row.hh"

namespace astriflash::core {

/** The AstriFlash DRAM cache: FC + BC over bounded channels. */
class DramCache : public sim::SimObject
{
  public:
    using PageReadyFn = FrontsideController::PageReadyFn;

    DramCache(sim::EventQueue &eq, std::string name,
              const DramCacheConfig &config, flash::FlashDevice &flash,
              const mem::AddressMap &amap);

    /** Register the page-arrival notification hook. */
    void
    setPageReadyCallback(PageReadyFn fn)
    {
        fcCtl.setPageReadyCallback(std::move(fn));
    }

    /**
     * Frontside access from the LLC miss path.
     *
     * On a miss the waiter cookie is recorded against the page; the
     * PageReadyFn fires when the fill completes.
     */
    DcAccess access(mem::Addr pa, bool write, sim::Ticks now,
                    WaiterCookie waiter);

    /**
     * Forced-synchronous access (forward-progress bit set, or the
     * Flash-Sync configuration): even on a miss, returns the tick when
     * the data is available, blocking the caller.
     */
    sim::Ticks accessSync(mem::Addr pa, bool write, sim::Ticks now);

    /** True if the page holding @p pa is resident (no timing). */
    bool pageResident(mem::Addr pa) const;

    /** Install @p pa's page without timing (simulation warmup). */
    void prewarmPage(mem::Addr pa);

    /** Mark @p pa's page dirty if resident (LLC writeback landed). */
    void
    markPageDirty(mem::Addr pa)
    {
        pageTags.markDirty(pa);
    }

    /** Number of page frames. */
    std::uint64_t
    pageFrames() const
    {
        return cfg.capacityBytes / cfg.pageBytes;
    }

    /** Outstanding (in-flight) misses right now. */
    std::uint32_t
    outstandingMisses() const
    {
        return bcCtl.outstandingMisses();
    }

    /** Zero all statistics (end of warmup). Channel counters are
     *  lifetime (conservation laws must survive the reset). */
    void resetStats();

    /**
     * Register stats into @p reg following the controller split:
     * "fc" (frontside: hit/miss accounting), "bc" (backside: fills,
     * writebacks, miss penalty) with "msr"/"evictbuf" children, the
     * "dram" device and the "tags" array, plus the three channels
     * ("fc_to_bc", "bc_to_flash", "bc_to_fc").
     */
    void regStats(sim::StatRegistry &reg) const;

    /** Audit both controllers. The MSR, evict buffer, tag array, and
     *  channels register their own invariant entries (see
     *  System::registerInvariants). */
    void checkInvariants(sim::InvariantChecker &chk) const;

    /** Frontside accounting (hits, misses, hit latency). */
    const FrontsideController::Stats &
    fcStats() const
    {
        return fcCtl.stats();
    }

    /** Backside accounting (fills, writebacks, miss penalty). */
    const BacksideController::Stats &
    bcStats() const
    {
        return bcCtl.stats();
    }

    double hitRatio() const { return fcCtl.stats().hitRatio(); }

    const FrontsideController &frontside() const { return fcCtl; }
    const BacksideController &backside() const { return bcCtl; }
    const MissStatusRow &msr() const { return bcCtl.msr(); }
    const EvictBuffer &evictBuffer() const { return bcCtl.evictBuffer(); }
    const mem::SetAssocCache &pageArray() const { return pageTags; }
    const mem::Dram &dram() const { return dramModel; }
    const DramCacheConfig &config() const { return cfg; }

    const sim::BoundedChannel<MissRequest> &
    missChannel() const
    {
        return fcToBc;
    }

    const sim::BoundedChannel<FlashCmdMsg> &
    flashChannel() const
    {
        return bcToFlash;
    }

    const sim::BoundedChannel<InstallComplete> &
    installChannel() const
    {
        return bcToFc;
    }

  private:
    /** Drain bc_to_flash into FlashDevice::submit(). */
    void pumpFlashCommands();

    DramCacheConfig cfg;
    flash::FlashDevice &flashDev;
    mem::Dram dramModel;
    mem::SetAssocCache pageTags;
    FootprintState footprint;
    sim::BoundedChannel<MissRequest> fcToBc;
    sim::BoundedChannel<FlashCmdMsg> bcToFlash;
    sim::BoundedChannel<InstallComplete> bcToFc;
    FrontsideController fcCtl;
    BacksideController bcCtl;
};

} // namespace astriflash::core

#endif // ASTRIFLASH_CORE_DRAM_CACHE_HH
