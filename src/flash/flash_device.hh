/**
 * @file
 * SSD timing model: planes, channels, deprioritized writes, GC stalls.
 *
 * Combines the FTL (placement, GC policy) with busy-until timing for
 * every plane and channel. Reads occupy their plane for tR and their
 * channel for the page transfer; writes and GC relocations occupy the
 * plane for program/erase times and are serviced behind reads, matching
 * the paper's "flash writebacks are de-prioritized against reads". A
 * read that arrives while its plane is garbage-collecting is counted as
 * GC-blocked — the §VI-D interference metric.
 */

#ifndef ASTRIFLASH_FLASH_FLASH_DEVICE_HH
#define ASTRIFLASH_FLASH_FLASH_DEVICE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mem/address.hh"
#include "sim/invariant.hh"
#include "sim/stats.hh"
#include "sim/ticks.hh"

#include "backend.hh"
#include "flash_command.hh"
#include "flash_config.hh"
#include "ftl.hh"

namespace astriflash::flash {

/** Completion information for one flash read. */
struct FlashReadResult {
    sim::Ticks complete = 0;   ///< Data available at host.
    sim::Ticks queueing = 0;   ///< Time spent waiting for plane+channel.
    bool blockedByGc = false;  ///< Plane was erasing/relocating.
};

/** 4 KB-page SSD with channel/plane parallelism. */
class FlashDevice : public Backend
{
  public:
    struct Stats {
        sim::Counter reads;
        sim::Counter writes;
        sim::Counter gcBlockedReads;
        sim::Histogram readLatency;  ///< End-to-end ticks.
        sim::Histogram writeLatency; ///< Host-visible (ack) ticks.
    };

    /**
     * @param preload_pages  Logical pages pre-loaded as the dataset
     *                       (default: full user capacity).
     */
    FlashDevice(std::string name, const FlashConfig &config,
                std::uint64_t preload_pages = ~std::uint64_t{0});

    /**
     * Read logical page @p lpn arriving at @p now.
     * @param bytes  Bytes to transfer to the host (0 = whole page).
     *               The array read (tR) always fetches the full page;
     *               partial transfers (footprint mode) only shorten
     *               the channel occupancy.
     */
    FlashReadResult read(Lpn lpn, sim::Ticks now,
                         mem::Bytes bytes = mem::Bytes{0});

    /**
     * Write logical page @p lpn arriving at @p now.
     *
     * The host-visible acknowledgment is the transfer into the device
     * buffer; the program (and any GC it triggers) occupies the plane
     * asynchronously afterwards.
     * @return tick when the device has accepted the page.
     */
    sim::Ticks write(Lpn lpn, sim::Ticks now);

    /**
     * Submit one typed command (the BC→flash channel payload) at
     * @p now. Reads report completion and queueing; writes report
     * the host-visible buffer-accept tick in @c complete.
     */
    FlashCommandResult
    submit(const FlashCommand &cmd, sim::Ticks now) override
    {
        FlashCommandResult res;
        if (cmd.op == FlashCommand::Op::Read) {
            const FlashReadResult r = read(cmd.lpn, now, cmd.bytes);
            res.complete = r.complete;
            res.queueing = r.queueing;
            res.blockedByGc = r.blockedByGc;
        } else {
            res.complete = write(cmd.lpn, now);
        }
        return res;
    }

    /** First tick at which the plane serving @p lpn is free. */
    sim::Ticks planeFreeAt(Lpn lpn) const;

    const Ftl &ftl() const { return ftlModel; }
    const FlashConfig &config() const { return cfg; }
    const Stats &stats() const { return statsData; }

    /** Conservative whole-read latency: controller in/out + array. */
    sim::Ticks
    readEstimate() const override
    {
        return 2 * (cfg.tRead + cfg.tController);
    }

    /** User capacity in pages (convenience passthrough). */
    std::uint64_t
    userPages() const override
    {
        return ftlModel.userPages();
    }

    std::uint64_t
    readsCompleted() const override
    {
        return statsData.reads.value();
    }

    std::uint64_t
    writesAccepted() const override
    {
        return statsData.writes.value();
    }

    std::uint64_t
    gcBlockedReadCount() const override
    {
        return statsData.gcBlockedReads.value();
    }

    std::uint64_t
    hostWrites() const override
    {
        return ftlModel.stats().hostWrites.value();
    }

    std::uint64_t
    mediaWrites() const override
    {
        return ftlModel.stats().flashPrograms.value();
    }

    std::uint32_t
    wearSpread() const override
    {
        return ftlModel.eraseCountSpread();
    }

    /** Zero device-level statistics (end of warmup). FTL counters
     *  (wear, write amplification) are cumulative and not reset. */
    void
    resetStats() override
    {
        statsData = Stats{};
    }

    /**
     * Register device stats into @p reg; the FTL lands in an "ftl"
     * child registry.
     */
    void
    regStats(sim::StatRegistry &reg) const override
    {
        reg.registerCounter("reads", &statsData.reads,
                            "page reads served by the device");
        reg.registerCounter("writes", &statsData.writes,
                            "page writes accepted by the device");
        reg.registerCounter("gc_blocked_reads", &statsData.gcBlockedReads,
                            "reads that queued behind garbage collection");
        reg.registerHistogram("read_latency", &statsData.readLatency,
                              "end-to-end read latency in ticks");
        reg.registerHistogram("write_latency", &statsData.writeLatency,
                              "host-visible write-ack latency in ticks");
        ftlModel.regStats(reg.subRegistry("ftl"));
    }

    /**
     * Audit device timing state: geometry-sized plane/channel tables,
     * GC-blocked reads bounded by reads, one latency sample per
     * operation, and the FTL's own invariants.
     */
    void
    checkInvariants(sim::InvariantChecker &chk) const override
    {
        SIM_INVARIANT(chk, planes.size() == cfg.totalPlanes());
        SIM_INVARIANT(chk, channelBusy.size() == cfg.channels);
        SIM_INVARIANT(chk,
                      statsData.gcBlockedReads.value() <=
                          statsData.reads.value());
        SIM_INVARIANT_MSG(chk,
                          statsData.readLatency.count() ==
                              statsData.reads.value(),
                          "%llu reads but %llu latency samples",
                          static_cast<unsigned long long>(
                              statsData.reads.value()),
                          static_cast<unsigned long long>(
                              statsData.readLatency.count()));
        SIM_INVARIANT(chk,
                      statsData.writeLatency.count() ==
                          statsData.writes.value());
        ftlModel.checkInvariants(chk);
    }

  private:
    /**
     * Read/write occupancy is tracked separately: modern NAND
     * supports program/erase suspend, and the FTL de-prioritizes
     * writebacks (§IV-B2), so reads only queue behind other reads —
     * except during garbage collection, whose relocation/erase burst
     * blocks the whole plane (the §VI-D interference).
     */
    struct PlaneState {
        sim::Ticks readBusyUntil = 0;
        sim::Ticks writeBusyUntil = 0;
        sim::Ticks gcUntil = 0;
    };

    std::uint32_t channelOf(std::uint32_t plane) const;

    std::string devName;
    FlashConfig cfg;
    Ftl ftlModel;
    std::vector<PlaneState> planes;
    std::vector<sim::Ticks> channelBusy;
    Stats statsData;
};

} // namespace astriflash::flash

#endif // ASTRIFLASH_FLASH_FLASH_DEVICE_HH
