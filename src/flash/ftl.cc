#include "ftl.hh"

#include <unordered_set>

#include "sim/logging.hh"

namespace astriflash::flash {

Ppn
Ftl::pack(const PhysPage &p)
{
    return Ppn((static_cast<std::uint64_t>(p.plane) << 40) |
               (static_cast<std::uint64_t>(p.block) << 16) |
               static_cast<std::uint64_t>(p.page));
}

PhysPage
Ftl::unpack(Ppn v) const
{
    // Ppn is defined as this packed encoding.
    // aflint-allow-next-line(AF011)
    const std::uint64_t raw = v.raw();
    PhysPage p;
    p.plane = static_cast<std::uint32_t>(raw >> 40);
    p.block = static_cast<std::uint32_t>((raw >> 16) & 0xffffff);
    p.page = static_cast<std::uint32_t>(raw & 0xffff);
    return p;
}

Ftl::Ftl(std::string name, const FlashConfig &config,
         std::uint64_t preload_pages)
    : ftlName(std::move(name)), cfg(config),
      preloaded(preload_pages == ~std::uint64_t{0}
                    ? config.userPages()
                    : preload_pages)
{
    if (cfg.pagesPerBlock == 0 || cfg.blocksPerPlane == 0)
        ASTRI_FATAL("%s: empty flash geometry", ftlName.c_str());
    if (preloaded > cfg.userPages())
        ASTRI_FATAL("%s: preload %llu exceeds user capacity %llu",
                    ftlName.c_str(),
                    static_cast<unsigned long long>(preloaded),
                    static_cast<unsigned long long>(cfg.userPages()));
    planes.resize(cfg.totalPlanes());

    // Pre-load the dataset: the first blocks of each plane are fully
    // valid with statically-striped logical pages; the remaining
    // blocks (free capacity + overprovisioning) start free.
    const std::uint64_t user_pages = preloaded;
    const std::uint32_t nplanes = cfg.totalPlanes();
    for (std::uint32_t pl = 0; pl < nplanes; ++pl) {
        Plane &plane = planes[pl];
        plane.blocks.resize(cfg.blocksPerPlane);
        // Pages of this plane: lpns with lpn % nplanes == pl.
        const std::uint64_t plane_pages =
            user_pages / nplanes + (pl < user_pages % nplanes ? 1 : 0);
        const std::uint64_t full_blocks = plane_pages / cfg.pagesPerBlock;
        const std::uint32_t partial = static_cast<std::uint32_t>(
            plane_pages % cfg.pagesPerBlock);
        for (std::uint64_t b = 0; b < cfg.blocksPerPlane; ++b) {
            Block &blk = plane.blocks[b];
            if (b < full_blocks) {
                blk.validPages = cfg.pagesPerBlock;
                blk.writePtr = cfg.pagesPerBlock;
            } else if (b == full_blocks && partial > 0) {
                blk.validPages = partial;
                blk.writePtr = partial;
            } else {
                ++plane.freeBlocks;
                plane.freePages += cfg.pagesPerBlock;
            }
        }
        // Start writing into the first fully-free block.
        plane.activeBlock = static_cast<std::uint32_t>(
            full_blocks + (partial > 0 ? 1 : 0));
        if (plane.activeBlock < cfg.blocksPerPlane) {
            --plane.freeBlocks; // the active block is claimed
        }
    }
}

std::uint32_t
Ftl::planeOf(Lpn lpn) const
{
    // Plane striping is modular arithmetic on the logical page index.
    // aflint-allow-next-line(AF011)
    return static_cast<std::uint32_t>(lpn.raw() % cfg.totalPlanes());
}

PhysPage
Ftl::translate(Lpn lpn)
{
    if (auto it = mapping.find(lpn); it != mapping.end())
        return unpack(it->second);
    // Stripe math and diagnostics below.
    // aflint-allow-next-line(AF011)
    const std::uint64_t lpn_raw = lpn.raw();
    ASTRI_ASSERT_MSG(lpn < Lpn(preloaded),
                     "read of unwritten lpn %llu beyond the preloaded "
                     "dataset",
                     static_cast<unsigned long long>(lpn_raw));
    // Static pre-load location.
    PhysPage p;
    p.plane = planeOf(lpn);
    const std::uint64_t idx = lpn_raw / cfg.totalPlanes();
    p.block = static_cast<std::uint32_t>(idx / cfg.pagesPerBlock);
    p.page = static_cast<std::uint32_t>(idx % cfg.pagesPerBlock);
    return p;
}

void
Ftl::invalidateOld(Lpn lpn)
{
    const PhysPage old = translate(lpn);
    Plane &plane = planes[old.plane];
    Block &blk = plane.blocks[old.block];
    if (blk.owners.empty()) {
        // Materialize the static block's owner list so individual
        // pages can be marked invalid.
        blk.owners.assign(cfg.pagesPerBlock, kInvalidLpn);
        for (std::uint32_t pg = 0; pg < blk.writePtr; ++pg) {
            const Lpn static_lpn{
                (static_cast<std::uint64_t>(old.block) *
                     cfg.pagesPerBlock + pg) * cfg.totalPlanes() +
                old.plane};
            if (static_lpn < Lpn(preloaded))
                blk.owners[pg] = static_lpn;
        }
    }
    if (blk.owners[old.page] != kInvalidLpn) {
        blk.owners[old.page] = kInvalidLpn;
        ASTRI_ASSERT(blk.validPages > 0);
        --blk.validPages;
    }
}

PhysPage
Ftl::allocate(std::uint32_t plane_idx)
{
    Plane &plane = planes[plane_idx];
    ASTRI_ASSERT_MSG(plane.activeBlock < cfg.blocksPerPlane,
                     "%s: plane %u has no active block",
                     ftlName.c_str(), plane_idx);
    Block *blk = &plane.blocks[plane.activeBlock];
    if (blk->writePtr >= cfg.pagesPerBlock) {
        // Advance the frontier to the next free block. Block indices
        // within a plane fit 32 bits (config-bounded).
        const auto num_blocks =
            static_cast<std::uint32_t>(cfg.blocksPerPlane);
        std::uint32_t next = num_blocks;
        for (std::uint32_t b = 0; b < num_blocks; ++b) {
            const Block &cand = plane.blocks[b];
            if (cand.writePtr == 0 && cand.validPages == 0) {
                next = b;
                break;
            }
        }
        ASTRI_ASSERT_MSG(next < cfg.blocksPerPlane,
                         "%s: plane %u out of free blocks "
                         "(overprovisioning exhausted)",
                         ftlName.c_str(), plane_idx);
        plane.activeBlock = next;
        ASTRI_ASSERT(plane.freeBlocks > 0);
        --plane.freeBlocks;
        blk = &plane.blocks[next];
    }
    if (blk->owners.empty())
        blk->owners.assign(cfg.pagesPerBlock, kInvalidLpn);
    PhysPage out;
    out.plane = plane_idx;
    out.block = plane.activeBlock;
    out.page = blk->writePtr;
    ++blk->writePtr;
    ASTRI_ASSERT(plane.freePages > 0);
    --plane.freePages;
    return out;
}

std::uint32_t
Ftl::pickVictim(const Plane &plane) const
{
    std::uint32_t best = ~0u;
    for (std::uint32_t b = 0; b < cfg.blocksPerPlane; ++b) {
        const Block &blk = plane.blocks[b];
        // Only sealed, non-active blocks with reclaimable space are
        // candidates (erasing the write frontier would corrupt the
        // free-block accounting).
        if (b == plane.activeBlock ||
            blk.writePtr < cfg.pagesPerBlock ||
            blk.validPages == cfg.pagesPerBlock) {
            continue;
        }
        if (best == ~0u) {
            best = b;
            continue;
        }
        const Block &cur = plane.blocks[best];
        if (blk.validPages < cur.validPages ||
            (blk.validPages == cur.validPages &&
             blk.eraseCount < cur.eraseCount)) {
            best = b;
        }
    }
    return best;
}

GcWork
Ftl::collectGarbage(std::uint32_t plane_idx)
{
    Plane &plane = planes[plane_idx];
    GcWork work;
    work.plane = plane_idx;
    statsData.gcInvocations.inc();

    while (plane.freeBlocks < cfg.gcFreeBlockLow) {
        const std::uint32_t victim_idx = pickVictim(plane);
        if (victim_idx == ~0u)
            break; // nothing reclaimable; writes will hit the wall
        Block &victim = plane.blocks[victim_idx];
        // Relocate valid pages within the local plane (the paper's
        // local-erasure policy keeps GC traffic off other planes).
        if (victim.owners.empty()) {
            victim.owners.assign(cfg.pagesPerBlock, kInvalidLpn);
            for (std::uint32_t pg = 0; pg < victim.writePtr; ++pg) {
                const Lpn static_lpn{
                    (static_cast<std::uint64_t>(victim_idx) *
                         cfg.pagesPerBlock + pg) * cfg.totalPlanes() +
                    plane_idx};
                if (static_lpn < Lpn(preloaded))
                    victim.owners[pg] = static_lpn;
            }
        }
        for (std::uint32_t pg = 0; pg < cfg.pagesPerBlock; ++pg) {
            const Lpn lpn = victim.owners[pg];
            if (lpn == kInvalidLpn)
                continue;
            const PhysPage dst = allocate(plane_idx);
            Block &dst_blk = plane.blocks[dst.block];
            dst_blk.owners[dst.page] = lpn;
            ++dst_blk.validPages;
            mapping[lpn] = pack(dst);
            ++work.relocatedPages;
            statsData.gcRelocations.inc();
            statsData.flashPrograms.inc();
        }
        // Erase the victim.
        victim.validPages = 0;
        victim.writePtr = 0;
        victim.owners.clear();
        victim.owners.shrink_to_fit();
        ++victim.eraseCount;
        ++plane.freeBlocks;
        plane.freePages += cfg.pagesPerBlock;
        ++work.erasedBlocks;
        statsData.erases.inc();
    }
    return work;
}

PhysPage
Ftl::write(Lpn lpn, GcWork *gc)
{
    // aflint-allow-next-line(AF011): diagnostics formatting.
    const unsigned long long lpn_raw = lpn.raw();
    ASTRI_ASSERT_MSG(lpn < Lpn(preloaded),
                     "write of lpn %llu beyond the preloaded dataset",
                     lpn_raw);
    statsData.hostWrites.inc();
    invalidateOld(lpn);

    const std::uint32_t plane_idx = planeOf(lpn);
    const PhysPage dst = allocate(plane_idx);
    Block &blk = planes[plane_idx].blocks[dst.block];
    blk.owners[dst.page] = lpn;
    ++blk.validPages;
    mapping[lpn] = pack(dst);
    statsData.flashPrograms.inc();

    GcWork local;
    if (planes[plane_idx].freeBlocks < cfg.gcFreeBlockLow)
        local = collectGarbage(plane_idx);
    if (gc)
        *gc = local;
    return dst;
}

std::uint64_t
Ftl::freePagesInPlane(std::uint32_t plane) const
{
    return planes[plane].freePages;
}

void
Ftl::checkInvariants(sim::InvariantChecker &chk) const
{
    // Injective, in-bounds mapping with agreeing owner back-pointers.
    std::unordered_set<Ppn> targets;
    // Audit-only walk; the injectivity check via `targets` passes or
    // fails regardless of order (baselined AF015).
    for (const auto &[lpn, packed] : mapping) {
        // aflint-allow-next-line(AF011): diagnostics formatting.
        const unsigned long long lpn_raw = lpn.raw();
        SIM_INVARIANT_MSG(chk, lpn < Lpn(preloaded),
                          "mapped lpn %llu beyond the dataset",
                          lpn_raw);
        SIM_INVARIANT_MSG(chk, targets.insert(packed).second,
                          "two logical pages map to physical %llx",
                          static_cast<unsigned long long>(
                              // aflint-allow-next-line(AF011)
                              packed.raw()));
        const PhysPage p = unpack(packed);
        SIM_INVARIANT_MSG(chk,
                          p.plane < planes.size() &&
                              p.block < cfg.blocksPerPlane &&
                              p.page < cfg.pagesPerBlock,
                          "lpn %llu maps out of bounds (%u/%u/%u)",
                          lpn_raw, p.plane, p.block, p.page);
        SIM_INVARIANT_MSG(chk, planeOf(lpn) == p.plane,
                          "lpn %llu mapped off its stripe plane %u",
                          lpn_raw, p.plane);
        const Block &blk = planes[p.plane].blocks[p.block];
        SIM_INVARIANT_MSG(chk,
                          !blk.owners.empty() &&
                              blk.owners[p.page] == lpn,
                          "owner back-pointer disagrees for lpn %llu",
                          lpn_raw);
    }

    // Block-level consistency and per-plane free-space accounting.
    for (std::size_t pl = 0; pl < planes.size(); ++pl) {
        const Plane &plane = planes[pl];
        std::uint32_t free_blocks = 0;
        for (std::size_t b = 0; b < plane.blocks.size(); ++b) {
            const Block &blk = plane.blocks[b];
            SIM_INVARIANT_MSG(chk,
                              blk.validPages <= blk.writePtr &&
                                  blk.writePtr <= cfg.pagesPerBlock,
                              "plane %zu block %zu: valid %u > "
                              "written %u (cap %u)",
                              pl, b, blk.validPages, blk.writePtr,
                              cfg.pagesPerBlock);
            if (!blk.owners.empty()) {
                std::uint32_t owned = 0;
                for (const Lpn owner : blk.owners) {
                    if (owner != kInvalidLpn)
                        ++owned;
                }
                SIM_INVARIANT_MSG(chk, owned == blk.validPages,
                                  "plane %zu block %zu: %u owners but "
                                  "%u valid pages",
                                  pl, b, owned, blk.validPages);
            }
            if (blk.writePtr == 0 && blk.validPages == 0 &&
                b != plane.activeBlock) {
                ++free_blocks;
            }
        }
        SIM_INVARIANT_MSG(chk, plane.freeBlocks == free_blocks,
                          "plane %zu counts %u free blocks, found %u",
                          pl, plane.freeBlocks, free_blocks);
        // freePages tracks the claimed frontier plus fully-free blocks.
        std::uint64_t expect =
            static_cast<std::uint64_t>(free_blocks) * cfg.pagesPerBlock;
        if (plane.activeBlock < plane.blocks.size()) {
            expect += cfg.pagesPerBlock -
                      plane.blocks[plane.activeBlock].writePtr;
        }
        SIM_INVARIANT_MSG(chk, plane.freePages == expect,
                          "plane %zu free-page ledger %llu != %llu",
                          pl,
                          static_cast<unsigned long long>(
                              plane.freePages),
                          static_cast<unsigned long long>(expect));
    }

    // Every physical program is a host write or a GC relocation.
    SIM_INVARIANT_MSG(
        chk,
        statsData.flashPrograms.value() ==
            statsData.hostWrites.value() +
                statsData.gcRelocations.value(),
        "program conservation: %llu programs != %llu host + %llu GC",
        static_cast<unsigned long long>(statsData.flashPrograms.value()),
        static_cast<unsigned long long>(statsData.hostWrites.value()),
        static_cast<unsigned long long>(
            statsData.gcRelocations.value()));
}

std::uint32_t
Ftl::eraseCountSpread() const
{
    std::uint32_t lo = ~0u, hi = 0;
    for (const Plane &plane : planes) {
        for (const Block &blk : plane.blocks) {
            lo = blk.eraseCount < lo ? blk.eraseCount : lo;
            hi = blk.eraseCount > hi ? blk.eraseCount : hi;
        }
    }
    return hi >= lo ? hi - lo : 0;
}

} // namespace astriflash::flash
