#include "flash_device.hh"

#include "sim/logging.hh"
#include "sim/trace_events.hh"

namespace astriflash::flash {

FlashConfig
FlashConfig::forCapacity(std::uint64_t target_user_bytes)
{
    FlashConfig cfg;
    // Grow channels up to 16, then dies, mirroring how product lines
    // scale capacity with more chips at roughly constant per-chip
    // timing.
    while (cfg.userBytes() < target_user_bytes) {
        if (cfg.channels < 16) {
            cfg.channels *= 2;
        } else if (cfg.diesPerChannel < 16) {
            cfg.diesPerChannel *= 2;
        } else {
            cfg.blocksPerPlane *= 2;
        }
    }
    // Shrink for small targets so scaled-down simulations keep a
    // realistic plane count without GB-scale metadata.
    while (cfg.userBytes() / 2 >= target_user_bytes &&
           cfg.blocksPerPlane > 64) {
        cfg.blocksPerPlane /= 2;
    }
    return cfg;
}

FlashDevice::FlashDevice(std::string name, const FlashConfig &config,
                         std::uint64_t preload_pages)
    : devName(std::move(name)), cfg(config),
      ftlModel(devName + ".ftl", config, preload_pages)
{
    planes.resize(cfg.totalPlanes());
    channelBusy.resize(cfg.channels, 0);
}

std::uint32_t
FlashDevice::channelOf(std::uint32_t plane) const
{
    // Consecutive planes alternate channels so the LPN plane stripe
    // also stripes channels.
    return plane % cfg.channels;
}

FlashReadResult
FlashDevice::read(Lpn lpn, sim::Ticks now,
                  mem::Bytes xfer_bytes)
{
    statsData.reads.inc();
    // aflint-allow-next-line(AF011): channel-occupancy arithmetic.
    std::uint64_t bytes = xfer_bytes.raw();
    if (bytes == 0 || bytes > cfg.pageBytes)
        bytes = cfg.pageBytes;
    const PhysPage loc = ftlModel.translate(lpn);
    PlaneState &plane = planes[loc.plane];
    sim::Ticks &channel = channelBusy[channelOf(loc.plane)];

    FlashReadResult res;
    const sim::Ticks issue = now + cfg.tController;
    res.blockedByGc = plane.gcUntil > issue;

    // Reads queue behind other reads and any active GC burst, but
    // suspend ordinary (writeback) programs.
    sim::Ticks array_start =
        issue > plane.readBusyUntil ? issue : plane.readBusyUntil;
    if (plane.gcUntil > array_start)
        array_start = plane.gcUntil;
    const sim::Ticks array_done = array_start + cfg.tRead;
    plane.readBusyUntil = array_done;

    const sim::Ticks xfer_start =
        array_done > channel ? array_done : channel;
    const sim::Ticks xfer = cfg.tChannelXfer * bytes / cfg.pageBytes;
    const sim::Ticks done = xfer_start + (xfer ? xfer : 1);
    channel = done;

    res.complete = done;
    res.queueing = (array_start - issue) + (xfer_start - array_done);
    if (res.blockedByGc) {
        statsData.gcBlockedReads.inc();
        sim::traceEvent(sim::TracePoint::GcBlocked, now,
                        // aflint-allow-next-line(AF011)
                        sim::TraceRecord::kNoCore, lpn.raw(),
                        plane.gcUntil - issue);
    }
    statsData.readLatency.sample(res.complete - now);
    return res;
}

sim::Ticks
FlashDevice::write(Lpn lpn, sim::Ticks now)
{
    statsData.writes.inc();
    GcWork gc;
    const PhysPage loc = ftlModel.write(lpn, &gc);
    PlaneState &plane = planes[loc.plane];
    sim::Ticks &channel = channelBusy[channelOf(loc.plane)];

    // Host transfer into the device buffer is the visible latency.
    const sim::Ticks issue = now + cfg.tController;
    const sim::Ticks xfer_start = issue > channel ? issue : channel;
    const sim::Ticks acked = xfer_start + cfg.tChannelXfer;
    channel = acked;

    // The program happens behind earlier queued writes; GC
    // relocations are in-plane copybacks (read + program each) plus
    // the erase, and that burst blocks reads too.
    const sim::Ticks prog_start =
        acked > plane.writeBusyUntil ? acked : plane.writeBusyUntil;
    sim::Ticks plane_work = cfg.tProgram;
    if (gc.relocatedPages > 0 || gc.erasedBlocks > 0) {
        plane_work +=
            static_cast<sim::Ticks>(gc.relocatedPages) *
                (cfg.tRead + cfg.tProgram) +
            static_cast<sim::Ticks>(gc.erasedBlocks) * cfg.tErase;
        plane.gcUntil = prog_start + plane_work;
    }
    plane.writeBusyUntil = prog_start + plane_work;

    statsData.writeLatency.sample(acked - now);
    return acked;
}

sim::Ticks
FlashDevice::planeFreeAt(Lpn lpn) const
{
    // Note: const translate via FTL static mapping only; dynamic reads
    // share plane with static location by construction (plane-affine
    // writes), so planeOf is sufficient here.
    const PlaneState &p = planes[ftlModel.planeOf(lpn)];
    return p.readBusyUntil > p.gcUntil ? p.readBusyUntil : p.gcUntil;
}

} // namespace astriflash::flash
