/**
 * @file
 * Device-neutral flash back-end interface.
 *
 * The backside controllers speak flash::FlashCommand over bounded
 * channels; whatever consumes those commands only needs the surface
 * declared here. Backend is that surface: submit a typed command, ask
 * for a conservative read estimate, and expose the aggregate counters
 * the system harness reports. Two concrete models implement it — the
 * page-mapped FTL device (flash_device.hh) and the ZNS/log-structured
 * device (zns_device.hh) — and the FlashFabric (fabric.hh) composes M
 * of either behind the same interface. Core code names Backend and
 * nothing else (aflint AF014 bans the concrete device types from
 * src/core/).
 */

#ifndef ASTRIFLASH_FLASH_BACKEND_HH
#define ASTRIFLASH_FLASH_BACKEND_HH

#include <cstdint>
#include <string>

#include "sim/invariant.hh"
#include "sim/stats.hh"
#include "sim/ticks.hh"

#include "flash_command.hh"

namespace astriflash::flash {

/** Abstract flash device: consumes FlashCommands, reports timing. */
class Backend
{
  public:
    virtual ~Backend() = default;

    /**
     * Submit one typed command at @p now. Reads report completion and
     * queueing; writes report the host-visible buffer-accept tick in
     * @c complete.
     */
    virtual FlashCommandResult submit(const FlashCommand &cmd,
                                      sim::Ticks now) = 0;

    /**
     * Conservative whole-page read latency (controller + array, no
     * queueing) — the estimate the backside controller uses for
     * MSR-stalled misses' dataReady.
     */
    virtual sim::Ticks readEstimate() const = 0;

    /** User capacity in logical pages. */
    virtual std::uint64_t userPages() const = 0;

    /** Page reads served since the last resetStats(). */
    virtual std::uint64_t readsCompleted() const = 0;

    /** Page writes accepted since the last resetStats(). */
    virtual std::uint64_t writesAccepted() const = 0;

    /** Reads that queued behind garbage collection (windowed). */
    virtual std::uint64_t gcBlockedReadCount() const = 0;

    /** Lifetime host page writes (not reset with the window). */
    virtual std::uint64_t hostWrites() const = 0;

    /** Lifetime media programs (host writes + GC relocations). */
    virtual std::uint64_t mediaWrites() const = 0;

    /** Lifetime wear imbalance (erase/reset count spread). */
    virtual std::uint32_t wearSpread() const = 0;

    /** Zero windowed device statistics (end of warmup). Lifetime
     *  media counters (wear, write amplification) are not reset. */
    virtual void resetStats() = 0;

    /** Register this back-end's stats into @p reg. */
    virtual void regStats(sim::StatRegistry &reg) const = 0;

    /** Audit internal consistency. */
    virtual void checkInvariants(sim::InvariantChecker &chk) const = 0;

    /** Media programs per host write (>= 1 once any host write). */
    double
    writeAmplification() const
    {
        const std::uint64_t host = hostWrites();
        return host > 0
                   ? static_cast<double>(mediaWrites()) /
                         static_cast<double>(host)
                   : 1.0;
    }
};

/** Selectable concrete back-end models. */
enum class BackendKind {
    Ftl, ///< Page-mapped FTL device (flash_device.hh).
    Zns, ///< ZNS/log-structured device (zns_device.hh).
};

/** Printable back-end name (the --flash-backend spelling). */
inline const char *
backendKindName(BackendKind kind)
{
    return kind == BackendKind::Zns ? "zns" : "ftl";
}

/** Parse a --flash-backend spelling; false if unrecognized. */
inline bool
parseBackendKind(const std::string &s, BackendKind *out)
{
    if (s == "ftl")
        *out = BackendKind::Ftl;
    else if (s == "zns")
        *out = BackendKind::Zns;
    else
        return false;
    return true;
}

/**
 * Multi-device fan-out parameters: how many devices the fabric
 * stripes logical pages across, and which concrete model each one
 * runs. The defaults (one FTL device) reproduce the single-SSD
 * system byte-identically.
 */
struct FlashFabricConfig {
    std::uint32_t devices = 1;
    BackendKind backend = BackendKind::Ftl;
};

} // namespace astriflash::flash

#endif // ASTRIFLASH_FLASH_BACKEND_HH
