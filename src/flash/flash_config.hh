/**
 * @file
 * NAND flash geometry and timing parameters.
 *
 * Defaults approximate a modern datacenter TLC SSD: ~40 µs array read
 * (tR), page transfer over a shared per-channel bus, ~600 µs program
 * and ~3 ms block erase, yielding the ~50 µs lightly-loaded read
 * latency the paper assumes. Capacity scales by adding channels/dies,
 * which is how the paper's §VI-D argues GC interference shrinks from
 * 4% (256 GB) to <1% (1 TB): more planes per unit of traffic.
 */

#ifndef ASTRIFLASH_FLASH_FLASH_CONFIG_HH
#define ASTRIFLASH_FLASH_FLASH_CONFIG_HH

#include <cstdint>

#include "sim/ticks.hh"

namespace astriflash::flash {

/** Geometry and timing of one SSD. */
struct FlashConfig {
    // Geometry.
    std::uint32_t channels = 8;
    std::uint32_t diesPerChannel = 4;
    std::uint32_t planesPerDie = 2;
    std::uint64_t blocksPerPlane = 1024;
    std::uint32_t pagesPerBlock = 256;
    std::uint64_t pageBytes = 4096;

    // Timing.
    sim::Ticks tRead = sim::microseconds(40);     ///< Array read (tR).
    sim::Ticks tProgram = sim::microseconds(600); ///< Page program.
    sim::Ticks tErase = sim::milliseconds(3);     ///< Block erase.
    sim::Ticks tChannelXfer = sim::microseconds(3); ///< 4 KB bus xfer.
    sim::Ticks tController = sim::microseconds(5);  ///< FW + ECC + queue.

    // FTL policy.
    double overprovisionRatio = 0.07;  ///< Spare blocks fraction.
    std::uint32_t gcFreeBlockLow = 4;  ///< Start GC below this many
                                       ///< free blocks per plane.

    /** Raw capacity in bytes (including overprovisioning). */
    std::uint64_t
    rawBytes() const
    {
        return static_cast<std::uint64_t>(channels) * diesPerChannel *
               planesPerDie * blocksPerPlane * pagesPerBlock * pageBytes;
    }

    /** User-visible capacity in bytes (raw minus overprovisioning). */
    std::uint64_t
    userBytes() const
    {
        return static_cast<std::uint64_t>(
            static_cast<double>(rawBytes()) *
            (1.0 - overprovisionRatio));
    }

    /** User-visible capacity in 4 KB logical pages. */
    std::uint64_t userPages() const { return userBytes() / pageBytes; }

    std::uint32_t
    totalPlanes() const
    {
        return channels * diesPerChannel * planesPerDie;
    }

    /**
     * Scale geometry (channels, then dies) to reach at least
     * @p target_user_bytes of user capacity, mimicking how larger SSDs
     * ship with more chips rather than slower ones.
     */
    static FlashConfig forCapacity(std::uint64_t target_user_bytes);
};

} // namespace astriflash::flash

#endif // ASTRIFLASH_FLASH_FLASH_CONFIG_HH
