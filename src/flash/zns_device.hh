/**
 * @file
 * ZNS/log-structured flash device (after Flashield/Nemo's
 * log-structured flash stores).
 *
 * The second concrete flash::Backend: instead of a page-mapped FTL,
 * the device is an array of append-only zones (one zone per physical
 * block). Host overwrites invalidate the old copy in place and append
 * the new one at the plane's open zone; when a plane runs low on free
 * zones the device relocates the victim zone's still-valid pages and
 * resets it. Write amplification and GC invalidations are first-class
 * statistics — the log's cleaning cost is the whole point of modelling
 * it — while the plane/channel timing (read priority over programs,
 * GC bursts blocking reads) matches flash_device.hh so the two
 * back-ends are timing-comparable.
 */

#ifndef ASTRIFLASH_FLASH_ZNS_DEVICE_HH
#define ASTRIFLASH_FLASH_ZNS_DEVICE_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/address.hh"
#include "sim/invariant.hh"
#include "sim/stats.hh"
#include "sim/ticks.hh"

#include "backend.hh"
#include "flash_command.hh"
#include "flash_config.hh"
#include "flash_types.hh"

namespace astriflash::flash {

/** Append-only zoned SSD; zones map 1:1 onto physical blocks. */
class ZnsDevice : public Backend
{
  public:
    /** Windowed device-level counters (reset at end of warmup). */
    struct Stats {
        sim::Counter reads;
        sim::Counter writes;
        sim::Counter gcBlockedReads;
        sim::Histogram readLatency;  ///< End-to-end ticks.
        sim::Histogram writeLatency; ///< Host-visible (ack) ticks.
    };

    /** Lifetime log-cleaning ledger (never reset; wear/WA are
     *  cumulative properties of the media). */
    struct LogStats {
        sim::Counter hostWrites;
        sim::Counter zoneAppends;     ///< Media programs (host + GC).
        sim::Counter gcRelocations;   ///< Valid pages moved by GC.
        sim::Counter gcInvalidations; ///< Stale pages reclaimed by GC.
        sim::Counter zoneResets;
    };

    /**
     * @param preload_pages  Logical pages pre-loaded as the dataset
     *                       (default: full user capacity).
     */
    ZnsDevice(std::string name, const FlashConfig &config,
              std::uint64_t preload_pages = ~std::uint64_t{0});

    FlashCommandResult submit(const FlashCommand &cmd,
                              sim::Ticks now) override;

    sim::Ticks
    readEstimate() const override
    {
        return 2 * (cfg.tRead + cfg.tController);
    }

    std::uint64_t
    userPages() const override
    {
        return cfg.userPages();
    }

    std::uint64_t
    readsCompleted() const override
    {
        return statsData.reads.value();
    }

    std::uint64_t
    writesAccepted() const override
    {
        return statsData.writes.value();
    }

    std::uint64_t
    gcBlockedReadCount() const override
    {
        return statsData.gcBlockedReads.value();
    }

    std::uint64_t
    hostWrites() const override
    {
        return logData.hostWrites.value();
    }

    std::uint64_t
    mediaWrites() const override
    {
        return logData.zoneAppends.value();
    }

    /** Zone reset-count spread (the log's wear imbalance). */
    std::uint32_t wearSpread() const override;

    void
    resetStats() override
    {
        statsData = Stats{};
    }

    /**
     * Register device stats into @p reg; the cleaning ledger lands in
     * a "log" child registry with write_amplification as a scalar.
     */
    void regStats(sim::StatRegistry &reg) const override;

    /**
     * Audit the log: append conservation (every media program is a
     * host write or a GC relocation), reclaim conservation (every
     * reset zone's pages were relocated or invalidated), the mapping's
     * owner back-pointers, and the per-plane free-zone ledgers.
     */
    void checkInvariants(sim::InvariantChecker &chk) const override;

    const Stats &stats() const { return statsData; }
    const LogStats &logStats() const { return logData; }
    const FlashConfig &config() const { return cfg; }

  private:
    /** Physical location of one logical page inside the zone array. */
    struct Loc {
        std::uint32_t plane = 0;
        std::uint32_t zone = 0; ///< Block index within the plane.
        std::uint32_t page = 0; ///< Append offset within the zone.
    };

    /** One zone = one physical block, written strictly in order. */
    struct Zone {
        std::uint32_t writePtr = 0;
        std::uint32_t validPages = 0;
        std::uint32_t resetCount = 0;
        /** Owning LPN per written page; lazily materialized for the
         *  statically pre-loaded zones (kInvalidLpn = stale). */
        std::vector<Lpn> owners;
    };

    struct PlaneLog {
        std::vector<Zone> zones;
        std::uint32_t openZone = 0;
        std::uint32_t freeZones = 0;
    };

    /** Busy-until timing, identical in structure to flash_device.hh:
     *  reads suspend programs; GC bursts block the whole plane. */
    struct PlaneState {
        sim::Ticks readBusyUntil = 0;
        sim::Ticks writeBusyUntil = 0;
        sim::Ticks gcUntil = 0;
    };

    std::uint32_t planeOf(Lpn lpn) const;
    std::uint32_t channelOf(std::uint32_t plane) const;
    Loc translate(Lpn lpn) const;

    /** Fill in a sealed static zone's owner list on first mutation. */
    void materializeOwners(std::uint32_t plane_idx, std::uint32_t zone);

    /** Mark @p lpn's current copy stale. */
    void invalidateOld(Lpn lpn);

    /** Append one page at @p plane_idx's open zone. */
    Loc append(std::uint32_t plane_idx);

    /** Reclaim zones in @p plane_idx until freeZones >= threshold.
     *  @return pages relocated and zones reset (for the GC burst). */
    std::pair<std::uint32_t, std::uint32_t>
    cleanPlane(std::uint32_t plane_idx);

    FlashCommandResult read(Lpn lpn, sim::Ticks now, mem::Bytes bytes);
    FlashCommandResult write(Lpn lpn, sim::Ticks now);

    std::string devName;
    FlashConfig cfg;
    std::uint64_t preloaded;
    std::vector<PlaneLog> logPlanes;
    std::vector<PlaneState> planes;
    std::vector<sim::Ticks> channelBusy;
    std::unordered_map<Lpn, Loc> mapping; ///< Overrides of the static
                                          ///< pre-load layout.
    Stats statsData;
    LogStats logData;
    double writeAmpValue = 1.0; ///< Registered scalar, kept current.
};

} // namespace astriflash::flash

#endif // ASTRIFLASH_FLASH_ZNS_DEVICE_HH
