/**
 * @file
 * Strong identifier types for the flash translation layer.
 *
 * An Lpn (logical page number, the host-visible index the address map
 * produces) and a Ppn (physical page number, the FTL's packed
 * plane/block/page location) are different namespaces entirely;
 * keeping both as strong types means translate() cannot be fed its own
 * output and a byte address cannot masquerade as either.
 */

#ifndef ASTRIFLASH_FLASH_FLASH_TYPES_HH
#define ASTRIFLASH_FLASH_FLASH_TYPES_HH

#include <cstdint>

#include "sim/strong_types.hh"

namespace astriflash::flash {

/** Logical page number: dataset byte offset / page size. */
using Lpn = sim::StrongId<struct LpnTag>;

/** Packed physical page number: (plane << 40) | (block << 16) | page. */
using Ppn = sim::StrongId<struct PpnTag>;

/** Sentinel for "no logical page" (unmapped physical page owner). */
inline constexpr Lpn kInvalidLpn{~std::uint64_t{0}};

/**
 * Index of the fabric device serving @p lpn when logical pages are
 * striped round-robin across @p devices SSDs (fabric.hh). This is the
 * sanctioned Lpn -> device-index conversion; with one device every
 * page lands on device 0.
 */
constexpr std::uint32_t
lpnDevice(Lpn lpn, std::uint32_t devices)
{
    return static_cast<std::uint32_t>(lpn.raw() % devices);
}

/** Device-local logical page number of @p lpn under that striping. */
constexpr Lpn
lpnLocal(Lpn lpn, std::uint32_t devices)
{
    return Lpn(lpn.raw() / devices);
}

} // namespace astriflash::flash

#endif // ASTRIFLASH_FLASH_FLASH_TYPES_HH
