#include "zns_device.hh"

#include "sim/logging.hh"
#include "sim/trace_events.hh"

namespace astriflash::flash {

ZnsDevice::ZnsDevice(std::string name, const FlashConfig &config,
                     std::uint64_t preload_pages)
    : devName(std::move(name)), cfg(config),
      preloaded(preload_pages == ~std::uint64_t{0}
                    ? config.userPages()
                    : preload_pages)
{
    if (cfg.pagesPerBlock == 0 || cfg.blocksPerPlane == 0)
        ASTRI_FATAL("%s: empty flash geometry", devName.c_str());
    if (preloaded > cfg.userPages())
        ASTRI_FATAL("%s: preload %llu exceeds user capacity %llu",
                    devName.c_str(),
                    static_cast<unsigned long long>(preloaded),
                    static_cast<unsigned long long>(cfg.userPages()));

    const std::uint32_t nplanes = cfg.totalPlanes();
    logPlanes.resize(nplanes);
    planes.resize(nplanes);
    channelBusy.resize(cfg.channels, 0);

    // Pre-load the dataset exactly like the FTL device: the first
    // zones of each plane are sealed full of statically-striped
    // logical pages; the remainder start free.
    for (std::uint32_t pl = 0; pl < nplanes; ++pl) {
        PlaneLog &plane = logPlanes[pl];
        plane.zones.resize(cfg.blocksPerPlane);
        const std::uint64_t plane_pages =
            preloaded / nplanes + (pl < preloaded % nplanes ? 1 : 0);
        const std::uint64_t full_zones = plane_pages / cfg.pagesPerBlock;
        const std::uint32_t partial = static_cast<std::uint32_t>(
            plane_pages % cfg.pagesPerBlock);
        for (std::uint64_t z = 0; z < cfg.blocksPerPlane; ++z) {
            Zone &zone = plane.zones[z];
            if (z < full_zones) {
                zone.validPages = cfg.pagesPerBlock;
                zone.writePtr = cfg.pagesPerBlock;
            } else if (z == full_zones && partial > 0) {
                zone.validPages = partial;
                zone.writePtr = partial;
            } else {
                ++plane.freeZones;
            }
        }
        // The partially-filled preload zone continues as the log
        // head; a fully-struck plane opens the first empty zone.
        plane.openZone = static_cast<std::uint32_t>(full_zones);
        if (partial == 0 && full_zones < cfg.blocksPerPlane)
            --plane.freeZones; // claimed an empty zone as the head
    }
}

std::uint32_t
ZnsDevice::planeOf(Lpn lpn) const
{
    // Plane striping is modular arithmetic on the logical page index.
    // aflint-allow-next-line(AF011)
    return static_cast<std::uint32_t>(lpn.raw() % cfg.totalPlanes());
}

std::uint32_t
ZnsDevice::channelOf(std::uint32_t plane) const
{
    return plane % cfg.channels;
}

ZnsDevice::Loc
ZnsDevice::translate(Lpn lpn) const
{
    if (auto it = mapping.find(lpn); it != mapping.end())
        return it->second;
    // Stripe math and diagnostics below.
    // aflint-allow-next-line(AF011)
    const std::uint64_t lpn_raw = lpn.raw();
    ASTRI_ASSERT_MSG(lpn < Lpn(preloaded),
                     "read of unwritten lpn %llu beyond the preloaded "
                     "dataset",
                     static_cast<unsigned long long>(lpn_raw));
    Loc loc;
    loc.plane = planeOf(lpn);
    const std::uint64_t idx = lpn_raw / cfg.totalPlanes();
    loc.zone = static_cast<std::uint32_t>(idx / cfg.pagesPerBlock);
    loc.page = static_cast<std::uint32_t>(idx % cfg.pagesPerBlock);
    return loc;
}

void
ZnsDevice::materializeOwners(std::uint32_t plane_idx,
                             std::uint32_t zone_idx)
{
    Zone &zone = logPlanes[plane_idx].zones[zone_idx];
    if (!zone.owners.empty() || zone.writePtr == 0)
        return;
    zone.owners.assign(cfg.pagesPerBlock, kInvalidLpn);
    for (std::uint32_t pg = 0; pg < zone.writePtr; ++pg) {
        const Lpn static_lpn{
            (static_cast<std::uint64_t>(zone_idx) * cfg.pagesPerBlock +
             pg) * cfg.totalPlanes() + plane_idx};
        if (static_lpn < Lpn(preloaded))
            zone.owners[pg] = static_lpn;
    }
}

void
ZnsDevice::invalidateOld(Lpn lpn)
{
    const Loc old = translate(lpn);
    materializeOwners(old.plane, old.zone);
    Zone &zone = logPlanes[old.plane].zones[old.zone];
    if (!zone.owners.empty() && zone.owners[old.page] != kInvalidLpn) {
        zone.owners[old.page] = kInvalidLpn;
        ASTRI_ASSERT(zone.validPages > 0);
        --zone.validPages;
    }
}

ZnsDevice::Loc
ZnsDevice::append(std::uint32_t plane_idx)
{
    PlaneLog &plane = logPlanes[plane_idx];
    ASTRI_ASSERT_MSG(plane.openZone < cfg.blocksPerPlane,
                     "%s: plane %u has no open zone", devName.c_str(),
                     plane_idx);
    Zone *zone = &plane.zones[plane.openZone];
    if (zone->writePtr >= cfg.pagesPerBlock) {
        // Seal and advance to the next free zone.
        const auto num_zones =
            static_cast<std::uint32_t>(cfg.blocksPerPlane);
        std::uint32_t next = num_zones;
        for (std::uint32_t z = 0; z < num_zones; ++z) {
            const Zone &cand = plane.zones[z];
            if (cand.writePtr == 0 && cand.validPages == 0) {
                next = z;
                break;
            }
        }
        ASTRI_ASSERT_MSG(next < cfg.blocksPerPlane,
                         "%s: plane %u out of free zones "
                         "(overprovisioning exhausted)",
                         devName.c_str(), plane_idx);
        plane.openZone = next;
        ASTRI_ASSERT(plane.freeZones > 0);
        --plane.freeZones;
        zone = &plane.zones[next];
    }
    // A partially-preloaded zone serving as the log head must pin its
    // static owners before the first append lands on top of them.
    materializeOwners(plane_idx, plane.openZone);
    if (zone->owners.empty())
        zone->owners.assign(cfg.pagesPerBlock, kInvalidLpn);
    Loc out;
    out.plane = plane_idx;
    out.zone = plane.openZone;
    out.page = zone->writePtr;
    ++zone->writePtr;
    return out;
}

std::pair<std::uint32_t, std::uint32_t>
ZnsDevice::cleanPlane(std::uint32_t plane_idx)
{
    PlaneLog &plane = logPlanes[plane_idx];
    std::uint32_t relocated = 0;
    std::uint32_t zones_reset = 0;

    while (plane.freeZones < cfg.gcFreeBlockLow) {
        // Writable slots left: the open zone's tail plus the free
        // pool. A victim is only safe if its valid pages fit —
        // otherwise relocation itself would exhaust the free zones
        // before the reset hands one back.
        const Zone &head = plane.zones[plane.openZone];
        const std::uint64_t avail =
            (head.writePtr < cfg.pagesPerBlock
                 ? cfg.pagesPerBlock - head.writePtr
                 : 0) +
            std::uint64_t{plane.freeZones} * cfg.pagesPerBlock;
        // Greedy victim: the sealed, non-open zone with the fewest
        // still-valid pages (ties break toward the least-worn zone).
        std::uint32_t victim_idx = ~0u;
        for (std::uint32_t z = 0; z < cfg.blocksPerPlane; ++z) {
            const Zone &zone = plane.zones[z];
            if (z == plane.openZone ||
                zone.writePtr < cfg.pagesPerBlock ||
                zone.validPages == cfg.pagesPerBlock ||
                zone.validPages > avail) {
                continue;
            }
            if (victim_idx == ~0u) {
                victim_idx = z;
                continue;
            }
            const Zone &cur = plane.zones[victim_idx];
            if (zone.validPages < cur.validPages ||
                (zone.validPages == cur.validPages &&
                 zone.resetCount < cur.resetCount)) {
                victim_idx = z;
            }
        }
        if (victim_idx == ~0u)
            break; // nothing reclaimable; appends will hit the wall

        materializeOwners(plane_idx, victim_idx);
        Zone &victim = plane.zones[victim_idx];
        for (std::uint32_t pg = 0; pg < cfg.pagesPerBlock; ++pg) {
            const Lpn lpn = victim.owners[pg];
            if (lpn == kInvalidLpn) {
                // A host overwrite left this copy stale; the reset
                // reclaims it — the log's payoff for relocation work.
                logData.gcInvalidations.inc();
                continue;
            }
            const Loc dst = append(plane_idx);
            Zone &dst_zone = plane.zones[dst.zone];
            dst_zone.owners[dst.page] = lpn;
            ++dst_zone.validPages;
            mapping[lpn] = dst;
            ++relocated;
            logData.gcRelocations.inc();
            logData.zoneAppends.inc();
        }
        victim.validPages = 0;
        victim.writePtr = 0;
        victim.owners.clear();
        victim.owners.shrink_to_fit();
        ++victim.resetCount;
        ++plane.freeZones;
        ++zones_reset;
        logData.zoneResets.inc();
    }
    return {relocated, zones_reset};
}

FlashCommandResult
ZnsDevice::read(Lpn lpn, sim::Ticks now, mem::Bytes xfer_bytes)
{
    statsData.reads.inc();
    // aflint-allow-next-line(AF011): channel-occupancy arithmetic.
    std::uint64_t bytes = xfer_bytes.raw();
    if (bytes == 0 || bytes > cfg.pageBytes)
        bytes = cfg.pageBytes;
    const Loc loc = translate(lpn);
    PlaneState &plane = planes[loc.plane];
    sim::Ticks &channel = channelBusy[channelOf(loc.plane)];

    FlashCommandResult res;
    const sim::Ticks issue = now + cfg.tController;
    res.blockedByGc = plane.gcUntil > issue;

    sim::Ticks array_start =
        issue > plane.readBusyUntil ? issue : plane.readBusyUntil;
    if (plane.gcUntil > array_start)
        array_start = plane.gcUntil;
    const sim::Ticks array_done = array_start + cfg.tRead;
    plane.readBusyUntil = array_done;

    const sim::Ticks xfer_start =
        array_done > channel ? array_done : channel;
    const sim::Ticks xfer = cfg.tChannelXfer * bytes / cfg.pageBytes;
    const sim::Ticks done = xfer_start + (xfer ? xfer : 1);
    channel = done;

    res.complete = done;
    res.queueing = (array_start - issue) + (xfer_start - array_done);
    if (res.blockedByGc) {
        statsData.gcBlockedReads.inc();
        sim::traceEvent(sim::TracePoint::GcBlocked, now,
                        // aflint-allow-next-line(AF011)
                        sim::TraceRecord::kNoCore, lpn.raw(),
                        plane.gcUntil - issue);
    }
    statsData.readLatency.sample(res.complete - now);
    return res;
}

FlashCommandResult
ZnsDevice::write(Lpn lpn, sim::Ticks now)
{
    // aflint-allow-next-line(AF011): diagnostics formatting.
    const unsigned long long lpn_raw = lpn.raw();
    ASTRI_ASSERT_MSG(lpn < Lpn(preloaded),
                     "write of lpn %llu beyond the preloaded dataset",
                     lpn_raw);
    statsData.writes.inc();
    logData.hostWrites.inc();

    invalidateOld(lpn);
    const std::uint32_t plane_idx = planeOf(lpn);
    std::uint32_t relocated = 0;
    std::uint32_t zones_reset = 0;
    {
        // Emergency clean: the log head is full and the free pool is
        // empty, so the append below would have nowhere to land. The
        // invalidation above guarantees at least one stale page, so
        // cleaning can make progress.
        PlaneLog &pl_log = logPlanes[plane_idx];
        if (pl_log.freeZones == 0 &&
            pl_log.openZone < cfg.blocksPerPlane &&
            pl_log.zones[pl_log.openZone].writePtr >=
                cfg.pagesPerBlock) {
            const auto work = cleanPlane(plane_idx);
            relocated += work.first;
            zones_reset += work.second;
        }
    }
    const Loc dst = append(plane_idx);
    Zone &zone = logPlanes[plane_idx].zones[dst.zone];
    zone.owners[dst.page] = lpn;
    ++zone.validPages;
    mapping[lpn] = dst;
    logData.zoneAppends.inc();

    if (logPlanes[plane_idx].freeZones < cfg.gcFreeBlockLow) {
        const auto work = cleanPlane(plane_idx);
        relocated += work.first;
        zones_reset += work.second;
    }
    writeAmpValue =
        static_cast<double>(logData.zoneAppends.value()) /
        static_cast<double>(logData.hostWrites.value());

    // Host transfer into the device buffer is the visible latency;
    // the append program and any cleaning burst occupy the plane
    // asynchronously afterwards, blocking reads during the burst.
    PlaneState &plane = planes[plane_idx];
    sim::Ticks &channel = channelBusy[channelOf(plane_idx)];
    const sim::Ticks issue = now + cfg.tController;
    const sim::Ticks xfer_start = issue > channel ? issue : channel;
    const sim::Ticks acked = xfer_start + cfg.tChannelXfer;
    channel = acked;

    const sim::Ticks prog_start =
        acked > plane.writeBusyUntil ? acked : plane.writeBusyUntil;
    sim::Ticks plane_work = cfg.tProgram;
    if (relocated > 0 || zones_reset > 0) {
        plane_work +=
            static_cast<sim::Ticks>(relocated) *
                (cfg.tRead + cfg.tProgram) +
            static_cast<sim::Ticks>(zones_reset) * cfg.tErase;
        plane.gcUntil = prog_start + plane_work;
    }
    plane.writeBusyUntil = prog_start + plane_work;

    statsData.writeLatency.sample(acked - now);
    FlashCommandResult res;
    res.complete = acked;
    return res;
}

FlashCommandResult
ZnsDevice::submit(const FlashCommand &cmd, sim::Ticks now)
{
    if (cmd.op == FlashCommand::Op::Read)
        return read(cmd.lpn, now, cmd.bytes);
    return write(cmd.lpn, now);
}

std::uint32_t
ZnsDevice::wearSpread() const
{
    std::uint32_t lo = ~0u, hi = 0;
    for (const PlaneLog &plane : logPlanes) {
        for (const Zone &zone : plane.zones) {
            lo = zone.resetCount < lo ? zone.resetCount : lo;
            hi = zone.resetCount > hi ? zone.resetCount : hi;
        }
    }
    return hi >= lo ? hi - lo : 0;
}

void
ZnsDevice::regStats(sim::StatRegistry &reg) const
{
    reg.registerCounter("reads", &statsData.reads,
                        "page reads served by the device");
    reg.registerCounter("writes", &statsData.writes,
                        "page writes accepted by the device");
    reg.registerCounter("gc_blocked_reads", &statsData.gcBlockedReads,
                        "reads that queued behind zone cleaning");
    reg.registerHistogram("read_latency", &statsData.readLatency,
                          "end-to-end read latency in ticks");
    reg.registerHistogram("write_latency", &statsData.writeLatency,
                          "host-visible write-ack latency in ticks");
    auto &log = reg.subRegistry("log");
    log.registerCounter("host_writes", &logData.hostWrites,
                        "page writes requested by the host");
    log.registerCounter("zone_appends", &logData.zoneAppends,
                        "media programs (host appends + relocations)");
    log.registerCounter("gc_relocations", &logData.gcRelocations,
                        "valid pages relocated by zone cleaning");
    log.registerCounter("gc_invalidations", &logData.gcInvalidations,
                        "stale pages reclaimed by zone resets");
    log.registerCounter("zone_resets", &logData.zoneResets,
                        "zones erased and returned to the free pool");
    log.registerScalar("write_amplification", &writeAmpValue,
                       "media programs per host write");
}

void
ZnsDevice::checkInvariants(sim::InvariantChecker &chk) const
{
    SIM_INVARIANT(chk, planes.size() == cfg.totalPlanes());
    SIM_INVARIANT(chk, logPlanes.size() == cfg.totalPlanes());
    SIM_INVARIANT(chk, channelBusy.size() == cfg.channels);
    SIM_INVARIANT(chk,
                  statsData.gcBlockedReads.value() <=
                      statsData.reads.value());
    SIM_INVARIANT(chk,
                  statsData.readLatency.count() ==
                      statsData.reads.value());
    SIM_INVARIANT(chk,
                  statsData.writeLatency.count() ==
                      statsData.writes.value());

    // Append conservation: every media program is a host write or a
    // GC relocation.
    SIM_INVARIANT_MSG(
        chk,
        logData.zoneAppends.value() ==
            logData.hostWrites.value() + logData.gcRelocations.value(),
        "append conservation: %llu appends != %llu host + %llu GC",
        static_cast<unsigned long long>(logData.zoneAppends.value()),
        static_cast<unsigned long long>(logData.hostWrites.value()),
        static_cast<unsigned long long>(
            logData.gcRelocations.value()));
    // Reclaim conservation: every page of every reset zone was either
    // relocated or reclaimed as stale.
    SIM_INVARIANT_MSG(
        chk,
        logData.gcRelocations.value() +
                logData.gcInvalidations.value() ==
            logData.zoneResets.value() * cfg.pagesPerBlock,
        "reclaim conservation: %llu relocated + %llu invalidated != "
        "%llu resets * %u pages",
        static_cast<unsigned long long>(logData.gcRelocations.value()),
        static_cast<unsigned long long>(
            logData.gcInvalidations.value()),
        static_cast<unsigned long long>(logData.zoneResets.value()),
        cfg.pagesPerBlock);

    // Mapping overrides stay in bounds, on their stripe plane, with
    // agreeing owner back-pointers.
    // Audit-only, order-insensitive walk (baselined AF015).
    for (const auto &[lpn, loc] : mapping) {
        // aflint-allow-next-line(AF011): diagnostics formatting.
        const unsigned long long lpn_raw = lpn.raw();
        SIM_INVARIANT_MSG(chk, lpn < Lpn(preloaded),
                          "mapped lpn %llu beyond the dataset",
                          lpn_raw);
        SIM_INVARIANT_MSG(chk,
                          loc.plane < logPlanes.size() &&
                              loc.zone < cfg.blocksPerPlane &&
                              loc.page < cfg.pagesPerBlock,
                          "lpn %llu maps out of bounds (%u/%u/%u)",
                          lpn_raw, loc.plane, loc.zone, loc.page);
        SIM_INVARIANT_MSG(chk, planeOf(lpn) == loc.plane,
                          "lpn %llu mapped off its stripe plane %u",
                          lpn_raw, loc.plane);
        const Zone &zone = logPlanes[loc.plane].zones[loc.zone];
        SIM_INVARIANT_MSG(chk,
                          !zone.owners.empty() &&
                              zone.owners[loc.page] == lpn,
                          "owner back-pointer disagrees for lpn %llu",
                          lpn_raw);
    }

    // Zone-level consistency and the per-plane free-zone ledger.
    for (std::size_t pl = 0; pl < logPlanes.size(); ++pl) {
        const PlaneLog &plane = logPlanes[pl];
        std::uint32_t free_zones = 0;
        for (std::size_t z = 0; z < plane.zones.size(); ++z) {
            const Zone &zone = plane.zones[z];
            SIM_INVARIANT_MSG(chk,
                              zone.validPages <= zone.writePtr &&
                                  zone.writePtr <= cfg.pagesPerBlock,
                              "plane %zu zone %zu: valid %u > "
                              "written %u (cap %u)",
                              pl, z, zone.validPages, zone.writePtr,
                              cfg.pagesPerBlock);
            if (!zone.owners.empty()) {
                std::uint32_t owned = 0;
                for (const Lpn owner : zone.owners) {
                    if (owner != kInvalidLpn)
                        ++owned;
                }
                SIM_INVARIANT_MSG(chk, owned == zone.validPages,
                                  "plane %zu zone %zu: %u owners but "
                                  "%u valid pages",
                                  pl, z, owned, zone.validPages);
            }
            if (zone.writePtr == 0 && zone.validPages == 0 &&
                z != plane.openZone) {
                ++free_zones;
            }
        }
        SIM_INVARIANT_MSG(chk, plane.freeZones == free_zones,
                          "plane %zu counts %u free zones, found %u",
                          pl, plane.freeZones, free_zones);
    }
}

} // namespace astriflash::flash
