/**
 * @file
 * Typed SSD command message.
 *
 * This is the payload of the backside controller's BC→flash command
 * channel: a plain description of one device operation, free of any
 * reference to the device model itself, so the producer side never
 * needs to name (or link against) FlashDevice. The facade that owns
 * the channel submits commands via FlashDevice::submit().
 */

#ifndef ASTRIFLASH_FLASH_FLASH_COMMAND_HH
#define ASTRIFLASH_FLASH_FLASH_COMMAND_HH

#include "mem/address.hh"
#include "sim/ticks.hh"

#include "flash_types.hh"

namespace astriflash::flash {

/** One SSD operation (a fill read or a victim writeback). */
struct FlashCommand {
    enum class Op {
        Read,  ///< Page read toward the host.
        Write, ///< Page program (host-visible ack at buffer accept).
    };

    Op op = Op::Read;
    Lpn lpn{0};
    /** Reads: bytes transferred to the host (0 = whole page; footprint
     *  mode shortens the channel occupancy). Ignored for writes. */
    mem::Bytes bytes{0};
};

/** Completion information for one submitted command. */
struct FlashCommandResult {
    /** Reads: data available at host. Writes: device accepted the
     *  page into its buffer (the program proceeds asynchronously). */
    sim::Ticks complete = 0;
    sim::Ticks queueing = 0;  ///< Reads: wait for plane+channel.
    bool blockedByGc = false; ///< Reads: plane was erasing/relocating.
};

} // namespace astriflash::flash

#endif // ASTRIFLASH_FLASH_FLASH_COMMAND_HH
