/**
 * @file
 * Multi-device flash fabric.
 *
 * Composes M concrete back-ends (all the same BackendKind) behind the
 * single Backend interface the backside controllers and the OS paging
 * model consume. Logical pages are striped round-robin across devices
 * (lpnDevice/lpnLocal in flash_types.hh), so with M == 1 every command
 * routes to device 0 with its LPN unchanged and the fabric is a
 * zero-cost pass-through — the property the golden-stats byte-identity
 * tests pin down.
 *
 * Stat naming: with one device its stats register directly under the
 * fabric's registry (the legacy "flash.*" namespace); with more they
 * land in "dev<j>" child registries ("flash.dev<j>.*").
 */

#ifndef ASTRIFLASH_FLASH_FABRIC_HH
#define ASTRIFLASH_FLASH_FABRIC_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "backend.hh"
#include "flash_command.hh"
#include "flash_config.hh"
#include "flash_types.hh"

namespace astriflash::flash {

/** M striped flash devices behind one Backend surface. */
class FlashFabric : public Backend
{
  public:
    /**
     * @param dev_cfg        Geometry/timing applied to every device
     *                       (the caller sizes it per device).
     * @param fabric_cfg     Device count and concrete model kind.
     * @param preload_pages  Fabric-wide logical pages pre-loaded as
     *                       the dataset, split across devices by the
     *                       same striping submit() routes with.
     */
    FlashFabric(std::string name, const FlashConfig &dev_cfg,
                const FlashFabricConfig &fabric_cfg,
                std::uint64_t preload_pages);

    FlashCommandResult
    submit(const FlashCommand &cmd, sim::Ticks now) override
    {
        const std::uint32_t dev = lpnDevice(cmd.lpn, deviceCount());
        FlashCommand local = cmd;
        local.lpn = lpnLocal(cmd.lpn, deviceCount());
        return devs[dev]->submit(local, now);
    }

    sim::Ticks
    readEstimate() const override
    {
        return devs.front()->readEstimate();
    }

    /** Fabric-wide user capacity: sum over devices. */
    std::uint64_t userPages() const override;

    std::uint64_t readsCompleted() const override;
    std::uint64_t writesAccepted() const override;
    std::uint64_t gcBlockedReadCount() const override;
    std::uint64_t hostWrites() const override;
    std::uint64_t mediaWrites() const override;

    /** Worst per-device wear imbalance. */
    std::uint32_t wearSpread() const override;

    void resetStats() override;

    /** One device: stats register directly (legacy names); several:
     *  each device lands in a "dev<j>" child registry. */
    void regStats(sim::StatRegistry &reg) const override;

    void checkInvariants(sim::InvariantChecker &chk) const override;

    std::uint32_t
    deviceCount() const
    {
        return static_cast<std::uint32_t>(devs.size());
    }

    Backend &device(std::uint32_t j) { return *devs[j]; }
    const Backend &device(std::uint32_t j) const { return *devs[j]; }

    BackendKind backendKind() const { return kind; }
    const FlashConfig &deviceConfig() const { return cfg; }

  private:
    std::string fabName;
    FlashConfig cfg;
    BackendKind kind;
    std::vector<std::unique_ptr<Backend>> devs;
};

} // namespace astriflash::flash

#endif // ASTRIFLASH_FLASH_FABRIC_HH
