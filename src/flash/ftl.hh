/**
 * @file
 * Page-mapped Flash Translation Layer with greedy GC and wear leveling.
 *
 * Tracks logical-page -> physical-page mappings, allocates writes
 * out-of-place at each plane's write frontier, reclaims space with a
 * greedy (min-valid-pages) garbage collector that breaks ties toward
 * low-erase-count blocks (wear leveling), and performs block erasure
 * only in the local plane — the Tiny-Tail-style policy the paper cites
 * for bounding GC interference.
 */

#ifndef ASTRIFLASH_FLASH_FTL_HH
#define ASTRIFLASH_FLASH_FTL_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/invariant.hh"
#include "sim/stats.hh"

#include "flash_config.hh"
#include "flash_types.hh"

namespace astriflash::flash {

/** Physical location of one flash page. */
struct PhysPage {
    std::uint32_t plane = 0; ///< Global plane index.
    std::uint32_t block = 0; ///< Block within the plane.
    std::uint32_t page = 0;  ///< Page within the block.
};

/** Work performed by one garbage-collection invocation. */
struct GcWork {
    std::uint32_t plane = 0;
    std::uint32_t relocatedPages = 0; ///< Valid pages moved.
    std::uint32_t erasedBlocks = 0;
};

/**
 * Page-mapped FTL.
 *
 * Logical pages are striped across planes (LPN % planes) so a random
 * or skewed read stream exercises the full plane-level parallelism,
 * as real SSD firmware arranges.
 */
class Ftl
{
  public:
    struct Stats {
        sim::Counter hostWrites;    ///< Logical page writes.
        sim::Counter flashPrograms; ///< Physical programs (incl. GC).
        sim::Counter gcInvocations;
        sim::Counter gcRelocations;
        sim::Counter erases;

        /** Write amplification factor (programs / host writes). */
        double
        writeAmplification() const
        {
            return hostWrites.value()
                ? static_cast<double>(flashPrograms.value()) /
                      static_cast<double>(hostWrites.value())
                : 1.0;
        }
    };

    /**
     * @param preload_pages  Logical pages pre-loaded as valid data
     *                       (the dataset). Defaults to the full user
     *                       capacity; systems pass their dataset size
     *                       so spare blocks remain for out-of-place
     *                       writes and GC headroom.
     */
    Ftl(std::string name, const FlashConfig &config,
        std::uint64_t preload_pages = ~std::uint64_t{0});

    /**
     * Resolve the physical location of logical page @p lpn for a read.
     * Unwritten pages are deterministically assigned a location on
     * first touch (datasets are "pre-loaded").
     */
    PhysPage translate(Lpn lpn);

    /** Plane that serves logical page @p lpn. */
    std::uint32_t planeOf(Lpn lpn) const;

    /**
     * Write logical page @p lpn out-of-place.
     * @param[out] gc  Filled with relocation/erase work if this write
     *                 triggered garbage collection.
     * @return The new physical location.
     */
    PhysPage write(Lpn lpn, GcWork *gc);

    /** Free (never-written or erased) pages in a plane. */
    std::uint64_t freePagesInPlane(std::uint32_t plane) const;

    /** Maximum erase-count spread across blocks (wear-leveling QoI). */
    std::uint32_t eraseCountSpread() const;

    std::uint64_t userPages() const { return cfg.userPages(); }
    std::uint64_t preloadedPages() const { return preloaded; }
    const Stats &stats() const { return statsData; }
    const FlashConfig &config() const { return cfg; }

    /** Register FTL stats into @p reg. */
    void
    regStats(sim::StatRegistry &reg) const
    {
        reg.registerCounter("host_writes", &statsData.hostWrites,
                            "logical page writes from the host");
        reg.registerCounter("flash_programs", &statsData.flashPrograms,
                            "physical page programs (host + GC)");
        reg.registerCounter("gc_invocations", &statsData.gcInvocations,
                            "garbage-collection passes triggered");
        reg.registerCounter("gc_relocations", &statsData.gcRelocations,
                            "valid pages moved by the collector");
        reg.registerCounter("erases", &statsData.erases,
                            "blocks erased");
    }

    /**
     * Audit the translation state: the logical->physical map is
     * injective and in-bounds with owner back-pointers agreeing, block
     * valid/write pointers are consistent, per-plane free-space
     * accounting matches the block states, and every program is either
     * a host write or a GC relocation.
     */
    void checkInvariants(sim::InvariantChecker &chk) const;

  private:
    struct Block {
        std::uint32_t validPages = 0;
        std::uint32_t writePtr = 0;   ///< Next free page index.
        std::uint32_t eraseCount = 0;
        std::vector<Lpn> owners; ///< LPN per page (or invalid).
    };

    struct Plane {
        std::vector<Block> blocks;
        std::uint32_t activeBlock = 0; ///< Current write frontier.
        std::uint32_t freeBlocks = 0;
        std::uint64_t freePages = 0;
    };

    /** Allocate the next free physical page in @p plane. */
    PhysPage allocate(std::uint32_t plane);

    /** Invalidate the old location of @p lpn, if mapped. */
    void invalidateOld(Lpn lpn);

    /** Run greedy GC in @p plane until free blocks recover. */
    GcWork collectGarbage(std::uint32_t plane);

    /** Pick GC victim: min valid pages, ties to min erase count. */
    std::uint32_t pickVictim(const Plane &plane) const;

    std::string ftlName;
    FlashConfig cfg;
    std::uint64_t preloaded;
    std::vector<Plane> planes;
    // Overridden (rewritten) lpns only; unmapped lpns resolve to their
    // static pre-load location, keeping host memory bounded at scale.
    std::unordered_map<Lpn, Ppn> mapping;
    Stats statsData;

    static Ppn pack(const PhysPage &p);
    PhysPage unpack(Ppn v) const;
};

} // namespace astriflash::flash

#endif // ASTRIFLASH_FLASH_FTL_HH
