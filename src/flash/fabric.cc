#include "fabric.hh"

#include "sim/logging.hh"

#include "flash_device.hh"
#include "zns_device.hh"

namespace astriflash::flash {

FlashFabric::FlashFabric(std::string name, const FlashConfig &dev_cfg,
                         const FlashFabricConfig &fabric_cfg,
                         std::uint64_t preload_pages)
    : fabName(std::move(name)), cfg(dev_cfg), kind(fabric_cfg.backend)
{
    const std::uint32_t m = fabric_cfg.devices;
    if (m == 0)
        ASTRI_FATAL("%s: fabric needs at least one device",
                    fabName.c_str());
    devs.reserve(m);
    for (std::uint32_t j = 0; j < m; ++j) {
        // Round-robin striping hands device j the logical pages
        // congruent to j mod M; of `preload_pages` dataset pages that
        // is floor/ceil(preload / M) depending on j.
        const std::uint64_t dev_preload =
            preload_pages / m + (j < preload_pages % m ? 1 : 0);
        ASTRI_ASSERT_MSG(dev_preload <= cfg.userPages(),
                         "%s: device %u preload %llu exceeds per-device "
                         "capacity %llu",
                         fabName.c_str(), j,
                         static_cast<unsigned long long>(dev_preload),
                         static_cast<unsigned long long>(
                             cfg.userPages()));
        const std::string dev_name =
            m == 1 ? fabName : fabName + ".dev" + std::to_string(j);
        if (kind == BackendKind::Zns) {
            devs.push_back(std::make_unique<ZnsDevice>(
                dev_name, cfg, dev_preload));
        } else {
            devs.push_back(std::make_unique<FlashDevice>(
                dev_name, cfg, dev_preload));
        }
    }
}

std::uint64_t
FlashFabric::userPages() const
{
    std::uint64_t total = 0;
    for (const auto &dev : devs)
        total += dev->userPages();
    return total;
}

std::uint64_t
FlashFabric::readsCompleted() const
{
    std::uint64_t total = 0;
    for (const auto &dev : devs)
        total += dev->readsCompleted();
    return total;
}

std::uint64_t
FlashFabric::writesAccepted() const
{
    std::uint64_t total = 0;
    for (const auto &dev : devs)
        total += dev->writesAccepted();
    return total;
}

std::uint64_t
FlashFabric::gcBlockedReadCount() const
{
    std::uint64_t total = 0;
    for (const auto &dev : devs)
        total += dev->gcBlockedReadCount();
    return total;
}

std::uint64_t
FlashFabric::hostWrites() const
{
    std::uint64_t total = 0;
    for (const auto &dev : devs)
        total += dev->hostWrites();
    return total;
}

std::uint64_t
FlashFabric::mediaWrites() const
{
    std::uint64_t total = 0;
    for (const auto &dev : devs)
        total += dev->mediaWrites();
    return total;
}

std::uint32_t
FlashFabric::wearSpread() const
{
    std::uint32_t worst = 0;
    for (const auto &dev : devs) {
        const std::uint32_t spread = dev->wearSpread();
        worst = spread > worst ? spread : worst;
    }
    return worst;
}

void
FlashFabric::resetStats()
{
    for (auto &dev : devs)
        dev->resetStats();
}

void
FlashFabric::regStats(sim::StatRegistry &reg) const
{
    if (devs.size() == 1) {
        devs.front()->regStats(reg);
        return;
    }
    for (std::size_t j = 0; j < devs.size(); ++j)
        devs[j]->regStats(reg.subRegistry("dev" + std::to_string(j)));
}

void
FlashFabric::checkInvariants(sim::InvariantChecker &chk) const
{
    for (const auto &dev : devs)
        dev->checkInvariants(chk);
}

} // namespace astriflash::flash
