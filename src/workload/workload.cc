#include "workload.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace astriflash::workload {

const char *
kindName(Kind kind)
{
    switch (kind) {
      case Kind::ArraySwap:
        return "arrayswap";
      case Kind::RedBlackTree:
        return "rbt";
      case Kind::HashTable:
        return "hashtable";
      case Kind::Tatp:
        return "tatp";
      case Kind::Tpcc:
        return "tpcc";
      case Kind::Silo:
        return "silo";
      case Kind::Masstree:
        return "masstree";
    }
    return "unknown";
}

Profile
defaultProfile(Kind kind)
{
    using sim::nanoseconds;
    // Calibrated so that at a 3% DRAM-to-dataset ratio with
    // theta=0.99 each thread misses the DRAM cache every 5-25 µs of
    // execution, and TATP jobs take ~10 µs — the paper's §V-A anchor
    // points. coldAccesses hit the Zipfian bulk dataset; hotAccesses
    // hit index/metadata pages that any 3% cache retains.
    switch (kind) {
      case Kind::ArraySwap:
        // Pure swap pairs: half the accesses are stores, no index.
        return Profile{32, 0, nanoseconds(200), 0.5};
      case Kind::RedBlackTree:
        // Deep pointer chases; upper tree levels are hot.
        return Profile{30, 90, nanoseconds(80), 0.04};
      case Kind::HashTable:
        // Bucket-array probe (hot) then entry access (cold).
        return Profile{24, 24, nanoseconds(150), 0.10};
      case Kind::Tatp:
        // Short 'update subscriber data' transactions (~10 µs).
        return Profile{20, 20, nanoseconds(220), 0.20};
      case Kind::Tpcc:
        // 'neworder': the compute-heavy outlier.
        return Profile{48, 56, nanoseconds(400), 0.30};
      case Kind::Silo:
        // OCC key-value transactions.
        return Profile{28, 32, nanoseconds(180), 0.25};
      case Kind::Masstree:
        // Trie/B+-tree traversals, long chases, mostly reads.
        return Profile{36, 64, nanoseconds(140), 0.05};
    }
    ASTRI_PANIC("unhandled workload kind");
}

std::unique_ptr<Workload>
makeWorkload(Kind kind, const WorkloadConfig &config)
{
    return std::make_unique<Workload>(kind, config);
}

Workload::Workload(Kind kind, const WorkloadConfig &config)
    : Workload(kind, config, defaultProfile(kind))
{
}

Workload::Workload(Kind kind, const WorkloadConfig &config,
                   const Profile &profile)
    : kindVal(kind), cfg(config), prof(profile),
      pages(config.datasetBytes / mem::kPageSize),
      hotPages(static_cast<std::uint64_t>(
          static_cast<double>(config.datasetBytes / mem::kPageSize) *
          config.hotRegionFraction)),
      coldPages(pages > hotPages ? pages - hotPages : 1),
      workingSetPages(std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(
                 static_cast<double>(coldPages) *
                 config.workingSetFraction))),
      zipf(workingSetPages, config.zipfTheta,
           /*scramble=*/true, config.seed * 7919 + 13),
      rng(config.seed * 104729 + 1)
{
    if (pages < 16)
        ASTRI_FATAL("workload %s: dataset too small (%llu pages)",
                    name(), static_cast<unsigned long long>(pages));
    if (hotPages == 0)
        hotPages = 1;
}

mem::Addr
Workload::coldAddr()
{
    // Bulk-data mixture: Zipfian over the hot working set (scrambled
    // across [0, workingSetPages)), with a uniform tail over every
    // cold page. The working set maps onto the low cold pages; the
    // scramble already scatters popularity within it.
    std::uint64_t page;
    if (rng.chance(cfg.uniformFraction))
        page = rng.uniformInt(coldPages);
    else
        page = zipf.next();
    const std::uint64_t block = rng.uniformInt(
        mem::kPageSize / mem::kBlockSize);
    return page * mem::kPageSize + block * mem::kBlockSize;
}

mem::Addr
Workload::hotAddr()
{
    // Hot region sits in the top pages of the dataset.
    const std::uint64_t page =
        (pages - hotPages) + rng.uniformInt(hotPages);
    const std::uint64_t block = rng.uniformInt(
        mem::kPageSize / mem::kBlockSize);
    return page * mem::kPageSize + block * mem::kBlockSize;
}

void
Workload::appendAccess(std::vector<Op> &ops, mem::Addr addr, bool store)
{
    Op compute;
    compute.type = Op::Type::Compute;
    compute.compute = static_cast<sim::Ticks>(
        static_cast<double>(prof.computePerOp) * cfg.computeScale);
    ops.push_back(compute);

    Op access;
    access.type = store ? Op::Type::Store : Op::Type::Load;
    access.addr = addr;
    ops.push_back(access);
}

void
Workload::genArraySwap(std::vector<Op> &ops)
{
    // Each operation swaps two Zipfian-chosen elements: two loads
    // followed by two stores to the same locations.
    const std::uint32_t swaps = prof.coldAccesses / 4;
    for (std::uint32_t i = 0; i < swaps; ++i) {
        const mem::Addr a = coldAddr();
        const mem::Addr b = coldAddr();
        appendAccess(ops, a, false);
        appendAccess(ops, b, false);
        appendAccess(ops, a, true);
        appendAccess(ops, b, true);
    }
}

void
Workload::genPointerChase(std::vector<Op> &ops, std::uint32_t chase_len)
{
    const std::uint32_t total = prof.coldAccesses + prof.hotAccesses;
    const std::uint32_t chains =
        total / chase_len == 0 ? 1 : total / chase_len;
    const std::uint32_t cold_per_chain = prof.coldAccesses / chains;
    for (std::uint32_t c = 0; c < chains; ++c) {
        // Upper levels of the structure are hot; the tail of the
        // chase descends into cold leaves.
        const std::uint32_t cold_tail =
            cold_per_chain < chase_len ? cold_per_chain : chase_len;
        for (std::uint32_t hop = 0; hop < chase_len; ++hop) {
            const bool cold = hop >= chase_len - cold_tail;
            appendAccess(ops, cold ? coldAddr() : hotAddr(), false);
        }
        // Occasional insert/rebalance writes back the touched leaf.
        if (rng.chance(prof.storeFraction))
            appendAccess(ops, coldAddr(), true);
    }
}

void
Workload::genHashTable(std::vector<Op> &ops)
{
    // Probe = hot bucket-array read, then cold entry access.
    const std::uint32_t probes = prof.coldAccesses;
    for (std::uint32_t i = 0; i < probes; ++i) {
        appendAccess(ops, hotAddr(), false);
        appendAccess(ops, coldAddr(), rng.chance(prof.storeFraction));
    }
}

void
Workload::genTransaction(std::vector<Op> &ops, std::uint32_t read_set,
                         std::uint32_t write_set)
{
    // Index lookups (hot) interleaved with record accesses (cold);
    // the write set updates records at commit.
    const std::uint32_t hot_per_record =
        read_set + write_set > 0
            ? prof.hotAccesses / (read_set + write_set)
            : 0;
    for (std::uint32_t r = 0; r < read_set; ++r) {
        for (std::uint32_t h = 0; h < hot_per_record; ++h)
            appendAccess(ops, hotAddr(), false);
        appendAccess(ops, coldAddr(), false);
    }
    for (std::uint32_t w = 0; w < write_set; ++w) {
        for (std::uint32_t h = 0; h < hot_per_record; ++h)
            appendAccess(ops, hotAddr(), false);
        appendAccess(ops, coldAddr(), true);
    }
}

Job
Workload::nextJob()
{
    Job job;
    job.id = nextId++;
    job.ops.reserve(
        2 * (prof.coldAccesses + prof.hotAccesses) + 4);

    switch (kindVal) {
      case Kind::ArraySwap:
        genArraySwap(job.ops);
        break;
      case Kind::RedBlackTree:
        genPointerChase(job.ops, 6);
        break;
      case Kind::HashTable:
        genHashTable(job.ops);
        break;
      case Kind::Masstree:
        genPointerChase(job.ops, 10);
        break;
      case Kind::Tatp: {
        const std::uint32_t writes = static_cast<std::uint32_t>(
            prof.storeFraction * prof.coldAccesses + 0.5);
        genTransaction(job.ops, prof.coldAccesses - writes, writes);
        break;
      }
      case Kind::Tpcc: {
        const std::uint32_t writes = static_cast<std::uint32_t>(
            prof.storeFraction * prof.coldAccesses + 0.5);
        genTransaction(job.ops, prof.coldAccesses - writes, writes);
        break;
      }
      case Kind::Silo: {
        const std::uint32_t writes = static_cast<std::uint32_t>(
            prof.storeFraction * prof.coldAccesses + 0.5);
        genTransaction(job.ops, prof.coldAccesses - writes, writes);
        break;
      }
    }
    return job;
}

sim::Ticks
Workload::meanComputePerJob() const
{
    // Every access is preceded by one compute interval; the pattern
    // emitters add no other compute.
    double accesses = 0;
    switch (kindVal) {
      case Kind::ArraySwap:
        accesses = (prof.coldAccesses / 4) * 4.0;
        break;
      case Kind::RedBlackTree:
      case Kind::Masstree: {
        const std::uint32_t chase =
            kindVal == Kind::Masstree ? 10 : 6;
        const std::uint32_t total =
            prof.coldAccesses + prof.hotAccesses;
        const std::uint32_t chains =
            total / chase == 0 ? 1 : total / chase;
        accesses = static_cast<double>(chains) * chase +
                   static_cast<double>(chains) * prof.storeFraction;
        break;
      }
      case Kind::HashTable:
        accesses = prof.coldAccesses * 2.0;
        break;
      default: {
        const std::uint32_t hot_per_record =
            prof.coldAccesses > 0
                ? prof.hotAccesses / prof.coldAccesses
                : 0;
        accesses =
            static_cast<double>(prof.coldAccesses) *
            (1.0 + hot_per_record);
        break;
      }
    }
    return static_cast<sim::Ticks>(
        accesses * static_cast<double>(prof.computePerOp) *
        cfg.computeScale);
}

} // namespace astriflash::workload
