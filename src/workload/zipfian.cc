#include "zipfian.hh"

#include <cmath>

#include "sim/logging.hh"

namespace astriflash::workload {

namespace {
// Beyond this, the harmonic sum is extrapolated in closed form; the
// relative error of the integral approximation is far below the run-
// to-run noise of the simulations.
constexpr std::uint64_t kExactZetaLimit = 1ull << 22;
} // namespace

double
ZipfianGenerator::zetaExact(std::uint64_t n, double theta)
{
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i)
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
}

double
ZipfianGenerator::zeta(std::uint64_t n, double theta)
{
    if (n <= kExactZetaLimit)
        return zetaExact(n, theta);
    // zeta(n) ~= zeta(n0) + integral_{n0}^{n} x^-theta dx.
    const double z0 = zetaExact(kExactZetaLimit, theta);
    const double n0 = static_cast<double>(kExactZetaLimit);
    const double nn = static_cast<double>(n);
    return z0 + (std::pow(nn, 1.0 - theta) - std::pow(n0, 1.0 - theta)) /
                    (1.0 - theta);
}

ZipfianGenerator::ZipfianGenerator(std::uint64_t items, double theta,
                                   bool scramble, std::uint64_t seed)
    : n(items), skew(theta), scrambled(scramble), rng(seed)
{
    if (items == 0)
        ASTRI_FATAL("zipfian: need at least one item");
    if (theta <= 0.0 || theta >= 1.0)
        ASTRI_FATAL("zipfian: theta must be in (0,1), got %f", theta);
    zetan = zeta(n, skew);
    zeta2 = zetaExact(2 < n ? 2 : n, skew);
    alpha = 1.0 / (1.0 - skew);
    eta = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - skew)) /
          (1.0 - zeta2 / zetan);
}

std::uint64_t
ZipfianGenerator::nextRank()
{
    const double u = rng.uniform();
    const double uz = u * zetan;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, skew))
        return 1;
    const double v =
        static_cast<double>(n) *
        std::pow(eta * u - eta + 1.0, alpha);
    std::uint64_t rank = static_cast<std::uint64_t>(v);
    if (rank >= n)
        rank = n - 1;
    return rank;
}

std::uint64_t
ZipfianGenerator::scrambleRank(std::uint64_t rank) const
{
    if (!scrambled)
        return rank;
    // FNV-1a 64-bit over the rank bytes, folded onto the item range.
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (int i = 0; i < 8; ++i) {
        h ^= (rank >> (i * 8)) & 0xff;
        h *= 0x100000001b3ull;
    }
    return h % n;
}

std::uint64_t
ZipfianGenerator::next()
{
    return scrambleRank(nextRank());
}

double
ZipfianGenerator::hotAccessFraction(std::uint64_t hot_items) const
{
    if (hot_items == 0)
        return 0.0;
    if (hot_items >= n)
        return 1.0;
    return zeta(hot_items, skew) / zetan;
}

} // namespace astriflash::workload
