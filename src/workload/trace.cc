#include "trace.hh"

#include "sim/logging.hh"

namespace astriflash::workload {

namespace {

constexpr std::uint64_t kMagic = 0x4352544952545341ull; // "ASTRITRC"
constexpr std::uint32_t kVersion = 1;

void
writeU32(std::FILE *f, std::uint32_t v)
{
    if (std::fwrite(&v, sizeof(v), 1, f) != 1)
        ASTRI_FATAL("trace: short write");
}

void
writeU64(std::FILE *f, std::uint64_t v)
{
    if (std::fwrite(&v, sizeof(v), 1, f) != 1)
        ASTRI_FATAL("trace: short write");
}

std::uint32_t
readU32(std::FILE *f)
{
    std::uint32_t v = 0;
    if (std::fread(&v, sizeof(v), 1, f) != 1)
        ASTRI_FATAL("trace: truncated file");
    return v;
}

std::uint64_t
readU64(std::FILE *f)
{
    std::uint64_t v = 0;
    if (std::fread(&v, sizeof(v), 1, f) != 1)
        ASTRI_FATAL("trace: truncated file");
    return v;
}

} // namespace

TraceWriter::TraceWriter(const std::string &path)
{
    file = std::fopen(path.c_str(), "wb");
    if (!file)
        ASTRI_FATAL("trace: cannot open '%s' for writing",
                    path.c_str());
    writeU64(file, kMagic);
    writeU32(file, kVersion);
    writeU32(file, 0);
    writeU64(file, 0); // job count, patched in close()
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::append(const Job &job)
{
    ASTRI_ASSERT_MSG(file != nullptr, "trace writer already closed");
    writeU32(file, static_cast<std::uint32_t>(job.ops.size()));
    for (const Op &op : job.ops) {
        const std::uint8_t type = static_cast<std::uint8_t>(op.type);
        if (std::fwrite(&type, 1, 1, file) != 1)
            ASTRI_FATAL("trace: short write");
        writeU64(file, op.type == Op::Type::Compute ? op.compute
                                                    : op.addr);
    }
    ++jobs;
}

void
TraceWriter::close()
{
    if (!file)
        return;
    // Patch the job count into the header.
    std::fseek(file, 16, SEEK_SET);
    writeU64(file, jobs);
    std::fclose(file);
    file = nullptr;
}

TraceReader::TraceReader(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        ASTRI_FATAL("trace: cannot open '%s'", path.c_str());
    if (readU64(f) != kMagic)
        ASTRI_FATAL("trace: '%s' is not a trace file", path.c_str());
    if (readU32(f) != kVersion)
        ASTRI_FATAL("trace: unsupported version in '%s'",
                    path.c_str());
    readU32(f); // reserved
    const std::uint64_t count = readU64(f);
    if (count == 0)
        ASTRI_FATAL("trace: '%s' contains no jobs", path.c_str());
    jobTemplates.reserve(count);
    for (std::uint64_t j = 0; j < count; ++j) {
        const std::uint32_t ops = readU32(f);
        std::vector<Op> list;
        list.reserve(ops);
        for (std::uint32_t o = 0; o < ops; ++o) {
            std::uint8_t type = 0;
            if (std::fread(&type, 1, 1, f) != 1)
                ASTRI_FATAL("trace: truncated file");
            const std::uint64_t payload = readU64(f);
            Op op;
            op.type = static_cast<Op::Type>(type);
            if (op.type == Op::Type::Compute)
                op.compute = payload;
            else
                op.addr = payload;
            list.push_back(op);
        }
        jobTemplates.push_back(std::move(list));
    }
    std::fclose(f);
}

Job
TraceReader::nextJob()
{
    Job job;
    job.id = nextId++;
    job.ops = jobTemplates[cursor];
    cursor = (cursor + 1) % jobTemplates.size();
    return job;
}

} // namespace astriflash::workload
