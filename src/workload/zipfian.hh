/**
 * @file
 * Zipfian item-popularity generator (YCSB-style).
 *
 * The paper models all data accesses with an analytical Zipfian
 * distribution (§V-A), the standard skew model for datacenter object
 * popularity. This implementation follows Gray et al.'s rejection-free
 * inversion used by YCSB, with an exact harmonic sum for small item
 * counts and the usual closed-form extrapolation for large ones, plus
 * optional FNV scrambling so "hot" items are scattered across the
 * address space rather than clustered at low ranks.
 */

#ifndef ASTRIFLASH_WORKLOAD_ZIPFIAN_HH
#define ASTRIFLASH_WORKLOAD_ZIPFIAN_HH

#include <cstdint>

#include "sim/rng.hh"

namespace astriflash::workload {

/** Draws item indices in [0, items) with Zipfian popularity. */
class ZipfianGenerator
{
  public:
    /**
     * @param items      Number of distinct items (> 0).
     * @param theta      Skew parameter in (0, 1); 0.99 is the YCSB
     *                   default and matches "hot fraction" behaviour
     *                   observed in datacenter caches.
     * @param scramble   Hash ranks onto items (YCSB scrambled mode).
     * @param seed       RNG seed.
     */
    ZipfianGenerator(std::uint64_t items, double theta = 0.99,
                     bool scramble = true, std::uint64_t seed = 42);

    /** Draw the next item index. */
    std::uint64_t next();

    /**
     * Draw a popularity *rank* (0 = most popular), before scrambling.
     * Useful for analytical hot-set studies.
     */
    std::uint64_t nextRank();

    std::uint64_t items() const { return n; }
    double theta() const { return skew; }

    /**
     * Fraction of accesses expected to land in the @p hot_items most
     * popular items (analytic, for validation and Fig. 1 analysis).
     */
    double hotAccessFraction(std::uint64_t hot_items) const;

    /** Item index a given popularity rank maps to (scramble-aware). */
    std::uint64_t itemForRank(std::uint64_t rank) const
    {
        return scrambleRank(rank);
    }

  private:
    static double zetaExact(std::uint64_t n, double theta);
    static double zeta(std::uint64_t n, double theta);

    std::uint64_t scrambleRank(std::uint64_t rank) const;

    std::uint64_t n;
    double skew;
    bool scrambled;
    double zetan;
    double zeta2;
    double alpha;
    double eta;
    sim::Rng rng;
};

} // namespace astriflash::workload

#endif // ASTRIFLASH_WORKLOAD_ZIPFIAN_HH
