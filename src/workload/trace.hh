/**
 * @file
 * Job-trace recording and replay.
 *
 * The synthetic generators are deterministic, but studies often need
 * to (a) pin the exact op stream across machines and code versions,
 * or (b) drive the simulator with traces captured elsewhere. A trace
 * file stores jobs as flat op lists in a small self-describing binary
 * format; TraceReader replays them (cyclically) as a job source the
 * System can consume via System::setJobSource().
 *
 * Format (little-endian):
 *   u64 magic "ASTRITRC", u32 version, u32 reserved, u64 job count
 *   per job: u32 op count; per op: u8 type, u64 payload
 *            (compute ticks for Compute, byte address for Load/Store)
 */

#ifndef ASTRIFLASH_WORKLOAD_TRACE_HH
#define ASTRIFLASH_WORKLOAD_TRACE_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "job.hh"

namespace astriflash::workload {

/** Streams jobs into a trace file. */
class TraceWriter
{
  public:
    /** Opens @p path for writing (fatal on failure). */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one job's op stream. */
    void append(const Job &job);

    /** Jobs written so far. */
    std::uint64_t count() const { return jobs; }

    /** Finalize the header and close (also done by the dtor). */
    void close();

  private:
    std::FILE *file = nullptr;
    std::uint64_t jobs = 0;
};

/** Loads a trace and replays its jobs (cyclically). */
class TraceReader
{
  public:
    /** Reads the whole trace into memory (fatal on parse errors). */
    explicit TraceReader(const std::string &path);

    /** Number of distinct jobs in the trace. */
    std::uint64_t size() const { return jobTemplates.size(); }

    /**
     * Next job (wraps around at the end). Ids are freshly assigned
     * so repeated replays stay distinguishable.
     */
    Job nextJob();

    /** The i-th job template (for inspection/tests). */
    const std::vector<Op> &jobOps(std::uint64_t i) const
    {
        return jobTemplates[i];
    }

  private:
    std::vector<std::vector<Op>> jobTemplates;
    std::uint64_t cursor = 0;
    std::uint64_t nextId = 1;
};

} // namespace astriflash::workload

#endif // ASTRIFLASH_WORKLOAD_TRACE_HH
