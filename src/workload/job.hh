/**
 * @file
 * Jobs and their operation streams.
 *
 * A job models one client request executing on a user-level thread: an
 * alternating stream of compute intervals and memory accesses. The
 * timing core consumes ops in order (accesses are dependent, the
 * conservative assumption for pointer-chasing server code) and records
 * the queueing/service timestamps the tail-latency analysis needs.
 */

#ifndef ASTRIFLASH_WORKLOAD_JOB_HH
#define ASTRIFLASH_WORKLOAD_JOB_HH

#include <cstdint>
#include <vector>

#include "mem/address.hh"
#include "sim/ticks.hh"

namespace astriflash::workload {

/** One step of a job's execution. */
struct Op {
    enum class Type : std::uint8_t {
        Compute, ///< Pure execution for @ref compute ticks.
        Load,    ///< Memory read at @ref addr.
        Store,   ///< Memory write at @ref addr.
    };

    Type type = Type::Compute;
    sim::Ticks compute = 0; ///< Only for Compute ops.
    mem::Addr addr = 0;     ///< Only for Load/Store ops.
};

/** A client request: op stream plus latency bookkeeping. */
struct Job {
    std::uint64_t id = 0;
    std::vector<Op> ops;
    std::uint32_t nextOp = 0; ///< Execution cursor.

    // Timestamps (ticks). arrival: open-loop generator; enqueued: put
    // into the core's job queue; started: first scheduled; finished:
    // last op retired.
    sim::Ticks arrival = 0;
    sim::Ticks enqueued = 0;
    sim::Ticks started = 0;
    sim::Ticks finished = 0;

    /** Accumulated service time (execution + flash waits, excl. job
     *  queue) maintained by the scheduler model. */
    sim::Ticks service = 0;

    /** When the job last entered the pending queue (aging policy). */
    sim::Ticks pendingSince = 0;

    /** Misses this job has suffered (diagnostics). */
    std::uint32_t misses = 0;

    bool done() const { return nextOp >= ops.size(); }

    const Op &
    currentOp() const
    {
        return ops[nextOp];
    }

    /** Total queueing delay experienced (response - service). */
    sim::Ticks
    queueing() const
    {
        const sim::Ticks response = finished - arrival;
        return response > service ? response - service : 0;
    }
};

} // namespace astriflash::workload

#endif // ASTRIFLASH_WORKLOAD_JOB_HH
