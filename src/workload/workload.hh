/**
 * @file
 * Workload generators (§V-A).
 *
 * Seven workloads drive the evaluation: five microbenchmarks capturing
 * data-structure access patterns and database operations (Array Swap,
 * Red-Black Tree, Hash Table, TATP, TPCC) and two Tailbench server
 * workloads (Silo, Masstree). As in the paper, data accesses follow an
 * analytical Zipfian distribution calibrated so each thread triggers a
 * DRAM-cache miss every 5-25 µs of execution at a 3% DRAM-to-dataset
 * ratio.
 *
 * Each workload is described by a Profile: how many accesses go to the
 * always-hot index/metadata region vs. the Zipfian-distributed bulk
 * dataset, the compute interval between accesses, and the store
 * fraction. The op-level pattern (swap pairs, pointer chases, bucket
 * probes, transactions) shapes the interleaving of loads and stores.
 */

#ifndef ASTRIFLASH_WORKLOAD_WORKLOAD_HH
#define ASTRIFLASH_WORKLOAD_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>

#include "sim/rng.hh"
#include "sim/ticks.hh"

#include "job.hh"
#include "zipfian.hh"

namespace astriflash::workload {

/** The evaluated workloads. */
enum class Kind {
    ArraySwap,
    RedBlackTree,
    HashTable,
    Tatp,
    Tpcc,
    Silo,
    Masstree,
};

/** All seven kinds, in the paper's presentation order. */
inline constexpr Kind kAllKinds[] = {
    Kind::ArraySwap,    Kind::RedBlackTree, Kind::HashTable,
    Kind::Tatp,         Kind::Tpcc,         Kind::Silo,
    Kind::Masstree,
};

/** Human-readable workload name. */
const char *kindName(Kind kind);

/** Generator configuration. */
struct WorkloadConfig {
    std::uint64_t datasetBytes = std::uint64_t{2} << 30; ///< 2 GB.
    double zipfTheta = 0.99;
    std::uint64_t seed = 1;
    /** Fraction of dataset pages forming the always-hot region
     *  (indexes, roots, schema — resident in any 3% cache). */
    double hotRegionFraction = 0.005;
    /**
     * Bulk-data popularity mixture (§II-A, Fig. 1): most cold
     * accesses follow a Zipfian over a hot working set of
     * workingSetFraction of the dataset; the remaining
     * uniformFraction of accesses are uniform over the whole
     * dataset. This reproduces CloudSuite's miss-ratio curves, which
     * drop steeply and then flatten near a 3% DRAM-to-dataset ratio —
     * the knee the paper provisions for.
     */
    double workingSetFraction = 0.02;
    double uniformFraction = 0.03;
    /** Global multiplier on per-op compute (sensitivity studies). */
    double computeScale = 1.0;
};

/** Per-workload shape parameters (exposed for tests/ablation). */
struct Profile {
    std::uint32_t coldAccesses; ///< Zipfian bulk-data accesses per job.
    std::uint32_t hotAccesses;  ///< Hot-region accesses per job.
    sim::Ticks computePerOp;    ///< Compute interval between accesses.
    double storeFraction;       ///< P(access is a store).
};

/** The default profile for @p kind (see workload.cc for calibration). */
Profile defaultProfile(Kind kind);

/**
 * A job generator.
 *
 * Generators are deterministic given (kind, config): two instances
 * with the same parameters produce identical job streams, which keeps
 * cross-configuration comparisons paired.
 */
class Workload
{
  public:
    Workload(Kind kind, const WorkloadConfig &config);
    Workload(Kind kind, const WorkloadConfig &config,
             const Profile &profile);

    /** Generate the next job. Addresses are dataset-relative bytes. */
    Job nextJob();

    Kind kind() const { return kindVal; }
    const char *name() const { return kindName(kindVal); }
    const Profile &profile() const { return prof; }
    const WorkloadConfig &config() const { return cfg; }

    /** Dataset size in 4 KB pages. */
    std::uint64_t datasetPages() const { return pages; }

    /** Pages in the Zipfian hot working set. */
    std::uint64_t workingSet() const { return workingSetPages; }

    /** Pages in the always-hot index/metadata region. */
    std::uint64_t hotRegionPages() const { return hotPages; }

    /** Cold page index of Zipfian popularity rank @p r (warmup). */
    std::uint64_t
    rankToPage(std::uint64_t r) const
    {
        return zipf.itemForRank(r);
    }

    /** Mean compute per job (analytic, for load calibration). */
    sim::Ticks meanComputePerJob() const;

  private:
    mem::Addr coldAddr();
    mem::Addr hotAddr();
    void appendAccess(std::vector<Op> &ops, mem::Addr addr, bool store);

    // Pattern emitters (dispatched by kind).
    void genArraySwap(std::vector<Op> &ops);
    void genPointerChase(std::vector<Op> &ops, std::uint32_t chase_len);
    void genHashTable(std::vector<Op> &ops);
    void genTransaction(std::vector<Op> &ops, std::uint32_t read_set,
                        std::uint32_t write_set);

    Kind kindVal;
    WorkloadConfig cfg;
    Profile prof;
    std::uint64_t pages;
    std::uint64_t hotPages;
    std::uint64_t coldPages;
    std::uint64_t workingSetPages;
    ZipfianGenerator zipf;
    sim::Rng rng;
    std::uint64_t nextId = 1;
};

/** Factory helper. */
std::unique_ptr<Workload> makeWorkload(Kind kind,
                                       const WorkloadConfig &config);

/** Open-loop Poisson arrival process (tail-latency methodology). */
class PoissonArrivals
{
  public:
    /**
     * @param mean_interarrival  Mean gap between request arrivals.
     * @param seed               RNG seed.
     */
    PoissonArrivals(sim::Ticks mean_interarrival, std::uint64_t seed)
        : mean(static_cast<double>(mean_interarrival)), rng(seed)
    {
    }

    /** Next arrival tick strictly after @p prev. */
    sim::Ticks
    next(sim::Ticks prev)
    {
        const double gap = rng.exponential(mean);
        const auto g = static_cast<sim::Ticks>(gap);
        return prev + (g == 0 ? 1 : g);
    }

  private:
    double mean;
    sim::Rng rng;
};

} // namespace astriflash::workload

#endif // ASTRIFLASH_WORKLOAD_WORKLOAD_HH
