#include "aso_engine.hh"

#include "sim/logging.hh"

namespace astriflash::cpu {

AsoEngine::AsoEngine(const OoOConfig &config)
    : cfg(config), map(config.archRegs,
                       config.physRegs + config.asoExtraRegs)
{
}

AsoDispatch
AsoEngine::writeReg(std::uint32_t arch_reg)
{
    PhysReg old_reg = kNoReg;
    const PhysReg fresh = map.rename(arch_reg, &old_reg);
    if (fresh == kNoReg) {
        statsData.prfStalls.inc();
        return AsoDispatch::NoPhysRegs;
    }
    undoLog.push_back(Rename{seq, arch_reg, old_reg, fresh});
    ++seq;
    statsData.renames.inc();
    // With no store pending, nothing can abort this rename; its old
    // mapping is dead immediately.
    if (stores.empty())
        reclaimUnprotected();
    return AsoDispatch::Ok;
}

AsoDispatch
AsoEngine::dispatchStore(std::uint64_t addr)
{
    if (stores.size() >= cfg.sbEntries) {
        statsData.sbFullStalls.inc();
        return AsoDispatch::SbFull;
    }
    StoreEntry entry;
    entry.seq = seq;
    entry.addr = addr;
    entry.snapshot = map.snapshot();
    stores.push_back(std::move(entry));
    ++seq;
    statsData.storesDispatched.inc();
    return AsoDispatch::Ok;
}

std::uint64_t
AsoEngine::oldestStoreAddr() const
{
    ASTRI_ASSERT_MSG(!stores.empty(), "SB empty");
    return stores.front().addr;
}

void
AsoEngine::reclaimUnprotected()
{
    // A deferred rename with sequence q can release its displaced
    // register once no pending store with snapshot taken at or before
    // q remains (nothing can roll the map back across it anymore).
    const InstSeq protect_from =
        stores.empty() ? seq : stores.front().seq;
    while (!undoLog.empty() && undoLog.front().seq < protect_from) {
        if (undoLog.front().oldReg != kNoReg)
            map.release(undoLog.front().oldReg);
        undoLog.pop_front();
    }
}

void
AsoEngine::completeOldestStore()
{
    ASTRI_ASSERT_MSG(!stores.empty(), "completing with empty SB");
    stores.pop_front();
    statsData.storesCompleted.inc();
    reclaimUnprotected();
}

void
AsoEngine::abortOldestStore()
{
    ASTRI_ASSERT_MSG(!stores.empty(), "aborting with empty SB");
    const StoreEntry head = std::move(stores.front());

    // Undo every rename younger than the aborting store, newest first,
    // reclaiming the speculatively allocated registers.
    while (!undoLog.empty() && undoLog.back().seq >= head.seq) {
        const Rename r = undoLog.back();
        undoLog.pop_back();
        ASTRI_ASSERT_MSG(map.mapping(r.archReg) == r.newReg,
                         "undo log inconsistent with rename map");
        map.release(r.newReg);
        map.forceMap(r.archReg, r.oldReg);
        statsData.renamesRolledBack.inc();
    }
    // The aborting store and everything younger leave the SB; their
    // snapshots die with them.
    stores.clear();
    statsData.storesAborted.inc();

    // Cross-check the undo log against the hardware mechanism: the
    // rolled-back map must equal the aborting store's snapshot.
    ASTRI_ASSERT_MSG(map.snapshot() == head.snapshot,
                     "rollback diverged from the store's map snapshot");

    // With the SB empty, the surviving older renames are final.
    reclaimUnprotected();
}

} // namespace astriflash::cpu
