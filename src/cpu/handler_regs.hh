/**
 * @file
 * Switch-on-miss architectural registers (§IV-C2, §IV-C3).
 *
 * Two registers extend the process state:
 *  - the Handler Address Register holds the user-level scheduler entry
 *    point and is writable only in privileged mode (installed via a
 *    verified system call);
 *  - the Resume Register holds the PC of the miss-triggering
 *    instruction plus the forward-progress bit, and is user-writable.
 *
 * When the forward-progress bit is set, the resuming instruction's
 * memory access must complete synchronously at the frontside
 * controller even on a DRAM-cache miss, guaranteeing the thread
 * retires at least one instruction before it can be switched out
 * again — the anti-livelock mechanism.
 */

#ifndef ASTRIFLASH_CPU_HANDLER_REGS_HH
#define ASTRIFLASH_CPU_HANDLER_REGS_HH

#include <cstdint>

namespace astriflash::cpu {

/** The per-process switch-on-miss register pair. */
class HandlerRegs
{
  public:
    /**
     * Install the user-level handler address.
     * @param privileged  Must be true (kernel-mediated install).
     * @return false if the write was attempted without privilege.
     */
    bool
    setHandler(std::uint64_t addr, bool privileged)
    {
        if (!privileged)
            return false;
        handlerAddr = addr;
        handlerValid = true;
        return true;
    }

    /** True once a handler is installed; misses trap to the OS until
     *  then (legacy behaviour). */
    bool handlerInstalled() const { return handlerValid; }

    /** The user-level scheduler entry point. */
    std::uint64_t handler() const { return handlerAddr; }

    /** Save the miss-triggering PC (hardware write on a miss signal). */
    void
    recordMiss(std::uint64_t pc)
    {
        resumePcVal = pc;
        fpBit = false;
    }

    /** User-mode write: arm the resume PC with forward progress. */
    void
    armForwardProgress(std::uint64_t pc)
    {
        resumePcVal = pc;
        fpBit = true;
    }

    /** The resuming instruction clears the bit when it retires. */
    void clearForwardProgress() { fpBit = false; }

    std::uint64_t resumePc() const { return resumePcVal; }
    bool forwardProgress() const { return fpBit; }

    /** Context-switch support: the pair is ordinary process state. */
    struct Saved {
        std::uint64_t handlerAddr;
        bool handlerValid;
        std::uint64_t resumePc;
        bool fpBit;
    };

    Saved
    save() const
    {
        return Saved{handlerAddr, handlerValid, resumePcVal, fpBit};
    }

    void
    load(const Saved &s)
    {
        handlerAddr = s.handlerAddr;
        handlerValid = s.handlerValid;
        resumePcVal = s.resumePc;
        fpBit = s.fpBit;
    }

  private:
    std::uint64_t handlerAddr = 0;
    bool handlerValid = false;
    std::uint64_t resumePcVal = 0;
    bool fpBit = false;
};

} // namespace astriflash::cpu

#endif // ASTRIFLASH_CPU_HANDLER_REGS_HH
