/**
 * @file
 * Out-of-order core parameters and derived cost model.
 *
 * The paper models 4-wide ARM Cortex-A76-class cores (128-entry ROB,
 * 32-entry store buffer). The timing simulator charges the switch-on-
 * miss control path with the costs derived here: pipeline flush on a
 * DRAM-cache miss signal, redirect to the user-level handler, and the
 * user-level thread switch itself (~100 ns, §IV-D).
 */

#ifndef ASTRIFLASH_CPU_OOO_CONFIG_HH
#define ASTRIFLASH_CPU_OOO_CONFIG_HH

#include <cstdint>

#include "sim/ticks.hh"

namespace astriflash::cpu {

/** Core microarchitecture parameters (Cortex-A76-like defaults). */
struct OoOConfig {
    std::uint64_t frequencyHz = 2'500'000'000ull;
    std::uint32_t issueWidth = 4;
    std::uint32_t robEntries = 128;
    std::uint32_t sbEntries = 32;
    std::uint32_t archRegs = 32;
    std::uint32_t physRegs = 128;
    /** Extra physical registers reserved for ASO snapshots (§IV-C4). */
    std::uint32_t asoExtraRegs = 128;
    /** Pipeline depth for redirect cost (fetch-to-issue). */
    sim::Cycles redirectCycles{12};

    /** Clock domain for cycle/tick conversion. */
    sim::ClockDomain
    clock() const
    {
        return sim::ClockDomain(frequencyHz);
    }

    /**
     * Cost of aborting at a DRAM-cache miss: squash the ROB and refill
     * the front-end. Lost work scales with occupied ROB entries; we
     * charge the average (half-full ROB drained at issue width) plus
     * the redirect, which is what makes compute-heavy TPCC lose more
     * per flush than the pointer-chasing microbenchmarks (§VI-A).
     */
    sim::Ticks
    robFlushCost() const
    {
        const sim::Cycles refill_cycles =
            sim::Cycles(robEntries / (2 * issueWidth)) + redirectCycles;
        return clock().cycles(refill_cycles);
    }

    /** Cost of entering the user-level handler (register save path). */
    sim::Ticks
    handlerEntryCost() const
    {
        return clock().cycles(redirectCycles);
    }
};

} // namespace astriflash::cpu

#endif // ASTRIFLASH_CPU_OOO_CONFIG_HH
