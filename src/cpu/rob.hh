/**
 * @file
 * Reorder-buffer occupancy model.
 *
 * Functional ROB used to size the squash cost of a switch-on-miss
 * flush and to test the precise-exception protocol: the miss signal
 * names a triggering instruction; everything older retires, everything
 * from the trigger onward is squashed, and the PC of the trigger goes
 * to the resume register (§IV-C2).
 */

#ifndef ASTRIFLASH_CPU_ROB_HH
#define ASTRIFLASH_CPU_ROB_HH

#include <cstdint>
#include <deque>

#include "sim/stats.hh"

namespace astriflash::cpu {

/** Minimal in-flight instruction record. */
struct RobEntry {
    std::uint64_t seq = 0;
    std::uint64_t pc = 0;
    bool isMem = false;
};

/** Circular reorder buffer tracked as a deque. */
class Rob
{
  public:
    struct Stats {
        sim::Counter dispatched;
        sim::Counter retired;
        sim::Counter squashed;
        sim::Counter flushes;
        sim::Counter fullStalls;
    };

    explicit Rob(std::uint32_t entries) : capacity(entries) {}

    /** True when no instruction can be dispatched. */
    bool full() const { return buf.size() >= capacity; }

    /** True when no instruction is in flight. */
    bool empty() const { return buf.empty(); }

    std::uint32_t occupancy() const
    {
        return static_cast<std::uint32_t>(buf.size());
    }

    /**
     * Dispatch an instruction.
     * @return its sequence number, or 0 on a full-ROB stall.
     */
    std::uint64_t
    dispatch(std::uint64_t pc, bool is_mem)
    {
        if (full()) {
            statsData.fullStalls.inc();
            return 0;
        }
        const std::uint64_t s = ++seq;
        buf.push_back(RobEntry{s, pc, is_mem});
        statsData.dispatched.inc();
        return s;
    }

    /** Retire every instruction with sequence <= @p upto (in order). */
    void
    retireUpTo(std::uint64_t upto)
    {
        while (!buf.empty() && buf.front().seq <= upto) {
            buf.pop_front();
            statsData.retired.inc();
        }
    }

    /**
     * Flush the trigger and everything younger.
     * @return the number of squashed instructions (lost work).
     */
    std::uint32_t
    flushFrom(std::uint64_t trigger_seq)
    {
        std::uint32_t n = 0;
        while (!buf.empty() && buf.back().seq >= trigger_seq) {
            buf.pop_back();
            ++n;
        }
        statsData.squashed.inc(n);
        statsData.flushes.inc();
        return n;
    }

    /** Oldest in-flight entry. Caller must check !empty(). */
    const RobEntry &head() const { return buf.front(); }

    const Stats &stats() const { return statsData; }

  private:
    std::uint32_t capacity;
    std::uint64_t seq = 0;
    std::deque<RobEntry> buf;
    Stats statsData;
};

} // namespace astriflash::cpu

#endif // ASTRIFLASH_CPU_ROB_HH
