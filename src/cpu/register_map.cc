#include "register_map.hh"

#include "sim/logging.hh"

namespace astriflash::cpu {

RegisterMap::RegisterMap(std::uint32_t arch_regs, std::uint32_t phys_regs)
{
    ASTRI_ASSERT_MSG(phys_regs >= arch_regs,
                     "need at least as many phys as arch registers");
    ASTRI_ASSERT_MSG(phys_regs < kNoReg, "phys reg count overflows index");
    map.resize(arch_regs);
    isFree.assign(phys_regs, false);
    for (std::uint32_t i = 0; i < arch_regs; ++i)
        map[i] = static_cast<PhysReg>(i);
    for (std::uint32_t i = phys_regs; i > arch_regs; --i) {
        freeList.push_back(static_cast<PhysReg>(i - 1));
        isFree[i - 1] = true;
    }
}

PhysReg
RegisterMap::rename(std::uint32_t arch_reg, PhysReg *old_reg)
{
    ASTRI_ASSERT(arch_reg < map.size());
    if (freeList.empty())
        return kNoReg;
    const PhysReg fresh = freeList.back();
    freeList.pop_back();
    isFree[fresh] = false;
    if (old_reg)
        *old_reg = map[arch_reg];
    map[arch_reg] = fresh;
    return fresh;
}

PhysReg
RegisterMap::mapping(std::uint32_t arch_reg) const
{
    ASTRI_ASSERT(arch_reg < map.size());
    return map[arch_reg];
}

void
RegisterMap::release(PhysReg reg)
{
    ASTRI_ASSERT(reg < isFree.size());
    ASTRI_ASSERT_MSG(!isFree[reg], "double release of phys reg %u", reg);
    isFree[reg] = true;
    freeList.push_back(reg);
}

void
RegisterMap::forceMap(std::uint32_t arch_reg, PhysReg reg)
{
    ASTRI_ASSERT(arch_reg < map.size());
    ASTRI_ASSERT(reg < isFree.size());
    ASTRI_ASSERT_MSG(!isFree[reg],
                     "restoring a freed phys reg %u to arch %u", reg,
                     arch_reg);
    map[arch_reg] = reg;
}

void
RegisterMap::restore(const std::vector<PhysReg> &snap)
{
    ASTRI_ASSERT(snap.size() == map.size());
    // Release registers that are live now but were not live in the
    // snapshot (they were allocated by squashed instructions).
    for (std::size_t i = 0; i < map.size(); ++i) {
        if (map[i] != snap[i]) {
            release(map[i]);
            map[i] = snap[i];
        }
    }
}

void
RegisterMap::checkInvariants(sim::InvariantChecker &chk) const
{
    std::vector<bool> seen(isFree.size(), false);
    for (std::size_t i = 0; i < map.size(); ++i) {
        const PhysReg reg = map[i];
        if (!SIM_INVARIANT_MSG(chk, reg < isFree.size(),
                               "arch %zu maps to out-of-range phys %u",
                               i, reg)) {
            continue;
        }
        SIM_INVARIANT_MSG(chk, !isFree[reg],
                          "arch %zu maps to freed phys %u", i, reg);
        SIM_INVARIANT_MSG(chk, !seen[reg],
                          "phys %u mapped by two arch registers", reg);
        seen[reg] = true;
    }
    std::uint64_t free_mask = 0;
    for (const bool f : isFree) {
        if (f)
            ++free_mask;
    }
    SIM_INVARIANT_MSG(chk, free_mask == freeList.size(),
                      "%llu regs marked free but the list holds %zu",
                      static_cast<unsigned long long>(free_mask),
                      freeList.size());
    for (const PhysReg reg : freeList) {
        SIM_INVARIANT_MSG(chk, reg < isFree.size() && isFree[reg],
                          "free list holds live phys %u", reg);
    }
}

} // namespace astriflash::cpu
