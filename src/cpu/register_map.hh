/**
 * @file
 * Architectural-to-physical register rename map with a free list.
 *
 * Substrate for the ASO-style post-retirement speculation engine: the
 * map can be snapshotted per store-buffer entry and restored on a
 * DRAM-cache-miss abort (§IV-C4).
 */

#ifndef ASTRIFLASH_CPU_REGISTER_MAP_HH
#define ASTRIFLASH_CPU_REGISTER_MAP_HH

#include <cstdint>
#include <vector>

#include "sim/invariant.hh"

namespace astriflash::cpu {

/** Physical register index. */
using PhysReg = std::uint16_t;

/** Invalid physical register sentinel. */
inline constexpr PhysReg kNoReg = 0xffff;

/** Rename map: arch reg -> phys reg, plus a phys-reg free list. */
class RegisterMap
{
  public:
    /**
     * @param arch_regs  Number of architectural registers.
     * @param phys_regs  Total physical registers (>= arch_regs).
     *
     * Initially arch reg i maps to phys reg i; the rest are free.
     */
    RegisterMap(std::uint32_t arch_regs, std::uint32_t phys_regs);

    /**
     * Rename: allocate a fresh phys reg for @p arch_reg.
     * @param[out] old_reg  The previous mapping (to free at commit).
     * @return The new phys reg, or kNoReg if the free list is empty.
     */
    PhysReg rename(std::uint32_t arch_reg, PhysReg *old_reg);

    /** Current mapping of @p arch_reg. */
    PhysReg mapping(std::uint32_t arch_reg) const;

    /** Return @p reg to the free list. */
    void release(PhysReg reg);

    /** Snapshot of the full map table (32 x 8-bit indices in silicon). */
    std::vector<PhysReg> snapshot() const { return map; }

    /**
     * Restore a snapshot, releasing every phys reg that is mapped now
     * but was not mapped then (the speculative allocations).
     */
    void restore(const std::vector<PhysReg> &snap);

    /**
     * Force @p arch_reg to map to @p reg without touching the free
     * list. Rollback support: @p reg must be a live (non-free)
     * register the caller is restoring from an undo record.
     */
    void forceMap(std::uint32_t arch_reg, PhysReg reg);

    /** Number of free physical registers. */
    std::uint32_t freeCount() const
    {
        return static_cast<std::uint32_t>(freeList.size());
    }

    std::uint32_t archCount() const
    {
        return static_cast<std::uint32_t>(map.size());
    }

    /**
     * Audit the rename state: mappings are live, distinct physical
     * registers; the free list agrees with the isFree mask; and no
     * register is both mapped and free.
     */
    void checkInvariants(sim::InvariantChecker &chk) const;

  private:
    std::vector<PhysReg> map;
    std::vector<PhysReg> freeList;
    std::vector<bool> isFree;
};

} // namespace astriflash::cpu

#endif // ASTRIFLASH_CPU_REGISTER_MAP_HH
