/**
 * @file
 * Post-retirement store speculation engine (ASO-style, §IV-C4).
 *
 * In AstriFlash any committed store sitting in the Store Buffer can
 * still abort when its DRAM-cache access misses, so the core must be
 * able to revert the rename state to the aborting store and discard
 * everything younger. The paper extends ASO [77]: physical registers
 * written after a store are only freed once that store leaves the SB,
 * and each SB entry carries a map-table snapshot.
 *
 * This functional engine implements those semantics two ways at once —
 * a per-store snapshot (the hardware mechanism) and an undo log — and
 * cross-checks them on every abort, making the model self-verifying.
 */

#ifndef ASTRIFLASH_CPU_ASO_ENGINE_HH
#define ASTRIFLASH_CPU_ASO_ENGINE_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sim/invariant.hh"
#include "sim/stats.hh"

#include "ooo_config.hh"
#include "register_map.hh"

namespace astriflash::cpu {

/** Instruction sequence number (program order). */
using InstSeq = std::uint64_t;

/** Outcome of trying to dispatch into the engine. */
enum class AsoDispatch {
    Ok,
    SbFull,      ///< Store buffer is full; retire stalls.
    NoPhysRegs,  ///< PRF (incl. ASO extension) exhausted; stall.
};

/**
 * Store buffer + deferred register reclamation.
 *
 * Usage protocol (program order):
 *  - writeReg() for each instruction that produces a register value;
 *  - dispatchStore() when a store retires into the SB;
 *  - completeOldestStore() when the SB head's write hits the DRAM cache;
 *  - abortOldestStore() when it misses — rolls back every younger
 *    rename and drops all younger stores.
 */
class AsoEngine
{
  public:
    struct Stats {
        sim::Counter renames;
        sim::Counter storesDispatched;
        sim::Counter storesCompleted;
        sim::Counter storesAborted;
        sim::Counter renamesRolledBack;
        sim::Counter sbFullStalls;
        sim::Counter prfStalls;
    };

    explicit AsoEngine(const OoOConfig &config);

    /**
     * Rename the destination of one instruction.
     * @return Ok, or NoPhysRegs if the PRF is exhausted (the caller
     *         must drain the SB before retrying).
     */
    AsoDispatch writeReg(std::uint32_t arch_reg);

    /**
     * Move a retiring store into the store buffer.
     * @param addr  The store's target address (diagnostics).
     */
    AsoDispatch dispatchStore(std::uint64_t addr);

    /** True if any store is pending in the SB. */
    bool hasPendingStores() const { return !stores.empty(); }

    /** Number of SB entries in use. */
    std::uint32_t sbOccupancy() const
    {
        return static_cast<std::uint32_t>(stores.size());
    }

    /** Address of the SB head (the next store to issue). */
    std::uint64_t oldestStoreAddr() const;

    /**
     * The SB head's DRAM-cache access hit: free its snapshot and every
     * deferred register that no remaining store still protects.
     */
    void completeOldestStore();

    /**
     * The SB head's DRAM-cache access missed: revert the rename state
     * to the head store's snapshot, discard all younger stores, and
     * reclaim every speculatively allocated register.
     */
    void abortOldestStore();

    /** Current mapping (for tests / value tracking). */
    PhysReg mapping(std::uint32_t arch_reg) const
    {
        return map.mapping(arch_reg);
    }

    /** Free physical registers remaining. */
    std::uint32_t freeRegs() const { return map.freeCount(); }

    /** Program-order sequence of the next instruction. */
    InstSeq nextSeq() const { return seq; }

    const Stats &stats() const { return statsData; }

    /** Register this engine's stats into @p reg. */
    void
    regStats(sim::StatRegistry &reg) const
    {
        reg.registerCounter("renames", &statsData.renames,
                            "destination registers renamed");
        reg.registerCounter("stores_dispatched",
                            &statsData.storesDispatched,
                            "retired stores entering the store buffer");
        reg.registerCounter("stores_completed",
                            &statsData.storesCompleted,
                            "SB heads whose cache access hit");
        reg.registerCounter("stores_aborted", &statsData.storesAborted,
                            "SB heads aborted on a DRAM-cache miss");
        reg.registerCounter("renames_rolled_back",
                            &statsData.renamesRolledBack,
                            "renames reverted by store aborts");
        reg.registerCounter("sb_full_stalls", &statsData.sbFullStalls,
                            "retire stalls on a full store buffer");
        reg.registerCounter("prf_stalls", &statsData.prfStalls,
                            "renames stalled on an exhausted PRF");
    }

    /**
     * Audit the speculation state: the SB respects its bound and
     * program order, every snapshot covers the full map table, and the
     * rename map itself is consistent.
     */
    void
    checkInvariants(sim::InvariantChecker &chk) const
    {
        SIM_INVARIANT_MSG(chk, stores.size() <= cfg.sbEntries,
                          "%zu SB entries exceed the %u-entry buffer",
                          stores.size(), cfg.sbEntries);
        InstSeq prev = 0;
        for (const StoreEntry &s : stores) {
            SIM_INVARIANT_MSG(chk, s.seq >= prev,
                              "store buffer out of program order at "
                              "seq %llu",
                              static_cast<unsigned long long>(s.seq));
            prev = s.seq;
            SIM_INVARIANT_MSG(chk, s.snapshot.size() == cfg.archRegs,
                              "snapshot for seq %llu covers %zu of %u "
                              "arch registers",
                              static_cast<unsigned long long>(s.seq),
                              s.snapshot.size(), cfg.archRegs);
        }
        prev = 0;
        for (const Rename &r : undoLog) {
            SIM_INVARIANT(chk, r.seq >= prev);
            prev = r.seq;
        }
        SIM_INVARIANT(chk,
                      statsData.storesCompleted.value() +
                              statsData.storesAborted.value() <=
                          statsData.storesDispatched.value());
        map.checkInvariants(chk);
    }

  private:
    struct Rename {
        InstSeq seq;
        std::uint32_t archReg;
        PhysReg oldReg;
        PhysReg newReg;
    };

    struct StoreEntry {
        InstSeq seq;
        std::uint64_t addr;
        std::vector<PhysReg> snapshot;
    };

    /** Free deferred renames no longer protected by any store. */
    void reclaimUnprotected();

    OoOConfig cfg;
    RegisterMap map;
    InstSeq seq = 0;
    std::deque<Rename> undoLog;   ///< Renames not yet reclaimable.
    std::deque<StoreEntry> stores;
    Stats statsData;
};

} // namespace astriflash::cpu

#endif // ASTRIFLASH_CPU_ASO_ENGINE_HH
