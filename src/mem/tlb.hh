/**
 * @file
 * Translation Lookaside Buffer model.
 *
 * AstriFlash keeps virtual memory, so TLB behaviour matters in two
 * places: (1) the AstriFlash-noDP ablation, where a TLB miss can force
 * a page-table walk whose leaf PTE lives in flash, and (2) the OS-Swap
 * baseline, where page migration forces broadcast shootdowns. The TLB
 * itself is a plain set-associative tag array over virtual page
 * numbers; walk routing is decided by the system model.
 */

#ifndef ASTRIFLASH_MEM_TLB_HH
#define ASTRIFLASH_MEM_TLB_HH

#include <cstdint>
#include <string>

#include "sim/stats.hh"
#include "sim/ticks.hh"

#include "address.hh"
#include "set_assoc_cache.hh"

namespace astriflash::mem {

/** Two-level (L1 + L2) TLB with simple inclusive fill. */
class Tlb
{
  public:
    struct Config {
        std::uint32_t l1Entries = 48;
        std::uint32_t l1Ways = 48;    ///< L1 is fully associative.
        std::uint32_t l2Entries = 1280;
        std::uint32_t l2Ways = 5;
        sim::Ticks l2Latency = sim::nanoseconds(3);
        std::uint64_t pageSize = kPageSize;
    };

    struct Stats {
        sim::Counter l1Hits;
        sim::Counter l2Hits;
        sim::Counter misses;      ///< Full TLB misses (walk needed).
        sim::Counter shootdowns;  ///< Invalidations from remote cores.
    };

    Tlb(std::string name, const Config &config);

    /** Lookup result. */
    struct Result {
        bool miss = false;        ///< Needs a page-table walk.
        sim::Ticks latency = 0;   ///< L1 hit is free; L2 adds latency.
    };

    /** Translate the page containing @p vaddr. */
    Result lookup(Addr vaddr);

    /** Install a translation after a walk. */
    void fill(Addr vaddr);

    /** Invalidate one page (TLB shootdown target). */
    void invalidate(Addr vaddr);

    /** Invalidate everything (context switch without ASID). */
    void flushAll();

    const Stats &stats() const { return statsData; }

    /** Register this TLB's stats into @p reg. */
    void
    regStats(sim::StatRegistry &reg) const
    {
        reg.registerCounter("l1_hits", &statsData.l1Hits,
                            "translations served by the L1 TLB");
        reg.registerCounter("l2_hits", &statsData.l2Hits,
                            "translations served by the L2 TLB");
        reg.registerCounter("misses", &statsData.misses,
                            "translations requiring a page-table walk");
        reg.registerCounter("shootdowns", &statsData.shootdowns,
                            "pages invalidated by remote shootdowns");
    }
    const Config &config() const { return cfg; }

    /** Audit both levels' tag arrays. */
    void
    checkInvariants(sim::InvariantChecker &chk) const
    {
        l1.checkInvariants(chk);
        l2.checkInvariants(chk);
    }

  private:
    Config cfg;
    SetAssocCache l1;
    SetAssocCache l2;
    Stats statsData;
};

} // namespace astriflash::mem

#endif // ASTRIFLASH_MEM_TLB_HH
