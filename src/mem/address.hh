/**
 * @file
 * Address types and page/block arithmetic.
 *
 * The paper's memory hierarchy uses 64 B cache blocks on chip and 4 KB
 * pages in the DRAM cache and flash; all address math funnels through
 * these helpers so page-size experiments only change one constant.
 *
 * Page numbers, block numbers and cache set/way indices are strong
 * types (sim::StrongId): a byte address, a page number and a set index
 * no longer share a representation the compiler will happily confuse.
 * Convert a number back to a byte address with pageAddr()/blockAddr();
 * raw() escapes are reserved for serialization and hashing (AF011).
 */

#ifndef ASTRIFLASH_MEM_ADDRESS_HH
#define ASTRIFLASH_MEM_ADDRESS_HH

#include <cstdint>

#include "sim/invariant.hh"
#include "sim/strong_types.hh"

namespace astriflash::mem {

/** Physical or virtual byte address. */
using Addr = std::uint64_t;

/** Identifies one page (address / page size). */
using PageNum = sim::StrongId<struct PageNumTag>;
/** Identifies one cache block (address / block size). */
using BlockNum = sim::StrongId<struct BlockNumTag>;
/** Index of a set within a set-associative structure. */
using SetIdx = sim::StrongId<struct SetIdxTag>;
/** Index of a way within one set. */
using WayIdx = sim::StrongId<struct WayIdxTag, std::uint32_t>;
/** A byte count (transfer sizes, capacities) — a quantity, not an
 *  address, so it adds and scales but never indexes. */
using Bytes = sim::StrongCount<struct BytesTag, std::uint64_t>;

/** Default cache block size (bytes). */
inline constexpr std::uint64_t kBlockSize = 64;
/** Default page size (bytes) for DRAM cache and flash. */
inline constexpr std::uint64_t kPageSize = 4096;

/** True iff @p v is a power of two (and nonzero). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/**
 * log2 of a power of two. Non-power-of-two inputs used to return
 * floor(log2) silently; they are now rejected — at compile time in
 * constant expressions, by panic at runtime with checks armed.
 */
constexpr unsigned
log2i(std::uint64_t v)
{
    SIM_CHECK_CE(isPowerOfTwo(v));
    unsigned n = 0;
    while (v > 1) {
        v >>= 1;
        ++n;
    }
    return n;
}

/** Round @p a down to a multiple of power-of-two @p align. */
constexpr Addr
alignDown(Addr a, std::uint64_t align)
{
    SIM_CHECK_CE(isPowerOfTwo(align));
    return a & ~(align - 1);
}

/** Round @p a up to a multiple of power-of-two @p align. */
constexpr Addr
alignUp(Addr a, std::uint64_t align)
{
    SIM_CHECK_CE(isPowerOfTwo(align));
    return (a + align - 1) & ~(align - 1);
}

/** Page number of an address (default 4 KB pages). */
constexpr PageNum
pageNumber(Addr a, std::uint64_t page_size = kPageSize)
{
    return PageNum(a / page_size);
}

/** Base address of the page containing @p a. */
constexpr Addr
pageBase(Addr a, std::uint64_t page_size = kPageSize)
{
    return alignDown(a, page_size);
}

/** Byte address of page @p pn (the page's base). */
constexpr Addr
pageAddr(PageNum pn, std::uint64_t page_size = kPageSize)
{
    // aflint-allow(AF011): the sanctioned PageNum -> byte conversion.
    return pn.raw() * page_size;
}

/**
 * Shard index of page @p pn when pages are interleaved round-robin
 * across @p shards equal slices (the backside-controller sharding in
 * core/dram_cache.hh). This is the sanctioned PageNum -> shard-index
 * conversion; with one shard every page lands on shard 0.
 */
constexpr std::uint32_t
pageInterleave(PageNum pn, std::uint32_t shards)
{
    // aflint-allow(AF011): modular arithmetic on the page index.
    return static_cast<std::uint32_t>(pn.raw() % shards);
}

/** Block number of an address (default 64 B blocks). */
constexpr BlockNum
blockNumber(Addr a, std::uint64_t block_size = kBlockSize)
{
    return BlockNum(a / block_size);
}

/** Base address of the block containing @p a. */
constexpr Addr
blockBase(Addr a, std::uint64_t block_size = kBlockSize)
{
    return alignDown(a, block_size);
}

/** Byte address of block @p bn (the block's base). */
constexpr Addr
blockAddr(BlockNum bn, std::uint64_t block_size = kBlockSize)
{
    // aflint-allow(AF011): the sanctioned BlockNum -> byte conversion.
    return bn.raw() * block_size;
}

} // namespace astriflash::mem

#endif // ASTRIFLASH_MEM_ADDRESS_HH
