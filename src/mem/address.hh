/**
 * @file
 * Address types and page/block arithmetic.
 *
 * The paper's memory hierarchy uses 64 B cache blocks on chip and 4 KB
 * pages in the DRAM cache and flash; all address math funnels through
 * these helpers so page-size experiments only change one constant.
 */

#ifndef ASTRIFLASH_MEM_ADDRESS_HH
#define ASTRIFLASH_MEM_ADDRESS_HH

#include <cstdint>

namespace astriflash::mem {

/** Physical or virtual byte address. */
using Addr = std::uint64_t;

/** Default cache block size (bytes). */
inline constexpr std::uint64_t kBlockSize = 64;
/** Default page size (bytes) for DRAM cache and flash. */
inline constexpr std::uint64_t kPageSize = 4096;

/** True iff @p v is a power of two (and nonzero). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** log2 of a power of two. */
constexpr unsigned
log2i(std::uint64_t v)
{
    unsigned n = 0;
    while (v > 1) {
        v >>= 1;
        ++n;
    }
    return n;
}

/** Round @p a down to a multiple of power-of-two @p align. */
constexpr Addr
alignDown(Addr a, std::uint64_t align)
{
    return a & ~(align - 1);
}

/** Round @p a up to a multiple of power-of-two @p align. */
constexpr Addr
alignUp(Addr a, std::uint64_t align)
{
    return (a + align - 1) & ~(align - 1);
}

/** Page number of an address (default 4 KB pages). */
constexpr std::uint64_t
pageNumber(Addr a, std::uint64_t page_size = kPageSize)
{
    return a / page_size;
}

/** Base address of the page containing @p a. */
constexpr Addr
pageBase(Addr a, std::uint64_t page_size = kPageSize)
{
    return alignDown(a, page_size);
}

/** Block number of an address (default 64 B blocks). */
constexpr std::uint64_t
blockNumber(Addr a, std::uint64_t block_size = kBlockSize)
{
    return a / block_size;
}

/** Base address of the block containing @p a. */
constexpr Addr
blockBase(Addr a, std::uint64_t block_size = kBlockSize)
{
    return alignDown(a, block_size);
}

} // namespace astriflash::mem

#endif // ASTRIFLASH_MEM_ADDRESS_HH
