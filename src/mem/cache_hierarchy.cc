#include "cache_hierarchy.hh"

#include "sim/logging.hh"

namespace astriflash::mem {

std::vector<CacheLevelConfig>
defaultHierarchyConfig()
{
    using sim::nanoseconds;
    using sim::picoseconds;
    // ARM Cortex-A76-like: 64 KB L1D (4-way, ~1.6 ns), 512 KB private
    // L2 (8-way, ~3.6 ns), 1 MB LLC slice (16-way, ~12 ns).
    return {
        {"l1d", 64 * 1024, kBlockSize, 4, picoseconds(1600)},
        {"l2", 512 * 1024, kBlockSize, 8, picoseconds(3600)},
        {"llc", 1024 * 1024, kBlockSize, 16, nanoseconds(12)},
    };
}

CacheHierarchy::CacheHierarchy(std::string name,
                               const std::vector<CacheLevelConfig> &cfgs,
                               std::uint32_t mshr_entries)
    : hierName(std::move(name)), mshrFile(hierName + ".mshr",
                                          mshr_entries)
{
    if (cfgs.empty())
        ASTRI_FATAL("%s: hierarchy needs at least one level",
                    hierName.c_str());
    for (const auto &cfg : cfgs) {
        levels.push_back(std::make_unique<SetAssocCache>(
            hierName + "." + cfg.name, cfg.capacity, cfg.lineSize,
            cfg.ways));
        levelLatency.push_back(cfg.accessLatency);
        missLatency += cfg.accessLatency;
    }
}

void
CacheHierarchy::cascadeVictim(std::size_t from_level,
                              const CacheLine &victim)
{
    if (!victim.dirty)
        return;
    for (std::size_t lvl = from_level + 1; lvl < levels.size(); ++lvl) {
        if (levels[lvl]->markDirty(victim.tag_addr))
            return; // absorbed by a lower level that holds the block
        auto next_victim = levels[lvl]->fill(victim.tag_addr, true);
        if (!next_victim)
            return;
        if (!next_victim->dirty)
            return;
        // Keep pushing the displaced dirty block downwards.
        if (lvl + 1 >= levels.size()) {
            lastWritebacks.push_back(next_victim->tag_addr);
            statsData.llcWritebacks.inc();
            return;
        }
        cascadeVictim(lvl, *next_victim);
        return;
    }
    // Victim fell out of the LLC itself.
    lastWritebacks.push_back(victim.tag_addr);
    statsData.llcWritebacks.inc();
}

HierarchyAccess
CacheHierarchy::access(Addr addr, bool is_write)
{
    lastWritebacks.clear();
    statsData.accesses.inc();
    HierarchyAccess out;
    for (std::size_t lvl = 0; lvl < levels.size(); ++lvl) {
        out.latency += levelLatency[lvl];
        const bool hit = is_write ? levels[lvl]->accessWrite(addr)
                                  : levels[lvl]->access(addr);
        if (hit) {
            out.hitLevel = static_cast<int>(lvl);
            // Refill the levels above the hit.
            for (std::size_t up = 0; up < lvl; ++up) {
                auto victim = levels[up]->fill(addr, is_write);
                if (victim)
                    cascadeVictim(up, *victim);
            }
            return out;
        }
    }
    out.llcMiss = true;
    statsData.llcMisses.inc();
    return out;
}

void
CacheHierarchy::fillFromMemory(Addr addr, bool is_write)
{
    lastWritebacks.clear();
    for (std::size_t lvl = 0; lvl < levels.size(); ++lvl) {
        auto victim = levels[lvl]->fill(addr, is_write);
        if (victim)
            cascadeVictim(lvl, *victim);
    }
}

bool
CacheHierarchy::invalidateBlock(Addr addr)
{
    bool was_dirty = false;
    for (auto &level : levels) {
        if (auto line = level->invalidate(addr))
            was_dirty = was_dirty || line->dirty;
    }
    return was_dirty;
}

void
CacheHierarchy::invalidatePage(Addr addr)
{
    const Addr base = pageBase(addr);
    for (Addr a = base; a < base + kPageSize; a += kBlockSize)
        invalidateBlock(a);
}

void
CacheHierarchy::regStats(sim::StatRegistry &reg) const
{
    reg.registerCounter("accesses", &statsData.accesses,
                        "demand accesses entering the hierarchy");
    reg.registerCounter("llc_misses", &statsData.llcMisses,
                        "accesses missing every on-chip level");
    reg.registerCounter("llc_writebacks", &statsData.llcWritebacks,
                        "dirty blocks written back below the LLC");
    mshrFile.regStats(reg.subRegistry("mshr"));
    for (const auto &level : levels) {
        // Level instances are named "<hier>.<level>"; the child registry
        // only wants the trailing level component.
        const std::string &full = level->name();
        const auto dot = full.rfind('.');
        const std::string leaf =
            dot == std::string::npos ? full : full.substr(dot + 1);
        level->regStats(reg.subRegistry(leaf));
    }
}

} // namespace astriflash::mem
