#include "dram.hh"

#include "sim/logging.hh"

namespace astriflash::mem {

Dram::Dram(std::string name, const DramConfig &config)
    : dramName(std::move(name)), cfg(config)
{
    if (cfg.channels == 0 || cfg.banksPerChannel == 0)
        ASTRI_FATAL("%s: need >=1 channel and bank", dramName.c_str());
    if (!isPowerOfTwo(cfg.rowBytes))
        ASTRI_FATAL("%s: row size must be a power of two",
                    dramName.c_str());
    banks.resize(static_cast<std::size_t>(cfg.channels) *
                 cfg.banksPerChannel);
}

std::uint64_t
Dram::bankIndex(Addr addr) const
{
    // Row-granularity interleave: consecutive rows rotate channels,
    // then banks. Accesses within one row (e.g. the DRAM cache's tag
    // column and data columns) share a bank and enjoy row-buffer hits.
    const std::uint64_t row = addr / cfg.rowBytes;
    const std::uint64_t channel = row % cfg.channels;
    const std::uint64_t bank = (row / cfg.channels) % cfg.banksPerChannel;
    return channel * cfg.banksPerChannel + bank;
}

std::uint64_t
Dram::rowIndex(Addr addr) const
{
    return addr / cfg.rowBytes;
}

DramAccessResult
Dram::access(Addr addr, sim::Ticks now, bool is_write, std::uint64_t bytes)
{
    Bank &bank = banks[bankIndex(addr)];
    const std::uint64_t row = rowIndex(addr);

    DramAccessResult res;
    res.start = now > bank.busyUntil ? now : bank.busyUntil;

    sim::Ticks service = 0;
    if (bank.rowOpen && bank.openRow == row) {
        res.row = DramRowResult::Hit;
        service = cfg.tCas;
        statsData.rowHits.inc();
    } else if (!bank.rowOpen) {
        res.row = DramRowResult::Closed;
        service = cfg.tRcd + cfg.tCas;
        statsData.rowClosed.inc();
    } else {
        res.row = DramRowResult::Conflict;
        service = cfg.tRp + cfg.tRcd + cfg.tCas;
        statsData.rowConflicts.inc();
    }

    // Data transfer: one burst per 64 B (page installs stream bursts).
    const std::uint64_t bursts = (bytes + kBlockSize - 1) / kBlockSize;
    service += cfg.tBurst * (bursts == 0 ? 1 : bursts);

    res.complete = res.start + service;
    bank.busyUntil = res.complete;
    bank.rowOpen = true;
    bank.openRow = row;

    if (is_write)
        statsData.writes.inc();
    else
        statsData.reads.inc();
    statsData.latency.sample(res.complete - now);
    return res;
}

sim::Ticks
Dram::occupyBank(Addr addr, sim::Ticks now, sim::Ticks duration)
{
    Bank &bank = banks[bankIndex(addr)];
    const sim::Ticks start = now > bank.busyUntil ? now : bank.busyUntil;
    bank.busyUntil = start + duration;
    return bank.busyUntil;
}

sim::Ticks
Dram::bankFreeAt(Addr addr) const
{
    return banks[bankIndex(addr)].busyUntil;
}

void
Dram::regStats(sim::StatRegistry &reg) const
{
    reg.registerCounter("reads", &statsData.reads,
                        "read column accesses");
    reg.registerCounter("writes", &statsData.writes,
                        "write column accesses");
    reg.registerCounter("row_hits", &statsData.rowHits,
                        "accesses hitting an open row");
    reg.registerCounter("row_closed", &statsData.rowClosed,
                        "accesses activating an idle bank");
    reg.registerCounter("row_conflicts", &statsData.rowConflicts,
                        "accesses forcing a precharge + activate");
    reg.registerHistogram("latency", &statsData.latency,
                          "access latency in ticks");
}

} // namespace astriflash::mem
