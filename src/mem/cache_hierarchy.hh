/**
 * @file
 * On-chip cache hierarchy (L1D + L2 + shared-LLC slice).
 *
 * The hierarchy is timing-directed and synchronous: a lookup walks the
 * levels, accumulates per-level access latency, and maintains the tag
 * arrays (fills on the refill path, dirty-writeback cascade on
 * eviction). DRAM-cache/flash time is added by the caller, which then
 * installs the refilled block via fillFromMemory().
 */

#ifndef ASTRIFLASH_MEM_CACHE_HIERARCHY_HH
#define ASTRIFLASH_MEM_CACHE_HIERARCHY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/ticks.hh"

#include "address.hh"
#include "mshr.hh"
#include "set_assoc_cache.hh"

namespace astriflash::mem {

/** Configuration of one cache level. */
struct CacheLevelConfig {
    std::string name;
    std::uint64_t capacity = 0;
    std::uint64_t lineSize = kBlockSize;
    std::uint32_t ways = 8;
    sim::Ticks accessLatency = 0; ///< Lookup latency of this level.
};

/** Result of a hierarchy lookup. */
struct HierarchyAccess {
    bool llcMiss = false;   ///< True if no level held the block.
    int hitLevel = -1;      ///< 0-based level index of the hit, or -1.
    sim::Ticks latency = 0; ///< Accumulated on-chip lookup latency.
};

/**
 * A per-core cache hierarchy.
 *
 * The paper models ARM A76 cores with private L1/L2 and a 1 MB LLC
 * slice per core; we instantiate one hierarchy per core accordingly
 * (LLC sharing effects are secondary to the DRAM-cache behaviour under
 * page-grained Zipfian traffic).
 */
class CacheHierarchy
{
  public:
    struct Stats {
        sim::Counter accesses;
        sim::Counter llcMisses;
        sim::Counter llcWritebacks; ///< Dirty blocks pushed to memory.
    };

    /**
     * @param mshr_entries  On-chip MSHR file size backing LLC misses.
     *        The file tracks occupancy/hold-time only (the timing
     *        model never blocks on it): the paper's §IV-B comparison
     *        is how long entries stay pinned, not a stall model.
     */
    CacheHierarchy(std::string name,
                   const std::vector<CacheLevelConfig> &levels,
                   std::uint32_t mshr_entries = 32);

    /**
     * Look up @p addr.
     *
     * On a hit, upper levels are refilled. On an LLC miss the caller is
     * responsible for fetching the block from memory and then calling
     * fillFromMemory().
     */
    HierarchyAccess access(Addr addr, bool is_write);

    /**
     * Install a block that returned from memory into all levels.
     * Dirty LLC victims displaced by the install are appended to
     * @ref lastWritebacks (and counted).
     */
    void fillFromMemory(Addr addr, bool is_write);

    /**
     * Invalidate the block everywhere (DRAM-cache page eviction makes
     * on-chip copies stale in a real system; we drop them).
     * @return true if any level held it dirty.
     */
    bool invalidateBlock(Addr addr);

    /** Invalidate every block of the 4 KB page containing @p addr. */
    void invalidatePage(Addr addr);

    /** Dirty block addresses displaced to memory by the last call. */
    const std::vector<Addr> &writebacks() const { return lastWritebacks; }

    /** Total lookup latency when every level misses. */
    sim::Ticks fullMissLatency() const { return missLatency; }

    std::size_t numLevels() const { return levels.size(); }
    const SetAssocCache &level(std::size_t i) const { return *levels[i]; }
    SetAssocCache &level(std::size_t i) { return *levels[i]; }
    const Stats &stats() const { return statsData; }

    /** The on-chip MSHR file backing this hierarchy's LLC misses. */
    MshrFile &mshrs() { return mshrFile; }
    const MshrFile &mshrs() const { return mshrFile; }

    /**
     * Register hierarchy stats into @p reg; each level lands in a child
     * registry named after it (l1d/l2/llc).
     */
    void regStats(sim::StatRegistry &reg) const;

    /** Audit every level's tag array and the MSHR file. */
    void
    checkInvariants(sim::InvariantChecker &chk) const
    {
        for (const auto &level : levels)
            level->checkInvariants(chk);
        mshrFile.checkInvariants(chk);
    }

  private:
    /**
     * Push a dirty victim evicted from level @p from_level into the
     * next level down, cascading further evictions; victims leaving the
     * LLC are recorded as memory writebacks.
     */
    void cascadeVictim(std::size_t from_level, const CacheLine &victim);

    std::string hierName;
    MshrFile mshrFile;
    std::vector<std::unique_ptr<SetAssocCache>> levels;
    std::vector<sim::Ticks> levelLatency;
    sim::Ticks missLatency = 0;
    std::vector<Addr> lastWritebacks;
    Stats statsData;
};

/** Default three-level hierarchy matching the paper's Table I. */
std::vector<CacheLevelConfig> defaultHierarchyConfig();

} // namespace astriflash::mem

#endif // ASTRIFLASH_MEM_CACHE_HIERARCHY_HH
