#include "page_table.hh"

namespace astriflash::mem {

std::array<Addr, PageTableModel::kLevels>
PageTableModel::walkAddresses(Addr vaddr) const
{
    // Each level's directory array gets its own region of
    // regionStride bytes; the leaf level's array is the largest
    // (one page per 512 data pages), so the stride must cover it.
    std::array<Addr, kLevels> out{};
    const std::uint64_t vpage = vaddr / pageSize;
    for (unsigned level = 0; level < kLevels; ++level) {
        // Root (level 0) indexes with the top 9 bits of the page
        // number; the leaf (level 3) with the bottom 9 bits.
        const unsigned shift = (kLevels - 1 - level) * kIndexBits;
        const std::uint64_t dir_index = vpage >> (shift + kIndexBits);
        const std::uint64_t entry_index =
            (vpage >> shift) & (kEntriesPerLevel - 1);
        out[level] = base + level * regionStride +
                     dir_index * pageSize + entry_index * kPteSize;
    }
    return out;
}

Addr
PageTableModel::leafPtePage(Addr vaddr) const
{
    return pageBase(walkAddresses(vaddr)[kLevels - 1], pageSize);
}

std::uint64_t
PageTableModel::tableFootprint(std::uint64_t va_bytes)
{
    const std::uint64_t pages = (va_bytes + kPageSize - 1) / kPageSize;
    std::uint64_t total_pages = 0;
    std::uint64_t covered = pages;
    for (unsigned level = 0; level < kLevels; ++level) {
        covered = (covered + kEntriesPerLevel - 1) / kEntriesPerLevel;
        total_pages += covered;
    }
    return total_pages * kPageSize;
}

} // namespace astriflash::mem
