#include "tlb.hh"

namespace astriflash::mem {

Tlb::Tlb(std::string name, const Config &config)
    : cfg(config),
      l1(name + ".l1", static_cast<std::uint64_t>(config.l1Entries) *
                           config.pageSize,
         config.pageSize, config.l1Ways),
      l2(name + ".l2", static_cast<std::uint64_t>(config.l2Entries) *
                           config.pageSize,
         config.pageSize, config.l2Ways)
{
}

Tlb::Result
Tlb::lookup(Addr vaddr)
{
    Result res;
    if (l1.access(vaddr)) {
        statsData.l1Hits.inc();
        return res; // L1 hit folds into the core's load latency.
    }
    res.latency += cfg.l2Latency;
    if (l2.access(vaddr)) {
        statsData.l2Hits.inc();
        l1.fill(vaddr);
        return res;
    }
    statsData.misses.inc();
    res.miss = true;
    return res;
}

void
Tlb::fill(Addr vaddr)
{
    l1.fill(vaddr);
    l2.fill(vaddr);
}

void
Tlb::invalidate(Addr vaddr)
{
    l1.invalidate(vaddr);
    l2.invalidate(vaddr);
    statsData.shootdowns.inc();
}

void
Tlb::flushAll()
{
    l1.flushAll();
    l2.flushAll();
}

} // namespace astriflash::mem
