/**
 * @file
 * DRAM device timing model.
 *
 * Models banks with open-row (page-mode) policy and per-bank service
 * occupancy. The AstriFlash frontside controller (core/) extends this
 * model with tag CAS operations; the flat DRAM partition and the
 * DRAM-only baseline use it directly.
 *
 * The model is "busy-until" based: a request arriving at tick T at a
 * bank busy until B starts at max(T, B), pays RAS/CAS/precharge latency
 * according to the row-buffer state, and occupies the bank for the data
 * burst. This captures bank conflicts and row locality without
 * simulating individual DRAM commands, which is sufficient because the
 * studied effects are µs-scale.
 */

#ifndef ASTRIFLASH_MEM_DRAM_HH
#define ASTRIFLASH_MEM_DRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/ticks.hh"

#include "address.hh"

namespace astriflash::mem {

/** DDR-style timing and geometry parameters. */
struct DramConfig {
    sim::Ticks tRcd = sim::picoseconds(13750);  ///< ACT -> column ready.
    sim::Ticks tCas = sim::picoseconds(13750);  ///< Column access strobe.
    sim::Ticks tRp = sim::picoseconds(13750);   ///< Precharge.
    sim::Ticks tBurst = sim::picoseconds(3330); ///< 64 B burst transfer.
    std::uint64_t rowBytes = 8192;              ///< Row-buffer size.
    std::uint32_t banksPerChannel = 16;
    std::uint32_t channels = 2;

    /** Random-access latency for a closed row (ACT + CAS + burst). */
    sim::Ticks
    closedRowLatency() const
    {
        return tRcd + tCas + tBurst;
    }
};

/** Outcome classification for one DRAM access. */
enum class DramRowResult {
    Hit,     ///< Row already open.
    Closed,  ///< Bank idle, row must be activated.
    Conflict ///< Different row open; precharge first.
};

/** Completion info for one access. */
struct DramAccessResult {
    sim::Ticks start = 0;      ///< When the bank began serving it.
    sim::Ticks complete = 0;   ///< When the data burst finished.
    DramRowResult row = DramRowResult::Closed;
};

/**
 * Multi-channel DRAM with open-row banks.
 *
 * Address mapping: block -> channel -> bank -> row (low-order channel
 * interleave spreads consecutive blocks across channels, standard for
 * bandwidth).
 */
class Dram
{
  public:
    struct Stats {
        sim::Counter reads;
        sim::Counter writes;
        sim::Counter rowHits;
        sim::Counter rowClosed;
        sim::Counter rowConflicts;
        sim::Histogram latency; ///< Queuing+service latency in ticks.
    };

    Dram(std::string name, const DramConfig &config);

    /**
     * Perform one access of @p bytes at @p addr arriving at @p now.
     * @param is_write Write accesses update stats differently but share
     *                 timing (write latency hides behind the row access).
     */
    DramAccessResult access(Addr addr, sim::Ticks now, bool is_write,
                            std::uint64_t bytes = kBlockSize);

    /**
     * Directly occupy the bank holding @p addr for @p duration starting
     * no earlier than @p now. Used by the frontside controller to charge
     * tag CAS operations and page installs.
     * @return tick when the occupation ends.
     */
    sim::Ticks occupyBank(Addr addr, sim::Ticks now, sim::Ticks duration);

    /** First tick at which the bank holding @p addr is free. */
    sim::Ticks bankFreeAt(Addr addr) const;

    const DramConfig &config() const { return cfg; }
    const Stats &stats() const { return statsData; }
    const std::string &name() const { return dramName; }

    /** Register this device's stats into @p reg. */
    void regStats(sim::StatRegistry &reg) const;

  private:
    struct Bank {
        sim::Ticks busyUntil = 0;
        std::uint64_t openRow = ~0ull;
        bool rowOpen = false;
    };

    std::uint64_t bankIndex(Addr addr) const;
    std::uint64_t rowIndex(Addr addr) const;

    std::string dramName;
    DramConfig cfg;
    std::vector<Bank> banks; // channels * banksPerChannel
    Stats statsData;
};

} // namespace astriflash::mem

#endif // ASTRIFLASH_MEM_DRAM_HH
