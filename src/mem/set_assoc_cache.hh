/**
 * @file
 * Generic set-associative tag array.
 *
 * One structural model serves three roles:
 *  - on-chip L1/L2/LLC tag arrays at 64 B block granularity,
 *  - the page-grained DRAM-cache tag check (tags-in-DRAM timing is
 *    charged by the frontside controller, the *contents* live here),
 *  - the capacity/miss-ratio sweeps behind Figure 1.
 */

#ifndef ASTRIFLASH_MEM_SET_ASSOC_CACHE_HH
#define ASTRIFLASH_MEM_SET_ASSOC_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/invariant.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

#include "address.hh"

namespace astriflash::mem {

/** Victim-selection policy within a set. */
enum class ReplacementPolicy {
    Lru,    ///< Least-recently-used (default; what the paper assumes).
    Fifo,   ///< Insertion order, ignores re-reference.
    Random, ///< Uniform random way.
};

/** Result of a cache lookup or fill. */
struct CacheLine {
    Addr tag_addr = 0; ///< Block/page-aligned address stored in the line.
    bool dirty = false;
};

/**
 * Set-associative cache tag/state array (no data payload).
 *
 * Addresses are truncated to @p line_size granularity. The array tracks
 * validity, dirtiness, and recency; it never stores data since the
 * simulator is timing-directed, not value-accurate.
 */
class SetAssocCache
{
  public:
    /** Aggregate statistics. */
    struct Stats {
        sim::Counter hits;
        sim::Counter misses;
        sim::Counter evictions;
        sim::Counter dirtyEvictions;
        sim::Counter fills;
        sim::Counter invalidations;

        /** Miss ratio over all lookups (0 if none). */
        double
        missRatio() const
        {
            const double total =
                static_cast<double>(hits.value() + misses.value());
            return total > 0.0
                ? static_cast<double>(misses.value()) / total : 0.0;
        }
    };

    /**
     * @param name        Instance name (diagnostics only).
     * @param capacity    Total bytes; must be sets*ways*line_size.
     * @param line_size   Block or page size in bytes (power of two).
     * @param ways        Associativity (>=1).
     * @param policy      Replacement policy.
     * @param seed        RNG seed for the Random policy.
     */
    SetAssocCache(std::string name, std::uint64_t capacity,
                  std::uint64_t line_size, std::uint32_t ways,
                  ReplacementPolicy policy = ReplacementPolicy::Lru,
                  std::uint64_t seed = 1);

    /**
     * Look up @p addr, updating recency on a hit.
     * @return true on hit.
     */
    bool access(Addr addr);

    /**
     * Look up @p addr for a store: like access() but marks dirty on hit.
     * @return true on hit.
     */
    bool accessWrite(Addr addr);

    /** Probe without touching recency or stats. */
    bool contains(Addr addr) const;

    /**
     * Insert @p addr (aligned internally), evicting a victim if the set
     * is full.
     * @param dirty  Whether the inserted line starts dirty.
     * @return The evicted line, if any.
     */
    std::optional<CacheLine> fill(Addr addr, bool dirty = false);

    /**
     * Remove @p addr if present.
     * @return The invalidated line (with dirtiness), if it was present.
     */
    std::optional<CacheLine> invalidate(Addr addr);

    /** Mark @p addr dirty if present. @return true if it was present. */
    bool markDirty(Addr addr);

    /** Drop every line (e.g. between measurement phases). */
    void flushAll();

    /** Number of valid lines currently held. */
    std::uint64_t validLines() const { return validCount; }

    std::uint64_t capacity() const { return totalCapacity; }
    std::uint64_t lineSize() const { return line; }
    std::uint32_t associativity() const { return waysPerSet; }
    std::uint64_t numSets() const { return sets; }
    const std::string &name() const { return cacheName; }

    const Stats &stats() const { return statsData; }
    Stats &stats() { return statsData; }

    /** Register this array's stats into @p reg. */
    void
    regStats(sim::StatRegistry &reg) const
    {
        reg.registerCounter("hits", &statsData.hits,
                            "lookups that found a valid line");
        reg.registerCounter("misses", &statsData.misses,
                            "lookups that found no valid line");
        reg.registerCounter("evictions", &statsData.evictions,
                            "valid lines displaced by fills");
        reg.registerCounter("dirty_evictions",
                            &statsData.dirtyEvictions,
                            "displaced lines needing writeback");
        reg.registerCounter("fills", &statsData.fills,
                            "lines installed into the array");
        reg.registerCounter("invalidations",
                            &statsData.invalidations,
                            "lines removed by explicit invalidation");
    }

    /**
     * Audit the array: the valid-line count matches the tag state,
     * every valid tag is line-aligned and in its proper set, and the
     * fill/evict/invalidate traffic accounts for the live lines.
     */
    void
    checkInvariants(sim::InvariantChecker &chk) const
    {
        std::uint64_t valid = 0;
        for (std::uint64_t s = 0; s < sets; ++s) {
            for (std::uint32_t w = 0; w < waysPerSet; ++w) {
                const Way &way = arr[s * waysPerSet + w];
                if (!way.valid)
                    continue;
                ++valid;
                SIM_INVARIANT_MSG(chk, way.tag % line == 0,
                                  "%s: unaligned tag %llx",
                                  cacheName.c_str(),
                                  static_cast<unsigned long long>(
                                      way.tag));
                SIM_INVARIANT_MSG(chk, setIndex(way.tag) == SetIdx(s),
                                  "%s: tag %llx in wrong set %llu",
                                  cacheName.c_str(),
                                  static_cast<unsigned long long>(
                                      way.tag),
                                  static_cast<unsigned long long>(s));
            }
        }
        SIM_INVARIANT_MSG(chk, valid == validCount,
                          "%s: %llu valid ways but counter says %llu",
                          cacheName.c_str(),
                          static_cast<unsigned long long>(valid),
                          static_cast<unsigned long long>(validCount));
        SIM_INVARIANT(chk, validCount <= sets * waysPerSet);
        SIM_INVARIANT(chk,
                      statsData.dirtyEvictions.value() <=
                          statsData.evictions.value());
        SIM_INVARIANT(chk,
                      statsData.evictions.value() +
                              statsData.invalidations.value() <=
                          statsData.fills.value() + validCount);
    }

  private:
    struct Way {
        Addr tag = 0;        // line-aligned address
        bool valid = false;
        bool dirty = false;
        std::uint64_t lastUse = 0;  // recency stamp (LRU)
        std::uint64_t fillTime = 0; // insertion stamp (FIFO)
    };

    SetIdx setIndex(Addr addr) const;
    Way &wayAt(SetIdx set, WayIdx way);
    Way *findWay(Addr aligned);
    const Way *findWay(Addr aligned) const;
    WayIdx victimWay(SetIdx set);

    std::string cacheName;
    std::uint64_t totalCapacity;
    std::uint64_t line;
    std::uint32_t waysPerSet;
    std::uint64_t sets;
    ReplacementPolicy policy;
    std::vector<Way> arr; // sets * ways, row-major by set
    std::uint64_t stamp = 0;
    std::uint64_t validCount = 0;
    sim::Rng rng;
    Stats statsData;
};

} // namespace astriflash::mem

#endif // ASTRIFLASH_MEM_SET_ASSOC_CACHE_HH
