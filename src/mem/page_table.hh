/**
 * @file
 * Radix page-table walk model.
 *
 * AstriFlash memory-maps flash, so virtual pages translate 1:1 onto
 * flash physical pages; the interesting part is *where the page-table
 * pages live*. With DRAM partitioning (default) they are pinned in the
 * flat DRAM partition; in the noDP ablation the leaf levels live in the
 * flash-backed cached address space and a cold walk can incur a
 * synchronous flash access. This model computes the PTE addresses a
 * 4-level walk touches so the system can route each one.
 */

#ifndef ASTRIFLASH_MEM_PAGE_TABLE_HH
#define ASTRIFLASH_MEM_PAGE_TABLE_HH

#include <array>
#include <cstdint>

#include "address.hh"

namespace astriflash::mem {

/** 4-level radix table (512 entries of 8 B per level, x86/ARM-like). */
class PageTableModel
{
  public:
    static constexpr unsigned kLevels = 4;
    static constexpr unsigned kEntriesPerLevel = 512;
    static constexpr unsigned kIndexBits = 9;
    static constexpr std::uint64_t kPteSize = 8;

    /**
     * @param table_base     PA where the page-table region starts.
     * @param page_size      Translation granule (4 KB).
     * @param region_stride  Bytes reserved per level's directory
     *                       array (0 = default sparse layout). Must
     *                       cover (max_vpage >> kIndexBits) pages for
     *                       the leaf level.
     */
    PageTableModel(Addr table_base, std::uint64_t page_size = kPageSize,
                   std::uint64_t region_stride = 0)
        : base(table_base), pageSize(page_size),
          regionStride(region_stride ? region_stride
                                     : (std::uint64_t{1} << 40))
    {
    }

    /**
     * Addresses of the PTEs touched by a walk of @p vaddr, root first.
     *
     * Levels are laid out contiguously: the root page, then the L3
     * directory pages, then L2, then the leaf (L1) pages, so deeper
     * levels span more pages and have correspondingly less locality —
     * the property that makes noDP walks miss the DRAM cache on cold
     * data.
     */
    std::array<Addr, kLevels> walkAddresses(Addr vaddr) const;

    /** PA of the leaf PTE page for @p vaddr (the flash-risky access). */
    Addr leafPtePage(Addr vaddr) const;

    /** Total bytes of page-table pages needed to map @p va_bytes. */
    static std::uint64_t tableFootprint(std::uint64_t va_bytes);

    Addr tableBase() const { return base; }

  private:
    Addr base;
    std::uint64_t pageSize;
    std::uint64_t regionStride;
};

} // namespace astriflash::mem

#endif // ASTRIFLASH_MEM_PAGE_TABLE_HH
