#include "set_assoc_cache.hh"

#include "sim/logging.hh"

namespace astriflash::mem {

SetAssocCache::SetAssocCache(std::string name, std::uint64_t capacity,
                             std::uint64_t line_size, std::uint32_t ways,
                             ReplacementPolicy policy, std::uint64_t seed)
    : cacheName(std::move(name)), totalCapacity(capacity), line(line_size),
      waysPerSet(ways), policy(policy), rng(seed)
{
    if (!isPowerOfTwo(line_size))
        ASTRI_FATAL("%s: line size %llu not a power of two",
                    cacheName.c_str(),
                    static_cast<unsigned long long>(line_size));
    if (ways == 0)
        ASTRI_FATAL("%s: associativity must be >= 1", cacheName.c_str());
    if (capacity % (static_cast<std::uint64_t>(ways) * line_size) != 0)
        ASTRI_FATAL("%s: capacity %llu not divisible by ways*line",
                    cacheName.c_str(),
                    static_cast<unsigned long long>(capacity));
    sets = capacity / (static_cast<std::uint64_t>(ways) * line_size);
    if (sets == 0)
        ASTRI_FATAL("%s: zero sets (capacity too small)",
                    cacheName.c_str());
    arr.resize(sets * ways);
}

SetIdx
SetAssocCache::setIndex(Addr addr) const
{
    return SetIdx((addr / line) % sets);
}

SetAssocCache::Way &
SetAssocCache::wayAt(SetIdx set, WayIdx way)
{
    // Row-major [set][way] flattening is the one sanctioned escape to
    // raw indices for this array.
    // aflint-allow-next-line(AF011)
    return arr[set.raw() * waysPerSet + way.raw()];
}

SetAssocCache::Way *
SetAssocCache::findWay(Addr aligned)
{
    Way *base = &wayAt(setIndex(aligned), WayIdx(0));
    for (std::uint32_t w = 0; w < waysPerSet; ++w) {
        if (base[w].valid && base[w].tag == aligned)
            return &base[w];
    }
    return nullptr;
}

const SetAssocCache::Way *
SetAssocCache::findWay(Addr aligned) const
{
    return const_cast<SetAssocCache *>(this)->findWay(aligned);
}

bool
SetAssocCache::access(Addr addr)
{
    const Addr aligned = alignDown(addr, line);
    ++stamp;
    if (Way *w = findWay(aligned)) {
        w->lastUse = stamp;
        statsData.hits.inc();
        return true;
    }
    statsData.misses.inc();
    return false;
}

bool
SetAssocCache::accessWrite(Addr addr)
{
    const Addr aligned = alignDown(addr, line);
    ++stamp;
    if (Way *w = findWay(aligned)) {
        w->lastUse = stamp;
        w->dirty = true;
        statsData.hits.inc();
        return true;
    }
    statsData.misses.inc();
    return false;
}

bool
SetAssocCache::contains(Addr addr) const
{
    return findWay(alignDown(addr, line)) != nullptr;
}

WayIdx
SetAssocCache::victimWay(SetIdx set)
{
    Way *base = &wayAt(set, WayIdx(0));
    // Prefer an invalid way.
    for (std::uint32_t w = 0; w < waysPerSet; ++w) {
        if (!base[w].valid)
            return WayIdx(w);
    }
    switch (policy) {
      case ReplacementPolicy::Random:
        return WayIdx(
            static_cast<std::uint32_t>(rng.uniformInt(waysPerSet)));
      case ReplacementPolicy::Fifo: {
        std::uint32_t oldest = 0;
        for (std::uint32_t w = 1; w < waysPerSet; ++w) {
            if (base[w].fillTime < base[oldest].fillTime)
                oldest = w;
        }
        return WayIdx(oldest);
      }
      case ReplacementPolicy::Lru:
      default: {
        std::uint32_t lru = 0;
        for (std::uint32_t w = 1; w < waysPerSet; ++w) {
            if (base[w].lastUse < base[lru].lastUse)
                lru = w;
        }
        return WayIdx(lru);
      }
    }
}

std::optional<CacheLine>
SetAssocCache::fill(Addr addr, bool dirty)
{
    const Addr aligned = alignDown(addr, line);
    ++stamp;
    if (Way *w = findWay(aligned)) {
        // Refill of a resident line refreshes recency and dirtiness.
        w->lastUse = stamp;
        w->dirty = w->dirty || dirty;
        return std::nullopt;
    }
    const SetIdx set = setIndex(aligned);
    Way &w = wayAt(set, victimWay(set));
    std::optional<CacheLine> evicted;
    if (w.valid) {
        evicted = CacheLine{w.tag, w.dirty};
        statsData.evictions.inc();
        if (w.dirty)
            statsData.dirtyEvictions.inc();
    } else {
        ++validCount;
    }
    w.valid = true;
    w.tag = aligned;
    w.dirty = dirty;
    w.lastUse = stamp;
    w.fillTime = stamp;
    statsData.fills.inc();
    return evicted;
}

std::optional<CacheLine>
SetAssocCache::invalidate(Addr addr)
{
    const Addr aligned = alignDown(addr, line);
    if (Way *w = findWay(aligned)) {
        CacheLine out{w->tag, w->dirty};
        w->valid = false;
        w->dirty = false;
        --validCount;
        statsData.invalidations.inc();
        return out;
    }
    return std::nullopt;
}

bool
SetAssocCache::markDirty(Addr addr)
{
    if (Way *w = findWay(alignDown(addr, line))) {
        w->dirty = true;
        return true;
    }
    return false;
}

void
SetAssocCache::flushAll()
{
    for (Way &w : arr) {
        w.valid = false;
        w.dirty = false;
    }
    validCount = 0;
}

} // namespace astriflash::mem
